// autotool_demo — the paper's §7 future work, working: declare an
// implementation's operations and checks, let the tool assemble the FSM
// model, hunt for hidden paths, and write the analyst's report. Shown on
// the Sendmail #3163 facts, then on a freshly made-up program to
// demonstrate the workflow generalizes beyond the paper's case studies.
//
//   $ ./autotool_demo
#include <cstdio>

#include "analysis/autotool.h"
#include "analysis/hidden_path.h"
#include "analysis/predicates.h"

using namespace dfsm;
using namespace dfsm::analysis;

int main() {
  std::printf("Predicate catalogue (%zu families):\n", predicates::catalogue().size());
  for (const auto& e : predicates::catalogue()) {
    std::printf("  %-24s [%s] %s\n", e.name.c_str(), to_string(e.type),
                e.description.c_str());
  }
  std::printf("\n");

  // 1. The Sendmail facts, declaratively.
  std::printf("%s\n", AutoTool::analyze(sendmail_spec()).to_text().c_str());

  // 2. A new program, not from the paper: an upload handler that checks
  //    the filename but not the declared size, and trusts a cached
  //    file-handle binding.
  VulnerabilitySpec spec;
  spec.name = "hypothetical upload handler";
  spec.bugtraq_ids = {99990};  // synthetic report id for the demo spec
  spec.vulnerability_class = "Heap Overflow";
  spec.software = "uploadd 0.9";
  spec.consequence = "attacker-controlled write past the upload buffer";

  OperationSpec op1;
  op1.name = "Receive the upload";
  op1.object_description = "declared size and payload";
  op1.activities.push_back(ActivitySpec{
      "pFSM1", core::PfsmType::kContentAttributeCheck,
      "read the declared size from the request",
      predicates::int_in_range("declared_size", 0, 1 << 20),
      ActivitySpec::Impl::kCustom,
      predicates::int_at_most("declared_size", 1 << 20),  // forgot the >= 0
      "malloc(declared_size)"});
  op1.activities.push_back(ActivitySpec{
      "pFSM2", core::PfsmType::kContentAttributeCheck,
      "copy the payload into the buffer",
      predicates::length_within_capacity("payload_length", "buffer_size"),
      ActivitySpec::Impl::kMatchesSpec, std::nullopt,
      "memcpy(buffer, payload, payload_length)"});
  op1.gate_condition = "heap metadata after the buffer is attacker-controlled";
  spec.operations.push_back(std::move(op1));

  spec.probe_domains["pFSM1"] =
      int_boundary_domain("size", "declared_size", {-1, 0, 1 << 20});
  {
    std::vector<core::Object> d;
    for (const std::int64_t len : {0, 512, 1024, 1025}) {
      d.push_back(core::Object{"payload"}
                      .with("payload_length", len)
                      .with("buffer_size", std::int64_t{1024}));
    }
    spec.probe_domains["pFSM2"] = d;
  }

  std::printf("%s\n", AutoTool::analyze(spec).to_text().c_str());
  std::printf("The tool flags pFSM1 (the missing lower bound) and clears "
              "pFSM2 (the bounded copy) — the same verdict an analyst\n"
              "reaches by drawing Figure-2 machines by hand.\n");
  return 0;
}
