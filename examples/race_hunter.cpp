// race_hunter — exhaustive TOCTOU analysis of the xterm log-file race
// (paper Figure 5): enumerate every interleaving of the victim's and
// attacker's syscalls, list the violating schedules, sweep the race
// window width, and show the atomic-binding fix closing the window.
//
//   $ ./race_hunter
#include <cstdio>

#include "apps/xterm.h"
#include "core/render.h"

using namespace dfsm;

int main() {
  std::printf("%s\n", core::to_ascii(apps::XtermLogger::figure5_model()).c_str());

  std::printf("Exhaustive interleaving enumeration (window = 0 extra steps)\n");
  std::printf("------------------------------------------------------------\n\n");
  apps::XtermLogger xterm;
  const auto base = xterm.run_race(0);
  std::printf("  %zu schedules, %zu violate the predicate (%.1f%%)\n\n",
              base.report.total_schedules, base.report.violating_schedules,
              100.0 * base.report.violation_fraction());
  for (const auto& o : base.report.outcomes) {
    if (!o.violated) continue;
    std::printf("  violating schedule:\n");
    for (const auto& step : o.order) std::printf("    %s\n", step.c_str());
    std::printf("  => Tom's \"log message\" landed in /etc/passwd\n\n");
  }

  std::printf("Race-window sweep (extra victim work between check and open)\n");
  std::printf("-------------------------------------------------------------\n\n");
  std::printf("  %-8s %-11s %-10s %s\n", "window", "schedules", "violating",
              "fraction");
  for (std::size_t w = 0; w <= 6; ++w) {
    const auto r = xterm.run_race(w);
    std::printf("  %-8zu %-11zu %-10zu %.1f%%\n", w, r.report.total_schedules,
                r.report.violating_schedules,
                100.0 * r.report.violation_fraction());
  }

  std::printf("\nWith the atomic-binding fix (O_NOFOLLOW + fstat re-check)\n");
  std::printf("---------------------------------------------------------\n\n");
  apps::XtermLogger fixed{
      apps::XtermChecks{.write_permission = true, .atomic_binding = true}};
  for (std::size_t w = 0; w <= 6; ++w) {
    const auto r = fixed.run_race(w);
    std::printf("  window %zu: %zu/%zu violating\n", w,
                r.report.violating_schedules, r.report.total_schedules);
  }
  std::printf("\n  benign logging still works: %s\n",
              fixed.run_benign() ? "yes" : "NO");
  return 0;
}
