// export_dot — writes every standard model (Figures 3-7 plus the GHTTPD
// and rpc.statd companions) as Graphviz DOT files, ready for
// `dot -Tsvg`, regenerating the paper's diagrams.
//
//   $ ./export_dot [output-dir]      (default: ./dot)
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "apps/models.h"
#include "core/render.h"

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "dot";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  int written = 0;
  for (const auto& model : dfsm::apps::standard_models()) {
    // Derive a filename slug from the model name.
    std::string slug;
    for (char c : model.name()) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        slug.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      } else if (!slug.empty() && slug.back() != '-') {
        slug.push_back('-');
      }
    }
    while (!slug.empty() && slug.back() == '-') slug.pop_back();

    const auto path = dir / (slug + ".dot");
    std::ofstream out{path};
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << dfsm::core::to_dot(model);
    std::printf("wrote %s (%zu pFSMs, %zu operations)\n", path.c_str(),
                model.pfsm_count(), model.chain().size());
    ++written;
  }
  std::printf("\n%d models exported. Render with:\n"
              "  for f in %s/*.dot; do dot -Tsvg \"$f\" -o \"${f%%.dot}.svg\"; done\n",
              written, dir.c_str());
  return 0;
}
