// bugtraq_report — the paper's data-analysis pipeline as a CLI: generate
// the synthetic Bugtraq corpus (Figure 1 marginals), merge the curated
// paper records, print the statistics, the Table 1 ambiguity analysis,
// the Table 2 classification, and the Lemma verification summary.
//
//   $ ./bugtraq_report [--csv]    (--csv dumps the corpus to stdout)
#include <cstdio>
#include <cstring>

#include "analysis/chain_analyzer.h"
#include "analysis/report.h"
#include "apps/models.h"
#include "bugtraq/classifier.h"
#include "bugtraq/corpus.h"
#include "bugtraq/curated.h"
#include "bugtraq/stats.h"

using namespace dfsm;

int main(int argc, char** argv) {
  auto db = bugtraq::synthetic_corpus();
  db.merge(bugtraq::curated_records());

  if (argc > 1 && std::strcmp(argv[1], "--csv") == 0) {
    std::fputs(db.to_csv().c_str(), stdout);
    return 0;
  }

  std::printf("Database: %zu reports (synthetic corpus matching the 2002-11-30 "
              "marginals + %zu curated paper records)\n\n",
              db.size(), bugtraq::curated_records().size());

  std::printf("%s\n", bugtraq::render_figure1(db).c_str());

  const auto share = bugtraq::studied_share(db);
  std::printf("Studied classes: %zu reports = %.1f%% of the database "
              "(paper: 22%%)\n\n",
              share.studied_count, share.percent);

  std::printf("%s\n", analysis::render_table1().c_str());

  // In-depth census: how many records in the database are ambiguous under
  // activity-anchored classification?
  std::size_t annotated = 0;
  std::size_t ambiguous = 0;
  for (const auto& r : db.records()) {
    if (r.activities.empty()) continue;
    ++annotated;
    if (bugtraq::classification_ambiguous(r)) ++ambiguous;
  }
  std::printf("Of %zu activity-annotated records, %zu admit more than one "
              "category — the ambiguity that motivates activity-level pFSM "
              "modeling.\n\n",
              annotated, ambiguous);

  std::printf("%s\n", analysis::render_table2(apps::standard_models()).c_str());
  std::printf("%s\n", analysis::render_figure8(apps::standard_models()).c_str());
  std::printf("%s\n", analysis::render_lemma(analysis::sweep_all()).c_str());
  return 0;
}
