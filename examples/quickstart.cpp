// quickstart — build a pFSM from scratch, compose an operation and an
// exploit chain, evaluate benign and malicious objects, detect the hidden
// path over a domain, and render the model. Start here.
//
//   $ ./quickstart
#include <cstdio>

#include "analysis/hidden_path.h"
#include "core/chain.h"
#include "core/render.h"

using namespace dfsm;
using core::Object;
using core::Pfsm;
using core::PfsmType;
using core::Predicate;

int main() {
  std::printf("== 1. A primitive FSM (paper Figure 2) ==\n\n");

  // The Sendmail pFSM2: the specification wants 0 <= x <= 100, the
  // shipped implementation checks only x <= 100.
  Pfsm pfsm2{"pFSM2",
             PfsmType::kContentAttributeCheck,
             "write debug level i to tTvect[x]",
             Predicate{"0 <= x <= 100",
                       [](const Object& o) {
                         const auto v = o.attr_int("x");
                         return v && *v >= 0 && *v <= 100;
                       }},
             Predicate{"x <= 100",
                       [](const Object& o) {
                         const auto v = o.attr_int("x");
                         return v && *v <= 100;
                       }},
             "tTvect[x] = i"};
  std::printf("%s\n", core::to_ascii(pfsm2).c_str());

  std::printf("== 2. Evaluating objects ==\n\n");
  for (const std::int64_t x : {50LL, 101LL, -8448LL}) {
    const auto out = pfsm2.evaluate(Object{"x"}.with("x", x));
    std::printf("  x=%6lld -> %-14s (path:", static_cast<long long>(x),
                to_string(out.result));
    for (auto t : out.path) std::printf(" %s", to_string(t));
    std::printf(")\n");
  }

  std::printf("\n== 3. Hidden-path detection over a boundary domain ==\n\n");
  const auto report = analysis::detect_hidden_path(
      pfsm2, analysis::int_boundary_domain("x", "x", {-8448, -1, 0, 100}));
  std::printf("  domain=%zu, spec rejected=%zu, witnesses=%zu -> %s\n",
              report.domain_size, report.spec_rejects, report.witnesses.size(),
              report.vulnerable() ? "VULNERABLE (IMPL_ACPT path exists)"
                                  : "no hidden path");
  for (const auto& w : report.witnesses) {
    std::printf("    witness: %s\n", w.describe().c_str());
  }

  std::printf("\n== 4. Composing an operation and an exploit chain ==\n\n");
  core::Operation op1{"Write debug level i to tTvect[x]", "input integers"};
  op1.add(Pfsm::unchecked(
      "pFSM1", PfsmType::kObjectTypeCheck,
      "convert str_x to a signed integer",
      Predicate{"str_x representable as int", [](const Object& o) {
                  const auto v = o.attr_int("long_x");
                  return v && *v >= -2147483648LL && *v <= 2147483647LL;
                }}));
  op1.add(pfsm2);
  core::Operation op2{"Manipulate the GOT entry of setuid", "addr_setuid"};
  op2.add(Pfsm::unchecked(
      "pFSM3", PfsmType::kReferenceConsistencyCheck,
      "call setuid() through the GOT",
      Predicate{"addr_setuid unchanged", [](const Object& o) {
                  return o.attr_bool("unchanged").value_or(false);
                }}));

  core::ExploitChain chain{"Sendmail #3163"};
  chain.add(std::move(op1), core::PropagationGate{"GOT entry points to Mcode"});
  chain.add(std::move(op2), core::PropagationGate{"Execute Mcode"});

  const auto exploit = chain.evaluate(
      {{Object{"strs"}.with("long_x", std::int64_t{4294958848LL}),
        Object{"x"}.with("x", std::int64_t{-8448})},
       {Object{"addr_setuid"}.with("unchanged", false)}});
  std::printf("  exploit inputs: %s (hidden paths: %zu)\n",
              exploit.exploited() ? "EXPLOITED" : "foiled",
              exploit.hidden_path_count());

  const auto benign = chain.evaluate(
      {{Object{"strs"}.with("long_x", std::int64_t{7}),
        Object{"x"}.with("x", std::int64_t{7})},
       {Object{"addr_setuid"}.with("unchanged", true)}});
  std::printf("  benign inputs:  %s (completed: %s)\n",
              benign.exploited() ? "EXPLOITED" : "not an exploit",
              benign.completed() ? "yes" : "no");

  std::printf("\n== 5. Rendering ==\n\n");
  core::FsmModel model{"Quickstart Sendmail model", {3163},
                       "Integer Overflow", "Sendmail",
                       "Mcode runs with Sendmail's privileges", std::move(chain)};
  std::printf("%s\n", core::to_ascii(model).c_str());
  std::printf("(Graphviz DOT available via core::to_dot — %zu bytes)\n",
              core::to_dot(model).size());
  return 0;
}
