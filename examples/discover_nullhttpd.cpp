// discover_nullhttpd — reproduces the paper's headline anecdote end to
// end: model the KNOWN NULL HTTPD heap overflow (#5774), derive the pFSM2
// predicate from the model, probe the PATCHED server against that
// predicate, and watch the NEW vulnerability (#6255) fall out. Then run
// the actual exploit against both server versions.
//
//   $ ./discover_nullhttpd
#include <cstdio>

#include "analysis/discovery.h"
#include "analysis/monitor.h"
#include "analysis/report.h"
#include "apps/nullhttpd.h"
#include "core/render.h"

using namespace dfsm;

int main() {
  std::printf("Step 1: the FSM model of the KNOWN vulnerability (#5774)\n");
  std::printf("---------------------------------------------------------\n\n");
  std::printf("%s\n", core::to_ascii(apps::NullHttpd::figure4_model()).c_str());

  std::printf("Step 2: exploit #5774 against Null HTTPD 0.5\n");
  std::printf("---------------------------------------------\n\n");
  {
    const auto info = apps::NullHttpd::scout(-800);
    apps::NullHttpd v05;
    const auto body = apps::NullHttpd::build_overflow_body(info);
    const auto r = v05.handle_post(-800, std::string(body.begin(), body.end()));
    std::printf("  contentLen=-800, buffer=%zu bytes, body=%zu bytes\n",
                r.postdata_usable, body.size());
    std::printf("  -> %s\n\n", r.detail.c_str());
  }

  std::printf("Step 3: v0.5.1 blocks negative contentLen — is pFSM2 satisfied?\n");
  std::printf("----------------------------------------------------------------\n\n");
  std::printf("Constructing the model forces the question: the predicate\n");
  std::printf("\"length(input) <= size(PostData)\" must hold for EVERY input,\n");
  std::printf("not just negative contentLen. Probing the patched server:\n\n");
  const auto discovery = analysis::probe_nullhttpd_v051();
  std::printf("%s\n", analysis::render_discovery(discovery).c_str());

  if (discovery.found_new_vulnerability) {
    std::printf("Step 4: weaponize the finding (Bugtraq #6255)\n");
    std::printf("----------------------------------------------\n\n");
    apps::NullHttpdChecks v051;
    v051.content_len_nonneg = true;
    const auto info = apps::NullHttpd::scout(0, v051);
    apps::NullHttpd patched{v051};
    const auto body = apps::NullHttpd::build_overflow_body(info);
    const auto r = patched.handle_post(0, std::string(body.begin(), body.end()));
    std::printf("  truthful contentLen=0, body=%zu bytes\n", body.size());
    std::printf("  -> %s\n\n", r.detail.c_str());

    analysis::RuntimeMonitor monitor{apps::NullHttpd::figure4_model()};
    (void)monitor.observe(analysis::nullhttpd_observation(
        0, static_cast<std::int64_t>(r.bytes_read),
        static_cast<std::int64_t>(r.postdata_usable), false,
        patched.process().got().unchanged("free")));
    std::printf("  monitor violations at elementary-activity granularity:\n");
    for (const auto& v : monitor.violations()) {
      std::printf("    * %s\n", v.c_str());
    }
  }

  std::printf("\nStep 5: the '&&' fix passes the same campaign\n");
  std::printf("----------------------------------------------\n\n");
  std::printf("%s\n",
              analysis::render_discovery(analysis::probe_nullhttpd_fixed()).c_str());
  return 0;
}
