// attack_paths — attack-graph generation over the modeled vulnerabilities
// (the Sheyner-style layer above the per-vulnerability FSMs): a small
// networked environment, the seven case studies as exploit rules,
// reachability analysis, and patch-placement what-ifs.
//
//   $ ./attack_paths
#include <cstdio>

#include "analysis/attack_graph.h"

using namespace dfsm::analysis;

namespace {

void show_path(const AttackGraph& g, const Fact& goal) {
  std::printf("Goal (%s, %s): %s\n", goal.host.c_str(), to_string(goal.privilege),
              g.reachable(goal) ? "REACHABLE" : "safe");
  for (const auto& e : g.path_to(goal)) {
    std::printf("    (%s, %s) --[%s]--> (%s, %s)\n", e.from.host.c_str(),
                to_string(e.from.privilege), e.rule.c_str(), e.to.host.c_str(),
                to_string(e.to.privilege));
  }
}

}  // namespace

int main() {
  // The environment: internet attacker -> DMZ web box -> internal NFS
  // server; a sysadmin workstation reaches everything but runs xterm.
  const std::vector<Host> hosts = {
      {"attacker", {}, {"web", "admin-ws"}},
      {"web", {"ghttpd", "sendmail"}, {"nfs"}},
      {"nfs", {"rpc.statd"}, {}},
      {"admin-ws", {"xterm", "iis"}, {"nfs", "web"}},
  };
  const Fact start{"attacker", Privilege::kRoot};

  std::printf("=== Baseline: everything unpatched ===\n\n");
  const auto g = AttackGraph::build(hosts, standard_rules(), {start});
  std::printf("%s\n", g.to_text().c_str());
  show_path(g, Fact{"web", Privilege::kRoot});
  show_path(g, Fact{"nfs", Privilege::kRoot});
  std::printf("\n");

  std::printf("=== What-if: patch GHTTPD only ===\n\n");
  auto rules = standard_rules();
  for (auto& r : rules) {
    if (r.software == "ghttpd") r.patched = true;
  }
  const auto g2 = AttackGraph::build(hosts, rules, {start});
  show_path(g2, Fact{"web", Privilege::kRoot});
  show_path(g2, Fact{"nfs", Privilege::kRoot});
  std::printf("  (IIS on the admin workstation keeps the NFS host exposed.)\n\n");

  std::printf("=== What-if: patch GHTTPD and IIS ===\n\n");
  for (auto& r : rules) {
    if (r.software == "iis") r.patched = true;
  }
  const auto g3 = AttackGraph::build(hosts, rules, {start});
  show_path(g3, Fact{"web", Privilege::kUser});
  show_path(g3, Fact{"nfs", Privilege::kRoot});
  std::printf("\nThe graph-level story mirrors the paper's Lemma: one secured\n"
              "operation foils one exploit chain; one patched service cuts one\n"
              "graph edge — and the analysis shows which cuts disconnect the\n"
              "attacker from the goal.\n");
  return 0;
}
