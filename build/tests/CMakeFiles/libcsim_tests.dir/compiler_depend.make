# Empty compiler generated dependencies file for libcsim_tests.
# This may be replaced when dependencies are built.
