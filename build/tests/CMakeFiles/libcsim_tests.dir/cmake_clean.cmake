file(REMOVE_RECURSE
  "CMakeFiles/libcsim_tests.dir/libcsim/test_cstring.cpp.o"
  "CMakeFiles/libcsim_tests.dir/libcsim/test_cstring.cpp.o.d"
  "CMakeFiles/libcsim_tests.dir/libcsim/test_format.cpp.o"
  "CMakeFiles/libcsim_tests.dir/libcsim/test_format.cpp.o.d"
  "CMakeFiles/libcsim_tests.dir/libcsim/test_io.cpp.o"
  "CMakeFiles/libcsim_tests.dir/libcsim/test_io.cpp.o.d"
  "libcsim_tests"
  "libcsim_tests.pdb"
  "libcsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libcsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
