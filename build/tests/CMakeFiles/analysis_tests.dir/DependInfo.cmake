
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/test_anomaly.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_anomaly.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_anomaly.cpp.o.d"
  "/root/repo/tests/analysis/test_attack_graph.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_attack_graph.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_attack_graph.cpp.o.d"
  "/root/repo/tests/analysis/test_autotool.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_autotool.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_autotool.cpp.o.d"
  "/root/repo/tests/analysis/test_chain_analyzer.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_chain_analyzer.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_chain_analyzer.cpp.o.d"
  "/root/repo/tests/analysis/test_defense_matrix.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_defense_matrix.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_defense_matrix.cpp.o.d"
  "/root/repo/tests/analysis/test_discovery.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_discovery.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_discovery.cpp.o.d"
  "/root/repo/tests/analysis/test_hidden_path.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_hidden_path.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_hidden_path.cpp.o.d"
  "/root/repo/tests/analysis/test_metf.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_metf.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_metf.cpp.o.d"
  "/root/repo/tests/analysis/test_monitor.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_monitor.cpp.o.d"
  "/root/repo/tests/analysis/test_predicates.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_predicates.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_predicates.cpp.o.d"
  "/root/repo/tests/analysis/test_report.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_report.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dfsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/dfsm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/libcsim/CMakeFiles/dfsm_libcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/dfsm_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fssim/CMakeFiles/dfsm_fssim.dir/DependInfo.cmake"
  "/root/repo/build/src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/dfsm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dfsm_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
