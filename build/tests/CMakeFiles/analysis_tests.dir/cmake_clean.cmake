file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/test_anomaly.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_anomaly.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_attack_graph.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_attack_graph.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_autotool.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_autotool.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_chain_analyzer.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_chain_analyzer.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_defense_matrix.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_defense_matrix.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_discovery.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_discovery.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_hidden_path.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_hidden_path.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_metf.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_metf.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_monitor.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_monitor.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_predicates.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_predicates.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_report.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_report.cpp.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
  "analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
