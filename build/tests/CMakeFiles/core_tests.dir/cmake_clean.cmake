file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/test_chain.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_chain.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_model.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_model.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_operation.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_operation.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_pfsm.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_pfsm.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_predicate.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_predicate.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_render.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_render.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_table.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_table.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_trace.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_trace.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_value.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_value.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
