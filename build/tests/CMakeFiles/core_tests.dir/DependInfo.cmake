
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_chain.cpp" "tests/CMakeFiles/core_tests.dir/core/test_chain.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_chain.cpp.o.d"
  "/root/repo/tests/core/test_model.cpp" "tests/CMakeFiles/core_tests.dir/core/test_model.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_model.cpp.o.d"
  "/root/repo/tests/core/test_operation.cpp" "tests/CMakeFiles/core_tests.dir/core/test_operation.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_operation.cpp.o.d"
  "/root/repo/tests/core/test_pfsm.cpp" "tests/CMakeFiles/core_tests.dir/core/test_pfsm.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_pfsm.cpp.o.d"
  "/root/repo/tests/core/test_predicate.cpp" "tests/CMakeFiles/core_tests.dir/core/test_predicate.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_predicate.cpp.o.d"
  "/root/repo/tests/core/test_render.cpp" "tests/CMakeFiles/core_tests.dir/core/test_render.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_render.cpp.o.d"
  "/root/repo/tests/core/test_table.cpp" "tests/CMakeFiles/core_tests.dir/core/test_table.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_table.cpp.o.d"
  "/root/repo/tests/core/test_trace.cpp" "tests/CMakeFiles/core_tests.dir/core/test_trace.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_trace.cpp.o.d"
  "/root/repo/tests/core/test_value.cpp" "tests/CMakeFiles/core_tests.dir/core/test_value.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dfsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/dfsm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/libcsim/CMakeFiles/dfsm_libcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/dfsm_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fssim/CMakeFiles/dfsm_fssim.dir/DependInfo.cmake"
  "/root/repo/build/src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/dfsm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dfsm_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
