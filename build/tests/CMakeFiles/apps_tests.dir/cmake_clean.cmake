file(REMOVE_RECURSE
  "CMakeFiles/apps_tests.dir/apps/test_fmtfamily.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/test_fmtfamily.cpp.o.d"
  "CMakeFiles/apps_tests.dir/apps/test_ghttpd.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/test_ghttpd.cpp.o.d"
  "CMakeFiles/apps_tests.dir/apps/test_iis.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/test_iis.cpp.o.d"
  "CMakeFiles/apps_tests.dir/apps/test_nullhttpd.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/test_nullhttpd.cpp.o.d"
  "CMakeFiles/apps_tests.dir/apps/test_rpcstatd.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/test_rpcstatd.cpp.o.d"
  "CMakeFiles/apps_tests.dir/apps/test_rwall.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/test_rwall.cpp.o.d"
  "CMakeFiles/apps_tests.dir/apps/test_sendmail.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/test_sendmail.cpp.o.d"
  "CMakeFiles/apps_tests.dir/apps/test_xterm.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/test_xterm.cpp.o.d"
  "apps_tests"
  "apps_tests.pdb"
  "apps_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
