# Empty compiler generated dependencies file for fssim_tests.
# This may be replaced when dependencies are built.
