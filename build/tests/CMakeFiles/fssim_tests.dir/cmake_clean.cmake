file(REMOVE_RECURSE
  "CMakeFiles/fssim_tests.dir/fssim/test_filesystem.cpp.o"
  "CMakeFiles/fssim_tests.dir/fssim/test_filesystem.cpp.o.d"
  "CMakeFiles/fssim_tests.dir/fssim/test_race.cpp.o"
  "CMakeFiles/fssim_tests.dir/fssim/test_race.cpp.o.d"
  "fssim_tests"
  "fssim_tests.pdb"
  "fssim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fssim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
