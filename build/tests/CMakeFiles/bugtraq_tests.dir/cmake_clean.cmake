file(REMOVE_RECURSE
  "CMakeFiles/bugtraq_tests.dir/bugtraq/test_category.cpp.o"
  "CMakeFiles/bugtraq_tests.dir/bugtraq/test_category.cpp.o.d"
  "CMakeFiles/bugtraq_tests.dir/bugtraq/test_classifier.cpp.o"
  "CMakeFiles/bugtraq_tests.dir/bugtraq/test_classifier.cpp.o.d"
  "CMakeFiles/bugtraq_tests.dir/bugtraq/test_corpus.cpp.o"
  "CMakeFiles/bugtraq_tests.dir/bugtraq/test_corpus.cpp.o.d"
  "CMakeFiles/bugtraq_tests.dir/bugtraq/test_database.cpp.o"
  "CMakeFiles/bugtraq_tests.dir/bugtraq/test_database.cpp.o.d"
  "CMakeFiles/bugtraq_tests.dir/bugtraq/test_stats.cpp.o"
  "CMakeFiles/bugtraq_tests.dir/bugtraq/test_stats.cpp.o.d"
  "bugtraq_tests"
  "bugtraq_tests.pdb"
  "bugtraq_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bugtraq_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
