# Empty compiler generated dependencies file for bugtraq_tests.
# This may be replaced when dependencies are built.
