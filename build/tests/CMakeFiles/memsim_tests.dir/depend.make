# Empty dependencies file for memsim_tests.
# This may be replaced when dependencies are built.
