file(REMOVE_RECURSE
  "CMakeFiles/memsim_tests.dir/memsim/test_address_space.cpp.o"
  "CMakeFiles/memsim_tests.dir/memsim/test_address_space.cpp.o.d"
  "CMakeFiles/memsim_tests.dir/memsim/test_cpu.cpp.o"
  "CMakeFiles/memsim_tests.dir/memsim/test_cpu.cpp.o.d"
  "CMakeFiles/memsim_tests.dir/memsim/test_got.cpp.o"
  "CMakeFiles/memsim_tests.dir/memsim/test_got.cpp.o.d"
  "CMakeFiles/memsim_tests.dir/memsim/test_heap.cpp.o"
  "CMakeFiles/memsim_tests.dir/memsim/test_heap.cpp.o.d"
  "CMakeFiles/memsim_tests.dir/memsim/test_snapshot.cpp.o"
  "CMakeFiles/memsim_tests.dir/memsim/test_snapshot.cpp.o.d"
  "CMakeFiles/memsim_tests.dir/memsim/test_stack.cpp.o"
  "CMakeFiles/memsim_tests.dir/memsim/test_stack.cpp.o.d"
  "memsim_tests"
  "memsim_tests.pdb"
  "memsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
