file(REMOVE_RECURSE
  "CMakeFiles/netsim_tests.dir/netsim/test_bytestream.cpp.o"
  "CMakeFiles/netsim_tests.dir/netsim/test_bytestream.cpp.o.d"
  "CMakeFiles/netsim_tests.dir/netsim/test_decode.cpp.o"
  "CMakeFiles/netsim_tests.dir/netsim/test_decode.cpp.o.d"
  "CMakeFiles/netsim_tests.dir/netsim/test_http.cpp.o"
  "CMakeFiles/netsim_tests.dir/netsim/test_http.cpp.o.d"
  "netsim_tests"
  "netsim_tests.pdb"
  "netsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
