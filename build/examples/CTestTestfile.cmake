# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_discover_nullhttpd "/root/repo/build/examples/discover_nullhttpd")
set_tests_properties(example_discover_nullhttpd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_race_hunter "/root/repo/build/examples/race_hunter")
set_tests_properties(example_race_hunter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bugtraq_report "/root/repo/build/examples/bugtraq_report")
set_tests_properties(example_bugtraq_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autotool_demo "/root/repo/build/examples/autotool_demo")
set_tests_properties(example_autotool_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attack_paths "/root/repo/build/examples/attack_paths")
set_tests_properties(example_attack_paths PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_export_dot "/root/repo/build/examples/export_dot" "/root/repo/build/examples/dot-smoke")
set_tests_properties(example_export_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
