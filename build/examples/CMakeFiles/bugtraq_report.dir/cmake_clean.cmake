file(REMOVE_RECURSE
  "CMakeFiles/bugtraq_report.dir/bugtraq_report.cpp.o"
  "CMakeFiles/bugtraq_report.dir/bugtraq_report.cpp.o.d"
  "bugtraq_report"
  "bugtraq_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bugtraq_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
