# Empty compiler generated dependencies file for bugtraq_report.
# This may be replaced when dependencies are built.
