# Empty compiler generated dependencies file for race_hunter.
# This may be replaced when dependencies are built.
