file(REMOVE_RECURSE
  "CMakeFiles/race_hunter.dir/race_hunter.cpp.o"
  "CMakeFiles/race_hunter.dir/race_hunter.cpp.o.d"
  "race_hunter"
  "race_hunter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_hunter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
