# Empty compiler generated dependencies file for attack_paths.
# This may be replaced when dependencies are built.
