file(REMOVE_RECURSE
  "CMakeFiles/attack_paths.dir/attack_paths.cpp.o"
  "CMakeFiles/attack_paths.dir/attack_paths.cpp.o.d"
  "attack_paths"
  "attack_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
