# Empty compiler generated dependencies file for export_dot.
# This may be replaced when dependencies are built.
