file(REMOVE_RECURSE
  "CMakeFiles/export_dot.dir/export_dot.cpp.o"
  "CMakeFiles/export_dot.dir/export_dot.cpp.o.d"
  "export_dot"
  "export_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
