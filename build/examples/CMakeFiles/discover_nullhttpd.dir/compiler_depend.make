# Empty compiler generated dependencies file for discover_nullhttpd.
# This may be replaced when dependencies are built.
