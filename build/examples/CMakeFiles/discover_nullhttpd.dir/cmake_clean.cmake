file(REMOVE_RECURSE
  "CMakeFiles/discover_nullhttpd.dir/discover_nullhttpd.cpp.o"
  "CMakeFiles/discover_nullhttpd.dir/discover_nullhttpd.cpp.o.d"
  "discover_nullhttpd"
  "discover_nullhttpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_nullhttpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
