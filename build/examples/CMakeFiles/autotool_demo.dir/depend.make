# Empty dependencies file for autotool_demo.
# This may be replaced when dependencies are built.
