file(REMOVE_RECURSE
  "CMakeFiles/autotool_demo.dir/autotool_demo.cpp.o"
  "CMakeFiles/autotool_demo.dir/autotool_demo.cpp.o.d"
  "autotool_demo"
  "autotool_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotool_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
