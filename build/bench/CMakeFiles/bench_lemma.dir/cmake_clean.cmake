file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma.dir/bench_lemma.cpp.o"
  "CMakeFiles/bench_lemma.dir/bench_lemma.cpp.o.d"
  "bench_lemma"
  "bench_lemma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
