# Empty compiler generated dependencies file for bench_lemma.
# This may be replaced when dependencies are built.
