# Empty dependencies file for bench_figure8.
# This may be replaced when dependencies are built.
