# Empty dependencies file for dfsm_libcsim.
# This may be replaced when dependencies are built.
