
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/libcsim/cstring.cpp" "src/libcsim/CMakeFiles/dfsm_libcsim.dir/cstring.cpp.o" "gcc" "src/libcsim/CMakeFiles/dfsm_libcsim.dir/cstring.cpp.o.d"
  "/root/repo/src/libcsim/format.cpp" "src/libcsim/CMakeFiles/dfsm_libcsim.dir/format.cpp.o" "gcc" "src/libcsim/CMakeFiles/dfsm_libcsim.dir/format.cpp.o.d"
  "/root/repo/src/libcsim/io.cpp" "src/libcsim/CMakeFiles/dfsm_libcsim.dir/io.cpp.o" "gcc" "src/libcsim/CMakeFiles/dfsm_libcsim.dir/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memsim/CMakeFiles/dfsm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/dfsm_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dfsm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
