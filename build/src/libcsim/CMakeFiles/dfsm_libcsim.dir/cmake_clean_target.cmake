file(REMOVE_RECURSE
  "libdfsm_libcsim.a"
)
