file(REMOVE_RECURSE
  "CMakeFiles/dfsm_libcsim.dir/cstring.cpp.o"
  "CMakeFiles/dfsm_libcsim.dir/cstring.cpp.o.d"
  "CMakeFiles/dfsm_libcsim.dir/format.cpp.o"
  "CMakeFiles/dfsm_libcsim.dir/format.cpp.o.d"
  "CMakeFiles/dfsm_libcsim.dir/io.cpp.o"
  "CMakeFiles/dfsm_libcsim.dir/io.cpp.o.d"
  "libdfsm_libcsim.a"
  "libdfsm_libcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfsm_libcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
