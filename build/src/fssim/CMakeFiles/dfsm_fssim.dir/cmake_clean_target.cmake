file(REMOVE_RECURSE
  "libdfsm_fssim.a"
)
