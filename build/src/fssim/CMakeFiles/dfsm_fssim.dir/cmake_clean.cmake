file(REMOVE_RECURSE
  "CMakeFiles/dfsm_fssim.dir/filesystem.cpp.o"
  "CMakeFiles/dfsm_fssim.dir/filesystem.cpp.o.d"
  "CMakeFiles/dfsm_fssim.dir/race.cpp.o"
  "CMakeFiles/dfsm_fssim.dir/race.cpp.o.d"
  "libdfsm_fssim.a"
  "libdfsm_fssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfsm_fssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
