
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fssim/filesystem.cpp" "src/fssim/CMakeFiles/dfsm_fssim.dir/filesystem.cpp.o" "gcc" "src/fssim/CMakeFiles/dfsm_fssim.dir/filesystem.cpp.o.d"
  "/root/repo/src/fssim/race.cpp" "src/fssim/CMakeFiles/dfsm_fssim.dir/race.cpp.o" "gcc" "src/fssim/CMakeFiles/dfsm_fssim.dir/race.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dfsm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
