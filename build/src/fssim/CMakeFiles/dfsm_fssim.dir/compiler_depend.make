# Empty compiler generated dependencies file for dfsm_fssim.
# This may be replaced when dependencies are built.
