file(REMOVE_RECURSE
  "CMakeFiles/dfsm_core.dir/chain.cpp.o"
  "CMakeFiles/dfsm_core.dir/chain.cpp.o.d"
  "CMakeFiles/dfsm_core.dir/model.cpp.o"
  "CMakeFiles/dfsm_core.dir/model.cpp.o.d"
  "CMakeFiles/dfsm_core.dir/operation.cpp.o"
  "CMakeFiles/dfsm_core.dir/operation.cpp.o.d"
  "CMakeFiles/dfsm_core.dir/pfsm.cpp.o"
  "CMakeFiles/dfsm_core.dir/pfsm.cpp.o.d"
  "CMakeFiles/dfsm_core.dir/predicate.cpp.o"
  "CMakeFiles/dfsm_core.dir/predicate.cpp.o.d"
  "CMakeFiles/dfsm_core.dir/render.cpp.o"
  "CMakeFiles/dfsm_core.dir/render.cpp.o.d"
  "CMakeFiles/dfsm_core.dir/table.cpp.o"
  "CMakeFiles/dfsm_core.dir/table.cpp.o.d"
  "CMakeFiles/dfsm_core.dir/trace.cpp.o"
  "CMakeFiles/dfsm_core.dir/trace.cpp.o.d"
  "CMakeFiles/dfsm_core.dir/value.cpp.o"
  "CMakeFiles/dfsm_core.dir/value.cpp.o.d"
  "libdfsm_core.a"
  "libdfsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfsm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
