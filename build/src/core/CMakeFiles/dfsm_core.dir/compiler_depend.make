# Empty compiler generated dependencies file for dfsm_core.
# This may be replaced when dependencies are built.
