
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chain.cpp" "src/core/CMakeFiles/dfsm_core.dir/chain.cpp.o" "gcc" "src/core/CMakeFiles/dfsm_core.dir/chain.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/dfsm_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/dfsm_core.dir/model.cpp.o.d"
  "/root/repo/src/core/operation.cpp" "src/core/CMakeFiles/dfsm_core.dir/operation.cpp.o" "gcc" "src/core/CMakeFiles/dfsm_core.dir/operation.cpp.o.d"
  "/root/repo/src/core/pfsm.cpp" "src/core/CMakeFiles/dfsm_core.dir/pfsm.cpp.o" "gcc" "src/core/CMakeFiles/dfsm_core.dir/pfsm.cpp.o.d"
  "/root/repo/src/core/predicate.cpp" "src/core/CMakeFiles/dfsm_core.dir/predicate.cpp.o" "gcc" "src/core/CMakeFiles/dfsm_core.dir/predicate.cpp.o.d"
  "/root/repo/src/core/render.cpp" "src/core/CMakeFiles/dfsm_core.dir/render.cpp.o" "gcc" "src/core/CMakeFiles/dfsm_core.dir/render.cpp.o.d"
  "/root/repo/src/core/table.cpp" "src/core/CMakeFiles/dfsm_core.dir/table.cpp.o" "gcc" "src/core/CMakeFiles/dfsm_core.dir/table.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/dfsm_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/dfsm_core.dir/trace.cpp.o.d"
  "/root/repo/src/core/value.cpp" "src/core/CMakeFiles/dfsm_core.dir/value.cpp.o" "gcc" "src/core/CMakeFiles/dfsm_core.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
