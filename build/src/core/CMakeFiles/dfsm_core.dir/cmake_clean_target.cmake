file(REMOVE_RECURSE
  "libdfsm_core.a"
)
