# Empty compiler generated dependencies file for dfsm_analysis.
# This may be replaced when dependencies are built.
