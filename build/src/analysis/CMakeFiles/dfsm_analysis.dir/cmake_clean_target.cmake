file(REMOVE_RECURSE
  "libdfsm_analysis.a"
)
