
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/anomaly.cpp" "src/analysis/CMakeFiles/dfsm_analysis.dir/anomaly.cpp.o" "gcc" "src/analysis/CMakeFiles/dfsm_analysis.dir/anomaly.cpp.o.d"
  "/root/repo/src/analysis/attack_graph.cpp" "src/analysis/CMakeFiles/dfsm_analysis.dir/attack_graph.cpp.o" "gcc" "src/analysis/CMakeFiles/dfsm_analysis.dir/attack_graph.cpp.o.d"
  "/root/repo/src/analysis/autotool.cpp" "src/analysis/CMakeFiles/dfsm_analysis.dir/autotool.cpp.o" "gcc" "src/analysis/CMakeFiles/dfsm_analysis.dir/autotool.cpp.o.d"
  "/root/repo/src/analysis/chain_analyzer.cpp" "src/analysis/CMakeFiles/dfsm_analysis.dir/chain_analyzer.cpp.o" "gcc" "src/analysis/CMakeFiles/dfsm_analysis.dir/chain_analyzer.cpp.o.d"
  "/root/repo/src/analysis/defense_matrix.cpp" "src/analysis/CMakeFiles/dfsm_analysis.dir/defense_matrix.cpp.o" "gcc" "src/analysis/CMakeFiles/dfsm_analysis.dir/defense_matrix.cpp.o.d"
  "/root/repo/src/analysis/discovery.cpp" "src/analysis/CMakeFiles/dfsm_analysis.dir/discovery.cpp.o" "gcc" "src/analysis/CMakeFiles/dfsm_analysis.dir/discovery.cpp.o.d"
  "/root/repo/src/analysis/hidden_path.cpp" "src/analysis/CMakeFiles/dfsm_analysis.dir/hidden_path.cpp.o" "gcc" "src/analysis/CMakeFiles/dfsm_analysis.dir/hidden_path.cpp.o.d"
  "/root/repo/src/analysis/metf.cpp" "src/analysis/CMakeFiles/dfsm_analysis.dir/metf.cpp.o" "gcc" "src/analysis/CMakeFiles/dfsm_analysis.dir/metf.cpp.o.d"
  "/root/repo/src/analysis/monitor.cpp" "src/analysis/CMakeFiles/dfsm_analysis.dir/monitor.cpp.o" "gcc" "src/analysis/CMakeFiles/dfsm_analysis.dir/monitor.cpp.o.d"
  "/root/repo/src/analysis/predicates.cpp" "src/analysis/CMakeFiles/dfsm_analysis.dir/predicates.cpp.o" "gcc" "src/analysis/CMakeFiles/dfsm_analysis.dir/predicates.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/dfsm_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/dfsm_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/specs.cpp" "src/analysis/CMakeFiles/dfsm_analysis.dir/specs.cpp.o" "gcc" "src/analysis/CMakeFiles/dfsm_analysis.dir/specs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dfsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/dfsm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/DependInfo.cmake"
  "/root/repo/build/src/libcsim/CMakeFiles/dfsm_libcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/dfsm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/dfsm_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fssim/CMakeFiles/dfsm_fssim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
