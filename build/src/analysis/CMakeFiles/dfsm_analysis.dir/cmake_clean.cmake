file(REMOVE_RECURSE
  "CMakeFiles/dfsm_analysis.dir/anomaly.cpp.o"
  "CMakeFiles/dfsm_analysis.dir/anomaly.cpp.o.d"
  "CMakeFiles/dfsm_analysis.dir/attack_graph.cpp.o"
  "CMakeFiles/dfsm_analysis.dir/attack_graph.cpp.o.d"
  "CMakeFiles/dfsm_analysis.dir/autotool.cpp.o"
  "CMakeFiles/dfsm_analysis.dir/autotool.cpp.o.d"
  "CMakeFiles/dfsm_analysis.dir/chain_analyzer.cpp.o"
  "CMakeFiles/dfsm_analysis.dir/chain_analyzer.cpp.o.d"
  "CMakeFiles/dfsm_analysis.dir/defense_matrix.cpp.o"
  "CMakeFiles/dfsm_analysis.dir/defense_matrix.cpp.o.d"
  "CMakeFiles/dfsm_analysis.dir/discovery.cpp.o"
  "CMakeFiles/dfsm_analysis.dir/discovery.cpp.o.d"
  "CMakeFiles/dfsm_analysis.dir/hidden_path.cpp.o"
  "CMakeFiles/dfsm_analysis.dir/hidden_path.cpp.o.d"
  "CMakeFiles/dfsm_analysis.dir/metf.cpp.o"
  "CMakeFiles/dfsm_analysis.dir/metf.cpp.o.d"
  "CMakeFiles/dfsm_analysis.dir/monitor.cpp.o"
  "CMakeFiles/dfsm_analysis.dir/monitor.cpp.o.d"
  "CMakeFiles/dfsm_analysis.dir/predicates.cpp.o"
  "CMakeFiles/dfsm_analysis.dir/predicates.cpp.o.d"
  "CMakeFiles/dfsm_analysis.dir/report.cpp.o"
  "CMakeFiles/dfsm_analysis.dir/report.cpp.o.d"
  "CMakeFiles/dfsm_analysis.dir/specs.cpp.o"
  "CMakeFiles/dfsm_analysis.dir/specs.cpp.o.d"
  "libdfsm_analysis.a"
  "libdfsm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfsm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
