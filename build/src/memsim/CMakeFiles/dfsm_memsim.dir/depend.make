# Empty dependencies file for dfsm_memsim.
# This may be replaced when dependencies are built.
