
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/address_space.cpp" "src/memsim/CMakeFiles/dfsm_memsim.dir/address_space.cpp.o" "gcc" "src/memsim/CMakeFiles/dfsm_memsim.dir/address_space.cpp.o.d"
  "/root/repo/src/memsim/cpu.cpp" "src/memsim/CMakeFiles/dfsm_memsim.dir/cpu.cpp.o" "gcc" "src/memsim/CMakeFiles/dfsm_memsim.dir/cpu.cpp.o.d"
  "/root/repo/src/memsim/got.cpp" "src/memsim/CMakeFiles/dfsm_memsim.dir/got.cpp.o" "gcc" "src/memsim/CMakeFiles/dfsm_memsim.dir/got.cpp.o.d"
  "/root/repo/src/memsim/heap.cpp" "src/memsim/CMakeFiles/dfsm_memsim.dir/heap.cpp.o" "gcc" "src/memsim/CMakeFiles/dfsm_memsim.dir/heap.cpp.o.d"
  "/root/repo/src/memsim/snapshot.cpp" "src/memsim/CMakeFiles/dfsm_memsim.dir/snapshot.cpp.o" "gcc" "src/memsim/CMakeFiles/dfsm_memsim.dir/snapshot.cpp.o.d"
  "/root/repo/src/memsim/stack.cpp" "src/memsim/CMakeFiles/dfsm_memsim.dir/stack.cpp.o" "gcc" "src/memsim/CMakeFiles/dfsm_memsim.dir/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dfsm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
