file(REMOVE_RECURSE
  "libdfsm_memsim.a"
)
