file(REMOVE_RECURSE
  "CMakeFiles/dfsm_memsim.dir/address_space.cpp.o"
  "CMakeFiles/dfsm_memsim.dir/address_space.cpp.o.d"
  "CMakeFiles/dfsm_memsim.dir/cpu.cpp.o"
  "CMakeFiles/dfsm_memsim.dir/cpu.cpp.o.d"
  "CMakeFiles/dfsm_memsim.dir/got.cpp.o"
  "CMakeFiles/dfsm_memsim.dir/got.cpp.o.d"
  "CMakeFiles/dfsm_memsim.dir/heap.cpp.o"
  "CMakeFiles/dfsm_memsim.dir/heap.cpp.o.d"
  "CMakeFiles/dfsm_memsim.dir/snapshot.cpp.o"
  "CMakeFiles/dfsm_memsim.dir/snapshot.cpp.o.d"
  "CMakeFiles/dfsm_memsim.dir/stack.cpp.o"
  "CMakeFiles/dfsm_memsim.dir/stack.cpp.o.d"
  "libdfsm_memsim.a"
  "libdfsm_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfsm_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
