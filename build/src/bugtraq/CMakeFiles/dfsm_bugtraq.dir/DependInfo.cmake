
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bugtraq/category.cpp" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/category.cpp.o" "gcc" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/category.cpp.o.d"
  "/root/repo/src/bugtraq/classifier.cpp" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/classifier.cpp.o" "gcc" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/classifier.cpp.o.d"
  "/root/repo/src/bugtraq/corpus.cpp" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/corpus.cpp.o" "gcc" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/corpus.cpp.o.d"
  "/root/repo/src/bugtraq/curated.cpp" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/curated.cpp.o" "gcc" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/curated.cpp.o.d"
  "/root/repo/src/bugtraq/database.cpp" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/database.cpp.o" "gcc" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/database.cpp.o.d"
  "/root/repo/src/bugtraq/record.cpp" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/record.cpp.o" "gcc" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/record.cpp.o.d"
  "/root/repo/src/bugtraq/stats.cpp" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/stats.cpp.o" "gcc" "src/bugtraq/CMakeFiles/dfsm_bugtraq.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dfsm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
