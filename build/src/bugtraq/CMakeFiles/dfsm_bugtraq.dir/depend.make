# Empty dependencies file for dfsm_bugtraq.
# This may be replaced when dependencies are built.
