file(REMOVE_RECURSE
  "libdfsm_bugtraq.a"
)
