file(REMOVE_RECURSE
  "CMakeFiles/dfsm_bugtraq.dir/category.cpp.o"
  "CMakeFiles/dfsm_bugtraq.dir/category.cpp.o.d"
  "CMakeFiles/dfsm_bugtraq.dir/classifier.cpp.o"
  "CMakeFiles/dfsm_bugtraq.dir/classifier.cpp.o.d"
  "CMakeFiles/dfsm_bugtraq.dir/corpus.cpp.o"
  "CMakeFiles/dfsm_bugtraq.dir/corpus.cpp.o.d"
  "CMakeFiles/dfsm_bugtraq.dir/curated.cpp.o"
  "CMakeFiles/dfsm_bugtraq.dir/curated.cpp.o.d"
  "CMakeFiles/dfsm_bugtraq.dir/database.cpp.o"
  "CMakeFiles/dfsm_bugtraq.dir/database.cpp.o.d"
  "CMakeFiles/dfsm_bugtraq.dir/record.cpp.o"
  "CMakeFiles/dfsm_bugtraq.dir/record.cpp.o.d"
  "CMakeFiles/dfsm_bugtraq.dir/stats.cpp.o"
  "CMakeFiles/dfsm_bugtraq.dir/stats.cpp.o.d"
  "libdfsm_bugtraq.a"
  "libdfsm_bugtraq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfsm_bugtraq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
