file(REMOVE_RECURSE
  "CMakeFiles/dfsm_netsim.dir/bytestream.cpp.o"
  "CMakeFiles/dfsm_netsim.dir/bytestream.cpp.o.d"
  "CMakeFiles/dfsm_netsim.dir/decode.cpp.o"
  "CMakeFiles/dfsm_netsim.dir/decode.cpp.o.d"
  "CMakeFiles/dfsm_netsim.dir/http.cpp.o"
  "CMakeFiles/dfsm_netsim.dir/http.cpp.o.d"
  "libdfsm_netsim.a"
  "libdfsm_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfsm_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
