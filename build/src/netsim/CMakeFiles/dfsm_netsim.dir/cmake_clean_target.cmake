file(REMOVE_RECURSE
  "libdfsm_netsim.a"
)
