# Empty dependencies file for dfsm_netsim.
# This may be replaced when dependencies are built.
