
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/bytestream.cpp" "src/netsim/CMakeFiles/dfsm_netsim.dir/bytestream.cpp.o" "gcc" "src/netsim/CMakeFiles/dfsm_netsim.dir/bytestream.cpp.o.d"
  "/root/repo/src/netsim/decode.cpp" "src/netsim/CMakeFiles/dfsm_netsim.dir/decode.cpp.o" "gcc" "src/netsim/CMakeFiles/dfsm_netsim.dir/decode.cpp.o.d"
  "/root/repo/src/netsim/http.cpp" "src/netsim/CMakeFiles/dfsm_netsim.dir/http.cpp.o" "gcc" "src/netsim/CMakeFiles/dfsm_netsim.dir/http.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dfsm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
