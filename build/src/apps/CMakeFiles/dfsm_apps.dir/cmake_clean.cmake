file(REMOVE_RECURSE
  "CMakeFiles/dfsm_apps.dir/case_study.cpp.o"
  "CMakeFiles/dfsm_apps.dir/case_study.cpp.o.d"
  "CMakeFiles/dfsm_apps.dir/fmtfamily.cpp.o"
  "CMakeFiles/dfsm_apps.dir/fmtfamily.cpp.o.d"
  "CMakeFiles/dfsm_apps.dir/ghttpd.cpp.o"
  "CMakeFiles/dfsm_apps.dir/ghttpd.cpp.o.d"
  "CMakeFiles/dfsm_apps.dir/iis.cpp.o"
  "CMakeFiles/dfsm_apps.dir/iis.cpp.o.d"
  "CMakeFiles/dfsm_apps.dir/models.cpp.o"
  "CMakeFiles/dfsm_apps.dir/models.cpp.o.d"
  "CMakeFiles/dfsm_apps.dir/nullhttpd.cpp.o"
  "CMakeFiles/dfsm_apps.dir/nullhttpd.cpp.o.d"
  "CMakeFiles/dfsm_apps.dir/rpcstatd.cpp.o"
  "CMakeFiles/dfsm_apps.dir/rpcstatd.cpp.o.d"
  "CMakeFiles/dfsm_apps.dir/rwall.cpp.o"
  "CMakeFiles/dfsm_apps.dir/rwall.cpp.o.d"
  "CMakeFiles/dfsm_apps.dir/sandbox.cpp.o"
  "CMakeFiles/dfsm_apps.dir/sandbox.cpp.o.d"
  "CMakeFiles/dfsm_apps.dir/sendmail.cpp.o"
  "CMakeFiles/dfsm_apps.dir/sendmail.cpp.o.d"
  "CMakeFiles/dfsm_apps.dir/xterm.cpp.o"
  "CMakeFiles/dfsm_apps.dir/xterm.cpp.o.d"
  "libdfsm_apps.a"
  "libdfsm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfsm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
