
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/case_study.cpp" "src/apps/CMakeFiles/dfsm_apps.dir/case_study.cpp.o" "gcc" "src/apps/CMakeFiles/dfsm_apps.dir/case_study.cpp.o.d"
  "/root/repo/src/apps/fmtfamily.cpp" "src/apps/CMakeFiles/dfsm_apps.dir/fmtfamily.cpp.o" "gcc" "src/apps/CMakeFiles/dfsm_apps.dir/fmtfamily.cpp.o.d"
  "/root/repo/src/apps/ghttpd.cpp" "src/apps/CMakeFiles/dfsm_apps.dir/ghttpd.cpp.o" "gcc" "src/apps/CMakeFiles/dfsm_apps.dir/ghttpd.cpp.o.d"
  "/root/repo/src/apps/iis.cpp" "src/apps/CMakeFiles/dfsm_apps.dir/iis.cpp.o" "gcc" "src/apps/CMakeFiles/dfsm_apps.dir/iis.cpp.o.d"
  "/root/repo/src/apps/models.cpp" "src/apps/CMakeFiles/dfsm_apps.dir/models.cpp.o" "gcc" "src/apps/CMakeFiles/dfsm_apps.dir/models.cpp.o.d"
  "/root/repo/src/apps/nullhttpd.cpp" "src/apps/CMakeFiles/dfsm_apps.dir/nullhttpd.cpp.o" "gcc" "src/apps/CMakeFiles/dfsm_apps.dir/nullhttpd.cpp.o.d"
  "/root/repo/src/apps/rpcstatd.cpp" "src/apps/CMakeFiles/dfsm_apps.dir/rpcstatd.cpp.o" "gcc" "src/apps/CMakeFiles/dfsm_apps.dir/rpcstatd.cpp.o.d"
  "/root/repo/src/apps/rwall.cpp" "src/apps/CMakeFiles/dfsm_apps.dir/rwall.cpp.o" "gcc" "src/apps/CMakeFiles/dfsm_apps.dir/rwall.cpp.o.d"
  "/root/repo/src/apps/sandbox.cpp" "src/apps/CMakeFiles/dfsm_apps.dir/sandbox.cpp.o" "gcc" "src/apps/CMakeFiles/dfsm_apps.dir/sandbox.cpp.o.d"
  "/root/repo/src/apps/sendmail.cpp" "src/apps/CMakeFiles/dfsm_apps.dir/sendmail.cpp.o" "gcc" "src/apps/CMakeFiles/dfsm_apps.dir/sendmail.cpp.o.d"
  "/root/repo/src/apps/xterm.cpp" "src/apps/CMakeFiles/dfsm_apps.dir/xterm.cpp.o" "gcc" "src/apps/CMakeFiles/dfsm_apps.dir/xterm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dfsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/dfsm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/libcsim/CMakeFiles/dfsm_libcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/dfsm_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fssim/CMakeFiles/dfsm_fssim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
