file(REMOVE_RECURSE
  "libdfsm_apps.a"
)
