# Empty dependencies file for dfsm_apps.
# This may be replaced when dependencies are built.
