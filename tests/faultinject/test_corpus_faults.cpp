// Corpus mutators (DESIGN.md §9): every parse-breaking fault really does
// break strict parsing, every benign fault really does not, mutations
// are deterministic in the rng, and the zero-silent-loss accounting
// holds through a lenient in-memory ingest.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bugtraq/corpus.h"
#include "bugtraq/database.h"
#include "faultinject/corpus_faults.h"
#include "runtime/parallel.h"

namespace dfsm::faultinject {
namespace {

using bugtraq::Database;
using bugtraq::IngestPolicy;
using bugtraq::IngestReport;

ShardSet make_set(std::size_t records, std::size_t shards,
                  std::uint64_t seed) {
  const Database db = bugtraq::synthetic_corpus_n(records, seed);
  auto blocks = runtime::static_blocks(records, shards);
  while (blocks.size() < shards) blocks.push_back({records, records});
  ShardSet set;
  for (std::size_t i = 0; i < shards; ++i) {
    set.paths.push_back("shard-" + std::to_string(i) + ".csv");
    set.contents.push_back(db.to_csv(blocks[i].begin, blocks[i].end));
    set.data_rows.push_back(blocks[i].end - blocks[i].begin);
  }
  return set;
}

TEST(CorpusFaults, NamesAreStable) {
  EXPECT_STREQ(to_string(CorpusFault::kTruncateTail), "truncate-tail");
  EXPECT_STREQ(to_string(CorpusFault::kMangleQuoting), "mangle-quoting");
  EXPECT_STREQ(to_string(CorpusFault::kCorruptField), "corrupt-field");
  EXPECT_STREQ(to_string(CorpusFault::kMissingHeader), "missing-header");
  EXPECT_STREQ(to_string(CorpusFault::kDuplicateHeader), "duplicate-header");
  EXPECT_STREQ(to_string(CorpusFault::kDropShard), "drop-shard");
  EXPECT_STREQ(to_string(CorpusFault::kReorderShards), "reorder-shards");
  EXPECT_STREQ(to_string(CorpusFault::kTransientIo), "transient-io");
  EXPECT_STREQ(to_string(CorpusFault::kUnreadableShard), "unreadable-shard");
}

TEST(CorpusFaults, MutationsAreDeterministicInTheRng) {
  for (const CorpusFault fault : kAllCorpusFaults) {
    ShardSet a = make_set(60, 3, 7);
    ShardSet b = make_set(60, 3, 7);
    Rng ra{42, 5}, rb{42, 5};
    const auto ma = apply_corpus_fault(fault, a, ra);
    const auto mb = apply_corpus_fault(fault, b, rb);
    EXPECT_EQ(ma.shard, mb.shard) << to_string(fault);
    EXPECT_EQ(ma.line, mb.line) << to_string(fault);
    EXPECT_EQ(ma.detail, mb.detail) << to_string(fault);
    EXPECT_EQ(a.paths, b.paths) << to_string(fault);
    EXPECT_EQ(a.contents, b.contents) << to_string(fault);
  }
}

TEST(CorpusFaults, ParseBreakingFaultsAlwaysBreakStrictParsing) {
  const CorpusFault breaking[] = {
      CorpusFault::kTruncateTail, CorpusFault::kMangleQuoting,
      CorpusFault::kCorruptField, CorpusFault::kMissingHeader,
      CorpusFault::kDuplicateHeader};
  for (const CorpusFault fault : breaking) {
    for (std::uint64_t stream = 0; stream < 20; ++stream) {
      ShardSet set = make_set(40, 3, 11);
      Rng rng{9, stream};
      const auto mut = apply_corpus_fault(fault, set, rng);
      EXPECT_TRUE(mut.expect_strict_throw);
      EXPECT_THROW((void)Database::from_csv_parts(set.contents, set.paths,
                                                  IngestPolicy::kStrict),
                   std::invalid_argument)
          << to_string(fault) << " stream " << stream;
    }
  }
}

TEST(CorpusFaults, BenignFaultsKeepStrictParsingAlive) {
  for (const CorpusFault fault :
       {CorpusFault::kDropShard, CorpusFault::kReorderShards,
        CorpusFault::kTransientIo}) {
    ShardSet set = make_set(40, 3, 11);
    Rng rng{9, 1};
    const auto mut = apply_corpus_fault(fault, set, rng);
    EXPECT_FALSE(mut.expect_strict_throw) << to_string(fault);
    const auto db = Database::from_csv_parts(set.contents, set.paths,
                                             IngestPolicy::kStrict);
    EXPECT_EQ(db.size(), set.total_rows()) << to_string(fault);
  }
}

TEST(CorpusFaults, ZeroSilentLossThroughLenientIngest) {
  // The content-editing faults: every generated line stays accounted for
  // (ingested + quarantined row lines), after the injected-lines
  // correction.
  const CorpusFault editing[] = {
      CorpusFault::kTruncateTail, CorpusFault::kMangleQuoting,
      CorpusFault::kCorruptField, CorpusFault::kDuplicateHeader};
  for (const CorpusFault fault : editing) {
    for (std::uint64_t stream = 0; stream < 10; ++stream) {
      ShardSet set = make_set(50, 3, 13);
      const std::size_t generated = set.total_rows();
      Rng rng{3, stream};
      const auto mut = apply_corpus_fault(fault, set, rng);
      IngestReport report;
      const auto db = Database::from_csv_parts(
          set.contents, set.paths, IngestPolicy::kLenient, &report);
      const long long expected =
          static_cast<long long>(generated) + mut.injected_lines;
      long long actual = static_cast<long long>(db.size()) +
                         static_cast<long long>(report.quarantined_lines());
      for (const auto& shard : report.shards) {
        actual += static_cast<long long>(shard.lines_seen);
      }
      EXPECT_EQ(expected, actual)
          << to_string(fault) << " stream " << stream;
    }
  }
}

TEST(CorpusFaults, MissingHeaderQuarantinesTheWholeShard) {
  ShardSet set = make_set(50, 3, 13);
  Rng rng{4, 0};
  const auto mut = apply_corpus_fault(CorpusFault::kMissingHeader, set, rng);
  IngestReport report;
  const auto db = Database::from_csv_parts(set.contents, set.paths,
                                           IngestPolicy::kLenient, &report);
  ASSERT_EQ(report.shards.size(), 1u);
  EXPECT_EQ(report.shards[0].shard, mut.shard);
  EXPECT_EQ(report.shards[0].reason, "bad CSV header");
  EXPECT_EQ(db.size() + report.shards[0].lines_seen, 50u);
}

TEST(CorpusFaults, DropShardRemovesExactlyOneShard) {
  ShardSet set = make_set(50, 4, 13);
  const std::size_t before = set.total_rows();
  Rng rng{5, 0};
  const auto mut = apply_corpus_fault(CorpusFault::kDropShard, set, rng);
  EXPECT_EQ(set.paths.size(), 3u);
  ASSERT_EQ(mut.lost_shards.size(), 1u);
  EXPECT_EQ(mut.lost_shards[0], mut.shard);
  EXPECT_LT(set.total_rows(), before);
}

TEST(CorpusFaults, TransientFaultPlansRecovery) {
  ShardSet set = make_set(50, 3, 13);
  Rng rng{6, 0};
  const auto mut =
      apply_corpus_fault(CorpusFault::kTransientIo, set, rng, /*max_attempts=*/4);
  EXPECT_GE(mut.fail_attempts, 1u);
  EXPECT_LT(mut.fail_attempts, 4u);  // recovers before the budget runs out
  EXPECT_FALSE(mut.expect_strict_throw);
}

TEST(CorpusFaults, UnreadableShardExhaustsTheRetryBudget) {
  ShardSet set = make_set(50, 3, 13);
  Rng rng{6, 1};
  const auto mut = apply_corpus_fault(CorpusFault::kUnreadableShard, set, rng,
                                      /*max_attempts=*/4);
  EXPECT_EQ(mut.fail_attempts, 4u);
  EXPECT_TRUE(mut.expect_strict_throw);
  ASSERT_EQ(mut.lost_shards.size(), 1u);
  EXPECT_EQ(mut.lost_shards[0], mut.shard);
}

TEST(CorpusFaults, RejectsDegenerateInputs) {
  ShardSet empty;
  Rng rng{1, 1};
  EXPECT_THROW((void)apply_corpus_fault(CorpusFault::kDropShard, empty, rng),
               std::invalid_argument);
  ShardSet set = make_set(10, 2, 1);
  EXPECT_THROW(
      (void)apply_corpus_fault(CorpusFault::kTransientIo, set, rng, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace dfsm::faultinject
