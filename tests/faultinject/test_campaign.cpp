// Campaign engine (DESIGN.md §9): seeded campaigns pass with zero
// failures, reports are byte-identical across thread counts, config
// validation rejects degenerate inputs, and both emitters are stable.
#include <algorithm>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "faultinject/campaign.h"
#include "runtime/thread_pool.h"

namespace dfsm::faultinject {
namespace {

namespace fs = std::filesystem;
using runtime::ThreadPool;

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dfsm-campaign-" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    ThreadPool::set_global_threads(ThreadPool::default_threads());
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] CampaignConfig config(std::size_t trials) const {
    CampaignConfig c;
    c.seed = 1;
    c.trials = trials;
    c.workdir = dir_.string();
    return c;
  }
  fs::path dir_;
};

TEST_F(CampaignTest, SeededCampaignPassesOnAllSurfaces) {
  const auto report = run_campaign(config(20));
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.trials.size(), 20u);
  EXPECT_EQ(report.corpus_trials + report.model_trials +
                report.race_trials + report.composed_trials,
            20u);
  EXPECT_GT(report.corpus_trials, 0u);
  EXPECT_GT(report.model_trials, 0u);
  EXPECT_GT(report.race_trials, 0u);
  EXPECT_GT(report.composed_trials, 0u);
  for (const auto& t : report.trials) {
    EXPECT_TRUE(t.ok) << "trial " << t.trial << ": " << t.failure;
    // Report entries never leak the absolute workdir.
    EXPECT_EQ(t.target.find(dir_.string()), std::string::npos);
    EXPECT_EQ(t.strict_error.find(dir_.string()), std::string::npos);
  }
}

TEST_F(CampaignTest, ReportIsByteIdenticalAcrossThreadCounts) {
  ThreadPool::set_global_threads(1);
  const auto serial = run_campaign(config(12));
  const auto serial_json = emit_json(serial);
  ThreadPool::set_global_threads(4);
  const auto parallel = run_campaign(config(12));
  const auto parallel_json = emit_json(parallel);
  EXPECT_EQ(serial_json, parallel_json);
  EXPECT_EQ(emit_text(serial), emit_text(parallel));
}

TEST_F(CampaignTest, CorpusOnlyAndModelOnlyCampaignsRun) {
  auto corpus_cfg = config(6);
  corpus_cfg.campaign = CampaignKind::kCorpus;
  const auto corpus = run_campaign(corpus_cfg);
  EXPECT_TRUE(corpus.ok());
  EXPECT_EQ(corpus.corpus_trials, 6u);
  EXPECT_EQ(corpus.model_trials, 0u);

  auto model_cfg = config(6);
  model_cfg.campaign = CampaignKind::kModel;
  const auto model = run_campaign(model_cfg);
  EXPECT_TRUE(model.ok());
  EXPECT_EQ(model.model_trials, 6u);
  EXPECT_EQ(model.corpus_trials, 0u);
}

TEST_F(CampaignTest, DifferentSeedsGiveDifferentCampaigns) {
  auto a = config(8);
  auto b = config(8);
  b.seed = 2;
  EXPECT_NE(emit_json(run_campaign(a)), emit_json(run_campaign(b)));
}

TEST_F(CampaignTest, EmittersCoverEveryTrial) {
  const auto report = run_campaign(config(5));
  const auto text = emit_text(report);
  const auto json = emit_json(report);
  for (const auto& t : report.trials) {
    EXPECT_NE(text.find(t.fault), std::string::npos);
    EXPECT_NE(json.find("\"fault\": \"" + t.fault + "\""), std::string::npos);
  }
  EXPECT_NE(text.find("PASS"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

TEST_F(CampaignTest, BadConfigsThrow) {
  auto zero = config(0);
  EXPECT_THROW((void)run_campaign(zero), std::invalid_argument);
  auto attempts = config(5);
  attempts.max_attempts = 1;
  EXPECT_THROW((void)run_campaign(attempts), std::invalid_argument);
  auto swapped = config(5);
  swapped.min_records = 100;
  swapped.max_records = 50;
  EXPECT_THROW((void)run_campaign(swapped), std::invalid_argument);
  auto thin = config(5);
  thin.min_records = 2;
  thin.max_shards = 5;
  EXPECT_THROW((void)run_campaign(thin), std::invalid_argument);
}

TEST_F(CampaignTest, ModelCampaignExercisesTheSweepCacheSurface) {
  auto cfg = config(48);
  cfg.campaign = CampaignKind::kModel;
  cfg.seed = 7;
  const auto report = run_campaign(cfg);
  EXPECT_TRUE(report.ok());
  std::size_t sweeps = 0;
  for (const auto& t : report.trials) {
    if (t.kind != "sweep") continue;
    ++sweeps;
    EXPECT_TRUE(t.detected) << "trial " << t.trial << ": " << t.failure;
    ASSERT_EQ(t.expected_rules.size(), 1u);
    EXPECT_EQ(t.expected_rules[0], "memoized-vs-direct");
    EXPECT_EQ(t.caught_rules, t.expected_rules);
    EXPECT_FALSE(t.target.empty());
  }
  // The seeded dispatch sends ~1/4 of model trials at the sweep cache;
  // a campaign this size must hit it several times.
  EXPECT_GE(sweeps, 5u);
}

TEST_F(CampaignTest, ModelCampaignExercisesTheChainLintSurface) {
  auto cfg = config(60);
  cfg.campaign = CampaignKind::kModel;
  cfg.seed = 7;
  const auto report = run_campaign(cfg);
  EXPECT_TRUE(report.ok());
  std::size_t chainlints = 0;
  for (const auto& t : report.trials) {
    if (t.kind != "chainlint") continue;
    ++chainlints;
    EXPECT_TRUE(t.detected) << "trial " << t.trial << ": " << t.failure;
    ASSERT_FALSE(t.expected_rules.empty());
    EXPECT_FALSE(t.caught_rules.empty());
    // Chainlint trials route through the campaign memo store, so their
    // telemetry is populated: cells either executed or were served.
    EXPECT_GT(t.lint_rules_executed + t.lint_memo_hits, 0u);
  }
  // The seeded dispatch sends ~1/5 of model trials at the chain-lint
  // surface; a campaign this size must hit it several times.
  EXPECT_GE(chainlints, 5u);

  // The campaign-wide aggregate: every linted model folded into one
  // memoized LintRun with summed telemetry (what --lint-out emits).
  EXPECT_TRUE(report.lint.memoized);
  EXPECT_GT(report.models_linted, 0u);
  EXPECT_EQ(report.lint.models_checked, report.models_linted);
  EXPECT_GT(report.lint.rules_executed, 0u);
  EXPECT_EQ(report.lint.rules_executed + report.lint.memo_hits,
            report.models_linted * report.lint.rules_run);
}

TEST_F(CampaignTest, RaceOnlyAndComposedOnlyCampaignsRun) {
  auto race_cfg = config(5);
  race_cfg.campaign = CampaignKind::kRace;
  const auto race = run_campaign(race_cfg);
  EXPECT_TRUE(race.ok());
  EXPECT_EQ(race.race_trials, 5u);
  EXPECT_EQ(race.corpus_trials + race.model_trials + race.composed_trials,
            0u);
  for (const auto& t : race.trials) {
    EXPECT_EQ(t.kind, "race");
    EXPECT_TRUE(t.detected) << "trial " << t.trial << ": " << t.failure;
  }

  auto composed_cfg = config(5);
  composed_cfg.campaign = CampaignKind::kComposed;
  const auto composed = run_campaign(composed_cfg);
  EXPECT_TRUE(composed.ok());
  EXPECT_EQ(composed.composed_trials, 5u);
  EXPECT_EQ(composed.corpus_trials + composed.model_trials +
                composed.race_trials,
            0u);
  for (const auto& t : composed.trials) {
    EXPECT_EQ(t.kind, "composed");
    // Every composed trial carries the two machine-checked invariants on
    // top of its per-component expectations.
    EXPECT_NE(std::find(t.caught_rules.begin(), t.caught_rules.end(),
                        std::string("conservation")),
              t.caught_rules.end());
    EXPECT_NE(std::find(t.caught_rules.begin(), t.caught_rules.end(),
                        std::string("memoized-vs-direct")),
              t.caught_rules.end());
  }
}

TEST(CampaignKindNames, RoundTrip) {
  EXPECT_STREQ(to_string(CampaignKind::kCorpus), "corpus");
  EXPECT_STREQ(to_string(CampaignKind::kModel), "model");
  EXPECT_STREQ(to_string(CampaignKind::kRace), "race");
  EXPECT_STREQ(to_string(CampaignKind::kComposed), "composed");
  EXPECT_STREQ(to_string(CampaignKind::kAll), "all");
}

}  // namespace
}  // namespace dfsm::faultinject
