// Model-fault invariant (DESIGN.md §9): every injected IR defect is
// caught by at least one of the lint rules the mutation names, on every
// curated model that can host it; live-chain defects are caught by the
// dynamic analyses (hidden-path witnesses + chain evaluation).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/hidden_path.h"
#include "faultinject/model_faults.h"
#include "staticlint/linter.h"
#include "staticlint/registry.h"

namespace dfsm::faultinject {
namespace {

using staticlint::LintModel;

bool any_expected_caught(const std::vector<std::string>& expected,
                         const staticlint::LintRun& run) {
  for (const auto& finding : run.findings) {
    for (const auto& id : expected) {
      if (finding.rule_id == id) return true;
    }
  }
  return false;
}

TEST(ModelFaults, EveryAppliedFaultIsCaughtOnEveryCuratedModel) {
  const auto curated = staticlint::curated_lint_models();
  ASSERT_FALSE(curated.empty());
  std::size_t applied = 0;
  for (const auto& original : curated) {
    for (const ModelFault fault : kAllModelFaults) {
      for (std::uint64_t stream = 0; stream < 3; ++stream) {
        LintModel copy = original;
        Rng rng{17, stream};
        const auto mut = apply_model_fault(fault, copy, rng);
        if (!mut) continue;
        ++applied;
        EXPECT_EQ(mut->fault, fault);
        EXPECT_EQ(mut->model, original.name);
        ASSERT_FALSE(mut->expected_rules.empty());
        const auto run = staticlint::lint({copy});
        EXPECT_TRUE(any_expected_caught(mut->expected_rules, run))
            << to_string(fault) << " escaped on " << original.name
            << " (stream " << stream << ")";
      }
    }
  }
  // The grid must actually exercise the taxonomy, not vacuously pass.
  EXPECT_GT(applied, curated.size() * kAllModelFaults.size());
}

TEST(ModelFaults, EveryFaultAppliesSomewhereInTheRegistry) {
  const auto curated = staticlint::curated_lint_models();
  for (const ModelFault fault : kAllModelFaults) {
    bool hosted = false;
    for (const auto& original : curated) {
      LintModel copy = original;
      Rng rng{23, 1};
      if (apply_model_fault(fault, copy, rng)) {
        hosted = true;
        break;
      }
    }
    EXPECT_TRUE(hosted) << to_string(fault) << " applies to no curated model";
  }
}

TEST(ModelFaults, InapplicableFaultReturnsNulloptAndLeavesModelClean) {
  // A metadata-free single-operation chain snapshot cannot host the
  // duplicate-operation or Lemma faults.
  LintModel tiny;
  tiny.name = "tiny";
  tiny.has_metadata = false;
  staticlint::LintOperation op;
  op.name = "only";
  staticlint::LintPfsm p;
  p.name = "pFSM1";
  p.activity = "do the thing";
  p.spec.description = "len <= 8";
  p.impl.description = "len <= 8";
  op.pfsms.push_back(p);
  tiny.operations.push_back(op);
  tiny.gates.push_back("consequence");

  for (const ModelFault fault :
       {ModelFault::kDuplicateOperationName, ModelFault::kDuplicatePfsmName,
        ModelFault::kDeclareAllSecure, ModelFault::kInjectRejectAll}) {
    LintModel copy = tiny;
    Rng rng{29, 2};
    EXPECT_FALSE(apply_model_fault(fault, copy, rng).has_value())
        << to_string(fault);
    EXPECT_EQ(copy.operations.size(), 1u);
    EXPECT_EQ(copy.operations[0].pfsms.size(), 1u);
    EXPECT_EQ(copy.operations[0].name, "only");
  }
}

TEST(ModelFaults, ChainFixtureIsCaughtByDynamicAnalyses) {
  for (std::uint64_t stream = 0; stream < 12; ++stream) {
    Rng rng{31, stream};
    const ChainFaultFixture fx = make_chain_fault(rng);
    ASSERT_EQ(fx.chain.size(), 2u);
    EXPECT_GT(fx.overflow_len, fx.limit);
    EXPECT_LE(fx.benign_len, fx.limit);

    const core::Pfsm& pfsm = fx.chain.operations()[1].pfsms()[0];
    EXPECT_EQ(pfsm.name(), fx.vulnerable_pfsm);
    const auto domain = analysis::int_boundary_domain(
        "payload", "len", {0, fx.limit, fx.impl_limit});
    const auto hp = analysis::detect_hidden_path(pfsm, domain);
    EXPECT_TRUE(hp.vulnerable()) << "stream " << stream << ": " << fx.detail;

    const auto attack = fx.chain.evaluate(fx.inputs_for(fx.overflow_len));
    EXPECT_TRUE(attack.exploited()) << "stream " << stream;
    const auto benign = fx.chain.evaluate(fx.inputs_for(fx.benign_len));
    EXPECT_TRUE(benign.completed()) << "stream " << stream;
    EXPECT_FALSE(benign.exploited()) << "stream " << stream;
  }
}

TEST(ModelFaults, ChainFixtureIsDeterministicInTheRng) {
  Rng ra{37, 4}, rb{37, 4};
  const auto a = make_chain_fault(ra);
  const auto b = make_chain_fault(rb);
  EXPECT_EQ(a.limit, b.limit);
  EXPECT_EQ(a.impl_limit, b.impl_limit);
  EXPECT_EQ(a.impl_unchecked, b.impl_unchecked);
  EXPECT_EQ(a.overflow_len, b.overflow_len);
  EXPECT_EQ(a.detail, b.detail);
}

TEST(ModelFaults, ChainLintFixturesTripExactlyTheirExpectedRules) {
  // The third injection surface: live chains with planted LINT defects.
  // Each fixture must draw its expected rule(s) through the universal
  // lint_chain entry — and nothing else, so campaign detection is
  // attributable to the planted defect.
  for (const ChainLintFault fault : kAllChainLintFaults) {
    for (std::uint64_t stream = 0; stream < 6; ++stream) {
      Rng rng{41, stream};
      const ChainLintFixture fx = make_chain_lint_fault(fault, rng);
      ASSERT_FALSE(fx.expected_rules.empty()) << to_string(fault);

      const auto run = staticlint::lint_chain(fx.chain);
      EXPECT_TRUE(any_expected_caught(fx.expected_rules, run))
          << to_string(fault) << " stream " << stream << ": " << fx.detail;
      for (const auto& finding : run.findings) {
        bool expected = false;
        for (const auto& id : fx.expected_rules) {
          if (finding.rule_id == id) expected = true;
        }
        EXPECT_TRUE(expected)
            << to_string(fault) << " also tripped " << finding.rule_id
            << " at " << finding.where.qualified();
      }
    }
  }
}

TEST(ModelFaults, ChainLintFixtureIsDeterministicInTheRng) {
  for (const ChainLintFault fault : kAllChainLintFaults) {
    Rng ra{53, 9}, rb{53, 9};
    const auto a = make_chain_lint_fault(fault, ra);
    const auto b = make_chain_lint_fault(fault, rb);
    EXPECT_EQ(a.target, b.target) << to_string(fault);
    EXPECT_EQ(a.detail, b.detail) << to_string(fault);
    EXPECT_EQ(a.expected_rules, b.expected_rules) << to_string(fault);
    EXPECT_EQ(a.chain.name(), b.chain.name()) << to_string(fault);
  }
}

}  // namespace
}  // namespace dfsm::faultinject
