// Composed fault trials (DESIGN.md §14): 2-4 mutators per trial with
// machine-checked expectations, the two always-on invariants
// (conservation, memoized-vs-direct), pinned 4-mutator compositions on
// both campaign surfaces, and byte-identical reports across thread
// counts and repeated runs.
#include "faultinject/composed.h"

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/case_study.h"
#include "runtime/thread_pool.h"
#include "staticlint/registry.h"

namespace dfsm::faultinject {
namespace {

namespace fs = std::filesystem;
using runtime::ThreadPool;

bool caught(const TrialResult& t, const std::string& rule) {
  return std::find(t.caught_rules.begin(), t.caught_rules.end(), rule) !=
         t.caught_rules.end();
}

class ComposedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dfsm-composed-" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::create_directories(dir_);
    curated_ = staticlint::curated_lint_models();
    studies_ = apps::all_case_studies();
  }
  void TearDown() override {
    ThreadPool::set_global_threads(ThreadPool::default_threads());
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] CampaignConfig config() const {
    CampaignConfig c;
    c.seed = 1;
    c.trials = 1;
    c.workdir = dir_.string();
    return c;
  }
  [[nodiscard]] ComposedDeps deps() {
    ComposedDeps d;
    d.curated = &curated_;
    d.studies = &studies_;
    d.memo = &memo_;
    d.lint_agg = &lint_agg_;
    d.models_linted = &models_linted_;
    return d;
  }

  fs::path dir_;
  std::vector<staticlint::LintModel> curated_;
  std::vector<std::unique_ptr<apps::CaseStudy>> studies_;
  staticlint::LintMemoStore memo_;
  staticlint::LintRun lint_agg_;
  std::size_t models_linted_ = 0;
};

TEST(ComposedMutatorNames, CoverTheWholePool) {
  std::set<std::string> names;
  for (const auto m : kAllComposedMutators) {
    const std::string name = to_string(m);
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), kAllComposedMutators.size());
  EXPECT_STREQ(to_string(ComposedMutator::kCorruptDiscoveryOracle),
               "corrupt-oracle");
  EXPECT_STREQ(to_string(ComposedMutator::kDesyncMonitorModel),
               "desync-monitor");
  EXPECT_STREQ(to_string(ComposedMutator::kBiasAnomalyThreshold),
               "bias-anomaly");
}

TEST(ComposedMutatorNames, CorpusClassifierAndFaultMapAgree) {
  std::size_t corpus = 0;
  for (const auto m : kAllComposedMutators) {
    if (is_corpus_mutator(m)) {
      ++corpus;
      EXPECT_NO_THROW((void)corpus_fault_of(m));
    } else {
      EXPECT_THROW((void)corpus_fault_of(m), std::invalid_argument);
    }
  }
  EXPECT_EQ(corpus, 9u);
}

TEST(ComposedDraw, YieldsTwoToFourDistinctMutators) {
  Rng rng{42, 0};
  std::set<std::size_t> sizes;
  for (int i = 0; i < 200; ++i) {
    const auto drawn = draw_composition(rng);
    ASSERT_GE(drawn.size(), 2u);
    ASSERT_LE(drawn.size(), 4u);
    sizes.insert(drawn.size());
    std::set<ComposedMutator> distinct(drawn.begin(), drawn.end());
    EXPECT_EQ(distinct.size(), drawn.size());
  }
  // All three composition widths appear over 200 draws.
  EXPECT_EQ(sizes, (std::set<std::size_t>{2, 3, 4}));
}

TEST_F(ComposedTest, PinnedFourCorpusCompositionHoldsConservation) {
  Rng rng{7, 0};
  const auto d = deps();
  const auto r = run_composed_trial_with(
      {ComposedMutator::kCorpusTruncateTail, ComposedMutator::kCorpusMissingHeader,
       ComposedMutator::kCorpusDropShard, ComposedMutator::kCorpusTransientIo},
      config(), 0, rng, d);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.kind, "composed");
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.conserved);
  EXPECT_TRUE(caught(r, "conservation"));
  EXPECT_TRUE(caught(r, "memoized-vs-direct"));
  // The fault label is the "+"-joined composition, in draw order.
  EXPECT_EQ(r.fault, "truncate-tail+missing-header+drop-shard+transient-io");
  // truncate-tail and missing-header plant defects, so strict ingest threw.
  EXPECT_TRUE(r.strict_threw);
  EXPECT_EQ(r.strict_error.find(dir_.string()), std::string::npos);
}

TEST_F(ComposedTest, PinnedFourAnalysisCompositionCatchesEveryLayer) {
  Rng rng{11, 0};
  const auto d = deps();
  const auto r = run_composed_trial_with(
      {ComposedMutator::kSweepCacheFault, ComposedMutator::kCorruptDiscoveryOracle,
       ComposedMutator::kDesyncMonitorModel,
       ComposedMutator::kBiasAnomalyThreshold},
      config(), 0, rng, d);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_TRUE(r.detected);
  // The clean corpus pipeline ran anyway, so conservation still holds.
  EXPECT_TRUE(r.conserved);
  EXPECT_TRUE(caught(r, "conservation"));
  EXPECT_TRUE(caught(r, "memoized-vs-direct"));
  EXPECT_TRUE(caught(r, "oracle-divergence"));
  EXPECT_TRUE(caught(r, "monitor-desync"));
  EXPECT_TRUE(caught(r, "anomaly-threshold-bias"));
  EXPECT_FALSE(r.strict_threw);  // no corpus mutator drawn
}

TEST_F(ComposedTest, BenignCorpusCompositionStaysClean) {
  Rng rng{13, 0};
  const auto d = deps();
  const auto r = run_composed_trial_with(
      {ComposedMutator::kCorpusDropShard, ComposedMutator::kCorpusReorderShards,
       ComposedMutator::kCorpusTransientIo},
      config(), 0, rng, d);
  EXPECT_TRUE(r.ok) << r.failure;
  // All-benign corpus mutations never trip strict ingest.
  EXPECT_FALSE(r.strict_threw);
  EXPECT_TRUE(r.conserved);
}

TEST_F(ComposedTest, DegenerateCompositionsAreRejected) {
  Rng rng{1, 0};
  const auto d = deps();
  EXPECT_THROW((void)run_composed_trial_with({}, config(), 0, rng, d),
               std::invalid_argument);
  EXPECT_THROW((void)run_composed_trial_with(
                   {ComposedMutator::kCorpusDropShard,
                    ComposedMutator::kCorpusDropShard},
                   config(), 0, rng, d),
               std::invalid_argument);
  ComposedDeps no_required;
  EXPECT_THROW((void)run_composed_trial_with(
                   {ComposedMutator::kCorpusDropShard,
                    ComposedMutator::kCorpusTransientIo},
                   config(), 0, rng, no_required),
               std::invalid_argument);
}

TEST_F(ComposedTest, OptionalLintDepsMayBeNull) {
  // memo/lint_agg/models_linted are optional: the trial runs its lints
  // against a local store instead of the campaign-wide aggregate.
  Rng rng{19, 0};
  ComposedDeps d;
  d.curated = &curated_;
  d.studies = &studies_;
  const auto r = run_composed_trial_with(
      {ComposedMutator::kModelIrFault, ComposedMutator::kChainLintFault},
      config(), 0, rng, d);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_TRUE(r.detected);
}

TEST_F(ComposedTest, CampaignIsByteIdenticalAcrossThreadCountsAndRuns) {
  auto cfg = config();
  cfg.trials = 8;
  cfg.campaign = CampaignKind::kComposed;
  std::vector<std::string> json;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool::set_global_threads(threads);
    json.push_back(emit_json(run_campaign(cfg)));
  }
  EXPECT_EQ(json[0], json[1]);
  // Repeated run at the same thread count and seed: identical too.
  const auto again = emit_json(run_campaign(cfg));
  EXPECT_EQ(json[1], again);
}

TEST_F(ComposedTest, EveryDrawnCompositionPassesItsExpectations) {
  // A seeded sweep over the drawn-composition path (what run_campaign
  // executes per kComposed trial), including at least one 4-mutator draw.
  const auto d = deps();
  std::size_t four_wide = 0;
  for (std::size_t t = 0; t < 12; ++t) {
    Rng rng{23, t};
    const auto r = run_composed_trial(config(), t, rng, d);
    EXPECT_TRUE(r.ok) << "trial " << t << ": " << r.failure;
    EXPECT_TRUE(r.detected) << "trial " << t;
    EXPECT_TRUE(caught(r, "conservation")) << "trial " << t;
    EXPECT_TRUE(caught(r, "memoized-vs-direct")) << "trial " << t;
    four_wide += std::count(r.fault.begin(), r.fault.end(), '+') == 3 ? 1 : 0;
  }
  EXPECT_GT(four_wide, 0u);
}

}  // namespace
}  // namespace dfsm::faultinject
