// Snapshot-layer fault mutators (faultinject/snapshot_faults.h): every
// mutation must be refused by the colsnap loader with a
// "<file>:<column>: <reason>" naming the planted defect, the refusal is
// all-or-nothing, and the pristine shard set conserves every record.
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bugtraq/colsnap.h"
#include "bugtraq/corpus.h"
#include "faultinject/campaign.h"
#include "faultinject/snapshot_faults.h"

namespace dfsm::faultinject {
namespace {

SnapshotSet make_set(std::size_t records, std::size_t shards,
                     std::uint64_t seed) {
  const auto db = bugtraq::synthetic_corpus_n(records, seed);
  SnapshotSet set;
  set.names = bugtraq::colsnap_shard_paths("t", shards);
  set.contents = bugtraq::encode_colsnap_shards(*db.snapshot(), shards);
  return set;
}

void expect_refused_with(const SnapshotSet& set, const std::string& needle) {
  try {
    const auto db = bugtraq::decode_colsnap_shards(set.contents, set.names);
    FAIL() << "loader accepted a mutated snapshot (" << db.size()
           << " records); wanted '" << needle << "'";
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find(needle), std::string::npos)
        << "actual: " << ex.what();
  }
}

TEST(SnapshotFaults, Names) {
  EXPECT_STREQ(to_string(SnapshotFault::kCorruptChecksum), "corrupt-checksum");
  EXPECT_STREQ(to_string(SnapshotFault::kTruncateColumn), "truncate-column");
  EXPECT_STREQ(to_string(SnapshotFault::kTornPublish), "torn-publish");
}

class SnapshotFaultCase
    : public ::testing::TestWithParam<SnapshotFault> {};

TEST_P(SnapshotFaultCase, LoaderRefusesWithFileColumnReason) {
  for (std::uint64_t stream = 0; stream < 8; ++stream) {
    Rng rng{99, stream};
    auto set = make_set(150, 3, stream);
    const std::vector<std::string> pristine = set.contents;

    const auto mut = apply_snapshot_fault(GetParam(), set, rng);
    EXPECT_EQ(mut.fault, GetParam());
    EXPECT_FALSE(mut.shard.empty());
    EXPECT_FALSE(mut.column.empty());
    ASSERT_FALSE(mut.expect_substr.empty());
    // The promised message names the shard label AND the column.
    EXPECT_NE(mut.expect_substr.find(mut.shard), std::string::npos);
    EXPECT_NE(mut.expect_substr.find(mut.column), std::string::npos);
    expect_refused_with(set, mut.expect_substr);

    // Conservation: the untouched bytes still decode to all 150 records.
    const auto clean = bugtraq::decode_colsnap_shards(pristine, set.names);
    EXPECT_EQ(clean.size(), 150u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFaults, SnapshotFaultCase,
                         ::testing::ValuesIn(kAllSnapshotFaults));

TEST(SnapshotFaults, DeterministicInTheRng) {
  for (const auto fault : kAllSnapshotFaults) {
    Rng a{7, 3};
    Rng b{7, 3};
    auto set_a = make_set(120, 4, 1);
    auto set_b = make_set(120, 4, 1);
    const auto mut_a = apply_snapshot_fault(fault, set_a, a);
    const auto mut_b = apply_snapshot_fault(fault, set_b, b);
    EXPECT_EQ(mut_a.detail, mut_b.detail);
    EXPECT_EQ(mut_a.expect_substr, mut_b.expect_substr);
    EXPECT_EQ(set_a.contents, set_b.contents);
  }
}

TEST(SnapshotFaults, TornPublishNeedsTwoShards) {
  Rng rng{1, 1};
  auto set = make_set(60, 1, 2);
  EXPECT_THROW((void)apply_snapshot_fault(SnapshotFault::kTornPublish, set, rng),
               std::invalid_argument);
}

TEST(SnapshotFaults, EmptySetIsRejected) {
  Rng rng{1, 2};
  SnapshotSet set;
  EXPECT_THROW(
      (void)apply_snapshot_fault(SnapshotFault::kCorruptChecksum, set, rng),
      std::invalid_argument);
}

TEST(SnapshotFaults, CorpusCampaignRunsSnapshotTrials) {
  CampaignConfig cfg;
  cfg.seed = 11;
  cfg.trials = 24;
  cfg.campaign = CampaignKind::kCorpus;
  cfg.workdir = ::testing::TempDir();
  const auto report = run_campaign(cfg);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.corpus_trials, 24u);

  std::size_t snapshot_trials = 0;
  for (const auto& t : report.trials) {
    if (t.kind != "snapshot") continue;
    ++snapshot_trials;
    EXPECT_TRUE(t.ok) << t.failure;
    EXPECT_TRUE(t.strict_threw);
    EXPECT_TRUE(t.conserved);
    EXPECT_EQ(t.ingested, t.generated);
    EXPECT_NE(t.strict_error.find(":"), std::string::npos);
  }
  // The seeded dispatch sends ~1/4 of corpus draws at the snapshot
  // loader; with 24 trials at this seed some must land there.
  EXPECT_GT(snapshot_trials, 0u);
  EXPECT_LT(snapshot_trials, 24u);

  // Snapshot trials appear in both emitters.
  EXPECT_NE(emit_text(report).find("snapshot/"), std::string::npos);
  EXPECT_NE(emit_json(report).find("\"kind\": \"snapshot\""),
            std::string::npos);
}

}  // namespace
}  // namespace dfsm::faultinject
