#include "apps/xterm.h"

#include <gtest/gtest.h>

namespace dfsm::apps {
namespace {

TEST(Xterm, BenignLoggingReachesTheLogFile) {
  XtermLogger app;
  EXPECT_TRUE(app.run_benign());
}

TEST(Xterm, RaceWindowExistsInTheVulnerableConfiguration) {
  XtermLogger app;  // permission check on, no atomic binding (real xterm)
  const auto r = app.run_race(/*window_steps=*/0);
  EXPECT_TRUE(r.report.race_exists());
  // Victim 3 steps, attacker 2: C(5,2) = 10 schedules; exactly one places
  // both attacker steps inside the check-to-open window.
  EXPECT_EQ(r.report.total_schedules, 10u);
  EXPECT_EQ(r.report.violating_schedules, 1u);
}

TEST(Xterm, WideningTheWindowRaisesTheViolationFraction) {
  XtermLogger app;
  double last = -1.0;
  for (std::size_t w : {0u, 1u, 2u, 4u}) {
    const auto r = app.run_race(w);
    EXPECT_GT(r.report.violation_fraction(), last)
        << "window " << w << " should be strictly more dangerous";
    last = r.report.violation_fraction();
  }
}

TEST(Xterm, ViolatingScheduleHasBothAttackerStepsInTheWindow) {
  XtermLogger app;
  const auto r = app.run_race(0);
  for (const auto& outcome : r.report.outcomes) {
    if (!outcome.violated) continue;
    // Order must be: check, unlink, symlink, open, write.
    const auto pos = [&outcome](const std::string& needle) {
      for (std::size_t i = 0; i < outcome.order.size(); ++i) {
        if (outcome.order[i].find(needle) != std::string::npos) return i;
      }
      return outcome.order.size();
    };
    EXPECT_LT(pos("access("), pos("tom: unlink"));
    EXPECT_LT(pos("tom: unlink"), pos("tom: symlink"));
    EXPECT_LT(pos("tom: symlink"), pos("xterm: open"));
  }
}

TEST(Xterm, AtomicBindingFoilsEverySchedule) {
  XtermLogger app{XtermChecks{.write_permission = true, .atomic_binding = true}};
  for (std::size_t w : {0u, 1u, 3u}) {
    const auto r = app.run_race(w);
    EXPECT_FALSE(r.report.race_exists()) << "window " << w;
  }
  // And benign logging still works with the fix.
  EXPECT_TRUE(app.run_benign());
}

TEST(Xterm, DisabledPermissionCheckIsWorseThanARace) {
  // With pFSM1 off, the attacker doesn't even need to win a window: a
  // pre-planted symlink suffices (more schedules violate).
  XtermLogger vulnerable{XtermChecks{.write_permission = false}};
  XtermLogger normal{};
  EXPECT_GT(vulnerable.run_race(0).report.violating_schedules,
            normal.run_race(0).report.violating_schedules);
}

TEST(Xterm, PermissionCheckAloneStopsPrePlantedSymlinks) {
  // Schedules where the symlink exists BEFORE the check must all be safe:
  // access(tom, link->/etc/passwd, W) is false.
  XtermLogger app;
  const auto r = app.run_race(0);
  for (const auto& outcome : r.report.outcomes) {
    if (outcome.violated) continue;
    // Fine — just assert the converse via counts (1 violating of 10).
  }
  EXPECT_EQ(r.report.violating_schedules, 1u);
}

TEST(XtermAtomic, SingleStepAttackerWinsMoreSchedules) {
  XtermLogger app;
  for (const std::size_t w : {0u, 1u, 3u}) {
    const auto two_step = app.run_race(w);
    const auto atomic = app.run_race_atomic(w);
    EXPECT_GT(atomic.report.violation_fraction(),
              two_step.report.violation_fraction())
        << "window " << w;
  }
}

TEST(XtermAtomic, ViolationCountMatchesClosedForm) {
  // Victim w+3 steps, attacker 1 step: w+4 schedules; the rename wins
  // whenever it lands in one of the w+1 gaps between check and open.
  XtermLogger app;
  for (const std::size_t w : {0u, 1u, 2u, 4u}) {
    const auto r = app.run_race_atomic(w);
    EXPECT_EQ(r.report.total_schedules, w + 4u) << w;
    EXPECT_EQ(r.report.violating_schedules, w + 1u) << w;
  }
}

TEST(XtermAtomic, AtomicBindingFixStillFoilsTheStrongerAttacker) {
  XtermLogger app{XtermChecks{.write_permission = true, .atomic_binding = true}};
  for (const std::size_t w : {0u, 2u, 4u}) {
    EXPECT_FALSE(app.run_race_atomic(w).report.race_exists()) << w;
  }
}

TEST(XtermAtomic, PreStagedSymlinkAloneDoesNotDefeatThePermissionCheck) {
  // If the rename happens BEFORE the check, access() sees /etc/passwd and
  // refuses — only the window placement wins.
  XtermLogger app;
  const auto r = app.run_race_atomic(0);
  for (const auto& o : r.report.outcomes) {
    if (o.order.front().find("rename") != std::string::npos) {
      EXPECT_FALSE(o.violated);
    }
  }
}

TEST(FsRename, AtomicReplaceSemantics) {
  XtermLogger app;
  auto fs = app.initial_world_with_staged_symlink();
  const fssim::Cred tom = fssim::Cred::user_named("tom");
  ASSERT_TRUE(fs.rename(tom, "/usr/tom/evil", "/usr/tom/x"));
  // The old file is gone, the symlink sits at its name, the source name
  // is free.
  auto st = fs.lstat("/usr/tom/x");
  ASSERT_TRUE(st);
  EXPECT_EQ(st.value.type, fssim::NodeType::kSymlink);
  EXPECT_EQ(fs.lstat("/usr/tom/evil").error, fssim::FsError::kNoEnt);
}

TEST(FsRename, PermissionAndDirectoryRules) {
  XtermLogger app;
  auto fs = app.initial_world_with_staged_symlink();
  const fssim::Cred eve = fssim::Cred::user_named("eve");
  EXPECT_EQ(fs.rename(eve, "/usr/tom/evil", "/usr/tom/x").error,
            fssim::FsError::kAccess);
  const fssim::Cred root = fssim::Cred::root();
  EXPECT_EQ(fs.rename(root, "/usr/tom/evil", "/usr/tom").error,
            fssim::FsError::kIsDir);
  EXPECT_EQ(fs.rename(root, "/usr/tom/ghost", "/usr/tom/x2").error,
            fssim::FsError::kNoEnt);
}

TEST(XtermCaseStudy, MasksBehaveLikeThePaper) {
  const auto study = make_xterm_case_study();
  EXPECT_EQ(study->checks().size(), 2u);
  EXPECT_TRUE(study->run_exploit({true, false}).exploited);   // real xterm
  EXPECT_FALSE(study->run_exploit({true, true}).exploited);   // fixed
  EXPECT_FALSE(study->run_exploit({false, true}).exploited);  // binding alone
  EXPECT_TRUE(study->run_benign({true, true}).service_ok);
}

TEST(XtermCaseStudy, ModelDeclaresPfsm1Secure) {
  const auto model = make_xterm_case_study()->model();
  const auto summaries = model.summaries();
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_TRUE(summaries[0].declared_secure);
  EXPECT_FALSE(summaries[1].declared_secure);
  EXPECT_EQ(summaries[1].type, core::PfsmType::kReferenceConsistencyCheck);
}

}  // namespace
}  // namespace dfsm::apps
