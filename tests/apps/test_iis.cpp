#include "apps/iis.h"

#include <gtest/gtest.h>

namespace dfsm::apps {
namespace {

TEST(Iis, BenignCgiRequestExecutesInsideScripts) {
  IisDecoder app;
  auto fs = app.initial_world();
  const auto r = app.handle_cgi_request(fs, "hello.cgi");
  EXPECT_TRUE(r.executed);
  EXPECT_FALSE(r.outside_scripts);
  EXPECT_EQ(r.resolved_path, "/wwwroot/scripts/hello.cgi");
}

TEST(Iis, EncodedBenignPathDecodesAndExecutes) {
  IisDecoder app;
  auto fs = app.initial_world();
  const auto r = app.handle_cgi_request(fs, "hello%2ecgi");
  EXPECT_TRUE(r.executed);
  EXPECT_EQ(r.resolved_path, "/wwwroot/scripts/hello.cgi");
}

TEST(Iis, PlainTraversalIsRejectedByTheShippedCheck) {
  IisDecoder app;
  auto fs = app.initial_world();
  const auto r = app.handle_cgi_request(fs, "../../winnt/system32/cmd.exe");
  EXPECT_TRUE(r.rejected);
  EXPECT_FALSE(r.executed);
}

TEST(Iis, SingleEncodedTraversalIsAlsoRejected) {
  // "..%2f" decodes to "../" in the FIRST pass — the shipped check sees it.
  IisDecoder app;
  auto fs = app.initial_world();
  const auto r = app.handle_cgi_request(fs, "..%2f..%2fwinnt/system32/cmd.exe");
  EXPECT_TRUE(r.rejected);
}

TEST(Iis, DoubleEncodedTraversalSlipsThrough) {
  IisDecoder app;
  auto fs = app.initial_world();
  const auto r = app.handle_cgi_request(fs, IisDecoder::nimda_payload());
  EXPECT_FALSE(r.rejected);
  EXPECT_EQ(r.decoded_once, "..%2f..%2fwinnt/system32/cmd.exe");
  EXPECT_EQ(r.decoded_twice, "../../winnt/system32/cmd.exe");
  EXPECT_TRUE(r.executed);
  EXPECT_TRUE(r.outside_scripts);
  EXPECT_EQ(r.resolved_path, "/winnt/system32/cmd.exe");
}

TEST(Iis, SingleDecodeFixFoilsNimda) {
  IisDecoder app{IisChecks{.single_decode = true}};
  auto fs = app.initial_world();
  const auto r = app.handle_cgi_request(fs, IisDecoder::nimda_payload());
  // The once-decoded name "..%2f..." is just a weird filename that does
  // not exist under the scripts root.
  EXPECT_FALSE(r.executed);
  EXPECT_FALSE(r.outside_scripts && r.executed);
}

TEST(Iis, RecheckAfterDecodeFoilsNimda) {
  IisDecoder app{IisChecks{.recheck_after_decode = true}};
  auto fs = app.initial_world();
  const auto r = app.handle_cgi_request(fs, IisDecoder::nimda_payload());
  EXPECT_TRUE(r.rejected);
  EXPECT_NE(r.rejected_by.find("re-check"), std::string::npos);
}

TEST(Iis, FixesDoNotBreakBenignRequests) {
  for (const bool single : {false, true}) {
    for (const bool recheck : {false, true}) {
      IisDecoder app{IisChecks{single, recheck}};
      auto fs = app.initial_world();
      const auto r = app.handle_cgi_request(fs, "hello.cgi");
      EXPECT_TRUE(r.executed) << single << recheck;
      EXPECT_FALSE(r.outside_scripts);
    }
  }
}

TEST(Iis, MissingTargetIsNotExecution) {
  IisDecoder app;
  auto fs = app.initial_world();
  const auto r = app.handle_cgi_request(fs, "ghost.cgi");
  EXPECT_FALSE(r.executed);
  EXPECT_FALSE(r.rejected);
}

TEST(IisCaseStudy, EitherFixAloneFoils) {
  const auto study = make_iis_case_study();
  EXPECT_TRUE(study->run_exploit({false, false}).exploited);
  EXPECT_FALSE(study->run_exploit({true, false}).exploited);
  EXPECT_FALSE(study->run_exploit({false, true}).exploited);
  EXPECT_FALSE(study->run_exploit({true, true}).exploited);
  EXPECT_TRUE(study->run_benign({false, false}).service_ok);
}

TEST(IisCaseStudy, ModelPredicatesDisagreeExactlyOnDoubleEncodedNames) {
  const auto model = make_iis_case_study()->model();
  const auto& pfsm = model.chain().operations()[0].pfsms()[0];
  core::Object nimda{"filepath"};
  nimda.with("once_decoded", std::string("..%2fwinnt"))
       .with("fully_decoded", std::string("../winnt"));
  EXPECT_TRUE(pfsm.hidden_path_for(nimda));

  core::Object plain{"filepath"};
  plain.with("once_decoded", std::string("../x"))
       .with("fully_decoded", std::string("../x"));
  EXPECT_FALSE(pfsm.hidden_path_for(plain));  // impl also rejects

  core::Object benign{"filepath"};
  benign.with("once_decoded", std::string("hello.cgi"))
        .with("fully_decoded", std::string("hello.cgi"));
  EXPECT_FALSE(pfsm.hidden_path_for(benign));
}

}  // namespace
}  // namespace dfsm::apps
