#include "apps/ghttpd.h"

#include <gtest/gtest.h>

namespace dfsm::apps {
namespace {

TEST(Ghttpd, BenignRequestIsLoggedAndReturnsNormally) {
  Ghttpd app;
  const auto r = app.serve("GET /index.html HTTP/1.0");
  EXPECT_TRUE(r.logged);
  EXPECT_FALSE(r.ret_modified);
  EXPECT_FALSE(r.mcode_executed);
  EXPECT_NE(r.detail.find("serveconnection"), std::string::npos);
}

TEST(Ghttpd, ExactlyFullBufferDoesNotSmash) {
  Ghttpd app;
  const auto r = app.serve(std::string(Ghttpd::kLogBufferSize - 1, 'a'));
  EXPECT_FALSE(r.ret_modified);
  EXPECT_FALSE(r.mcode_executed);
}

TEST(Ghttpd, OverflowWithoutCraftedBytesCrashes) {
  Ghttpd app;
  // 300 'a's smash the return address with 0x616161... — a wild address.
  const auto r = app.serve(std::string(300, 'a'));
  EXPECT_TRUE(r.ret_modified);
  EXPECT_TRUE(r.crashed);
  EXPECT_FALSE(r.mcode_executed);
}

TEST(Ghttpd, CraftedExploitLandsInMcode) {
  Ghttpd app;
  const auto payload = app.build_exploit();
  EXPECT_EQ(payload.size(), Ghttpd::kLogBufferSize + 3);
  const auto r = app.serve(payload);
  EXPECT_TRUE(r.ret_modified);
  EXPECT_TRUE(r.mcode_executed);
  EXPECT_FALSE(r.canary_smashed);  // no canary configured in this build
}

TEST(Ghttpd, LengthCheckFoilsTheExploit) {
  Ghttpd app{GhttpdChecks{.length_check = true}};
  const auto r = app.serve(app.build_exploit());
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(r.rejected_by, "pFSM1");
  EXPECT_FALSE(r.logged);
}

TEST(Ghttpd, LengthCheckPassesBenignRequests) {
  Ghttpd app{GhttpdChecks{.length_check = true}};
  const auto r = app.serve("GET / HTTP/1.0");
  EXPECT_TRUE(r.logged);
  EXPECT_FALSE(r.rejected);
}

TEST(Ghttpd, StackGuardDetectsTheSmash) {
  Ghttpd app{GhttpdChecks{.stackguard = true}};
  const auto r = app.serve(app.build_exploit());
  EXPECT_TRUE(r.canary_smashed);
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(r.rejected_by, "pFSM2");
  EXPECT_FALSE(r.mcode_executed);
}

TEST(Ghttpd, StackGuardPassesBenignRequests) {
  Ghttpd app{GhttpdChecks{.stackguard = true}};
  const auto r = app.serve("GET / HTTP/1.0");
  EXPECT_FALSE(r.canary_smashed);
  EXPECT_FALSE(r.rejected);
}

TEST(Ghttpd, ExploitUsesThreeByteAddressTrick) {
  // The payload carries only the three NUL-free low bytes of the Mcode
  // address; the terminator plus pre-existing zero high bytes complete
  // the 64-bit pointer — the 2003 exploit mechanics.
  Ghttpd app;
  const auto payload = app.build_exploit();
  const auto mcode = SandboxProcess::kMcodeBase;
  EXPECT_EQ(static_cast<std::uint8_t>(payload[Ghttpd::kLogBufferSize]),
            mcode & 0xFF);
  EXPECT_EQ(static_cast<std::uint8_t>(payload[Ghttpd::kLogBufferSize + 2]),
            (mcode >> 16) & 0xFF);
  for (std::size_t i = Ghttpd::kLogBufferSize; i < payload.size(); ++i) {
    EXPECT_NE(payload[i], '\0');
  }
}

TEST(Ghttpd, SnprintfFixStopsTheOverflowSilently) {
  // The actual GHTTPD patch: vsnprintf caps the copy; the request is
  // still logged (truncated) and the return address survives.
  apps::GhttpdChecks fixed;
  fixed.use_snprintf = true;
  Ghttpd app{fixed};
  const auto r = app.serve(app.build_exploit());
  EXPECT_TRUE(r.logged);
  EXPECT_FALSE(r.ret_modified);
  EXPECT_FALSE(r.mcode_executed);
  EXPECT_FALSE(r.crashed);
}

TEST(Ghttpd, RetConsistencyCheckFoilsWithoutACanary) {
  apps::GhttpdChecks checks;
  checks.ret_consistency = true;  // split-stack style, no canary
  Ghttpd app{checks};
  const auto r = app.serve(app.build_exploit());
  EXPECT_TRUE(r.ret_modified);
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(r.rejected_by, "pFSM2");
  EXPECT_FALSE(r.mcode_executed);
  EXPECT_FALSE(r.canary_smashed);
}

TEST(Ghttpd, SnprintfFixAcrossLengthSweep) {
  apps::GhttpdChecks fixed;
  fixed.use_snprintf = true;
  for (const std::size_t len : {0u, 199u, 200u, 201u, 300u, 5000u}) {
    Ghttpd app{fixed};
    const auto r = app.serve(std::string(len, 'a'));
    EXPECT_FALSE(r.ret_modified) << len;
    EXPECT_FALSE(r.crashed) << len;
  }
}

TEST(GhttpdCaseStudy, MaskSweepShape) {
  const auto study = make_ghttpd_case_study();
  EXPECT_EQ(study->checks().size(), 2u);
  EXPECT_TRUE(study->run_exploit({false, false}).exploited);
  EXPECT_FALSE(study->run_exploit({true, false}).exploited);
  EXPECT_FALSE(study->run_exploit({false, true}).exploited);
  EXPECT_TRUE(study->run_benign({true, true}).service_ok);
  // The two pFSMs belong to different operations (Table 2's GHTTPD row).
  EXPECT_NE(study->checks()[0].operation_index, study->checks()[1].operation_index);
}

}  // namespace
}  // namespace dfsm::apps
