#include "apps/rwall.h"

#include <gtest/gtest.h>

namespace dfsm::apps {
namespace {

TEST(Rwall, BenignWallReachesTheTerminal) {
  RwallDaemon app;
  auto fs = app.initial_world();
  const auto r = app.run_benign(fs, "shutdown at 5pm\n");
  ASSERT_EQ(r.wrote_to.size(), 1u);
  EXPECT_EQ(r.wrote_to[0], "/dev/pts/25");
  EXPECT_EQ(fs.read("/dev/pts/25").value, "shutdown at 5pm\n");
  EXPECT_FALSE(r.passwd_corrupted);
}

TEST(Rwall, AttackCorruptsPasswdInTheVulnerableConfiguration) {
  RwallDaemon app;  // utmp world-writable, no type check
  auto fs = app.initial_world();
  const auto r = app.run_attack(fs, "../etc/passwd", "evil::0:0::/:/bin/sh\n");
  EXPECT_TRUE(r.utmp_tampered);
  EXPECT_TRUE(r.passwd_corrupted);
  EXPECT_NE(fs.read("/etc/passwd").value.find("evil"), std::string::npos);
}

TEST(Rwall, AttackAlsoDeliversToLegitimateTerminals) {
  RwallDaemon app;
  auto fs = app.initial_world();
  const auto r = app.run_attack(fs, "../etc/passwd", "msg\n");
  // Both the terminal and the regular file receive the message.
  EXPECT_EQ(r.wrote_to.size(), 2u);
}

TEST(Rwall, RootOnlyUtmpFoilsTheAttackAtStepOne) {
  RwallDaemon app{RwallChecks{.utmp_root_only = true}};
  auto fs = app.initial_world();
  const auto r = app.run_attack(fs, "../etc/passwd", "evil\n");
  EXPECT_TRUE(r.attacker_rejected);
  EXPECT_FALSE(r.utmp_tampered);
  EXPECT_FALSE(r.passwd_corrupted);
}

TEST(Rwall, TerminalTypeCheckFoilsTheWrite) {
  RwallDaemon app{RwallChecks{.terminal_type_check = true}};
  auto fs = app.initial_world();
  const auto r = app.run_attack(fs, "../etc/passwd", "evil\n");
  EXPECT_TRUE(r.utmp_tampered);  // the entry lands in utmp...
  EXPECT_FALSE(r.passwd_corrupted);  // ...but the daemon refuses the target
  ASSERT_EQ(r.skipped.size(), 1u);
  EXPECT_EQ(r.skipped[0], "/etc/passwd");
}

TEST(Rwall, TypeCheckDoesNotBreakBenignDelivery) {
  RwallDaemon app{RwallChecks{.utmp_root_only = true, .terminal_type_check = true}};
  auto fs = app.initial_world();
  const auto r = app.run_benign(fs, "hello\n");
  EXPECT_EQ(r.wrote_to.size(), 1u);
}

TEST(Rwall, MissingEntriesAreSkippedQuietly) {
  RwallDaemon app;
  auto fs = app.initial_world();
  const auto r = app.run_attack(fs, "pts/does-not-exist", "msg\n");
  EXPECT_FALSE(r.passwd_corrupted);
  EXPECT_EQ(r.wrote_to.size(), 1u);  // only the real terminal
}

TEST(Rwall, UtmpPathsResolveRelativeToDev) {
  RwallDaemon app;
  auto fs = app.initial_world();
  const auto r = app.run_benign(fs, "m\n");
  EXPECT_EQ(r.wrote_to[0].rfind("/dev/", 0), 0u);
}

TEST(RwallRace, WindowSweepKeepsExactlyOneViolatingSchedule) {
  // The daemon's victim sequence is [snapshot] [w no-ops] [broadcast] vs
  // the 2-step attacker: C(w+4, 2) schedules total, and /etc/passwd is
  // corrupted in exactly ONE of them (both attacker steps entirely before
  // the snapshot) no matter how wide the window gets.
  RwallDaemon app;
  const std::size_t expected_totals[] = {6, 10, 15, 21};
  for (std::size_t w = 0; w < 4; ++w) {
    const auto report = app.run_race(w);
    EXPECT_EQ(report.total_schedules, expected_totals[w]) << "window " << w;
    EXPECT_EQ(report.total_schedules, fssim::interleaving_count(w + 2, 2))
        << "window " << w;
    EXPECT_EQ(report.violating_schedules, 1u) << "window " << w;
  }
}

TEST(RwallCaseStudy, LemmaShape) {
  const auto study = make_rwall_case_study();
  EXPECT_EQ(study->checks().size(), 2u);
  // The two checks live in DIFFERENT operations (Figure 6's operation 1
  // and operation 2) — securing either forms a secured operation.
  EXPECT_EQ(study->checks()[0].operation_index, 0u);
  EXPECT_EQ(study->checks()[1].operation_index, 1u);
  EXPECT_TRUE(study->run_exploit({false, false}).exploited);
  EXPECT_FALSE(study->run_exploit({true, false}).exploited);
  EXPECT_FALSE(study->run_exploit({false, true}).exploited);
  EXPECT_TRUE(study->run_benign({true, true}).service_ok);
}

TEST(RwallCaseStudy, ModelHasObjectTypeCheck) {
  const auto model = make_rwall_case_study()->model();
  const auto census = model.type_census();
  EXPECT_EQ(census[static_cast<std::size_t>(core::PfsmType::kObjectTypeCheck)], 1u);
}

}  // namespace
}  // namespace dfsm::apps
