#include "apps/rwall.h"

#include <gtest/gtest.h>

namespace dfsm::apps {
namespace {

TEST(Rwall, BenignWallReachesTheTerminal) {
  RwallDaemon app;
  auto fs = app.initial_world();
  const auto r = app.run_benign(fs, "shutdown at 5pm\n");
  ASSERT_EQ(r.wrote_to.size(), 1u);
  EXPECT_EQ(r.wrote_to[0], "/dev/pts/25");
  EXPECT_EQ(fs.read("/dev/pts/25").value, "shutdown at 5pm\n");
  EXPECT_FALSE(r.passwd_corrupted);
}

TEST(Rwall, AttackCorruptsPasswdInTheVulnerableConfiguration) {
  RwallDaemon app;  // utmp world-writable, no type check
  auto fs = app.initial_world();
  const auto r = app.run_attack(fs, "../etc/passwd", "evil::0:0::/:/bin/sh\n");
  EXPECT_TRUE(r.utmp_tampered);
  EXPECT_TRUE(r.passwd_corrupted);
  EXPECT_NE(fs.read("/etc/passwd").value.find("evil"), std::string::npos);
}

TEST(Rwall, AttackAlsoDeliversToLegitimateTerminals) {
  RwallDaemon app;
  auto fs = app.initial_world();
  const auto r = app.run_attack(fs, "../etc/passwd", "msg\n");
  // Both the terminal and the regular file receive the message.
  EXPECT_EQ(r.wrote_to.size(), 2u);
}

TEST(Rwall, RootOnlyUtmpFoilsTheAttackAtStepOne) {
  RwallDaemon app{RwallChecks{.utmp_root_only = true}};
  auto fs = app.initial_world();
  const auto r = app.run_attack(fs, "../etc/passwd", "evil\n");
  EXPECT_TRUE(r.attacker_rejected);
  EXPECT_FALSE(r.utmp_tampered);
  EXPECT_FALSE(r.passwd_corrupted);
}

TEST(Rwall, TerminalTypeCheckFoilsTheWrite) {
  RwallDaemon app{RwallChecks{.terminal_type_check = true}};
  auto fs = app.initial_world();
  const auto r = app.run_attack(fs, "../etc/passwd", "evil\n");
  EXPECT_TRUE(r.utmp_tampered);  // the entry lands in utmp...
  EXPECT_FALSE(r.passwd_corrupted);  // ...but the daemon refuses the target
  ASSERT_EQ(r.skipped.size(), 1u);
  EXPECT_EQ(r.skipped[0], "/etc/passwd");
}

TEST(Rwall, TypeCheckDoesNotBreakBenignDelivery) {
  RwallDaemon app{RwallChecks{.utmp_root_only = true, .terminal_type_check = true}};
  auto fs = app.initial_world();
  const auto r = app.run_benign(fs, "hello\n");
  EXPECT_EQ(r.wrote_to.size(), 1u);
}

TEST(Rwall, MissingEntriesAreSkippedQuietly) {
  RwallDaemon app;
  auto fs = app.initial_world();
  const auto r = app.run_attack(fs, "pts/does-not-exist", "msg\n");
  EXPECT_FALSE(r.passwd_corrupted);
  EXPECT_EQ(r.wrote_to.size(), 1u);  // only the real terminal
}

TEST(Rwall, UtmpPathsResolveRelativeToDev) {
  RwallDaemon app;
  auto fs = app.initial_world();
  const auto r = app.run_benign(fs, "m\n");
  EXPECT_EQ(r.wrote_to[0].rfind("/dev/", 0), 0u);
}

TEST(RwallCaseStudy, LemmaShape) {
  const auto study = make_rwall_case_study();
  EXPECT_EQ(study->checks().size(), 2u);
  // The two checks live in DIFFERENT operations (Figure 6's operation 1
  // and operation 2) — securing either forms a secured operation.
  EXPECT_EQ(study->checks()[0].operation_index, 0u);
  EXPECT_EQ(study->checks()[1].operation_index, 1u);
  EXPECT_TRUE(study->run_exploit({false, false}).exploited);
  EXPECT_FALSE(study->run_exploit({true, false}).exploited);
  EXPECT_FALSE(study->run_exploit({false, true}).exploited);
  EXPECT_TRUE(study->run_benign({true, true}).service_ok);
}

TEST(RwallCaseStudy, ModelHasObjectTypeCheck) {
  const auto model = make_rwall_case_study()->model();
  const auto census = model.type_census();
  EXPECT_EQ(census[static_cast<std::size_t>(core::PfsmType::kObjectTypeCheck)], 1u);
}

}  // namespace
}  // namespace dfsm::apps
