#include "apps/synthetic.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dfsm::apps {
namespace {

SyntheticStudyConfig config(std::size_t ops, std::size_t checks) {
  SyntheticStudyConfig c;
  c.operations = ops;
  c.checks_per_operation = checks;
  return c;
}

std::vector<bool> mask_of(std::size_t k, std::uint64_t bits) {
  std::vector<bool> m(k, false);
  for (std::size_t i = 0; i < k; ++i) m[i] = (bits >> i) & 1;
  return m;
}

TEST(SyntheticStudy, RejectsDegenerateShapes) {
  EXPECT_THROW((void)make_synthetic_wide_study(config(0, 4)),
               std::invalid_argument);
  EXPECT_THROW((void)make_synthetic_wide_study(config(4, 0)),
               std::invalid_argument);
}

TEST(SyntheticStudy, ChecksCoverTheFullGridInChainOrder) {
  const auto study = make_synthetic_wide_study(config(3, 4));
  const auto checks = study->checks();
  ASSERT_EQ(checks.size(), 12u);
  for (std::size_t i = 0; i < checks.size(); ++i) {
    EXPECT_EQ(checks[i].operation_index, i / 4) << "check #" << i;
  }
  EXPECT_EQ(checks.front().name, "op0 pFSM0");
  EXPECT_EQ(checks.back().name, "op2 pFSM3");
}

TEST(SyntheticStudy, BaselineExploitsAndFirstEnabledCheckFoils) {
  const auto study = make_synthetic_wide_study(config(3, 4));
  const auto baseline = study->run_exploit(mask_of(12, 0));
  EXPECT_TRUE(baseline.exploited);
  EXPECT_FALSE(baseline.foiled);

  // Enabling checks in operations 1 and 2: the chain-order-first one
  // (operation 1) is the foiler.
  const auto foiled =
      study->run_exploit(mask_of(12, (1u << 6) | (1u << 9)));
  EXPECT_TRUE(foiled.foiled);
  EXPECT_FALSE(foiled.exploited);
  EXPECT_NE(foiled.detail.find("operation 1"), std::string::npos);
}

TEST(SyntheticStudy, BenignTrafficServedUnderEveryMaskShape) {
  const auto study = make_synthetic_wide_study(config(2, 2));
  for (std::uint64_t bits = 0; bits < 16; ++bits) {
    EXPECT_TRUE(study->run_benign(mask_of(4, bits)).service_ok)
        << "mask " << bits;
  }
}

TEST(SyntheticStudy, ModelMirrorsTheCheckGrid) {
  const auto study = make_synthetic_wide_study(config(4, 3));
  const auto model = study->model();
  const auto& chain = model.chain();
  ASSERT_EQ(chain.size(), 4u);
  for (const auto& op : chain.operations()) {
    EXPECT_EQ(op.pfsms().size(), 3u);
  }
  EXPECT_EQ(model.vulnerability_class(), "Synthetic");
}

}  // namespace
}  // namespace dfsm::apps
