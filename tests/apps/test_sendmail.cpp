#include "apps/sendmail.h"

#include <gtest/gtest.h>

#include "netsim/http.h"

namespace dfsm::apps {
namespace {

TEST(Sendmail, BenignDebugCommandWritesTTvect) {
  SendmailTTflag app;
  const auto r = app.run_debug_command("7", "3");
  EXPECT_FALSE(r.rejected);
  EXPECT_TRUE(r.wrote);
  EXPECT_FALSE(r.mcode_executed);
  EXPECT_EQ(r.x, 7);
  EXPECT_EQ(r.i, 3);
  EXPECT_EQ(app.process().mem().read64(app.ttvect() + 7 * 8), 3u);
}

TEST(Sendmail, ShippedCheckRejectsLargePositiveIndex) {
  SendmailTTflag app;
  const auto r = app.run_debug_command("101", "1");
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(r.rejected_by, "pFSM2(impl)");  // x <= 100 exists in the original
}

TEST(Sendmail, ExploitOverwritesGotAndExecutesMcode) {
  SendmailTTflag app;
  const auto e = app.build_exploit();
  const auto r = app.run_debug_command(e.str_x, e.str_i);
  EXPECT_FALSE(r.rejected);
  EXPECT_TRUE(r.wrote);
  EXPECT_TRUE(r.mcode_executed);
  EXPECT_LT(r.x, 0) << "the wrap must produce a negative index";
  EXPECT_FALSE(app.process().got().unchanged("setuid"));
  EXPECT_EQ(app.process().got().current("setuid"), app.process().mcode());
}

TEST(Sendmail, ExploitStringExceedsInt32ByConstruction) {
  SendmailTTflag app;
  const auto e = app.build_exploit();
  // The published exploit uses the signed-integer overflow: the string
  // value must be > 2^31 so pFSM1's spec would reject it.
  EXPECT_GT(netsim::atol64(e.str_x), std::int64_t{1} << 31);
}

TEST(Sendmail, Check1FoilsTheExploit) {
  SendmailTTflag app{SendmailChecks{.input_representable = true}};
  const auto e = app.build_exploit();
  const auto r = app.run_debug_command(e.str_x, e.str_i);
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(r.rejected_by, "pFSM1");
  EXPECT_FALSE(r.mcode_executed);
}

TEST(Sendmail, Check2FoilsTheExploit) {
  SendmailTTflag app{SendmailChecks{.index_full_range = true}};
  const auto e = app.build_exploit();
  const auto r = app.run_debug_command(e.str_x, e.str_i);
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(r.rejected_by, "pFSM2");
  EXPECT_TRUE(app.process().got().unchanged("setuid"));
}

TEST(Sendmail, Check3FoilsTheExploitAfterCorruption) {
  SendmailTTflag app{SendmailChecks{.got_unchanged = true}};
  const auto e = app.build_exploit();
  const auto r = app.run_debug_command(e.str_x, e.str_i);
  // The write happens (checks 1-2 are off) but the tampered GOT entry is
  // detected before the call.
  EXPECT_TRUE(r.wrote);
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(r.rejected_by, "pFSM3");
  EXPECT_FALSE(r.mcode_executed);
}

TEST(Sendmail, ChecksDoNotBreakBenignTraffic) {
  SendmailTTflag app{SendmailChecks{true, true, true}};
  const auto r = app.run_debug_command("100", "9");
  EXPECT_FALSE(r.rejected);
  EXPECT_TRUE(r.wrote);
}

TEST(Sendmail, WildIndexCrashesInsteadOfExploiting) {
  SendmailTTflag app;
  // A negative index pointing into unmapped memory: SIGSEGV, no exploit.
  const auto r = app.run_debug_command("-100000", "1");
  EXPECT_TRUE(r.crashed);
  EXPECT_FALSE(r.mcode_executed);
}

TEST(Sendmail, DirectNegativeIndexAlsoWorksAsExploit) {
  // The impl checks only x <= 100, so even a literal negative string
  // slips through — the paper's point that the shipped predicate is
  // incomplete, not merely wrap-sensitive.
  SendmailTTflag app;
  const auto e = app.build_exploit();
  const auto wrapped = netsim::atoi32(e.str_x);
  const auto r = app.run_debug_command(std::to_string(wrapped), e.str_i);
  EXPECT_TRUE(r.mcode_executed);
}

// --- Byte-wise mode: the real u_char tTvect[100] exploit mechanics. ----

TEST(SendmailByteMode, ExploitSessionComposesTheAddressByteByByte) {
  SendmailTTflag app;
  const auto flags = app.build_exploit_session();
  ASSERT_EQ(flags.size(), 8u);
  const auto r = app.run_debug_session(flags);
  EXPECT_TRUE(r.mcode_executed);
  EXPECT_EQ(app.process().got().current("setuid"), app.process().mcode());
}

TEST(SendmailByteMode, EveryFlagIndexIsWrapEncoded) {
  SendmailTTflag app;
  for (const auto& [str_x, str_i] : app.build_exploit_session()) {
    EXPECT_GT(netsim::atol64(str_x), std::int64_t{1} << 31) << str_x;
    EXPECT_LE(netsim::atol64(str_i), 255) << str_i;  // one byte per flag
  }
}

TEST(SendmailByteMode, PartialSessionCrashesInsteadOfExploiting) {
  SendmailTTflag app;
  auto flags = app.build_exploit_session();
  flags.resize(2);  // only the two lowest bytes land
  const auto r = app.run_debug_session(flags);
  EXPECT_FALSE(r.mcode_executed);
  EXPECT_TRUE(r.crashed);  // half-composed pointer -> wild jump
}

TEST(SendmailByteMode, ChecksFoilTheSessionLikeTheSingleWrite) {
  for (int check = 0; check < 3; ++check) {
    SendmailChecks checks;
    checks.input_representable = (check == 0);
    checks.index_full_range = (check == 1);
    checks.got_unchanged = (check == 2);
    SendmailTTflag app{checks};
    const auto r = app.run_debug_session(app.build_exploit_session());
    EXPECT_FALSE(r.mcode_executed) << "check " << check;
    EXPECT_TRUE(r.rejected) << "check " << check;
  }
}

TEST(SendmailByteMode, BenignByteSessionWorks) {
  SendmailTTflag app{SendmailChecks{true, true, true}};
  const auto r = app.run_debug_session({{"7", "1"}, {"8", "255"}, {"9", "0"}});
  EXPECT_FALSE(r.rejected);
  EXPECT_TRUE(r.wrote);
  EXPECT_FALSE(r.mcode_executed);
  EXPECT_EQ(app.process().mem().read8(app.ttvect() + 8), 255);
}

TEST(SendmailCaseStudy, ChecksAndModelShapes) {
  const auto study = make_sendmail_case_study();
  EXPECT_EQ(study->checks().size(), 3u);
  EXPECT_EQ(study->checks()[0].operation_index, 0u);
  EXPECT_EQ(study->checks()[2].operation_index, 1u);
  EXPECT_EQ(study->model().pfsm_count(), 3u);
  EXPECT_TRUE(study->run_exploit({false, false, false}).exploited);
  EXPECT_FALSE(study->run_exploit({true, false, false}).exploited);
  EXPECT_TRUE(study->run_benign({true, true, true}).service_ok);
  EXPECT_THROW((void)study->run_exploit({true}), std::invalid_argument);
}

}  // namespace
}  // namespace dfsm::apps
