#include "apps/fmtfamily.h"

#include <gtest/gtest.h>

#include "bugtraq/category.h"
#include "bugtraq/curated.h"

namespace dfsm::apps {
namespace {

constexpr FmtProfile kAll[] = {FmtProfile::kWuFtpd, FmtProfile::kSplitvt,
                               FmtProfile::kIcecast};

TEST(FmtFamily, BenignInputIsHandledUnderEveryProfile) {
  for (FmtProfile p : kAll) {
    FmtFamilyVictim app{p};
    const auto r = app.handle_input("ordinary client text");
    EXPECT_TRUE(r.logged) << to_string(p);
    EXPECT_FALSE(r.ret_modified) << to_string(p);
    EXPECT_FALSE(r.mcode_executed) << to_string(p);
  }
}

TEST(FmtFamily, EveryProfileExploitReachesMcode) {
  for (FmtProfile p : kAll) {
    FmtFamilyVictim app{p};
    const auto r = app.handle_input(app.build_exploit());
    EXPECT_TRUE(r.mcode_executed) << to_string(p);
    EXPECT_TRUE(r.ret_modified) << to_string(p);
  }
}

TEST(FmtFamily, WuFtpdAndSplitvtUsePercentNIcecastDoesNot) {
  FmtFamilyVictim wuftpd{FmtProfile::kWuFtpd};
  FmtFamilyVictim icecast{FmtProfile::kIcecast};
  EXPECT_NE(wuftpd.build_exploit().find("%"), std::string::npos);
  EXPECT_NE(wuftpd.build_exploit().find("$n"), std::string::npos);
  // The boundary-flavour exploit is pure literal bytes.
  EXPECT_EQ(icecast.build_exploit().find('%'), std::string::npos);
}

TEST(FmtFamily, DirectiveFilterStopsTheNFlavoursButNotIcecast) {
  // The input-validation fix that kills #1387/#2210 does NOT address
  // #2264's literal-overflow flavour — which is exactly why Bugtraq filed
  // them under different categories.
  for (FmtProfile p : {FmtProfile::kWuFtpd, FmtProfile::kSplitvt}) {
    FmtFamilyVictim app{p, FmtFamilyChecks{.no_format_directives = true}};
    const auto r = app.handle_input(app.build_exploit());
    EXPECT_TRUE(r.rejected) << to_string(p);
    EXPECT_FALSE(r.mcode_executed) << to_string(p);
  }
  FmtFamilyVictim icecast{FmtProfile::kIcecast,
                          FmtFamilyChecks{.no_format_directives = true}};
  const auto r = icecast.handle_input(icecast.build_exploit());
  EXPECT_FALSE(r.rejected);
  EXPECT_TRUE(r.mcode_executed) << "the filter must not stop the literal flavour";
}

TEST(FmtFamily, BoundedExpansionStopsIcecast) {
  FmtFamilyVictim app{FmtProfile::kIcecast,
                      FmtFamilyChecks{.bounded_expansion = true}};
  const auto r = app.handle_input(app.build_exploit());
  EXPECT_FALSE(r.mcode_executed);
  EXPECT_FALSE(r.ret_modified);
  EXPECT_TRUE(r.logged);
}

TEST(FmtFamily, RetConsistencyStopsAllThree) {
  for (FmtProfile p : kAll) {
    FmtFamilyVictim app{p, FmtFamilyChecks{.ret_consistency = true}};
    const auto r = app.handle_input(app.build_exploit());
    EXPECT_FALSE(r.mcode_executed) << to_string(p);
    EXPECT_TRUE(r.rejected) << to_string(p);
  }
}

TEST(FmtFamily, PaperCategoriesMatchTheCuratedRecords) {
  // The three-way classification of §3.2, tied to the curated database.
  const auto db = bugtraq::curated_records();
  EXPECT_EQ(db.by_id(1387)->category, bugtraq::Category::kInputValidationError);
  EXPECT_EQ(db.by_id(2210)->category, bugtraq::Category::kAccessValidationError);
  EXPECT_EQ(db.by_id(2264)->category, bugtraq::Category::kBoundaryConditionError);
  EXPECT_STREQ(FmtFamilyVictim::paper_category(FmtProfile::kWuFtpd),
               "Input Validation Error");
  EXPECT_STREQ(FmtFamilyVictim::paper_category(FmtProfile::kSplitvt),
               "Access Validation Error");
  EXPECT_STREQ(FmtFamilyVictim::paper_category(FmtProfile::kIcecast),
               "Boundary Condition Error");
}

TEST(FmtFamilyCaseStudy, AllThreeProfilesSatisfyTheLemmaShape) {
  for (FmtProfile p : kAll) {
    const auto study = make_fmtfamily_case_study(p);
    EXPECT_TRUE(study->run_exploit({false, false}).exploited) << to_string(p);
    EXPECT_FALSE(study->run_exploit({true, false}).exploited) << to_string(p);
    EXPECT_FALSE(study->run_exploit({false, true}).exploited) << to_string(p);
    EXPECT_TRUE(study->run_benign({true, true}).service_ok) << to_string(p);
    EXPECT_EQ(study->model().pfsm_count(), 2u);
  }
}

}  // namespace
}  // namespace dfsm::apps
