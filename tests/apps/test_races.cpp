// Curated race-scenario registry (DESIGN.md §14): the exploration engine
// must rediscover both paper races with their exact schedule counts, and
// the registry's curated expectations must match what execution finds.
#include "apps/races.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

namespace dfsm::apps {
namespace {

using fssim::ExploreOptions;
using fssim::explore_scenario;
using fssim::RaceScenario;

const RaceScenario& find(const std::vector<RaceScenario>& all,
                         const std::string& name) {
  const auto it = std::find_if(
      all.begin(), all.end(),
      [&name](const RaceScenario& s) { return s.name == name; });
  EXPECT_NE(it, all.end()) << "missing scenario " << name;
  return *it;
}

TEST(RaceScenarios, RegistryHoldsBothCuratedRaces) {
  const auto all = race_scenarios();
  ASSERT_EQ(all.size(), 2u);
  const auto& xterm = find(all, "xterm-figure5");
  EXPECT_EQ(xterm.expected_total, 15u);     // C(6, 2)
  EXPECT_EQ(xterm.expected_violating, 3u);
  EXPECT_FALSE(xterm.last_schedule_violates);
  EXPECT_FALSE(xterm.description.empty());
  const auto& rwall = find(all, "rwall-figure6");
  EXPECT_EQ(rwall.expected_total, 10u);     // C(5, 2)
  EXPECT_EQ(rwall.expected_violating, 1u);
  EXPECT_TRUE(rwall.last_schedule_violates);
  EXPECT_FALSE(rwall.description.empty());
}

TEST(RaceScenarios, ExhaustiveExplorationRediscoversTheCuratedCounts) {
  for (const auto& s : race_scenarios()) {
    const auto rep = explore_scenario(s);
    ASSERT_TRUE(rep.exhaustive) << s.name;
    EXPECT_EQ(rep.schedule_space, s.expected_total) << s.name;
    EXPECT_EQ(rep.explored, s.expected_total) << s.name;
    EXPECT_EQ(rep.violating, s.expected_violating) << s.name;
    EXPECT_TRUE(rep.race_exists()) << s.name;
  }
}

TEST(RaceScenarios, XtermViolationsLiveMidSpace) {
  // Both attacker steps must land strictly between the victim's check and
  // open — never at the pinned extremes. The three violating ranks are a
  // fixed property of the lexicographic order.
  const auto all = race_scenarios();
  const auto rep = explore_scenario(find(all, "xterm-figure5"));
  EXPECT_EQ(rep.violating_ranks,
            (std::vector<std::uint64_t>{5, 8, 9}));
}

TEST(RaceScenarios, RwallViolationIsTheLexicographicLastSchedule) {
  const auto all = race_scenarios();
  const auto rep = explore_scenario(find(all, "rwall-figure6"));
  ASSERT_EQ(rep.violating_ranks.size(), 1u);
  EXPECT_EQ(rep.violating_ranks[0], rep.schedule_space - 1);
}

TEST(RaceScenarios, SampledRwallAlwaysCatchesThePinnedRace) {
  // last_schedule_violates means rank S-1 carries the race, and sampling
  // pins rank S-1 at every budget — so even budget 2 finds it.
  const auto all = race_scenarios();
  const auto& rwall = find(all, "rwall-figure6");
  for (std::uint64_t budget : {2u, 3u, 5u}) {
    ExploreOptions opts;
    opts.budget = budget;
    opts.seed = 17;
    const auto rep = explore_scenario(rwall, opts);
    EXPECT_FALSE(rep.exhaustive) << "budget " << budget;
    EXPECT_LE(rep.explored, budget);
    EXPECT_TRUE(rep.race_exists()) << "budget " << budget;
  }
}

}  // namespace
}  // namespace dfsm::apps
