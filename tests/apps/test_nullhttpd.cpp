#include "apps/nullhttpd.h"

#include <gtest/gtest.h>

#include "memsim/heap.h"
#include "netsim/http.h"

namespace dfsm::apps {
namespace {

std::string body_from(const std::vector<std::uint8_t>& bytes) {
  return {bytes.begin(), bytes.end()};
}

TEST(NullHttpd, BenignPostIsServed) {
  NullHttpd app;
  const std::string body(300, 'b');
  const auto r = app.handle_post(300, body);
  EXPECT_TRUE(r.served);
  EXPECT_FALSE(r.heap_overflowed);
  EXPECT_FALSE(r.mcode_executed);
  EXPECT_EQ(r.bytes_read, 300u);
  EXPECT_GE(r.postdata_usable, 1324u);  // contentLen + 1024
}

TEST(NullHttpd, NegativeContentLenUndersizesTheBuffer) {
  NullHttpd app;
  const auto r = app.handle_post(-800, std::string(100, 'x'));
  // calloc(-800 + 1024) = calloc(224): the undersized buffer of #5774.
  EXPECT_EQ(r.postdata_usable, 224u);
}

TEST(NullHttpd, VeryNegativeContentLenFailsCallocLikeTheRealServer) {
  NullHttpd app;
  const auto r = app.handle_post(-2000, "x");
  EXPECT_TRUE(r.crashed);
  EXPECT_NE(r.detail.find("calloc"), std::string::npos);
}

TEST(NullHttpd, ScoutMatchesALiveInstanceLayout) {
  const auto info = NullHttpd::scout(-800);
  EXPECT_EQ(info.postdata_usable, 224u);
  EXPECT_NE(info.following_chunk, 0u);
  EXPECT_EQ(info.got_free_slot, SandboxProcess::kGotBase);
  EXPECT_EQ(info.mcode, SandboxProcess::kMcodeBase);
  // Scouting is deterministic.
  const auto again = NullHttpd::scout(-800);
  EXPECT_EQ(info.postdata_user, again.postdata_user);
  EXPECT_EQ(info.b_size_field, again.b_size_field);
}

TEST(NullHttpd, OverflowBodyLayout) {
  const auto info = NullHttpd::scout(-800);
  const auto body = NullHttpd::build_overflow_body(info);
  EXPECT_EQ(body.size(), info.postdata_usable + 32);
  // The poisoned fd: &addr_free - offsetof(bk), little-endian at usable+16.
  std::uint64_t fd = 0;
  for (int i = 0; i < 8; ++i) {
    fd |= static_cast<std::uint64_t>(body[info.postdata_usable + 16 + i]) << (8 * i);
  }
  EXPECT_EQ(fd, info.got_free_slot - memsim::ChunkLayout::kBkOffset);
}

TEST(NullHttpd, Exploit5774ExecutesMcode) {
  const auto info = NullHttpd::scout(-800);
  NullHttpd app;
  const auto r = app.handle_post(-800, body_from(NullHttpd::build_overflow_body(info)));
  EXPECT_TRUE(r.heap_overflowed);
  EXPECT_TRUE(r.mcode_executed);
  EXPECT_FALSE(app.process().got().unchanged("free"));
  EXPECT_EQ(app.process().got().current("free"), info.mcode);
}

TEST(NullHttpd, Exploit6255UsesTruthfulContentLen) {
  NullHttpdChecks v051;
  v051.content_len_nonneg = true;
  const auto info = NullHttpd::scout(0, v051);
  NullHttpd app{v051};
  const auto r = app.handle_post(0, body_from(NullHttpd::build_overflow_body(info)));
  EXPECT_FALSE(r.rejected) << "contentLen 0 is valid — the patch must pass it";
  EXPECT_TRUE(r.heap_overflowed);
  EXPECT_TRUE(r.mcode_executed);
}

TEST(NullHttpd, Check1FoilsNegativeContentLenOnly) {
  NullHttpdChecks v051;
  v051.content_len_nonneg = true;
  NullHttpd app{v051};
  const auto r = app.handle_post(-800, std::string(1200, 'x'));
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(r.rejected_by, "pFSM1");
}

TEST(NullHttpd, Check2BoundsTheReadLoop) {
  NullHttpdChecks fixed;
  fixed.bounded_read_loop = true;
  NullHttpd app{fixed};
  // Even with the undersized buffer, the bounded loop never overruns.
  const auto info = NullHttpd::scout(-800, fixed);
  const auto r = app.handle_post(-800, body_from(NullHttpd::build_overflow_body(info)));
  EXPECT_FALSE(r.heap_overflowed);
  EXPECT_FALSE(r.mcode_executed);
  EXPECT_LE(r.bytes_read, r.postdata_usable);
  EXPECT_TRUE(r.served);
}

TEST(NullHttpd, Check3SafeUnlinkDetectsTamperedLinks) {
  NullHttpdChecks checks;
  checks.heap_safe_unlink = true;
  const auto info = NullHttpd::scout(-800, checks);
  NullHttpd app{checks};
  const auto r = app.handle_post(-800, body_from(NullHttpd::build_overflow_body(info)));
  EXPECT_TRUE(r.heap_overflowed);  // the overflow itself still happens...
  EXPECT_TRUE(r.rejected);          // ...but the unlink refuses to fire
  EXPECT_EQ(r.rejected_by, "pFSM3");
  EXPECT_TRUE(app.process().got().unchanged("free"));
}

TEST(NullHttpd, Check4GotConsistencyStopsTheFinalCall) {
  NullHttpdChecks checks;
  checks.got_free_unchanged = true;
  const auto info = NullHttpd::scout(-800, checks);
  NullHttpd app{checks};
  const auto r = app.handle_post(-800, body_from(NullHttpd::build_overflow_body(info)));
  // The GOT is corrupted by the unlink, but the next free() verifies the
  // slot against its load-time snapshot and refuses the call.
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(r.rejected_by, "pFSM4");
  EXPECT_FALSE(r.mcode_executed);
}

TEST(NullHttpd, GarbageOverflowCrashesRatherThanExploits) {
  NullHttpd app;
  const auto r = app.handle_post(-800, std::string(1024, 'A'));
  EXPECT_TRUE(r.heap_overflowed);
  EXPECT_FALSE(r.mcode_executed);
  EXPECT_TRUE(r.crashed);  // corrupted metadata kills free()
}

TEST(NullHttpd, SocketErrorClosesConnection) {
  NullHttpd app;
  // An empty body means the first recv hits EOF; serving continues and
  // the request completes with zero bytes read.
  const auto r = app.handle_post(100, "");
  EXPECT_EQ(r.bytes_read, 0u);
  EXPECT_FALSE(r.crashed);
}

TEST(NullHttpd, RecvLoopReadsInKilobyteChunks) {
  NullHttpd app;
  const std::string body(2500, 'z');
  const auto r = app.handle_post(2500, body);
  EXPECT_EQ(r.bytes_read, 2500u);
  EXPECT_TRUE(r.served);
}

// --- The raw HTTP front door. -------------------------------------------

TEST(NullHttpdRaw, BenignRequestRoundTripsThroughTheParser) {
  netsim::HttpRequest req;
  req.method = "POST";
  req.path = "/form";
  req.headers["Content-Length"] = "300";
  NullHttpd app;
  const auto r = app.handle_raw(netsim::serialize(req, std::string(300, 'b')));
  EXPECT_TRUE(r.served);
  EXPECT_EQ(r.content_len, 300);
  EXPECT_EQ(r.bytes_read, 300u);
}

TEST(NullHttpdRaw, MalformedHeadRejected) {
  NullHttpd app;
  const auto r = app.handle_raw("not http at all");
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(r.rejected_by, "parser");
}

TEST(NullHttpdRaw, GetRequestsNeverReachReadPostData) {
  NullHttpd app;
  const auto r = app.handle_raw("GET /index.html HTTP/1.0\r\n\r\n");
  EXPECT_TRUE(r.rejected);
}

TEST(NullHttpdRaw, ExploitRequestWorksEndToEndOffTheWire) {
  const auto info = NullHttpd::scout(-800);
  const auto raw = NullHttpd::build_exploit_request(info, -800);
  NullHttpd app;
  const auto r = app.handle_raw(raw);
  EXPECT_TRUE(r.mcode_executed);
}

TEST(NullHttpdRaw, WrappedContentLengthHeaderParsesLikeAtoi) {
  // The attacker can also write the negative length as 2^32 - 800 — the
  // header parser's atoi semantics wrap it identically.
  const auto info = NullHttpd::scout(-800);
  const auto body = NullHttpd::build_overflow_body(info);
  netsim::HttpRequest req;
  req.method = "POST";
  req.path = "/form";
  req.headers["Content-Length"] = "4294966496";  // 2^32 - 800
  NullHttpd app;
  const auto r =
      app.handle_raw(netsim::serialize(req, std::string(body.begin(), body.end())));
  EXPECT_EQ(r.content_len, -800);
  EXPECT_TRUE(r.mcode_executed);
}

TEST(NullHttpdCaseStudy, BothVariantsExposeTheRightChecks) {
  const auto known = make_nullhttpd_case_study();
  const auto discovered = make_nullhttpd_6255_case_study();
  EXPECT_EQ(known->checks().size(), 4u);
  EXPECT_EQ(discovered->checks().size(), 4u);

  // #5774 is foiled by the v0.5.1 patch (check 1)...
  EXPECT_FALSE(known->run_exploit({true, false, false, false}).exploited);
  // ...but #6255 is NOT — the discovery that motivated the Bugtraq report.
  EXPECT_TRUE(discovered->run_exploit({true, false, false, false}).exploited);
  // The '&&' loop fix foils both.
  EXPECT_FALSE(known->run_exploit({false, true, false, false}).exploited);
  EXPECT_FALSE(discovered->run_exploit({false, true, false, false}).exploited);
}

TEST(NullHttpdCaseStudy, OperationIndicesMatchFigure4) {
  const auto study = make_nullhttpd_case_study();
  const auto checks = study->checks();
  EXPECT_EQ(checks[0].operation_index, 0u);  // pFSM1, pFSM2: operation 1
  EXPECT_EQ(checks[1].operation_index, 0u);
  EXPECT_EQ(checks[2].operation_index, 1u);  // pFSM3: operation 2
  EXPECT_EQ(checks[3].operation_index, 2u);  // pFSM4: operation 3
}

}  // namespace
}  // namespace dfsm::apps
