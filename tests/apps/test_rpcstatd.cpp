#include "apps/rpcstatd.h"

#include <gtest/gtest.h>

namespace dfsm::apps {
namespace {

TEST(RpcStatd, BenignFilenameIsLogged) {
  RpcStatd app;
  const auto r = app.handle_mon_request("/var/lib/nfs/state");
  EXPECT_TRUE(r.logged);
  EXPECT_EQ(r.n_stores, 0u);
  EXPECT_FALSE(r.ret_modified);
  EXPECT_FALSE(r.mcode_executed);
}

TEST(RpcStatd, HarmlessDirectivesLeakButDoNotHijack) {
  RpcStatd app;
  // %x-style directives leak stack words (an information disclosure) but
  // the return address is untouched.
  const auto r = app.handle_mon_request("%x %x %x");
  EXPECT_TRUE(r.logged);
  EXPECT_FALSE(r.ret_modified);
  EXPECT_FALSE(r.mcode_executed);
}

TEST(RpcStatd, ExploitRewritesReturnAddressViaPercentN) {
  RpcStatd app;
  const auto r = app.handle_mon_request(app.build_exploit());
  EXPECT_EQ(r.n_stores, 1u);
  EXPECT_TRUE(r.ret_modified);
  EXPECT_TRUE(r.mcode_executed);
}

TEST(RpcStatd, CanaryStaysIntactUnderTheFormatStringAttack) {
  // The %n write goes DIRECTLY to the return-address slot: StackGuard's
  // canary never sees it. This is why the paper's pFSM2 for statd is a
  // return-address consistency check rather than a canary.
  RpcStatd app{RpcStatdChecks{}, /*with_canary=*/true};
  const auto r = app.handle_mon_request(app.build_exploit());
  EXPECT_TRUE(r.canary_intact);
  EXPECT_TRUE(r.mcode_executed);
}

TEST(RpcStatd, DirectiveFilterFoilsTheExploit) {
  RpcStatd app{RpcStatdChecks{.no_format_directives = true}};
  const auto r = app.handle_mon_request(app.build_exploit());
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(r.rejected_by, "pFSM1");
  EXPECT_FALSE(r.mcode_executed);
}

TEST(RpcStatd, DirectiveFilterPassesCleanFilenames) {
  RpcStatd app{RpcStatdChecks{.no_format_directives = true}};
  const auto r = app.handle_mon_request("/var/lib/nfs/state");
  EXPECT_TRUE(r.logged);
  EXPECT_FALSE(r.rejected);
}

TEST(RpcStatd, RetConsistencyCheckFoilsTheExploit) {
  RpcStatd app{RpcStatdChecks{.ret_consistency = true}};
  const auto r = app.handle_mon_request(app.build_exploit());
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(r.rejected_by, "pFSM2");
  EXPECT_FALSE(r.mcode_executed);
  EXPECT_TRUE(r.ret_modified);  // detected, not prevented
}

TEST(RpcStatd, ExploitLayoutIsDeterministic) {
  RpcStatd a;
  RpcStatd b;
  EXPECT_EQ(a.build_exploit(), b.build_exploit());
  EXPECT_EQ(a.ret_slot(), SandboxProcess::kStackBase + SandboxProcess::kStackSize - 8);
}

TEST(RpcStatd, ExploitEmbedsRetSlotAddressAtWordOffset24) {
  RpcStatd app;
  const auto payload = app.build_exploit();
  ASSERT_EQ(payload.size(), 27u);
  std::uint64_t planted = 0;
  for (int i = 0; i < 3; ++i) {
    planted |= static_cast<std::uint64_t>(
                   static_cast<std::uint8_t>(payload[24 + i])) << (8 * i);
  }
  EXPECT_EQ(planted, app.ret_slot());
}

TEST(RpcStatdCaseStudy, MaskSweepShape) {
  const auto study = make_rpcstatd_case_study();
  EXPECT_EQ(study->checks().size(), 2u);
  EXPECT_TRUE(study->run_exploit({false, false}).exploited);
  EXPECT_FALSE(study->run_exploit({true, false}).exploited);
  EXPECT_FALSE(study->run_exploit({false, true}).exploited);
  EXPECT_TRUE(study->run_benign({true, true}).service_ok);
}

}  // namespace
}  // namespace dfsm::apps
