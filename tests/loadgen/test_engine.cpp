// Tests for the monitored-server traffic engine: ground-truth FN/FP
// accounting, serial == parallel report byte-identity, capture/replay,
// and the exploit-mix edges.
#include "loadgen/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "loadgen/report.h"
#include "runtime/thread_pool.h"

namespace dfsm::loadgen {
namespace {

class LoadgenEngineTest : public ::testing::Test {
 protected:
  // Tests pin the pool; always hand it back to the DFSM_THREADS default.
  void TearDown() override {
    runtime::ThreadPool::set_global_threads(
        runtime::ThreadPool::default_threads());
  }
};

EngineOptions small_options() {
  EngineOptions options;
  options.workload.seed = 7;
  options.workload.agents = 8;
  options.workload.requests = 2000;
  options.workload.exploit_ratio = {5, 100};
  return options;
}

TEST_F(LoadgenEngineTest, MonitoredRunsLintTheirMonitorModelsFirst) {
  EngineOptions options = small_options();
  options.workload.requests = 100;
  const LoadReport report = run_load(options);
  // The three monitor models (Figure 4, GHTTPD, IIS Figure 7) pass the
  // full rule set through the universal lint entry before any traffic.
  EXPECT_EQ(report.monitor_models_linted, 3u);
  EXPECT_EQ(report.monitor_lint_findings, 0u);
  EXPECT_TRUE(report.monitor_lint_clean);
  const std::string text = render_text(report);
  EXPECT_NE(text.find("3 monitor model(s) linted, 0 finding(s) (clean)"),
            std::string::npos)
      << text;
  const std::string json = render_json(report);
  EXPECT_NE(json.find("\"monitor_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"models_linted\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"clean\": true"), std::string::npos);

  // Unmonitored runs deploy no monitor models and lint nothing.
  options.monitor = false;
  const LoadReport off = run_load(options);
  EXPECT_EQ(off.monitor_models_linted, 0u);
  EXPECT_FALSE(off.monitor_lint_clean);
}

TEST_F(LoadgenEngineTest, MonitorCatchesEveryExploitWithNoFalsePositives) {
  const LoadReport report = run_load(small_options());
  EXPECT_EQ(report.total.requests, 2000u);
  EXPECT_EQ(report.total.exploit,
            exploit_total(2000, Ratio{5, 100}));
  EXPECT_EQ(report.total.detected, report.total.exploit);
  EXPECT_EQ(report.total.false_negatives, 0u);
  EXPECT_EQ(report.total.false_positives, 0u);
  EXPECT_EQ(detection_rate_bp(report.total), 10000u);
}

TEST_F(LoadgenEngineTest, AllExploitMixIsFullyDetected) {
  EngineOptions options = small_options();
  options.workload.exploit_ratio = {1, 1};
  const LoadReport report = run_load(options);
  EXPECT_EQ(report.total.exploit, report.total.requests);
  EXPECT_EQ(report.total.benign, 0u);
  EXPECT_EQ(report.total.detected, report.total.requests);
  EXPECT_EQ(report.total.false_negatives, 0u);
}

TEST_F(LoadgenEngineTest, BenignOnlyMixRaisesNoAlarms) {
  EngineOptions options = small_options();
  options.workload.exploit_ratio = {0, 1};
  const LoadReport report = run_load(options);
  EXPECT_EQ(report.total.exploit, 0u);
  EXPECT_EQ(report.total.detected, 0u);
  EXPECT_EQ(report.total.false_positives, 0u);
  // No exploits missed, so the rate convention reads 100%.
  EXPECT_EQ(detection_rate_bp(report.total), 10000u);
}

TEST_F(LoadgenEngineTest, UnmonitoredRunCountsNoVerdicts) {
  EngineOptions options = small_options();
  options.monitor = false;
  const LoadReport report = run_load(options);
  EXPECT_FALSE(report.monitored);
  EXPECT_EQ(report.total.detected, 0u);
  EXPECT_EQ(report.total.false_negatives, 0u);
  EXPECT_EQ(report.total.false_positives, 0u);
  // The traffic itself is unchanged: the exploits still fire.
  EXPECT_GT(report.total.compromised, 0u);
}

TEST_F(LoadgenEngineTest, SerialAndParallelReportsAreByteIdentical) {
  EngineOptions options = small_options();
  options.capture = 3;
  std::vector<std::string> texts;
  std::vector<std::string> jsons;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{4}}) {
    runtime::ThreadPool::set_global_threads(threads);
    const LoadReport report = run_load(options);
    texts.push_back(render_text(report));
    jsons.push_back(render_json(report));
  }
  EXPECT_EQ(texts[0], texts[1]);
  EXPECT_EQ(texts[0], texts[2]);
  EXPECT_EQ(jsons[0], jsons[1]);
  EXPECT_EQ(jsons[0], jsons[2]);
}

TEST_F(LoadgenEngineTest, TotalsAreTheFoldOfPerServerTallies) {
  const LoadReport report = run_load(small_options());
  ServerTally folded;
  for (const ServerTally& tally : report.per_server) folded.merge(tally);
  EXPECT_EQ(folded, report.total);
  EXPECT_EQ(report.latency.count(), report.total.requests);
  EXPECT_GT(report.makespan_us, 0u);
  EXPECT_GT(report.throughput_rps, 0u);
}

TEST_F(LoadgenEngineTest, ApplyVerdictTalliesEveryCombination) {
  // The single place FN/FP accounting lives, driven over a hand-built
  // batch with known ground truth: 3 caught exploits, 1 miss, 2 clean
  // benign, 1 false alarm.
  ServerTally tally;
  const struct {
    bool exploit;
    bool detected;
  } batch[] = {{true, true},   {true, true},  {true, true}, {true, false},
               {false, false}, {false, false}, {false, true}};
  for (const auto& request : batch) {
    apply_verdict(tally, request.exploit, request.detected);
  }
  EXPECT_EQ(tally.detected, 4u);
  EXPECT_EQ(tally.false_negatives, 1u);
  EXPECT_EQ(tally.false_positives, 1u);
  // apply_verdict only does verdict accounting; request/benign/exploit
  // counters belong to the serve path.
  EXPECT_EQ(tally.requests, 0u);
  // 1 of the 4 ground-truth exploits was missed: (4 - 1) * 10000 / 4.
  tally.exploit = 4;
  EXPECT_EQ(detection_rate_bp(tally), 7500u);
}

TEST_F(LoadgenEngineTest, CaptureIsBoundedDeterministicAndReplayable) {
  EngineOptions options = small_options();
  options.capture = 4;
  const LoadReport first = run_load(options);
  const LoadReport second = run_load(options);
  ASSERT_EQ(first.samples.entries().size(), 4u);
  EXPECT_EQ(first.samples.entries(), second.samples.entries());
  for (const auto& captured : first.samples.entries()) {
    EXPECT_TRUE(captured.exploit);
    // A captured exploit replayed through the same decode path in
    // isolation must reproduce the detection.
    const RequestOutcome outcome = replay_request(captured, /*monitored=*/true);
    EXPECT_TRUE(outcome.detected) << captured.server;
    EXPECT_GT(outcome.violations, 0u);
  }
}

TEST_F(LoadgenEngineTest, ReplayRejectsUnknownServerLabels) {
  netsim::CapturedRequest bogus;
  bogus.server = "apache";
  bogus.raw = "GET /";
  EXPECT_THROW((void)replay_request(bogus, true), std::invalid_argument);
}

TEST_F(LoadgenEngineTest, DegenerateWorkloadsAreRejected) {
  EngineOptions no_agents = small_options();
  no_agents.workload.agents = 0;
  EXPECT_THROW((void)run_load(no_agents), std::invalid_argument);

  EngineOptions no_servers = small_options();
  no_servers.workload.servers.clear();
  EXPECT_THROW((void)run_load(no_servers), std::invalid_argument);
}

TEST_F(LoadgenEngineTest, MoreAgentsThanRequestsStillCoversTheStream) {
  EngineOptions options = small_options();
  options.workload.agents = 64;
  options.workload.requests = 10;
  const LoadReport report = run_load(options);
  EXPECT_EQ(report.total.requests, 10u);
  EXPECT_EQ(report.latency.count(), 10u);
}

}  // namespace
}  // namespace dfsm::loadgen
