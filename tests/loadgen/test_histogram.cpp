// Tests for the log-bucketed latency histogram: bucket geometry, merge
// associativity (the property the ascending-agent fold leans on), and
// percentile semantics.
#include "loadgen/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace dfsm::loadgen {
namespace {

LatencyHistogram filled(std::uint64_t from, std::uint64_t to,
                        std::uint64_t step) {
  LatencyHistogram h;
  for (std::uint64_t v = from; v < to; v += step) h.record(v);
  return h;
}

TEST(LoadgenHistogram, BucketFloorsInvertBucketIndex) {
  for (std::size_t index = 0; index < LatencyHistogram::kBucketCount;
       ++index) {
    const std::uint64_t floor = LatencyHistogram::bucket_floor(index);
    EXPECT_EQ(LatencyHistogram::bucket_index(floor), index) << index;
  }
}

TEST(LoadgenHistogram, BucketIndexIsMonotone) {
  std::size_t last = 0;
  for (std::uint64_t v = 0; v < 4096; ++v) {
    const std::size_t index = LatencyHistogram::bucket_index(v);
    EXPECT_GE(index, last);
    EXPECT_LE(LatencyHistogram::bucket_floor(index), v);
    last = index;
  }
}

TEST(LoadgenHistogram, SmallValuesAreExact) {
  // The first 8 buckets are unit-width: percentile() reproduces the
  // sample exactly for sub-8 latencies.
  for (std::uint64_t v = 0; v < 8; ++v) {
    LatencyHistogram h;
    h.record(v);
    EXPECT_EQ(h.percentile(50), v);
  }
}

TEST(LoadgenHistogram, MergeIsAssociativeAndCommutative) {
  const LatencyHistogram a = filled(0, 1000, 3);
  const LatencyHistogram b = filled(500, 40000, 7);
  const LatencyHistogram c = filled(1, 9, 1);

  LatencyHistogram ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);

  LatencyHistogram bc = b;
  bc.merge(c);
  LatencyHistogram a_bc = a;
  a_bc.merge(bc);

  LatencyHistogram ba = b;
  ba.merge(a);
  LatencyHistogram ab = a;
  ab.merge(b);

  EXPECT_EQ(ab_c, a_bc);  // (a + b) + c == a + (b + c)
  EXPECT_EQ(ab, ba);      // a + b == b + a
}

TEST(LoadgenHistogram, MergeAddsCountsSumsAndExtremes) {
  LatencyHistogram a = filled(10, 20, 1);   // 10 samples, sum 145
  const LatencyHistogram b = filled(100, 105, 1);  // 5 samples, sum 510
  a.merge(b);
  EXPECT_EQ(a.count(), 15u);
  EXPECT_EQ(a.sum(), 145u + 510u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 104u);
  EXPECT_EQ(a.mean(), (145u + 510u) / 15u);
}

TEST(LoadgenHistogram, PercentilesAreMonotoneAndBounded) {
  const LatencyHistogram h = filled(3, 50000, 11);
  std::uint64_t last = 0;
  for (const double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const std::uint64_t value = h.percentile(p);
    EXPECT_GE(value, last) << p;
    last = value;
  }
  EXPECT_EQ(h.percentile(0), h.min());
  EXPECT_EQ(h.percentile(100), h.max());
}

TEST(LoadgenHistogram, EmptyHistogramReportsZeroes) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
}

}  // namespace
}  // namespace dfsm::loadgen
