// Tests for the pure request generator: exact ratio parsing, Bresenham
// exploit apportionment, agent partitioning, and (seed, agent, i) purity.
#include "loadgen/workload.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace dfsm::loadgen {
namespace {

TEST(LoadgenWorkload, ParseRatioKeepsTheWrittenForm) {
  const auto check = [](const char* s, std::uint64_t num, std::uint64_t den) {
    const Ratio r = parse_ratio(s);
    EXPECT_EQ(r.num, num) << s;
    EXPECT_EQ(r.den, den) << s;
  };
  // The rational echoes the CLI text — 0.05 stays 5/100, not 1/20 — so
  // the report's workload block reads back exactly what was asked for.
  check("0.05", 5, 100);
  check(".125", 125, 1000);
  check("0", 0, 1);
  check("1", 1, 1);
  check("1.0", 10, 10);
  check("0.000001", 1, 1000000);
}

TEST(LoadgenWorkload, ParseRatioRejectsAnythingElse) {
  for (const char* s : {"", "2", "1.5", "-0.1", "abc", "0.05x", "0.0000001",
                        ".", "0..5"}) {
    EXPECT_THROW((void)parse_ratio(s), std::invalid_argument) << s;
  }
}

TEST(LoadgenWorkload, ExploitApportionmentIsExactNotStatistical) {
  // The Bresenham walk telescopes: any run of R requests carries exactly
  // floor(R * num / den) exploits — no tolerance band needed, at 10^4
  // or at the acceptance scale of 10^6.
  for (const Ratio r : {Ratio{5, 100}, Ratio{1, 3}, Ratio{125, 1000},
                        Ratio{999999, 1000000}}) {
    for (const std::uint64_t requests : {std::uint64_t{10000},
                                         std::uint64_t{1000000}}) {
      std::uint64_t counted = 0;
      for (std::uint64_t g = 0; g < requests; ++g) {
        counted += is_exploit_index(g, r) ? 1 : 0;
      }
      EXPECT_EQ(counted, exploit_total(requests, r))
          << r.num << "/" << r.den << " over " << requests;
    }
  }
}

TEST(LoadgenWorkload, ExploitEdgeRatios) {
  for (std::uint64_t g = 0; g < 100; ++g) {
    EXPECT_FALSE(is_exploit_index(g, Ratio{0, 1}));
    EXPECT_TRUE(is_exploit_index(g, Ratio{1, 1}));
  }
  EXPECT_EQ(exploit_total(1000000, Ratio{0, 1}), 0u);
  EXPECT_EQ(exploit_total(1000000, Ratio{1, 1}), 1000000u);
}

TEST(LoadgenWorkload, AgentPartitionIsContiguousAndComplete) {
  WorkloadSpec w;
  w.agents = 7;
  w.requests = 100;
  std::uint64_t sum = 0;
  for (std::uint64_t a = 0; a < w.agents; ++a) {
    // Contiguous: each agent starts where the previous one ended.
    EXPECT_EQ(agent_base_offset(w, a), sum);
    sum += agent_request_count(w, a);
  }
  EXPECT_EQ(sum, w.requests);
  // Largest-remainder convention: the first requests % agents agents get
  // the extra request (same as runtime::static_blocks).
  EXPECT_EQ(agent_request_count(w, 0), 15u);  // 100/7 = 14 rem 2
  EXPECT_EQ(agent_request_count(w, 1), 15u);
  EXPECT_EQ(agent_request_count(w, 2), 14u);
}

TEST(LoadgenWorkload, GeneratorIsPureAndOrderIndependent) {
  WorkloadSpec w;
  w.seed = 42;
  w.agents = 5;
  w.requests = 200;
  // Forward pass...
  std::vector<RequestSpec> forward;
  for (std::uint64_t a = 0; a < w.agents; ++a) {
    for (std::uint64_t i = 0; i < agent_request_count(w, a); ++i) {
      forward.push_back(request_spec(w, a, i));
    }
  }
  // ...must equal a reverse-order pass: no hidden sequential state.
  std::size_t at = forward.size();
  for (std::uint64_t a = w.agents; a-- > 0;) {
    for (std::uint64_t i = agent_request_count(w, a); i-- > 0;) {
      EXPECT_EQ(forward[--at], request_spec(w, a, i));
    }
  }
  // Global indices cover 0..requests-1 exactly once, in order.
  for (std::size_t g = 0; g < forward.size(); ++g) {
    EXPECT_EQ(forward[g].global_index, g);
    EXPECT_EQ(forward[g].exploit,
              is_exploit_index(g, w.exploit_ratio));
  }
}

TEST(LoadgenWorkload, SeedChangesTheStream) {
  WorkloadSpec a;
  WorkloadSpec b;
  b.seed = a.seed + 1;
  bool any_difference = false;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (!(request_spec(a, 0, i) == request_spec(b, 0, i))) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(LoadgenWorkload, ServerRestrictionIsHonored) {
  WorkloadSpec w;
  w.servers = {ServerKind::kGhttpd};
  w.requests = 500;
  for (std::uint64_t a = 0; a < w.agents; ++a) {
    for (std::uint64_t i = 0; i < agent_request_count(w, a); ++i) {
      EXPECT_EQ(request_spec(w, a, i).server, ServerKind::kGhttpd);
    }
  }
}

TEST(LoadgenWorkload, ServerNamesRoundTrip) {
  for (std::size_t k = 0; k < kServerKindCount; ++k) {
    const auto kind = static_cast<ServerKind>(k);
    ServerKind back{};
    ASSERT_TRUE(server_from_name(server_name(kind), &back));
    EXPECT_EQ(back, kind);
  }
  EXPECT_FALSE(server_from_name("apache", nullptr));
}

}  // namespace
}  // namespace dfsm::loadgen
