// Corpus-service traffic (loadgen/corpus_traffic.h): a writer ingesting
// under live reader threads must end byte-identical to a one-shot build
// with zero isolation violations; the renderer reports all of it.
#include <stdexcept>

#include <gtest/gtest.h>

#include "loadgen/corpus_traffic.h"

namespace dfsm::loadgen {
namespace {

TEST(CorpusTraffic, HoldsInvariantsUnderConcurrentReaders) {
  CorpusTrafficSpec spec;
  spec.seed = 5;
  spec.records = 8'000;
  spec.batch = 250;
  spec.readers = 4;
  const auto report = run_corpus_traffic(spec);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.records, 8'000u);
  EXPECT_EQ(report.batches, 32u);
  EXPECT_EQ(report.epoch, 32u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_TRUE(report.histograms_exact);
  EXPECT_TRUE(report.bytes_identical);
  EXPECT_GT(report.acquires, 0u);
}

TEST(CorpusTraffic, SingleReaderAndRaggedTailBatch) {
  CorpusTrafficSpec spec;
  spec.seed = 9;
  spec.records = 1'001;  // last batch is a partial one
  spec.batch = 100;
  spec.readers = 1;
  const auto report = run_corpus_traffic(spec);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.batches, 11u);
  EXPECT_EQ(report.epoch, 11u);
}

TEST(CorpusTraffic, DeterministicOutcomeAcrossRuns) {
  CorpusTrafficSpec spec;
  spec.seed = 3;
  spec.records = 2'000;
  spec.batch = 200;
  spec.readers = 2;
  const auto a = run_corpus_traffic(spec);
  const auto b = run_corpus_traffic(spec);
  // Everything except the timing-dependent acquire count matches.
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.histograms_exact, b.histograms_exact);
  EXPECT_EQ(a.bytes_identical, b.bytes_identical);
}

TEST(CorpusTraffic, RendererCoversTheReport) {
  CorpusTrafficSpec spec;
  spec.records = 500;
  spec.batch = 100;
  spec.readers = 2;
  const auto report = run_corpus_traffic(spec);
  const auto text = render_corpus_traffic(report);
  EXPECT_NE(text.find("PASS"), std::string::npos);
  EXPECT_NE(text.find("isolation violations: 0"), std::string::npos);
  EXPECT_NE(text.find("timing:"), std::string::npos);
  EXPECT_NE(text.find("final epoch 5"), std::string::npos);
}

TEST(CorpusTraffic, DegenerateSpecsThrow) {
  CorpusTrafficSpec spec;
  spec.records = 0;
  EXPECT_THROW((void)run_corpus_traffic(spec), std::invalid_argument);
  spec.records = 10;
  spec.batch = 0;
  EXPECT_THROW((void)run_corpus_traffic(spec), std::invalid_argument);
  spec.batch = 5;
  spec.readers = 0;
  EXPECT_THROW((void)run_corpus_traffic(spec), std::invalid_argument);
}

}  // namespace
}  // namespace dfsm::loadgen
