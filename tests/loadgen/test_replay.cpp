// Tests for the netsim request tap: bounded keep-lowest capture,
// associative merge, and the JSON-safe hex preview.
#include "netsim/replay.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace dfsm::netsim {
namespace {

CapturedRequest capture(std::uint64_t agent, std::uint64_t index) {
  CapturedRequest req;
  req.agent = agent;
  req.index = index;
  req.server = "ghttpd";
  req.exploit = true;
  req.raw = "GET /a" + std::to_string(agent) + "i" + std::to_string(index);
  return req;
}

TEST(LoadgenReplayTap, KeepsTheLowestStreamPositions) {
  RequestTap tap{2};
  tap.offer(capture(3, 0));
  tap.offer(capture(1, 5));
  tap.offer(capture(1, 2));
  tap.offer(capture(0, 9));
  ASSERT_EQ(tap.entries().size(), 2u);
  // (agent, index) lexicographic: (0,9) < (1,2) < (1,5) < (3,0).
  EXPECT_EQ(tap.entries()[0], capture(0, 9));
  EXPECT_EQ(tap.entries()[1], capture(1, 2));
}

TEST(LoadgenReplayTap, ZeroCapacityDropsEverything) {
  RequestTap tap{0};
  tap.offer(capture(0, 0));
  EXPECT_TRUE(tap.entries().empty());
}

TEST(LoadgenReplayTap, MergeIsAssociativeOverAnyGrouping) {
  const std::vector<CapturedRequest> offers = {
      capture(2, 1), capture(0, 3), capture(1, 0), capture(0, 1),
      capture(4, 4), capture(1, 7), capture(3, 2), capture(0, 0),
  };
  // One tap that saw every offer directly...
  RequestTap all{3};
  for (const auto& req : offers) all.offer(req);

  // ...must match per-agent taps folded in two different groupings.
  auto tap_for = [&offers](std::uint64_t agent) {
    RequestTap tap{3};
    for (const auto& req : offers) {
      if (req.agent == agent) tap.offer(req);
    }
    return tap;
  };
  RequestTap left{3};  // ((0 + 1) + 2) + (3 + 4)
  left.merge(tap_for(0));
  left.merge(tap_for(1));
  left.merge(tap_for(2));
  RequestTap right{3};
  right.merge(tap_for(3));
  right.merge(tap_for(4));
  left.merge(right);

  EXPECT_EQ(left.entries(), all.entries());
  ASSERT_EQ(left.entries().size(), 3u);
  EXPECT_EQ(left.entries()[0], capture(0, 0));
  EXPECT_EQ(left.entries()[1], capture(0, 1));
  EXPECT_EQ(left.entries()[2], capture(0, 3));
}

TEST(LoadgenReplayTap, HexPreviewRendersRawBytes) {
  EXPECT_EQ(hex_preview("POST", 16), "504f5354");
  EXPECT_EQ(hex_preview("", 16), "");
  // Truncation appends the number of bytes left off.
  EXPECT_EQ(hex_preview("ABCDEF", 2), "4142+4");
  // Non-printable bytes stay JSON-safe.
  EXPECT_EQ(hex_preview(std::string("\x00\xff", 2), 4), "00ff");
}

}  // namespace
}  // namespace dfsm::netsim
