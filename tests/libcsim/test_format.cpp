#include "libcsim/format.h"

#include <gtest/gtest.h>

namespace dfsm::libcsim {
namespace {

class FormatTest : public ::testing::Test {
 protected:
  FormatTest() : engine(as) { as.map("rw", 0x1000, 0x2000, memsim::Perm::kRW); }

  std::string fmt(const std::string& f, std::vector<std::uint64_t> args = {}) {
    const ArgProvider ap{as, std::move(args)};
    return engine.format_to_string(f, ap).text;
  }

  AddressSpace as;
  FormatEngine engine;
};

TEST_F(FormatTest, PlainTextPassesThrough) {
  EXPECT_EQ(fmt("hello world"), "hello world");
}

TEST_F(FormatTest, PercentEscape) {
  EXPECT_EQ(fmt("100%%"), "100%");
  EXPECT_EQ(fmt("%"), "%");  // trailing lone %
}

TEST_F(FormatTest, IntegerConversions) {
  EXPECT_EQ(fmt("%d", {static_cast<std::uint64_t>(-42)}), "-42");
  EXPECT_EQ(fmt("%i", {7}), "7");
  EXPECT_EQ(fmt("%u", {7}), "7");
  EXPECT_EQ(fmt("%x", {255}), "ff");
  EXPECT_EQ(fmt("%p", {255}), "0xff");
  EXPECT_EQ(fmt("%c", {'A'}), "A");
}

TEST_F(FormatTest, WidthPadsWithSpaces) {
  EXPECT_EQ(fmt("%5d", {42}), "   42");
  EXPECT_EQ(fmt("%2d", {12345}), "12345");  // width smaller than value
  EXPECT_EQ(fmt("%3c", {'x'}), "  x");
}

TEST_F(FormatTest, StringConversionReadsSandboxMemory) {
  as.write_string(0x1000, "from sandbox");
  EXPECT_EQ(fmt("<%s>", {0x1000}), "<from sandbox>");
  EXPECT_EQ(fmt("%s", {0}), "(null)");
}

TEST_F(FormatTest, SequentialArgumentConsumption) {
  EXPECT_EQ(fmt("%d %d %d", {1, 2, 3}), "1 2 3");
}

TEST_F(FormatTest, PositionalArgumentsDoNotAdvanceSequential) {
  EXPECT_EQ(fmt("%2$d %d", {10, 20}), "20 10");
}

TEST_F(FormatTest, ExhaustedExplicitArgsWithoutVarargBaseYieldZero) {
  EXPECT_EQ(fmt("%d", {}), "0");
}

TEST_F(FormatTest, ArgWalkReadsMemoryPastExplicitArgs) {
  as.write64(0x1100, 1111);
  as.write64(0x1108, 2222);
  const ArgProvider ap{as, {42}, 0x1100};
  const auto r = engine.format_to_string("%d %d %d", ap);
  // arg0 = explicit 42; arg1/arg2 walk memory from the vararg base.
  EXPECT_EQ(r.text, "42 1111 2222");
}

TEST_F(FormatTest, UnknownDirectiveCopiedVerbatim) {
  EXPECT_EQ(fmt("%q"), "%q");
  EXPECT_EQ(fmt("a%zb"), "a%zb");
}

TEST_F(FormatTest, CountIsExactWithVirtualPadding) {
  const ArgProvider ap{as, {'x'}};
  const auto r = engine.format_to_string("%100000c", ap, /*materialize_cap=*/64);
  EXPECT_EQ(r.count, 100000u);
  EXPECT_EQ(r.bytes_written, 64u);
  EXPECT_EQ(r.text.size(), 64u);
}

TEST_F(FormatTest, PercentNStoresTheCount) {
  const ArgProvider ap{as, {0x1800}};
  const auto r = engine.format_to_string("12345%n", ap);
  EXPECT_EQ(r.n_stores, 1u);
  EXPECT_EQ(as.read64(0x1800), 5u);
}

TEST_F(FormatTest, PercentHnStoresSixteenBits) {
  as.write64(0x1800, 0xFFFFFFFFFFFFFFFFull);
  const ArgProvider ap{as, {0x1800}};
  (void)engine.format_to_string("abc%hn", ap);
  EXPECT_EQ(as.read16(0x1800), 3u);
  EXPECT_EQ(as.read8(0x1802), 0xFF);  // only two bytes written
}

TEST_F(FormatTest, PercentNWithVirtualPaddingWritesLargeValues) {
  // The rpc.statd mechanism: a huge pad width makes the count equal an
  // attacker-chosen address without materializing megabytes.
  const ArgProvider ap{as, {'x', 0x1800}};
  const auto r = engine.format_to_string("%7842561c%n", ap, 128);
  EXPECT_EQ(r.count, 7842561u);
  EXPECT_EQ(as.read64(0x1800), 7842561u);
}

TEST_F(FormatTest, PositionalPercentN) {
  as.write64(0x1200, 0x1800);  // pointer planted in walked memory
  const ArgProvider ap{as, {}, 0x1200};
  (void)engine.format_to_string("hi%1$n", ap);
  EXPECT_EQ(as.read64(0x1800), 2u);
}

TEST_F(FormatTest, VsprintfMaterializesIntoSandboxWithTerminator) {
  const ArgProvider ap{as, {99}};
  const auto r = engine.vsprintf(0x1000, "n=%d!", ap);
  EXPECT_EQ(as.read_cstring(0x1000), "n=99!");
  EXPECT_EQ(r.bytes_written, 5u);
}

TEST_F(FormatTest, VsprintfHasNoBoundsCheck) {
  // Writing a 64-byte expansion "into" a buffer at the segment's end
  // faults at the boundary — the GHTTPD overflow in miniature.
  as.write_string(0x1100, std::string(200, 'y'));
  const ArgProvider ap{as, {0x1100}};
  EXPECT_THROW((void)engine.vsprintf(0x2F80, "%s", ap), memsim::MemoryFault);
}

TEST_F(FormatTest, ContainsDirectivesDetector) {
  EXPECT_TRUE(FormatEngine::contains_directives("%n"));
  EXPECT_TRUE(FormatEngine::contains_directives("hello %d"));
  EXPECT_TRUE(FormatEngine::contains_directives("%7842561c%4$n"));
  EXPECT_FALSE(FormatEngine::contains_directives("plain"));
  EXPECT_FALSE(FormatEngine::contains_directives("100%% sure"));
  EXPECT_FALSE(FormatEngine::contains_directives("trailing %"));
  EXPECT_FALSE(FormatEngine::contains_directives(""));
  EXPECT_TRUE(FormatEngine::contains_directives("%%%d"));  // escaped then real
}

TEST_F(FormatTest, MalformedTrailingDirectiveCopiedVerbatim) {
  EXPECT_EQ(fmt("abc%42"), "abc%42");
  EXPECT_EQ(fmt("abc%4$"), "abc%4$");
}

TEST_F(FormatTest, PrecisionTruncatesStrings) {
  as.write_string(0x1100, "truncate me please");
  EXPECT_EQ(fmt("%.8s", {0x1100}), "truncate");
  EXPECT_EQ(fmt("%.0s", {0x1100}), "");
  EXPECT_EQ(fmt("%.99s", {0x1100}), "truncate me please");
  // Width combines with precision: pad the truncated form.
  EXPECT_EQ(fmt("%10.8s", {0x1100}), "  truncate");
}

TEST_F(FormatTest, VsnprintfTruncatesButCountsInFull) {
  const ArgProvider ap{as, {0x1100}};
  as.write_string(0x1100, std::string(300, 'z'));
  const auto r = engine.vsnprintf(0x1000, 16, "%s", ap);
  EXPECT_EQ(r.bytes_written, 15u);                 // n-1 bytes
  EXPECT_EQ(r.count, 300u);                        // C99: full length
  EXPECT_EQ(as.read_cstring(0x1000).size(), 15u);  // NUL at dst+15
  EXPECT_EQ(as.read8(0x1000 + 15), 0u);
}

TEST_F(FormatTest, VsnprintfNeverOverrunsItsBound) {
  // Even a huge expansion near the segment end stays inside the bound —
  // the GHTTPD fix in one call.
  as.write_string(0x1100, std::string(600, 'y'));
  const ArgProvider ap{as, {0x1100}};
  EXPECT_NO_THROW((void)engine.vsnprintf(0x2FF0, 16, "%s", ap));
}

TEST_F(FormatTest, VsnprintfZeroBoundWritesNothing) {
  as.write8(0x1000, 0x55);
  const ArgProvider ap{as, {7}};
  const auto r = engine.vsnprintf(0x1000, 0, "%d", ap);
  EXPECT_EQ(r.bytes_written, 0u);
  EXPECT_EQ(r.count, 1u);
  EXPECT_EQ(as.read8(0x1000), 0x55);  // untouched
}

}  // namespace
}  // namespace dfsm::libcsim
