#include "libcsim/cstring.h"

#include <gtest/gtest.h>

namespace dfsm::libcsim {
namespace {

class CStringTest : public ::testing::Test {
 protected:
  CStringTest() { as.map("rw", 0x1000, 0x1000, memsim::Perm::kRW); }
  AddressSpace as;
};

TEST_F(CStringTest, StrlenCountsToNul) {
  as.write_string(0x1000, "hello");
  EXPECT_EQ(c_strlen(as, 0x1000), 5u);
  as.write_string(0x1100, "");
  EXPECT_EQ(c_strlen(as, 0x1100), 0u);
}

TEST_F(CStringTest, StrcpyCopiesIncludingTerminator) {
  c_strcpy(as, 0x1000, std::string("abc"));
  EXPECT_EQ(as.read_cstring(0x1000), "abc");
  EXPECT_EQ(as.read8(0x1003), 0u);
}

TEST_F(CStringTest, StrcpySandboxToSandbox) {
  as.write_string(0x1000, "source");
  c_strcpy(as, 0x1100, memsim::Addr{0x1000});
  EXPECT_EQ(as.read_cstring(0x1100), "source");
}

TEST_F(CStringTest, StrcpyHasNoBoundsCheck) {
  // Copy 64 bytes "into" an 8-byte conceptual buffer at the end of the
  // segment — the copy happily overruns and faults only at the segment
  // boundary, like a real wild strcpy.
  const std::string long_str(0x1001, 'x');
  EXPECT_THROW(c_strcpy(as, 0x1FF8, long_str), memsim::MemoryFault);
}

TEST_F(CStringTest, StrncpyTruncatesWithoutTerminatorWhenFull) {
  c_strncpy(as, 0x1000, "abcdef", 4);
  const auto bytes = as.read_bytes(0x1000, 4);
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{'a', 'b', 'c', 'd'}));
  // strncpy semantics: NOT NUL-terminated when source >= n.
}

TEST_F(CStringTest, StrncpyPadsWithNulsWhenShort) {
  as.write_bytes(0x1000, std::vector<std::uint8_t>(8, 0xFF));
  c_strncpy(as, 0x1000, "ab", 8);
  EXPECT_EQ(as.read_cstring(0x1000), "ab");
  for (int i = 2; i < 8; ++i) EXPECT_EQ(as.read8(0x1000 + i), 0u);
}

TEST_F(CStringTest, StrcatAppends) {
  c_strcpy(as, 0x1000, std::string("foo"));
  c_strcat(as, 0x1000, "bar");
  EXPECT_EQ(as.read_cstring(0x1000), "foobar");
}

TEST_F(CStringTest, MemcpyAndMemset) {
  c_memset(as, 0x1000, 0x5A, 16);
  EXPECT_EQ(as.read8(0x100F), 0x5A);
  const std::vector<std::uint8_t> src{9, 8, 7};
  c_memcpy(as, 0x1020, src);
  EXPECT_EQ(as.read_bytes(0x1020, 3), src);
}

TEST_F(CStringTest, GetsIsUnbounded) {
  const std::string line(100, 'q');
  c_gets(as, 0x1000, line);
  EXPECT_EQ(c_strlen(as, 0x1000), 100u);
}

TEST_F(CStringTest, GetnsIsBounded) {
  c_getns(as, 0x1000, 8, std::string(100, 'q'));
  EXPECT_EQ(c_strlen(as, 0x1000), 7u);  // n-1 chars + NUL
  c_getns(as, 0x1100, 8, "ab");
  EXPECT_EQ(as.read_cstring(0x1100), "ab");
  // n == 0 writes nothing.
  c_getns(as, 0x1200, 0, "zz");
  EXPECT_EQ(as.read8(0x1200), 0u);
}

}  // namespace
}  // namespace dfsm::libcsim
