#include "libcsim/io.h"

#include <gtest/gtest.h>

namespace dfsm::libcsim {
namespace {

class IoTest : public ::testing::Test {
 protected:
  IoTest() { as.map("rw", 0x1000, 0x2000, memsim::Perm::kRW); }
  AddressSpace as;
  netsim::ByteStream stream;
};

TEST_F(IoTest, RecvDeliversBytesIntoSandbox) {
  stream.send(std::string("payload"));
  EXPECT_EQ(c_recv(as, stream, 0x1000, 1024), 7);
  EXPECT_EQ(as.read_bytes(0x1000, 7),
            (std::vector<std::uint8_t>{'p', 'a', 'y', 'l', 'o', 'a', 'd'}));
}

TEST_F(IoTest, RecvIsBoundedByMax) {
  stream.send(std::string(2000, 'x'));
  EXPECT_EQ(c_recv(as, stream, 0x1000, 1024), 1024);
  EXPECT_EQ(c_recv(as, stream, 0x1000, 1024), 976);
  EXPECT_EQ(c_recv(as, stream, 0x1000, 1024), 0);  // drained
}

TEST_F(IoTest, RecvZeroAtEof) {
  stream.close_write();
  EXPECT_EQ(c_recv(as, stream, 0x1000, 64), 0);
}

TEST_F(IoTest, RecvMinusOneOnInjectedError) {
  stream.send(std::string("data"));
  stream.inject_error();
  EXPECT_EQ(c_recv(as, stream, 0x1000, 64), -1);
  // The error is one-shot; the queued data is still there afterwards.
  EXPECT_EQ(c_recv(as, stream, 0x1000, 64), 4);
}

TEST_F(IoTest, RecvWritesNothingOnErrorOrEof) {
  as.write64(0x1000, 0x1122334455667788ull);
  stream.inject_error();
  (void)c_recv(as, stream, 0x1000, 64);
  EXPECT_EQ(as.read64(0x1000), 0x1122334455667788ull);
}

TEST_F(IoTest, RecvFaultsWhenBufferRunsOffSegment) {
  stream.send(std::string(64, 'x'));
  EXPECT_THROW((void)c_recv(as, stream, 0x2FF0, 64), memsim::MemoryFault);
}

}  // namespace
}  // namespace dfsm::libcsim
