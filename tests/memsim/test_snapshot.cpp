#include "memsim/snapshot.h"

#include <gtest/gtest.h>

namespace dfsm::memsim {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() {
    as.map("got", 0x20000, 0x100, Perm::kRW);
    as.map("data", 0x30000, 0x100, Perm::kRW);
    as.write64(0x20000, 0x10000);  // a bound function pointer
    as.write64(0x20008, 0x10010);
  }
  AddressSpace as;
};

TEST_F(SnapshotTest, FreshSnapshotReportsUnchanged) {
  const auto snap = MemorySnapshot::capture(as);
  EXPECT_TRUE(snap.unchanged(as));
  EXPECT_TRUE(snap.diff(as).empty());
  EXPECT_EQ(snap.segment_count(), 2u);
}

TEST_F(SnapshotTest, SingleWriteYieldsOneRegion) {
  const auto snap = MemorySnapshot::capture(as);
  as.write64(0x20000, 0x77AB01);  // the GOT corruption
  const auto regions = snap.diff(as);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].segment, "got");
  EXPECT_EQ(regions[0].start, 0x20000u);
  // Only the bytes that actually differ count (high bytes were already 0).
  EXPECT_LE(regions[0].length, 8u);
  EXPECT_GE(regions[0].length, 3u);
}

TEST_F(SnapshotTest, RewritingTheSameValueIsNotAChange) {
  const auto snap = MemorySnapshot::capture(as);
  as.write64(0x20000, 0x10000);  // same value
  EXPECT_TRUE(snap.unchanged(as));
}

TEST_F(SnapshotTest, DisjointWritesYieldSeparateRegions) {
  const auto snap = MemorySnapshot::capture(as);
  as.write8(0x20010, 0xAA);
  as.write8(0x20020, 0xBB);
  as.write8(0x30000, 0xCC);
  const auto regions = snap.diff(as);
  ASSERT_EQ(regions.size(), 3u);
  EXPECT_EQ(regions[0].start, 0x20010u);
  EXPECT_EQ(regions[1].start, 0x20020u);
  EXPECT_EQ(regions[2].segment, "data");
}

TEST_F(SnapshotTest, AdjacentChangedBytesCoalesce) {
  const auto snap = MemorySnapshot::capture(as);
  as.write_bytes(0x30010, std::vector<std::uint8_t>(16, 0xFF));
  const auto regions = snap.diff(as);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].length, 16u);
}

TEST_F(SnapshotTest, ChangedWithinAnswersRangeQueries) {
  const auto snap = MemorySnapshot::capture(as);
  as.write8(0x20008, 0x42);
  EXPECT_TRUE(snap.changed_within(as, 0x20008, 0x20010));
  EXPECT_TRUE(snap.changed_within(as, 0x20000, 0x20100));
  EXPECT_FALSE(snap.changed_within(as, 0x20010, 0x20100));
  EXPECT_FALSE(snap.changed_within(as, 0x30000, 0x30100));
}

TEST_F(SnapshotTest, SelectiveCaptureIgnoresOtherSegments) {
  const auto snap = MemorySnapshot::capture(as, {"got"});
  EXPECT_EQ(snap.segment_count(), 1u);
  as.write8(0x30000, 0xEE);  // data changes are invisible
  EXPECT_TRUE(snap.unchanged(as));
  as.write8(0x20000, 0xEE);
  EXPECT_FALSE(snap.unchanged(as));
}

TEST_F(SnapshotTest, RemappedSegmentsAreSkippedNotMisreported) {
  auto snap = MemorySnapshot::capture(as);
  AddressSpace other;
  other.map("got", 0x50000, 0x100, Perm::kRW);  // different base
  EXPECT_TRUE(snap.diff(other).empty());
}

}  // namespace
}  // namespace dfsm::memsim
