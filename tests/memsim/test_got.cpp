#include "memsim/got.h"

#include <gtest/gtest.h>

namespace dfsm::memsim {
namespace {

class GotTest : public ::testing::Test {
 protected:
  GotTest() : got(as, 0x20000, 4) {}
  AddressSpace as;
  Got got;
};

TEST_F(GotTest, BindReturnsSequentialSlots) {
  EXPECT_EQ(got.bind("setuid", 0x10000), 0x20000u);
  EXPECT_EQ(got.bind("free", 0x10010), 0x20008u);
  EXPECT_EQ(got.size(), 2u);
}

TEST_F(GotTest, SlotHoldsTheFunctionAddressInMemory) {
  got.bind("setuid", 0x10000);
  EXPECT_EQ(as.read64(0x20000), 0x10000u);
  EXPECT_EQ(got.current("setuid"), 0x10000u);
  EXPECT_EQ(got.loaded("setuid"), 0x10000u);
  EXPECT_TRUE(got.unchanged("setuid"));
}

TEST_F(GotTest, MemoryCorruptionIsVisibleThroughCurrent) {
  got.bind("setuid", 0x10000);
  // The attack: an out-of-bounds array write lands on the slot.
  as.write64(got.slot_address("setuid"), 0x77AB01);
  EXPECT_EQ(got.current("setuid"), 0x77AB01u);
  EXPECT_EQ(got.loaded("setuid"), 0x10000u);  // snapshot unchanged
  EXPECT_FALSE(got.unchanged("setuid"));      // the pFSM3 predicate fails
}

TEST_F(GotTest, RestoringTheValueRestoresConsistency) {
  got.bind("free", 0x10010);
  as.write64(got.slot_address("free"), 0xBAD);
  as.write64(got.slot_address("free"), 0x10010);
  EXPECT_TRUE(got.unchanged("free"));
}

TEST_F(GotTest, DuplicateSymbolRejected) {
  got.bind("setuid", 0x10000);
  EXPECT_THROW(got.bind("setuid", 0x10020), std::invalid_argument);
}

TEST_F(GotTest, CapacityEnforced) {
  got.bind("a", 1);
  got.bind("b", 2);
  got.bind("c", 3);
  got.bind("d", 4);
  EXPECT_THROW(got.bind("e", 5), std::invalid_argument);
}

TEST_F(GotTest, UnknownSymbolThrows) {
  EXPECT_THROW((void)got.slot_address("nope"), std::invalid_argument);
  EXPECT_THROW((void)got.current("nope"), std::invalid_argument);
  EXPECT_THROW((void)got.loaded("nope"), std::invalid_argument);
  EXPECT_FALSE(got.has("nope"));
}

TEST_F(GotTest, TableIsWritableSegment) {
  // The GOT must be writable (non-RELRO) or the studied exploits would be
  // impossible — verify the segment's permissions.
  const Segment* seg = as.segment_named("got");
  ASSERT_NE(seg, nullptr);
  EXPECT_TRUE(has_perm(seg->perms, Perm::kWrite));
}

TEST(Got, ZeroCapacityRejected) {
  AddressSpace as;
  EXPECT_THROW((Got{as, 0x20000, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace dfsm::memsim
