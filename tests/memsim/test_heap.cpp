#include "memsim/heap.h"

#include <gtest/gtest.h>

namespace dfsm::memsim {
namespace {

constexpr Addr kHeapBase = 0x100000;
constexpr std::size_t kHeapSize = 0x10000;

class HeapTest : public ::testing::Test {
 protected:
  HeapTest() : heap(as, kHeapBase, kHeapSize) {
    as.map("got", 0x20000, 0x100, Perm::kRW);  // a corruption target
  }
  AddressSpace as;
  HeapAllocator heap;
};

TEST_F(HeapTest, FreshHeapAuditsClean) {
  EXPECT_TRUE(heap.audit().empty());
  const auto chunks = heap.chunks();
  ASSERT_EQ(chunks.size(), 1u);  // one big free chunk
  EXPECT_TRUE(chunks[0].is_free);
}

TEST_F(HeapTest, MallocReturnsUsableZeroableMemory) {
  const Addr p = heap.malloc(100);
  EXPECT_GE(heap.usable_size(p), 100u);
  as.write_bytes(p, std::vector<std::uint8_t>(100, 0xAB));
  EXPECT_EQ(as.read8(p + 99), 0xAB);
  EXPECT_TRUE(heap.audit().empty());
}

TEST_F(HeapTest, CallocZeroes) {
  const Addr p = heap.malloc(64);
  as.write_bytes(p, std::vector<std::uint8_t>(64, 0xFF));
  heap.free(p);
  const Addr q = heap.calloc(64, 1);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(as.read8(q + i), 0u) << i;
}

TEST_F(HeapTest, CallocOverflowGuard) {
  EXPECT_THROW((void)heap.calloc(static_cast<std::size_t>(-1), 16), HeapError);
}

TEST_F(HeapTest, HugeRequestFailsCleanly) {
  // The NULL HTTPD (size_t)(negative int) pattern.
  EXPECT_THROW((void)heap.malloc(static_cast<std::size_t>(-976)), HeapError);
  EXPECT_TRUE(heap.audit().empty());
}

TEST_F(HeapTest, DistinctAllocationsDoNotOverlap) {
  const Addr a = heap.malloc(40);
  const Addr b = heap.malloc(40);
  const Addr c = heap.malloc(40);
  EXPECT_GE(b, a + 40);
  EXPECT_GE(c, b + 40);
}

TEST_F(HeapTest, FreeMakesMemoryReusable) {
  const Addr a = heap.malloc(128);
  heap.free(a);
  const Addr b = heap.malloc(128);
  EXPECT_EQ(a, b);  // first fit reuses the same spot
}

TEST_F(HeapTest, DoubleFreeDetected) {
  const Addr a = heap.malloc(64);
  heap.malloc(64);  // guard so a does not merge into top
  heap.free(a);
  EXPECT_THROW(heap.free(a), HeapError);
}

TEST_F(HeapTest, FreeOfForeignPointerRejected) {
  EXPECT_THROW(heap.free(0x20000), HeapError);
  EXPECT_THROW(heap.free(kHeapBase + kHeapSize + 64), HeapError);
}

TEST_F(HeapTest, ForwardCoalesceMergesWithNextFreeChunk) {
  const Addr a = heap.malloc(64);
  const Addr b = heap.malloc(64);
  heap.malloc(64);  // plug so b does not merge into top when freed
  heap.free(b);
  const auto before = heap.chunks().size();
  heap.free(a);  // must merge a with b
  EXPECT_LT(heap.chunks().size(), before + 1);
  EXPECT_TRUE(heap.audit().empty());
  EXPECT_GT(heap.stats().coalesces, 0u);
}

TEST_F(HeapTest, BackwardCoalesceMergesWithPreviousFreeChunk) {
  const Addr a = heap.malloc(64);
  const Addr b = heap.malloc(64);
  heap.malloc(64);
  heap.free(a);
  heap.free(b);  // b merges backward into a
  EXPECT_TRUE(heap.audit().empty());
  // The merged chunk serves a request as large as both.
  const Addr c = heap.malloc(140);
  EXPECT_EQ(c, a);
}

TEST_F(HeapTest, SplitLeavesAuditCleanRemainder) {
  const Addr a = heap.malloc(kHeapSize / 4);
  heap.free(a);
  const Addr b = heap.malloc(32);  // splits the big free chunk
  EXPECT_EQ(a, b);
  EXPECT_TRUE(heap.audit().empty());
  EXPECT_GT(heap.stats().splits, 0u);
}

TEST_F(HeapTest, FollowingFreeChunkSeesTheTop) {
  const Addr a = heap.malloc(64);
  const Addr b = heap.following_free_chunk(a);
  ASSERT_NE(b, 0u);
  // fd/bk of the following free chunk are live list pointers.
  const Addr fd = as.read64(b + ChunkLayout::kFdOffset);
  const Addr bk = as.read64(b + ChunkLayout::kBkOffset);
  EXPECT_EQ(fd, heap.bin());
  EXPECT_EQ(bk, heap.bin());
}

TEST_F(HeapTest, FollowingFreeChunkIsZeroWhenNextAllocated) {
  const Addr a = heap.malloc(64);
  heap.malloc(64);
  EXPECT_EQ(heap.following_free_chunk(a), 0u);
}

// --- The exploit mechanics of Figure 4 ---------------------------------

TEST_F(HeapTest, CorruptedFdBkUnlinkIsWriteWhatWhere) {
  const Addr target_slot = 0x20000;  // pretend GOT slot
  as.write64(target_slot, 0x10010);  // original function pointer
  const Addr mcode = 0x20080;        // attacker-chosen value (mapped RW here)

  const Addr a = heap.malloc(224);
  const Addr b = heap.following_free_chunk(a);
  ASSERT_NE(b, 0u);

  // The overflow: rewrite B's fd and bk (header fields preserved).
  as.write64(b + ChunkLayout::kFdOffset, target_slot - ChunkLayout::kBkOffset);
  as.write64(b + ChunkLayout::kBkOffset, mcode);

  heap.free(a);  // forward coalesce unlinks B: FD->bk = BK

  EXPECT_EQ(as.read64(target_slot), mcode) << "write-what-where did not fire";
  // And the mirror write BK->fd = FD clobbered mcode+16.
  EXPECT_EQ(as.read64(mcode + ChunkLayout::kFdOffset),
            target_slot - ChunkLayout::kBkOffset);
}

TEST_F(HeapTest, SafeUnlinkDetectsTamperedLinks) {
  heap.set_safe_unlink(true);
  const Addr a = heap.malloc(224);
  const Addr b = heap.following_free_chunk(a);
  ASSERT_NE(b, 0u);
  as.write64(b + ChunkLayout::kFdOffset, 0x20000 - ChunkLayout::kBkOffset);
  as.write64(b + ChunkLayout::kBkOffset, 0x20080);
  EXPECT_THROW(heap.free(a), HeapError);                // pFSM3 foils
  EXPECT_EQ(as.read64(0x20000), 0u) << "no write must have happened";
}

TEST_F(HeapTest, SafeUnlinkPermitsLegitimateOperation) {
  HeapAllocator safe{as, 0x200000, 0x8000, /*safe_unlink=*/true, "heap2"};
  const Addr a = safe.malloc(100);
  const Addr b = safe.malloc(100);
  safe.free(a);
  safe.free(b);
  const Addr c = safe.malloc(180);
  (void)c;
  EXPECT_TRUE(safe.audit().empty());
}

TEST_F(HeapTest, AuditDetectsCorruptSizeField) {
  const Addr a = heap.malloc(64);
  heap.malloc(64);
  as.write64(a - ChunkLayout::kHeader + 8, 0x4141414141414141ull);
  EXPECT_FALSE(heap.audit().empty());
}

TEST_F(HeapTest, AuditDetectsTamperedFreeListLinks) {
  const Addr a = heap.malloc(64);
  const Addr b = heap.following_free_chunk(a);
  ASSERT_NE(b, 0u);
  as.write64(b + ChunkLayout::kBkOffset, 0x20000);
  const auto findings = heap.audit();
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].find("tampered"), std::string::npos);
}

TEST_F(HeapTest, StatsAccumulate) {
  const Addr a = heap.malloc(10);
  heap.free(a);
  EXPECT_EQ(heap.stats().mallocs, 1u);
  EXPECT_EQ(heap.stats().frees, 1u);
  EXPECT_GT(heap.stats().unlinks, 0u);
}

TEST_F(HeapTest, ReallocGrowsAndPreservesContent) {
  const Addr a = heap.malloc(32);
  as.write_bytes(a, std::vector<std::uint8_t>{1, 2, 3, 4});
  const Addr b = heap.realloc(a, 500);
  EXPECT_GE(heap.usable_size(b), 500u);
  EXPECT_EQ(as.read_bytes(b, 4), (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_TRUE(heap.audit().empty());
}

TEST_F(HeapTest, ReallocShrinksAndTruncates) {
  const Addr a = heap.malloc(500);
  as.write_bytes(a, std::vector<std::uint8_t>(500, 0x7E));
  const Addr b = heap.realloc(a, 16);
  EXPECT_EQ(as.read8(b + 15), 0x7E);
  EXPECT_TRUE(heap.audit().empty());
}

TEST_F(HeapTest, ReallocNullAndZeroEdges) {
  const Addr a = heap.realloc(0, 64);  // == malloc
  EXPECT_NE(a, 0u);
  EXPECT_EQ(heap.realloc(a, 0), 0u);  // == free
  EXPECT_TRUE(heap.audit().empty());
}

TEST_F(HeapTest, CoalescingIsCompleteAfterFreeingEverything) {
  // Allocate a pile in mixed sizes, free in an order that exercises both
  // coalescing directions, then demand one allocation spanning almost the
  // whole heap: only complete coalescing can satisfy it.
  std::vector<Addr> ptrs;
  for (const std::size_t n : {64u, 200u, 32u, 1024u, 16u, 512u, 300u}) {
    ptrs.push_back(heap.malloc(n));
  }
  // Free evens forward, odds backward.
  for (std::size_t i = 0; i < ptrs.size(); i += 2) heap.free(ptrs[i]);
  for (std::size_t i = ptrs.size() - (ptrs.size() % 2 ? 0 : 1); i-- > 0;) {
    if (i % 2 == 1) heap.free(ptrs[i]);
  }
  EXPECT_TRUE(heap.audit().empty());
  const auto chunks = heap.chunks();
  ASSERT_EQ(chunks.size(), 1u) << "fragmentation survived a full free";
  EXPECT_TRUE(chunks[0].is_free);
  // And the single chunk is allocatable as one block.
  EXPECT_NO_THROW((void)heap.malloc(chunks[0].size - 2 * 16));
}

TEST(HeapStandalone, TooSmallHeapRejected) {
  AddressSpace as;
  EXPECT_THROW((HeapAllocator{as, 0x1000, 64}), std::invalid_argument);
}

// Property: a mixed alloc/free workload driven by a deterministic pattern
// leaves the heap audit-clean and all live allocations intact.
class HeapWorkload : public ::testing::TestWithParam<unsigned> {};

TEST_P(HeapWorkload, MixedWorkloadKeepsInvariants) {
  AddressSpace as;
  HeapAllocator heap{as, kHeapBase, kHeapSize, GetParam() % 2 == 1};
  std::uint64_t rng = 0x9E3779B97F4A7C15ull * (GetParam() + 1);
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::vector<std::pair<Addr, std::uint8_t>> live;
  for (int step = 0; step < 400; ++step) {
    if (live.size() < 4 || next() % 3 != 0) {
      const std::size_t n = 16 + next() % 600;
      try {
        const Addr p = heap.malloc(n);
        const auto tag = static_cast<std::uint8_t>(next() & 0xFF);
        as.write_bytes(p, std::vector<std::uint8_t>(heap.usable_size(p), tag));
        live.emplace_back(p, tag);
      } catch (const HeapError&) {
        // exhaustion under fragmentation is legitimate
      }
    } else {
      const std::size_t idx = next() % live.size();
      heap.free(live[idx].first);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_TRUE(heap.audit().empty()) << "step " << step;
  }
  // Every live allocation still holds its tag (no overlap ever happened).
  for (const auto& [p, tag] : live) {
    EXPECT_EQ(as.read8(p), tag);
    EXPECT_EQ(as.read8(p + heap.usable_size(p) - 1), tag);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapWorkload, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace dfsm::memsim
