#include "memsim/address_space.h"

#include <gtest/gtest.h>

namespace dfsm::memsim {
namespace {

class AddressSpaceTest : public ::testing::Test {
 protected:
  AddressSpaceTest() {
    as.map("rw", 0x1000, 0x1000, Perm::kRW);
    as.map("ro", 0x3000, 0x100, Perm::kRead);
    as.map("rx", 0x4000, 0x100, Perm::kRX);
  }
  AddressSpace as;
};

TEST_F(AddressSpaceTest, MappingRejectsOverlapZeroSizeAndNullBase) {
  EXPECT_THROW(as.map("dup", 0x1800, 0x10, Perm::kRW), std::invalid_argument);
  EXPECT_THROW(as.map("edge", 0x0FFF, 0x2, Perm::kRW), std::invalid_argument);
  EXPECT_THROW(as.map("zero", 0x9000, 0, Perm::kRW), std::invalid_argument);
  EXPECT_THROW(as.map("null", 0, 0x10, Perm::kRW), std::invalid_argument);
  // Adjacent (end-to-start) mapping is fine.
  EXPECT_NO_THROW(as.map("adjacent", 0x2000, 0x10, Perm::kRW));
}

TEST_F(AddressSpaceTest, SegmentsStartZeroFilled) {
  EXPECT_EQ(as.read64(0x1000), 0u);
  EXPECT_EQ(as.read8(0x1FFF), 0u);
}

TEST_F(AddressSpaceTest, LittleEndianRoundTrip) {
  as.write64(0x1000, 0x0123456789ABCDEFull);
  EXPECT_EQ(as.read64(0x1000), 0x0123456789ABCDEFull);
  EXPECT_EQ(as.read8(0x1000), 0xEF);   // lowest byte first
  EXPECT_EQ(as.read8(0x1007), 0x01);
  EXPECT_EQ(as.read32(0x1000), 0x89ABCDEFu);
  EXPECT_EQ(as.read16(0x1000), 0xCDEF);
}

TEST_F(AddressSpaceTest, MixedWidthWrites) {
  as.write32(0x1100, 0xAABBCCDD);
  as.write16(0x1104, 0x1122);
  as.write8(0x1106, 0x33);
  EXPECT_EQ(as.read8(0x1100), 0xDD);
  EXPECT_EQ(as.read16(0x1104), 0x1122);
  EXPECT_EQ(as.read8(0x1106), 0x33);
}

TEST_F(AddressSpaceTest, UnmappedAccessFaults) {
  EXPECT_THROW((void)as.read8(0x9999), MemoryFault);
  EXPECT_THROW(as.write8(0x9999, 1), MemoryFault);
  EXPECT_THROW((void)as.read64(0x0), MemoryFault);  // null never mapped
}

TEST_F(AddressSpaceTest, CrossSegmentAccessFaults) {
  // Read straddling the end of a segment must fault, not wrap.
  EXPECT_THROW((void)as.read64(0x1FFC), MemoryFault);
  EXPECT_NO_THROW((void)as.read32(0x1FFC));
}

TEST_F(AddressSpaceTest, PermissionEnforcement) {
  EXPECT_NO_THROW((void)as.read8(0x3000));
  EXPECT_THROW(as.write8(0x3000, 1), MemoryFault);
  EXPECT_THROW(as.write8(0x4000, 1), MemoryFault);
  EXPECT_TRUE(as.executable(0x4000));
  EXPECT_FALSE(as.executable(0x1000));
  EXPECT_FALSE(as.executable(0x999999));
}

TEST_F(AddressSpaceTest, FaultCarriesAddress) {
  try {
    as.write8(0x3000, 1);
    FAIL() << "expected MemoryFault";
  } catch (const MemoryFault& f) {
    EXPECT_EQ(f.addr(), 0x3000u);
    EXPECT_NE(std::string(f.what()).find("permission"), std::string::npos);
  }
}

TEST_F(AddressSpaceTest, BulkBytesRoundTrip) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  as.write_bytes(0x1200, data);
  EXPECT_EQ(as.read_bytes(0x1200, 5), data);
  EXPECT_TRUE(as.read_bytes(0x1200, 0).empty());
}

TEST_F(AddressSpaceTest, CStringRoundTrip) {
  as.write_string(0x1300, "hello");
  EXPECT_EQ(as.read_cstring(0x1300), "hello");
  // An unterminated string running into the segment end must fault.
  as.write_string(0x1FF0, "0123456789ABCDEF", /*nul_terminate=*/false);
  EXPECT_THROW((void)as.read_cstring(0x1FF0), MemoryFault);
}

TEST_F(AddressSpaceTest, CStringMaxLenGuard) {
  as.write_string(0x1400, std::string(64, 'x'));
  EXPECT_THROW((void)as.read_cstring(0x1400, 10), MemoryFault);
}

TEST_F(AddressSpaceTest, FindAndSegmentNamed) {
  const Segment* s = as.find(0x1800);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name, "rw");
  EXPECT_EQ(as.find(0xDEAD0000), nullptr);
  ASSERT_NE(as.segment_named("ro"), nullptr);
  EXPECT_EQ(as.segment_named("ro")->base, 0x3000u);
  EXPECT_EQ(as.segment_named("nope"), nullptr);
}

TEST_F(AddressSpaceTest, JournalRecordsWritesWhenEnabled) {
  as.enable_journal(true);
  as.write64(0x1000, 1);
  as.write8(0x1010, 2);
  (void)as.read8(0x1000);
  EXPECT_EQ(as.journal().size(), 3u);
  EXPECT_EQ(as.writes_in(0x1000, 0x1008), 1u);
  EXPECT_EQ(as.writes_in(0x1000, 0x1011), 2u);
  EXPECT_EQ(as.writes_in(0x2000, 0x3000), 0u);
  as.clear_journal();
  EXPECT_TRUE(as.journal().empty());
}

TEST_F(AddressSpaceTest, JournalDisabledByDefault) {
  as.write64(0x1000, 1);
  EXPECT_TRUE(as.journal().empty());
}

TEST_F(AddressSpaceTest, WritesInDetectsOverlappingRanges) {
  as.enable_journal(true);
  as.write_bytes(0x1100, std::vector<std::uint8_t>(16, 0xAA));
  // A 16-byte write overlaps any window intersecting [0x1100, 0x1110).
  EXPECT_EQ(as.writes_in(0x10F8, 0x1101), 1u);
  EXPECT_EQ(as.writes_in(0x110F, 0x1200), 1u);
  EXPECT_EQ(as.writes_in(0x1110, 0x1200), 0u);
}

}  // namespace
}  // namespace dfsm::memsim
