#include "memsim/stack.h"

#include <gtest/gtest.h>

namespace dfsm::memsim {
namespace {

constexpr Addr kBase = 0x200000;
constexpr std::size_t kSize = 0x4000;

class StackTest : public ::testing::Test {
 protected:
  AddressSpace as;
};

TEST_F(StackTest, FrameLayoutPlacesBufferBelowReturnAddress) {
  Stack st{as, kBase, kSize};
  const auto f = st.push_frame("Log", 0x10040, {{"temp", 200}});
  EXPECT_EQ(f.ret_slot, kBase + kSize - 8);
  EXPECT_FALSE(f.canary_slot);
  const Addr temp = f.locals.at("temp");
  // temp + 200 runs exactly into the ret slot: the stack-smash geometry.
  EXPECT_EQ(temp + 200, f.ret_slot);
  EXPECT_EQ(st.sp(), temp);
  EXPECT_EQ(as.read64(f.ret_slot), 0x10040u);
}

TEST_F(StackTest, CanaryFrameInsertsGuardWord) {
  Stack st{as, kBase, kSize, /*canaries=*/true};
  const auto f = st.push_frame("Log", 0x10040, {{"temp", 200}});
  ASSERT_TRUE(f.canary_slot);
  EXPECT_EQ(*f.canary_slot, f.ret_slot - 8);
  EXPECT_EQ(f.locals.at("temp") + 200, *f.canary_slot);
  EXPECT_EQ(as.read64(*f.canary_slot), st.canary_value());
}

TEST_F(StackTest, LocalsAreEightByteAlignedAndOrdered) {
  Stack st{as, kBase, kSize};
  const auto f = st.push_frame("f", 0x10040, {{"a", 13}, {"b", 8}});
  // a (aligned to 16) sits just below the ret slot, b below a.
  EXPECT_EQ(f.locals.at("a") + 16, f.ret_slot);
  EXPECT_EQ(f.locals.at("b") + 8, f.locals.at("a"));
  EXPECT_EQ(f.low, f.locals.at("b"));
}

TEST_F(StackTest, CleanPopReturnsPushedAddress) {
  Stack st{as, kBase, kSize, true};
  const auto f = st.push_frame("f", 0x10040, {{"x", 8}});
  const auto r = st.pop_frame(f);
  EXPECT_EQ(r.return_address, 0x10040u);
  EXPECT_TRUE(r.canary_intact);
  EXPECT_FALSE(r.ret_modified);
  EXPECT_EQ(st.depth(), 0u);
  EXPECT_EQ(st.sp(), kBase + kSize);
}

TEST_F(StackTest, SmashedReturnAddressIsReadBack) {
  Stack st{as, kBase, kSize};
  const auto f = st.push_frame("f", 0x10040, {{"buf", 16}});
  as.write64(f.ret_slot, 0x77AB01);  // the overflow's effect
  EXPECT_EQ(st.saved_return(f), 0x77AB01u);
  const auto r = st.pop_frame(f);
  EXPECT_EQ(r.return_address, 0x77AB01u);
  EXPECT_TRUE(r.ret_modified);
  EXPECT_TRUE(r.canary_intact);  // no canary configured
}

TEST_F(StackTest, SmashedCanaryDetectedOnPop) {
  Stack st{as, kBase, kSize, true};
  const auto f = st.push_frame("f", 0x10040, {{"buf", 16}});
  as.write64(*f.canary_slot, 0x4141414141414141ull);
  const auto r = st.pop_frame(f);
  EXPECT_FALSE(r.canary_intact);
}

TEST_F(StackTest, NestedFramesPopInLifoOrder) {
  Stack st{as, kBase, kSize};
  const auto f1 = st.push_frame("outer", 0x10040, {{"a", 8}});
  const auto f2 = st.push_frame("inner", 0x10050, {{"b", 8}});
  EXPECT_EQ(st.depth(), 2u);
  EXPECT_LT(f2.ret_slot, f1.low);  // inner frame strictly below outer
  EXPECT_THROW((void)st.pop_frame(f1), std::logic_error);  // not innermost
  EXPECT_EQ(st.pop_frame(f2).return_address, 0x10050u);
  EXPECT_EQ(st.pop_frame(f1).return_address, 0x10040u);
}

TEST_F(StackTest, PopOnEmptyStackThrows) {
  Stack st{as, kBase, kSize};
  Frame bogus;
  EXPECT_THROW((void)st.pop_frame(bogus), std::logic_error);
}

TEST_F(StackTest, ZeroSizedLocalRejected) {
  Stack st{as, kBase, kSize};
  EXPECT_THROW((void)st.push_frame("f", 0x10040, {{"z", 0}}),
               std::invalid_argument);
}

TEST_F(StackTest, ExhaustionFaults) {
  Stack st{as, kBase, 0x100};
  EXPECT_THROW((void)st.push_frame("big", 0x10040, {{"huge", 0x200}}),
               MemoryFault);
}

TEST_F(StackTest, LocalsAreOrdinaryMemory) {
  Stack st{as, kBase, kSize};
  const auto f = st.push_frame("f", 0x10040, {{"buf", 32}});
  as.write_string(f.locals.at("buf"), "payload");
  EXPECT_EQ(as.read_cstring(f.locals.at("buf")), "payload");
}

}  // namespace
}  // namespace dfsm::memsim
