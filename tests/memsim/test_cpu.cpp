#include "memsim/cpu.h"

#include <gtest/gtest.h>

namespace dfsm::memsim {
namespace {

class CpuTest : public ::testing::Test {
 protected:
  CpuTest() : cpu(as, 0x10000, 0x100), got(as, 0x20000, 8) {}
  AddressSpace as;
  CpuContext cpu;
  Got got;
};

TEST_F(CpuTest, FunctionsGetSpacedTextAddresses) {
  const Addr a = cpu.register_function("setuid");
  const Addr b = cpu.register_function("free");
  EXPECT_EQ(a, 0x10000u);
  EXPECT_EQ(b, 0x10010u);
  EXPECT_TRUE(cpu.is_function(a));
  EXPECT_FALSE(cpu.is_function(a + 1));
  EXPECT_EQ(cpu.function_address("free"), b);
}

TEST_F(CpuTest, DuplicateAndUnknownFunctions) {
  cpu.register_function("f");
  EXPECT_THROW(cpu.register_function("f"), std::invalid_argument);
  EXPECT_THROW((void)cpu.function_address("missing"), std::invalid_argument);
}

TEST_F(CpuTest, TextSegmentCapacityEnforced) {
  for (int i = 0; i < 16; ++i) cpu.register_function("f" + std::to_string(i));
  EXPECT_THROW(cpu.register_function("overflow"), std::invalid_argument);
}

TEST_F(CpuTest, DispatchClassifiesLandings) {
  const Addr fn = cpu.register_function("setuid");
  cpu.plant_mcode(0x77AB01, 0x1000);

  const auto l1 = cpu.dispatch(fn);
  EXPECT_EQ(l1.kind, LandingKind::kFunction);
  EXPECT_EQ(l1.function, "setuid");

  const auto l2 = cpu.dispatch(0x77AB01 + 0x10);
  EXPECT_EQ(l2.kind, LandingKind::kMcode);

  const auto l3 = cpu.dispatch(0xDEAD);
  EXPECT_EQ(l3.kind, LandingKind::kWild);
}

TEST_F(CpuTest, McodeRegionBoundariesAreExact) {
  cpu.plant_mcode(0x77AB01, 0x100);
  EXPECT_TRUE(cpu.is_mcode(0x77AB01));
  EXPECT_TRUE(cpu.is_mcode(0x77AB01 + 0xFF));
  EXPECT_FALSE(cpu.is_mcode(0x77AB01 + 0x100));
  EXPECT_FALSE(cpu.is_mcode(0x77AB00));
}

TEST_F(CpuTest, NoMcodeMeansNothingIsMcode) {
  EXPECT_FALSE(cpu.is_mcode(0x77AB01));
}

TEST_F(CpuTest, CallThroughGotFollowsCurrentSlotValue) {
  const Addr fn = cpu.register_function("setuid");
  cpu.plant_mcode(0x77AB01, 0x1000);
  got.bind("setuid", fn);

  EXPECT_EQ(cpu.call_through_got(got, "setuid").kind, LandingKind::kFunction);

  // Corrupt the slot: the same call now lands in Mcode.
  as.write64(got.slot_address("setuid"), 0x77AB01);
  const auto landing = cpu.call_through_got(got, "setuid");
  EXPECT_EQ(landing.kind, LandingKind::kMcode);
  EXPECT_EQ(landing.address, 0x77AB01u);
}

TEST_F(CpuTest, LandingCounterCountsOnlyMcode) {
  const Addr fn = cpu.register_function("f");
  cpu.plant_mcode(0x77AB01, 0x1000);
  cpu.count_landing(cpu.dispatch(fn));
  EXPECT_EQ(cpu.mcode_landings(), 0u);
  cpu.count_landing(cpu.dispatch(0x77AB01));
  cpu.count_landing(cpu.dispatch(0x77AB02));
  EXPECT_EQ(cpu.mcode_landings(), 2u);
}

TEST_F(CpuTest, McodeSegmentIsWritableAndExecutable) {
  cpu.plant_mcode(0x77AB01, 0x1000);
  // unlink's mirror write (BK->fd = FD) lands at mcode+16; it must not fault.
  as.write64(0x77AB01 + 16, 0x1234);
  EXPECT_TRUE(as.executable(0x77AB01));
}

TEST(LandingKindNames, ToString) {
  EXPECT_STREQ(to_string(LandingKind::kFunction), "FUNCTION");
  EXPECT_STREQ(to_string(LandingKind::kMcode), "MCODE");
  EXPECT_STREQ(to_string(LandingKind::kWild), "WILD");
}

}  // namespace
}  // namespace dfsm::memsim
