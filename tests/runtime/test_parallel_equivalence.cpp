// Parallel-vs-serial equivalence: the determinism contract, checked on
// the three wired hot paths. Each test runs the same computation with
// the global pool in serial fallback and again with several workers and
// requires byte-identical results.
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/autotool.h"
#include "analysis/chain_analyzer.h"
#include "analysis/defense_matrix.h"
#include "analysis/discovery.h"
#include "analysis/hidden_path.h"
#include "analysis/report.h"
#include "analysis/sweep_memo.h"
#include "apps/case_study.h"
#include "apps/synthetic.h"
#include "bugtraq/corpus.h"
#include "bugtraq/database.h"
#include "bugtraq/stats.h"
#include "core/chain.h"
#include "runtime/thread_pool.h"

namespace dfsm {
namespace {

using runtime::ThreadPool;

/// Runs fn with the global pool at 1 worker (serial fallback) and at 4
/// workers, restores the default, and returns the two results.
template <typename Fn>
auto serial_and_parallel(Fn&& fn) {
  ThreadPool::set_global_threads(1);
  auto serial = fn();
  ThreadPool::set_global_threads(4);
  auto parallel = fn();
  ThreadPool::set_global_threads(ThreadPool::default_threads());
  return std::make_pair(std::move(serial), std::move(parallel));
}

TEST(ParallelEquivalence, AutoToolAnalyzeOnAllSpecs) {
  const auto [serial, parallel] = serial_and_parallel([] {
    std::vector<std::string> reports;
    for (const auto& spec : analysis::all_specs()) {
      reports.push_back(analysis::AutoTool::analyze(spec).to_text());
    }
    return reports;
  });
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "spec #" << i;
  }
}

TEST(ParallelEquivalence, CorpusHistogramsAndSweeps) {
  const auto db = bugtraq::synthetic_corpus();
  const auto [serial, parallel] = serial_and_parallel([&] {
    // A fresh copy per run so the histogram cache cannot leak results
    // from one thread count to the other.
    const bugtraq::Database copy{db};
    struct Out {
      std::map<bugtraq::Category, std::size_t> by_category;
      std::map<bugtraq::VulnClass, std::size_t> by_class;
      std::size_t remote_overflows;
      std::vector<std::pair<int, std::string>> hits;  // (id, title), in order
      std::string figure1;
    } out;
    out.by_category = copy.count_by_category();
    out.by_class = copy.count_by_class();
    out.remote_overflows = copy.count([](const bugtraq::VulnRecord& r) {
      return r.remote && r.vuln_class == bugtraq::VulnClass::kHeapOverflow;
    });
    for (const auto* r : copy.query([](const bugtraq::VulnRecord& r) {
           return r.year == 2001 && !r.remote;
         })) {
      out.hits.emplace_back(r->id, r->title);
    }
    out.figure1 = bugtraq::render_figure1(copy);
    return out;
  });

  EXPECT_EQ(serial.by_category, parallel.by_category);
  EXPECT_EQ(serial.by_class, parallel.by_class);
  EXPECT_EQ(serial.remote_overflows, parallel.remote_overflows);
  EXPECT_EQ(serial.figure1, parallel.figure1);
  // Hit lists were materialized by value; order and content must match.
  EXPECT_EQ(serial.hits, parallel.hits);
}

TEST(ParallelEquivalence, TemplatedAndTypeErasedOverloadsAgree) {
  const auto db = bugtraq::synthetic_corpus();
  const auto is_remote = [](const bugtraq::VulnRecord& r) { return r.remote; };
  const std::function<bool(const bugtraq::VulnRecord&)> erased = is_remote;
  EXPECT_EQ(db.count(is_remote), db.count(erased));
  EXPECT_EQ(db.query(is_remote), db.query(erased));
}

TEST(ParallelEquivalence, StatsSweeps) {
  const auto db = bugtraq::synthetic_corpus();
  const auto [serial, parallel] = serial_and_parallel([&] {
    struct Out {
      std::size_t remote, local;
      std::vector<bugtraq::YearCount> years;
      std::vector<bugtraq::SoftwareCount> top;
    } out;
    const auto split = bugtraq::remote_local_split(db);
    out.remote = split.remote;
    out.local = split.local;
    out.years = bugtraq::by_year(db);
    out.top = bugtraq::top_software(db, 10);
    return out;
  });
  EXPECT_EQ(serial.remote, parallel.remote);
  EXPECT_EQ(serial.local, parallel.local);
  ASSERT_EQ(serial.years.size(), parallel.years.size());
  for (std::size_t i = 0; i < serial.years.size(); ++i) {
    EXPECT_EQ(serial.years[i].year, parallel.years[i].year);
    EXPECT_EQ(serial.years[i].count, parallel.years[i].count);
  }
  ASSERT_EQ(serial.top.size(), parallel.top.size());
  for (std::size_t i = 0; i < serial.top.size(); ++i) {
    EXPECT_EQ(serial.top[i].software, parallel.top[i].software);
    EXPECT_EQ(serial.top[i].count, parallel.top[i].count);
  }
}

TEST(ParallelEquivalence, DiscoveryCampaigns) {
  const auto [serial, parallel] = serial_and_parallel([] {
    std::vector<analysis::DiscoveryReport> reports;
    reports.push_back(analysis::probe_nullhttpd_v051());
    reports.push_back(analysis::probe_nullhttpd_fixed());
    reports.push_back(analysis::probe_nullhttpd_v05());
    return reports;
  });
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    const auto& s = serial[k];
    const auto& p = parallel[k];
    EXPECT_EQ(s.configuration, p.configuration);
    EXPECT_EQ(s.violations, p.violations);
    EXPECT_EQ(s.found_new_vulnerability, p.found_new_vulnerability);
    EXPECT_EQ(s.finding, p.finding);
    ASSERT_EQ(s.probes.size(), p.probes.size());
    for (std::size_t i = 0; i < s.probes.size(); ++i) {
      EXPECT_EQ(s.probes[i].content_len, p.probes[i].content_len) << k << ":" << i;
      EXPECT_EQ(s.probes[i].body_len, p.probes[i].body_len) << k << ":" << i;
      EXPECT_EQ(s.probes[i].buffer_size, p.probes[i].buffer_size) << k << ":" << i;
      EXPECT_EQ(s.probes[i].bytes_read, p.probes[i].bytes_read) << k << ":" << i;
      EXPECT_EQ(s.probes[i].predicate_violated, p.probes[i].predicate_violated);
      EXPECT_EQ(s.probes[i].rejected, p.probes[i].rejected);
      EXPECT_EQ(s.probes[i].note, p.probes[i].note) << k << ":" << i;
    }
  }
}

// --- Chain evaluation engine (DESIGN.md §10) ---------------------------
//
// The ISSUE contract is byte-identical outputs at DFSM_THREADS 0, 1 and
// 4 (0 = "decide from the hardware", which must not change results
// either). These run under TSan in the CI sanitizer matrix.

/// Runs fn at pool sizes 0, 1 and 4, restores the default, and returns
/// the three results in that order.
template <typename Fn>
auto at_thread_counts(Fn&& fn) {
  std::vector<decltype(fn())> out;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{4}}) {
    ThreadPool::set_global_threads(threads);
    out.push_back(fn());
  }
  ThreadPool::set_global_threads(ThreadPool::default_threads());
  return out;
}

std::string render_report(const analysis::LemmaReport& r) {
  std::string out = r.study_name;
  for (const auto& row : r.results) {
    out += '\n';
    for (const bool b : row.mask) out += b ? '1' : '0';
    out += ' ' + row.exploit.detail + '|' + row.benign.detail +
           (row.exploit.exploited ? " E" : "") +
           (row.some_operation_secured ? " S" : "");
  }
  out += "\nverdicts " + std::to_string(r.baseline_exploited) +
         std::to_string(r.all_checks_foil) + std::to_string(r.lemma2_holds) +
         std::to_string(r.benign_preserved);
  for (const auto c : r.foiling_single_checks) {
    out += ' ' + std::to_string(c);
  }
  return out;
}

TEST(SweepEquivalence, MemoizedSweepIsThreadCountInvariant) {
  apps::SyntheticStudyConfig config;
  config.operations = 3;
  config.checks_per_operation = 4;
  config.work = 4;
  const auto study = apps::make_synthetic_wide_study(config);
  const auto runs =
      at_thread_counts([&] { return render_report(analysis::sweep(*study)); });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[1], runs[2]);
}

TEST(SweepEquivalence, DirectSweepIsThreadCountInvariant) {
  const auto studies = apps::all_case_studies();
  analysis::SweepOptions direct;
  direct.mode = analysis::SweepMode::kDirect;
  const auto runs = at_thread_counts(
      [&] { return render_report(analysis::sweep(*studies[0], direct)); });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[1], runs[2]);
}

TEST(SweepEquivalence, SweepAllIsThreadCountInvariant) {
  const auto runs = at_thread_counts([] {
    std::string out;
    for (const auto& report : analysis::sweep_all()) {
      out += render_report(report) + "\n---\n";
    }
    return out;
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[1], runs[2]);
}

TEST(SweepEquivalence, ScanModelIsThreadCountInvariant) {
  apps::SyntheticStudyConfig config;
  config.operations = 4;
  config.checks_per_operation = 3;
  const auto model =
      apps::make_synthetic_wide_study(config)->model();
  const auto domain = analysis::int_range_domain("x", "x", -256, 256);
  std::map<std::string, std::vector<core::Object>> domains;
  for (const auto& op : model.chain().operations()) {
    for (const auto& pfsm : op.pfsms()) domains[pfsm.name()] = domain;
  }
  const auto runs = at_thread_counts([&] {
    std::string out;
    for (const auto& r : analysis::scan_model(model, domains)) {
      out += r.pfsm_name + ':' + std::to_string(r.domain_size) + ':' +
             std::to_string(r.spec_rejects) + ':';
      for (const auto& w : r.witnesses) out += w.describe() + ',';
      out += '\n';
    }
    return out;
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[1], runs[2]);
}

TEST(SweepEquivalence, EvaluateBatchIsThreadCountInvariant) {
  core::ExploitChain chain{"equivalence chain"};
  for (int i = 0; i < 3; ++i) {
    core::Operation op{"op" + std::to_string(i), "obj"};
    op.add(core::Pfsm::unchecked(
        "p" + std::to_string(i), core::PfsmType::kContentAttributeCheck, "a",
        core::Predicate{"ok", [](const core::Object& o) {
                          return o.attr_bool("ok").value_or(false);
                        }}));
    chain.add(std::move(op), core::PropagationGate{"g" + std::to_string(i)});
  }
  std::vector<std::vector<std::vector<core::Object>>> batch;
  for (std::size_t i = 0; i < 41; ++i) {
    std::vector<std::vector<core::Object>> inputs;
    for (std::size_t op = 0; op < chain.size(); ++op) {
      inputs.push_back({core::Object{"o"}.with("ok", (i + op) % 2 == 0)});
    }
    batch.push_back(std::move(inputs));
  }
  const auto runs = at_thread_counts([&] {
    std::string out;
    for (const auto& r : chain.evaluate_batch(batch)) {
      out += std::to_string(r.hidden_path_count()) +
             (r.exploited() ? "E" : "-") + (r.completed() ? "C" : "-");
      if (r.foiled_at_operation) out += '@' + std::to_string(*r.foiled_at_operation);
      out += '\n';
    }
    return out;
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[1], runs[2]);
}

// --- shared store / incremental paths (this PR's determinism gates) ----

TEST(SweepEquivalence, StoreBackedSweepIsThreadCountInvariant) {
  const auto studies = apps::all_case_studies();
  const auto runs = at_thread_counts([&] {
    // A fresh store per thread count: the cold fill and its telemetry
    // must not depend on how many workers raced through it.
    analysis::SweepMemoStore store;
    analysis::SweepOptions opts;
    opts.memo = &store;
    const auto cold = analysis::sweep(*studies[0], opts);
    const auto warm = analysis::sweep(*studies[0], opts);
    return render_report(cold) + "|cold " + std::to_string(cold.memo_hits) +
           '/' + std::to_string(cold.memo_misses) + "\n" +
           render_report(warm) + "|warm " + std::to_string(warm.memo_hits) +
           '/' + std::to_string(warm.memo_misses);
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[1], runs[2]);
}

TEST(SweepEquivalence, ResweepIsThreadCountInvariant) {
  const auto studies = apps::all_case_studies();
  const auto runs = at_thread_counts([&] {
    const auto baseline = analysis::sweep(*studies[0]);
    analysis::SweepDelta delta;
    delta.secured_operations = {baseline.checks.front().operation_index};
    return render_report(analysis::resweep(*studies[0], baseline, delta));
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[1], runs[2]);
}

TEST(SweepEquivalence, PatchRankingIsThreadCountInvariant) {
  const auto studies = apps::all_case_studies();
  const auto runs = at_thread_counts([&] {
    std::string out;
    for (const auto strategy : {analysis::RankStrategy::kIncremental,
                                analysis::RankStrategy::kFullSweeps}) {
      out += render_patch_ranking(
          analysis::rank_patch_candidates(*studies[0], strategy));
    }
    return out;
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[1], runs[2]);
}

TEST(SweepEquivalence, TelemetryRenderingIsThreadCountInvariant) {
  const auto studies = apps::all_case_studies();
  const auto runs = at_thread_counts([&] {
    analysis::SweepMemoStore store;
    analysis::SweepOptions opts;
    opts.memo = &store;
    const std::vector<analysis::LemmaReport> reports = {
        analysis::sweep(*studies[0], opts),
        analysis::sweep(*studies[0], opts)};
    return analysis::render_sweep_telemetry(reports) +
           analysis::sweep_telemetry_json(reports);
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[1], runs[2]);
}

}  // namespace
}  // namespace dfsm
