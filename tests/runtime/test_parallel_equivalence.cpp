// Parallel-vs-serial equivalence: the determinism contract, checked on
// the three wired hot paths. Each test runs the same computation with
// the global pool in serial fallback and again with several workers and
// requires byte-identical results.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/autotool.h"
#include "analysis/discovery.h"
#include "bugtraq/corpus.h"
#include "bugtraq/database.h"
#include "bugtraq/stats.h"
#include "runtime/thread_pool.h"

namespace dfsm {
namespace {

using runtime::ThreadPool;

/// Runs fn with the global pool at 1 worker (serial fallback) and at 4
/// workers, restores the default, and returns the two results.
template <typename Fn>
auto serial_and_parallel(Fn&& fn) {
  ThreadPool::set_global_threads(1);
  auto serial = fn();
  ThreadPool::set_global_threads(4);
  auto parallel = fn();
  ThreadPool::set_global_threads(ThreadPool::default_threads());
  return std::make_pair(std::move(serial), std::move(parallel));
}

TEST(ParallelEquivalence, AutoToolAnalyzeOnAllSpecs) {
  const auto [serial, parallel] = serial_and_parallel([] {
    std::vector<std::string> reports;
    for (const auto& spec : analysis::all_specs()) {
      reports.push_back(analysis::AutoTool::analyze(spec).to_text());
    }
    return reports;
  });
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "spec #" << i;
  }
}

TEST(ParallelEquivalence, CorpusHistogramsAndSweeps) {
  const auto db = bugtraq::synthetic_corpus();
  const auto [serial, parallel] = serial_and_parallel([&] {
    // A fresh copy per run so the histogram cache cannot leak results
    // from one thread count to the other.
    const bugtraq::Database copy{db};
    struct Out {
      std::map<bugtraq::Category, std::size_t> by_category;
      std::map<bugtraq::VulnClass, std::size_t> by_class;
      std::size_t remote_overflows;
      std::vector<std::pair<int, std::string>> hits;  // (id, title), in order
      std::string figure1;
    } out;
    out.by_category = copy.count_by_category();
    out.by_class = copy.count_by_class();
    out.remote_overflows = copy.count([](const bugtraq::VulnRecord& r) {
      return r.remote && r.vuln_class == bugtraq::VulnClass::kHeapOverflow;
    });
    for (const auto* r : copy.query([](const bugtraq::VulnRecord& r) {
           return r.year == 2001 && !r.remote;
         })) {
      out.hits.emplace_back(r->id, r->title);
    }
    out.figure1 = bugtraq::render_figure1(copy);
    return out;
  });

  EXPECT_EQ(serial.by_category, parallel.by_category);
  EXPECT_EQ(serial.by_class, parallel.by_class);
  EXPECT_EQ(serial.remote_overflows, parallel.remote_overflows);
  EXPECT_EQ(serial.figure1, parallel.figure1);
  // Hit lists were materialized by value; order and content must match.
  EXPECT_EQ(serial.hits, parallel.hits);
}

TEST(ParallelEquivalence, TemplatedAndTypeErasedOverloadsAgree) {
  const auto db = bugtraq::synthetic_corpus();
  const auto is_remote = [](const bugtraq::VulnRecord& r) { return r.remote; };
  const std::function<bool(const bugtraq::VulnRecord&)> erased = is_remote;
  EXPECT_EQ(db.count(is_remote), db.count(erased));
  EXPECT_EQ(db.query(is_remote), db.query(erased));
}

TEST(ParallelEquivalence, StatsSweeps) {
  const auto db = bugtraq::synthetic_corpus();
  const auto [serial, parallel] = serial_and_parallel([&] {
    struct Out {
      std::size_t remote, local;
      std::vector<bugtraq::YearCount> years;
      std::vector<bugtraq::SoftwareCount> top;
    } out;
    const auto split = bugtraq::remote_local_split(db);
    out.remote = split.remote;
    out.local = split.local;
    out.years = bugtraq::by_year(db);
    out.top = bugtraq::top_software(db, 10);
    return out;
  });
  EXPECT_EQ(serial.remote, parallel.remote);
  EXPECT_EQ(serial.local, parallel.local);
  ASSERT_EQ(serial.years.size(), parallel.years.size());
  for (std::size_t i = 0; i < serial.years.size(); ++i) {
    EXPECT_EQ(serial.years[i].year, parallel.years[i].year);
    EXPECT_EQ(serial.years[i].count, parallel.years[i].count);
  }
  ASSERT_EQ(serial.top.size(), parallel.top.size());
  for (std::size_t i = 0; i < serial.top.size(); ++i) {
    EXPECT_EQ(serial.top[i].software, parallel.top[i].software);
    EXPECT_EQ(serial.top[i].count, parallel.top[i].count);
  }
}

TEST(ParallelEquivalence, DiscoveryCampaigns) {
  const auto [serial, parallel] = serial_and_parallel([] {
    std::vector<analysis::DiscoveryReport> reports;
    reports.push_back(analysis::probe_nullhttpd_v051());
    reports.push_back(analysis::probe_nullhttpd_fixed());
    reports.push_back(analysis::probe_nullhttpd_v05());
    return reports;
  });
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    const auto& s = serial[k];
    const auto& p = parallel[k];
    EXPECT_EQ(s.configuration, p.configuration);
    EXPECT_EQ(s.violations, p.violations);
    EXPECT_EQ(s.found_new_vulnerability, p.found_new_vulnerability);
    EXPECT_EQ(s.finding, p.finding);
    ASSERT_EQ(s.probes.size(), p.probes.size());
    for (std::size_t i = 0; i < s.probes.size(); ++i) {
      EXPECT_EQ(s.probes[i].content_len, p.probes[i].content_len) << k << ":" << i;
      EXPECT_EQ(s.probes[i].body_len, p.probes[i].body_len) << k << ":" << i;
      EXPECT_EQ(s.probes[i].buffer_size, p.probes[i].buffer_size) << k << ":" << i;
      EXPECT_EQ(s.probes[i].bytes_read, p.probes[i].bytes_read) << k << ":" << i;
      EXPECT_EQ(s.probes[i].predicate_violated, p.probes[i].predicate_violated);
      EXPECT_EQ(s.probes[i].rejected, p.probes[i].rejected);
      EXPECT_EQ(s.probes[i].note, p.probes[i].note) << k << ":" << i;
    }
  }
}

}  // namespace
}  // namespace dfsm
