// SnapshotCell: the RCU-style publication primitive under the corpus
// service. Single-threaded semantics (version monotonicity, pinning of
// old versions) plus a reader/writer hammer that checks every acquired
// snapshot is internally consistent and versions never run backwards.
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/snapshot_cell.h"

namespace dfsm::runtime {
namespace {

TEST(SnapshotCell, DefaultConstructedIsEmptyVersionZero) {
  SnapshotCell<int> cell;
  EXPECT_EQ(cell.acquire(), nullptr);
  EXPECT_EQ(cell.version(), 0u);
}

TEST(SnapshotCell, InitialSnapshotIsVersionOne) {
  SnapshotCell<int> cell{std::make_shared<const int>(42)};
  const auto p = cell.acquire();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 42);
  EXPECT_EQ(cell.version(), 1u);
}

TEST(SnapshotCell, PublishBumpsVersionAndSwapsPointer) {
  SnapshotCell<int> cell{std::make_shared<const int>(1)};
  cell.publish(std::make_shared<const int>(2));
  EXPECT_EQ(*cell.acquire(), 2);
  EXPECT_EQ(cell.version(), 2u);
  cell.publish(nullptr);  // an "empty" publication is legal
  EXPECT_EQ(cell.acquire(), nullptr);
  EXPECT_EQ(cell.version(), 3u);
}

TEST(SnapshotCell, OldVersionStaysAliveWhilePinned) {
  SnapshotCell<std::vector<int>> cell{
      std::make_shared<const std::vector<int>>(3, 7)};
  const auto old = cell.acquire();
  cell.publish(std::make_shared<const std::vector<int>>(5, 9));
  // The pinned snapshot is untouched by the newer publication.
  ASSERT_EQ(old->size(), 3u);
  EXPECT_EQ(old->front(), 7);
  EXPECT_EQ(cell.acquire()->size(), 5u);
}

// A snapshot whose invariant (a == b) only holds if readers never see a
// torn or mutated-in-place version.
struct Pair {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

TEST(SnapshotCell, ConcurrentReadersSeeOnlyConsistentVersions) {
  SnapshotCell<Pair> cell{std::make_shared<const Pair>(Pair{0, 0})};
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> violations{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      std::uint64_t last_a = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t v = cell.version();
        const auto snap = cell.acquire();
        if (snap->a != snap->b) violations.fetch_add(1);
        if (snap->a < last_a) violations.fetch_add(1);  // publishes ordered
        if (v < last_version) violations.fetch_add(1);  // version monotone
        // version() read before acquire() can lag the acquired snapshot
        // by in-flight publishes but never exceeds the counter now.
        if (v > cell.version()) violations.fetch_add(1);
        last_version = v;
        last_a = snap->a;
      }
    });
  }

  std::thread writer{[&] {
    for (std::uint64_t i = 1; i <= 20000; ++i) {
      cell.publish(std::make_shared<const Pair>(Pair{i, i}));
    }
    stop.store(true, std::memory_order_relaxed);
  }};

  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(cell.version(), 20001u);
  EXPECT_EQ(cell.acquire()->a, 20000u);
}

}  // namespace
}  // namespace dfsm::runtime
