// Unit tests for the parallel analysis runtime: the pool itself, the
// deterministic skeletons, exception propagation, serial fallback, and
// nested-submit safety.
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dfsm::runtime {
namespace {

TEST(StaticBlocks, CoversRangeExactlyOnceInOrder) {
  for (std::size_t n : {0u, 1u, 2u, 7u, 64u, 5925u}) {
    for (std::size_t shards : {1u, 2u, 3u, 8u, 64u, 10000u}) {
      const auto blocks = static_blocks(n, shards);
      std::size_t expect_begin = 0;
      for (const auto& b : blocks) {
        EXPECT_EQ(b.begin, expect_begin);
        EXPECT_LT(b.begin, b.end);
        expect_begin = b.end;
      }
      EXPECT_EQ(expect_begin, n);
      if (n > 0) {
        EXPECT_EQ(blocks.size(), std::min(n, shards));
        // Near-equal: sizes differ by at most one.
        std::size_t lo = n, hi = 0;
        for (const auto& b : blocks) {
          lo = std::min(lo, b.end - b.begin);
          hi = std::max(hi, b.end - b.begin);
        }
        EXPECT_LE(hi - lo, 1u);
      }
    }
  }
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (std::size_t threads : {0u, 1u, 2u, 4u}) {
    ThreadPool pool{threads};
    constexpr std::size_t kN = 257;
    std::vector<std::atomic<int>> hits(kN);
    pool.run_indexed(kN, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, SerialFallbackSpawnsNoWorkers) {
  EXPECT_EQ(ThreadPool{0}.workers(), 0u);
  EXPECT_EQ(ThreadPool{1}.workers(), 0u);
  EXPECT_EQ(ThreadPool{0}.parallelism(), 1u);
  EXPECT_EQ(ThreadPool{4}.workers(), 4u);
}

TEST(ThreadPool, LowestIndexExceptionWinsAtAnyThreadCount) {
  for (std::size_t threads : {0u, 4u}) {
    ThreadPool pool{threads};
    std::atomic<int> ran{0};
    try {
      pool.run_indexed(16, [&](std::size_t i) {
        ++ran;
        if (i == 3 || i == 11) {
          throw std::runtime_error{"block " + std::to_string(i)};
        }
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "block 3");
    }
    // Every block still ran — a throwing block never cancels its peers.
    EXPECT_EQ(ran.load(), 16);
  }
}

TEST(ThreadPool, NestedSubmitRunsInlineAndCompletes) {
  ThreadPool pool{4};
  std::atomic<int> inner_total{0};
  pool.run_indexed(8, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::on_worker_thread());
    // A nested submission must not deadlock: it runs inline.
    pool.run_indexed(8, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvOverride) {
  const char* saved = std::getenv("DFSM_THREADS");
  const std::string saved_value = saved ? saved : "";

  setenv("DFSM_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  setenv("DFSM_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 0u);
  setenv("DFSM_THREADS", "banana", 1);
  EXPECT_THROW((void)ThreadPool::default_threads(), std::invalid_argument);
  unsetenv("DFSM_THREADS");
  EXPECT_GE(ThreadPool::default_threads(), 1u);

  if (saved) setenv("DFSM_THREADS", saved_value.c_str(), 1);
}

TEST(Parallel, ForVisitsEveryElementOnce) {
  ThreadPool pool{4};
  constexpr std::size_t kN = 1000;
  std::vector<int> hits(kN, 0);
  parallel_for(
      kN,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
      },
      pool);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(Parallel, ReduceMergesInBlockOrder) {
  // A non-commutative merge (string concatenation) only matches the
  // serial result if partials merge in ascending block order.
  const std::size_t kN = 26;
  std::string serial;
  for (std::size_t i = 0; i < kN; ++i) serial += static_cast<char>('a' + i);

  for (std::size_t threads : {0u, 2u, 3u, 7u}) {
    ThreadPool pool{threads};
    const std::string parallel = parallel_reduce(
        kN, std::string{},
        [](std::size_t begin, std::size_t end) {
          std::string s;
          for (std::size_t i = begin; i < end; ++i)
            s += static_cast<char>('a' + i);
          return s;
        },
        [](std::string& acc, std::string&& part) { acc += part; }, pool);
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(Parallel, MapPreservesIndexOrder) {
  ThreadPool pool{4};
  const auto out = parallel_map<std::size_t>(
      1000, [](std::size_t i) { return i * i; }, pool);
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolCollect, OkRunWithNoErrors) {
  ThreadPool pool{4};
  std::atomic<int> hits{0};
  const auto errs =
      pool.run_indexed_collect(100, [&](std::size_t) { ++hits; });
  EXPECT_TRUE(errs.ok());
  EXPECT_EQ(errs.cancelled, 0u);
  EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPoolCollect, RunAllCollectsEveryErrorInIndexOrder) {
  for (std::size_t threads : {0u, 1u, 4u}) {
    ThreadPool pool{threads};
    const auto errs = pool.run_indexed_collect(
        20,
        [](std::size_t i) {
          if (i % 5 == 0) throw std::runtime_error("boom " + std::to_string(i));
        },
        CancelPolicy::kRunAll);
    ASSERT_EQ(errs.errors.size(), 4u) << "threads=" << threads;
    EXPECT_EQ(errs.cancelled, 0u);
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(errs.errors[k].index, k * 5);
      try {
        std::rethrow_exception(errs.errors[k].error);
      } catch (const std::runtime_error& e) {
        EXPECT_EQ(std::string(e.what()), "boom " + std::to_string(k * 5));
      }
    }
  }
}

TEST(ThreadPoolCollect, CancelAfterErrorKeepsExactlyLowestFailure) {
  for (std::size_t threads : {0u, 1u, 4u}) {
    ThreadPool pool{threads};
    std::atomic<int> low_ran{0};
    const auto errs = pool.run_indexed_collect(
        200,
        [&](std::size_t i) {
          if (i < 7) ++low_ran;
          if (i == 7) throw std::logic_error("first failure");
          if (i == 150) throw std::logic_error("late failure");
        },
        CancelPolicy::kCancelAfterError);
    ASSERT_EQ(errs.errors.size(), 1u) << "threads=" << threads;
    EXPECT_EQ(errs.errors[0].index, 7u);
    // Indices below the lowest thrower always run, cancelled or not.
    EXPECT_EQ(low_ran.load(), 7);
    try {
      std::rethrow_exception(errs.errors[0].error);
    } catch (const std::logic_error& e) {
      EXPECT_EQ(std::string(e.what()), "first failure");
    }
  }
}

TEST(ThreadPoolCollect, ZeroTasksIsClean) {
  ThreadPool pool{2};
  const auto errs = pool.run_indexed_collect(0, [](std::size_t) {});
  EXPECT_TRUE(errs.ok());
  EXPECT_EQ(errs.cancelled, 0u);
}

TEST(Parallel, ForCollectQuarantinesFailingBlocks) {
  ThreadPool pool{4};
  const auto errs = parallel_for_collect(
      100,
      [](std::size_t begin, std::size_t) {
        if (begin == 0) throw std::runtime_error("block zero");
      },
      CancelPolicy::kRunAll, pool);
  ASSERT_EQ(errs.errors.size(), 1u);
  EXPECT_EQ(errs.errors[0].index, 0u);
}

TEST(Parallel, ZeroElementsIsANoop) {
  ThreadPool pool{4};
  bool ran = false;
  parallel_for(0, [&](std::size_t, std::size_t) { ran = true; }, pool);
  EXPECT_FALSE(ran);
  EXPECT_EQ(parallel_reduce(
                0, std::size_t{42},
                [](std::size_t, std::size_t) { return std::size_t{1}; },
                [](std::size_t& a, std::size_t b) { a += b; }, pool),
            42u);
}

}  // namespace
}  // namespace dfsm::runtime
