// SharedLruStore: the generic bounded, thread-safe LRU map under the
// sweep memo store and the hidden-path scan store.
#include "runtime/shared_store.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace dfsm::runtime {
namespace {

using Store = SharedLruStore<int, std::string>;

TEST(SharedStore, GetReturnsWhatPutStored) {
  Store s;
  EXPECT_FALSE(s.get(1).has_value());
  s.put(1, "one");
  const auto v = s.get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "one");
  EXPECT_EQ(s.size(), 1u);
}

TEST(SharedStore, PutOverwritesInPlace) {
  Store s;
  s.put(1, "one");
  s.put(1, "uno");
  EXPECT_EQ(*s.get(1), "uno");
  EXPECT_EQ(s.size(), 1u);
}

TEST(SharedStore, UnboundedStoreNeverEvicts) {
  Store s;  // max_entries == 0
  for (int i = 0; i < 1000; ++i) s.put(i, "v");
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_EQ(s.stats().evictions, 0u);
  EXPECT_EQ(s.max_entries(), 0u);
}

TEST(SharedStore, BudgetEvictsLeastRecentlyUsedFirst) {
  Store s{3};
  s.put(1, "a");
  s.put(2, "b");
  s.put(3, "c");
  s.put(4, "d");  // evicts 1 (the LRU entry)
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.get(1).has_value());
  EXPECT_TRUE(s.get(2).has_value());
  EXPECT_EQ(s.stats().evictions, 1u);
}

TEST(SharedStore, GetRefreshesRecency) {
  Store s{2};
  s.put(1, "a");
  s.put(2, "b");
  ASSERT_TRUE(s.get(1).has_value());  // 1 becomes MRU
  s.put(3, "c");                      // evicts 2, not 1
  EXPECT_TRUE(s.get(1).has_value());
  EXPECT_FALSE(s.get(2).has_value());
}

TEST(SharedStore, PutOverwriteRefreshesRecency) {
  Store s{2};
  s.put(1, "a");
  s.put(2, "b");
  s.put(1, "a2");  // overwrite: 1 becomes MRU
  s.put(3, "c");   // evicts 2
  EXPECT_TRUE(s.get(1).has_value());
  EXPECT_FALSE(s.get(2).has_value());
}

TEST(SharedStore, EvictionOrderIsDeterministicInsertionOrder) {
  // Same operation sequence -> same eviction sequence, observable via
  // keys_by_recency: MRU first.
  Store s{4};
  for (int i = 0; i < 8; ++i) s.put(i, "v");
  EXPECT_EQ(s.keys_by_recency(), (std::vector<int>{7, 6, 5, 4}));
}

TEST(SharedStore, EraseAndClear) {
  Store s;
  s.put(1, "a");
  s.put(2, "b");
  EXPECT_TRUE(s.erase(1));
  EXPECT_FALSE(s.erase(1));
  EXPECT_EQ(s.size(), 1u);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.get(2).has_value());
}

TEST(SharedStore, EraseIfOnlyErasesWhenThePredicateHolds) {
  Store s;
  s.put(1, "stale");
  EXPECT_FALSE(
      s.erase_if(1, [](const std::string& v) { return v == "fresh"; }));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(
      s.erase_if(1, [](const std::string& v) { return v == "stale"; }));
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.erase_if(1, [](const std::string&) { return true; }));
}

TEST(SharedStore, EraseIfRevalidatesAgainstAConcurrentRefresh) {
  // The check-then-act pattern erase_if exists for: a value observed
  // stale via get can be refreshed by another thread before the erase
  // lands. The predicate re-runs on the CURRENT value under the lock,
  // so the fresh re-insert survives.
  Store s;
  s.put(1, "stale");
  const auto seen = s.get(1);
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, "stale");
  s.put(1, "fresh");  // a concurrent writer wins the race
  EXPECT_FALSE(
      s.erase_if(1, [](const std::string& v) { return v == "stale"; }));
  EXPECT_EQ(*s.get(1), "fresh");
}

TEST(SharedStore, StatsCountHitsAndMisses) {
  Store s;
  s.put(1, "a");
  (void)s.get(1);
  (void)s.get(1);
  (void)s.get(2);
  const auto st = s.stats();
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.misses, 1u);
}

TEST(SharedStore, ConcurrentMixedUseKeepsEveryInsertedValueReadable) {
  // Thread-safety smoke (TSan hunts the races): concurrent put/get on
  // an unbounded store must lose nothing.
  Store s;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&s, w] {
      for (int i = 0; i < 250; ++i) {
        const int key = w * 1000 + i;
        s.put(key, std::to_string(key));
        const auto v = s.get(key);
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, std::to_string(key));
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(s.size(), 1000u);
}

}  // namespace
}  // namespace dfsm::runtime
