// SweepMemoStore: keying, fingerprint invalidation, bounds/eviction, and
// the collision-cannot-alias contract.
#include "analysis/sweep_memo.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/shared_store.h"

namespace dfsm::analysis {
namespace {

MemoEntry entry_with(std::uint64_t fp, bool exploited) {
  MemoEntry e;
  e.op_fingerprint = fp;
  e.exploit.exploited = exploited;
  e.exploit.detail = exploited ? "Mcode ran" : "foiled";
  e.benign.service_ok = true;
  e.exploit_blocks = !exploited;
  return e;
}

TEST(SweepMemo, LookupMissesThenHitsAfterInsert) {
  SweepMemoStore store;
  const MemoKey key{"study-a", 0, 3};
  EXPECT_FALSE(store.lookup(key, 42).has_value());
  store.insert(key, entry_with(42, /*exploited=*/false));
  const auto hit = store.lookup(key, 42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->exploit.exploited);
  EXPECT_TRUE(hit->exploit_blocks);
  const auto stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.invalidated, 0u);
}

TEST(SweepMemo, FingerprintMismatchInvalidatesExactlyThatEntry) {
  SweepMemoStore store;
  store.insert({"study-a", 0, 1}, entry_with(100, false));
  store.insert({"study-a", 1, 1}, entry_with(200, true));

  // Operation 0's pFSM set "changed": its fingerprint is now 101.
  bool invalidated = false;
  EXPECT_FALSE(store.lookup({"study-a", 0, 1}, 101, &invalidated).has_value());
  EXPECT_TRUE(invalidated);
  EXPECT_EQ(store.size(), 1u);  // the stale entry is gone

  // The neighbour operation's entry is untouched.
  EXPECT_TRUE(store.lookup({"study-a", 1, 1}, 200).has_value());

  const auto stats = store.stats();
  EXPECT_EQ(stats.invalidated, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(SweepMemo, InvalidatedLookupDoesNotResurrect) {
  SweepMemoStore store;
  store.insert({"s", 2, 5}, entry_with(7, true));
  EXPECT_FALSE(store.lookup({"s", 2, 5}, 8).has_value());  // invalidates
  // Even the ORIGINAL fingerprint now misses: the entry was dropped, not
  // hidden.
  bool invalidated = true;
  EXPECT_FALSE(store.lookup({"s", 2, 5}, 7, &invalidated).has_value());
  EXPECT_FALSE(invalidated);
}

TEST(SweepMemo, KeysDifferingInAnyFieldAreDistinctEntries) {
  SweepMemoStore store;
  store.insert({"s", 0, 1}, entry_with(1, false));
  store.insert({"s", 0, 2}, entry_with(1, true));
  store.insert({"s", 1, 1}, entry_with(1, true));
  store.insert({"t", 0, 1}, entry_with(1, true));
  store.insert({"s", kBaselineOperation, 0}, entry_with(0, true));
  EXPECT_EQ(store.size(), 5u);
  const auto e = store.lookup({"s", 0, 1}, 1);
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(e->exploit.exploited);  // not aliased by any neighbour
}

TEST(SweepMemo, HashCollisionsCannotAliasEntriesByConstruction) {
  // The store compares FULL keys; the hash only buckets. Force every key
  // into one bucket with a degenerate hash and verify entries stay
  // distinct — the property that makes a fingerprint/hash collision
  // across operations harmless by construction.
  struct CollidingHash {
    std::size_t operator()(const MemoKey&) const noexcept { return 17; }
  };
  runtime::SharedLruStore<MemoKey, int, CollidingHash> store;
  store.put({"s", 0, 1}, 10);
  store.put({"s", 0, 2}, 20);
  store.put({"t", 0, 1}, 30);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(*store.get({"s", 0, 1}), 10);
  EXPECT_EQ(*store.get({"s", 0, 2}), 20);
  EXPECT_EQ(*store.get({"t", 0, 1}), 30);
}

TEST(SweepMemo, EntryBudgetEvictsDeterministically) {
  SweepMemoStore store{2};
  store.insert({"s", 0, 1}, entry_with(1, false));
  store.insert({"s", 0, 2}, entry_with(1, false));
  store.insert({"s", 0, 3}, entry_with(1, false));  // evicts (s,0,1)
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_EQ(store.stats().max_entries, 2u);
  EXPECT_FALSE(store.lookup({"s", 0, 1}, 1).has_value());
  EXPECT_TRUE(store.lookup({"s", 0, 2}, 1).has_value());

  // Recency order is the eviction order read backwards and is a pure
  // function of the operation sequence.
  const auto keys = store.keys_by_recency();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], (MemoKey{"s", 0, 2}));  // refreshed by the lookup
  EXPECT_EQ(keys[1], (MemoKey{"s", 0, 3}));
}

TEST(SweepMemo, ClearEmptiesTheStore) {
  SweepMemoStore store;
  store.insert({"s", 0, 1}, entry_with(1, false));
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.lookup({"s", 0, 1}, 1).has_value());
}

}  // namespace
}  // namespace dfsm::analysis
