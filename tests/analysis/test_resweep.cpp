// Incremental re-analysis (resweep / sweep_summary), the shared memo
// store under full sweeps, and the secured-study reference wrapper.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "analysis/chain_analyzer.h"
#include "analysis/sweep_memo.h"
#include "apps/case_study.h"
#include "apps/secured.h"
#include "apps/synthetic.h"

namespace dfsm::analysis {
namespace {

std::set<std::size_t> operation_ids(const apps::CaseStudy& study) {
  std::set<std::size_t> ops;
  for (const auto& c : study.checks()) ops.insert(c.operation_index);
  return ops;
}

std::uint64_t exploited_rows(const LemmaReport& r) {
  std::uint64_t n = 0;
  for (const auto& row : r.results) n += row.exploit.exploited ? 1 : 0;
  return n;
}

std::uint64_t benign_broken_rows(const LemmaReport& r) {
  std::uint64_t n = 0;
  for (const auto& row : r.results) n += row.benign.service_ok ? 0 : 1;
  return n;
}

SweepOptions direct_options() {
  SweepOptions o;
  o.mode = SweepMode::kDirect;
  return o;
}

apps::SyntheticStudyConfig small_synthetic() {
  apps::SyntheticStudyConfig cfg;
  cfg.operations = 3;
  cfg.checks_per_operation = 2;
  cfg.work = 16;
  return cfg;
}

// --- resweep ------------------------------------------------------------

TEST(Resweep, EmptyDeltaReproducesTheBaselineOnEveryCaseStudy) {
  for (const auto& study : apps::all_case_studies()) {
    const LemmaReport baseline = sweep(*study);
    const LemmaReport re = resweep(*study, baseline, {});
    EXPECT_TRUE(reports_equivalent(baseline, re)) << study->name();
    EXPECT_EQ(re.exploit_evaluations, 0u) << study->name();
    EXPECT_EQ(re.benign_evaluations, 0u) << study->name();
  }
}

TEST(Resweep, AllOperationsChangedEqualsTheDirectSweepOnEveryCaseStudy) {
  // delta == full: every operation re-evaluated. Must be byte-equivalent
  // to both engines run from scratch.
  for (const auto& study : apps::all_case_studies()) {
    const LemmaReport baseline = sweep(*study);
    SweepDelta delta;
    for (const std::size_t op : operation_ids(*study)) {
      delta.changed_operations.push_back(op);
    }
    const LemmaReport re = resweep(*study, baseline, delta);
    EXPECT_TRUE(reports_equivalent(re, sweep(*study, direct_options())))
        << study->name();
    EXPECT_TRUE(reports_equivalent(re, baseline)) << study->name();
  }
}

TEST(Resweep, SecuredDeltaEqualsSweepingTheSecuredStudyOnEveryCaseStudy) {
  // The tentpole contract: one baseline sweep + k compositions == k full
  // sweeps of the k secured variants, against BOTH reference engines.
  for (const auto& study : apps::all_case_studies()) {
    const LemmaReport baseline = sweep(*study);
    for (const std::size_t op : operation_ids(*study)) {
      SweepDelta delta;
      delta.secured_operations = {op};
      const LemmaReport re = resweep(*study, baseline, delta);
      EXPECT_EQ(re.exploit_evaluations, 0u);

      const auto secured = apps::make_secured_study(*study, {op});
      EXPECT_TRUE(reports_equivalent(re, sweep(*secured)))
          << study->name() << " op " << op;
      EXPECT_TRUE(reports_equivalent(re, sweep(*secured, direct_options())))
          << study->name() << " op " << op;
    }
  }
}

TEST(Resweep, SecuredPairDeltaMatchesTheSecuredStudy) {
  const auto study = apps::make_synthetic_wide_study(small_synthetic());
  const LemmaReport baseline = sweep(*study);
  SweepDelta delta;
  delta.secured_operations = {0, 2};
  const LemmaReport re = resweep(*study, baseline, delta);
  const auto secured = apps::make_secured_study(*study, {0, 2});
  EXPECT_TRUE(reports_equivalent(re, sweep(*secured)));
}

TEST(Resweep, ChangedOperationReEvaluatesOnlyItsOwnCells) {
  const auto study = apps::make_synthetic_wide_study(small_synthetic());
  const LemmaReport baseline = sweep(*study);
  SweepDelta delta;
  delta.changed_operations = {1};
  const LemmaReport re = resweep(*study, baseline, delta);
  // Operation 1 has 2 checks: 2^2 - 1 = 3 non-empty sub-masks.
  EXPECT_EQ(re.exploit_evaluations, 3u);
  EXPECT_EQ(re.benign_evaluations, 3u);
  EXPECT_TRUE(reports_equivalent(re, baseline));
}

TEST(Resweep, RejectsBaselineFromAnotherStudy) {
  const auto studies = apps::all_case_studies();
  const LemmaReport other = sweep(*studies[0]);
  EXPECT_THROW((void)resweep(*studies[1], other, {}), std::invalid_argument);
}

TEST(Resweep, RejectsSampledBaseline) {
  const auto study = apps::make_synthetic_wide_study(small_synthetic());
  SweepOptions sampled;
  sampled.max_masks = 4;
  const LemmaReport baseline = sweep(*study, sampled);
  ASSERT_TRUE(baseline.sampled);
  EXPECT_THROW((void)resweep(*study, baseline, {}), std::invalid_argument);
}

TEST(Resweep, RejectsBaselineWithAMismatchedCheckLayout) {
  // A baseline recorded by an older build of the same study (same name,
  // same k, different check layout) must be rejected, not silently
  // recomposed into a wrong report.
  const auto study = apps::make_synthetic_wide_study(small_synthetic());
  LemmaReport stale = sweep(*study);
  ASSERT_GE(stale.checks.size(), 2u);
  std::swap(stale.checks[0], stale.checks[1]);
  EXPECT_THROW((void)resweep(*study, stale, {}), std::invalid_argument);
}

TEST(Resweep, RejectsUnknownOperations) {
  const auto study = apps::make_synthetic_wide_study(small_synthetic());
  const LemmaReport baseline = sweep(*study);
  SweepDelta bad_changed;
  bad_changed.changed_operations = {99};
  EXPECT_THROW((void)resweep(*study, baseline, bad_changed),
               std::invalid_argument);
  SweepDelta bad_secured;
  bad_secured.secured_operations = {99};
  EXPECT_THROW((void)resweep(*study, baseline, bad_secured),
               std::invalid_argument);
}

// --- the shared store under full sweeps ---------------------------------

TEST(SharedSweepStore, SecondSweepIsServedEntirelyFromTheStore) {
  SweepMemoStore store;
  SweepOptions opts;
  opts.memo = &store;
  for (const auto& study : apps::all_case_studies()) {
    const LemmaReport first = sweep(*study, opts);
    EXPECT_EQ(first.memo_hits, 0u) << study->name();
    EXPECT_EQ(first.memo_misses,
              first.exploit_evaluations) << study->name();

    const LemmaReport second = sweep(*study, opts);
    EXPECT_TRUE(reports_equivalent(first, second)) << study->name();
    EXPECT_EQ(second.exploit_evaluations, 0u) << study->name();
    EXPECT_EQ(second.benign_evaluations, 0u) << study->name();
    EXPECT_EQ(second.memo_misses, 0u) << study->name();
    EXPECT_EQ(second.memo_hits, first.memo_misses) << study->name();
  }
}

TEST(SharedSweepStore, StoreBackedSweepMatchesTheDirectEngine) {
  SweepMemoStore store;
  SweepOptions opts;
  opts.memo = &store;
  for (const auto& study : apps::all_case_studies()) {
    (void)sweep(*study, opts);                        // populate
    const LemmaReport recalled = sweep(*study, opts); // all hits
    EXPECT_TRUE(
        reports_equivalent(recalled, sweep(*study, direct_options())))
        << study->name();
  }
}

TEST(SharedSweepStore, SampledThenExhaustiveEscalationSharesTheFill) {
  // The escalation pattern the store exists for: a sampled scout sweep
  // fills the per-operation cells; the exhaustive confirmation re-uses
  // every one of them (cells depend on sub-masks, not on which rows get
  // composed).
  const auto study = apps::make_synthetic_wide_study(small_synthetic());
  SweepMemoStore store;
  SweepOptions scout;
  scout.memo = &store;
  scout.max_masks = 8;
  const LemmaReport sampled = sweep(*study, scout);
  ASSERT_TRUE(sampled.sampled);

  SweepOptions full;
  full.memo = &store;
  const LemmaReport exhaustive = sweep(*study, full);
  EXPECT_EQ(exhaustive.exploit_evaluations, 0u);
  EXPECT_EQ(exhaustive.memo_misses, 0u);
  EXPECT_TRUE(
      reports_equivalent(exhaustive, sweep(*study, direct_options())));
}

TEST(SharedSweepStore, StaleFingerprintEntryIsInvalidatedAndRefilled) {
  const auto study = apps::make_synthetic_wide_study(small_synthetic());
  SweepMemoStore store;
  SweepOptions opts;
  opts.memo = &store;
  const LemmaReport first = sweep(*study, opts);

  // Simulate a changed operation: overwrite one cell with a wrong
  // fingerprint, as if it had been written by an older pFSM set.
  const std::size_t op = study->checks()[0].operation_index;
  MemoEntry stale;
  stale.op_fingerprint = 0xdeadbeef;
  stale.exploit.exploited = true;
  store.insert({study->name(), op, 1}, stale);

  const LemmaReport second = sweep(*study, opts);
  EXPECT_EQ(second.entries_invalidated, 1u);
  EXPECT_EQ(second.memo_misses, 1u);
  EXPECT_EQ(second.exploit_evaluations, 1u);  // only the dropped cell
  EXPECT_TRUE(reports_equivalent(first, second));
}

TEST(SharedSweepStore, ChangedPlusSecuredDeltaKeysItsCellsUnderTheBaseFamily) {
  // Regression: a resweep delta with BOTH changed and secured operations
  // evaluates its cells against the BASE study (securing happens at
  // composition time), so the memo must serve and insert them under the
  // base family name — keying them under the secured variant would poison
  // a later memoized sweep of make_secured_study with unpinned cells.
  const auto study = apps::make_synthetic_wide_study(small_synthetic());
  const LemmaReport baseline = sweep(*study);

  SweepMemoStore store;
  SweepOptions opts;
  opts.memo = &store;
  SweepDelta delta;
  delta.changed_operations = {1};
  delta.secured_operations = {0};
  const LemmaReport re = resweep(*study, baseline, delta, opts);

  EXPECT_GT(store.size(), 0u);
  for (const auto& key : store.keys_by_recency()) {
    EXPECT_EQ(key.study, study->name());
  }

  const auto secured = apps::make_secured_study(*study, {0});
  EXPECT_EQ(re.study_name, secured->name());
  EXPECT_TRUE(reports_equivalent(re, sweep(*secured, direct_options())));

  // The secured family was never written: its memoized sweep fills from
  // scratch (zero cross-family hits) and still matches the direct engine.
  const LemmaReport secured_memo = sweep(*secured, opts);
  EXPECT_EQ(secured_memo.memo_hits, 0u);
  EXPECT_TRUE(
      reports_equivalent(secured_memo, sweep(*secured, direct_options())));

  // And the base family's cells round-trip: a memoized base sweep is
  // served entirely from what the resweep stored.
  const LemmaReport base_memo = sweep(*study, opts);
  EXPECT_TRUE(reports_equivalent(base_memo, baseline));
}

TEST(SharedSweepStore, SweepAllSharesOneStoreAcrossTheRegistry) {
  SweepMemoStore store;
  SweepOptions opts;
  opts.memo = &store;
  const auto first = sweep_all(opts);
  const auto second = sweep_all(opts);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(reports_equivalent(first[i], second[i]));
    EXPECT_EQ(second[i].exploit_evaluations, 0u) << first[i].study_name;
  }
}

// --- sweep_summary ------------------------------------------------------

TEST(SweepSummaryTest, MatchesRowAggregatesOnEveryCaseStudy) {
  for (const auto& study : apps::all_case_studies()) {
    const LemmaReport report = sweep(*study);
    const SweepSummary summary = sweep_summary(*study);
    EXPECT_EQ(summary.study_name, report.study_name);
    EXPECT_EQ(summary.total_masks, report.total_masks);
    EXPECT_EQ(summary.exploited_masks, exploited_rows(report))
        << study->name();
    EXPECT_EQ(summary.benign_broken_masks, benign_broken_rows(report))
        << study->name();
    EXPECT_EQ(summary.baseline_exploited, report.baseline_exploited);
    EXPECT_EQ(summary.all_checks_foil, report.all_checks_foil);
    EXPECT_EQ(summary.lemma2_holds, report.lemma2_holds);
  }
}

TEST(SweepSummaryTest, SecuredSummaryMatchesTheSecuredStudyRowsEverywhere) {
  for (const auto& study : apps::all_case_studies()) {
    for (const std::size_t op : operation_ids(*study)) {
      SweepDelta delta;
      delta.secured_operations = {op};
      const SweepSummary summary = sweep_summary(*study, delta);
      const auto secured = apps::make_secured_study(*study, {op});
      const LemmaReport report = sweep(*secured);
      EXPECT_EQ(summary.study_name, report.study_name);
      EXPECT_EQ(summary.exploited_masks, exploited_rows(report))
          << study->name() << " op " << op;
      EXPECT_EQ(summary.benign_broken_masks, benign_broken_rows(report))
          << study->name() << " op " << op;
      EXPECT_EQ(summary.baseline_exploited, report.baseline_exploited);
      EXPECT_EQ(summary.all_checks_foil, report.all_checks_foil);
      EXPECT_EQ(summary.lemma2_holds, report.lemma2_holds);
    }
  }
}

TEST(SweepSummaryTest, SyntheticWideStudyMatchesRowAggregates) {
  const auto study = apps::make_synthetic_wide_study(small_synthetic());
  const LemmaReport report = sweep(*study);
  const SweepSummary summary = sweep_summary(*study);
  EXPECT_EQ(summary.exploited_masks, exploited_rows(report));
  EXPECT_EQ(summary.benign_broken_masks, benign_broken_rows(report));
  EXPECT_EQ(summary.lemma2_holds, report.lemma2_holds);
}

TEST(SweepSummaryTest, StoreMakesRepeatSummariesFree) {
  const auto study = apps::make_synthetic_wide_study(small_synthetic());
  SweepMemoStore store;
  SweepOptions opts;
  opts.memo = &store;
  const SweepSummary first = sweep_summary(*study, {}, opts);
  EXPECT_GT(first.exploit_evaluations, 0u);
  // Every candidate after the fill costs zero study runs.
  for (const std::size_t op : operation_ids(*study)) {
    SweepDelta delta;
    delta.secured_operations = {op};
    const SweepSummary s = sweep_summary(*study, delta, opts);
    EXPECT_EQ(s.exploit_evaluations, 0u) << "op " << op;
    EXPECT_EQ(s.memo_misses, 0u) << "op " << op;
  }
}

TEST(SweepSummaryTest, RejectsUnknownSecuredOperation) {
  const auto study = apps::make_synthetic_wide_study(small_synthetic());
  SweepDelta delta;
  delta.secured_operations = {99};
  EXPECT_THROW((void)sweep_summary(*study, delta), std::invalid_argument);
}

// --- the secured-study wrapper ------------------------------------------

TEST(SecuredStudy, PinsTheOperationsChecksInEveryRun) {
  const auto base = apps::make_synthetic_wide_study(small_synthetic());
  const auto secured = apps::make_secured_study(*base, {1});
  const std::size_t k = base->checks().size();

  // Secured mask m behaves like base mask m | pin.
  std::vector<bool> all_off(k, false);
  std::vector<bool> pin_only(k, false);
  for (std::size_t i = 0; i < k; ++i) {
    if (base->checks()[i].operation_index == 1) pin_only[i] = true;
  }
  EXPECT_EQ(secured->run_exploit(all_off), base->run_exploit(pin_only));
  EXPECT_EQ(secured->run_benign(all_off), base->run_benign(pin_only));
}

TEST(SecuredStudy, NameIsCanonicalSortedAndDeduplicated) {
  const auto base = apps::make_synthetic_wide_study(small_synthetic());
  EXPECT_EQ(apps::secured_study_name(*base, {2, 0, 2}),
            base->name() + " [secured: op0 op2]");
  EXPECT_EQ(apps::secured_study_name(*base, {}),
            base->name() + " [secured: none]");
  const auto secured = apps::make_secured_study(*base, {2, 0, 2});
  EXPECT_EQ(secured->name(), apps::secured_study_name(*base, {0, 2}));
}

TEST(SecuredStudy, RejectsOperationsWithoutChecks) {
  const auto base = apps::make_synthetic_wide_study(small_synthetic());
  EXPECT_THROW((void)apps::make_secured_study(*base, {99}),
               std::invalid_argument);
}

TEST(SecuredStudy, KeepsTheBaseCheckVector) {
  const auto base = apps::make_synthetic_wide_study(small_synthetic());
  const auto secured = apps::make_secured_study(*base, {0});
  EXPECT_EQ(secured->checks().size(), base->checks().size());
}

}  // namespace
}  // namespace dfsm::analysis
