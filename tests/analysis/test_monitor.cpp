#include "analysis/monitor.h"

#include <gtest/gtest.h>

#include "apps/ghttpd.h"
#include "apps/iis.h"
#include "apps/nullhttpd.h"
#include "apps/rpcstatd.h"
#include "apps/rwall.h"
#include "apps/sendmail.h"
#include "apps/xterm.h"

namespace dfsm::analysis {
namespace {

TEST(Monitor, BenignSendmailRunProducesNoViolations) {
  RuntimeMonitor monitor{apps::SendmailTTflag::figure3_model()};
  const auto result = monitor.observe(sendmail_observation("7", "3", true));
  EXPECT_TRUE(result.completed());
  EXPECT_FALSE(result.exploited());
  EXPECT_TRUE(monitor.violations().empty());
  EXPECT_GT(monitor.trace().size(), 0u);
}

TEST(Monitor, ExploitRunFlagsEveryViolatedActivity) {
  RuntimeMonitor monitor{apps::SendmailTTflag::figure3_model()};
  // The #3163 exploit facts: str_x > 2^31, GOT tampered by call time.
  const auto result =
      monitor.observe(sendmail_observation("4294958848", "7842561", false));
  EXPECT_TRUE(result.exploited());
  // pFSM1 (type), pFSM2 (range) and pFSM3 (reference) all violated.
  EXPECT_EQ(monitor.violations().size(), 3u);
  EXPECT_NE(monitor.violations()[0].find("pFSM1"), std::string::npos);
  EXPECT_NE(monitor.violations()[2].find("pFSM3"), std::string::npos);
}

TEST(Monitor, ViolationRecordsNameTheOperationAndObject) {
  RuntimeMonitor monitor{apps::SendmailTTflag::figure3_model()};
  (void)monitor.observe(sendmail_observation("4294958848", "1", true));
  ASSERT_FALSE(monitor.violations().empty());
  const auto& v = monitor.violations()[0];
  EXPECT_NE(v.find("Write debug level"), std::string::npos);
  EXPECT_NE(v.find("long_x"), std::string::npos);
}

TEST(Monitor, NullHttpdObservationMatchesTheExploitNarrative) {
  RuntimeMonitor monitor{apps::NullHttpd::figure4_model()};
  // #5774 facts: contentLen=-800, 256 bytes into a 224-byte buffer,
  // links corrupted, GOT corrupted.
  const auto result = monitor.observe(
      nullhttpd_observation(-800, 256, 224, false, false));
  EXPECT_TRUE(result.exploited());
  EXPECT_EQ(monitor.violations().size(), 4u);
}

TEST(Monitor, SecuredActivityShowsUpAsFoiledNotViolated) {
  RuntimeMonitor monitor{apps::NullHttpd::figure4_model()};
  // #6255 facts: contentLen valid (pFSM1 passes), everything else bad.
  const auto result = monitor.observe(
      nullhttpd_observation(0, 1056, 1024, false, false));
  EXPECT_TRUE(result.exploited());
  EXPECT_EQ(monitor.violations().size(), 3u);  // pFSM1 took SPEC_ACPT
}

TEST(Monitor, TraceAccumulatesAcrossObservations) {
  RuntimeMonitor monitor{apps::SendmailTTflag::figure3_model()};
  (void)monitor.observe(sendmail_observation("7", "3", true));
  const auto size_after_first = monitor.trace().size();
  (void)monitor.observe(sendmail_observation("8", "2", true));
  EXPECT_GT(monitor.trace().size(), size_after_first);
}

TEST(Monitor, ResetClearsState) {
  RuntimeMonitor monitor{apps::SendmailTTflag::figure3_model()};
  (void)monitor.observe(sendmail_observation("4294958848", "1", false));
  monitor.reset();
  EXPECT_TRUE(monitor.violations().empty());
  EXPECT_TRUE(monitor.trace().empty());
}

TEST(Monitor, ViolationsOnlyModeStillDetects) {
  // The load generator disables trace recording; the verdicts must be
  // identical to a tracing monitor's, with no trace accumulated.
  RuntimeMonitor tracing{apps::SendmailTTflag::figure3_model()};
  RuntimeMonitor lean{apps::SendmailTTflag::figure3_model()};
  lean.set_trace_enabled(false);
  EXPECT_FALSE(lean.trace_enabled());
  const auto observation = sendmail_observation("4294958848", "1", false);
  (void)tracing.observe(observation);
  (void)lean.observe(observation);
  EXPECT_EQ(lean.violations(), tracing.violations());
  EXPECT_FALSE(tracing.trace().empty());
  EXPECT_TRUE(lean.trace().empty());
}

TEST(Monitor, ResetRetainsCapacity) {
  // The load generator resets a per-agent monitor once per request;
  // after the first request the vectors must be at steady state, so
  // reset() is contractually a plain clear() — never shrink_to_fit.
  RuntimeMonitor monitor{apps::SendmailTTflag::figure3_model()};
  for (int i = 0; i < 8; ++i) {
    (void)monitor.observe(sendmail_observation("4294958848", "1", false));
    if (i + 1 < 8) monitor.reset();
  }
  const std::size_t trace_capacity = monitor.trace().events().capacity();
  const std::size_t violation_capacity = monitor.violations().capacity();
  ASSERT_GT(trace_capacity, 0u);
  ASSERT_GT(violation_capacity, 0u);
  monitor.reset();
  EXPECT_TRUE(monitor.trace().empty());
  EXPECT_TRUE(monitor.violations().empty());
  EXPECT_EQ(monitor.trace().events().capacity(), trace_capacity);
  EXPECT_EQ(monitor.violations().capacity(), violation_capacity);
}

TEST(Monitor, XtermObservationMatchesTheRaceFacts) {
  RuntimeMonitor monitor{apps::XtermLogger::figure5_model()};
  // The race winner: the file looked fine at check time, but the binding
  // was swapped before the open.
  const auto won = monitor.observe(xterm_observation(true, false, false));
  EXPECT_TRUE(won.exploited());
  EXPECT_EQ(monitor.violations().size(), 1u);  // only pFSM2 (pFSM1 secure)
  monitor.reset();
  // Pre-planted symlink: the SECURE pFSM1 foils it (IMPL_REJ).
  const auto foiled = monitor.observe(xterm_observation(false, true, false));
  EXPECT_FALSE(foiled.exploited());
  EXPECT_TRUE(foiled.foiled_at_operation.has_value());
}

TEST(Monitor, RwallObservationMatchesFigure6) {
  RuntimeMonitor monitor{apps::RwallDaemon::figure6_model()};
  const auto attack = monitor.observe(rwall_observation(false, "file"));
  EXPECT_TRUE(attack.exploited());
  EXPECT_EQ(monitor.violations().size(), 2u);
  monitor.reset();
  const auto benign = monitor.observe(rwall_observation(true, "terminal"));
  EXPECT_FALSE(benign.exploited());
  EXPECT_TRUE(benign.completed());
}

TEST(Monitor, IisObservationSeparatesTheDecodeForms) {
  RuntimeMonitor monitor{apps::IisDecoder::figure7_model()};
  const auto nimda = monitor.observe(iis_observation("..%2fx", "../x"));
  EXPECT_TRUE(nimda.exploited());
  monitor.reset();
  const auto plain = monitor.observe(iis_observation("../x", "../x"));
  EXPECT_FALSE(plain.exploited());  // the shipped check catches this form
}

TEST(Monitor, GhttpdAndStatdObservations) {
  RuntimeMonitor ghttpd{apps::Ghttpd::ghttpd_model()};
  EXPECT_TRUE(ghttpd.observe(ghttpd_observation(203, false)).exploited());
  ghttpd.reset();
  EXPECT_FALSE(ghttpd.observe(ghttpd_observation(24, true)).exploited());

  RuntimeMonitor statd{apps::RpcStatd::statd_model()};
  EXPECT_TRUE(
      statd.observe(rpcstatd_observation("%7842561c%4$n", false)).exploited());
  statd.reset();
  EXPECT_FALSE(
      statd.observe(rpcstatd_observation("/var/lib/nfs/state", true)).exploited());
}

TEST(Monitor, AgreesWithTheConcreteSandboxRun) {
  // The model-level monitor and the byte-level sandbox must tell the same
  // story for the same inputs — the core fidelity claim.
  apps::SendmailTTflag app;
  const auto exploit = app.build_exploit();
  const auto concrete = app.run_debug_command(exploit.str_x, exploit.str_i);

  RuntimeMonitor monitor{apps::SendmailTTflag::figure3_model()};
  const auto modeled = monitor.observe(sendmail_observation(
      exploit.str_x, exploit.str_i, app.process().got().unchanged("setuid")));

  EXPECT_EQ(concrete.mcode_executed, modeled.exploited());
}

}  // namespace
}  // namespace dfsm::analysis
