#include "analysis/report.h"

#include <gtest/gtest.h>

#include "apps/models.h"

namespace dfsm::analysis {
namespace {

TEST(ReportTable1, ContainsTheThreeReportsAndTheirCategories) {
  const std::string t = render_table1();
  EXPECT_NE(t.find("#3163"), std::string::npos);
  EXPECT_NE(t.find("#5493"), std::string::npos);
  EXPECT_NE(t.find("#3958"), std::string::npos);
  EXPECT_NE(t.find("Input Validation Error"), std::string::npos);
  EXPECT_NE(t.find("Boundary Condition Error"), std::string::npos);
  EXPECT_NE(t.find("Access Validation Error"), std::string::npos);
  // The classifier reproduces each assignment.
  EXPECT_EQ(t.find("NO"), std::string::npos);
}

TEST(ReportTable2, ListsEveryModelAndItsPfsmQuestions) {
  const auto models = apps::standard_models();
  const std::string t = render_table2(models);
  for (const auto& m : models) {
    EXPECT_NE(t.find(m.name()), std::string::npos) << m.name();
  }
  EXPECT_NE(t.find("0 <= x <= 100"), std::string::npos);
  EXPECT_NE(t.find("contentLen >= 0"), std::string::npos);
  EXPECT_NE(t.find("size(message) <= 200"), std::string::npos);
}

TEST(ReportFigure2, ShowsTheThreeOutcomeRows) {
  const std::string f = render_figure2();
  EXPECT_NE(f.find("SPEC_ACPT"), std::string::npos);
  EXPECT_NE(f.find("SPEC_REJ, IMPL_REJ"), std::string::npos);
  EXPECT_NE(f.find("SPEC_REJ, IMPL_ACPT"), std::string::npos);
  EXPECT_NE(f.find("HIDDEN PATH"), std::string::npos);
}

TEST(ReportFigure8, CensusSharesSumToOneHundredPercent) {
  const auto models = apps::standard_models();
  const std::string f = render_figure8(models);
  EXPECT_NE(f.find("Object Type Check"), std::string::npos);
  EXPECT_NE(f.find("Content and Attribute Check"), std::string::npos);
  EXPECT_NE(f.find("Reference Consistency Check"), std::string::npos);
  EXPECT_NE(f.find("Total pFSMs: 16"), std::string::npos);
}

TEST(ReportLemma, OneRowPerCaseStudy) {
  const auto reports = sweep_all();
  const std::string t = render_lemma(reports);
  for (const auto& r : reports) {
    EXPECT_NE(t.find(r.study_name), std::string::npos) << r.study_name;
  }
  EXPECT_EQ(t.find(" NO"), std::string::npos) << "a Lemma column regressed";
}

TEST(ReportMaskTable, ShowsEveryMask) {
  const auto reports = sweep_all();
  const std::string t = render_mask_table(reports[0]);  // Sendmail, 8 masks
  EXPECT_NE(t.find("000"), std::string::npos);
  EXPECT_NE(t.find("111"), std::string::npos);
  EXPECT_NE(t.find("all 8 check combinations"), std::string::npos);
}

TEST(ReportDiscovery, NarratesTheCampaign) {
  const std::string t = render_discovery(probe_nullhttpd_v051());
  EXPECT_NE(t.find("VIOLATED"), std::string::npos);
  EXPECT_NE(t.find("NEW VULNERABILITY"), std::string::npos);
  const std::string clean = render_discovery(probe_nullhttpd_fixed());
  EXPECT_EQ(clean.find("NEW VULNERABILITY"), std::string::npos);
  EXPECT_NE(clean.find("no predicate violations"), std::string::npos);
}

}  // namespace
}  // namespace dfsm::analysis
