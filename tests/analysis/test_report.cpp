#include "analysis/report.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/chain_analyzer.h"
#include "analysis/sweep_memo.h"
#include "apps/case_study.h"
#include "apps/models.h"

namespace dfsm::analysis {
namespace {

TEST(ReportTable1, ContainsTheThreeReportsAndTheirCategories) {
  const std::string t = render_table1();
  EXPECT_NE(t.find("#3163"), std::string::npos);
  EXPECT_NE(t.find("#5493"), std::string::npos);
  EXPECT_NE(t.find("#3958"), std::string::npos);
  EXPECT_NE(t.find("Input Validation Error"), std::string::npos);
  EXPECT_NE(t.find("Boundary Condition Error"), std::string::npos);
  EXPECT_NE(t.find("Access Validation Error"), std::string::npos);
  // The classifier reproduces each assignment.
  EXPECT_EQ(t.find("NO"), std::string::npos);
}

TEST(ReportTable2, ListsEveryModelAndItsPfsmQuestions) {
  const auto models = apps::standard_models();
  const std::string t = render_table2(models);
  for (const auto& m : models) {
    EXPECT_NE(t.find(m.name()), std::string::npos) << m.name();
  }
  EXPECT_NE(t.find("0 <= x <= 100"), std::string::npos);
  EXPECT_NE(t.find("contentLen >= 0"), std::string::npos);
  EXPECT_NE(t.find("size(message) <= 200"), std::string::npos);
}

TEST(ReportFigure2, ShowsTheThreeOutcomeRows) {
  const std::string f = render_figure2();
  EXPECT_NE(f.find("SPEC_ACPT"), std::string::npos);
  EXPECT_NE(f.find("SPEC_REJ, IMPL_REJ"), std::string::npos);
  EXPECT_NE(f.find("SPEC_REJ, IMPL_ACPT"), std::string::npos);
  EXPECT_NE(f.find("HIDDEN PATH"), std::string::npos);
}

TEST(ReportFigure8, CensusSharesSumToOneHundredPercent) {
  const auto models = apps::standard_models();
  const std::string f = render_figure8(models);
  EXPECT_NE(f.find("Object Type Check"), std::string::npos);
  EXPECT_NE(f.find("Content and Attribute Check"), std::string::npos);
  EXPECT_NE(f.find("Reference Consistency Check"), std::string::npos);
  EXPECT_NE(f.find("Total pFSMs: 16"), std::string::npos);
}

TEST(ReportLemma, OneRowPerCaseStudy) {
  const auto reports = sweep_all();
  const std::string t = render_lemma(reports);
  for (const auto& r : reports) {
    EXPECT_NE(t.find(r.study_name), std::string::npos) << r.study_name;
  }
  EXPECT_EQ(t.find(" NO"), std::string::npos) << "a Lemma column regressed";
}

TEST(ReportMaskTable, ShowsEveryMask) {
  const auto reports = sweep_all();
  const std::string t = render_mask_table(reports[0]);  // Sendmail, 8 masks
  EXPECT_NE(t.find("000"), std::string::npos);
  EXPECT_NE(t.find("111"), std::string::npos);
  EXPECT_NE(t.find("all 8 check combinations"), std::string::npos);
}

TEST(ReportDiscovery, NarratesTheCampaign) {
  const std::string t = render_discovery(probe_nullhttpd_v051());
  EXPECT_NE(t.find("VIOLATED"), std::string::npos);
  EXPECT_NE(t.find("NEW VULNERABILITY"), std::string::npos);
  const std::string clean = render_discovery(probe_nullhttpd_fixed());
  EXPECT_EQ(clean.find("NEW VULNERABILITY"), std::string::npos);
  EXPECT_NE(clean.find("no predicate violations"), std::string::npos);
}

TEST(ReportDiscovery, NamesTheModelCrossValidationVerdict) {
  const std::string v05 = render_discovery(probe_nullhttpd_v05());
  EXPECT_NE(v05.find("Model cross-validation"), std::string::npos);
  // Patched configurations carry no model verdicts, so no footer.
  const std::string fixed = render_discovery(probe_nullhttpd_fixed());
  EXPECT_EQ(fixed.find("Model cross-validation"), std::string::npos);
}

TEST(ReportTelemetry, TableShowsStoreTrafficPerSweep) {
  const auto studies = apps::all_case_studies();
  SweepMemoStore store;
  SweepOptions opts;
  opts.memo = &store;
  const auto cold = sweep(*studies[0], opts);
  const auto warm = sweep(*studies[0], opts);
  const std::string text = render_sweep_telemetry({cold, warm});
  EXPECT_NE(text.find(cold.study_name), std::string::npos);
  EXPECT_NE(text.find("memo hits"), std::string::npos);
  EXPECT_NE(text.find("Store lookups"), std::string::npos);
  // The warm sweep ran nothing; the renderer shows the zero honestly.
  EXPECT_GT(warm.memo_hits, 0u);
  EXPECT_EQ(warm.exploit_evaluations, 0u);
}

TEST(ReportTelemetry, JsonIsShapedAndEscaped) {
  LemmaReport weird;
  weird.study_name = "a\"b\\c\nd";
  weird.memo_hits = 3;
  weird.memo_misses = 2;
  weird.entries_invalidated = 1;
  const std::string json = sweep_telemetry_json({weird});
  EXPECT_NE(json.find("\"sweeps\": ["), std::string::npos);
  EXPECT_NE(json.find("\"memo_hits\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"memo_misses\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"entries_invalidated\": 1"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(ReportTelemetry, JsonIsEmptyListForNoReports) {
  const std::string json = sweep_telemetry_json({});
  EXPECT_NE(json.find("\"sweeps\": ["), std::string::npos);
  EXPECT_EQ(json.find("\"study\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

}  // namespace
}  // namespace dfsm::analysis
