#include "analysis/predicates.h"

#include <gtest/gtest.h>

namespace dfsm::analysis::predicates {
namespace {

using core::Object;

TEST(PredicateLibrary, RepresentableAsInt32) {
  const auto p = representable_as_int32("v");
  EXPECT_TRUE(p.accepts(Object{"o"}.with("v", std::int64_t{2147483647})));
  EXPECT_TRUE(p.accepts(Object{"o"}.with("v", std::int64_t{-2147483648LL})));
  EXPECT_FALSE(p.accepts(Object{"o"}.with("v", std::int64_t{2147483648LL})));
  EXPECT_FALSE(p.accepts(Object{"o"}.with("v", std::int64_t{4294958848LL})));
  EXPECT_FALSE(p.accepts(Object{"o"}));  // missing attribute
}

TEST(PredicateLibrary, FileTypeIs) {
  const auto p = file_type_is("type", "terminal");
  EXPECT_TRUE(p.accepts(Object{"o"}.with("type", std::string("terminal"))));
  EXPECT_FALSE(p.accepts(Object{"o"}.with("type", std::string("file"))));
  EXPECT_FALSE(p.accepts(Object{"o"}));
}

TEST(PredicateLibrary, IntRangeAndBounds) {
  EXPECT_TRUE(int_in_range("x", 0, 100).accepts(Object{"o"}.with("x", std::int64_t{100})));
  EXPECT_FALSE(int_in_range("x", 0, 100).accepts(Object{"o"}.with("x", std::int64_t{-1})));
  EXPECT_TRUE(int_at_least("n", 0).accepts(Object{"o"}.with("n", std::int64_t{0})));
  EXPECT_FALSE(int_at_least("n", 0).accepts(Object{"o"}.with("n", std::int64_t{-800})));
  EXPECT_TRUE(int_at_most("x", 100).accepts(Object{"o"}.with("x", std::int64_t{-8448})));
  // The incomplete upper-bound-only check accepting negatives is exactly
  // the Sendmail hidden path.
}

TEST(PredicateLibrary, LengthChecks) {
  const auto cap = length_within_capacity("len", "cap");
  EXPECT_TRUE(cap.accepts(
      Object{"o"}.with("len", std::int64_t{10}).with("cap", std::int64_t{10})));
  EXPECT_FALSE(cap.accepts(
      Object{"o"}.with("len", std::int64_t{11}).with("cap", std::int64_t{10})));
  EXPECT_FALSE(cap.accepts(Object{"o"}.with("len", std::int64_t{1})));  // no cap

  const auto at_most = length_at_most("msg", 200);
  EXPECT_TRUE(at_most.accepts(Object{"o"}.with("msg", std::int64_t{200})));
  EXPECT_FALSE(at_most.accepts(Object{"o"}.with("msg", std::int64_t{201})));
  // String payload variant measures the string directly.
  EXPECT_TRUE(at_most.accepts(Object{"o"}.with("msg", std::string(200, 'a'))));
  EXPECT_FALSE(at_most.accepts(Object{"o"}.with("msg", std::string(201, 'a'))));
}

TEST(PredicateLibrary, FormatAndTraversal) {
  EXPECT_FALSE(no_format_directives("s").accepts(
      Object{"o"}.with("s", std::string("%7842561c%4$n"))));
  EXPECT_TRUE(no_format_directives("s").accepts(
      Object{"o"}.with("s", std::string("/var/lib/nfs/state"))));
  EXPECT_FALSE(no_path_traversal("p").accepts(
      Object{"o"}.with("p", std::string("../../winnt/cmd.exe"))));
  EXPECT_TRUE(no_path_traversal("p").accepts(
      Object{"o"}.with("p", std::string("scripts/tool.cgi"))));
}

TEST(PredicateLibrary, PrivilegeAndReference) {
  EXPECT_TRUE(caller_is_root("root").accepts(Object{"o"}.with("root", true)));
  EXPECT_FALSE(caller_is_root("root").accepts(Object{"o"}.with("root", false)));
  EXPECT_TRUE(reference_unchanged("u").accepts(Object{"o"}.with("u", true)));
  EXPECT_FALSE(reference_unchanged("u").accepts(Object{"o"}.with("u", false)));
  EXPECT_FALSE(reference_unchanged("u").accepts(Object{"o"}));  // unknown: reject
}

TEST(PredicateLibrary, DescriptionsAreHumanReadable) {
  EXPECT_EQ(int_in_range("x", 0, 100).description(), "0 <= x <= 100");
  EXPECT_EQ(int_at_least("contentLen", 0).description(), "contentLen >= 0");
  EXPECT_EQ(length_at_most("message", 200).description(), "size(message) <= 200");
}

TEST(PredicateLibrary, CatalogueCoversAllThreeGenericTypes) {
  const auto& cat = catalogue();
  EXPECT_GE(cat.size(), 10u);
  bool has[3] = {false, false, false};
  for (const auto& e : cat) has[static_cast<std::size_t>(e.type)] = true;
  EXPECT_TRUE(has[0]);
  EXPECT_TRUE(has[1]);
  EXPECT_TRUE(has[2]);
}

}  // namespace
}  // namespace dfsm::analysis::predicates
