#include "analysis/metf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/models.h"
#include "apps/xterm.h"

namespace dfsm::analysis {
namespace {

TEST(Metf, EmptyChainIsTriviallyCompromised) {
  const auto r = metf({});
  EXPECT_EQ(r.attempt_success_probability, 1.0);
  EXPECT_EQ(r.expected_attempts, 1.0);
  EXPECT_EQ(r.expected_actions, 0.0);
  EXPECT_FALSE(r.secure);
}

TEST(Metf, AllOpenBarriersSucceedInOneAttempt) {
  const auto r = metf({{"a", 1.0}, {"b", 1.0}, {"c", 1.0}});
  EXPECT_EQ(r.attempt_success_probability, 1.0);
  EXPECT_EQ(r.expected_attempts, 1.0);
  EXPECT_EQ(r.expected_actions, 3.0);  // exactly one action per barrier
}

TEST(Metf, OneClosedBarrierMakesTheChainSecure) {
  const auto r = metf({{"a", 1.0}, {"b", 0.0}, {"c", 1.0}});
  EXPECT_TRUE(r.secure);
  EXPECT_TRUE(std::isinf(r.expected_attempts));
  EXPECT_TRUE(std::isinf(r.expected_actions));
  EXPECT_EQ(r.attempt_success_probability, 0.0);
}

TEST(Metf, SingleProbabilisticBarrierIsGeometric) {
  const auto r = metf({{"race", 0.1}});
  EXPECT_DOUBLE_EQ(r.attempt_success_probability, 0.1);
  EXPECT_DOUBLE_EQ(r.expected_attempts, 10.0);
  EXPECT_DOUBLE_EQ(r.expected_actions, 10.0);  // one action per attempt
}

TEST(Metf, TwoBarrierClosedFormMatchesHandComputation) {
  // p1 = 1, p2 = 0.5: each attempt costs the first action, then the
  // second passes half the time.
  // E = a0 / (1 - b0) with a = [1 + 1*(1 + .5*0)] = 2, b = [1*( .5*0 + .5)] = .5
  // E = 2 / 0.5 = 4.
  const auto r = metf({{"open", 1.0}, {"coin", 0.5}});
  EXPECT_DOUBLE_EQ(r.expected_actions, 4.0);
  EXPECT_DOUBLE_EQ(r.expected_attempts, 2.0);
}

TEST(Metf, ExpectedActionsAtLeastAttemptsTimesOne) {
  const auto r = metf({{"a", 0.5}, {"b", 0.5}, {"c", 0.5}});
  EXPECT_DOUBLE_EQ(r.attempt_success_probability, 0.125);
  EXPECT_GT(r.expected_actions, r.expected_attempts);
}

TEST(Metf, ProbabilitiesAreClamped) {
  const auto r = metf({{"weird", 2.5}});
  EXPECT_EQ(r.attempt_success_probability, 1.0);
}

TEST(MetfModel, VulnerableModelFallsInPfsmCountActions) {
  const auto model = apps::standard_models()[0];  // Sendmail: 3 pFSMs, all open
  const auto barriers = barriers_from_model(model);
  const auto r = metf(barriers);
  EXPECT_FALSE(r.secure);
  EXPECT_DOUBLE_EQ(r.expected_actions, static_cast<double>(model.pfsm_count()));
}

TEST(MetfModel, DeclaredSecurePfsmClosesTheChain) {
  const auto xterm = apps::standard_models()[2];  // pFSM1 declared secure
  const auto r = metf(barriers_from_model(xterm));
  EXPECT_TRUE(r.secure);
}

TEST(MetfModel, OverridesPlugInMeasuredProbabilities) {
  // The xterm race: pFSM1's permission check is deterministic for a
  // pre-planted symlink, but the attacker races it — plug the measured
  // violating-schedule fraction in as pFSM2's pass probability and treat
  // pFSM1 as passed (the attacker always presents a currently-valid file).
  apps::XtermLogger app;
  const auto race = app.run_race(/*window_steps=*/1);
  const double fraction = race.report.violation_fraction();
  ASSERT_GT(fraction, 0.0);

  const auto xterm = apps::standard_models()[2];
  const auto barriers = barriers_from_model(
      xterm, /*vulnerable_pass=*/1.0,
      {{"pFSM1", 1.0}, {"pFSM2", fraction}});
  const auto r = metf(barriers);
  EXPECT_FALSE(r.secure);
  EXPECT_NEAR(r.expected_attempts, 1.0 / fraction, 1e-9);
}

TEST(MetfModel, HardeningMonotonicallyRaisesTheEffort) {
  // Lowering a barrier's pass probability must never lower the METF.
  const auto model = apps::standard_models()[1];  // NULL HTTPD, 4 pFSMs
  double last = 0.0;
  for (const double pass : {1.0, 0.5, 0.25, 0.1}) {
    const auto r = metf(barriers_from_model(model, pass));
    EXPECT_GT(r.expected_actions, last);
    last = r.expected_actions;
  }
}

}  // namespace
}  // namespace dfsm::analysis
