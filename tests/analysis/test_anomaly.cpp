#include "analysis/anomaly.h"

#include <gtest/gtest.h>

#include "apps/ghttpd.h"
#include "apps/nullhttpd.h"

namespace dfsm::analysis {
namespace {

TEST(Anomaly, RequiresPositiveN) {
  EXPECT_THROW(AnomalyDetector{0}, std::invalid_argument);
}

TEST(Anomaly, UntrainedDetectorFlagsEverything) {
  AnomalyDetector d{2};
  EXPECT_EQ(d.score({"a", "b"}), 1.0);
  EXPECT_TRUE(d.anomalous({"a"}));
  EXPECT_EQ(d.known_windows(), 0u);
}

TEST(Anomaly, TrainedTraceScoresZero) {
  AnomalyDetector d{2};
  d.train({"open", "read", "close"});
  EXPECT_EQ(d.score({"open", "read", "close"}), 0.0);
  EXPECT_FALSE(d.anomalous({"open", "read", "close"}));
  EXPECT_EQ(d.trained_traces(), 1u);
}

TEST(Anomaly, NovelTransitionIsDetected) {
  AnomalyDetector d{2};
  d.train({"open", "read", "close"});
  EXPECT_GT(d.score({"open", "write", "close"}), 0.0);
  const auto novel = d.novel_windows({"open", "write", "close"});
  EXPECT_FALSE(novel.empty());
}

TEST(Anomaly, TruncatedTraceIsDetectedViaEndSentinel) {
  // The exploited runs end abruptly; the (last-event, END) window is new.
  AnomalyDetector d{2};
  d.train({"a", "b", "c"});
  EXPECT_GT(d.score({"a", "b"}), 0.0);
}

TEST(Anomaly, ReorderingIsDetected) {
  AnomalyDetector d{2};
  d.train({"a", "b", "c"});
  EXPECT_GT(d.score({"b", "a", "c"}), 0.0);
}

TEST(Anomaly, LongerWindowsAreStricter) {
  AnomalyDetector bigram{2};
  AnomalyDetector trigram{3};
  // Train on two traces whose bigrams cover the test trace but whose
  // trigrams do not.
  const EventTrace t1{"a", "b"};
  const EventTrace t2{"b", "c"};
  bigram.train(t1);
  bigram.train(t2);
  trigram.train(t1);
  trigram.train(t2);
  const EventTrace probe{"a", "b", "c"};
  EXPECT_EQ(bigram.score(probe), 0.0);
  EXPECT_GT(trigram.score(probe), 0.0);
}

TEST(Anomaly, ShortTracesHandled) {
  AnomalyDetector d{4};
  d.train({"only"});
  EXPECT_EQ(d.score({"only"}), 0.0);
  EXPECT_GT(d.score({"other"}), 0.0);
}

// --- Against the sandboxed servers --------------------------------------

EventTrace nullhttpd_trace(std::int32_t cl, const std::string& body,
                           apps::NullHttpdChecks checks = {}) {
  apps::NullHttpd app{checks};
  return app.handle_post(cl, body).events;
}

TEST(AnomalyIntegration, BenignNullHttpdTrafficLearnsClean) {
  AnomalyDetector d{2};
  // Train on benign POSTs of assorted sizes (multiple recv iterations).
  for (const std::size_t n : {0u, 100u, 1024u, 2048u, 5000u}) {
    d.train(nullhttpd_trace(static_cast<std::int32_t>(n), std::string(n, 'b')));
  }
  // A fresh benign size in the same regime scores clean.
  EXPECT_EQ(d.score(nullhttpd_trace(3000, std::string(3000, 'x'))), 0.0);
}

TEST(AnomalyIntegration, HeapExploitRunIsAnomalous) {
  AnomalyDetector d{2};
  for (const std::size_t n : {0u, 100u, 1024u, 2048u, 5000u}) {
    d.train(nullhttpd_trace(static_cast<std::int32_t>(n), std::string(n, 'b')));
  }
  const auto info = apps::NullHttpd::scout(-800);
  const auto body = apps::NullHttpd::build_overflow_body(info);
  const auto trace = nullhttpd_trace(-800, std::string(body.begin(), body.end()));
  EXPECT_GT(d.score(trace), 0.0) << "the Mcode payload behaviour must be novel";
  // The novel windows include the payload's execve.
  bool saw_payload = false;
  for (const auto& w : d.novel_windows(trace)) {
    if (w.find("mcode:execve") != std::string::npos) saw_payload = true;
  }
  EXPECT_TRUE(saw_payload);
}

TEST(AnomalyIntegration, GhttpdExploitRunIsAnomalous) {
  AnomalyDetector d{2};
  apps::Ghttpd trainer;
  for (const char* req : {"GET / HTTP/1.0", "GET /index.html HTTP/1.0",
                          "HEAD /x HTTP/1.0"}) {
    d.train(trainer.serve(req).events);
  }
  apps::Ghttpd victim;
  const auto exploit_trace = victim.serve(victim.build_exploit()).events;
  EXPECT_GT(d.score(exploit_trace), 0.0);
  // And a benign probe stays clean.
  apps::Ghttpd bystander;
  EXPECT_EQ(d.score(bystander.serve("GET /about HTTP/1.0").events), 0.0);
}

TEST(AnomalyIntegration, DetectionComplementsThePfsmModel) {
  // The pFSM model foils the exploit BEFORE the payload runs; with the
  // check on, the trace never contains payload events, so the detector
  // sees (at most) a benignly-rejected shape.
  apps::NullHttpdChecks protected_cfg;
  protected_cfg.heap_safe_unlink = true;
  const auto info = apps::NullHttpd::scout(-800, protected_cfg);
  const auto body = apps::NullHttpd::build_overflow_body(info);
  const auto trace =
      nullhttpd_trace(-800, std::string(body.begin(), body.end()), protected_cfg);
  for (const auto& e : trace) {
    EXPECT_EQ(e.find("mcode"), std::string::npos) << e;
  }
}

}  // namespace
}  // namespace dfsm::analysis
