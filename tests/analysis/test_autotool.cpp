#include "analysis/autotool.h"

#include <gtest/gtest.h>

#include "analysis/hidden_path.h"
#include "analysis/predicates.h"
#include "apps/models.h"
#include "apps/sendmail.h"

namespace dfsm::analysis {
namespace {

TEST(AutoTool, AssemblesTheDeclaredStructure) {
  const auto model = AutoTool::assemble(sendmail_spec());
  EXPECT_EQ(model.chain().size(), 2u);
  EXPECT_EQ(model.pfsm_count(), 3u);
  EXPECT_EQ(model.bugtraq_ids(), (std::vector<int>{3163}));
}

TEST(AutoTool, AssembledModelMatchesTheHandwrittenFigure3) {
  const auto automatic = AutoTool::assemble(sendmail_spec());
  const auto handwritten = apps::SendmailTTflag::figure3_model();
  // Same structure...
  ASSERT_EQ(automatic.pfsm_count(), handwritten.pfsm_count());
  ASSERT_EQ(automatic.chain().size(), handwritten.chain().size());
  // ...same pFSM types in the same order...
  const auto a = automatic.summaries();
  const auto h = handwritten.summaries();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, h[i].type) << i;
    EXPECT_EQ(a[i].pfsm_name, h[i].pfsm_name) << i;
  }
  // ...and semantically identical verdicts on the exploit's objects.
  const auto exploit_objects = std::vector<std::vector<core::Object>>{
      {core::Object{"strs"}.with("long_x", std::int64_t{4294958848LL}),
       core::Object{"x"}.with("x", std::int64_t{-8448})},
      {core::Object{"addr"}.with("addr_setuid_unchanged", false)}};
  EXPECT_EQ(automatic.chain().evaluate(exploit_objects).exploited(),
            handwritten.chain().evaluate(exploit_objects).exploited());
}

TEST(AutoTool, AnalyzeFindsEveryHiddenPathOfSendmail) {
  const auto report = AutoTool::analyze(sendmail_spec());
  EXPECT_TRUE(report.vulnerable());
  EXPECT_EQ(report.vulnerable_pfsms(),
            (std::vector<std::string>{"pFSM1", "pFSM2", "pFSM3"}));
  for (const auto& f : report.findings) {
    EXPECT_TRUE(f.probed) << f.pfsm_name;
    EXPECT_FALSE(f.sample_witness.empty()) << f.pfsm_name;
  }
}

TEST(AutoTool, SecuredSpecComesBackClean) {
  auto spec = sendmail_spec();
  // Patch the spec: every activity now implements its predicate.
  for (auto& op : spec.operations) {
    for (auto& a : op.activities) {
      a.impl_status = ActivitySpec::Impl::kMatchesSpec;
      a.impl.reset();
    }
  }
  const auto report = AutoTool::analyze(spec);
  EXPECT_FALSE(report.vulnerable());
  for (const auto& f : report.findings) {
    EXPECT_TRUE(f.declared_secure);
    EXPECT_FALSE(f.hidden_path);
  }
}

TEST(AutoTool, UnprobedActivitiesAreReportedAsSuch) {
  auto spec = sendmail_spec();
  spec.probe_domains.erase("pFSM3");
  const auto report = AutoTool::analyze(spec);
  const auto& f3 = report.findings[2];
  EXPECT_EQ(f3.pfsm_name, "pFSM3");
  EXPECT_FALSE(f3.probed);
  EXPECT_FALSE(f3.hidden_path);
  // pFSM1/pFSM2 still flagged.
  EXPECT_TRUE(report.vulnerable());
}

TEST(AutoTool, MalformedSpecsRejected) {
  VulnerabilitySpec empty;
  empty.name = "empty";
  EXPECT_THROW((void)AutoTool::assemble(empty), std::invalid_argument);

  auto no_acts = sendmail_spec();
  no_acts.operations[0].activities.clear();
  EXPECT_THROW((void)AutoTool::assemble(no_acts), std::invalid_argument);

  auto custom_without_impl = sendmail_spec();
  custom_without_impl.operations[0].activities[0].impl_status =
      ActivitySpec::Impl::kCustom;
  custom_without_impl.operations[0].activities[0].impl.reset();
  EXPECT_THROW((void)AutoTool::assemble(custom_without_impl),
               std::invalid_argument);
}

TEST(AutoTool, ReportTextNamesVerdictsAndWitnesses) {
  const auto text = AutoTool::analyze(sendmail_spec()).to_text();
  EXPECT_NE(text.find("VULNERABLE"), std::string::npos);
  EXPECT_NE(text.find("pFSM2"), std::string::npos);
  EXPECT_NE(text.find("witness"), std::string::npos);
}

TEST(AutoTool, AllSevenSpecsAssembleToTheHandwrittenShapes) {
  const auto specs = all_specs();
  const auto models = apps::standard_models();
  ASSERT_EQ(specs.size(), models.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto automatic = AutoTool::assemble(specs[i]);
    EXPECT_EQ(automatic.pfsm_count(), models[i].pfsm_count()) << specs[i].name;
    EXPECT_EQ(automatic.chain().size(), models[i].chain().size()) << specs[i].name;
    const auto a = automatic.summaries();
    const auto h = models[i].summaries();
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].type, h[j].type) << specs[i].name << " pFSM " << j;
      EXPECT_EQ(a[j].declared_secure, h[j].declared_secure)
          << specs[i].name << " pFSM " << j;
    }
  }
}

TEST(AutoTool, AllSevenSpecsAnalyzeAsVulnerable) {
  for (const auto& spec : all_specs()) {
    const auto report = AutoTool::analyze(spec);
    EXPECT_TRUE(report.vulnerable()) << spec.name;
    // Every probed-and-not-secure activity must have found its witness
    // (the probe domains were chosen from the case studies' exploits).
    for (const auto& f : report.findings) {
      if (f.probed && !f.declared_secure) {
        EXPECT_TRUE(f.hidden_path) << spec.name << " / " << f.pfsm_name;
      }
    }
  }
}

TEST(AutoTool, XtermSpecKeepsPfsm1Secure) {
  const auto report = AutoTool::analyze(xterm_spec());
  ASSERT_EQ(report.findings.size(), 2u);
  EXPECT_TRUE(report.findings[0].declared_secure);
  EXPECT_FALSE(report.findings[0].hidden_path);
  EXPECT_TRUE(report.findings[1].hidden_path);
  EXPECT_EQ(report.vulnerable_pfsms(), (std::vector<std::string>{"pFSM2"}));
}

TEST(AutoTool, IisSpecWitnessIsTheDoubleEncodedName) {
  const auto report = AutoTool::analyze(iis_spec());
  ASSERT_TRUE(report.vulnerable());
  EXPECT_NE(report.findings[0].sample_witness.find("..%2f"), std::string::npos);
}

TEST(AutoTool, CustomImplWeakerThanSpecIsTheClassicPattern) {
  using predicates::int_at_most;
  using predicates::int_in_range;
  VulnerabilitySpec spec;
  spec.name = "range check missing the lower bound";
  spec.bugtraq_ids = {99991};  // synthetic report id for the demo spec
  spec.vulnerability_class = "Integer Overflow";
  spec.software = "demo";
  spec.consequence = "array underflow";
  OperationSpec op;
  op.name = "index an array";
  op.object_description = "index";
  op.activities.push_back(ActivitySpec{
      "p1", core::PfsmType::kContentAttributeCheck, "use index",
      int_in_range("i", 0, 9), ActivitySpec::Impl::kCustom, int_at_most("i", 9),
      "a[i] = v"});
  op.gate_condition = "out-of-bounds write";
  spec.operations = {op};
  spec.probe_domains["p1"] = int_boundary_domain("i", "i", {-1, 0, 9});

  const auto report = AutoTool::analyze(spec);
  EXPECT_TRUE(report.vulnerable());
  EXPECT_NE(report.findings[0].sample_witness.find("i=-"), std::string::npos);
}

}  // namespace
}  // namespace dfsm::analysis
