#include "analysis/defense_matrix.h"

#include <gtest/gtest.h>

#include <map>

namespace dfsm::analysis {
namespace {

class DefenseMatrixTest : public ::testing::Test {
 protected:
  DefenseMatrixTest() {
    for (const auto& c : defense_matrix()) {
      grid[c.exploit][c.defense] = c.outcome;
    }
  }

  CellOutcome at(const std::string& exploit_substr, Defense d) const {
    for (const auto& [name, row] : grid) {
      if (name.find(exploit_substr) != std::string::npos) return row.at(d);
    }
    ADD_FAILURE() << "no exploit row matching " << exploit_substr;
    return CellOutcome::kNotApplicable;
  }

  std::map<std::string, std::map<Defense, CellOutcome>> grid;
};

TEST_F(DefenseMatrixTest, FiveExploitsTimesFiveDefenses) {
  EXPECT_EQ(grid.size(), 5u);
  EXPECT_EQ(defense_matrix().size(), 25u);
}

TEST_F(DefenseMatrixTest, BaselineColumnIsAllExploited) {
  for (const auto& [name, row] : grid) {
    EXPECT_EQ(row.at(Defense::kNone), CellOutcome::kExploited) << name;
  }
}

TEST_F(DefenseMatrixTest, StackGuardStopsOnlyTheContiguousStackSmash) {
  // §6's point, mechanized: return-address protection is mature, but it
  // covers exactly one of the reference-inconsistency families.
  EXPECT_EQ(at("GHTTPD", Defense::kStackGuard), CellOutcome::kFoiled);
  EXPECT_EQ(at("rpc.statd", Defense::kStackGuard), CellOutcome::kIneffective);
  EXPECT_EQ(at("Sendmail", Defense::kStackGuard), CellOutcome::kIneffective);
  EXPECT_EQ(at("#5774", Defense::kStackGuard), CellOutcome::kIneffective);
  EXPECT_EQ(at("#6255", Defense::kStackGuard), CellOutcome::kIneffective);
}

TEST_F(DefenseMatrixTest, ReferenceConsistencyStopsEveryExploit) {
  for (const auto& [name, row] : grid) {
    EXPECT_EQ(row.at(Defense::kRefConsistency), CellOutcome::kFoiled) << name;
  }
}

TEST_F(DefenseMatrixTest, InputValidationMissesExactlyTheDiscoveredBug) {
  EXPECT_EQ(at("Sendmail", Defense::kInputValidation), CellOutcome::kFoiled);
  EXPECT_EQ(at("#5774", Defense::kInputValidation), CellOutcome::kFoiled);
  EXPECT_EQ(at("GHTTPD", Defense::kInputValidation), CellOutcome::kFoiled);
  EXPECT_EQ(at("rpc.statd", Defense::kInputValidation), CellOutcome::kFoiled);
  // #6255: the truthful Content-Length sails past the validation — the
  // reason it stayed hidden in the patched server.
  EXPECT_EQ(at("#6255", Defense::kInputValidation), CellOutcome::kIneffective);
}

TEST_F(DefenseMatrixTest, BoundedCopyAppliesWhereThereIsACopy) {
  EXPECT_EQ(at("#5774", Defense::kBoundedCopy), CellOutcome::kFoiled);
  EXPECT_EQ(at("#6255", Defense::kBoundedCopy), CellOutcome::kFoiled);
  EXPECT_EQ(at("GHTTPD", Defense::kBoundedCopy), CellOutcome::kFoiled);
  EXPECT_EQ(at("Sendmail", Defense::kBoundedCopy), CellOutcome::kNotApplicable);
  EXPECT_EQ(at("rpc.statd", Defense::kBoundedCopy), CellOutcome::kNotApplicable);
}

TEST_F(DefenseMatrixTest, RenderingShowsEveryRowAndColumn) {
  const auto text = render_defense_matrix(defense_matrix());
  EXPECT_NE(text.find("Sendmail"), std::string::npos);
  EXPECT_NE(text.find("#6255"), std::string::npos);
  EXPECT_NE(text.find("StackGuard"), std::string::npos);
  EXPECT_NE(text.find("EXPLOITED (bypassed)"), std::string::npos);
  EXPECT_NE(text.find("foiled"), std::string::npos);
}

TEST(DefenseNames, ToString) {
  EXPECT_STREQ(to_string(Defense::kRefConsistency), "reference consistency");
  EXPECT_STREQ(to_string(CellOutcome::kNotApplicable), "n/a");
}

}  // namespace
}  // namespace dfsm::analysis
