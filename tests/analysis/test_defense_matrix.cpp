#include "analysis/defense_matrix.h"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>

#include "analysis/sweep_memo.h"
#include "apps/case_study.h"
#include "apps/synthetic.h"

namespace dfsm::analysis {
namespace {

class DefenseMatrixTest : public ::testing::Test {
 protected:
  DefenseMatrixTest() {
    for (const auto& c : defense_matrix()) {
      grid[c.exploit][c.defense] = c.outcome;
    }
  }

  CellOutcome at(const std::string& exploit_substr, Defense d) const {
    for (const auto& [name, row] : grid) {
      if (name.find(exploit_substr) != std::string::npos) return row.at(d);
    }
    ADD_FAILURE() << "no exploit row matching " << exploit_substr;
    return CellOutcome::kNotApplicable;
  }

  std::map<std::string, std::map<Defense, CellOutcome>> grid;
};

TEST_F(DefenseMatrixTest, FiveExploitsTimesFiveDefenses) {
  EXPECT_EQ(grid.size(), 5u);
  EXPECT_EQ(defense_matrix().size(), 25u);
}

TEST_F(DefenseMatrixTest, BaselineColumnIsAllExploited) {
  for (const auto& [name, row] : grid) {
    EXPECT_EQ(row.at(Defense::kNone), CellOutcome::kExploited) << name;
  }
}

TEST_F(DefenseMatrixTest, StackGuardStopsOnlyTheContiguousStackSmash) {
  // §6's point, mechanized: return-address protection is mature, but it
  // covers exactly one of the reference-inconsistency families.
  EXPECT_EQ(at("GHTTPD", Defense::kStackGuard), CellOutcome::kFoiled);
  EXPECT_EQ(at("rpc.statd", Defense::kStackGuard), CellOutcome::kIneffective);
  EXPECT_EQ(at("Sendmail", Defense::kStackGuard), CellOutcome::kIneffective);
  EXPECT_EQ(at("#5774", Defense::kStackGuard), CellOutcome::kIneffective);
  EXPECT_EQ(at("#6255", Defense::kStackGuard), CellOutcome::kIneffective);
}

TEST_F(DefenseMatrixTest, ReferenceConsistencyStopsEveryExploit) {
  for (const auto& [name, row] : grid) {
    EXPECT_EQ(row.at(Defense::kRefConsistency), CellOutcome::kFoiled) << name;
  }
}

TEST_F(DefenseMatrixTest, InputValidationMissesExactlyTheDiscoveredBug) {
  EXPECT_EQ(at("Sendmail", Defense::kInputValidation), CellOutcome::kFoiled);
  EXPECT_EQ(at("#5774", Defense::kInputValidation), CellOutcome::kFoiled);
  EXPECT_EQ(at("GHTTPD", Defense::kInputValidation), CellOutcome::kFoiled);
  EXPECT_EQ(at("rpc.statd", Defense::kInputValidation), CellOutcome::kFoiled);
  // #6255: the truthful Content-Length sails past the validation — the
  // reason it stayed hidden in the patched server.
  EXPECT_EQ(at("#6255", Defense::kInputValidation), CellOutcome::kIneffective);
}

TEST_F(DefenseMatrixTest, BoundedCopyAppliesWhereThereIsACopy) {
  EXPECT_EQ(at("#5774", Defense::kBoundedCopy), CellOutcome::kFoiled);
  EXPECT_EQ(at("#6255", Defense::kBoundedCopy), CellOutcome::kFoiled);
  EXPECT_EQ(at("GHTTPD", Defense::kBoundedCopy), CellOutcome::kFoiled);
  EXPECT_EQ(at("Sendmail", Defense::kBoundedCopy), CellOutcome::kNotApplicable);
  EXPECT_EQ(at("rpc.statd", Defense::kBoundedCopy), CellOutcome::kNotApplicable);
}

TEST_F(DefenseMatrixTest, RenderingShowsEveryRowAndColumn) {
  const auto text = render_defense_matrix(defense_matrix());
  EXPECT_NE(text.find("Sendmail"), std::string::npos);
  EXPECT_NE(text.find("#6255"), std::string::npos);
  EXPECT_NE(text.find("StackGuard"), std::string::npos);
  EXPECT_NE(text.find("EXPLOITED (bypassed)"), std::string::npos);
  EXPECT_NE(text.find("foiled"), std::string::npos);
}

TEST(DefenseNames, ToString) {
  EXPECT_STREQ(to_string(Defense::kRefConsistency), "reference consistency");
  EXPECT_STREQ(to_string(CellOutcome::kNotApplicable), "n/a");
}

// --- patch-candidate ranking (incremental vs full sweeps) ---------------

TEST(PatchRanking, StrategiesAgreeOnEveryCaseStudy) {
  for (const auto& study : apps::all_case_studies()) {
    const auto inc = rank_patch_candidates(*study, RankStrategy::kIncremental);
    const auto full = rank_patch_candidates(*study, RankStrategy::kFullSweeps);
    EXPECT_EQ(inc.total_masks, full.total_masks) << study->name();
    EXPECT_EQ(inc.unpatched_exploited_masks, full.unpatched_exploited_masks)
        << study->name();
    ASSERT_EQ(inc.candidates.size(), full.candidates.size()) << study->name();
    for (std::size_t i = 0; i < inc.candidates.size(); ++i) {
      EXPECT_EQ(inc.candidates[i].operation, full.candidates[i].operation)
          << study->name() << " rank " << i;
      EXPECT_EQ(inc.candidates[i].operation_name,
                full.candidates[i].operation_name)
          << study->name() << " rank " << i;
      EXPECT_EQ(inc.candidates[i].exploited_masks,
                full.candidates[i].exploited_masks)
          << study->name() << " rank " << i;
      EXPECT_EQ(inc.candidates[i].benign_broken_masks,
                full.candidates[i].benign_broken_masks)
          << study->name() << " rank " << i;
      EXPECT_EQ(inc.candidates[i].forecloses, full.candidates[i].forecloses)
          << study->name() << " rank " << i;
    }
    // The strategies agree on WHAT; they differ on COST. k candidates for
    // the price of one sweep vs one sweep per candidate.
    EXPECT_LT(inc.exploit_evaluations, full.exploit_evaluations)
        << study->name();
  }
}

TEST(PatchRanking, IncrementalRankingCostsExactlyOneCacheFill) {
  apps::SyntheticStudyConfig config;
  config.operations = 3;
  config.checks_per_operation = 2;
  config.work = 4;
  const auto study = apps::make_synthetic_wide_study(config);
  const auto inc = rank_patch_candidates(*study, RankStrategy::kIncremental);
  const auto full = rank_patch_candidates(*study, RankStrategy::kFullSweeps);
  // One shared fill: 1 baseline + 3 ops x (2^2 - 1) sub-masks = 10 runs.
  EXPECT_EQ(inc.exploit_evaluations, 10u);
  EXPECT_EQ(inc.benign_evaluations, 10u);
  EXPECT_EQ(inc.memo_misses, 10u);
  // Reference: the same 10-run fill once for the base sweep and once per
  // candidate (the secured study is a distinct memo family).
  EXPECT_EQ(full.exploit_evaluations, 40u);
}

TEST(PatchRanking, EveryCuratedCandidateForeclosesByLemma2) {
  for (const auto& study : apps::all_case_studies()) {
    const auto ranking = rank_patch_candidates(*study);
    EXPECT_GT(ranking.unpatched_exploited_masks, 0u) << study->name();
    ASSERT_FALSE(ranking.candidates.empty()) << study->name();
    for (const auto& c : ranking.candidates) {
      EXPECT_TRUE(c.forecloses)
          << study->name() << " op " << c.operation << " violated Lemma 2";
      EXPECT_EQ(c.exploited_masks, 0u) << study->name();
      EXPECT_EQ(c.benign_broken_masks, 0u) << study->name();
    }
  }
}

TEST(PatchRanking, SharedStoreMakesRepeatRankingsFree) {
  const auto studies = apps::all_case_studies();
  const auto& study = *studies[0];  // Sendmail
  SweepMemoStore store;
  const auto first =
      rank_patch_candidates(study, RankStrategy::kIncremental, &store);
  EXPECT_GT(first.memo_misses, 0u);
  const auto second =
      rank_patch_candidates(study, RankStrategy::kIncremental, &store);
  EXPECT_EQ(second.exploit_evaluations, 0u);
  EXPECT_EQ(second.memo_misses, 0u);
  EXPECT_GT(second.memo_hits, 0u);
  ASSERT_EQ(second.candidates.size(), first.candidates.size());
  for (std::size_t i = 0; i < first.candidates.size(); ++i) {
    EXPECT_EQ(second.candidates[i].operation, first.candidates[i].operation);
    EXPECT_EQ(second.candidates[i].exploited_masks,
              first.candidates[i].exploited_masks);
  }
}

TEST(PatchRanking, RenderNamesStudyStrategyAndCandidates) {
  const auto studies = apps::all_case_studies();
  const auto ranking = rank_patch_candidates(*studies[0]);
  const auto text = render_patch_ranking(ranking);
  EXPECT_NE(text.find("Patch-candidate ranking"), std::string::npos);
  EXPECT_NE(text.find(ranking.study_name), std::string::npos);
  EXPECT_NE(text.find(to_string(RankStrategy::kIncremental)),
            std::string::npos);
  for (const auto& c : ranking.candidates) {
    EXPECT_NE(text.find(c.operation_name), std::string::npos);
  }
}

}  // namespace
}  // namespace dfsm::analysis
