#include "analysis/chain_analyzer.h"

#include <gtest/gtest.h>

namespace dfsm::analysis {
namespace {

TEST(OperationSecured, RequiresEveryCheckOfTheOperation) {
  const std::vector<apps::CheckSpec> checks = {
      {"c0", 0, core::PfsmType::kContentAttributeCheck},
      {"c1", 0, core::PfsmType::kContentAttributeCheck},
      {"c2", 1, core::PfsmType::kReferenceConsistencyCheck},
  };
  EXPECT_TRUE(operation_secured(checks, {true, true, false}, 0));
  EXPECT_FALSE(operation_secured(checks, {true, false, false}, 0));
  EXPECT_TRUE(operation_secured(checks, {false, false, true}, 1));
  // An operation with no checks at all is not "secured" by a mask.
  EXPECT_FALSE(operation_secured(checks, {true, true, true}, 7));
}

TEST(Sweep, EnumeratesAllMasksInBinaryOrder) {
  const auto studies = apps::all_case_studies();
  const auto report = sweep(*studies[0]);  // Sendmail, 3 checks
  EXPECT_EQ(report.results.size(), 8u);
  EXPECT_EQ(report.results[0].mask, (std::vector<bool>{false, false, false}));
  EXPECT_EQ(report.results[5].mask, (std::vector<bool>{true, false, true}));
  EXPECT_EQ(report.results[7].mask, (std::vector<bool>{true, true, true}));
}

TEST(Sweep, SendmailBaselineAndFullProtection) {
  const auto studies = apps::all_case_studies();
  const auto report = sweep(*studies[0]);
  EXPECT_TRUE(report.baseline_exploited);
  EXPECT_TRUE(report.all_checks_foil);
  EXPECT_TRUE(report.lemma2_holds);
  EXPECT_TRUE(report.benign_preserved);
  // Every single check foils the Sendmail exploit (paper §3.2: "at any one
  // of which, one can foil the exploit").
  EXPECT_EQ(report.foiling_single_checks.size(), 3u);
}

TEST(Sweep, EveryCaseStudySatisfiesTheLemma) {
  for (const auto& report : sweep_all()) {
    EXPECT_TRUE(report.baseline_exploited) << report.study_name;
    EXPECT_TRUE(report.all_checks_foil) << report.study_name;
    EXPECT_TRUE(report.lemma2_holds) << report.study_name;
    EXPECT_TRUE(report.benign_preserved) << report.study_name;
  }
}

TEST(Sweep, The6255SignatureIsVisibleInTheSingleCheckColumn) {
  const auto reports = sweep_all();
  const auto* known = &reports[1];       // #5774
  const auto* discovered = &reports[2];  // #6255
  ASSERT_NE(known->study_name.find("5774"), std::string::npos);
  ASSERT_NE(discovered->study_name.find("6255"), std::string::npos);
  // #5774: the v0.5.1 patch (check 0) forestalls it.
  EXPECT_NE(std::find(known->foiling_single_checks.begin(),
                      known->foiling_single_checks.end(), 0u),
            known->foiling_single_checks.end());
  // #6255: check 0 does NOT appear — the patched server is still
  // exploitable, which is exactly why it was a new vulnerability.
  EXPECT_EQ(std::find(discovered->foiling_single_checks.begin(),
                      discovered->foiling_single_checks.end(), 0u),
            discovered->foiling_single_checks.end());
  EXPECT_FALSE(discovered->foiling_single_checks.empty());
}

TEST(Sweep, EveryStudyHasAtLeastOneFoilingSingleCheck) {
  // Observation 1: each elementary activity is an independent checking
  // opportunity; at least one of them must stop the published exploit.
  for (const auto& report : sweep_all()) {
    EXPECT_FALSE(report.foiling_single_checks.empty()) << report.study_name;
  }
}

TEST(Sweep, MasksThatSecureAnOperationNeverExploit) {
  for (const auto& report : sweep_all()) {
    for (const auto& row : report.results) {
      if (row.some_operation_secured) {
        EXPECT_FALSE(row.exploit.exploited)
            << report.study_name << " violated Lemma 2";
      }
    }
  }
}

TEST(Sweep, ChecksNeverBreakBenignService) {
  for (const auto& report : sweep_all()) {
    for (const auto& row : report.results) {
      EXPECT_TRUE(row.benign.service_ok)
          << report.study_name << " benign traffic failed under a mask";
    }
  }
}

}  // namespace
}  // namespace dfsm::analysis
