#include "analysis/chain_analyzer.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/synthetic.h"

namespace dfsm::analysis {
namespace {

apps::SyntheticStudyConfig synthetic_config(std::size_t ops,
                                            std::size_t checks) {
  apps::SyntheticStudyConfig c;
  c.operations = ops;
  c.checks_per_operation = checks;
  c.work = 4;  // tests measure semantics, not throughput
  return c;
}

std::uint64_t mask_bits(const std::vector<bool>& mask) {
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) bits |= std::uint64_t{1} << i;
  }
  return bits;
}

/// 1 + sum over operations of (2^{k_op} - 1): the memoized engine's
/// evaluation budget (one shared baseline + every non-empty sub-mask).
std::size_t memoized_budget(const std::vector<apps::CheckSpec>& checks) {
  std::map<std::size_t, std::size_t> per_op;
  for (const auto& c : checks) ++per_op[c.operation_index];
  std::size_t total = 1;
  for (const auto& [op, k_op] : per_op) {
    total += (std::size_t{1} << k_op) - 1;
  }
  return total;
}

TEST(OperationSecured, RequiresEveryCheckOfTheOperation) {
  const std::vector<apps::CheckSpec> checks = {
      {"c0", 0, core::PfsmType::kContentAttributeCheck},
      {"c1", 0, core::PfsmType::kContentAttributeCheck},
      {"c2", 1, core::PfsmType::kReferenceConsistencyCheck},
  };
  EXPECT_TRUE(operation_secured(checks, {true, true, false}, 0));
  EXPECT_FALSE(operation_secured(checks, {true, false, false}, 0));
  EXPECT_TRUE(operation_secured(checks, {false, false, true}, 1));
  // An operation with no checks at all is not "secured" by a mask.
  EXPECT_FALSE(operation_secured(checks, {true, true, true}, 7));
}

TEST(Sweep, EnumeratesAllMasksInBinaryOrder) {
  const auto studies = apps::all_case_studies();
  const auto report = sweep(*studies[0]);  // Sendmail, 3 checks
  EXPECT_EQ(report.results.size(), 8u);
  EXPECT_EQ(report.results[0].mask, (std::vector<bool>{false, false, false}));
  EXPECT_EQ(report.results[5].mask, (std::vector<bool>{true, false, true}));
  EXPECT_EQ(report.results[7].mask, (std::vector<bool>{true, true, true}));
}

TEST(Sweep, SendmailBaselineAndFullProtection) {
  const auto studies = apps::all_case_studies();
  const auto report = sweep(*studies[0]);
  EXPECT_TRUE(report.baseline_exploited);
  EXPECT_TRUE(report.all_checks_foil);
  EXPECT_TRUE(report.lemma2_holds);
  EXPECT_TRUE(report.benign_preserved);
  // Every single check foils the Sendmail exploit (paper §3.2: "at any one
  // of which, one can foil the exploit").
  EXPECT_EQ(report.foiling_single_checks.size(), 3u);
}

TEST(Sweep, EveryCaseStudySatisfiesTheLemma) {
  for (const auto& report : sweep_all()) {
    EXPECT_TRUE(report.baseline_exploited) << report.study_name;
    EXPECT_TRUE(report.all_checks_foil) << report.study_name;
    EXPECT_TRUE(report.lemma2_holds) << report.study_name;
    EXPECT_TRUE(report.benign_preserved) << report.study_name;
  }
}

TEST(Sweep, The6255SignatureIsVisibleInTheSingleCheckColumn) {
  const auto reports = sweep_all();
  const auto* known = &reports[1];       // #5774
  const auto* discovered = &reports[2];  // #6255
  ASSERT_NE(known->study_name.find("5774"), std::string::npos);
  ASSERT_NE(discovered->study_name.find("6255"), std::string::npos);
  // #5774: the v0.5.1 patch (check 0) forestalls it.
  EXPECT_NE(std::find(known->foiling_single_checks.begin(),
                      known->foiling_single_checks.end(), 0u),
            known->foiling_single_checks.end());
  // #6255: check 0 does NOT appear — the patched server is still
  // exploitable, which is exactly why it was a new vulnerability.
  EXPECT_EQ(std::find(discovered->foiling_single_checks.begin(),
                      discovered->foiling_single_checks.end(), 0u),
            discovered->foiling_single_checks.end());
  EXPECT_FALSE(discovered->foiling_single_checks.empty());
}

TEST(Sweep, EveryStudyHasAtLeastOneFoilingSingleCheck) {
  // Observation 1: each elementary activity is an independent checking
  // opportunity; at least one of them must stop the published exploit.
  for (const auto& report : sweep_all()) {
    EXPECT_FALSE(report.foiling_single_checks.empty()) << report.study_name;
  }
}

TEST(Sweep, MasksThatSecureAnOperationNeverExploit) {
  for (const auto& report : sweep_all()) {
    for (const auto& row : report.results) {
      if (row.some_operation_secured) {
        EXPECT_FALSE(row.exploit.exploited)
            << report.study_name << " violated Lemma 2";
      }
    }
  }
}

TEST(Sweep, ChecksNeverBreakBenignService) {
  for (const auto& report : sweep_all()) {
    for (const auto& row : report.results) {
      EXPECT_TRUE(row.benign.service_ok)
          << report.study_name << " benign traffic failed under a mask";
    }
  }
}

// --- Memoized engine (DESIGN.md §10) -----------------------------------

TEST(MemoizedSweep, MatchesDirectOnEveryCaseStudy) {
  SweepOptions direct;
  direct.mode = SweepMode::kDirect;
  for (const auto& study : apps::all_case_studies()) {
    const auto memoized = sweep(*study);  // kMemoized is the default
    const auto reference = sweep(*study, direct);
    EXPECT_TRUE(reports_equivalent(memoized, reference)) << study->name();
  }
}

TEST(MemoizedSweep, EvaluationCountStaysWithinTheLemmaBound) {
  SweepOptions direct;
  direct.mode = SweepMode::kDirect;
  for (const auto& study : apps::all_case_studies()) {
    const auto report = sweep(*study);
    const std::size_t budget = memoized_budget(report.checks);
    // Exactly one baseline run plus one run per non-empty sub-mask —
    // and therefore at most sum_ops 2^{k_op}, never the direct 2^k.
    EXPECT_EQ(report.exploit_evaluations, budget) << study->name();
    EXPECT_EQ(report.benign_evaluations, budget) << study->name();
    std::size_t loose = 0;
    std::map<std::size_t, std::size_t> per_op;
    for (const auto& c : report.checks) ++per_op[c.operation_index];
    for (const auto& [op, k_op] : per_op) loose += std::size_t{1} << k_op;
    EXPECT_LE(report.exploit_evaluations, loose) << study->name();

    const auto reference = sweep(*study, direct);
    EXPECT_EQ(reference.exploit_evaluations, reference.results.size())
        << study->name();
  }
}

TEST(MemoizedSweep, MatchesDirectOnTheSyntheticWideChain) {
  const auto study = apps::make_synthetic_wide_study(synthetic_config(3, 4));
  SweepOptions direct;
  direct.mode = SweepMode::kDirect;
  const auto memoized = sweep(*study);
  const auto reference = sweep(*study, direct);
  EXPECT_TRUE(reports_equivalent(memoized, reference));
  EXPECT_EQ(memoized.results.size(), std::size_t{1} << 12);
  // 3 operations x 4 checks: 1 + 3 * 15 = 46 runs instead of 4096.
  EXPECT_EQ(memoized.exploit_evaluations, 46u);
}

TEST(Sweep, ExhaustiveSweepBeyondTheCeilingRequiresSampling) {
  const auto study = apps::make_synthetic_wide_study(synthetic_config(7, 4));
  EXPECT_THROW((void)sweep(*study), std::invalid_argument);  // k = 28
  try {
    (void)sweep(*study);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("max_masks"), std::string::npos);
  }
}

TEST(Sweep, SampledSweepPinsBaselineAndAllChecksRows) {
  const auto study = apps::make_synthetic_wide_study(synthetic_config(7, 4));
  SweepOptions options;
  options.max_masks = 512;
  const auto report = sweep(*study, options);
  EXPECT_TRUE(report.sampled);
  EXPECT_EQ(report.total_masks, std::uint64_t{1} << 28);
  ASSERT_EQ(report.results.size(), 512u);
  EXPECT_EQ(mask_bits(report.results.front().mask), 0u);
  EXPECT_EQ(mask_bits(report.results.back().mask),
            (std::uint64_t{1} << 28) - 1);
  for (std::size_t i = 1; i < report.results.size(); ++i) {
    EXPECT_LT(mask_bits(report.results[i - 1].mask),
              mask_bits(report.results[i].mask));
  }
  EXPECT_TRUE(report.baseline_exploited);
  EXPECT_TRUE(report.all_checks_foil);
}

TEST(Sweep, SampledSweepIsDeterministicAcrossEngines) {
  const auto study = apps::make_synthetic_wide_study(synthetic_config(5, 4));
  SweepOptions memoized;
  memoized.max_masks = 200;
  SweepOptions direct = memoized;
  direct.mode = SweepMode::kDirect;
  const auto a = sweep(*study, memoized);
  const auto b = sweep(*study, memoized);
  const auto c = sweep(*study, direct);
  EXPECT_TRUE(reports_equivalent(a, b));
  EXPECT_TRUE(reports_equivalent(a, c));
}

TEST(Sweep, SweepAllHonoursOptions) {
  SweepOptions direct;
  direct.mode = SweepMode::kDirect;
  const auto memoized = sweep_all();
  const auto reference = sweep_all(direct);
  ASSERT_EQ(memoized.size(), reference.size());
  for (std::size_t i = 0; i < memoized.size(); ++i) {
    EXPECT_TRUE(reports_equivalent(memoized[i], reference[i]))
        << memoized[i].study_name;
  }
}

TEST(SweepFaults, EveryFaultIsCaughtByTheCrossCheckWhereHosted) {
  SweepOptions direct;
  direct.mode = SweepMode::kDirect;
  const auto studies = apps::all_case_studies();
  for (const SweepFault fault :
       {SweepFault::kStaleSubmaskEntry, SweepFault::kFlippedCacheOutcome,
        SweepFault::kWrongGateComposition,
        SweepFault::kStaleSharedMemoAcrossSweeps,
        SweepFault::kMissedInvalidationOnPatch}) {
    std::size_t hosted = 0;
    for (const auto& study : studies) {
      const auto faulty = sweep_with_fault(*study, fault);
      if (!faulty) continue;
      ++hosted;
      // kMissedInvalidationOnPatch ships its own reference (the direct
      // sweep of the actually-secured study); the rest diff against the
      // study's direct sweep.
      const auto reference =
          faulty->reference ? *faulty->reference : sweep(*study, direct);
      EXPECT_FALSE(reports_equivalent(reference, faulty->report))
          << to_string(fault) << " escaped on " << study->name() << " ("
          << faulty->target << ")";
    }
    // Each mutator must be exercisable somewhere in the curated registry,
    // or the fault campaign would silently skip it.
    EXPECT_GT(hosted, 0u) << to_string(fault);
  }
}

TEST(SweepFaults, CleanMemoizedSweepStaysEquivalent) {
  // Sanity for the cross-check itself: without an injected fault the two
  // engines agree, so any inequivalence in the campaign is a real catch.
  const auto studies = apps::all_case_studies();
  SweepOptions direct;
  direct.mode = SweepMode::kDirect;
  const auto& study = *studies[0];
  EXPECT_TRUE(reports_equivalent(sweep(study), sweep(study, direct)));
}

}  // namespace
}  // namespace dfsm::analysis
