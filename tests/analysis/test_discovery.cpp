#include "analysis/discovery.h"

#include <gtest/gtest.h>

namespace dfsm::analysis {
namespace {

TEST(Discovery, V051CampaignRediscoversBugtraq6255) {
  const auto report = probe_nullhttpd_v051();
  EXPECT_TRUE(report.found_new_vulnerability);
  EXPECT_GT(report.violations, 0u);
  EXPECT_NE(report.finding.find("6255"), std::string::npos);
  EXPECT_NE(report.finding.find("'||'"), std::string::npos);
}

TEST(Discovery, V051ViolationsAllHaveTruthfulContentLen) {
  // The patched server rejects negative contentLen, so every violation it
  // still exhibits is the NEW bug.
  const auto report = probe_nullhttpd_v051();
  for (const auto& p : report.probes) {
    if (p.predicate_violated) {
      EXPECT_GE(p.content_len, 0) << "a negative-cl violation slipped past the patch";
      EXPECT_GT(p.bytes_read, p.buffer_size);
    }
  }
}

TEST(Discovery, FixedServerIsCleanAcrossTheWholeCampaign) {
  const auto report = probe_nullhttpd_fixed();
  EXPECT_EQ(report.violations, 0u);
  EXPECT_FALSE(report.found_new_vulnerability);
  for (const auto& p : report.probes) {
    EXPECT_LE(p.bytes_read, p.buffer_size == 0 ? p.bytes_read : p.buffer_size);
  }
}

TEST(Discovery, V05ShowsBothTheKnownAndTheNewSignature) {
  const auto report = probe_nullhttpd_v05();
  bool negative_violation = false;
  bool truthful_violation = false;
  for (const auto& p : report.probes) {
    if (!p.predicate_violated) continue;
    if (p.content_len < 0) negative_violation = true;
    if (p.content_len >= 0) truthful_violation = true;
  }
  EXPECT_TRUE(negative_violation) << "#5774 signature missing";
  EXPECT_TRUE(truthful_violation) << "#6255 signature missing";
}

TEST(Discovery, ProbesRecordBufferGeometry) {
  const auto report = probe_nullhttpd_v051();
  bool saw_boundary_pair = false;
  for (const auto& p : report.probes) {
    if (p.buffer_size != 0 && p.body_len == p.buffer_size + 1) {
      saw_boundary_pair = true;
      // The off-by-one probe is exactly the boundary the predicate guards.
      if (p.content_len >= 0) {
        EXPECT_TRUE(p.predicate_violated);
      }
    }
  }
  EXPECT_TRUE(saw_boundary_pair);
}

TEST(Discovery, ExactFitBodiesNeverViolate) {
  const DiscoveryReport reports[] = {probe_nullhttpd_v051(),
                                     probe_nullhttpd_fixed()};
  for (const auto& report : reports) {
    for (const auto& p : report.probes) {
      if (p.rejected || p.buffer_size == 0) continue;
      if (p.body_len <= p.buffer_size) {
        EXPECT_FALSE(p.predicate_violated)
            << "cl=" << p.content_len << " body=" << p.body_len;
      }
    }
  }
}

TEST(Discovery, Figure4ModelAgreesWithTheSandboxOnEveryV05Probe) {
  // Cross-validation rides the batched evaluator: one evaluate_batch over
  // the whole campaign replays every probe through the Figure-4 chain and
  // compares the pFSM2 verdict against the sandbox outcome.
  const auto report = probe_nullhttpd_v05();
  EXPECT_EQ(report.model_checked, report.probes.size());
  EXPECT_GT(report.model_checked, 0u);
  EXPECT_EQ(report.model_agreements, report.model_checked)
      << "the predicate model diverged from the sandboxed server";
}

TEST(Discovery, OnlyTheV05CampaignIsCrossValidated) {
  // Figure 4 models the v0.5 server; the patched configurations have no
  // matching paper model, so their reports carry no model verdicts.
  EXPECT_EQ(probe_nullhttpd_v051().model_checked, 0u);
  EXPECT_EQ(probe_nullhttpd_fixed().model_checked, 0u);
}

TEST(Discovery, V05CrossValidationLintsTheModelFirst) {
  // Before trusting the Figure-4 chain as an oracle, cross-validation
  // runs it through the universal lint entry; the curated model is
  // clean, and the full registry ran.
  const auto report = probe_nullhttpd_v05();
  EXPECT_GT(report.lint_rules_run, 0u);
  EXPECT_EQ(report.lint_findings, 0u);
  EXPECT_TRUE(report.lint_clean);

  // No model, no lint: the patched campaigns never build the chain.
  const auto fixed = probe_nullhttpd_fixed();
  EXPECT_EQ(fixed.lint_rules_run, 0u);
  EXPECT_FALSE(fixed.lint_clean);
}

}  // namespace
}  // namespace dfsm::analysis
