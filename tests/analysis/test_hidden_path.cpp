#include "analysis/hidden_path.h"

#include <gtest/gtest.h>

#include <set>

#include "apps/models.h"

namespace dfsm::analysis {
namespace {

using core::Object;
using core::Pfsm;
using core::PfsmType;
using core::Predicate;

Pfsm sendmail_pfsm2() {
  return Pfsm{"pFSM2", PfsmType::kContentAttributeCheck, "write tTvect[x]",
              Predicate{"0 <= x <= 100",
                        [](const Object& o) {
                          const auto v = o.attr_int("x");
                          return v && *v >= 0 && *v <= 100;
                        }},
              Predicate{"x <= 100", [](const Object& o) {
                          const auto v = o.attr_int("x");
                          return v && *v <= 100;
                        }}};
}

TEST(HiddenPath, FindsWitnessesWhereSpecAndImplDisagree) {
  const auto domain = int_boundary_domain("x", "x", {-8448, 0, 100});
  const auto report = detect_hidden_path(sendmail_pfsm2(), domain);
  EXPECT_TRUE(report.vulnerable());
  EXPECT_EQ(report.pfsm_name, "pFSM2");
  EXPECT_EQ(report.domain_size, domain.size());
  for (const auto& w : report.witnesses) {
    const auto x = w.attr_int("x");
    ASSERT_TRUE(x);
    EXPECT_LT(*x, 0) << "every witness must be a negative index";
  }
}

TEST(HiddenPath, SecureImplementationHasNoWitnesses) {
  const auto p = Pfsm::secure("p", PfsmType::kContentAttributeCheck, "a",
                              Predicate{"0 <= x <= 100", [](const Object& o) {
                                          const auto v = o.attr_int("x");
                                          return v && *v >= 0 && *v <= 100;
                                        }});
  const auto report =
      detect_hidden_path(p, int_range_domain("x", "x", -200, 200));
  EXPECT_FALSE(report.vulnerable());
  EXPECT_GT(report.spec_rejects, 0u);  // plenty of rejected objects, all foiled
}

TEST(HiddenPath, WitnessListIsCapped) {
  const auto report = detect_hidden_path(
      sendmail_pfsm2(), int_range_domain("x", "x", -1000, -1), /*max=*/5);
  EXPECT_EQ(report.witnesses.size(), 5u);
  EXPECT_EQ(report.spec_rejects, 1000u);
}

TEST(HiddenPath, ScanModelCoversNamedPfsms) {
  const auto model = apps::standard_models()[0];  // Sendmail, Figure 3
  std::map<std::string, std::vector<Object>> domains;
  domains["pFSM1"] = int_boundary_domain("strs", "long_x",
                                         {0, (std::int64_t{1} << 31), -1});
  domains["pFSM2"] = int_boundary_domain("x", "x", {-8448, 0, 100});
  const auto reports = scan_model(model, domains);
  ASSERT_EQ(reports.size(), 2u);  // pFSM3 has no domain -> skipped
  EXPECT_TRUE(reports[0].vulnerable());
  EXPECT_TRUE(reports[1].vulnerable());
}

TEST(HiddenPath, BoundaryDomainIncludesNeighbours) {
  const auto domain = int_boundary_domain("x", "x", {100});
  ASSERT_EQ(domain.size(), 3u);
  std::set<std::int64_t> vals;
  for (const auto& o : domain) vals.insert(*o.attr_int("x"));
  EXPECT_EQ(vals, (std::set<std::int64_t>{99, 100, 101}));
}

TEST(HiddenPath, RangeDomainRespectsStep) {
  const auto domain = int_range_domain("x", "x", 0, 10, 5);
  ASSERT_EQ(domain.size(), 3u);
  EXPECT_EQ(*domain[2].attr_int("x"), 10);
  EXPECT_THROW((void)int_range_domain("x", "x", 0, 1, 0), std::invalid_argument);
}

TEST(HiddenPath, BoolAndStringDomains) {
  EXPECT_EQ(bool_domain("o", "flag").size(), 2u);
  const auto sd = string_domain("o", "s", {"a", "%n"});
  ASSERT_EQ(sd.size(), 2u);
  EXPECT_EQ(*sd[1].attr_string("s"), "%n");
}

TEST(HiddenPath, ReferenceConsistencyPfsmsWitnessOnBoolDomain) {
  const auto model = apps::standard_models()[0];
  std::map<std::string, std::vector<Object>> domains;
  domains["pFSM3"] = bool_domain("addr_setuid", "addr_setuid_unchanged");
  const auto reports = scan_model(model, domains);
  ASSERT_EQ(reports.size(), 1u);
  // The tampered GOT entry (unchanged=false) is accepted by the impl.
  EXPECT_TRUE(reports[0].vulnerable());
  EXPECT_EQ(reports[0].witnesses.size(), 1u);
}

}  // namespace
}  // namespace dfsm::analysis
