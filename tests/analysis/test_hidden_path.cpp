#include "analysis/hidden_path.h"

#include <gtest/gtest.h>

#include <set>

#include "apps/models.h"

namespace dfsm::analysis {
namespace {

using core::Object;
using core::Pfsm;
using core::PfsmType;
using core::Predicate;

Pfsm sendmail_pfsm2() {
  return Pfsm{"pFSM2", PfsmType::kContentAttributeCheck, "write tTvect[x]",
              Predicate{"0 <= x <= 100",
                        [](const Object& o) {
                          const auto v = o.attr_int("x");
                          return v && *v >= 0 && *v <= 100;
                        }},
              Predicate{"x <= 100", [](const Object& o) {
                          const auto v = o.attr_int("x");
                          return v && *v <= 100;
                        }}};
}

TEST(HiddenPath, FindsWitnessesWhereSpecAndImplDisagree) {
  const auto domain = int_boundary_domain("x", "x", {-8448, 0, 100});
  const auto report = detect_hidden_path(sendmail_pfsm2(), domain);
  EXPECT_TRUE(report.vulnerable());
  EXPECT_EQ(report.pfsm_name, "pFSM2");
  EXPECT_EQ(report.domain_size, domain.size());
  for (const auto& w : report.witnesses) {
    const auto x = w.attr_int("x");
    ASSERT_TRUE(x);
    EXPECT_LT(*x, 0) << "every witness must be a negative index";
  }
}

TEST(HiddenPath, SecureImplementationHasNoWitnesses) {
  const auto p = Pfsm::secure("p", PfsmType::kContentAttributeCheck, "a",
                              Predicate{"0 <= x <= 100", [](const Object& o) {
                                          const auto v = o.attr_int("x");
                                          return v && *v >= 0 && *v <= 100;
                                        }});
  const auto report =
      detect_hidden_path(p, int_range_domain("x", "x", -200, 200));
  EXPECT_FALSE(report.vulnerable());
  EXPECT_GT(report.spec_rejects, 0u);  // plenty of rejected objects, all foiled
}

TEST(HiddenPath, WitnessListIsCapped) {
  const auto report = detect_hidden_path(
      sendmail_pfsm2(), int_range_domain("x", "x", -1000, -1), /*max=*/5);
  EXPECT_EQ(report.witnesses.size(), 5u);
  EXPECT_EQ(report.spec_rejects, 1000u);
}

TEST(HiddenPath, ScanModelCoversNamedPfsms) {
  const auto model = apps::standard_models()[0];  // Sendmail, Figure 3
  std::map<std::string, std::vector<Object>> domains;
  domains["pFSM1"] = int_boundary_domain("strs", "long_x",
                                         {0, (std::int64_t{1} << 31), -1});
  domains["pFSM2"] = int_boundary_domain("x", "x", {-8448, 0, 100});
  const auto reports = scan_model(model, domains);
  ASSERT_EQ(reports.size(), 2u);  // pFSM3 has no domain -> skipped
  EXPECT_TRUE(reports[0].vulnerable());
  EXPECT_TRUE(reports[1].vulnerable());
}

TEST(HiddenPath, BoundaryDomainIncludesNeighbours) {
  const auto domain = int_boundary_domain("x", "x", {100});
  ASSERT_EQ(domain.size(), 3u);
  std::set<std::int64_t> vals;
  for (const auto& o : domain) vals.insert(*o.attr_int("x"));
  EXPECT_EQ(vals, (std::set<std::int64_t>{99, 100, 101}));
}

TEST(HiddenPath, RangeDomainRespectsStep) {
  const auto domain = int_range_domain("x", "x", 0, 10, 5);
  ASSERT_EQ(domain.size(), 3u);
  EXPECT_EQ(*domain[2].attr_int("x"), 10);
  EXPECT_THROW((void)int_range_domain("x", "x", 0, 1, 0), std::invalid_argument);
}

TEST(HiddenPath, BoolAndStringDomains) {
  EXPECT_EQ(bool_domain("o", "flag").size(), 2u);
  const auto sd = string_domain("o", "s", {"a", "%n"});
  ASSERT_EQ(sd.size(), 2u);
  EXPECT_EQ(*sd[1].attr_string("s"), "%n");
}

TEST(HiddenPath, ReferenceConsistencyPfsmsWitnessOnBoolDomain) {
  const auto model = apps::standard_models()[0];
  std::map<std::string, std::vector<Object>> domains;
  domains["pFSM3"] = bool_domain("addr_setuid", "addr_setuid_unchanged");
  const auto reports = scan_model(model, domains);
  ASSERT_EQ(reports.size(), 1u);
  // The tampered GOT entry (unchanged=false) is accepted by the impl.
  EXPECT_TRUE(reports[0].vulnerable());
  EXPECT_EQ(reports[0].witnesses.size(), 1u);
}

// --- memoized scans ----------------------------------------------------

void expect_same_reports(const std::vector<HiddenPathReport>& a,
                         const std::vector<HiddenPathReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pfsm_name, b[i].pfsm_name);
    EXPECT_EQ(a[i].domain_size, b[i].domain_size);
    EXPECT_EQ(a[i].spec_rejects, b[i].spec_rejects);
    ASSERT_EQ(a[i].witnesses.size(), b[i].witnesses.size());
    for (std::size_t w = 0; w < a[i].witnesses.size(); ++w) {
      EXPECT_EQ(a[i].witnesses[w].describe(), b[i].witnesses[w].describe());
    }
  }
}

TEST(HiddenPathMemo, SecondScanIsServedFromTheStore) {
  const auto model = apps::standard_models()[0];
  std::map<std::string, std::vector<Object>> domains;
  domains["pFSM2"] = int_boundary_domain("x", "x", {-8448, 0, 100});
  HiddenPathScanStore store;
  const auto first = scan_model(model, domains, &store);
  const auto second = scan_model(model, domains, &store);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().hits, 1u);
  expect_same_reports(first, second);
  // And the memoized result is the plain scan's result.
  expect_same_reports(first, scan_model(model, domains));
}

TEST(HiddenPathMemo, KeyCoversModelDomainsAndWitnessCap) {
  const auto models = apps::standard_models();
  std::map<std::string, std::vector<Object>> domains;
  domains["pFSM2"] = int_boundary_domain("x", "x", {-8448, 0, 100});
  HiddenPathScanStore store;
  (void)scan_model(models[0], domains, &store);
  // A different model fingerprint is a different entry...
  (void)scan_model(models[1], domains, &store);
  EXPECT_EQ(store.size(), 2u);
  // ...as are a different witness cap and a different domain set.
  (void)scan_model(models[0], domains, &store, /*max_witnesses=*/2);
  EXPECT_EQ(store.size(), 3u);
  domains["pFSM2"].push_back(Object{"x"}.with("x", std::int64_t{7}));
  (void)scan_model(models[0], domains, &store);
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.stats().hits, 0u);  // four distinct keys, four misses
}

TEST(HiddenPathMemo, NullStoreAlwaysScans) {
  const auto model = apps::standard_models()[0];
  std::map<std::string, std::vector<Object>> domains;
  domains["pFSM2"] = int_boundary_domain("x", "x", {-8448, 0, 100});
  expect_same_reports(scan_model(model, domains, nullptr),
                      scan_model(model, domains));
}

}  // namespace
}  // namespace dfsm::analysis
