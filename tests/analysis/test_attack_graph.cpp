#include "analysis/attack_graph.h"

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/sweep_memo.h"
#include "apps/case_study.h"
#include "apps/models.h"
#include "staticlint/linter.h"

namespace dfsm::analysis {
namespace {

/// The networked environment of the tests: an attacker workstation on the
/// internet, a DMZ web server, and an internal NFS host only the DMZ box
/// reaches.
std::vector<Host> test_network() {
  return {
      {"attacker", {}, {"web"}},
      {"web", {"ghttpd", "sendmail"}, {"nfs"}},
      {"nfs", {"rpc.statd"}, {}},
  };
}

Fact start() { return Fact{"attacker", Privilege::kRoot}; }

TEST(AttackGraph, RemoteExploitYieldsServicePrivilege) {
  const auto g = AttackGraph::build(test_network(), standard_rules(), {start()});
  EXPECT_TRUE(g.reachable(Fact{"web", Privilege::kUser}));
}

TEST(AttackGraph, LocalPrivilegeEscalationChains) {
  // ghttpd gives user on web; sendmail (local, setuid) lifts it to root.
  const auto g = AttackGraph::build(test_network(), standard_rules(), {start()});
  EXPECT_TRUE(g.reachable(Fact{"web", Privilege::kRoot}));
  const auto path = g.path_to(Fact{"web", Privilege::kRoot});
  ASSERT_EQ(path.size(), 2u);
  EXPECT_NE(path[0].rule.find("GHTTPD"), std::string::npos);
  EXPECT_NE(path[1].rule.find("Sendmail"), std::string::npos);
}

TEST(AttackGraph, MultiHopReachesTheInternalHost) {
  // attacker -> web (remote) -> nfs (remote from web): three-step chain
  // ending root on the internal host via rpc.statd.
  const auto g = AttackGraph::build(test_network(), standard_rules(), {start()});
  EXPECT_TRUE(g.reachable(Fact{"nfs", Privilege::kRoot}));
  const auto path = g.path_to(Fact{"nfs", Privilege::kRoot});
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.back().to.host, "nfs");
  EXPECT_EQ(path.back().to.privilege, Privilege::kRoot);
  // Every step starts from an established fact (the chain is connected).
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(path[i].from, path[i - 1].to);
  }
}

TEST(AttackGraph, NoDirectReachMeansNoDirectCompromise) {
  // Remove the web->nfs link: nfs becomes unreachable.
  auto hosts = test_network();
  hosts[1].reaches.clear();
  const auto g = AttackGraph::build(hosts, standard_rules(), {start()});
  EXPECT_FALSE(g.reachable(Fact{"nfs", Privilege::kUser}));
  EXPECT_TRUE(g.path_to(Fact{"nfs", Privilege::kRoot}).empty());
}

TEST(AttackGraph, PatchingTheSteppingStoneCutsThePath) {
  // Lemma 2 writ large: patch ONE vulnerability on the path (ghttpd) and
  // the internal host survives — but only if no alternative path exists.
  auto rules = standard_rules();
  for (auto& r : rules) {
    if (r.software == "ghttpd") r.patched = true;
  }
  const auto g = AttackGraph::build(test_network(), rules, {start()});
  EXPECT_FALSE(g.reachable(Fact{"web", Privilege::kUser}));
  EXPECT_FALSE(g.reachable(Fact{"nfs", Privilege::kRoot}));
}

TEST(AttackGraph, AlternativePathsSurvivePartialPatching) {
  auto hosts = test_network();
  hosts[1].services.push_back("nullhttpd");  // a second remote service on web
  auto rules = standard_rules();
  for (auto& r : rules) {
    if (r.software == "ghttpd") r.patched = true;
  }
  const auto g = AttackGraph::build(hosts, rules, {start()});
  EXPECT_TRUE(g.reachable(Fact{"web", Privilege::kUser}));
  const auto path = g.path_to(Fact{"web", Privilege::kUser});
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path[0].rule.find("NULL HTTPD"), std::string::npos);
}

TEST(AttackGraph, LocalRulesNeedALocalAccount) {
  // A host running only sendmail (local-only exploit) cannot be attacked
  // from the network.
  const std::vector<Host> hosts = {{"attacker", {}, {"mail"}},
                                   {"mail", {"sendmail"}, {}}};
  const auto g = AttackGraph::build(hosts, standard_rules(), {start()});
  EXPECT_FALSE(g.reachable(Fact{"mail", Privilege::kRoot}));
  // But an insider account changes everything.
  const auto g2 = AttackGraph::build(
      hosts, standard_rules(), {start(), Fact{"mail", Privilege::kUser}});
  EXPECT_TRUE(g2.reachable(Fact{"mail", Privilege::kRoot}));
}

TEST(AttackGraph, RootSubsumesUserInGoalQueries) {
  const std::vector<Host> hosts = {{"attacker", {}, {"srv"}},
                                   {"srv", {"rpc.statd"}, {}}};
  const auto g = AttackGraph::build(hosts, standard_rules(), {start()});
  // statd yields root directly; a "user" goal is satisfied a fortiori.
  EXPECT_TRUE(g.reachable(Fact{"srv", Privilege::kUser}));
  EXPECT_FALSE(g.path_to(Fact{"srv", Privilege::kUser}).empty());
}

TEST(AttackGraph, PathToInitialFactIsEmpty) {
  const auto g = AttackGraph::build(test_network(), standard_rules(), {start()});
  EXPECT_TRUE(g.path_to(start()).empty());
  EXPECT_TRUE(g.reachable(start()));
}

TEST(AttackGraph, TextDumpNamesFactsAndRules) {
  const auto g = AttackGraph::build(test_network(), standard_rules(), {start()});
  const auto text = g.to_text();
  EXPECT_NE(text.find("web : user"), std::string::npos);
  EXPECT_NE(text.find("GHTTPD"), std::string::npos);
  EXPECT_NE(text.find("[initial]"), std::string::npos);
}

TEST(AttackGraph, StandardRulesCoverAllSevenModels) {
  EXPECT_EQ(standard_rules().size(), 7u);
  std::size_t remote = 0;
  for (const auto& r : standard_rules()) {
    if (r.remote) ++remote;
  }
  EXPECT_EQ(remote, 5u);  // nullhttpd, rwall, iis, ghttpd, statd
}

// --- compound patch scoring over the incremental sweep path ------------

/// GHTTPD is the only remote foothold onto "web" in test_network(); the
/// registry keeps paper order, so find it by name rather than index.
const apps::CaseStudy& ghttpd_study(
    const std::vector<std::unique_ptr<apps::CaseStudy>>& studies) {
  for (const auto& s : studies) {
    if (s->name().find("GHTTPD") != std::string::npos) return *s;
  }
  throw std::logic_error("no GHTTPD study in the registry");
}

TEST(CompoundPatch, ForeclosingPatchDisablesTheRuleAndCutsTheGraph) {
  const auto studies = apps::all_case_studies();
  const auto& ghttpd = ghttpd_study(studies);
  const std::size_t op = ghttpd.checks().front().operation_index;
  // Root on the web host needs the remote ghttpd foothold first; the
  // sendmail escalation is local-only.
  const Fact goal{"web", Privilege::kRoot};
  const auto score = score_compound_patch(
      test_network(), standard_rules(), {start()}, goal,
      {{&ghttpd, op, "GHTTPD #5960 stack overflow"}});
  EXPECT_TRUE(score.goal_reachable_before);
  EXPECT_FALSE(score.goal_reachable_after);
  ASSERT_EQ(score.rules.size(), 1u);
  EXPECT_TRUE(score.rules[0].forecloses);  // Lemma 2: securing one op foils
  EXPECT_EQ(score.rules[0].residual_exploited_masks, 0u);
  EXPECT_GT(score.rules[0].total_masks, 0u);
  EXPECT_LT(score.edges_after, score.edges_before);
  EXPECT_LT(score.facts_after, score.facts_before);
}

TEST(CompoundPatch, SharedStoreMakesRepeatScoringFree) {
  const auto studies = apps::all_case_studies();
  const auto& ghttpd = ghttpd_study(studies);
  const std::size_t op = ghttpd.checks().front().operation_index;
  const Fact goal{"web", Privilege::kRoot};
  const std::vector<CompoundPatchTarget> targets = {
      {&ghttpd, op, "GHTTPD #5960 stack overflow"}};

  SweepMemoStore store;
  const auto first = score_compound_patch(test_network(), standard_rules(),
                                          {start()}, goal, targets, &store);
  const auto warm = store.stats();
  EXPECT_GT(warm.misses, 0u);

  const auto second = score_compound_patch(test_network(), standard_rules(),
                                           {start()}, goal, targets, &store);
  const auto hot = store.stats();
  // The second what-if re-evaluates nothing: every cell is served.
  EXPECT_EQ(hot.misses, warm.misses);
  EXPECT_GT(hot.hits, warm.hits);
  ASSERT_EQ(second.rules.size(), first.rules.size());
  EXPECT_EQ(second.rules[0].forecloses, first.rules[0].forecloses);
  EXPECT_EQ(second.rules[0].residual_exploited_masks,
            first.rules[0].residual_exploited_masks);
  EXPECT_EQ(second.goal_reachable_after, first.goal_reachable_after);
}

// --- compound composition -> lint IR -----------------------------------

/// A hand-built two-hop path over the curated models: a remote foothold
/// followed by a local escalation on the same host. Rule labels equal
/// model names so compose_attack_path can pull the operations.
std::vector<AttackEdge> two_hop_path(const std::vector<core::FsmModel>& models,
                                     std::string* remote_name = nullptr,
                                     std::string* local_name = nullptr) {
  std::string ghttpd, sendmail;
  for (const auto& m : models) {
    if (m.name().find("GHTTPD") != std::string::npos) ghttpd = m.name();
    if (m.name().find("Sendmail") != std::string::npos) sendmail = m.name();
  }
  if (remote_name != nullptr) *remote_name = ghttpd;
  if (local_name != nullptr) *local_name = sendmail;
  return {
      AttackEdge{Fact{"attacker", Privilege::kRoot},
                 Fact{"web", Privilege::kUser}, ghttpd},
      AttackEdge{Fact{"web", Privilege::kUser}, Fact{"web", Privilege::kRoot},
                 sendmail},
  };
}

TEST(CompoundChainTest, ComposeFlattensThePathWithStepPrefixedNames) {
  const auto models = apps::standard_models();
  std::string remote_name;
  const auto path = two_hop_path(models, &remote_name);
  const auto cc = compose_attack_path(path, models);

  ASSERT_EQ(cc.steps.size(), 2u);
  EXPECT_EQ(cc.steps[0].rule, path[0].rule);
  EXPECT_EQ(cc.steps[0].pre, path[0].from);
  EXPECT_EQ(cc.steps[0].con, path[0].to);
  EXPECT_NE(cc.name.find("attack path:"), std::string::npos);
  EXPECT_NE(cc.name.find("[" + remote_name + "]"), std::string::npos);

  // Every operation/pFSM carries its step prefix, unique across steps.
  ASSERT_GE(cc.chain.size(), 2u);
  EXPECT_EQ(cc.chain.operations()[0].name().rfind("s1:", 0), 0u);
  EXPECT_EQ(cc.chain.operations()[cc.chain.size() - 1].name().rfind("s2:", 0),
            0u);
  for (const auto& op : cc.chain.operations()) {
    for (const auto& p : op.pfsms()) {
      EXPECT_EQ(p.name().substr(0, 1), "s");
    }
  }
  // Each step's final gate records the fact the edge establishes.
  EXPECT_NE(cc.chain.gates().back().condition.find("root@web via"),
            std::string::npos);
}

TEST(CompoundChainTest, ComposedPathPassesTheGraphConsistencyRules) {
  const auto models = apps::standard_models();
  const auto cc = compose_attack_path(two_hop_path(models), models);
  const auto ir = to_lint_model(cc);
  ASSERT_EQ(ir.compound.size(), 2u);
  EXPECT_EQ(ir.compound[0].con_host, "web");
  EXPECT_EQ(ir.compound[0].con_privilege, "user");
  EXPECT_EQ(ir.compound[1].pre_privilege, "user");

  staticlint::LintOptions gr_only;
  gr_only.rule_ids = {"GR001", "GR002", "GR003"};
  const auto run = staticlint::lint({ir}, gr_only);
  EXPECT_TRUE(run.findings.empty()) << run.findings.size() << " finding(s)";
}

TEST(CompoundChainTest, ReversedPathTripsTheDanglingPreconditionRule) {
  const auto models = apps::standard_models();
  auto path = two_hop_path(models);
  std::swap(path[0], path[1]);  // the remote hop now runs second, so its
                                // attacker-side precondition dangles
  const auto ir = to_lint_model(compose_attack_path(path, models));

  staticlint::LintOptions gr_only;
  gr_only.rule_ids = {"GR001", "GR002", "GR003"};
  const auto run = staticlint::lint({ir}, gr_only);
  ASSERT_FALSE(run.findings.empty());
  EXPECT_EQ(run.findings[0].rule_id, "GR001");
}

TEST(CompoundChainTest, ComposeRejectsEmptyPathsAndUnknownRules) {
  const auto models = apps::standard_models();
  EXPECT_THROW((void)compose_attack_path({}, models), std::invalid_argument);
  auto path = two_hop_path(models);
  path[0].rule = "no model is named this";
  EXPECT_THROW((void)compose_attack_path(path, models), std::invalid_argument);
}

TEST(CompoundPatch, RejectsNullStudyAndUnknownRule) {
  const auto studies = apps::all_case_studies();
  const auto& ghttpd = ghttpd_study(studies);
  const Fact goal{"web", Privilege::kRoot};
  EXPECT_THROW((void)score_compound_patch(
                   test_network(), standard_rules(), {start()}, goal,
                   {{nullptr, 0, "GHTTPD #5960 stack overflow"}}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)score_compound_patch(test_network(), standard_rules(), {start()},
                                 goal, {{&ghttpd, 0, "no such rule"}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace dfsm::analysis
