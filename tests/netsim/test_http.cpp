#include "netsim/http.h"

#include <gtest/gtest.h>

namespace dfsm::netsim {
namespace {

TEST(Atoi32, ParsesPlainIntegers) {
  EXPECT_EQ(atoi32("0"), 0);
  EXPECT_EQ(atoi32("1024"), 1024);
  EXPECT_EQ(atoi32("-800"), -800);
  EXPECT_EQ(atoi32("  42"), 42);
  EXPECT_EQ(atoi32("+7"), 7);
  EXPECT_EQ(atoi32("12abc"), 12);   // C atoi stops at the first non-digit
  EXPECT_EQ(atoi32("abc"), 0);
}

TEST(Atoi32, WrapsAtThirtyTwoBits) {
  // THE root cause of #3163: a value in (2^31, 2^32) wraps negative.
  EXPECT_EQ(atoi32("2147483647"), 2147483647);
  EXPECT_EQ(atoi32("2147483648"), -2147483648LL);
  EXPECT_EQ(atoi32("4294958848"), -8448);
  EXPECT_EQ(atoi32("4294967295"), -1);
  EXPECT_EQ(atoi32("4294967296"), 0);  // full wrap
}

TEST(Atol64, ParsesAndSaturates) {
  EXPECT_EQ(atol64("4294958848"), 4294958848LL);  // no 32-bit wrap here
  EXPECT_EQ(atol64("-42"), -42);
  EXPECT_EQ(atol64("99999999999999999999999"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(atol64("-99999999999999999999999"),
            std::numeric_limits<std::int64_t>::min());
}

TEST(HttpParse, RoundTripThroughSerialize) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/cgi-bin/upload";
  req.headers["content-length"] = "300";
  req.headers["host"] = "victim";
  const std::string raw = serialize(req, "0123456789");

  std::size_t consumed = 0;
  const auto parsed = parse_head(raw, &consumed);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->path, "/cgi-bin/upload");
  EXPECT_EQ(parsed->headers.at("content-length"), "300");
  EXPECT_EQ(raw.substr(consumed), "0123456789");
}

TEST(HttpParse, HeaderKeysAreCaseInsensitive) {
  const std::string raw =
      "POST / HTTP/1.0\r\nContent-Length: -800\r\nX-Other: v\r\n\r\nbody";
  const auto parsed = parse_head(raw);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->content_length());
  EXPECT_EQ(*parsed->content_length(), -800);
}

TEST(HttpParse, MissingContentLengthIsNullopt) {
  const auto parsed = parse_head("GET / HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(parsed);
  EXPECT_FALSE(parsed->content_length());
}

TEST(HttpParse, ContentLengthUsesAtoiSemantics) {
  const auto parsed =
      parse_head("POST / HTTP/1.0\r\ncontent-length: 4294958848\r\n\r\n");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed->content_length(), -8448);  // silent 32-bit wrap
}

TEST(HttpParse, IncompleteHeadRejected) {
  EXPECT_FALSE(parse_head("POST / HTTP/1.0\r\ncontent-length: 3\r\n"));
  EXPECT_FALSE(parse_head(""));
}

TEST(HttpParse, MalformedHeaderLineRejected) {
  EXPECT_FALSE(parse_head("POST / HTTP/1.0\r\nno-colon-here\r\n\r\n"));
}

TEST(HttpParse, MalformedRequestLineRejected) {
  EXPECT_FALSE(parse_head("JUSTONE\r\n\r\n"));
}

TEST(HttpParse, HeaderValuesAreTrimmed) {
  const auto parsed = parse_head("GET / HTTP/1.0\r\nk:   spaced   \r\n\r\n");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->headers.at("k"), "spaced");
}

}  // namespace
}  // namespace dfsm::netsim
