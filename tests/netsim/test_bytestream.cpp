#include "netsim/bytestream.h"

#include <gtest/gtest.h>

namespace dfsm::netsim {
namespace {

TEST(ByteStream, RecvReturnsQueuedBytesUpToMax) {
  ByteStream s;
  s.send(std::string("abcdef"));
  std::vector<std::uint8_t> buf;
  EXPECT_EQ(s.recv(buf, 4), 4);
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{'a', 'b', 'c', 'd'}));
  EXPECT_EQ(s.recv(buf, 4), 2);
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{'e', 'f'}));
}

TEST(ByteStream, EmptyStreamReportsEof) {
  ByteStream s;
  std::vector<std::uint8_t> buf;
  EXPECT_EQ(s.recv(buf, 16), 0);
  EXPECT_TRUE(buf.empty());
}

TEST(ByteStream, PendingTracksQueueDepth) {
  ByteStream s;
  EXPECT_EQ(s.pending(), 0u);
  s.send(std::string("xyz"));
  EXPECT_EQ(s.pending(), 3u);
  std::vector<std::uint8_t> buf;
  (void)s.recv(buf, 2);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(ByteStream, SpanSendMatchesStringSend) {
  ByteStream s;
  const std::vector<std::uint8_t> bytes{0, 1, 255};
  s.send(bytes);
  std::vector<std::uint8_t> buf;
  EXPECT_EQ(s.recv(buf, 16), 3);
  EXPECT_EQ(buf, bytes);
}

TEST(ByteStream, ErrorIsOneShotAndPrecedesData) {
  ByteStream s;
  s.send(std::string("keep"));
  s.inject_error();
  std::vector<std::uint8_t> buf;
  EXPECT_EQ(s.recv(buf, 16), -1);
  EXPECT_EQ(s.recv(buf, 16), 4);
}

TEST(ByteStream, CloseWriteFlagVisible) {
  ByteStream s;
  EXPECT_FALSE(s.write_closed());
  s.close_write();
  EXPECT_TRUE(s.write_closed());
}

TEST(ByteStream, BinaryBytesSurviveRoundTrip) {
  ByteStream s;
  std::vector<std::uint8_t> all(256);
  for (int i = 0; i < 256; ++i) all[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  s.send(all);
  std::vector<std::uint8_t> buf;
  EXPECT_EQ(s.recv(buf, 256), 256);
  EXPECT_EQ(buf, all);
}

}  // namespace
}  // namespace dfsm::netsim
