#include "netsim/decode.h"

#include <gtest/gtest.h>

namespace dfsm::netsim {
namespace {

TEST(PercentDecode, BasicEscapes) {
  EXPECT_EQ(percent_decode("%2f"), "/");
  EXPECT_EQ(percent_decode("%2F"), "/");
  EXPECT_EQ(percent_decode("%25"), "%");
  EXPECT_EQ(percent_decode("a%20b"), "a b");
  EXPECT_EQ(percent_decode("plain"), "plain");
}

TEST(PercentDecode, MalformedEscapesPassThrough) {
  EXPECT_EQ(percent_decode("%zz"), "%zz");
  EXPECT_EQ(percent_decode("%2"), "%2");
  EXPECT_EQ(percent_decode("%"), "%");
  EXPECT_EQ(percent_decode("100%"), "100%");
}

TEST(PercentDecode, TheIisDoubleDecodeChain) {
  // Paper footnote 10: "%25" -> '%', "%2f" -> '/', so "..%252f" becomes
  // "..%2f" after the first decoding and "../" after the second.
  EXPECT_EQ(percent_decode("..%252f"), "..%2f");
  EXPECT_EQ(percent_decode("..%2f"), "../");
  EXPECT_EQ(percent_decode_twice("..%252f"), "../");
}

TEST(ContainsDotdot, DetectsTraversals) {
  EXPECT_TRUE(contains_dotdot("../x"));
  EXPECT_TRUE(contains_dotdot("a/../b"));
  EXPECT_TRUE(contains_dotdot("a/.."));
  EXPECT_TRUE(contains_dotdot(".."));
  EXPECT_TRUE(contains_dotdot("..\\windows"));
  EXPECT_FALSE(contains_dotdot("..%2f"));  // the encoded form slips through
  EXPECT_FALSE(contains_dotdot("a..b/c"));
  EXPECT_FALSE(contains_dotdot("normal/path"));
  EXPECT_FALSE(contains_dotdot("trailing.."));  // not a path component
}

TEST(LexicallyNormalize, CollapsesDotAndDotdot) {
  EXPECT_EQ(lexically_normalize("/a/b/../c"), "/a/c");
  EXPECT_EQ(lexically_normalize("/a/./b"), "/a/b");
  EXPECT_EQ(lexically_normalize("a//b"), "a/b");
  EXPECT_EQ(lexically_normalize("/"), "/");
  EXPECT_EQ(lexically_normalize(""), ".");
}

TEST(LexicallyNormalize, RootEscapesAreClamped) {
  // POSIX: /.. at the root stays at the root.
  EXPECT_EQ(lexically_normalize("/../etc/passwd"), "/etc/passwd");
  EXPECT_EQ(lexically_normalize("/dev/../etc/passwd"), "/etc/passwd");
}

TEST(LexicallyNormalize, RelativeEscapesPreserved) {
  EXPECT_EQ(lexically_normalize("../x"), "../x");
  EXPECT_EQ(lexically_normalize("a/../../x"), "../x");
}

TEST(StaysUnder, ContainmentJudgments) {
  EXPECT_TRUE(stays_under("/wwwroot/scripts", "hello.cgi"));
  EXPECT_TRUE(stays_under("/wwwroot/scripts", "sub/dir/tool.cgi"));
  EXPECT_TRUE(stays_under("/wwwroot/scripts", "a/../b.cgi"));
  EXPECT_FALSE(stays_under("/wwwroot/scripts", "../secret"));
  EXPECT_FALSE(stays_under("/wwwroot/scripts", "../../winnt/system32/cmd.exe"));
  // Prefix trickery: /wwwroot/scripts-evil is NOT under /wwwroot/scripts.
  EXPECT_FALSE(stays_under("/wwwroot/scripts", "../scripts-evil/x"));
  EXPECT_TRUE(stays_under("/wwwroot/scripts", "."));
}

}  // namespace
}  // namespace dfsm::netsim
