// Size-parameterized corpus generation: scaled_plan apportionment,
// snapshot byte-identity, Figure-1 proportions at 10^6 records, and
// thread-count independence of the parallel generator.
#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

#include "bugtraq/corpus.h"
#include "bugtraq/stats.h"
#include "runtime/thread_pool.h"

namespace dfsm::bugtraq {
namespace {

TEST(ScaledPlan, SnapshotSizeIsTheDefaultPlanExactly) {
  EXPECT_EQ(scaled_plan(kBugtraqSize2002), CorpusPlan{});
}

TEST(ScaledPlan, TotalsMatchEveryRequestedSize) {
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{11},
        std::size_t{100}, std::size_t{5924}, std::size_t{5926},
        std::size_t{59250}, std::size_t{123457}, std::size_t{1000000}}) {
    const auto plan = scaled_plan(n);
    EXPECT_EQ(plan.total(), n) << "n=" << n;
    // Studied sub-counts must fit inside their host categories at any n.
    EXPECT_LE(plan.stack_overflow + plan.heap_overflow +
                  plan.integer_overflow_boundary,
              plan.boundary_condition)
        << "n=" << n;
    EXPECT_LE(plan.format_string + plan.integer_overflow_input,
              plan.input_validation)
        << "n=" << n;
    EXPECT_LE(plan.integer_overflow_access, plan.access_validation) << "n=" << n;
    EXPECT_LE(plan.file_race, plan.race_condition) << "n=" << n;
  }
}

TEST(ScaledCorpus, SnapshotSizeIsByteIdenticalToTheDefaultGenerator) {
  EXPECT_EQ(synthetic_corpus_n(kBugtraqSize2002, 77).to_csv(),
            synthetic_corpus(77).to_csv());
}

TEST(ScaledCorpus, DeterministicInSeedAndSize) {
  const auto a = synthetic_corpus_n(10000, 9);
  const auto b = synthetic_corpus_n(10000, 9);
  const auto c = synthetic_corpus_n(10000, 10);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_NE(a.to_csv(), c.to_csv());
  EXPECT_EQ(a.count_by_category(), c.count_by_category());
}

TEST(ScaledCorpus, TinySizesGenerate) {
  EXPECT_EQ(synthetic_corpus_n(0).size(), 0u);
  EXPECT_EQ(synthetic_corpus_n(1).size(), 1u);
  EXPECT_EQ(synthetic_corpus_n(37).size(), 37u);
}

TEST(ScaledCorpus, GenerationIsThreadCountIndependent) {
  runtime::ThreadPool::set_global_threads(1);
  const auto serial = synthetic_corpus_n(10000, 5).to_csv();
  runtime::ThreadPool::set_global_threads(4);
  const auto parallel = synthetic_corpus_n(10000, 5).to_csv();
  runtime::ThreadPool::set_global_threads(runtime::ThreadPool::default_threads());
  EXPECT_EQ(serial, parallel);
}

// The satellite acceptance check: at a million records, every Figure-1
// category share is within ±0.5 percentage points of the snapshot's.
TEST(ScaledCorpus, MillionRecordHistogramMatchesFigure1Fractions) {
  constexpr std::size_t kMillion = 1'000'000;
  const auto db = synthetic_corpus_n(kMillion, 42);
  ASSERT_EQ(db.size(), kMillion);
  const auto counts = db.count_by_category();
  const auto reference = synthetic_corpus();  // the Figure-1 snapshot
  const auto ref_counts = reference.count_by_category();
  for (Category c : kAllCategories) {
    const double share =
        100.0 * static_cast<double>(counts.at(c)) / static_cast<double>(kMillion);
    const double ref_share = 100.0 * static_cast<double>(ref_counts.at(c)) /
                             static_cast<double>(kBugtraqSize2002);
    EXPECT_NEAR(share, ref_share, 0.5) << to_string(c);
  }
  // The §1 coverage claim survives scaling too.
  const auto share = studied_share(db);
  EXPECT_NEAR(share.percent, 22.0, 0.5);
}

}  // namespace
}  // namespace dfsm::bugtraq
