// Binary columnar snapshots (colsnap.h): round-trip byte-identity
// against the CSV path, encode determinism across thread counts, and
// the loader's "<file>:<column>: <reason>" refusal on every defect
// class — corrupt checksum, truncation, bad codes, reordered shards,
// torn (mixed-epoch) publishes, trailing bytes.
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bugtraq/colsnap.h"
#include "bugtraq/corpus.h"
#include "bugtraq/csv_shards.h"
#include "bugtraq/curated.h"
#include "runtime/thread_pool.h"

namespace dfsm::bugtraq {
namespace {

namespace fs = std::filesystem;

class ColsnapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dfsm-colsnap-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string base(const char* name) const {
    return (dir_ / name).string();
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    return {std::istreambuf_iterator<char>{in},
            std::istreambuf_iterator<char>{}};
  }

  static void spit(const std::string& path, const std::string& bytes) {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << bytes;
  }

  fs::path dir_;
};

TEST_F(ColsnapTest, ShardPathNaming) {
  EXPECT_EQ(colsnap_shard_path("/tmp/c", 3, 8), "/tmp/c-00003-of-00008.colsnap");
  const auto paths = colsnap_shard_paths("x", 2);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "x-00000-of-00002.colsnap");
  EXPECT_EQ(paths[1], "x-00001-of-00002.colsnap");
}

TEST_F(ColsnapTest, RoundTripMatchesCsvShardsByteForByte) {
  const auto db = synthetic_corpus_n(2000, 7);
  const auto csv_paths = write_csv_shards(db, base("c"), 4);
  const auto snap_paths = write_colsnap_shards(db, base("s"), 4);
  ASSERT_EQ(snap_paths.size(), 4u);

  const Database via_csv = read_csv_shards(csv_paths);
  const Database via_snap = read_colsnap_shards(snap_paths);
  EXPECT_EQ(via_snap.to_csv(), via_csv.to_csv());
  EXPECT_EQ(via_snap.to_csv(), db.to_csv());
  EXPECT_EQ(via_snap.count_by_category(), db.count_by_category());
  EXPECT_EQ(via_snap.count_by_class(), db.count_by_class());
  EXPECT_EQ(via_snap.count_by_year(), db.count_by_year());
  EXPECT_EQ(via_snap.count_by_software(), db.count_by_software());
  EXPECT_EQ(via_snap.epoch(), 1u);
  // A reloaded corpus re-encodes to the same bytes (same partition, same
  // interning order) apart from the header epoch, which records the
  // source database's publication count.
  const auto again = encode_colsnap_shards(*via_snap.snapshot(), 4);
  for (std::size_t i = 0; i < 4; ++i) {
    std::string orig = slurp(snap_paths[i]);
    std::string re = again[i];
    ASSERT_GE(orig.size(), kColsnapHeaderSize);
    orig.replace(colsnap_epoch_offset(), 8, 8, '\0');
    re.replace(colsnap_epoch_offset(), 8, 8, '\0');
    EXPECT_EQ(re, orig) << "shard " << i;
  }
}

TEST_F(ColsnapTest, CuratedCorpusWithActivitiesRoundTrips) {
  const auto db = curated_records();
  ASSERT_GT(db.size(), 0u);
  const auto paths = write_colsnap_shards(db, base("cur"), 3);
  const Database back = read_colsnap_shards(paths);
  EXPECT_EQ(back.to_csv(), db.to_csv());
  // Activities and reference indices survive the binary encoding.
  const auto orig = db.snapshot();
  const auto got = back.snapshot();
  ASSERT_EQ(got->size(), orig->size());
  for (std::size_t i = 0; i < orig->size(); ++i) {
    EXPECT_EQ(got->records()[i].activities, orig->records()[i].activities);
    EXPECT_EQ(got->records()[i].reference_activity,
              orig->records()[i].reference_activity);
  }
}

TEST_F(ColsnapTest, EncodeIsThreadCountIndependent) {
  const auto db = synthetic_corpus_n(3000, 11);
  const auto snap = db.snapshot();
  runtime::ThreadPool::set_global_threads(1);
  const auto serial = encode_colsnap_shards(*snap, 5);
  runtime::ThreadPool::set_global_threads(4);
  const auto parallel = encode_colsnap_shards(*snap, 5);
  runtime::ThreadPool::set_global_threads(
      runtime::ThreadPool::default_threads());
  EXPECT_EQ(serial, parallel);
}

TEST_F(ColsnapTest, EmptyCorpusRoundTrips) {
  const Database empty;
  const auto paths = write_colsnap_shards(empty, base("e"), 3);
  ASSERT_EQ(paths.size(), 3u);
  const Database back = read_colsnap_shards(paths);
  EXPECT_EQ(back.size(), 0u);
  EXPECT_EQ(back.to_csv(), empty.to_csv());
}

TEST_F(ColsnapTest, SingleShardRoundTrips) {
  const auto db = synthetic_corpus_n(100, 3);
  const auto paths = write_colsnap_shards(db, base("one"), 1);
  EXPECT_EQ(read_colsnap_shards(paths).to_csv(), db.to_csv());
}

TEST_F(ColsnapTest, BlockRefsListColumnsInOrder) {
  const auto db = synthetic_corpus_n(50, 1);
  const auto bodies = encode_colsnap_shards(*db.snapshot(), 1);
  const auto refs = colsnap_block_refs(bodies[0]);
  ASSERT_EQ(refs.size(), 11u);
  EXPECT_EQ(refs[0].name, "software_table");
  EXPECT_EQ(refs[1].name, "id");
  EXPECT_EQ(refs[10].name, "activities");
  // Blocks tile the file exactly: last payload ends at EOF.
  EXPECT_EQ(refs.back().payload_offset + refs.back().payload_len,
            bodies[0].size());
}

class ColsnapCorruptionTest : public ColsnapTest {
 protected:
  /// Writes a 2-shard snapshot of a small corpus and returns its paths.
  std::vector<std::string> write_two_shards() {
    const auto db = synthetic_corpus_n(200, 5);
    return write_colsnap_shards(db, base("x"), 2);
  }

  static void expect_refusal(const std::vector<std::string>& paths,
                             const std::string& needle) {
    try {
      const Database db = read_colsnap_shards(paths);
      FAIL() << "loader accepted a defective snapshot (" << db.size()
             << " records); wanted error containing '" << needle << "'";
    } catch (const std::invalid_argument& ex) {
      EXPECT_NE(std::string(ex.what()).find(needle), std::string::npos)
          << "actual error: " << ex.what();
    }
  }
};

TEST_F(ColsnapCorruptionTest, CorruptPayloadByteIsAChecksumMismatch) {
  const auto paths = write_two_shards();
  std::string bytes = slurp(paths[1]);
  const auto refs = colsnap_block_refs(bytes);
  // Flip a byte inside the year column's payload.
  const auto& year = refs[2];
  ASSERT_EQ(year.name, "year");
  ASSERT_GT(year.payload_len, 0u);
  bytes[year.payload_offset + year.payload_len / 2] ^= 0x40;
  spit(paths[1], bytes);
  expect_refusal(paths, paths[1] + ":year: checksum mismatch");
}

TEST_F(ColsnapCorruptionTest, TruncatedColumnBlockIsRefused) {
  const auto paths = write_two_shards();
  std::string bytes = slurp(paths[0]);
  const auto refs = colsnap_block_refs(bytes);
  const auto& title = refs[8];
  ASSERT_EQ(title.name, "title");
  bytes.resize(title.payload_offset + title.payload_len / 2);
  spit(paths[0], bytes);
  expect_refusal(paths, paths[0] + ":title: truncated column block");
}

TEST_F(ColsnapCorruptionTest, TornPublishMixedEpochsIsRefused) {
  const auto paths = write_two_shards();
  std::string bytes = slurp(paths[1]);
  // Pretend shard 1 was written by an older publication.
  bytes[colsnap_epoch_offset()] =
      static_cast<char>(bytes[colsnap_epoch_offset()] + 1);
  spit(paths[1], bytes);
  expect_refusal(paths, paths[1] + ":header: snapshot epoch");
  expect_refusal(paths, "torn publish");
}

TEST_F(ColsnapCorruptionTest, BadMagicIsRefused) {
  const auto paths = write_two_shards();
  std::string bytes = slurp(paths[0]);
  bytes[0] = 'X';
  spit(paths[0], bytes);
  expect_refusal(paths, paths[0] + ":header: bad magic");
}

TEST_F(ColsnapCorruptionTest, UnsupportedVersionIsRefused) {
  const auto paths = write_two_shards();
  std::string bytes = slurp(paths[0]);
  bytes[8] = 99;
  spit(paths[0], bytes);
  expect_refusal(paths, paths[0] + ":header: unsupported snapshot version 99");
}

TEST_F(ColsnapCorruptionTest, ReorderedShardFilesAreRefused) {
  auto paths = write_two_shards();
  std::swap(paths[0], paths[1]);
  expect_refusal(paths, ":header: shard index");
}

TEST_F(ColsnapCorruptionTest, MissingShardIsRefused) {
  auto paths = write_two_shards();
  paths.pop_back();
  expect_refusal(paths, ":header: shard count 2 does not match 1 files");
}

TEST_F(ColsnapCorruptionTest, TrailingBytesAreRefused) {
  const auto paths = write_two_shards();
  std::string bytes = slurp(paths[1]);
  bytes += "junk";
  spit(paths[1], bytes);
  expect_refusal(paths, paths[1] + ":trailer: 4 trailing bytes");
}

TEST_F(ColsnapCorruptionTest, UnreadableShardThrowsRuntimeError) {
  auto paths = write_two_shards();
  paths[1] = base("missing.colsnap");
  EXPECT_THROW((void)read_colsnap_shards(paths), std::runtime_error);
}

}  // namespace
}  // namespace dfsm::bugtraq
