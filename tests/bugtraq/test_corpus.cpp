#include "bugtraq/corpus.h"

#include <gtest/gtest.h>

namespace dfsm::bugtraq {
namespace {

TEST(CorpusPlan, DefaultTotalsMatchThePublishedDatabaseSize) {
  const CorpusPlan plan;
  EXPECT_EQ(plan.total(), kBugtraqSize2002);
  EXPECT_EQ(plan.total(), 5925u);
}

TEST(CorpusPlan, StudiedTotalIsTwentyTwoPercent) {
  const CorpusPlan plan;
  const double share = 100.0 * static_cast<double>(plan.studied_total()) /
                       static_cast<double>(plan.total());
  EXPECT_NEAR(share, 22.0, 0.05);  // §1: "22% of all vulnerabilities"
}

TEST(Corpus, GeneratesExactlyTheDatabaseSize) {
  const auto db = synthetic_corpus();
  EXPECT_EQ(db.size(), kBugtraqSize2002);
}

TEST(Corpus, CategoryCountsMatchThePlanExactly) {
  const auto db = synthetic_corpus();
  const auto counts = db.count_by_category();
  const CorpusPlan plan;
  EXPECT_EQ(counts.at(Category::kInputValidationError), plan.input_validation);
  EXPECT_EQ(counts.at(Category::kBoundaryConditionError), plan.boundary_condition);
  EXPECT_EQ(counts.at(Category::kDesignError), plan.design);
  EXPECT_EQ(counts.at(Category::kFailureToHandleExceptionalConditions),
            plan.failure_to_handle);
  EXPECT_EQ(counts.at(Category::kAccessValidationError), plan.access_validation);
  EXPECT_EQ(counts.at(Category::kRaceConditionError), plan.race_condition);
  EXPECT_EQ(counts.at(Category::kConfigurationError), plan.configuration);
  EXPECT_EQ(counts.at(Category::kOriginValidationError), plan.origin_validation);
  EXPECT_EQ(counts.at(Category::kAtomicityError), plan.atomicity);
  EXPECT_EQ(counts.at(Category::kEnvironmentError), plan.environment);
  EXPECT_EQ(counts.at(Category::kSerializationError), plan.serialization);
  EXPECT_EQ(counts.at(Category::kUnknown), plan.unknown);
}

TEST(Corpus, ClassCountsMatchThePlan) {
  const auto db = synthetic_corpus();
  const auto by_class = db.count_by_class();
  const CorpusPlan plan;
  EXPECT_EQ(by_class.at(VulnClass::kStackBufferOverflow), plan.stack_overflow);
  EXPECT_EQ(by_class.at(VulnClass::kHeapOverflow), plan.heap_overflow);
  EXPECT_EQ(by_class.at(VulnClass::kFormatString), plan.format_string);
  EXPECT_EQ(by_class.at(VulnClass::kFileRaceCondition), plan.file_race);
  EXPECT_EQ(by_class.at(VulnClass::kIntegerOverflow),
            plan.integer_overflow_input + plan.integer_overflow_boundary +
                plan.integer_overflow_access);
}

TEST(Corpus, IntegerOverflowSpreadsAcrossThreeCategoriesLikeTable1) {
  const auto db = synthetic_corpus();
  const auto in_cat = [&db](Category c) {
    return db.count([c](const VulnRecord& r) {
      return r.vuln_class == VulnClass::kIntegerOverflow && r.category == c;
    });
  };
  EXPECT_GT(in_cat(Category::kInputValidationError), 0u);
  EXPECT_GT(in_cat(Category::kBoundaryConditionError), 0u);
  EXPECT_GT(in_cat(Category::kAccessValidationError), 0u);
}

TEST(Corpus, DeterministicInSeed) {
  const auto a = synthetic_corpus(123);
  const auto b = synthetic_corpus(123);
  const auto c = synthetic_corpus(456);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_NE(a.to_csv(), c.to_csv());
  // Different seeds still produce the same marginals.
  EXPECT_EQ(c.count_by_category(), a.count_by_category());
}

TEST(Corpus, SyntheticIdsAreUniqueAndHigh) {
  const auto db = synthetic_corpus();
  for (const auto& r : db.records()) {
    EXPECT_GE(r.id, 100000);  // never collides with curated real IDs
  }
  // Uniqueness is enforced by Database::add; reaching here proves it.
}

TEST(Corpus, YearsSpanTheStudyWindow) {
  const auto db = synthetic_corpus();
  for (const auto& r : db.records()) {
    EXPECT_GE(r.year, 1999);
    EXPECT_LE(r.year, 2002);
  }
}

TEST(Corpus, InvalidPlanRejected) {
  CorpusPlan bad;
  bad.unknown += 1;  // total no longer 5925
  EXPECT_THROW((void)synthetic_corpus(1, bad), std::invalid_argument);

  CorpusPlan inconsistent;
  inconsistent.stack_overflow = inconsistent.boundary_condition + 1;
  EXPECT_THROW((void)synthetic_corpus(1, inconsistent), std::invalid_argument);
}

TEST(Splitmix, DeterministicSequence) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_NE(s1, 42u);  // state advances
}

}  // namespace
}  // namespace dfsm::bugtraq
