// Sharded CSV equivalence: write -> read -> write is byte-identical,
// parallel reads equal serial reads at 10^5 records, and shard file
// layout is a pure function of (size, shard count).
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bugtraq/corpus.h"
#include "bugtraq/csv_shards.h"
#include "runtime/thread_pool.h"

namespace dfsm::bugtraq {
namespace {

namespace fs = std::filesystem;

class CsvShardsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dfsm-shards-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string base(const char* name) const {
    return (dir_ / name).string();
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  }

  fs::path dir_;
};

TEST_F(CsvShardsTest, ShardPathNaming) {
  EXPECT_EQ(shard_path("/tmp/c", 3, 8), "/tmp/c-00003-of-00008.csv");
  const auto paths = shard_paths("x", 2);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "x-00000-of-00002.csv");
  EXPECT_EQ(paths[1], "x-00001-of-00002.csv");
}

TEST_F(CsvShardsTest, WriteReadWriteIsByteIdentical) {
  const auto db = synthetic_corpus_n(2000, 7);
  const auto first = write_csv_shards(db, base("a"), 4);
  ASSERT_EQ(first.size(), 4u);

  const auto restored = read_csv_shards(first);
  EXPECT_EQ(restored.to_csv(), db.to_csv());

  const auto second = write_csv_shards(restored, base("b"), 4);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(slurp(first[i]), slurp(second[i])) << "shard " << i;
  }
}

TEST_F(CsvShardsTest, ShardContentsAreThreadCountIndependent) {
  const auto db = synthetic_corpus_n(3000, 3);
  runtime::ThreadPool::set_global_threads(1);
  const auto serial = write_csv_shards(db, base("serial"), 5);
  runtime::ThreadPool::set_global_threads(4);
  const auto parallel = write_csv_shards(db, base("parallel"), 5);
  runtime::ThreadPool::set_global_threads(runtime::ThreadPool::default_threads());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(slurp(serial[i]), slurp(parallel[i])) << "shard " << i;
  }
}

TEST_F(CsvShardsTest, ParallelReadEqualsSerialReadAtHundredThousand) {
  const auto db = synthetic_corpus_n(100'000, 42);
  const auto paths = write_csv_shards(db, base("big"), 8);
  const auto expected = db.to_csv();

  runtime::ThreadPool::set_global_threads(1);
  const auto serial = read_csv_shards(paths);
  runtime::ThreadPool::set_global_threads(4);
  const auto parallel = read_csv_shards(paths);
  runtime::ThreadPool::set_global_threads(runtime::ThreadPool::default_threads());

  EXPECT_EQ(serial.to_csv(), expected);
  EXPECT_EQ(parallel.to_csv(), expected);
  EXPECT_EQ(serial.count_by_category(), parallel.count_by_category());
}

TEST_F(CsvShardsTest, MoreShardsThanRecordsPadsWithHeaderOnlyFiles) {
  const auto db = synthetic_corpus_n(3, 1);
  const auto paths = write_csv_shards(db, base("tiny"), 8);
  ASSERT_EQ(paths.size(), 8u);
  for (std::size_t i = 3; i < 8; ++i) {
    const auto text = slurp(paths[i]);
    EXPECT_EQ(text.find('\n'), text.size() - 1) << "shard " << i
        << " should be header-only";
  }
  EXPECT_EQ(read_csv_shards(paths).to_csv(), db.to_csv());
}

TEST_F(CsvShardsTest, EmptyDatabaseRoundTrips) {
  const Database empty;
  const auto paths = write_csv_shards(empty, base("empty"), 3);
  ASSERT_EQ(paths.size(), 3u);
  const auto restored = read_csv_shards(paths);
  EXPECT_EQ(restored.size(), 0u);
  EXPECT_EQ(restored.to_csv(), empty.to_csv());
}

TEST_F(CsvShardsTest, ZeroShardCountMeansOne) {
  const auto db = synthetic_corpus_n(10, 2);
  const auto paths = write_csv_shards(db, base("one"), 0);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(read_csv_shards(paths).to_csv(), db.to_csv());
}

TEST_F(CsvShardsTest, MissingShardFileThrows) {
  EXPECT_THROW((void)read_csv_shards({base("nope") + ".csv"}), std::runtime_error);
}

TEST_F(CsvShardsTest, MalformedShardThrows) {
  const auto path = base("bad") + ".csv";
  std::ofstream{path} << "not,a,valid,header\n";
  EXPECT_THROW((void)read_csv_shards({path}), std::invalid_argument);
}

// --- strict error context (DESIGN.md §9) --------------------------------

TEST_F(CsvShardsTest, ParseErrorCarriesShardPathAndLine) {
  const auto db = synthetic_corpus_n(4, 9);
  auto csv = db.to_csv();
  // Corrupt the id of the SECOND data row — line 3 of the shard (header
  // is line 1) — and demand the exact "<path>:<line>: <reason>" message.
  std::size_t pos = csv.find('\n');            // end of header
  pos = csv.find('\n', pos + 1);               // end of row 1
  const std::size_t row_begin = pos + 1;
  const std::string id = csv.substr(row_begin, csv.find(',', row_begin) - row_begin);
  csv.insert(row_begin, 1, 'x');
  const auto path = base("ctx") + ".csv";
  std::ofstream{path, std::ios::binary} << csv;
  try {
    (void)read_csv_shards({path});
    FAIL() << "malformed row must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), path + ":3: bad id 'x" + id + "'");
  }
}

TEST_F(CsvShardsTest, FieldCountErrorCarriesShardPathAndLine) {
  const auto db = synthetic_corpus_n(2, 9);
  const auto csv = db.to_csv();
  const auto path = base("short") + ".csv";
  std::ofstream{path, std::ios::binary}
      << csv.substr(0, csv.find('\n') + 1) << "only,three,fields\n";
  try {
    (void)read_csv_shards({path});
    FAIL() << "short row must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              path + ":2: bad CSV row: expected 10 fields, got 3");
  }
}

// --- CSV edge cases ------------------------------------------------------

TEST_F(CsvShardsTest, CrlfLineEndingsParse) {
  const auto db = synthetic_corpus_n(50, 5);
  auto csv = db.to_csv();
  std::string crlf;
  for (char c : csv) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  const auto path = base("crlf") + ".csv";
  std::ofstream{path, std::ios::binary} << crlf;
  EXPECT_EQ(read_csv_shards({path}).to_csv(), csv);
}

TEST_F(CsvShardsTest, MissingTrailingNewlineParses) {
  const auto db = synthetic_corpus_n(20, 5);
  auto csv = db.to_csv();
  ASSERT_EQ(csv.back(), '\n');
  const auto path = base("torn") + ".csv";
  std::ofstream{path, std::ios::binary} << csv.substr(0, csv.size() - 1);
  EXPECT_EQ(read_csv_shards({path}).to_csv(), csv);
}

TEST_F(CsvShardsTest, Utf8BomIsSkipped) {
  const auto db = synthetic_corpus_n(20, 5);
  const auto csv = db.to_csv();
  const auto path = base("bom") + ".csv";
  std::ofstream{path, std::ios::binary} << "\xEF\xBB\xBF" << csv;
  EXPECT_EQ(read_csv_shards({path}).to_csv(), csv);
}

TEST_F(CsvShardsTest, HeaderOnlyShardFollowedByPopulatedShard) {
  const auto db = synthetic_corpus_n(30, 5);
  const auto csv = db.to_csv();
  const auto empty_path = base("h0") + ".csv";
  const auto full_path = base("h1") + ".csv";
  std::ofstream{empty_path, std::ios::binary} << csv.substr(0, csv.find('\n') + 1);
  std::ofstream{full_path, std::ios::binary} << csv;
  EXPECT_EQ(read_csv_shards({empty_path, full_path}).to_csv(), csv);
}

TEST_F(CsvShardsTest, EmptyPathsVectorYieldsEmptyDatabase) {
  const auto db = read_csv_shards(std::vector<std::string>{});
  EXPECT_EQ(db.size(), 0u);
}

// --- policy-aware reader (IngestOptions) ---------------------------------

TEST_F(CsvShardsTest, LenientQuarantinesBadRowAndKeepsRest) {
  const auto db = synthetic_corpus_n(40, 5);
  const auto paths = write_csv_shards(db, base("len"), 2);
  auto text = slurp(paths[0]);
  const std::size_t row_begin = text.find('\n') + 1;
  text.insert(row_begin, 1, 'x');  // first data row's id goes bad
  const std::string raw_row = text.substr(row_begin, text.find('\n', row_begin) - row_begin);
  std::ofstream{paths[0], std::ios::binary | std::ios::trunc} << text;

  IngestOptions options;
  options.policy = IngestPolicy::kLenient;
  const auto result = read_csv_shards(paths, options);
  EXPECT_EQ(result.db.size(), 39u);
  EXPECT_EQ(result.report.ingested, 39u);
  ASSERT_EQ(result.report.rows.size(), 1u);
  const auto& row = result.report.rows[0];
  EXPECT_EQ(row.shard, paths[0]);
  EXPECT_EQ(row.line, 2u);
  EXPECT_EQ(row.raw, raw_row);
  EXPECT_NE(row.reason.find("bad id"), std::string::npos);
  EXPECT_TRUE(result.report.shards.empty());
}

TEST_F(CsvShardsTest, LenientQuarantinesBadHeaderShardWhole) {
  const auto db = synthetic_corpus_n(40, 5);
  const auto paths = write_csv_shards(db, base("hdr"), 2);
  const auto original = slurp(paths[1]);
  const std::size_t shard1_rows = [&] {
    std::size_t n = 0;
    for (char c : original) n += c == '\n';
    return n - 1;  // minus the header
  }();
  std::ofstream{paths[1], std::ios::binary | std::ios::trunc}
      << "not,the header\n" << original.substr(original.find('\n') + 1);

  IngestOptions options;
  options.policy = IngestPolicy::kLenient;
  const auto result = read_csv_shards(paths, options);
  EXPECT_EQ(result.db.size(), 40u - shard1_rows);
  ASSERT_EQ(result.report.shards.size(), 1u);
  EXPECT_EQ(result.report.shards[0].shard, paths[1]);
  EXPECT_EQ(result.report.shards[0].reason, "bad CSV header");
  EXPECT_EQ(result.report.shards[0].lines_seen, shard1_rows + 1);
}

TEST_F(CsvShardsTest, TransientFaultRecoversAndCountsRetries) {
  const auto db = synthetic_corpus_n(30, 5);
  const auto paths = write_csv_shards(db, base("transient"), 2);
  IngestOptions options;
  options.policy = IngestPolicy::kLenient;
  options.max_attempts = 3;
  options.fault_hook = [&](const std::string& path, std::size_t attempt) {
    return path == paths[0] && attempt <= 2;
  };
  const auto result = read_csv_shards(paths, options);
  EXPECT_EQ(result.db.to_csv(), db.to_csv());
  EXPECT_TRUE(result.report.clean());
  EXPECT_EQ(result.report.retries, 2u);
}

TEST_F(CsvShardsTest, LenientQuarantinesUnreadableShardAfterRetries) {
  const auto db = synthetic_corpus_n(30, 5);
  const auto paths = write_csv_shards(db, base("unread"), 2);
  const std::size_t shard1_rows = [&] {
    const auto text = slurp(paths[1]);
    std::size_t n = 0;
    for (char c : text) n += c == '\n';
    return n - 1;
  }();
  IngestOptions options;
  options.policy = IngestPolicy::kLenient;
  options.max_attempts = 3;
  options.fault_hook = [&](const std::string& path, std::size_t) {
    return path == paths[1];
  };
  const auto result = read_csv_shards(paths, options);
  EXPECT_EQ(result.db.size(), 30u - shard1_rows);
  ASSERT_EQ(result.report.shards.size(), 1u);
  EXPECT_EQ(result.report.shards[0].shard, paths[1]);
  EXPECT_EQ(result.report.shards[0].attempts, 3u);
  EXPECT_EQ(result.report.shards[0].lines_seen, 0u);
  EXPECT_NE(result.report.shards[0].reason.find("injected fault"),
            std::string::npos);
  EXPECT_EQ(result.report.retries, 2u);
}

TEST_F(CsvShardsTest, StrictUnreadableThrowsWithAttemptCount) {
  const auto db = synthetic_corpus_n(10, 5);
  const auto paths = write_csv_shards(db, base("strictio"), 1);
  IngestOptions options;
  options.max_attempts = 3;
  options.fault_hook = [](const std::string&, std::size_t) { return true; };
  try {
    (void)read_csv_shards(paths, options);
    FAIL() << "unreadable shard must throw under strict";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(paths[0]), std::string::npos);
    EXPECT_NE(what.find("after 3 attempts"), std::string::npos);
  }
}

TEST_F(CsvShardsTest, PolicyReaderMatchesLegacyOnCleanInput) {
  const auto db = synthetic_corpus_n(500, 5);
  const auto paths = write_csv_shards(db, base("clean"), 3);
  const auto legacy = read_csv_shards(paths);
  const auto strict = read_csv_shards(paths, IngestOptions{});
  EXPECT_EQ(strict.db.to_csv(), legacy.to_csv());
  EXPECT_TRUE(strict.report.clean());
  EXPECT_EQ(strict.report.ingested, 500u);
}

TEST_F(CsvShardsTest, LenientReportIsThreadCountIndependent) {
  const auto db = synthetic_corpus_n(300, 5);
  const auto paths = write_csv_shards(db, base("det"), 3);
  auto text = slurp(paths[1]);
  text.insert(text.find('\n') + 1, 1, 'x');
  std::ofstream{paths[1], std::ios::binary | std::ios::trunc} << text;

  IngestOptions options;
  options.policy = IngestPolicy::kLenient;
  runtime::ThreadPool::set_global_threads(1);
  const auto serial = read_csv_shards(paths, options);
  runtime::ThreadPool::set_global_threads(4);
  const auto parallel = read_csv_shards(paths, options);
  runtime::ThreadPool::set_global_threads(runtime::ThreadPool::default_threads());

  EXPECT_EQ(serial.db.to_csv(), parallel.db.to_csv());
  ASSERT_EQ(serial.report.rows.size(), 1u);
  ASSERT_EQ(parallel.report.rows.size(), 1u);
  EXPECT_EQ(serial.report.rows[0].shard, parallel.report.rows[0].shard);
  EXPECT_EQ(serial.report.rows[0].line, parallel.report.rows[0].line);
  EXPECT_EQ(serial.report.rows[0].raw, parallel.report.rows[0].raw);
  EXPECT_EQ(serial.report.rows[0].reason, parallel.report.rows[0].reason);
}

}  // namespace
}  // namespace dfsm::bugtraq
