// Sharded CSV equivalence: write -> read -> write is byte-identical,
// parallel reads equal serial reads at 10^5 records, and shard file
// layout is a pure function of (size, shard count).
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bugtraq/corpus.h"
#include "bugtraq/csv_shards.h"
#include "runtime/thread_pool.h"

namespace dfsm::bugtraq {
namespace {

namespace fs = std::filesystem;

class CsvShardsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dfsm-shards-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string base(const char* name) const {
    return (dir_ / name).string();
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  }

  fs::path dir_;
};

TEST_F(CsvShardsTest, ShardPathNaming) {
  EXPECT_EQ(shard_path("/tmp/c", 3, 8), "/tmp/c-00003-of-00008.csv");
  const auto paths = shard_paths("x", 2);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "x-00000-of-00002.csv");
  EXPECT_EQ(paths[1], "x-00001-of-00002.csv");
}

TEST_F(CsvShardsTest, WriteReadWriteIsByteIdentical) {
  const auto db = synthetic_corpus_n(2000, 7);
  const auto first = write_csv_shards(db, base("a"), 4);
  ASSERT_EQ(first.size(), 4u);

  const auto restored = read_csv_shards(first);
  EXPECT_EQ(restored.to_csv(), db.to_csv());

  const auto second = write_csv_shards(restored, base("b"), 4);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(slurp(first[i]), slurp(second[i])) << "shard " << i;
  }
}

TEST_F(CsvShardsTest, ShardContentsAreThreadCountIndependent) {
  const auto db = synthetic_corpus_n(3000, 3);
  runtime::ThreadPool::set_global_threads(1);
  const auto serial = write_csv_shards(db, base("serial"), 5);
  runtime::ThreadPool::set_global_threads(4);
  const auto parallel = write_csv_shards(db, base("parallel"), 5);
  runtime::ThreadPool::set_global_threads(runtime::ThreadPool::default_threads());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(slurp(serial[i]), slurp(parallel[i])) << "shard " << i;
  }
}

TEST_F(CsvShardsTest, ParallelReadEqualsSerialReadAtHundredThousand) {
  const auto db = synthetic_corpus_n(100'000, 42);
  const auto paths = write_csv_shards(db, base("big"), 8);
  const auto expected = db.to_csv();

  runtime::ThreadPool::set_global_threads(1);
  const auto serial = read_csv_shards(paths);
  runtime::ThreadPool::set_global_threads(4);
  const auto parallel = read_csv_shards(paths);
  runtime::ThreadPool::set_global_threads(runtime::ThreadPool::default_threads());

  EXPECT_EQ(serial.to_csv(), expected);
  EXPECT_EQ(parallel.to_csv(), expected);
  EXPECT_EQ(serial.count_by_category(), parallel.count_by_category());
}

TEST_F(CsvShardsTest, MoreShardsThanRecordsPadsWithHeaderOnlyFiles) {
  const auto db = synthetic_corpus_n(3, 1);
  const auto paths = write_csv_shards(db, base("tiny"), 8);
  ASSERT_EQ(paths.size(), 8u);
  for (std::size_t i = 3; i < 8; ++i) {
    const auto text = slurp(paths[i]);
    EXPECT_EQ(text.find('\n'), text.size() - 1) << "shard " << i
        << " should be header-only";
  }
  EXPECT_EQ(read_csv_shards(paths).to_csv(), db.to_csv());
}

TEST_F(CsvShardsTest, EmptyDatabaseRoundTrips) {
  const Database empty;
  const auto paths = write_csv_shards(empty, base("empty"), 3);
  ASSERT_EQ(paths.size(), 3u);
  const auto restored = read_csv_shards(paths);
  EXPECT_EQ(restored.size(), 0u);
  EXPECT_EQ(restored.to_csv(), empty.to_csv());
}

TEST_F(CsvShardsTest, ZeroShardCountMeansOne) {
  const auto db = synthetic_corpus_n(10, 2);
  const auto paths = write_csv_shards(db, base("one"), 0);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(read_csv_shards(paths).to_csv(), db.to_csv());
}

TEST_F(CsvShardsTest, MissingShardFileThrows) {
  EXPECT_THROW((void)read_csv_shards({base("nope") + ".csv"}), std::runtime_error);
}

TEST_F(CsvShardsTest, MalformedShardThrows) {
  const auto path = base("bad") + ".csv";
  std::ofstream{path} << "not,a,valid,header\n";
  EXPECT_THROW((void)read_csv_shards({path}), std::invalid_argument);
}

}  // namespace
}  // namespace dfsm::bugtraq
