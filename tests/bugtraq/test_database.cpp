#include "bugtraq/database.h"

#include <gtest/gtest.h>

#include "bugtraq/curated.h"

namespace dfsm::bugtraq {
namespace {

VulnRecord sample(int id) {
  VulnRecord r;
  r.id = id;
  r.title = "Sample, with comma and \"quotes\"";
  r.software = "testd";
  r.year = 2001;
  r.remote = true;
  r.category = Category::kBoundaryConditionError;
  r.vuln_class = VulnClass::kStackBufferOverflow;
  r.description = "line one\nline two";
  r.activities = {ElementaryActivity::kGetInput, ElementaryActivity::kCopyToBuffer};
  r.reference_activity = 1;
  return r;
}

TEST(Database, AddAndLookupById) {
  Database db;
  db.add(sample(42));
  EXPECT_EQ(db.size(), 1u);
  ASSERT_NE(db.by_id(42), nullptr);
  EXPECT_EQ(db.by_id(42)->software, "testd");
  EXPECT_EQ(db.by_id(99), nullptr);
}

TEST(Database, DuplicateNonZeroIdRejected) {
  Database db;
  db.add(sample(42));
  EXPECT_THROW(db.add(sample(42)), std::invalid_argument);
}

TEST(Database, MultipleZeroIdsAllowed) {
  // Advisories without Bugtraq IDs (xterm, rwall) share id 0.
  Database db;
  db.add(sample(0));
  db.add(sample(0));
  EXPECT_EQ(db.size(), 2u);
}

TEST(Database, QueryAndCount) {
  Database db;
  auto a = sample(1);
  a.remote = true;
  auto b = sample(2);
  b.remote = false;
  db.add(a);
  db.add(b);
  EXPECT_EQ(db.count([](const VulnRecord& r) { return r.remote; }), 1u);
  const auto hits = db.query([](const VulnRecord& r) { return !r.remote; });
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->id, 2);
}

TEST(Database, CountByCategoryIncludesEmptyCategories) {
  Database db;
  db.add(sample(1));
  const auto counts = db.count_by_category();
  EXPECT_EQ(counts.size(), kCategoryCount);
  EXPECT_EQ(counts.at(Category::kBoundaryConditionError), 1u);
  EXPECT_EQ(counts.at(Category::kAtomicityError), 0u);
}

TEST(Database, CsvRoundTripPreservesEverything) {
  Database db;
  db.add(sample(7));
  auto r2 = sample(8);
  r2.activities.clear();
  r2.reference_activity = -1;
  db.add(r2);

  const auto restored = Database::from_csv(db.to_csv());
  ASSERT_EQ(restored.size(), 2u);
  const VulnRecord* r = restored.by_id(7);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->title, "Sample, with comma and \"quotes\"");
  EXPECT_EQ(r->category, Category::kBoundaryConditionError);
  EXPECT_EQ(r->vuln_class, VulnClass::kStackBufferOverflow);
  EXPECT_EQ(r->activities.size(), 2u);
  EXPECT_EQ(r->activities[1], ElementaryActivity::kCopyToBuffer);
  EXPECT_EQ(r->reference_activity, 1);
  EXPECT_TRUE(r->remote);
  EXPECT_TRUE(restored.by_id(8)->activities.empty());
}

TEST(Database, FromCsvRejectsGarbage) {
  EXPECT_THROW((void)Database::from_csv("not a header\n"), std::invalid_argument);
}

// Property: CSV round-trip is the identity for arbitrary (seeded) record
// contents, including separators, quotes and newlines in text fields.
class CsvFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(CsvFuzz, RoundTripIsIdentity) {
  std::uint64_t rng = 0x9E3779B97F4A7C15ull * (GetParam() + 1);
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  auto fuzz_string = [&next](std::size_t max_len) {
    static constexpr char alphabet[] =
        "abcXYZ012 ,\"\n%$../\\;'\t#|<>";
    std::string s;
    const std::size_t len = next() % (max_len + 1);
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(alphabet[next() % (sizeof(alphabet) - 1)]);
    }
    return s;
  };

  Database db;
  for (int i = 0; i < 40; ++i) {
    VulnRecord r;
    r.id = 1000 + i;
    r.title = fuzz_string(48);
    r.software = fuzz_string(16);
    r.year = 1995 + static_cast<int>(next() % 10);
    r.remote = (next() & 1) != 0;
    r.category = kAllCategories[next() % kCategoryCount];
    r.vuln_class = static_cast<VulnClass>(next() % kVulnClassCount);
    r.description = fuzz_string(80);
    const std::size_t acts = next() % 4;
    for (std::size_t a = 0; a < acts; ++a) {
      r.activities.push_back(static_cast<ElementaryActivity>(
          next() % (static_cast<unsigned>(ElementaryActivity::kFreeBuffer) + 1)));
    }
    r.reference_activity =
        r.activities.empty() ? -1 : static_cast<int>(next() % r.activities.size());
    db.add(std::move(r));
  }

  const auto restored = Database::from_csv(db.to_csv());
  ASSERT_EQ(restored.size(), db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    const auto& a = db.records()[i];
    const auto& b = restored.records()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.title, b.title);
    EXPECT_EQ(a.software, b.software);
    EXPECT_EQ(a.year, b.year);
    EXPECT_EQ(a.remote, b.remote);
    EXPECT_EQ(a.category, b.category);
    EXPECT_EQ(a.vuln_class, b.vuln_class);
    EXPECT_EQ(a.description, b.description);
    EXPECT_EQ(a.activities, b.activities);
    EXPECT_EQ(a.reference_activity, b.reference_activity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzz, ::testing::Values(1, 2, 3, 4, 5));

TEST(Database, MergeCombinesRecords) {
  Database a;
  a.add(sample(1));
  Database b;
  b.add(sample(2));
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_NE(a.by_id(2), nullptr);
}

// --- Curated paper records ----------------------------------------------

TEST(Curated, ContainsEveryPaperCitedBugtraqId) {
  const auto db = curated_records();
  for (int id : {3163, 5493, 3958, 6157, 5960, 4479, 1387, 2210, 2264, 1480,
                 5774, 6255, 2708}) {
    EXPECT_NE(db.by_id(id), nullptr) << "missing #" << id;
  }
  EXPECT_GE(db.size(), 15u);  // plus the two id-0 advisories
}

TEST(Curated, RecordsSurviveCsvRoundTrip) {
  const auto db = curated_records();
  const auto restored = Database::from_csv(db.to_csv());
  EXPECT_EQ(restored.size(), db.size());
  EXPECT_EQ(restored.by_id(3163)->category, Category::kInputValidationError);
}

TEST(Curated, Table1RecordsAreTheThreeIntegerOverflows) {
  const auto rows = table1_records();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].id, 3163);
  EXPECT_EQ(rows[1].id, 5493);
  EXPECT_EQ(rows[2].id, 3958);
  for (const auto& r : rows) {
    EXPECT_EQ(r.vuln_class, VulnClass::kIntegerOverflow);
    EXPECT_EQ(r.activities.size(), 3u);
  }
  // Three DIFFERENT categories for the same root cause.
  EXPECT_EQ(rows[0].category, Category::kInputValidationError);
  EXPECT_EQ(rows[1].category, Category::kBoundaryConditionError);
  EXPECT_EQ(rows[2].category, Category::kAccessValidationError);
}

TEST(Curated, DiscoveredVulnerabilityIsRecorded) {
  const auto db = curated_records();
  const VulnRecord* r = db.by_id(6255);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->software, "Null HTTPD");
  EXPECT_NE(r->description.find("'||'"), std::string::npos);
}

}  // namespace
}  // namespace dfsm::bugtraq
