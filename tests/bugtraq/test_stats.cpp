#include "bugtraq/stats.h"

#include <gtest/gtest.h>

#include "bugtraq/corpus.h"

namespace dfsm::bugtraq {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  StatsTest() : db(synthetic_corpus()) {}
  Database db;
};

TEST_F(StatsTest, BreakdownIsSortedDescendingAndComplete) {
  const auto shares = category_breakdown(db);
  ASSERT_EQ(shares.size(), kCategoryCount);
  for (std::size_t i = 1; i < shares.size(); ++i) {
    EXPECT_GE(shares[i - 1].count, shares[i].count);
  }
  std::size_t total = 0;
  for (const auto& s : shares) total += s.count;
  EXPECT_EQ(total, db.size());
}

TEST_F(StatsTest, RoundedPercentagesMatchFigure1) {
  const auto shares = category_breakdown(db);
  const auto rounded = [&shares](Category c) {
    for (const auto& s : shares) {
      if (s.category == c) return s.rounded_percent;
    }
    return -1;
  };
  // The pie labels of Figure 1.
  EXPECT_EQ(rounded(Category::kInputValidationError), 23);
  EXPECT_EQ(rounded(Category::kBoundaryConditionError), 21);
  EXPECT_EQ(rounded(Category::kDesignError), 18);
  EXPECT_EQ(rounded(Category::kFailureToHandleExceptionalConditions), 11);
  EXPECT_EQ(rounded(Category::kAccessValidationError), 10);
  EXPECT_EQ(rounded(Category::kRaceConditionError), 6);
  EXPECT_EQ(rounded(Category::kConfigurationError), 5);
  EXPECT_EQ(rounded(Category::kOriginValidationError), 3);
  EXPECT_EQ(rounded(Category::kAtomicityError), 2);
  EXPECT_EQ(rounded(Category::kEnvironmentError), 1);
  EXPECT_EQ(rounded(Category::kSerializationError), 0);
  EXPECT_EQ(rounded(Category::kUnknown), 0);
}

TEST_F(StatsTest, TopFiveCategoriesDominate) {
  // §3.1: "the pie-chart is dominated by five categories" (83%).
  const auto shares = category_breakdown(db);
  double top5 = 0;
  for (std::size_t i = 0; i < 5; ++i) top5 += shares[i].percent;
  EXPECT_GT(top5, 80.0);
}

TEST_F(StatsTest, StudiedShareIsTwentyTwoPercent) {
  const auto s = studied_share(db);
  EXPECT_EQ(s.total, kBugtraqSize2002);
  EXPECT_NEAR(s.percent, 22.0, 0.05);
  EXPECT_EQ(s.classes.size(), 5u);
  std::size_t sum = 0;
  for (const auto& c : s.classes) sum += c.count;
  EXPECT_EQ(sum, s.studied_count);
}

TEST_F(StatsTest, StudiedShareOnEmptyDatabase) {
  Database empty;
  const auto s = studied_share(empty);
  EXPECT_EQ(s.percent, 0.0);
  EXPECT_EQ(s.studied_count, 0u);
}

TEST_F(StatsTest, RemoteLocalSplitCoversEverything) {
  const auto split = remote_local_split(db);
  EXPECT_EQ(split.remote + split.local, db.size());
  EXPECT_GT(split.remote, 0u);
  EXPECT_GT(split.local, 0u);
}

TEST_F(StatsTest, ByYearCoversTheStudyWindowAndSumsToTotal) {
  const auto years = by_year(db);
  ASSERT_FALSE(years.empty());
  std::size_t sum = 0;
  int last = 0;
  for (const auto& y : years) {
    EXPECT_GE(y.year, 1999);
    EXPECT_LE(y.year, 2002);
    EXPECT_GT(y.year, last);  // ascending
    last = y.year;
    sum += y.count;
  }
  EXPECT_EQ(sum, db.size());
}

TEST_F(StatsTest, TopSoftwareIsSortedAndBounded) {
  const auto top = top_software(db, 5);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].count, top[i].count);
  }
  EXPECT_GT(top[0].count, 0u);
  // Asking for more than exists returns everything.
  EXPECT_LE(top_software(db, 1000).size(), 16u);  // 16 synthetic packages
}

TEST_F(StatsTest, TopSoftwareOfEmptyDatabase) {
  Database empty;
  EXPECT_TRUE(top_software(empty, 3).empty());
  EXPECT_TRUE(by_year(empty).empty());
}

TEST_F(StatsTest, RenderFigure1ContainsEveryCategoryAndTheTotal) {
  const std::string fig = render_figure1(db);
  for (Category c : kAllCategories) {
    EXPECT_NE(fig.find(to_string(c)), std::string::npos) << to_string(c);
  }
  EXPECT_NE(fig.find("5925"), std::string::npos);
  EXPECT_NE(fig.find("23%"), std::string::npos);
}

}  // namespace
}  // namespace dfsm::bugtraq
