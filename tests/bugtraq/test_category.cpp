#include "bugtraq/category.h"

#include <gtest/gtest.h>

#include <set>

namespace dfsm::bugtraq {
namespace {

TEST(Category, TwelveCategoriesWithUniqueNames) {
  EXPECT_EQ(kAllCategories.size(), 12u);
  std::set<std::string> names;
  for (Category c : kAllCategories) names.insert(to_string(c));
  EXPECT_EQ(names.size(), 12u);
}

TEST(Category, NamesMatchFigure1) {
  EXPECT_STREQ(to_string(Category::kBoundaryConditionError),
               "Boundary Condition Error");
  EXPECT_STREQ(to_string(Category::kInputValidationError),
               "Input Validation Error");
  EXPECT_STREQ(to_string(Category::kFailureToHandleExceptionalConditions),
               "Failure to Handle Exceptional Conditions");
  EXPECT_STREQ(to_string(Category::kRaceConditionError), "Race Condition Error");
}

TEST(Category, DefinitionsMatchThePaper) {
  // The definitions Figure 1 reprints.
  EXPECT_NE(std::string(definition(Category::kBoundaryConditionError))
                .find("classic buffer overflow"),
            std::string::npos);
  EXPECT_NE(std::string(definition(Category::kInputValidationError))
                .find("syntactically incorrect input"),
            std::string::npos);
  EXPECT_NE(std::string(definition(Category::kRaceConditionError))
                .find("timing window"),
            std::string::npos);
  // Design and Origin Validation: "Not defined."
  EXPECT_STREQ(definition(Category::kDesignError), "not defined");
  EXPECT_STREQ(definition(Category::kOriginValidationError), "not defined");
}

TEST(Category, StringRoundTrip) {
  for (Category c : kAllCategories) {
    const auto parsed = category_from_string(to_string(c));
    ASSERT_TRUE(parsed) << to_string(c);
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(category_from_string("Not A Category"));
}

TEST(VulnClass, StudiedSetIsThePaperFive) {
  // §6: "these four account for 22%" — buffer overflow counted as stack +
  // heap in our class enum, plus integer, format string, race.
  EXPECT_TRUE(is_studied_class(VulnClass::kStackBufferOverflow));
  EXPECT_TRUE(is_studied_class(VulnClass::kHeapOverflow));
  EXPECT_TRUE(is_studied_class(VulnClass::kIntegerOverflow));
  EXPECT_TRUE(is_studied_class(VulnClass::kFormatString));
  EXPECT_TRUE(is_studied_class(VulnClass::kFileRaceCondition));
  EXPECT_FALSE(is_studied_class(VulnClass::kPathTraversal));
  EXPECT_FALSE(is_studied_class(VulnClass::kOther));
}

TEST(VulnClass, StringRoundTrip) {
  const VulnClass all[] = {
      VulnClass::kStackBufferOverflow, VulnClass::kHeapOverflow,
      VulnClass::kIntegerOverflow,     VulnClass::kFormatString,
      VulnClass::kFileRaceCondition,   VulnClass::kPathTraversal,
      VulnClass::kOther,
  };
  for (VulnClass c : all) {
    const auto parsed = vuln_class_from_string(to_string(c));
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(vuln_class_from_string("nope"));
}

}  // namespace
}  // namespace dfsm::bugtraq
