#include "bugtraq/classifier.h"

#include <gtest/gtest.h>

#include "bugtraq/curated.h"

namespace dfsm::bugtraq {
namespace {

using EA = ElementaryActivity;

TEST(Classifier, ActivityToCategoryMapping) {
  EXPECT_EQ(category_for_activity(EA::kGetInput), Category::kInputValidationError);
  EXPECT_EQ(category_for_activity(EA::kUseAsArrayIndex),
            Category::kBoundaryConditionError);
  EXPECT_EQ(category_for_activity(EA::kCopyToBuffer),
            Category::kBoundaryConditionError);
  EXPECT_EQ(category_for_activity(EA::kHandleFollowingData),
            Category::kFailureToHandleExceptionalConditions);
  EXPECT_EQ(category_for_activity(EA::kExecuteViaPointer),
            Category::kAccessValidationError);
  EXPECT_EQ(category_for_activity(EA::kOpenFile), Category::kRaceConditionError);
  EXPECT_EQ(category_for_activity(EA::kDecodeName),
            Category::kInputValidationError);
}

TEST(Classifier, ReproducesTable1) {
  // The heart of Observation 1: anchoring the SAME vulnerability on a
  // different elementary activity yields a different category — and the
  // categories are exactly the ones Bugtraq's analysts assigned.
  const auto rows = table1_records();
  // #3163 anchored on "get an input integer" -> Input Validation.
  EXPECT_EQ(category_for_activity(rows[0].activities[0]),
            Category::kInputValidationError);
  // #5493 anchored on "use the integer as the index" -> Boundary Condition.
  EXPECT_EQ(category_for_activity(rows[1].activities[1]),
            Category::kBoundaryConditionError);
  // #3958 anchored on "execute code referred by a pointer" -> Access
  // Validation.
  EXPECT_EQ(category_for_activity(rows[2].activities[2]),
            Category::kAccessValidationError);
}

TEST(Classifier, Table1RecordsAreSelfConsistentAndAmbiguous) {
  for (const auto& r : table1_records()) {
    EXPECT_TRUE(classification_consistent(r)) << r.title;
    EXPECT_TRUE(classification_ambiguous(r)) << r.title;
    // All three plausible categories exist for the integer-overflow chain.
    EXPECT_EQ(plausible_categories(r).size(), 3u);
  }
}

TEST(Classifier, EveryCuratedRecordIsSelfConsistent) {
  const auto db = curated_records();
  for (const auto& r : db.records()) {
    EXPECT_TRUE(classification_consistent(r)) << r.title;
  }
}

TEST(Classifier, PlausibleCategoriesDeduplicate) {
  VulnRecord r;
  r.activities = {EA::kCopyToBuffer, EA::kUseAsArrayIndex};  // both Boundary
  EXPECT_EQ(plausible_categories(r).size(), 1u);
  EXPECT_FALSE(classification_ambiguous(r));
}

TEST(Classifier, NoActivitiesMeansInconsistentAndUnambiguous) {
  VulnRecord r;  // bulk synthetic records carry no activity chain
  EXPECT_FALSE(classification_consistent(r));
  EXPECT_FALSE(classification_ambiguous(r));
  EXPECT_TRUE(plausible_categories(r).empty());
}

TEST(Classifier, OutOfRangeReferenceActivityIsInconsistent) {
  VulnRecord r;
  r.activities = {EA::kGetInput};
  r.reference_activity = 5;
  EXPECT_FALSE(classification_consistent(r));
}

}  // namespace
}  // namespace dfsm::bugtraq
