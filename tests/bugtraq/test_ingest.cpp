// Bulk ingest (Database::add_batch), the year/software columnar
// histograms, and DFSM_THREADS edge cases over the sharded ingest path:
// 0 and 1 (serial fallback), more threads than shards, empty corpus,
// single-record corpus.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bugtraq/corpus.h"
#include "bugtraq/csv_shards.h"
#include "bugtraq/database.h"
#include "runtime/thread_pool.h"

namespace dfsm::bugtraq {
namespace {

using runtime::ThreadPool;

VulnRecord sample(int id, int year = 2001, const std::string& software = "testd") {
  VulnRecord r;
  r.id = id;
  r.title = "Sample #" + std::to_string(id);
  r.software = software;
  r.year = year;
  r.remote = (id % 2) == 0;
  r.category = Category::kBoundaryConditionError;
  r.vuln_class = VulnClass::kStackBufferOverflow;
  r.description = "sample";
  return r;
}

TEST(AddBatch, EquivalentToPerRecordAdds) {
  const auto corpus = synthetic_corpus_n(500, 11);

  Database incremental;
  for (const auto& r : corpus.records()) incremental.add(r);

  Database bulk;
  const auto recs = corpus.records();
  bulk.add_batch({recs.begin(), recs.end()});

  EXPECT_EQ(bulk.to_csv(), incremental.to_csv());
  EXPECT_EQ(bulk.count_by_category(), incremental.count_by_category());
  EXPECT_EQ(bulk.count_by_class(), incremental.count_by_class());
  EXPECT_EQ(bulk.count_by_year(), incremental.count_by_year());
  EXPECT_EQ(bulk.count_by_software(), incremental.count_by_software());
}

TEST(AddBatch, EmptyBatchIsANoOp) {
  Database db;
  db.add(sample(1));
  db.add_batch({});
  EXPECT_EQ(db.size(), 1u);
}

TEST(AddBatch, DuplicateWithinBatchLeavesDatabaseUntouched) {
  Database db;
  db.add(sample(1));
  std::vector<VulnRecord> batch = {sample(2), sample(3), sample(2)};
  EXPECT_THROW(db.add_batch(batch), std::invalid_argument);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.by_id(2), nullptr);
}

TEST(AddBatch, DuplicateAgainstDatabaseLeavesDatabaseUntouched) {
  Database db;
  db.add(sample(1));
  std::vector<VulnRecord> batch = {sample(5), sample(1)};
  EXPECT_THROW(db.add_batch(batch), std::invalid_argument);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.by_id(5), nullptr);
}

TEST(AddBatch, ZeroIdsMayRepeatWithinABatch) {
  Database db;
  db.add_batch({sample(0), sample(0), sample(7)});
  EXPECT_EQ(db.size(), 3u);
  EXPECT_NE(db.by_id(7), nullptr);
}

TEST(AddBatch, LenientKeepsFirstOccurrenceAndReportsRejects) {
  Database db;
  db.add(sample(1));
  const auto rejects = db.add_batch(
      {sample(2), sample(1), sample(3), sample(2)}, IngestPolicy::kLenient);
  EXPECT_EQ(db.size(), 3u);
  EXPECT_NE(db.by_id(2), nullptr);
  EXPECT_NE(db.by_id(3), nullptr);
  ASSERT_EQ(rejects.size(), 2u);
  EXPECT_EQ(rejects[0].index, 1u);
  EXPECT_EQ(rejects[0].reason, "duplicate Bugtraq ID: 1");
  EXPECT_EQ(rejects[1].index, 3u);
  EXPECT_EQ(rejects[1].reason, "duplicate Bugtraq ID: 2");
}

TEST(AddBatch, LenientAcceptsZeroIdsWithoutRejects) {
  Database db;
  const auto rejects =
      db.add_batch({sample(0), sample(0), sample(9)}, IngestPolicy::kLenient);
  EXPECT_TRUE(rejects.empty());
  EXPECT_EQ(db.size(), 3u);
}

TEST(AddBatch, StrictPolicyMatchesPlainAddBatch) {
  Database db;
  db.add(sample(1));
  EXPECT_THROW((void)db.add_batch({sample(2), sample(1)}, IngestPolicy::kStrict),
               std::invalid_argument);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.by_id(2), nullptr);
}

TEST(AddBatch, LenientPreservesInsertionOrderOfAccepted) {
  Database db;
  (void)db.add_batch({sample(5), sample(4), sample(5), sample(6)},
                     IngestPolicy::kLenient);
  ASSERT_EQ(db.size(), 3u);
  EXPECT_EQ(db.records()[0].id, 5);
  EXPECT_EQ(db.records()[1].id, 4);
  EXPECT_EQ(db.records()[2].id, 6);
}

TEST(IngestPolicyNames, RoundTrip) {
  EXPECT_STREQ(to_string(IngestPolicy::kStrict), "strict");
  EXPECT_STREQ(to_string(IngestPolicy::kLenient), "lenient");
}

TEST(Histograms, YearAndSoftwareColumnsServeTheCounts) {
  Database db;
  db.add_batch({sample(1, 1999, "BIND"), sample(2, 1999, "BIND"),
                sample(3, 2002, "Sendmail")});
  const auto years = db.count_by_year();
  ASSERT_EQ(years.size(), 2u);
  EXPECT_EQ(years.at(1999), 2u);
  EXPECT_EQ(years.at(2002), 1u);

  const auto software = db.count_by_software();
  ASSERT_EQ(software.size(), 2u);
  EXPECT_EQ(software.at("BIND"), 2u);
  EXPECT_EQ(software.at("Sendmail"), 1u);
}

TEST(Histograms, CacheInvalidatesOnMutation) {
  Database db;
  db.add(sample(1, 1999));
  EXPECT_EQ(db.count_by_year().at(1999), 1u);
  db.add(sample(2, 1999));
  EXPECT_EQ(db.count_by_year().at(1999), 2u);
  db.add_batch({sample(3, 2000), sample(4, 2000)});
  const auto years = db.count_by_year();
  EXPECT_EQ(years.at(1999), 2u);
  EXPECT_EQ(years.at(2000), 2u);
}

// --- DFSM_THREADS edge cases over the ingest path -----------------------

class IngestThreads : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dfsm-ingest-" + std::to_string(GetParam()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    ThreadPool::set_global_threads(ThreadPool::default_threads());
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_P(IngestThreads, ShardedIngestMatchesAtEveryPoolSize) {
  // Corpus sizes covering the edges: empty, single-record, fewer records
  // than shards, and a multi-block corpus.
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{257}}) {
    const auto db = synthetic_corpus_n(n, 13);
    const auto expected = db.to_csv();
    const auto paths = write_csv_shards(
        db, (dir_ / ("c" + std::to_string(n))).string(), 4);

    // GetParam() threads vs the shard count of 4: 0/1 are the serial
    // fallback, 16 is "more threads than shards".
    ThreadPool::set_global_threads(GetParam());
    const auto restored = read_csv_shards(paths);
    EXPECT_EQ(restored.to_csv(), expected) << "n=" << n;
    EXPECT_EQ(restored.size(), n) << "n=" << n;

    const auto direct = Database::from_csv(expected);
    EXPECT_EQ(direct.to_csv(), expected) << "n=" << n;
  }
}

TEST_P(IngestThreads, GenerationAndHistogramsMatchAtEveryPoolSize) {
  ThreadPool::set_global_threads(GetParam());
  const auto db = synthetic_corpus_n(1000, 21);
  ThreadPool::set_global_threads(ThreadPool::default_threads());
  const auto reference = synthetic_corpus_n(1000, 21);
  EXPECT_EQ(db.to_csv(), reference.to_csv());
  EXPECT_EQ(db.count_by_year(), reference.count_by_year());
  EXPECT_EQ(db.count_by_software(), reference.count_by_software());
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, IngestThreads,
                         ::testing::Values(0, 1, 2, 4, 16));

}  // namespace
}  // namespace dfsm::bugtraq
