// The concurrent corpus service: snapshot-isolated reads during ingest,
// incremental histogram maintenance proven equal to a full rebuild,
// true-no-op batches, copy-on-write, and a reader/writer hammer that the
// TSan CI leg runs race-detection over.
#include <algorithm>
#include <atomic>
#include <cstddef>
#include <iterator>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bugtraq/corpus.h"
#include "bugtraq/database.h"
#include "runtime/thread_pool.h"

// Clang spells the TSan feature test differently from GCC.
#ifndef __SANITIZE_THREAD__
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define __SANITIZE_THREAD__ 1
#endif
#endif
#endif

namespace dfsm::bugtraq {
namespace {

using runtime::ThreadPool;

/// The corpus records as an owning vector (snapshots hand out spans).
std::vector<VulnRecord> materialize(const Database& db) {
  const auto recs = db.records();
  return {recs.begin(), recs.end()};
}

std::size_t total_of(const CorpusHistograms& h) {
  return std::accumulate(h.by_category.begin(), h.by_category.end(),
                         std::size_t{0});
}

TEST(SnapshotIsolation, HeldSnapshotFreezesAnEpochDuringIngest) {
  Database db = synthetic_corpus_n(300, 3);
  const auto old_snap = db.snapshot();
  const auto old_epoch = old_snap->epoch();
  const auto old_csv = old_snap->to_csv();
  const auto old_hist = old_snap->histograms();

  Database more = synthetic_corpus_n(500, 4);
  auto extra = materialize(more);
  for (auto& r : extra) r.id += 1'000'000;  // keep ids disjoint
  db.add_batch(extra);

  // The pinned snapshot is byte-stable: same size, same rows, same
  // histograms, same epoch — the ingest happened "next to" it.
  EXPECT_EQ(old_snap->epoch(), old_epoch);
  EXPECT_EQ(old_snap->size(), 300u);
  EXPECT_EQ(old_snap->histograms(), old_hist);
  EXPECT_EQ(old_snap->to_csv(), old_csv);

  // The database moved on: one more epoch, old + delta visible.
  const auto now = db.snapshot();
  EXPECT_EQ(now->epoch(), old_epoch + 1);
  EXPECT_EQ(now->size(), 800u);
  EXPECT_EQ(total_of(now->histograms()), 800u);
  EXPECT_EQ(rebuild_histograms(*now), now->histograms());
}

TEST(SnapshotIsolation, EmptyBatchIsATrueNoOp) {
  Database db = synthetic_corpus_n(50, 1);
  const auto before = db.snapshot();
  db.add_batch({});
  // No new epoch, not even a re-publication of the same contents: the
  // snapshot pointer itself is unchanged.
  EXPECT_EQ(db.snapshot().get(), before.get());
  EXPECT_EQ(db.epoch(), before->epoch());
}

TEST(SnapshotIsolation, AllRejectedLenientBatchIsATrueNoOp) {
  Database db = synthetic_corpus_n(50, 1);
  const auto before = db.snapshot();
  auto dup = materialize(db);
  dup.resize(5);  // five records whose ids all already exist
  const auto rejects = db.add_batch(std::move(dup), IngestPolicy::kLenient);
  EXPECT_EQ(rejects.size(), 5u);
  EXPECT_EQ(db.snapshot().get(), before.get());
  EXPECT_EQ(db.epoch(), before->epoch());
}

TEST(SnapshotIsolation, FailedStrictBatchPublishesNothing) {
  Database db = synthetic_corpus_n(50, 1);
  const auto before = db.snapshot();
  auto batch = materialize(db);
  batch.resize(3);
  batch[0].id += 1'000'000;  // one fresh record, then a duplicate
  EXPECT_THROW(db.add_batch(std::move(batch)), std::invalid_argument);
  EXPECT_EQ(db.snapshot().get(), before.get());
  // The writer recovered: a clean batch still lands and the incremental
  // histograms stay exact.
  VulnRecord fresh = materialize(db)[0];
  fresh.id = 2'000'000;
  db.add(fresh);
  EXPECT_EQ(db.size(), 51u);
  EXPECT_EQ(rebuild_histograms(*db.snapshot()), db.snapshot()->histograms());
}

TEST(SnapshotIsolation, SoftwareInterningIsStableAcrossEpochs) {
  Database db = synthetic_corpus_n(200, 9);
  const auto s1 = db.snapshot();
  Database more = synthetic_corpus_n(400, 10);
  auto extra = materialize(more);
  for (auto& r : extra) r.id += 1'000'000;
  db.add_batch(extra);
  const auto s2 = db.snapshot();

  // Later epochs only append names; every id from s1 decodes the same.
  ASSERT_GE(s2->software_count(), s1->software_count());
  for (std::uint32_t id = 0; id < s1->software_count(); ++id) {
    EXPECT_EQ(s2->software_name(id), s1->software_name(id));
  }
  // And both epochs' software columns stay in range of their own tables.
  for (const auto sid : s1->software_ids()) ASSERT_LT(sid, s1->software_count());
  for (const auto sid : s2->software_ids()) ASSERT_LT(sid, s2->software_count());
}

TEST(SnapshotIsolation, CopySharesTheEpochThenCopiesOnWrite) {
  Database a = synthetic_corpus_n(100, 2);
  Database b = a;
  // The copy shares the source's published epoch outright.
  EXPECT_EQ(b.snapshot().get(), a.snapshot().get());

  VulnRecord fresh = materialize(a)[0];
  fresh.id = 1'000'000;
  b.add(fresh);
  EXPECT_EQ(b.size(), 101u);
  EXPECT_EQ(a.size(), 100u);  // source untouched by the copy's write
  EXPECT_NE(b.snapshot().get(), a.snapshot().get());
  EXPECT_EQ(rebuild_histograms(*b.snapshot()), b.snapshot()->histograms());
}

TEST(SnapshotIsolation, ReservePublishesNothingAndKeepsReadersValid) {
  Database db = synthetic_corpus_n(100, 6);
  const auto before = db.snapshot();
  const auto csv = before->to_csv();
  db.reserve(10'000);
  EXPECT_EQ(db.epoch(), before->epoch());
  EXPECT_EQ(before->to_csv(), csv);  // pinned spans survived the growth
  EXPECT_EQ(db.to_csv(), csv);
}

// --- incremental == rebuild equivalence --------------------------------

/// Feeds `db` the corpus of `n` records in varied batch sizes, checking
/// the incrementally-maintained histograms against a full rebuild along
/// the way and at the end.
void feed_and_check(std::size_t n, unsigned seed, std::size_t checks) {
  const Database source = synthetic_corpus_n(n, seed);
  const auto rows = materialize(source);

  Database db;
  db.reserve(n);
  // Batch sizes cycle 1, 7, 100, 1000, 9999 — exercising single-row
  // publishes, mid-size folds, and large parallel folds.
  static constexpr std::size_t kSizes[] = {1, 7, 100, 1000, 9999};
  std::size_t pos = 0, batch_no = 0, published = 0;
  const std::size_t check_every =
      checks == 0 ? n + 1 : std::max<std::size_t>(1, n / checks);
  std::size_t next_check = check_every;
  while (pos < rows.size()) {
    const std::size_t take =
        std::min(kSizes[batch_no++ % std::size(kSizes)], rows.size() - pos);
    db.add_batch({rows.begin() + static_cast<std::ptrdiff_t>(pos),
                  rows.begin() + static_cast<std::ptrdiff_t>(pos + take)});
    pos += take;
    ++published;
    if (pos >= next_check) {
      const auto snap = db.snapshot();
      ASSERT_EQ(snap->histograms(), rebuild_histograms(*snap))
          << "after " << pos << " records";
      next_check += check_every;
    }
  }

  const auto snap = db.snapshot();
  EXPECT_EQ(snap->epoch(), published);
  EXPECT_EQ(snap->size(), n);
  EXPECT_EQ(snap->histograms(), rebuild_histograms(*snap));
  EXPECT_EQ(db.count_by_category(), source.count_by_category());
  EXPECT_EQ(db.count_by_class(), source.count_by_class());
  EXPECT_EQ(db.count_by_year(), source.count_by_year());
  EXPECT_EQ(db.count_by_software(), source.count_by_software());
}

TEST(IncrementalHistograms, EqualRebuildAtTenThousand) {
  feed_and_check(10'000, 17, 8);
}

TEST(IncrementalHistograms, EqualRebuildAtAMillion) {
#ifdef __SANITIZE_THREAD__
  feed_and_check(100'000, 23, 2);  // TSan: ~10x runtime, scale down
#else
  feed_and_check(1'000'000, 23, 2);
#endif
}

class SnapshotThreads : public ::testing::TestWithParam<std::size_t> {
 protected:
  void TearDown() override {
    ThreadPool::set_global_threads(ThreadPool::default_threads());
  }
};

TEST_P(SnapshotThreads, IncrementalFoldIsThreadCountIndependent) {
  const Database source = synthetic_corpus_n(5000, 31);
  const auto rows = materialize(source);

  ThreadPool::set_global_threads(GetParam());
  Database db;
  for (std::size_t pos = 0; pos < rows.size(); pos += 1250) {
    db.add_batch({rows.begin() + static_cast<std::ptrdiff_t>(pos),
                  rows.begin() + static_cast<std::ptrdiff_t>(pos + 1250)});
  }
  const auto snap = db.snapshot();
  const auto rebuilt = rebuild_histograms(*snap);
  ThreadPool::set_global_threads(ThreadPool::default_threads());

  // Same histograms, same bytes, as the reference built at the default
  // pool size in one batch.
  EXPECT_EQ(snap->histograms(), rebuilt);
  EXPECT_EQ(snap->histograms(), rebuild_histograms(*source.snapshot()));
  EXPECT_EQ(db.to_csv(), source.to_csv());
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, SnapshotThreads,
                         ::testing::Values(0, 1, 4));

// --- the reader/writer hammer (raced under TSan in CI) -----------------

TEST(SnapshotIsolation, ConcurrentReadersSeeOnlyConsistentEpochs) {
#ifdef __SANITIZE_THREAD__
  constexpr std::size_t kTotal = 4'000;
#else
  constexpr std::size_t kTotal = 20'000;
#endif
  constexpr std::size_t kBatch = 500;
  const Database source = synthetic_corpus_n(kTotal, 41);
  const auto rows = materialize(source);

  Database db;
  std::atomic<bool> done{false};
  std::atomic<std::size_t> violations{0};

  // Readers use only snapshot-local state (histograms, spans) with
  // serial walks: the check must not depend on the shared pool, so any
  // TSan report here is a genuine isolation bug.
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      std::size_t last_size = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const auto snap = db.snapshot();
        // Epoch and size are monotone across acquires.
        if (snap->epoch() < last_epoch) violations.fetch_add(1);
        if (snap->size() < last_size) violations.fetch_add(1);
        last_epoch = snap->epoch();
        last_size = snap->size();
        // The carried histograms are exact for the frozen range.
        const auto& h = snap->histograms();
        if (total_of(h) != snap->size()) violations.fetch_add(1);
        std::size_t years = 0;
        for (const auto& [year, n] : h.by_year) years += n;
        if (years != snap->size()) violations.fetch_add(1);
        // Row/column projections agree within the epoch.
        const auto recs = snap->records();
        const auto cats = snap->categories();
        const auto yrs = snap->years();
        for (std::size_t i = 0; i < recs.size();
             i += 97) {  // sampled, keeps readers fast
          if (recs[i].category != cats[i]) violations.fetch_add(1);
          if (recs[i].year != yrs[i]) violations.fetch_add(1);
          if (snap->software_name(snap->software_ids()[i]) !=
              recs[i].software) {
            violations.fetch_add(1);
          }
        }
      }
    });
  }

  for (std::size_t pos = 0; pos < rows.size(); pos += kBatch) {
    db.add_batch({rows.begin() + static_cast<std::ptrdiff_t>(pos),
                  rows.begin() + static_cast<std::ptrdiff_t>(pos + kBatch)});
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(db.size(), kTotal);
  EXPECT_EQ(db.epoch(), kTotal / kBatch);
  EXPECT_EQ(db.to_csv(), source.to_csv());
  EXPECT_EQ(rebuild_histograms(*db.snapshot()), db.snapshot()->histograms());
}

}  // namespace
}  // namespace dfsm::bugtraq
