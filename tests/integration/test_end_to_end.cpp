// End-to-end integration: the byte-level sandbox exploits, the predicate-
// level FSM models, the runtime monitor, and the Bugtraq records must all
// tell one consistent story for each case study.
#include <gtest/gtest.h>

#include "analysis/chain_analyzer.h"
#include "analysis/discovery.h"
#include "analysis/monitor.h"
#include "apps/case_study.h"
#include "apps/models.h"
#include "apps/nullhttpd.h"
#include "apps/sendmail.h"
#include "bugtraq/classifier.h"
#include "bugtraq/corpus.h"
#include "bugtraq/curated.h"
#include "bugtraq/stats.h"
#include "core/render.h"
#include "memsim/snapshot.h"

namespace dfsm {
namespace {

TEST(EndToEnd, EveryCaseStudyBaselineExploitsAndFullMaskFoils) {
  for (const auto& study : apps::all_case_studies()) {
    const std::size_t k = study->checks().size();
    const std::vector<bool> none(k, false);
    const std::vector<bool> all(k, true);
    EXPECT_TRUE(study->run_exploit(none).exploited) << study->name();
    const auto protected_run = study->run_exploit(all);
    EXPECT_FALSE(protected_run.exploited) << study->name();
    EXPECT_TRUE(study->run_benign(all).service_ok) << study->name();
  }
}

TEST(EndToEnd, ModelsAndCaseStudiesAgreeOnCheckCounts) {
  for (const auto& study : apps::all_case_studies()) {
    const auto model = study->model();
    // One toggleable check per pFSM — except IIS, whose single pFSM has
    // TWO alternative implementations of the same predicate (decode once
    // vs re-check after the second decode).
    if (study->name().find("IIS") != std::string::npos) {
      EXPECT_GE(study->checks().size(), model.pfsm_count()) << study->name();
    } else {
      EXPECT_EQ(study->checks().size(), model.pfsm_count()) << study->name();
    }
    // Check operation indices stay within the model's chain.
    for (const auto& c : study->checks()) {
      EXPECT_LT(c.operation_index, model.chain().size()) << study->name();
    }
  }
}

TEST(EndToEnd, CheckTypesMatchTheModelPfsmTypes) {
  for (const auto& study : apps::all_case_studies()) {
    const auto model = study->model();
    const auto summaries = model.summaries();
    const auto checks = study->checks();
    if (checks.size() != summaries.size()) {
      // IIS: both checks implement the model's single pFSM (see above);
      // their type must still match it.
      ASSERT_NE(study->name().find("IIS"), std::string::npos) << study->name();
      for (const auto& c : checks) {
        EXPECT_EQ(c.type, summaries[0].type) << study->name();
      }
      continue;
    }
    for (std::size_t i = 0; i < checks.size(); ++i) {
      EXPECT_EQ(checks[i].type, summaries[i].type)
          << study->name() << " check " << i;
    }
  }
}

TEST(EndToEnd, SendmailSandboxMonitorAndModelAgreeAcrossInputs) {
  const struct {
    const char* str_x;
    const char* str_i;
  } cases[] = {
      {"7", "3"},            // benign
      {"100", "1"},          // boundary benign
      {"4294958848", "99"},  // wrapped negative, harmless i
  };
  for (const auto& c : cases) {
    apps::SendmailTTflag app;
    const auto concrete = app.run_debug_command(c.str_x, c.str_i);
    analysis::RuntimeMonitor monitor{apps::SendmailTTflag::figure3_model()};
    const auto modeled = monitor.observe(analysis::sendmail_observation(
        c.str_x, c.str_i, app.process().got().unchanged("setuid")));
    if (concrete.crashed) continue;  // wild writes have no model analogue
    EXPECT_EQ(concrete.mcode_executed, modeled.exploited())
        << c.str_x << "." << c.str_i;
  }
}

TEST(EndToEnd, NullHttpdRunFeedsTheMonitorFaithfully) {
  const auto info = apps::NullHttpd::scout(-800);
  apps::NullHttpd app;
  const auto body = apps::NullHttpd::build_overflow_body(info);
  const auto r = app.handle_post(-800, std::string(body.begin(), body.end()));
  ASSERT_TRUE(r.mcode_executed);

  analysis::RuntimeMonitor monitor{apps::NullHttpd::figure4_model()};
  const auto modeled = monitor.observe(analysis::nullhttpd_observation(
      r.content_len, static_cast<std::int64_t>(r.bytes_read),
      static_cast<std::int64_t>(r.postdata_usable),
      /*links_unchanged=*/false,
      app.process().got().unchanged("free")));
  EXPECT_TRUE(modeled.exploited());
  EXPECT_EQ(monitor.violations().size(), 4u);
}

TEST(EndToEnd, DiscoveredVulnerabilityIsFiledInTheDatabase) {
  // Discovery -> report -> database: the 6255 record exists and its class
  // and category match what the probe campaign demonstrates.
  const auto discovery = analysis::probe_nullhttpd_v051();
  ASSERT_TRUE(discovery.found_new_vulnerability);
  const auto db = bugtraq::curated_records();
  const auto* rec = db.by_id(6255);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->vuln_class, bugtraq::VulnClass::kHeapOverflow);
  EXPECT_EQ(rec->category, bugtraq::Category::kBoundaryConditionError);
}

TEST(EndToEnd, CorpusPlusCuratedStillMatchesFigure1Shares) {
  // Merging the handful of curated real records into the synthetic corpus
  // must not move any rounded percentage — the analysis pipeline tolerates
  // database growth.
  auto db = bugtraq::synthetic_corpus();
  db.merge(bugtraq::curated_records());
  const auto shares = bugtraq::category_breakdown(db);
  for (const auto& s : shares) {
    if (s.category == bugtraq::Category::kInputValidationError) {
      EXPECT_EQ(s.rounded_percent, 23);
    }
    if (s.category == bugtraq::Category::kBoundaryConditionError) {
      EXPECT_EQ(s.rounded_percent, 21);
    }
  }
}

TEST(EndToEnd, EveryModelRendersToDotAndAscii) {
  for (const auto& m : apps::standard_models()) {
    EXPECT_FALSE(core::to_dot(m).empty());
    EXPECT_FALSE(core::to_ascii(m).empty());
  }
}

TEST(EndToEnd, LemmaSweepCoversEveryRegisteredStudy) {
  const auto reports = analysis::sweep_all();
  EXPECT_EQ(reports.size(), apps::all_case_studies().size());
  std::size_t total_masks = 0;
  for (const auto& r : reports) total_masks += r.results.size();
  // 8 + 16 + 16 + 4 + 4 + 4 + 4 + 4 (paper studies) + 3 * 4 (the
  // format-string family) = 72 configurations, all executed.
  EXPECT_EQ(total_masks, 72u);
}

TEST(EndToEnd, SnapshotForensicsLocalizesTheGotCorruption) {
  // The generalized reference-consistency check: snapshot the GOT at
  // "load time", run the exploit, and the diff pinpoints exactly the
  // corrupted slot — no per-slot predicate needed.
  const auto info = apps::NullHttpd::scout(-800);
  apps::NullHttpd app;
  const auto snap =
      memsim::MemorySnapshot::capture(app.process().mem(), {"got"});
  const auto body = apps::NullHttpd::build_overflow_body(info);
  const auto r = app.handle_post(-800, std::string(body.begin(), body.end()));
  ASSERT_TRUE(r.mcode_executed);

  const auto regions = snap.diff(app.process().mem());
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].segment, "got");
  // The changed bytes sit inside the free() slot.
  const auto slot = app.process().got().slot_address("free");
  EXPECT_GE(regions[0].start, slot);
  EXPECT_LT(regions[0].start, slot + 8);
  EXPECT_TRUE(snap.changed_within(app.process().mem(), slot, slot + 8));
}

TEST(EndToEnd, SnapshotForensicsStaysQuietOnBenignTraffic) {
  apps::NullHttpd app;
  const auto snap =
      memsim::MemorySnapshot::capture(app.process().mem(), {"got"});
  const auto r = app.handle_post(300, std::string(300, 'b'));
  ASSERT_TRUE(r.served);
  EXPECT_TRUE(snap.unchanged(app.process().mem()));
}

TEST(EndToEnd, CuratedActivitiesClassifyIntoTheirAssignedCategories) {
  // Ties Table 1's mechanism to every curated record: the classifier,
  // anchored on each record's reference activity, reproduces Bugtraq's
  // category assignment.
  const auto db = bugtraq::curated_records();
  for (const auto& r : db.records()) {
    EXPECT_TRUE(bugtraq::classification_consistent(r)) << r.title;
  }
}

}  // namespace
}  // namespace dfsm
