// Property-based suites: parameterized sweeps over the system's key
// invariants.
#include <gtest/gtest.h>

#include "analysis/chain_analyzer.h"
#include "apps/case_study.h"
#include "apps/ghttpd.h"
#include "apps/nullhttpd.h"
#include "apps/sendmail.h"
#include "apps/xterm.h"
#include "netsim/decode.h"
#include "netsim/http.h"

namespace dfsm {
namespace {

// --- Property: atoi32(s) == atol64(s) truncated to 32 bits, for all s. --

class AtoiProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(AtoiProperty, TruncationLaw) {
  const std::string s = GetParam();
  const auto wide = netsim::atol64(s);
  const auto narrow = netsim::atoi32(s);
  EXPECT_EQ(narrow, static_cast<std::int32_t>(
                        static_cast<std::uint32_t>(static_cast<std::uint64_t>(wide))));
}

INSTANTIATE_TEST_SUITE_P(
    Strings, AtoiProperty,
    ::testing::Values("0", "-1", "100", "2147483647", "2147483648",
                      "4294958848", "4294967295", "4294967296", "9999999999",
                      "  -800", "+42", "junk", "12x", ""));

// --- Property: percent_decode is idempotent exactly when no encoded
//     escapes remain (the IIS predicate's soundness condition). ----------

class DecodeProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(DecodeProperty, SecondDecodeOnlyChangesStringsWithResidualEscapes) {
  const std::string once = netsim::percent_decode(GetParam());
  const std::string twice = netsim::percent_decode(once);
  if (once == twice) {
    SUCCEED();
  } else {
    // A change implies the once-decoded form still contained a valid
    // escape — which is precisely what "..%252f" exploits.
    EXPECT_NE(once.find('%'), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Paths, DecodeProperty,
                         ::testing::Values("plain", "a%20b", "..%2f", "..%252f",
                                           "%25", "%2525", "100%", "%zz",
                                           "..%255c", "mixed%2f%252f"));

// --- Property: NULL HTTPD never overflows under the bounded loop, for a
//     grid of (contentLen, body length). --------------------------------

struct PostCase {
  std::int32_t content_len;
  std::size_t body_len;
};

class BoundedLoopProperty : public ::testing::TestWithParam<PostCase> {};

TEST_P(BoundedLoopProperty, FixedServerNeverViolatesThePredicate) {
  apps::NullHttpdChecks fixed;
  fixed.content_len_nonneg = true;
  fixed.bounded_read_loop = true;
  apps::NullHttpd app{fixed};
  const auto p = GetParam();
  const auto r = app.handle_post(p.content_len, std::string(p.body_len, 'q'));
  if (!r.rejected && !r.crashed) {
    EXPECT_LE(r.bytes_read, r.postdata_usable);
    EXPECT_FALSE(r.heap_overflowed);
  }
}

TEST_P(BoundedLoopProperty, VulnerableServerViolatesIffBodyExceedsBuffer) {
  apps::NullHttpd app;  // v0.5 semantics
  const auto p = GetParam();
  const auto r = app.handle_post(p.content_len, std::string(p.body_len, 'q'));
  if (r.crashed && r.postdata_usable == 0) return;  // calloc failed
  EXPECT_EQ(r.heap_overflowed, r.bytes_read > r.postdata_usable);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoundedLoopProperty,
    ::testing::Values(PostCase{0, 0}, PostCase{0, 1024}, PostCase{0, 1025},
                      PostCase{0, 5000}, PostCase{100, 100},
                      PostCase{100, 2000}, PostCase{1000, 3000},
                      PostCase{2048, 2048}, PostCase{-800, 256},
                      PostCase{-800, 1024}, PostCase{-1000, 30},
                      PostCase{4096, 10000}));

// --- Property: GHTTPD exploits succeed iff unprotected, over lengths. ---

class GhttpdLengthProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GhttpdLengthProperty, OnlyOverflowingRequestsModifyTheReturnAddress) {
  apps::Ghttpd app;
  const std::size_t len = GetParam();
  const auto r = app.serve(std::string(len, 'a'));
  // len chars land at temp..temp+len-1; the first ret-slot byte is hit at
  // len == 201 ('a' != 0x00). At exactly 200 only the NUL terminator
  // touches the slot's low byte, which is already zero for text addresses.
  EXPECT_EQ(r.ret_modified, len >= apps::Ghttpd::kLogBufferSize + 1)
      << "len=" << len;
}

INSTANTIATE_TEST_SUITE_P(Lengths, GhttpdLengthProperty,
                         ::testing::Values(0, 1, 199, 200, 201, 207, 208, 209,
                                           220, 300, 500));

// --- Property: xterm violation fraction is monotone in the window. -----

class XtermWindowProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(XtermWindowProperty, ViolationCountMatchesClosedForm) {
  apps::XtermLogger app;
  const std::size_t w = GetParam();
  const auto r = app.run_race(w);
  // Victim: 1 check + w no-ops + open + write = w+3 steps; attacker: 2.
  EXPECT_EQ(r.report.total_schedules, fssim::interleaving_count(w + 3, 2));
  // Violations = ways to place an ordered attacker pair into the w+1 gaps
  // between check and open = C(w+2, 2).
  EXPECT_EQ(r.report.violating_schedules,
            static_cast<std::size_t>((w + 2) * (w + 1) / 2));
}

INSTANTIATE_TEST_SUITE_P(Windows, XtermWindowProperty,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

// --- Property: the safe-unlink defence beats EVERY variant of the heap
//     payload, not just the canonical one. Random mutations of the
//     crafted metadata (which may crash the allocator, fizzle, or
//     corrupt elsewhere) must never reach Mcode once pFSM3's check is in
//     place: passing the FD->bk==P && BK->fd==P round-trip while still
//     pointing FD at the GOT is not achievable by byte flips. ----------

class PayloadMutationProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PayloadMutationProperty, NoMutatedPayloadBeatsSafeUnlink) {
  apps::NullHttpdChecks hardened;
  hardened.heap_safe_unlink = true;
  const auto info = apps::NullHttpd::scout(-800, hardened);
  const auto pristine = apps::NullHttpd::build_overflow_body(info);

  std::uint64_t rng = 0x243F6A8885A308D3ull * (GetParam() + 1);
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int trial = 0; trial < 25; ++trial) {
    auto body = pristine;
    // Flip 1-4 random bytes anywhere in the overflow tail (header, fd, bk).
    const std::size_t tail = info.postdata_usable;
    const std::size_t flips = 1 + next() % 4;
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = tail + next() % (body.size() - tail);
      body[pos] = static_cast<std::uint8_t>(
          body[pos] ^ static_cast<std::uint8_t>(1 + next() % 255));
    }
    apps::NullHttpd app{hardened};
    const auto r = app.handle_post(-800, std::string(body.begin(), body.end()));
    EXPECT_FALSE(r.mcode_executed) << "trial " << trial;
    EXPECT_TRUE(app.process().got().unchanged("free")) << "trial " << trial;
  }
  // The canonical payload is of course also stopped.
  apps::NullHttpd app{hardened};
  const auto r =
      app.handle_post(-800, std::string(pristine.begin(), pristine.end()));
  EXPECT_FALSE(r.mcode_executed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PayloadMutationProperty,
                         ::testing::Values(1, 2, 3, 4));

// --- Property: Lemma 2 across every study and every mask (the paper's
//     central claim, exhaustively). --------------------------------------

class LemmaProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LemmaProperty, SecuredOperationImpliesFoiledExploit) {
  const auto studies = apps::all_case_studies();
  ASSERT_LT(GetParam(), studies.size());
  const auto report = analysis::sweep(*studies[GetParam()]);
  EXPECT_TRUE(report.lemma2_holds) << report.study_name;
  EXPECT_TRUE(report.baseline_exploited) << report.study_name;
  EXPECT_TRUE(report.benign_preserved) << report.study_name;
}

INSTANTIATE_TEST_SUITE_P(Studies, LemmaProperty,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace dfsm
