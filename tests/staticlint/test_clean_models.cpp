// The curated registry must lint clean: every shipped model — the seven
// paper case studies plus the three format-string family profiles —
// passes the full rule set with zero findings. This is the test-side
// twin of the blocking dfsm_lint CI job.
#include "staticlint/registry.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "staticlint/linter.h"
#include "staticlint/rules.h"

namespace dfsm::staticlint {
namespace {

TEST(CuratedModels, RegistryHasAllTenModels) {
  const auto models = curated_lint_models();
  ASSERT_EQ(models.size(), 10u);
  std::set<std::string> names;
  for (const auto& m : models) names.insert(m.name);
  EXPECT_EQ(names.size(), 10u) << "model names must be unique";
  for (const char* needle :
       {"Sendmail", "NULL HTTPD", "xterm", "Rwall", "IIS", "GHTTPD",
        "rpc.statd", "wu-ftpd", "splitvt", "icecast"}) {
    bool found = false;
    for (const auto& name : names) {
      if (name.find(needle) != std::string::npos) found = true;
    }
    EXPECT_TRUE(found) << "missing curated model: " << needle;
  }
}

TEST(CuratedModels, EveryModelCarriesASourceHint) {
  for (const auto& m : curated_lint_models()) {
    EXPECT_FALSE(m.source_hint.empty()) << m.name;
    EXPECT_EQ(m.source_hint.rfind("src/apps/", 0), 0u) << m.source_hint;
  }
}

TEST(CuratedModels, FullRuleSetReportsZeroFindings) {
  const LintRun run = lint(curated_lint_models());
  EXPECT_EQ(run.models_checked, 10u);
  EXPECT_EQ(run.rules_run, all_rules().size());
  EXPECT_TRUE(run.findings.empty()) << [&] {
    std::string listing;
    for (const auto& f : run.findings) {
      listing += f.rule_id + " at " + f.where.qualified() + ": " + f.message +
                 "\n";
    }
    return listing;
  }();
  EXPECT_EQ(run.errors(), 0u);
  EXPECT_EQ(run.warnings(), 0u);
}

TEST(CuratedModels, SourceHintLookupIsPrefixIndependent) {
  EXPECT_EQ(source_hint_for("Sendmail Signed Integer Overflow (Figure 3)"),
            "src/apps/sendmail.cpp");
  EXPECT_EQ(source_hint_for("format-string family: splitvt #2210 (setuid)"),
            "src/apps/fmtfamily.cpp");
  EXPECT_EQ(source_hint_for("a model nobody registered"), "");
}

}  // namespace
}  // namespace dfsm::staticlint
