// The curated registry must lint clean — with two deliberate
// exceptions: the static race group (DR*) exists precisely to flag the
// paper's two TOCTOU case studies, so the full rule set reports exactly
// one DR001 note on the xterm model and one DR002 note on the Rwall
// model, pinned to their known check/use locations, and nothing else.
// Notes stay below the --fail-on warning threshold, so this is still
// the test-side twin of the blocking dfsm_lint CI job.
#include "staticlint/registry.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "staticlint/linter.h"
#include "staticlint/rules.h"

namespace dfsm::staticlint {
namespace {

TEST(CuratedModels, RegistryHasAllTenModels) {
  const auto models = curated_lint_models();
  ASSERT_EQ(models.size(), 10u);
  std::set<std::string> names;
  for (const auto& m : models) names.insert(m.name);
  EXPECT_EQ(names.size(), 10u) << "model names must be unique";
  for (const char* needle :
       {"Sendmail", "NULL HTTPD", "xterm", "Rwall", "IIS", "GHTTPD",
        "rpc.statd", "wu-ftpd", "splitvt", "icecast"}) {
    bool found = false;
    for (const auto& name : names) {
      if (name.find(needle) != std::string::npos) found = true;
    }
    EXPECT_TRUE(found) << "missing curated model: " << needle;
  }
}

TEST(CuratedModels, EveryModelCarriesASourceHint) {
  for (const auto& m : curated_lint_models()) {
    EXPECT_FALSE(m.source_hint.empty()) << m.name;
    EXPECT_EQ(m.source_hint.rfind("src/apps/", 0), 0u) << m.source_hint;
  }
}

TEST(CuratedModels, FullRuleSetReportsOnlyTheTwoKnownRaceNotes) {
  const LintRun run = lint(curated_lint_models());
  EXPECT_EQ(run.models_checked, 10u);
  EXPECT_EQ(run.rules_run, all_rules().size());
  const auto listing = [&] {
    std::string s;
    for (const auto& f : run.findings) {
      s += f.rule_id + " at " + f.where.qualified() + ": " + f.message + "\n";
    }
    return s;
  };
  ASSERT_EQ(run.findings.size(), 2u) << listing();

  // Figure 5: xterm's check (pFSM1 access check) and use (pFSM2 open)
  // straddle a schedule surface inside one operation.
  const auto& xterm = run.findings[0];
  EXPECT_EQ(xterm.rule_id, "DR001");
  EXPECT_EQ(xterm.severity, Severity::kNote);
  EXPECT_EQ(xterm.where.qualified(),
            "xterm Log File Race Condition (Figure 5)/"
            "Write the log file of user Tom/pFSM2");

  // Figure 6: /etc/utmp is written by op1 and re-read by op2 with no
  // consistency check between the touches.
  const auto& rwall = run.findings[1];
  EXPECT_EQ(rwall.rule_id, "DR002");
  EXPECT_EQ(rwall.severity, Severity::kNote);
  EXPECT_EQ(rwall.where.qualified(),
            "Solaris Rwall Arbitrary File Corruption (Figure 6)/"
            "Rwall daemon writes messages/pFSM2");

  // Notes only: the registry still passes the --fail-on warning gate.
  EXPECT_EQ(run.errors(), 0u);
  EXPECT_EQ(run.warnings(), 0u);
}

TEST(CuratedModels, SourceHintLookupIsPrefixIndependent) {
  EXPECT_EQ(source_hint_for("Sendmail Signed Integer Overflow (Figure 3)"),
            "src/apps/sendmail.cpp");
  EXPECT_EQ(source_hint_for("format-string family: splitvt #2210 (setuid)"),
            "src/apps/fmtfamily.cpp");
  EXPECT_EQ(source_hint_for("a model nobody registered"), "");
}

}  // namespace
}  // namespace dfsm::staticlint
