// Emitter tests: text/JSON/SARIF structure, JSON string escaping, and
// the determinism contract — the full pipeline (curated registry →
// lint → emit) is byte-identical at every thread count.
#include "staticlint/emit.h"

#include <string>

#include <gtest/gtest.h>

#include "runtime/thread_pool.h"
#include "staticlint/linter.h"
#include "staticlint/model_ir.h"
#include "staticlint/registry.h"
#include "staticlint/rules.h"

namespace dfsm::staticlint {
namespace {

/// One-operation model with an injected ST003 defect (and a message-
/// hostile name) so the emitters have a finding to render.
LintModel defective_model() {
  LintModel m;
  m.name = "quote\" backslash\\ newline\n tab\t bell\x07 model";
  m.bugtraq_ids = {42};
  m.has_metadata = true;
  m.source_hint = "src/apps/demo.cpp";
  LintOperation op;
  op.name = "op1";
  m.operations.push_back(op);  // no pFSMs -> ST003
  m.gates = {"Execute code"};
  return m;
}

LintRun defective_run() {
  LintOptions opt;
  opt.rule_ids = {"ST003"};
  return lint({defective_model()}, opt);
}

TEST(EmitText, ListsFindingAndSummary) {
  const std::string text = emit_text(defective_run());
  EXPECT_NE(text.find("checked 1 model(s) against 1 rule(s)"),
            std::string::npos);
  EXPECT_NE(text.find("error ST003:"), std::string::npos);
  EXPECT_NE(text.find("/op1: the operation contains no pFSMs"),
            std::string::npos);
  EXPECT_NE(text.find("    hint: "), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 0 warning(s)"), std::string::npos);

  const std::string clean = emit_text(lint({}));
  EXPECT_NE(clean.find("no findings"), std::string::npos);
}

TEST(EmitJson, EscapesEveryHostileCharacter) {
  const std::string json = emit_json(defective_run());
  EXPECT_NE(json.find("quote\\\" backslash\\\\ newline\\n tab\\t "
                      "bell\\u0007 model"),
            std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"ST003\""), std::string::npos);
  EXPECT_NE(json.find("\"source\": \"src/apps/demo.cpp\""),
            std::string::npos);
  // The raw control characters must not survive into the document.
  EXPECT_EQ(json.find('\x07'), std::string::npos);
}

TEST(EmitSarif, CarriesSchemaRulesAndLocations) {
  const std::string sarif = emit_sarif(defective_run());
  EXPECT_NE(sarif.find("\"$schema\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"dfsm_lint\""), std::string::npos);
  // Every registry rule is documented even when only one fired.
  for (const auto& r : all_rules()) {
    EXPECT_NE(sarif.find(std::string("{\"id\": \"") + r.info.id + "\""),
              std::string::npos)
        << r.info.id;
  }
  // ST003 is registry index 2; the result must reference it.
  EXPECT_NE(sarif.find("\"ruleId\": \"ST003\", \"ruleIndex\": 2, "
                       "\"level\": \"error\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/apps/demo.cpp\", "
                       "\"uriBaseId\": \"%SRCROOT%\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"logicalLocations\""), std::string::npos);

  // A model without a source hint still gets a physical location — a
  // stable synthetic URI derived from the model name — because GitHub
  // code scanning drops results that carry none.
  LintModel bare = defective_model();
  bare.source_hint.clear();
  LintOptions opt;
  opt.rule_ids = {"ST003"};
  const std::string no_hint = emit_sarif(lint({bare}, opt));
  EXPECT_NE(no_hint.find("physicalLocation"), std::string::npos);
  EXPECT_NE(
      no_hint.find("\"uri\": \"models/quote-backslash-newline-tab-bell-model\""),
      std::string::npos)
      << no_hint;
  EXPECT_NE(no_hint.find("logicalLocations"), std::string::npos);
}

TEST(EmitText, MemoTelemetryAppearsOnlyWhenMemoized) {
  LintMemoStore memo;
  LintOptions opt;
  opt.rule_ids = {"ST003"};
  opt.memo = &memo;
  const LintModel model = defective_model();
  (void)lint({model}, opt);  // warm
  const LintRun warm = lint({model}, opt);
  const std::string text = emit_text(warm);
  EXPECT_NE(text.find("memo: 0 rule execution(s), 1 hit(s)"),
            std::string::npos)
      << text;
  EXPECT_EQ(emit_text(defective_run()).find("memo:"), std::string::npos);

  const std::string json = emit_json(warm);
  EXPECT_NE(json.find("\"memoized\": true"), std::string::npos);
  EXPECT_NE(json.find("\"memo_hits\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rules_executed\": 0"), std::string::npos);
}

TEST(EmitDeterminism, ByteIdenticalAtEveryThreadCount) {
  // Curated models plus injected defects, so the comparison covers a
  // non-trivial finding order and not just the zero-findings footer.
  auto models = curated_lint_models();
  for (int i = 0; i < 3; ++i) {
    LintModel bad = defective_model();
    bad.name = "defective #" + std::to_string(i);
    bad.gates.pop_back();  // adds ST002 next to ST003
    models.push_back(bad);
  }

  // Reference: explicit serial pool.
  runtime::ThreadPool serial{0};
  const LintRun base_run = lint(models, {}, serial);
  EXPECT_GE(base_run.findings.size(), 6u);
  const std::string base_json = emit_json(base_run);
  const std::string base_sarif = emit_sarif(base_run);
  const std::string base_text = emit_text(base_run);

  for (std::size_t threads : {0u, 1u, 4u}) {
    runtime::ThreadPool::set_global_threads(threads);
    const LintRun run = lint(models);
    EXPECT_EQ(emit_json(run), base_json) << "threads=" << threads;
    EXPECT_EQ(emit_sarif(run), base_sarif) << "threads=" << threads;
    EXPECT_EQ(emit_text(run), base_text) << "threads=" << threads;
  }
  runtime::ThreadPool::set_global_threads(runtime::ThreadPool::default_threads());
}

}  // namespace
}  // namespace dfsm::staticlint
