// Per-rule tests for the static model verifier: a clean base fixture
// passes the whole registry, and one injected defect per rule triggers
// exactly that rule at the expected location. Fixtures are built
// directly in the IR so defects the hardened core builders refuse
// (gate-arity skew, duplicate names) stay testable.
#include "staticlint/rules.h"

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/sendmail.h"
#include "core/chain.h"
#include "core/pfsm.h"
#include "core/predicate.h"
#include "staticlint/linter.h"
#include "staticlint/model_ir.h"

namespace dfsm::staticlint {
namespace {

using core::PfsmType;
using core::PredicateKind;

LintPfsm make_pfsm(std::string name, std::string question) {
  LintPfsm p;
  p.name = std::move(name);
  p.type = PfsmType::kContentAttributeCheck;
  p.activity = "write x";
  p.action = "reject the input";
  p.spec = LintPredicate{std::move(question), PredicateKind::kCustom};
  p.impl = LintPredicate{"-", PredicateKind::kCustom};
  p.declared_secure = false;
  return p;
}

/// A two-operation model that violates no rule: unique names, 1:1
/// gates, a final consequence, content-form questions on
/// content-typed pFSMs, and no Table 2 row (the name is unregistered).
LintModel clean_base() {
  LintModel m;
  m.name = "base";
  m.bugtraq_ids = {1};
  m.vulnerability_class = "boundary condition error";
  m.software = "demo";
  m.consequence = "execute code";
  m.has_metadata = true;
  LintOperation op1;
  op1.name = "op1";
  op1.object_description = "attacker input";
  op1.pfsms.push_back(make_pfsm("pFSM1", "does x fit the buffer?"));
  LintOperation op2;
  op2.name = "op2";
  op2.object_description = "derived pointer";
  op2.pfsms.push_back(make_pfsm("pFSM2", "does the write stay in bounds?"));
  m.operations = {op1, op2};
  m.gates = {"corrupt x", "Execute code"};
  return m;
}

/// Runs exactly one rule over one model.
std::vector<Diagnostic> run_rule(const char* id, const LintModel& m) {
  LintOptions opt;
  opt.rule_ids = {id};
  return lint({m}, opt).findings;
}

TEST(Registry, CleanBasePassesEveryRule) {
  const LintRun run = lint({clean_base()});
  EXPECT_TRUE(run.findings.empty());
  EXPECT_EQ(run.models_checked, 1u);
  EXPECT_EQ(run.rules_run, all_rules().size());
}

TEST(Registry, StableGroupOrderAndLookup) {
  const auto& rules = all_rules();
  ASSERT_EQ(rules.size(), 20u);
  // ST* precede LM* precede TX* precede DR* precede GR* — finding order
  // depends on this.
  std::string last_group_seen;
  std::vector<std::string> group_order;
  for (const auto& r : rules) {
    if (r.info.group != last_group_seen) {
      group_order.push_back(r.info.group);
      last_group_seen = r.info.group;
    }
  }
  EXPECT_EQ(group_order, (std::vector<std::string>{"structural", "lemma",
                                                   "taxonomy", "race",
                                                   "graph"}));
  ASSERT_NE(find_rule("ST001"), nullptr);
  EXPECT_EQ(find_rule("ST001")->info.severity, Severity::kError);
  EXPECT_EQ(find_rule("ZZ999"), nullptr);
}

TEST(Linter, UnknownRuleIdThrows) {
  LintOptions opt;
  opt.rule_ids = {"ST001", "NOPE"};
  EXPECT_THROW((void)lint({clean_base()}, opt), std::invalid_argument);
}

TEST(RuleST001, EmptyChain) {
  LintModel m = clean_base();
  m.operations.clear();
  m.gates.clear();
  const auto out = run_rule("ST001", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "ST001");
  EXPECT_EQ(out[0].severity, Severity::kError);
  EXPECT_EQ(out[0].where.qualified(), "base");
}

TEST(RuleST002, GateAritySkew) {
  LintModel m = clean_base();
  m.gates.pop_back();
  const auto out = run_rule("ST002", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "ST002");
  EXPECT_NE(out[0].message.find("2 operations"), std::string::npos);
  EXPECT_NE(out[0].message.find("1 propagation gates"), std::string::npos);
}

TEST(RuleST003, OperationWithoutPfsms) {
  LintModel m = clean_base();
  m.operations[1].pfsms.clear();
  const auto out = run_rule("ST003", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "ST003");
  EXPECT_EQ(out[0].where.qualified(), "base/op2");
}

TEST(RuleST004, DuplicateOperationName) {
  LintModel m = clean_base();
  m.operations[1].name = "op1";
  const auto out = run_rule("ST004", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "ST004");
  // Anchored at the *second* occurrence, pointing back at the first.
  EXPECT_EQ(out[0].where.qualified(), "base/op1");
  EXPECT_NE(out[0].message.find("operation 1"), std::string::npos);
}

TEST(RuleST005, DuplicatePfsmNameAcrossOperations) {
  LintModel m = clean_base();
  m.operations[1].pfsms[0].name = "pFSM1";
  const auto out = run_rule("ST005", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "ST005");
  EXPECT_EQ(out[0].where.qualified(), "base/op2/pFSM1");
  EXPECT_NE(out[0].message.find("first used in operation 'op1'"),
            std::string::npos);
}

TEST(RuleST006, EmptyActivity) {
  LintModel m = clean_base();
  m.operations[0].pfsms[0].activity.clear();
  const auto out = run_rule("ST006", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "ST006");
  EXPECT_EQ(out[0].severity, Severity::kWarning);
  EXPECT_EQ(out[0].where.qualified(), "base/op1/pFSM1");
}

TEST(RuleST007, EmptyPredicateDescriptions) {
  LintModel m = clean_base();
  m.operations[0].pfsms[0].spec.description.clear();
  m.operations[1].pfsms[0].impl.description.clear();
  const auto out = run_rule("ST007", m);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].where.qualified(), "base/op1/pFSM1");
  EXPECT_NE(out[0].message.find("specification"), std::string::npos);
  EXPECT_EQ(out[1].where.qualified(), "base/op2/pFSM2");
  EXPECT_NE(out[1].message.find("implementation"), std::string::npos);
  // "-" is the documented no-check placeholder for impl and is clean.
  EXPECT_TRUE(run_rule("ST007", clean_base()).empty());
}

TEST(RuleST008, FinalGateNamesNoConsequence) {
  LintModel m = clean_base();
  m.gates.back().clear();
  const auto out = run_rule("ST008", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "ST008");
  EXPECT_EQ(out[0].where.qualified(), "base");
}

TEST(RuleLM001, AllPfsmsDeclaredSecure) {
  LintModel m = clean_base();
  for (auto& op : m.operations) {
    for (auto& p : op.pfsms) {
      p.declared_secure = true;
      p.impl = p.spec;  // keep LM002 out of the picture
    }
  }
  const auto out = run_rule("LM001", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "LM001");
  EXPECT_EQ(out[0].severity, Severity::kError);
  EXPECT_EQ(out[0].where.qualified(), "base");

  // A bare chain carries no vulnerability-report metadata, so the
  // self-contradiction cannot arise and the rule skips it.
  m.has_metadata = false;
  EXPECT_TRUE(run_rule("LM001", m).empty());
}

TEST(RuleLM002, DeclaredSecureImplMismatch) {
  LintModel m = clean_base();
  auto& p = m.operations[0].pfsms[0];
  p.declared_secure = true;  // impl stays "-", differing from the spec
  const auto out = run_rule("LM002", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "LM002");
  EXPECT_EQ(out[0].where.qualified(), "base/op1/pFSM1");

  // Matching description AND construction kind is consistent.
  p.impl = p.spec;
  EXPECT_TRUE(run_rule("LM002", m).empty());

  // Same text but a reject-all construction still contradicts the
  // declaration: the kinds differ.
  p.impl.kind = PredicateKind::kRejectAll;
  EXPECT_EQ(run_rule("LM002", m).size(), 1u);
}

TEST(RuleLM003, RejectAllFoilsDownstreamOperations) {
  LintModel m = clean_base();
  auto& p = m.operations[0].pfsms[0];
  p.spec.kind = PredicateKind::kRejectAll;
  p.impl.kind = PredicateKind::kRejectAll;
  const auto out = run_rule("LM003", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "LM003");
  EXPECT_EQ(out[0].severity, Severity::kWarning);
  EXPECT_EQ(out[0].where.qualified(), "base/op1/pFSM1");
  EXPECT_NE(out[0].message.find("1 downstream operation(s)"),
            std::string::npos);

  // A reject-all in the *last* operation leaves nothing unreachable.
  LintModel tail = clean_base();
  auto& last = tail.operations[1].pfsms[0];
  last.spec.kind = PredicateKind::kRejectAll;
  last.impl.kind = PredicateKind::kRejectAll;
  EXPECT_TRUE(run_rule("LM003", tail).empty());
}

TEST(RuleTX001, QuestionFormDisagreesWithType) {
  LintModel m = clean_base();
  auto& p = m.operations[0].pfsms[0];
  // A reference-consistency question on a content-typed pFSM.
  p.spec.description = "is the file binding unchanged between check and use?";
  const auto out = run_rule("TX001", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "TX001");
  EXPECT_EQ(out[0].where.qualified(), "base/op1/pFSM1");

  // Retyping the pFSM to match the question clears the finding.
  p.type = PfsmType::kReferenceConsistencyCheck;
  EXPECT_TRUE(run_rule("TX001", m).empty());

  // An object-type question on a content-typed pFSM.
  LintModel m2 = clean_base();
  m2.operations[0].pfsms[0].spec.description =
      "the input represents a long integer?";
  EXPECT_EQ(run_rule("TX001", m2).size(), 1u);
}

TEST(RuleTX002, CensusDisagreesWithTable2Row) {
  LintModel m = clean_base();
  // Adopt a registered name: IIS's Table 2 row is one lone
  // content/attribute check, but the base fixture carries two.
  m.name = "IIS Filename Superfluous Decoding (Figure 7)";
  const auto out = run_rule("TX002", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "TX002");
  EXPECT_EQ(out[0].severity, Severity::kError);
  EXPECT_EQ(out[0].where.qualified(),
            "IIS Filename Superfluous Decoding (Figure 7)");
  EXPECT_NE(out[0].message.find("0 object type / 2 content-attribute"),
            std::string::npos);

  // Unregistered names have no row to disagree with.
  EXPECT_TRUE(run_rule("TX002", clean_base()).empty());
}

TEST(ModelIr, SnapshotsCoreModelWithoutCallables) {
  const auto model = apps::make_sendmail_case_study()->model();
  const LintModel ir = LintModel::from_model(model, "src/apps/sendmail.cpp");
  EXPECT_EQ(ir.name, model.name());
  EXPECT_TRUE(ir.has_metadata);
  EXPECT_EQ(ir.source_hint, "src/apps/sendmail.cpp");
  ASSERT_EQ(ir.operations.size(), model.chain().size());
  EXPECT_EQ(ir.gates.size(), model.chain().gates().size());

  // from_chain drops the report metadata and records that it did.
  const LintModel bare = LintModel::from_chain(model.chain());
  EXPECT_FALSE(bare.has_metadata);
  EXPECT_TRUE(bare.bugtraq_ids.empty());
  EXPECT_EQ(bare.operations.size(), ir.operations.size());
}

}  // namespace
}  // namespace dfsm::staticlint
