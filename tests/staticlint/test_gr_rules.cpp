// Graph-consistency rule group (GR001–GR003): compound compositions —
// attack paths flattened into one chain — must consume facts that some
// earlier step (or the attacker's start) establishes, in order, at a
// sufficient privilege. Fixtures are built directly on the IR's
// compound section; the composed-path integration (compose_attack_path
// -> to_lint_model -> clean GR verdict) lives in the analysis tests.
#include "staticlint/rules.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "staticlint/linter.h"
#include "staticlint/model_ir.h"

namespace dfsm::staticlint {
namespace {

std::vector<Diagnostic> run_rule(const char* id, const LintModel& m) {
  LintOptions opt;
  opt.rule_ids = {id};
  return lint({m}, opt).findings;
}

LintCompoundStep step(std::string model, std::string pre_host,
                      std::string pre_priv, std::string con_host,
                      std::string con_priv) {
  LintCompoundStep s;
  s.model = std::move(model);
  s.pre_host = std::move(pre_host);
  s.pre_privilege = std::move(pre_priv);
  s.con_host = std::move(con_host);
  s.con_privilege = std::move(con_priv);
  return s;
}

/// A two-hop path shaped like the attack graph emits it: remote exploit
/// establishes user@host0, local escalation consumes it.
LintModel valid_compound() {
  LintModel m;
  m.name = "attack path: [remote] [local]";
  m.consequence = "root@host0";
  LintOperation op;
  op.name = "s1:op";
  LintPfsm p;
  p.name = "s1:pFSM1";
  p.type = core::PfsmType::kContentAttributeCheck;
  p.activity = "handle the request";
  p.action = "reject";
  p.spec = LintPredicate{"is the request well-formed?",
                         core::PredicateKind::kCustom};
  p.impl = LintPredicate{"-", core::PredicateKind::kCustom};
  op.pfsms.push_back(p);
  m.operations.push_back(op);
  m.gates = {"root@host0 via local"};
  m.compound = {
      step("remote", "attacker", "none", "host0", "user"),
      step("local", "host0", "user", "host0", "root"),
  };
  return m;
}

TEST(RuleGR, ValidCompositionPassesAllThreeRules) {
  const LintModel m = valid_compound();
  EXPECT_TRUE(run_rule("GR001", m).empty());
  EXPECT_TRUE(run_rule("GR002", m).empty());
  EXPECT_TRUE(run_rule("GR003", m).empty());
}

TEST(RuleGR, NonCompoundModelsAreExemptEntirely) {
  LintModel m = valid_compound();
  m.compound.clear();  // an ordinary per-vulnerability model
  EXPECT_TRUE(run_rule("GR001", m).empty());
  EXPECT_TRUE(run_rule("GR002", m).empty());
  EXPECT_TRUE(run_rule("GR003", m).empty());
}

TEST(RuleGR001, FlagsAPreconditionNoStepEstablishes) {
  LintModel m = valid_compound();
  m.compound[1] = step("local", "host9", "user", "host0", "root");
  const auto out = run_rule("GR001", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].severity, Severity::kError);
  EXPECT_EQ(out[0].where.qualified(), m.name + "/local");
  EXPECT_NE(out[0].message.find("user@host9"), std::string::npos);
}

TEST(RuleGR002, FlagsAProducerThatOnlyRunsLater) {
  LintModel m = valid_compound();
  // Swap the hops: the consumer now precedes its only producer.
  m.compound = {
      step("local", "host0", "user", "host0", "root"),
      step("remote", "attacker", "none", "host0", "user"),
      step("pivot", "host0", "root", "host1", "user"),
  };
  // Step 1 (index 0) is exempt by position; the pivot at index 2 has an
  // upstream producer (index 0) so only a fully-downstream producer
  // trips the rule.
  EXPECT_TRUE(run_rule("GR002", m).empty());

  m.compound = {
      step("remote", "attacker", "none", "host1", "user"),
      step("local", "host0", "user", "host0", "root"),
      step("late-remote", "attacker", "none", "host0", "user"),
  };
  const auto out = run_rule("GR002", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].where.qualified(), m.name + "/local");
  EXPECT_NE(out[0].message.find("LATER"), std::string::npos);
}

TEST(RuleGR003, FlagsAnUpstreamConsequenceTooWeakForTheStep) {
  LintModel m = valid_compound();
  // The remote hop only yields network presence; the local hop still
  // demands a user account.
  m.compound[0] = step("remote", "attacker", "none", "host0", "none");
  const auto out = run_rule("GR003", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].severity, Severity::kError);
  EXPECT_EQ(out[0].where.qualified(), m.name + "/local");
  EXPECT_NE(out[0].message.find("only 'none'"), std::string::npos);

  // A root-level producer satisfies a user-level consumer (monotone).
  m.compound[0] = step("remote", "attacker", "none", "host0", "root");
  EXPECT_TRUE(run_rule("GR003", m).empty());
}

TEST(RuleGR, UnknownPrivilegeNamesRankAboveRootDefensively) {
  LintModel m = valid_compound();
  // A typo'd consequence must not read as "too weak" (rank 3 > any
  // need); GR003 stays quiet rather than crying wolf on unknown names.
  m.compound[0] = step("remote", "attacker", "none", "host0", "sysadmin");
  EXPECT_TRUE(run_rule("GR003", m).empty());
}

}  // namespace
}  // namespace dfsm::staticlint
