// The universal incremental lint pipeline (DESIGN.md §13): lint_chain /
// lint_model_ir snapshot runtime-built chains into the IR and fan the
// (model, rule) grid through the memo store. Covered here: the Figure 4
// model lints clean through the universal entry, re-linting an
// unchanged model executes zero rules, per-rule invalidation on a
// fingerprint change, and byte-identical findings with and without the
// store at DFSM_THREADS 0/1/4.
#include "staticlint/linter.h"

#include <string>

#include <gtest/gtest.h>

#include "apps/nullhttpd.h"
#include "apps/xterm.h"
#include "runtime/thread_pool.h"
#include "staticlint/emit.h"
#include "staticlint/memo.h"
#include "staticlint/model_ir.h"
#include "staticlint/registry.h"
#include "staticlint/rules.h"

namespace dfsm::staticlint {
namespace {

TEST(LintChain, Figure4ModelLintsCleanThroughTheUniversalEntry) {
  const auto model = apps::NullHttpd::figure4_model();
  const LintRun run =
      lint_chain(model.chain(), {}, source_hint_for(model.name()));
  EXPECT_EQ(run.models_checked, 1u);
  EXPECT_EQ(run.rules_run, all_rules().size());
  EXPECT_TRUE(run.findings.empty()) << run.findings.size() << " finding(s)";
  EXPECT_FALSE(run.memoized);
  EXPECT_EQ(run.rules_executed, all_rules().size());
}

TEST(LintChain, SourceHintFlowsOntoEveryFinding) {
  // The xterm chain carries the curated DR001 race note; the hint we
  // pass must surface on it.
  const auto model = apps::XtermLogger::figure5_model();
  const LintRun run = lint_chain(model.chain(), {}, "src/apps/xterm.cpp");
  ASSERT_EQ(run.findings.size(), 1u);
  EXPECT_EQ(run.findings[0].rule_id, "DR001");
  EXPECT_EQ(run.findings[0].source_hint, "src/apps/xterm.cpp");
}

TEST(LintMemo, SecondLintOfUnchangedModelExecutesZeroRules) {
  LintMemoStore memo;
  LintOptions opt;
  opt.memo = &memo;
  const LintModel model =
      LintModel::from_model(apps::NullHttpd::figure4_model());

  const LintRun cold = lint_model_ir(model, opt);
  EXPECT_TRUE(cold.memoized);
  EXPECT_EQ(cold.memo_hits, 0u);
  EXPECT_EQ(cold.memo_misses, all_rules().size());
  EXPECT_EQ(cold.rules_executed, all_rules().size());

  const LintRun warm = lint_model_ir(model, opt);
  EXPECT_TRUE(warm.memoized);
  EXPECT_EQ(warm.rules_executed, 0u);
  EXPECT_EQ(warm.memo_hits, all_rules().size());
  EXPECT_EQ(warm.memo_misses, 0u);
  EXPECT_EQ(warm.memo_invalidated, 0u);

  // Identical findings either way (both empty for Figure 4, so compare
  // the full emitted document to also cover the order and telemetry).
  EXPECT_EQ(cold.findings.size(), warm.findings.size());

  const auto stats = memo.stats();
  EXPECT_EQ(stats.hits, all_rules().size());
  EXPECT_EQ(stats.misses, all_rules().size());
  EXPECT_EQ(stats.size, all_rules().size());
}

TEST(LintMemo, FingerprintChangeInvalidatesEveryStaleCell) {
  LintMemoStore memo;
  LintOptions opt;
  opt.memo = &memo;
  LintModel model = LintModel::from_model(apps::NullHttpd::figure4_model());
  (void)lint_model_ir(model, opt);  // fill

  // Same model name, different content: every cached cell is stale.
  model.consequence = "a different consequence";
  const LintRun run = lint_model_ir(model, opt);
  EXPECT_EQ(run.memo_hits, 0u);
  EXPECT_EQ(run.memo_invalidated, all_rules().size());
  EXPECT_EQ(run.rules_executed, all_rules().size());

  // And the refreshed entries serve the edited model afterwards.
  const LintRun warm = lint_model_ir(model, opt);
  EXPECT_EQ(warm.rules_executed, 0u);
  EXPECT_EQ(warm.memo_hits, all_rules().size());
}

TEST(LintMemo, FindingsAreByteIdenticalWithAndWithoutTheStore) {
  // Curated models => non-trivial findings (the two DR race notes).
  const auto models = curated_lint_models();

  runtime::ThreadPool serial{0};
  const LintRun direct = lint(models, {}, serial);
  const std::string direct_json = emit_json(direct);

  for (std::size_t threads : {0u, 1u, 4u}) {
    runtime::ThreadPool::set_global_threads(threads);

    LintMemoStore memo;
    LintOptions opt;
    opt.memo = &memo;
    const LintRun cold = lint(models, opt);
    const LintRun warm = lint(models, opt);

    // The findings sections must match the memo-less run exactly; only
    // telemetry (memoized flag, hit counts) may differ, so compare
    // diagnostics field by field via the SARIF body (no telemetry).
    EXPECT_EQ(emit_sarif(cold), emit_sarif(direct)) << "threads=" << threads;
    EXPECT_EQ(emit_sarif(warm), emit_sarif(direct)) << "threads=" << threads;
    EXPECT_EQ(warm.rules_executed, 0u) << "threads=" << threads;

    // Telemetry itself is thread-invariant: the lookup and insert
    // phases are serial by construction.
    EXPECT_EQ(cold.memo_misses, models.size() * all_rules().size());
    EXPECT_EQ(warm.memo_hits, models.size() * all_rules().size());
  }
  runtime::ThreadPool::set_global_threads(
      runtime::ThreadPool::default_threads());
}

TEST(LintMemo, DistinctRuleSelectionsShareTheStoreSoundly) {
  LintMemoStore memo;
  const LintModel model =
      LintModel::from_model(apps::XtermLogger::figure5_model());

  LintOptions dr_only;
  dr_only.rule_ids = {"DR001"};
  dr_only.memo = &memo;
  const LintRun first = lint_model_ir(model, dr_only);
  ASSERT_EQ(first.findings.size(), 1u);

  // A full-registry run over the same model hits the DR001 cell and
  // misses the rest — cells are keyed (model, rule), not (model, run).
  LintOptions full;
  full.memo = &memo;
  const LintRun second = lint_model_ir(model, full);
  EXPECT_EQ(second.memo_hits, 1u);
  EXPECT_EQ(second.memo_misses, all_rules().size() - 1);
  ASSERT_EQ(second.findings.size(), 1u);
  EXPECT_EQ(second.findings[0].rule_id, "DR001");
}

}  // namespace
}  // namespace dfsm::staticlint
