// SARIF baseline suppression: a previous run's SARIF is the accepted
// state, and only findings not in it count against the gate. Round
// trip: emit_sarif -> Baseline::from_sarif -> apply_baseline suppresses
// every finding of the same run; a new defect stays fresh.
#include "staticlint/baseline.h"

#include <string>

#include <gtest/gtest.h>

#include "staticlint/emit.h"
#include "staticlint/linter.h"
#include "staticlint/model_ir.h"
#include "staticlint/registry.h"

namespace dfsm::staticlint {
namespace {

LintModel defective(const std::string& name) {
  LintModel m;
  m.name = name;
  m.consequence = "execute code";
  LintOperation op;
  op.name = "op1";
  m.operations.push_back(op);  // no pFSMs -> ST003
  m.gates = {"Execute code"};
  return m;
}

TEST(Baseline, RoundTripSuppressesEveryKnownFinding) {
  // The curated registry carries the two known race notes.
  const LintRun run = lint(curated_lint_models());
  ASSERT_EQ(run.findings.size(), 2u);

  const auto baseline = Baseline::from_sarif(emit_sarif(run));
  EXPECT_EQ(baseline.size(), 2u);

  const auto split = apply_baseline(run, baseline);
  EXPECT_TRUE(split.fresh.empty());
  ASSERT_EQ(split.suppressed.size(), 2u);
  EXPECT_EQ(split.suppressed[0].rule_id, "DR001");
  EXPECT_EQ(split.suppressed[1].rule_id, "DR002");
}

TEST(Baseline, FreshFindingsSurviveTheSplitInOrder) {
  const LintRun old_run = lint({defective("known-bad")});
  const auto baseline = Baseline::from_sarif(emit_sarif(old_run));

  LintRun now = lint({defective("known-bad"), defective("new-bad")});
  const auto split = apply_baseline(now, baseline);
  ASSERT_FALSE(split.suppressed.empty());
  ASSERT_FALSE(split.fresh.empty());
  for (const auto& d : split.suppressed) {
    EXPECT_EQ(d.where.model, "known-bad");
  }
  for (const auto& d : split.fresh) {
    EXPECT_EQ(d.where.model, "new-bad");
  }
  EXPECT_EQ(split.fresh.size() + split.suppressed.size(),
            now.findings.size());
}

TEST(Baseline, IdentityIsRulePlusLocationNotMessage) {
  const LintRun run = lint({defective("model-a")});
  ASSERT_FALSE(run.findings.empty());
  const auto baseline = Baseline::from_sarif(emit_sarif(run));

  // Reworded message, same rule + qualified location: still suppressed.
  LintRun reworded = run;
  for (auto& d : reworded.findings) d.message = "entirely different words";
  EXPECT_TRUE(apply_baseline(reworded, baseline).fresh.empty());

  // Same rule at a different location: fresh.
  LintRun moved = run;
  for (auto& d : moved.findings) d.where.model = "model-b";
  EXPECT_EQ(apply_baseline(moved, baseline).fresh.size(),
            moved.findings.size());
}

TEST(Baseline, EscapedNamesRoundTripThroughSarif) {
  const LintRun run = lint({defective("quote\" backslash\\ tab\t model")});
  ASSERT_FALSE(run.findings.empty());
  const auto baseline = Baseline::from_sarif(emit_sarif(run));
  EXPECT_TRUE(apply_baseline(run, baseline).fresh.empty());
}

TEST(Baseline, RejectsTextWithoutAResultsArray) {
  EXPECT_THROW((void)Baseline::from_sarif("{}"), std::invalid_argument);
  EXPECT_THROW((void)Baseline::from_sarif("not json at all"),
               std::invalid_argument);
}

TEST(Baseline, EmptyResultsArrayIsAValidEmptyBaseline) {
  const LintRun clean = lint({});
  const auto baseline = Baseline::from_sarif(emit_sarif(clean));
  EXPECT_EQ(baseline.size(), 0u);
  const LintRun run = lint({defective("anything")});
  EXPECT_EQ(apply_baseline(run, baseline).fresh.size(), run.findings.size());
}

}  // namespace
}  // namespace dfsm::staticlint
