// Static TOCTOU/race rule group (DR001–DR004): the rules must flag the
// paper's two known races — xterm Figure 5 (check-then-use inside one
// operation) and rwall Figure 6 (shared object re-read across
// operations) — at their exact locations, flag the synthetic fixtures
// for the two warning rules, and stay silent on every non-racy shape.
#include "staticlint/rules.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/rwall.h"
#include "apps/xterm.h"
#include "staticlint/linter.h"
#include "staticlint/model_ir.h"

namespace dfsm::staticlint {
namespace {

using core::PfsmType;
using core::PredicateKind;

std::vector<Diagnostic> run_rule(const char* id, const LintModel& m) {
  LintOptions opt;
  opt.rule_ids = {id};
  return lint({m}, opt).findings;
}

LintPfsm pfsm(std::string name, PfsmType type, std::string activity,
              bool secure = false) {
  LintPfsm p;
  p.name = std::move(name);
  p.type = type;
  p.activity = std::move(activity);
  p.action = "proceed";
  p.spec = LintPredicate{"is the state acceptable?", PredicateKind::kCustom};
  p.impl = LintPredicate{"-", PredicateKind::kCustom};
  p.declared_secure = secure;
  return p;
}

TEST(RuleDR001, FlagsTheXtermCheckThenUseWindow) {
  const auto m = LintModel::from_model(apps::XtermLogger::figure5_model());
  const auto out = run_rule("DR001", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "DR001");
  EXPECT_EQ(out[0].severity, Severity::kNote);
  EXPECT_EQ(out[0].where.qualified(),
            "xterm Log File Race Condition (Figure 5)/"
            "Write the log file of user Tom/pFSM2");
  // The message names the yielding operation so the report reads like
  // the paper's narrative: check, then open across a schedule surface.
  EXPECT_NE(out[0].message.find("open"), std::string::npos);
  EXPECT_NE(out[0].message.find("/usr/tom/x"), std::string::npos);
}

TEST(RuleDR001, SilentWhenTheUseIsDeclaredSecureOrDoesNotYield) {
  LintModel m;
  m.name = "guarded";
  m.consequence = "none";
  LintOperation op;
  op.name = "op1";
  op.pfsms.push_back(
      pfsm("pFSM1", PfsmType::kContentAttributeCheck, "check the request"));
  op.pfsms.push_back(pfsm("pFSM2", PfsmType::kReferenceConsistencyCheck,
                          "open /var/log/x for append", /*secure=*/true));
  m.operations.push_back(op);
  m.gates = {"done"};
  EXPECT_TRUE(run_rule("DR001", m).empty());

  // Same shape, insecure use, but the activity never touches the
  // filesystem — no schedule surface, no window.
  m.operations[0].pfsms[1] =
      pfsm("pFSM2", PfsmType::kReferenceConsistencyCheck,
           "compare the cached binding in memory");
  EXPECT_TRUE(run_rule("DR001", m).empty());
}

TEST(RuleDR002, FlagsTheRwallSharedUtmpReRead) {
  const auto m = LintModel::from_model(apps::RwallDaemon::figure6_model());
  const auto out = run_rule("DR002", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule_id, "DR002");
  EXPECT_EQ(out[0].severity, Severity::kNote);
  EXPECT_EQ(out[0].where.qualified(),
            "Solaris Rwall Arbitrary File Corruption (Figure 6)/"
            "Rwall daemon writes messages/pFSM2");
  EXPECT_NE(out[0].message.find("/etc/utmp"), std::string::npos);
}

TEST(RuleDR002, SilentWithinOneOperationOrOnDistinctPaths) {
  LintModel m;
  m.name = "two-paths";
  m.consequence = "none";
  LintOperation op1;
  op1.name = "op1";
  op1.pfsms.push_back(
      pfsm("pFSM1", PfsmType::kContentAttributeCheck, "write /var/spool/a"));
  LintOperation op2;
  op2.name = "op2";
  op2.pfsms.push_back(
      pfsm("pFSM2", PfsmType::kContentAttributeCheck, "read /var/spool/b"));
  m.operations = {op1, op2};
  m.gates = {"step", "done"};
  EXPECT_TRUE(run_rule("DR002", m).empty());

  // Same path twice inside ONE operation is DR001 territory, not DR002.
  LintModel one_op;
  one_op.name = "one-op";
  one_op.consequence = "none";
  LintOperation op;
  op.name = "op1";
  op.pfsms.push_back(
      pfsm("pFSM1", PfsmType::kContentAttributeCheck, "write /var/spool/a"));
  op.pfsms.push_back(
      pfsm("pFSM2", PfsmType::kContentAttributeCheck, "read /var/spool/a"));
  one_op.operations.push_back(op);
  one_op.gates = {"done"};
  EXPECT_TRUE(run_rule("DR002", one_op).empty());
}

TEST(RuleDR003, WarnsOnAVestigialConsistencyGuard) {
  LintModel m;
  m.name = "vestigial";
  m.consequence = "none";
  LintOperation op;
  op.name = "op1";
  // Declared-secure ref-consistency check in an operation that never
  // touches the filesystem: the guard guards nothing.
  op.pfsms.push_back(pfsm("pFSM1", PfsmType::kReferenceConsistencyCheck,
                          "validate the session token", /*secure=*/true));
  m.operations.push_back(op);
  m.gates = {"done"};
  const auto out = run_rule("DR003", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].severity, Severity::kWarning);
  EXPECT_EQ(out[0].where.qualified(), "vestigial/op1/pFSM1");

  // Give the operation a real yield and the guard earns its keep.
  m.operations[0].pfsms.push_back(
      pfsm("pFSM2", PfsmType::kContentAttributeCheck, "open /etc/app/conf"));
  EXPECT_TRUE(run_rule("DR003", m).empty());
}

TEST(RuleDR004, WarnsOnMultipleUnguardedYields) {
  LintModel m;
  m.name = "unguarded";
  m.consequence = "none";
  LintOperation op;
  op.name = "op1";
  op.pfsms.push_back(
      pfsm("pFSM1", PfsmType::kContentAttributeCheck, "stat /var/run/lock"));
  op.pfsms.push_back(
      pfsm("pFSM2", PfsmType::kContentAttributeCheck, "write /var/run/lock"));
  m.operations.push_back(op);
  m.gates = {"done"};
  const auto out = run_rule("DR004", m);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].severity, Severity::kWarning);
  EXPECT_EQ(out[0].where.qualified(), "unguarded/op1");

  // Adding a reference-consistency pFSM anywhere in the operation
  // silences it — the operation now reasons about binding stability.
  m.operations[0].pfsms.push_back(pfsm(
      "pFSM3", PfsmType::kReferenceConsistencyCheck, "recheck the binding"));
  EXPECT_TRUE(run_rule("DR004", m).empty());
}

}  // namespace
}  // namespace dfsm::staticlint
