// Interleaving-exploration engine (DESIGN.md §14): lexicographic
// unranking, exhaustive-vs-enumeration identity, pinned deterministic
// sampling, benign-outcome retention, saturated spaces, and byte-identical
// reports across thread counts.
#include "fssim/explore.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_pool.h"

namespace dfsm::fssim {
namespace {

using runtime::ThreadPool;

FileSystem tiny_world() {
  FileSystem fs;
  fs.mkdir(Cred::root(), "/d");
  fs.create(Cred::root(), "/d/f");
  return fs;
}

// Victim appends "v" x3, attacker "a" x2 to a context trace; the lone
// violating schedule is the lexicographic LAST one (both attacker steps
// before any victim step).
struct TraceScenario {
  std::vector<CtxStep> victim;
  std::vector<CtxStep> attacker;
  std::function<bool(const FileSystem&, const RaceContext&)> violated;
};

TraceScenario trace_scenario() {
  auto append = [](std::string tag) {
    return [tag](FileSystem&, RaceContext& ctx) { ctx.strs["t"] += tag; };
  };
  TraceScenario s;
  s.victim = {{"v1", append("v")}, {"v2", append("v")}, {"v3", append("v")}};
  s.attacker = {{"a1", append("a")}, {"a2", append("a")}};
  s.violated = [](const FileSystem&, const RaceContext& ctx) {
    return ctx.strs.at("t").rfind("aa", 0) == 0;
  };
  return s;
}

TEST(UnrankSchedule, FirstAndLastRanksAreTheLexExtremes) {
  // victim = false, attacker = true; rank 0 runs the victim to completion
  // first, rank C(5,3)-1 = 9 the attacker.
  const std::vector<bool> first = unrank_schedule(0, 3, 2);
  const std::vector<bool> last = unrank_schedule(9, 3, 2);
  EXPECT_EQ(first, (std::vector<bool>{false, false, false, true, true}));
  EXPECT_EQ(last, (std::vector<bool>{true, true, false, false, false}));
}

TEST(UnrankSchedule, AllRanksAreDistinctWithTheRightComposition) {
  std::set<std::vector<bool>> seen;
  for (std::uint64_t rank = 0; rank < 10; ++rank) {
    const auto s = unrank_schedule(rank, 3, 2);
    ASSERT_EQ(s.size(), 5u);
    EXPECT_EQ(std::count(s.begin(), s.end(), false), 3);
    EXPECT_EQ(std::count(s.begin(), s.end(), true), 2);
    seen.insert(s);
  }
  // 10 distinct schedules == the full C(5,3) space.
  EXPECT_EQ(seen.size(), 10u);
}

TEST(UnrankSchedule, RanksAscendLexicographically) {
  for (std::uint64_t rank = 0; rank + 1 < 10; ++rank) {
    EXPECT_LT(unrank_schedule(rank, 3, 2), unrank_schedule(rank + 1, 3, 2));
  }
}

TEST(Explore, ExhaustiveMatchesRecursiveEnumerationOutcomeForOutcome) {
  const auto world = tiny_world();
  const auto s = trace_scenario();
  const auto rep =
      explore_interleavings(world, s.victim, s.attacker, s.violated, {});
  const auto ref =
      enumerate_interleavings(world, s.victim, s.attacker, s.violated);

  ASSERT_TRUE(rep.exhaustive);
  EXPECT_EQ(rep.schedule_space, interleaving_count(3, 2));
  EXPECT_EQ(rep.explored, ref.total_schedules);
  EXPECT_EQ(rep.violating, ref.violating_schedules);
  ASSERT_EQ(rep.outcomes.size(), ref.outcomes.size());
  for (std::size_t i = 0; i < rep.outcomes.size(); ++i) {
    EXPECT_EQ(rep.outcomes[i].rank, i);
    EXPECT_EQ(rep.outcomes[i].order, ref.outcomes[i].order);
    EXPECT_EQ(rep.outcomes[i].violated, ref.outcomes[i].violated);
  }
  // The lone violation is the lexicographic last schedule.
  ASSERT_EQ(rep.violating_ranks.size(), 1u);
  EXPECT_EQ(rep.violating_ranks[0], rep.schedule_space - 1);
}

TEST(Explore, SampleRanksPinsFirstAndLast) {
  EXPECT_EQ(sample_ranks(100, 2, 1), (std::vector<std::uint64_t>{0, 99}));
  const auto ranks = sample_ranks(1'000'000, 64, 7);
  ASSERT_FALSE(ranks.empty());
  EXPECT_LE(ranks.size(), 64u);
  EXPECT_EQ(ranks.front(), 0u);
  EXPECT_EQ(ranks.back(), 999'999u);
  EXPECT_TRUE(std::is_sorted(ranks.begin(), ranks.end()));
  EXPECT_EQ(std::adjacent_find(ranks.begin(), ranks.end()), ranks.end());
  // Pure in (space, budget, seed).
  EXPECT_EQ(ranks, sample_ranks(1'000'000, 64, 7));
}

TEST(Explore, SampledRunStaysWithinBudgetAndCatchesTheLexLastRace) {
  const auto world = tiny_world();
  const auto s = trace_scenario();
  ExploreOptions opts;
  opts.budget = 4;  // space is 10 > 4 -> sampled
  opts.seed = 11;
  const auto rep =
      explore_interleavings(world, s.victim, s.attacker, s.violated, opts);
  EXPECT_FALSE(rep.exhaustive);
  EXPECT_LE(rep.explored, opts.budget);
  ASSERT_FALSE(rep.outcomes.empty());
  // Pinned lex first/last: the violation lives at rank space-1, so ANY
  // budget finds it.
  EXPECT_EQ(rep.outcomes.front().rank, 0u);
  EXPECT_EQ(rep.outcomes.back().rank, rep.schedule_space - 1);
  EXPECT_TRUE(rep.race_exists());
  ASSERT_EQ(rep.violating_ranks.size(), 1u);
  EXPECT_EQ(rep.violating_ranks[0], rep.schedule_space - 1);
}

TEST(Explore, BenignCapBoundsOutcomesButCountsStayExact) {
  const auto world = tiny_world();
  const auto s = trace_scenario();
  ExploreOptions opts;
  opts.benign_outcome_cap = 2;
  const auto rep =
      explore_interleavings(world, s.victim, s.attacker, s.violated, opts);
  ASSERT_TRUE(rep.exhaustive);
  EXPECT_EQ(rep.explored, 10u);
  EXPECT_EQ(rep.violating, 1u);
  // 2 retained benign + 1 violating; 7 benign dropped. Violating
  // schedules are ALWAYS retained.
  EXPECT_EQ(rep.outcomes.size(), 3u);
  EXPECT_EQ(rep.benign_outcomes_dropped, 7u);
  const auto violating =
      std::count_if(rep.outcomes.begin(), rep.outcomes.end(),
                    [](const ExploredSchedule& o) { return o.violated; });
  EXPECT_EQ(violating, 1);
}

TEST(Explore, SaturatedSpaceSamplesDeterministically) {
  const auto world = tiny_world();
  std::vector<CtxStep> victim(34, CtxStep{"v", [](FileSystem&, RaceContext&) {}});
  std::vector<CtxStep> attacker(34,
                                CtxStep{"a", [](FileSystem&, RaceContext&) {}});
  auto never = [](const FileSystem&, const RaceContext&) { return false; };
  ExploreOptions opts;
  opts.budget = 3;
  opts.seed = 5;
  const auto rep = explore_interleavings(world, victim, attacker, never, opts);
  EXPECT_TRUE(rep.space_saturated);
  EXPECT_EQ(rep.schedule_space, std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(rep.exhaustive);
  EXPECT_LE(rep.explored, 3u);
  EXPECT_FALSE(rep.race_exists());
  const auto again =
      explore_interleavings(world, victim, attacker, never, opts);
  EXPECT_EQ(emit_json("sat", rep), emit_json("sat", again));
}

TEST(Explore, ReportIsByteIdenticalAcrossThreadCounts) {
  const auto world = tiny_world();
  const auto s = trace_scenario();
  ExploreOptions sampled;
  sampled.budget = 6;
  sampled.seed = 3;
  std::vector<std::string> exhaustive_json;
  std::vector<std::string> sampled_json;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool::set_global_threads(threads);
    exhaustive_json.push_back(emit_json(
        "t", explore_interleavings(world, s.victim, s.attacker, s.violated,
                                   {})));
    sampled_json.push_back(emit_json(
        "t", explore_interleavings(world, s.victim, s.attacker, s.violated,
                                   sampled)));
  }
  ThreadPool::set_global_threads(ThreadPool::default_threads());
  EXPECT_EQ(exhaustive_json[0], exhaustive_json[1]);
  EXPECT_EQ(sampled_json[0], sampled_json[1]);
}

}  // namespace
}  // namespace dfsm::fssim
