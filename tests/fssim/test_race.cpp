#include "fssim/race.h"

#include <gtest/gtest.h>

namespace dfsm::fssim {
namespace {

FileSystem world_with(const std::string& path) {
  FileSystem fs;
  fs.mkdir(Cred::root(), "/d");
  fs.create(Cred::root(), path);
  return fs;
}

TEST(InterleavingCount, MatchesBinomialCoefficients) {
  EXPECT_EQ(interleaving_count(0, 0), 1u);
  EXPECT_EQ(interleaving_count(1, 0), 1u);
  EXPECT_EQ(interleaving_count(1, 1), 2u);
  EXPECT_EQ(interleaving_count(3, 2), 10u);
  EXPECT_EQ(interleaving_count(4, 2), 15u);
  EXPECT_EQ(interleaving_count(5, 5), 252u);
}

TEST(InterleavingCount, SaturatesExactlyAtTheUint64Boundary) {
  // C(67, 33) is the last binomial on the diagonal that fits in 64 bits;
  // 128-bit intermediates keep it exact.
  EXPECT_EQ(interleaving_count(33, 34), 14226520737620288370u);
  EXPECT_EQ(interleaving_count(34, 33), 14226520737620288370u);
  EXPECT_FALSE(interleaving_count_saturated(33, 34));
  EXPECT_FALSE(interleaving_count_saturated(34, 33));
  // C(68, 34) overflows: the count saturates and the flag reports it.
  EXPECT_EQ(interleaving_count(34, 34),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(interleaving_count_saturated(34, 34));
  EXPECT_TRUE(interleaving_count_saturated(100, 100));
}

TEST(Race, BenignCapBoundsOutcomesButCountsStayExact) {
  const auto world = world_with("/d/f");
  std::vector<Step> victim(3, Step{"v", [](FileSystem&) {}});
  std::vector<Step> attacker{{"del", [](FileSystem& fs) {
                                fs.unlink(Cred::root(), "/d/f");
                              }}};
  auto violated = [](const FileSystem& fs) { return !fs.stat("/d/f").ok(); };
  RaceOptions opts;
  opts.benign_outcome_cap = 1;
  const auto report =
      enumerate_interleavings(world, victim, attacker, violated, opts);
  EXPECT_EQ(report.total_schedules, 4u);
  // Every schedule deletes the file eventually, so all violate; the cap
  // never drops violating outcomes.
  EXPECT_EQ(report.violating_schedules, 4u);
  EXPECT_EQ(report.outcomes.size(), 4u);
  EXPECT_EQ(report.benign_outcomes_dropped, 0u);
}

TEST(Race, BenignCapDropsOnlyBenignOutcomes) {
  const auto world = world_with("/d/f");
  std::vector<Step> victim(3, Step{"v", [](FileSystem&) {}});
  std::vector<Step> attacker{{"noop", [](FileSystem&) {}}};
  RaceOptions opts;
  opts.benign_outcome_cap = 2;
  const auto report = enumerate_interleavings(
      world, victim, attacker, [](const FileSystem&) { return false; }, opts);
  EXPECT_EQ(report.total_schedules, 4u);
  EXPECT_EQ(report.violating_schedules, 0u);
  EXPECT_EQ(report.outcomes.size(), 2u);
  EXPECT_EQ(report.benign_outcomes_dropped, 2u);
}

TEST(Race, NoCapRetainsEverythingAndDropsNothing) {
  const auto world = world_with("/d/f");
  std::vector<Step> victim(2, Step{"v", [](FileSystem&) {}});
  std::vector<Step> attacker(2, Step{"a", [](FileSystem&) {}});
  const auto report = enumerate_interleavings(
      world, victim, attacker, [](const FileSystem&) { return false; });
  EXPECT_EQ(report.outcomes.size(), 6u);
  EXPECT_EQ(report.benign_outcomes_dropped, 0u);
}

TEST(Race, EnumeratesAllSchedules) {
  const auto world = world_with("/d/f");
  std::vector<Step> a{{"a1", [](FileSystem&) {}}, {"a2", [](FileSystem&) {}}};
  std::vector<Step> b{{"b1", [](FileSystem&) {}}};
  const auto report = enumerate_interleavings(world, a, b,
                                              [](const FileSystem&) { return false; });
  EXPECT_EQ(report.total_schedules, 3u);
  EXPECT_EQ(report.violating_schedules, 0u);
  EXPECT_FALSE(report.race_exists());
  EXPECT_EQ(report.outcomes.size(), 3u);
}

TEST(Race, SchedulesPreserveIntraProcessOrder) {
  const auto world = world_with("/d/f");
  std::vector<Step> a{{"a1", [](FileSystem&) {}}, {"a2", [](FileSystem&) {}}};
  std::vector<Step> b{{"b1", [](FileSystem&) {}}};
  const auto report = enumerate_interleavings(world, a, b,
                                              [](const FileSystem&) { return false; });
  for (const auto& o : report.outcomes) {
    const auto i1 = std::find(o.order.begin(), o.order.end(), "a1");
    const auto i2 = std::find(o.order.begin(), o.order.end(), "a2");
    EXPECT_LT(i1, i2);
  }
}

TEST(Race, EachScheduleRunsOnAForkedWorld) {
  const auto world = world_with("/d/f");
  // A destructive step must not leak into other schedules: if worlds were
  // shared, the second schedule would find the file already deleted.
  std::vector<Step> a{{"del", [](FileSystem& fs) {
                         ASSERT_TRUE(fs.unlink(Cred::root(), "/d/f"));
                       }}};
  std::vector<Step> b{{"noop", [](FileSystem&) {}}};
  const auto report = enumerate_interleavings(
      world, a, b, [](const FileSystem& fs) { return !fs.stat("/d/f").ok(); });
  EXPECT_EQ(report.total_schedules, 2u);
  EXPECT_EQ(report.violating_schedules, 2u);  // deleted in every schedule
  // And the ORIGINAL world still has the file.
  EXPECT_TRUE(world.stat("/d/f").ok());
}

TEST(Race, OrderSensitiveOutcomeSplitsSchedules) {
  const auto world = world_with("/d/f");
  // Victim writes the file; attacker deletes it. The final content
  // depends on the order.
  std::vector<Step> victim{{"write", [](FileSystem& fs) {
                              auto h = fs.open(Cred::root(), "/d/f",
                                               OpenFlags{.write = true});
                              if (h.ok()) fs.write(h.value, "V");
                            }}};
  std::vector<Step> attacker{{"delete", [](FileSystem& fs) {
                                fs.unlink(Cred::root(), "/d/f");
                              }}};
  const auto report = enumerate_interleavings(
      world, victim, attacker, [](const FileSystem& fs) {
        auto c = fs.read("/d/f");
        return !c.ok();  // violated when the file is gone at the end
      });
  EXPECT_EQ(report.total_schedules, 2u);
  EXPECT_EQ(report.violating_schedules, 2u);  // file deleted either way
}

TEST(RaceCtx, ContextIsFreshPerSchedule) {
  const auto world = world_with("/d/f");
  std::vector<CtxStep> victim{
      {"bump", [](FileSystem&, RaceContext& ctx) { ctx.ints["n"] += 1; }},
      {"bump", [](FileSystem&, RaceContext& ctx) { ctx.ints["n"] += 1; }}};
  std::vector<CtxStep> attacker{{"noop", [](FileSystem&, RaceContext&) {}}};
  const auto report = enumerate_interleavings(
      world, victim, attacker,
      [](const FileSystem&, const RaceContext& ctx) {
        // If the context leaked across schedules, n would exceed 2.
        return ctx.ints.at("n") != 2;
      });
  EXPECT_EQ(report.total_schedules, 3u);
  EXPECT_EQ(report.violating_schedules, 0u);
}

TEST(RaceCtx, AbortFlagShortCircuitsVictimSteps) {
  const auto world = world_with("/d/f");
  std::vector<CtxStep> victim{
      {"check", [](FileSystem&, RaceContext& ctx) { ctx.aborted = true; }},
      {"act", [](FileSystem& fs, RaceContext& ctx) {
         if (ctx.aborted) return;
         auto h = fs.open(Cred::root(), "/d/f", OpenFlags{.write = true});
         fs.write(h.value, "MUST NOT HAPPEN");
       }}};
  std::vector<CtxStep> attacker{};
  const auto report = enumerate_interleavings(
      world, victim, attacker, [](const FileSystem& fs, const RaceContext&) {
        return fs.read("/d/f").value.find("MUST NOT") != std::string::npos;
      });
  EXPECT_EQ(report.violating_schedules, 0u);
}

TEST(RaceCtx, TotalSchedulesMatchFormula) {
  const auto world = world_with("/d/f");
  std::vector<CtxStep> victim(4, CtxStep{"v", [](FileSystem&, RaceContext&) {}});
  std::vector<CtxStep> attacker(2, CtxStep{"a", [](FileSystem&, RaceContext&) {}});
  const auto report = enumerate_interleavings(
      world, victim, attacker,
      [](const FileSystem&, const RaceContext&) { return false; });
  EXPECT_EQ(report.total_schedules, interleaving_count(4, 2));
}

}  // namespace
}  // namespace dfsm::fssim
