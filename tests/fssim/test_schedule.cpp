// Lexical schedule-surface classifier: an activity crosses the surface
// when a filesystem verb co-occurs with an absolute path token. The DR
// race rules build directly on these three functions, so the token
// stripping, whole-token verb matching and verb x path crossing are
// pinned here.
#include "fssim/schedule.h"

#include <gtest/gtest.h>

namespace dfsm::fssim {
namespace {

TEST(ScheduleSurface, VerbPlusAbsolutePathYields) {
  EXPECT_TRUE(crosses_schedule_surface("open \"/usr/tom/x\" with write "
                                       "permission"));
  EXPECT_TRUE(crosses_schedule_surface("user request to write /etc/utmp"));
  EXPECT_TRUE(crosses_schedule_surface(
      "get a filename from /etc/utmp and write the user message to it"));
}

TEST(ScheduleSurface, VerbAloneOrPathAloneDoesNot) {
  // Verb without a path: buffer/socket activities stay off the surface.
  EXPECT_FALSE(crosses_schedule_surface("write x"));
  EXPECT_FALSE(crosses_schedule_surface("read the request from the socket"));
  // Path without a verb.
  EXPECT_FALSE(crosses_schedule_surface("the file /etc/passwd is special"));
  EXPECT_FALSE(crosses_schedule_surface(""));
}

TEST(ScheduleSurface, VerbMatchingIsWholeTokenAndCaseInsensitive) {
  EXPECT_TRUE(crosses_schedule_surface("Open /tmp/f"));
  EXPECT_TRUE(crosses_schedule_surface("WRITE /tmp/f"));
  // Substrings of larger words must not count.
  EXPECT_FALSE(crosses_schedule_surface("reopened /tmp/f"));
  EXPECT_FALSE(crosses_schedule_surface("the readme at /tmp/f"));
}

TEST(ScheduleSurface, QuoteAndPunctuationStrippingKeepsSlashes) {
  const auto pts = yield_points("open \"/usr/tom/x\", then proceed");
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].verb, "open");
  EXPECT_EQ(pts[0].path, "/usr/tom/x");

  // A lone slash is not a path.
  EXPECT_FALSE(crosses_schedule_surface("write /"));
}

TEST(ScheduleSurface, YieldPointsCrossVerbsWithPathsInTokenOrder) {
  const auto pts =
      yield_points("read /etc/utmp and write /etc/passwd");
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0].verb, "read");
  EXPECT_EQ(pts[0].path, "/etc/utmp");
  EXPECT_EQ(pts[1].verb, "read");
  EXPECT_EQ(pts[1].path, "/etc/passwd");
  EXPECT_EQ(pts[2].verb, "write");
  EXPECT_EQ(pts[2].path, "/etc/utmp");
  EXPECT_EQ(pts[3].verb, "write");
  EXPECT_EQ(pts[3].path, "/etc/passwd");
}

TEST(ScheduleSurface, PathTokensIgnoreVerbs) {
  const auto paths = path_tokens("the binding of /usr/tom/x to /etc/passwd");
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "/usr/tom/x");
  EXPECT_EQ(paths[1], "/etc/passwd");
  EXPECT_TRUE(path_tokens("no paths here").empty());
}

}  // namespace
}  // namespace dfsm::fssim
