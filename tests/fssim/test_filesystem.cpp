#include "fssim/filesystem.h"

#include <gtest/gtest.h>

namespace dfsm::fssim {
namespace {

class FsTest : public ::testing::Test {
 protected:
  FsTest() : root(Cred::root()), tom(Cred::user_named("tom")) {
    fs.mkdir(root, "/etc");
    fs.mkdir(root, "/usr");
    fs.mkdir(root, "/usr/tom");
    fs.chown(root, "/usr/tom", "tom");
  }
  FileSystem fs;
  Cred root;
  Cred tom;
};

TEST_F(FsTest, CreateAndReadBack) {
  ASSERT_TRUE(fs.create(root, "/etc/passwd"));
  auto h = fs.open(root, "/etc/passwd", OpenFlags{.write = true});
  ASSERT_TRUE(h);
  ASSERT_TRUE(fs.write(h.value, "root:x:0:0\n"));
  auto content = fs.read("/etc/passwd");
  ASSERT_TRUE(content);
  EXPECT_EQ(content.value, "root:x:0:0\n");
}

TEST_F(FsTest, MissingPathsReportEnoent) {
  EXPECT_EQ(fs.read("/nope").error, FsError::kNoEnt);
  EXPECT_EQ(fs.stat("/etc/missing").error, FsError::kNoEnt);
  EXPECT_EQ(fs.open(root, "/missing/deep", OpenFlags{}).error, FsError::kNoEnt);
}

TEST_F(FsTest, DuplicateCreateReportsEexist) {
  fs.create(root, "/etc/f");
  EXPECT_EQ(fs.create(root, "/etc/f").error, FsError::kExist);
  EXPECT_EQ(fs.mkdir(root, "/etc").error, FsError::kExist);
}

TEST_F(FsTest, PermissionChecksHonorOwnerAndOther) {
  fs.create(tom, "/usr/tom/x", Mode::file_default());  // 0644, owner tom
  EXPECT_TRUE(fs.access(tom, "/usr/tom/x", Access::kWrite));
  EXPECT_TRUE(fs.access(Cred::user_named("eve"), "/usr/tom/x", Access::kRead));
  EXPECT_FALSE(fs.access(Cred::user_named("eve"), "/usr/tom/x", Access::kWrite));
  EXPECT_TRUE(fs.access(root, "/usr/tom/x", Access::kWrite));  // root bypass
}

TEST_F(FsTest, OpenEnforcesPermissions) {
  fs.create(root, "/etc/secret", Mode::private_file());
  EXPECT_EQ(fs.open(tom, "/etc/secret", OpenFlags{}).error, FsError::kAccess);
  EXPECT_EQ(fs.open(tom, "/etc/secret", OpenFlags{.write = true}).error,
            FsError::kAccess);
  EXPECT_TRUE(fs.open(root, "/etc/secret", OpenFlags{.write = true}));
}

TEST_F(FsTest, NonOwnerCannotCreateInProtectedDir) {
  EXPECT_EQ(fs.create(tom, "/etc/evil").error, FsError::kAccess);
  // But tom can create inside his own directory.
  EXPECT_TRUE(fs.create(tom, "/usr/tom/mine"));
}

TEST_F(FsTest, UnlinkRules) {
  fs.create(tom, "/usr/tom/x");
  EXPECT_TRUE(fs.unlink(tom, "/usr/tom/x"));
  EXPECT_EQ(fs.unlink(tom, "/usr/tom/x").error, FsError::kNoEnt);
  // Cannot unlink from a directory tom cannot write.
  fs.create(root, "/etc/f");
  EXPECT_EQ(fs.unlink(tom, "/etc/f").error, FsError::kAccess);
  // Directories are not unlinked.
  EXPECT_EQ(fs.unlink(root, "/usr/tom").error, FsError::kIsDir);
}

TEST_F(FsTest, SymlinkResolutionFollowsTarget) {
  fs.create(root, "/etc/passwd");
  {
    auto h = fs.open(root, "/etc/passwd", OpenFlags{.write = true});
    fs.write(h.value, "data");
  }
  ASSERT_TRUE(fs.symlink(tom, "/etc/passwd", "/usr/tom/link"));
  auto via_link = fs.read("/usr/tom/link");
  ASSERT_TRUE(via_link);
  EXPECT_EQ(via_link.value, "data");
}

TEST_F(FsTest, StatFollowsLstatDoesNot) {
  fs.create(root, "/etc/passwd");
  fs.symlink(tom, "/etc/passwd", "/usr/tom/link");
  auto st = fs.stat("/usr/tom/link");
  ASSERT_TRUE(st);
  EXPECT_EQ(st.value.type, NodeType::kFile);
  EXPECT_EQ(st.value.owner, "root");
  auto lst = fs.lstat("/usr/tom/link");
  ASSERT_TRUE(lst);
  EXPECT_EQ(lst.value.type, NodeType::kSymlink);
  EXPECT_EQ(lst.value.symlink_target, "/etc/passwd");
  EXPECT_EQ(lst.value.owner, "tom");
}

TEST_F(FsTest, AccessFollowsSymlinksLikeTheRealSyscall) {
  fs.create(root, "/etc/passwd", Mode::file_default());
  fs.symlink(tom, "/etc/passwd", "/usr/tom/link");
  // Tom cannot write /etc/passwd, so access(W) through the link is false —
  // this is exactly why xterm's check forces the attacker to race.
  EXPECT_FALSE(fs.access(tom, "/usr/tom/link", Access::kWrite));
}

TEST_F(FsTest, RelativeSymlinkTargetsRejected) {
  EXPECT_FALSE(fs.symlink(tom, "etc/passwd", "/usr/tom/rel"));
  EXPECT_FALSE(fs.symlink(tom, "", "/usr/tom/empty"));
  EXPECT_EQ(fs.lstat("/usr/tom/rel").error, FsError::kNoEnt);
}

TEST_F(FsTest, OpenCreateNeedsAnExistingParent) {
  EXPECT_EQ(fs.open(tom, "/usr/tom/sub/file",
                    OpenFlags{.write = true, .create = true}).error,
            FsError::kNoEnt);
}

TEST_F(FsTest, SymlinkLoopsReportEloop) {
  fs.symlink(tom, "/usr/tom/b", "/usr/tom/a");
  fs.symlink(tom, "/usr/tom/a", "/usr/tom/b");
  EXPECT_EQ(fs.read("/usr/tom/a").error, FsError::kLoop);
}

TEST_F(FsTest, NofollowRefusesSymlinkFinalComponent) {
  fs.create(root, "/etc/passwd");
  fs.symlink(tom, "/etc/passwd", "/usr/tom/link");
  const auto r = fs.open(root, "/usr/tom/link",
                         OpenFlags{.write = true, .nofollow = true});
  EXPECT_EQ(r.error, FsError::kLoop);
  // Plain files still open fine with nofollow.
  fs.create(tom, "/usr/tom/plain");
  EXPECT_TRUE(fs.open(root, "/usr/tom/plain",
                      OpenFlags{.write = true, .nofollow = true}));
}

TEST_F(FsTest, OpenCreateFlag) {
  const auto r = fs.open(tom, "/usr/tom/new", OpenFlags{.write = true, .create = true});
  ASSERT_TRUE(r);
  EXPECT_TRUE(fs.stat("/usr/tom/new"));
}

TEST_F(FsTest, FstatReflectsTheOpenedInode) {
  fs.create(root, "/etc/passwd");
  fs.symlink(tom, "/etc/passwd", "/usr/tom/link");
  auto h = fs.open(root, "/usr/tom/link", OpenFlags{.write = true});
  ASSERT_TRUE(h);
  auto st = fs.fstat(h.value);
  ASSERT_TRUE(st);
  // fstat sees the TARGET — the post-open ownership re-check primitive.
  EXPECT_EQ(st.value.owner, "root");
  EXPECT_EQ(st.value.type, NodeType::kFile);
}

TEST_F(FsTest, WriteThroughStaleHandleAfterUnlink) {
  fs.create(tom, "/usr/tom/x");
  auto h = fs.open(tom, "/usr/tom/x", OpenFlags{.write = true});
  ASSERT_TRUE(h);
  fs.unlink(tom, "/usr/tom/x");
  // POSIX keeps the inode alive for open handles; our model marks it dead
  // and rejects the write — either way no OTHER file is touched.
  (void)fs.write(h.value, "zombie");
  EXPECT_EQ(fs.read("/usr/tom/x").error, FsError::kNoEnt);
}

TEST_F(FsTest, ChmodAndChownRules) {
  fs.create(tom, "/usr/tom/x");
  EXPECT_TRUE(fs.chmod(tom, "/usr/tom/x", Mode::world_writable()));
  EXPECT_FALSE(fs.chmod(Cred::user_named("eve"), "/usr/tom/x", Mode::private_file()));
  EXPECT_FALSE(fs.chown(tom, "/usr/tom/x", "eve"));  // chown is root-only
  EXPECT_TRUE(fs.chown(root, "/usr/tom/x", "eve"));
  EXPECT_EQ(fs.stat("/usr/tom/x").value.owner, "eve");
}

TEST_F(FsTest, TerminalNodesHaveDistinctType) {
  fs.mkdir(root, "/dev");
  fs.create(root, "/dev/tty1", Mode::world_writable(), NodeType::kTerminal);
  EXPECT_EQ(fs.stat("/dev/tty1").value.type, NodeType::kTerminal);
}

TEST_F(FsTest, FileSystemIsAValueType) {
  fs.create(tom, "/usr/tom/x");
  FileSystem copy = fs;
  copy.unlink(tom, "/usr/tom/x");
  // The original is unaffected: schedules can fork the world.
  EXPECT_TRUE(fs.stat("/usr/tom/x"));
  EXPECT_EQ(copy.stat("/usr/tom/x").error, FsError::kNoEnt);
}

TEST_F(FsTest, PathSplitting) {
  EXPECT_EQ(split_path("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_path("/"), std::vector<std::string>{});
  EXPECT_EQ(split_path("a//b/"), (std::vector<std::string>{"a", "b"}));
}

TEST_F(FsTest, ErrorNamesRendered) {
  EXPECT_STREQ(to_string(FsError::kNoEnt), "ENOENT");
  EXPECT_STREQ(to_string(FsError::kAccess), "EACCES");
  EXPECT_STREQ(to_string(FsError::kLoop), "ELOOP");
  EXPECT_STREQ(to_string(NodeType::kTerminal), "terminal");
}

}  // namespace
}  // namespace dfsm::fssim
