#include "core/render.h"

#include <gtest/gtest.h>

#include "apps/models.h"

namespace dfsm::core {
namespace {

TEST(RenderDot, ProducesWellFormedGraphForEveryStandardModel) {
  for (const auto& m : apps::standard_models()) {
    const std::string dot = to_dot(m);
    EXPECT_EQ(dot.rfind("digraph", 0), 0u) << m.name();
    // Braces balance.
    const auto open = std::count(dot.begin(), dot.end(), '{');
    const auto close = std::count(dot.begin(), dot.end(), '}');
    EXPECT_EQ(open, close) << m.name();
    // One cluster per operation, one gate per operation, a consequence box.
    for (std::size_t i = 0; i < m.chain().size(); ++i) {
      EXPECT_NE(dot.find("cluster_op" + std::to_string(i)), std::string::npos);
      EXPECT_NE(dot.find("gate" + std::to_string(i)), std::string::npos);
    }
    EXPECT_NE(dot.find("consequence"), std::string::npos);
  }
}

TEST(RenderDot, HiddenPathsAreDashedAndSecurePfsmsAreNot) {
  const auto models = apps::standard_models();
  const std::string sendmail = to_dot(models[0]);
  EXPECT_NE(sendmail.find("style=dashed"), std::string::npos);
  EXPECT_NE(sendmail.find("IMPL_ACPT (hidden)"), std::string::npos);

  // xterm's pFSM1 is secure: its cluster must contain a plain IMPL_REJ.
  const std::string xterm = to_dot(models[2]);
  EXPECT_NE(xterm.find("label=\"IMPL_REJ\""), std::string::npos);
}

TEST(RenderDot, EscapesQuotesInLabels) {
  // IIS predicates contain quoted "../" strings.
  const std::string dot = to_dot(apps::standard_models()[4]);
  EXPECT_EQ(dot.find("\"\"../\"\""), std::string::npos);  // no raw nested quotes
}

TEST(RenderAscii, PfsmShowsHiddenPathOnlyWhenVulnerable) {
  const auto vulnerable = Pfsm::unchecked(
      "pV", PfsmType::kContentAttributeCheck, "act", Predicate::reject_all("p"));
  const auto secure = Pfsm::secure("pS", PfsmType::kContentAttributeCheck, "act",
                                   Predicate::reject_all("p"));
  EXPECT_NE(to_ascii(vulnerable).find("hidden path"), std::string::npos);
  EXPECT_EQ(to_ascii(secure).find("hidden path"), std::string::npos);
  EXPECT_NE(to_ascii(secure).find("implementation matches specification"),
            std::string::npos);
}

TEST(RenderAscii, ModelListsOperationsGatesAndConsequence) {
  const auto m = apps::standard_models()[1];  // NULL HTTPD
  const std::string text = to_ascii(m);
  EXPECT_NE(text.find("Operation 1"), std::string::npos);
  EXPECT_NE(text.find("Operation 3"), std::string::npos);
  EXPECT_NE(text.find("--gate-->"), std::string::npos);
  EXPECT_NE(text.find("#5774"), std::string::npos);
  EXPECT_NE(text.find("#6255"), std::string::npos);
  EXPECT_NE(text.find("Consequence:"), std::string::npos);
}

TEST(RenderAscii, EveryPfsmNameAppears) {
  for (const auto& m : apps::standard_models()) {
    const std::string text = to_ascii(m);
    for (const auto& s : m.summaries()) {
      EXPECT_NE(text.find(s.pfsm_name), std::string::npos)
          << m.name() << " missing " << s.pfsm_name;
    }
  }
}

}  // namespace
}  // namespace dfsm::core
