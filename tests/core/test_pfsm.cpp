#include "core/pfsm.h"

#include <gtest/gtest.h>

namespace dfsm::core {
namespace {

Object with_x(std::int64_t v) { return Object{"x"}.with("x", v); }

Predicate spec_0_100() {
  return Predicate{"0 <= x <= 100", [](const Object& o) {
                     const auto v = o.attr_int("x");
                     return v && *v >= 0 && *v <= 100;
                   }};
}

Predicate impl_le_100() {
  return Predicate{"x <= 100", [](const Object& o) {
                     const auto v = o.attr_int("x");
                     return v && *v <= 100;
                   }};
}

Pfsm sendmail_pfsm2() {
  return Pfsm{"pFSM2", PfsmType::kContentAttributeCheck, "write i to tTvect[x]",
              spec_0_100(), impl_le_100(), "tTvect[x] = i"};
}

TEST(Pfsm, RequiresName) {
  EXPECT_THROW((Pfsm{"", PfsmType::kObjectTypeCheck, "a", spec_0_100(),
                     impl_le_100()}),
               std::invalid_argument);
}

TEST(Pfsm, SecureAcceptPath) {
  const auto out = sendmail_pfsm2().evaluate(with_x(50));
  EXPECT_EQ(out.result, PfsmResult::kSecureAccept);
  EXPECT_EQ(out.final_state, PfsmState::kAccept);
  ASSERT_EQ(out.path.size(), 1u);
  EXPECT_EQ(out.path[0], PfsmTransition::kSpecAccept);
  EXPECT_TRUE(out.accepted());
  EXPECT_FALSE(out.hidden_path_taken());
}

TEST(Pfsm, FoiledPath) {
  // x = 101: spec rejects, impl rejects too (x <= 100 fails as well).
  const auto out = sendmail_pfsm2().evaluate(with_x(101));
  EXPECT_EQ(out.result, PfsmResult::kFoiled);
  EXPECT_EQ(out.final_state, PfsmState::kReject);
  ASSERT_EQ(out.path.size(), 2u);
  EXPECT_EQ(out.path[0], PfsmTransition::kSpecReject);
  EXPECT_EQ(out.path[1], PfsmTransition::kImplReject);
  EXPECT_FALSE(out.accepted());
}

TEST(Pfsm, HiddenPathIsTheVulnerability) {
  // x = -8448 (the Sendmail exploit index): spec rejects, impl accepts.
  const auto out = sendmail_pfsm2().evaluate(with_x(-8448));
  EXPECT_EQ(out.result, PfsmResult::kHiddenAccept);
  EXPECT_EQ(out.final_state, PfsmState::kAccept);
  ASSERT_EQ(out.path.size(), 2u);
  EXPECT_EQ(out.path[0], PfsmTransition::kSpecReject);
  EXPECT_EQ(out.path[1], PfsmTransition::kImplAccept);
  EXPECT_TRUE(out.accepted());
  EXPECT_TRUE(out.hidden_path_taken());
}

TEST(Pfsm, HiddenPathForAgreesWithEvaluate) {
  const auto p = sendmail_pfsm2();
  EXPECT_TRUE(p.hidden_path_for(with_x(-1)));
  EXPECT_FALSE(p.hidden_path_for(with_x(1)));
  EXPECT_FALSE(p.hidden_path_for(with_x(101)));
}

TEST(Pfsm, SecureFactoryHasNoHiddenPath) {
  const auto p = Pfsm::secure("pFSM1", PfsmType::kContentAttributeCheck,
                              "activity", spec_0_100());
  EXPECT_TRUE(p.declared_secure());
  // With impl == spec, no object can take the hidden path.
  for (std::int64_t x : {-1000, -1, 0, 50, 100, 101, 1000}) {
    EXPECT_FALSE(p.hidden_path_for(with_x(x))) << "x=" << x;
  }
  const auto out = p.evaluate(with_x(-5));
  EXPECT_EQ(out.result, PfsmResult::kFoiled);
}

TEST(Pfsm, UncheckedFactoryAcceptsEverythingSpecRejects) {
  const auto p = Pfsm::unchecked("pFSM1", PfsmType::kObjectTypeCheck,
                                 "activity", spec_0_100());
  EXPECT_FALSE(p.declared_secure());
  // Every spec-rejected object traverses the hidden path: the IMPL_REJ
  // transition (the "?" in the paper's figures) does not exist.
  EXPECT_TRUE(p.hidden_path_for(with_x(-1)));
  EXPECT_TRUE(p.hidden_path_for(with_x(101)));
  EXPECT_EQ(p.evaluate(with_x(-1)).result, PfsmResult::kHiddenAccept);
  EXPECT_EQ(p.evaluate(with_x(50)).result, PfsmResult::kSecureAccept);
}

TEST(Pfsm, OutcomeRecordsObjectDescription) {
  const auto out = sendmail_pfsm2().evaluate(with_x(-8448));
  EXPECT_NE(out.object_description.find("-8448"), std::string::npos);
}

TEST(Pfsm, AccessorsExposeConstruction) {
  const auto p = sendmail_pfsm2();
  EXPECT_EQ(p.name(), "pFSM2");
  EXPECT_EQ(p.type(), PfsmType::kContentAttributeCheck);
  EXPECT_EQ(p.activity(), "write i to tTvect[x]");
  EXPECT_EQ(p.spec().description(), "0 <= x <= 100");
  EXPECT_EQ(p.impl().description(), "x <= 100");
  EXPECT_EQ(p.action(), "tTvect[x] = i");
}

TEST(PfsmEnums, ToStringCoversAll) {
  EXPECT_STREQ(to_string(PfsmState::kSpecCheck), "SPEC_CHECK");
  EXPECT_STREQ(to_string(PfsmState::kReject), "REJECT");
  EXPECT_STREQ(to_string(PfsmState::kAccept), "ACCEPT");
  EXPECT_STREQ(to_string(PfsmTransition::kSpecAccept), "SPEC_ACPT");
  EXPECT_STREQ(to_string(PfsmTransition::kSpecReject), "SPEC_REJ");
  EXPECT_STREQ(to_string(PfsmTransition::kImplReject), "IMPL_REJ");
  EXPECT_STREQ(to_string(PfsmTransition::kImplAccept), "IMPL_ACPT");
  EXPECT_STREQ(to_string(PfsmType::kObjectTypeCheck), "Object Type Check");
  EXPECT_STREQ(to_string(PfsmType::kContentAttributeCheck),
               "Content and Attribute Check");
  EXPECT_STREQ(to_string(PfsmType::kReferenceConsistencyCheck),
               "Reference Consistency Check");
  EXPECT_STREQ(to_string(PfsmResult::kSecureAccept), "SECURE_ACCEPT");
  EXPECT_STREQ(to_string(PfsmResult::kFoiled), "FOILED");
  EXPECT_STREQ(to_string(PfsmResult::kHiddenAccept), "HIDDEN_ACCEPT");
}

// Property sweep: for every x, exactly one of the three results occurs,
// and hidden_path_for is consistent with the evaluation (Figure 2 is a
// total, deterministic machine).
class PfsmSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PfsmSweep, EvaluationIsTotalAndConsistent) {
  const auto p = sendmail_pfsm2();
  const auto o = with_x(GetParam());
  const auto out = p.evaluate(o);
  const bool spec_ok = p.spec().accepts(o);
  const bool impl_ok = p.impl().accepts(o);
  if (spec_ok) {
    EXPECT_EQ(out.result, PfsmResult::kSecureAccept);
  } else if (impl_ok) {
    EXPECT_EQ(out.result, PfsmResult::kHiddenAccept);
  } else {
    EXPECT_EQ(out.result, PfsmResult::kFoiled);
  }
  EXPECT_EQ(p.hidden_path_for(o), out.hidden_path_taken());
  EXPECT_EQ(out.accepted(), out.final_state == PfsmState::kAccept);
}

INSTANTIATE_TEST_SUITE_P(BoundaryValues, PfsmSweep,
                         ::testing::Values(-8448, -100, -1, 0, 1, 50, 99, 100,
                                           101, 1000, 2147483647,
                                           -2147483648LL));

}  // namespace
}  // namespace dfsm::core
