#include "core/operation.h"

#include <gtest/gtest.h>

namespace dfsm::core {
namespace {

Object with_attr(const std::string& name, const std::string& key, std::int64_t v) {
  return Object{name}.with(key, v);
}

Predicate int_range(const std::string& key, std::int64_t lo, std::int64_t hi) {
  return Predicate{key + " in [" + std::to_string(lo) + "," + std::to_string(hi) + "]",
                   [key, lo, hi](const Object& o) {
                     const auto v = o.attr_int(key);
                     return v && *v >= lo && *v <= hi;
                   }};
}

/// Two-stage operation mimicking Sendmail operation 1: pFSM1 unchecked
/// (type check), pFSM2 impl checks only the upper bound.
Operation sendmail_op1() {
  Operation op{"Write debug level i to tTvect[x]", "input integers"};
  op.add(Pfsm::unchecked("pFSM1", PfsmType::kObjectTypeCheck, "get strings",
                         int_range("long_x", -2147483648LL, 2147483647LL)));
  op.add(Pfsm{"pFSM2", PfsmType::kContentAttributeCheck, "write tTvect[x]",
              int_range("x", 0, 100),
              Predicate{"x <= 100",
                        [](const Object& o) {
                          const auto v = o.attr_int("x");
                          return v && *v <= 100;
                        }}});
  return op;
}

TEST(Operation, RequiresName) {
  EXPECT_THROW((Operation{"", "obj"}), std::invalid_argument);
}

TEST(Operation, EmptyOperationCannotEvaluate) {
  Operation op{"empty", "obj"};
  EXPECT_THROW((void)op.evaluate({}), std::invalid_argument);
  EXPECT_THROW((void)op.flow(Object{"o"}), std::invalid_argument);
}

TEST(Operation, ArityMismatchThrows) {
  auto op = sendmail_op1();
  EXPECT_THROW((void)op.evaluate({Object{"only one"}}), std::invalid_argument);
  EXPECT_THROW((void)op.evaluate({Object{"a"}, Object{"b"}, Object{"c"}}),
               std::invalid_argument);
}

TEST(Operation, BenignInputCompletesWithoutViolation) {
  auto op = sendmail_op1();
  const auto r = op.evaluate({with_attr("strs", "long_x", 7),
                              with_attr("x", "x", 7)});
  EXPECT_TRUE(r.completed());
  EXPECT_FALSE(r.violated());
  EXPECT_FALSE(r.foiled_at());
  EXPECT_EQ(r.operation_name, "Write debug level i to tTvect[x]");
}

TEST(Operation, ExploitInputCompletesViaHiddenPaths) {
  auto op = sendmail_op1();
  // The #3163 exploit: str_x > 2^31 (pFSM1 hidden path), x wraps negative
  // (pFSM2 hidden path).
  const auto r = op.evaluate({with_attr("strs", "long_x", 4294958848LL),
                              with_attr("x", "x", -8448)});
  EXPECT_TRUE(r.completed());
  EXPECT_TRUE(r.violated());
  EXPECT_EQ(r.outcomes[0].result, PfsmResult::kHiddenAccept);
  EXPECT_EQ(r.outcomes[1].result, PfsmResult::kHiddenAccept);
}

TEST(Operation, SerialChainStopsAtFirstReject) {
  Operation op{"op", "obj"};
  op.add(Pfsm::secure("p1", PfsmType::kContentAttributeCheck, "a",
                      int_range("v", 0, 10)));
  op.add(Pfsm::secure("p2", PfsmType::kContentAttributeCheck, "b",
                      int_range("v", 0, 10)));
  const auto r = op.evaluate({with_attr("o", "v", 99), with_attr("o", "v", 99)});
  EXPECT_FALSE(r.completed());
  // Observation 1: failure at ONE elementary activity foils the exploit —
  // the second pFSM is never reached.
  EXPECT_EQ(r.outcomes.size(), 1u);
  ASSERT_TRUE(r.foiled_at());
  EXPECT_EQ(*r.foiled_at(), 0u);
}

TEST(Operation, FlowAppliesTransformsBetweenStages) {
  Operation op{"op", "obj"};
  op.add(Pfsm::unchecked("p1", PfsmType::kObjectTypeCheck, "get",
                         int_range("long_x", -100, 100)),
         // The Action: convert the long to a (wrapped) int attribute.
         [](const Object& o) {
           auto next = Object{"x"};
           next.with("x", o.attr_int("long_x").value_or(0) % 128);
           return next;
         });
  op.add(Pfsm::secure("p2", PfsmType::kContentAttributeCheck, "use",
                      int_range("x", 0, 100)));
  const auto r = op.flow(with_attr("in", "long_x", 55));
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(r.outcomes[1].result, PfsmResult::kSecureAccept);
}

TEST(Operation, FlowWithoutTransformPassesObjectThrough) {
  Operation op{"op", "obj"};
  op.add(Pfsm::secure("p1", PfsmType::kContentAttributeCheck, "a",
                      int_range("v", 0, 10)));
  op.add(Pfsm::secure("p2", PfsmType::kContentAttributeCheck, "b",
                      int_range("v", 5, 10)));
  EXPECT_TRUE(op.flow(with_attr("o", "v", 7)).completed());
  // v=3 passes p1 but p2 rejects it: same object at both stages.
  const auto r = op.flow(with_attr("o", "v", 3));
  EXPECT_FALSE(r.completed());
  EXPECT_EQ(*r.foiled_at(), 1u);
}

TEST(OperationResult, EmptyOutcomesIsNotCompleted) {
  OperationResult r;
  EXPECT_FALSE(r.completed());
  EXPECT_FALSE(r.violated());
}

TEST(Operation, SizeAndAccessors) {
  const auto op = sendmail_op1();
  EXPECT_EQ(op.size(), 2u);
  EXPECT_EQ(op.pfsms()[0].name(), "pFSM1");
  EXPECT_EQ(op.object_description(), "input integers");
}

}  // namespace
}  // namespace dfsm::core
