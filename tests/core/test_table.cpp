#include "core/table.h"

#include <gtest/gtest.h>

namespace dfsm::core {
namespace {

TEST(TextTable, RequiresAtLeastOneColumn) {
  EXPECT_THROW(TextTable{{}}, std::invalid_argument);
}

TEST(TextTable, RowArityEnforced) {
  TextTable t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, RendersHeaderSeparatorAndRows) {
  TextTable t{{"Category", "Count"}};
  t.add_row({"Input Validation Error", "1363"});
  t.add_row({"Unknown", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Category"), std::string::npos);
  EXPECT_NE(s.find("1363"), std::string::npos);
  EXPECT_NE(s.find("-+-"), std::string::npos);
  // Column separator present on data rows.
  EXPECT_NE(s.find("Unknown"), std::string::npos);
}

TEST(TextTable, ColumnsPadToWidestCell) {
  TextTable t{{"h", "x"}};
  t.add_row({"wiiiiiide", "1"});
  const std::string s = t.to_string();
  // Header row must be padded to the data width: "h" followed by spaces
  // then the separator at the same offset as in the data row.
  const auto header_sep = s.find('\n');
  const std::string header = s.substr(0, header_sep);
  EXPECT_NE(header.find("h         |"), std::string::npos);
}

TEST(TextTable, TitleRenderedWithUnderline) {
  TextTable t{{"a"}};
  t.title("My Title");
  const std::string s = t.to_string();
  EXPECT_EQ(s.rfind("My Title", 0), 0u);
  EXPECT_NE(s.find("========"), std::string::npos);
}

TEST(TextTable, CountsRowsAndColumns) {
  TextTable t{{"a", "b", "c"}};
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 3u);
}

TEST(Pct, FormatsPercentages) {
  EXPECT_EQ(pct(1363, 5925), "23.0%");
  EXPECT_EQ(pct(1, 3, 2), "33.33%");
  EXPECT_EQ(pct(0, 100), "0.0%");
  EXPECT_EQ(pct(5, 0), "n/a");
}

}  // namespace
}  // namespace dfsm::core
