#include "core/predicate.h"

#include <gtest/gtest.h>

namespace dfsm::core {
namespace {

Predicate in_range_0_100() {
  return Predicate{"0 <= x <= 100", [](const Object& o) {
                     const auto v = o.attr_int("x");
                     return v && *v >= 0 && *v <= 100;
                   }};
}

Object with_x(std::int64_t v) { return Object{"x"}.with("x", v); }

TEST(Predicate, RequiresCallable) {
  EXPECT_THROW((Predicate{"bad", Predicate::Fn{}}), std::invalid_argument);
}

TEST(Predicate, EvaluatesVerdict) {
  const auto p = in_range_0_100();
  EXPECT_TRUE(p.accepts(with_x(0)));
  EXPECT_TRUE(p.accepts(with_x(100)));
  EXPECT_FALSE(p.accepts(with_x(-1)));
  EXPECT_FALSE(p.accepts(with_x(101)));
  EXPECT_EQ(p.verdict(with_x(5)), Verdict::kAccept);
  EXPECT_EQ(p.verdict(with_x(-5)), Verdict::kReject);
}

TEST(Predicate, MissingAttributeRejects) {
  // A predicate that cannot establish its fact must not accept.
  EXPECT_FALSE(in_range_0_100().accepts(Object{"x"}));
}

TEST(Predicate, AcceptAllAndRejectAll) {
  EXPECT_TRUE(Predicate::accept_all().accepts(Object{"anything"}));
  EXPECT_FALSE(Predicate::reject_all().accepts(Object{"anything"}));
  EXPECT_EQ(Predicate::accept_all().description(), "-");
}

TEST(Predicate, KindRecordsConstructionProvenance) {
  EXPECT_EQ(Predicate::accept_all().kind(), PredicateKind::kAcceptAll);
  EXPECT_EQ(Predicate::reject_all().kind(), PredicateKind::kRejectAll);
  const Predicate custom{"x", [](const Object&) { return true; }};
  EXPECT_EQ(custom.kind(), PredicateKind::kCustom);
  // Combinators produce new custom predicates, whatever the inputs were.
  EXPECT_EQ((Predicate::accept_all() && Predicate::reject_all()).kind(),
            PredicateKind::kCustom);
  // Copies preserve the kind.
  const Predicate copy = Predicate::reject_all();
  EXPECT_EQ(copy.kind(), PredicateKind::kRejectAll);
}

TEST(Predicate, ConjunctionSemantics) {
  const auto ge0 = Predicate{"x >= 0", [](const Object& o) {
                               return o.attr_int("x").value_or(-1) >= 0;
                             }};
  const auto le100 = Predicate{"x <= 100", [](const Object& o) {
                                 return o.attr_int("x").value_or(101) <= 100;
                               }};
  const auto both = ge0 && le100;
  EXPECT_TRUE(both.accepts(with_x(50)));
  EXPECT_FALSE(both.accepts(with_x(-1)));
  EXPECT_FALSE(both.accepts(with_x(200)));
  EXPECT_EQ(both.description(), "(x >= 0 && x <= 100)");
}

TEST(Predicate, DisjunctionSemantics) {
  const auto neg = Predicate{"x < 0", [](const Object& o) {
                               return o.attr_int("x").value_or(0) < 0;
                             }};
  const auto big = Predicate{"x > 100", [](const Object& o) {
                               return o.attr_int("x").value_or(0) > 100;
                             }};
  const auto either = neg || big;
  EXPECT_TRUE(either.accepts(with_x(-5)));
  EXPECT_TRUE(either.accepts(with_x(200)));
  EXPECT_FALSE(either.accepts(with_x(50)));
}

TEST(Predicate, NegationSemantics) {
  const auto p = in_range_0_100();
  const auto np = !p;
  EXPECT_FALSE(np.accepts(with_x(5)));
  EXPECT_TRUE(np.accepts(with_x(-5)));
  EXPECT_EQ(np.description(), "!(0 <= x <= 100)");
}

TEST(Predicate, CombinatorsDoNotAliasOriginals) {
  auto p = in_range_0_100();
  const auto q = !p;
  // p must still behave as before after building q.
  EXPECT_TRUE(p.accepts(with_x(1)));
  EXPECT_FALSE(q.accepts(with_x(1)));
}

TEST(Verdict, ToString) {
  EXPECT_STREQ(to_string(Verdict::kAccept), "ACCEPT");
  EXPECT_STREQ(to_string(Verdict::kReject), "REJECT");
}

}  // namespace
}  // namespace dfsm::core
