#include "core/trace.h"

#include <gtest/gtest.h>

namespace dfsm::core {
namespace {

TEST(Trace, RecordsEventsInOrderWithSequenceNumbers) {
  Trace t;
  t.record("op1", "pFSM1", "SPEC_REJ", "x=-1");
  t.record("op1", "pFSM1", "IMPL_ACPT", "x=-1");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.events()[0].seq, 0u);
  EXPECT_EQ(t.events()[1].seq, 1u);
  EXPECT_EQ(t.events()[1].kind, "IMPL_ACPT");
  EXPECT_FALSE(t.empty());
}

TEST(Trace, CountKind) {
  Trace t;
  t.record("", "", "A", "");
  t.record("", "", "B", "");
  t.record("", "", "A", "");
  EXPECT_EQ(t.count_kind("A"), 2u);
  EXPECT_EQ(t.count_kind("B"), 1u);
  EXPECT_EQ(t.count_kind("C"), 0u);
}

TEST(Trace, ClearEmptiesTheLog) {
  Trace t;
  t.record("", "", "A", "");
  t.clear();
  EXPECT_TRUE(t.empty());
}

TEST(Trace, ToTextContainsEveryEvent) {
  Trace t;
  t.record("op", "pFSM2", "SPEC_REJ", "x=-8448");
  const std::string text = t.to_text();
  EXPECT_NE(text.find("op"), std::string::npos);
  EXPECT_NE(text.find("pFSM2"), std::string::npos);
  EXPECT_NE(text.find("SPEC_REJ"), std::string::npos);
  EXPECT_NE(text.find("x=-8448"), std::string::npos);
}

TEST(Trace, AppendChainResultRecordsTransitionsAndVerdict) {
  Operation op{"op1", "o"};
  op.add(Pfsm::unchecked("p1", PfsmType::kContentAttributeCheck, "a",
                         Predicate::reject_all("never")));
  ExploitChain chain{"c"};
  chain.add(std::move(op), PropagationGate{"gate"});
  const auto result = chain.evaluate({{Object{"o"}}});
  ASSERT_TRUE(result.exploited());

  Trace t;
  t.append(result);
  EXPECT_EQ(t.count_kind("SPEC_REJ"), 1u);
  EXPECT_EQ(t.count_kind("IMPL_ACPT"), 1u);
  EXPECT_EQ(t.count_kind("EXPLOITED"), 1u);
}

TEST(Trace, AppendFoiledChainRecordsFoiledEvent) {
  Operation op{"op1", "o"};
  op.add(Pfsm::secure("p1", PfsmType::kContentAttributeCheck, "a",
                      Predicate::reject_all("never")));
  ExploitChain chain{"c"};
  chain.add(std::move(op), PropagationGate{"gate"});
  const auto result = chain.evaluate({{Object{"o"}}});
  ASSERT_FALSE(result.exploited());

  Trace t;
  t.append(result);
  EXPECT_EQ(t.count_kind("FOILED"), 1u);
  EXPECT_EQ(t.count_kind("EXPLOITED"), 0u);
  EXPECT_EQ(t.count_kind("IMPL_REJ"), 1u);
}

}  // namespace
}  // namespace dfsm::core
