#include "core/value.h"

#include <gtest/gtest.h>

namespace dfsm::core {
namespace {

TEST(Value, ToStringCoversEveryAlternative) {
  EXPECT_EQ(to_string(Value{}), "<none>");
  EXPECT_EQ(to_string(Value{true}), "true");
  EXPECT_EQ(to_string(Value{false}), "false");
  EXPECT_EQ(to_string(Value{std::int64_t{-42}}), "-42");
  EXPECT_EQ(to_string(Value{std::uint64_t{0x2a}}), "0x2a");
  EXPECT_EQ(to_string(Value{std::string{"hi"}}), "\"hi\"");
  EXPECT_EQ(to_string(Value{Bytes{1, 2, 3}}), "bytes[3]");
}

TEST(Value, ToStringEscapesControlCharactersInStrings) {
  const std::string s = "a\"b\\c\nd\te\x01";
  const std::string rendered = to_string(Value{s});
  EXPECT_NE(rendered.find("\\\""), std::string::npos);
  EXPECT_NE(rendered.find("\\\\"), std::string::npos);
  EXPECT_NE(rendered.find("\\n"), std::string::npos);
  EXPECT_NE(rendered.find("\\t"), std::string::npos);
  EXPECT_NE(rendered.find("\\x01"), std::string::npos);
}

TEST(Value, EqualityIsAlternativeAndValueSensitive) {
  EXPECT_TRUE(value_equal(Value{std::int64_t{1}}, Value{std::int64_t{1}}));
  EXPECT_FALSE(value_equal(Value{std::int64_t{1}}, Value{std::int64_t{2}}));
  // Same numeric value, different alternative: not equal.
  EXPECT_FALSE(value_equal(Value{std::int64_t{1}}, Value{std::uint64_t{1}}));
}

TEST(Object, RequiresNonEmptyName) {
  EXPECT_THROW(Object{""}, std::invalid_argument);
  EXPECT_THROW((Object{"", Value{std::int64_t{1}}}), std::invalid_argument);
}

TEST(Object, CarriesPayloadValue) {
  Object o{"x", Value{std::int64_t{7}}};
  EXPECT_EQ(o.name(), "x");
  ASSERT_TRUE(o.as_int());
  EXPECT_EQ(*o.as_int(), 7);
  o.set_value(Value{std::string{"s"}});
  EXPECT_FALSE(o.as_int());
  ASSERT_TRUE(o.as_string());
  EXPECT_EQ(*o.as_string(), "s");
}

TEST(Object, AttributeRoundTrip) {
  Object o{"input"};
  o.with("length", std::int64_t{1400}).with("remote", true);
  ASSERT_TRUE(o.attr_int("length"));
  EXPECT_EQ(*o.attr_int("length"), 1400);
  ASSERT_TRUE(o.attr_bool("remote"));
  EXPECT_TRUE(*o.attr_bool("remote"));
  EXPECT_TRUE(o.has_attr("length"));
  EXPECT_FALSE(o.has_attr("missing"));
}

TEST(Object, MissingAttributeYieldsNullopt) {
  const Object o{"x"};
  EXPECT_FALSE(o.attr("nope"));
  EXPECT_FALSE(o.attr_int("nope"));
  EXPECT_FALSE(o.attr_bool("nope"));
  EXPECT_FALSE(o.attr_string("nope"));
  EXPECT_FALSE(o.attr_uint("nope"));
}

TEST(Object, TypeMismatchedAttributeYieldsNullopt) {
  Object o{"x"};
  o.with("k", std::string{"not an int"});
  EXPECT_FALSE(o.attr_int("k"));
  EXPECT_TRUE(o.attr_string("k"));
}

TEST(Object, AttributeOverwriteReplacesValue) {
  Object o{"x"};
  o.with("k", std::int64_t{1});
  o.with("k", std::int64_t{2});
  EXPECT_EQ(*o.attr_int("k"), 2);
  EXPECT_EQ(o.attrs().size(), 1u);
}

TEST(Object, EmptyAttributeKeyRejected) {
  Object o{"x"};
  EXPECT_THROW(o.with("", std::int64_t{1}), std::invalid_argument);
}

TEST(Object, DescribeIncludesNameValueAndAttributes) {
  Object o{"str_x", Value{std::string{"4294958848"}}};
  o.with("wrapped", std::int64_t{-8448});
  const std::string d = o.describe();
  EXPECT_NE(d.find("str_x"), std::string::npos);
  EXPECT_NE(d.find("4294958848"), std::string::npos);
  EXPECT_NE(d.find("wrapped"), std::string::npos);
  EXPECT_NE(d.find("-8448"), std::string::npos);
}

TEST(Object, WithReturnsReferenceForChaining) {
  Object o{"x"};
  Object& ref = o.with("a", std::int64_t{1});
  EXPECT_EQ(&ref, &o);
}

}  // namespace
}  // namespace dfsm::core
