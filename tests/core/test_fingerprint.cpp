// Tests for the striped bulk-payload fingerprint (mix_striped).
//
// The colsnap column checksums ride on mix_striped, so the properties
// that make a checksum useful are pinned here directly: determinism,
// sensitivity to any single-byte flip (every byte feeds exactly one
// full FNV-1a lane), tail handling for lengths not divisible by eight,
// and length-extension resistance via the mixed-in payload length.
#include "core/fingerprint.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

namespace {

using dfsm::core::Fingerprinter;

std::uint64_t striped(const std::string& payload) {
  Fingerprinter f;
  f.mix_striped(payload);
  return f.digest();
}

TEST(MixStriped, DeterministicAcrossCalls) {
  const std::string payload(1000, 'x');
  EXPECT_EQ(striped(payload), striped(payload));
}

TEST(MixStriped, EveryBytePositionIsSignificant) {
  // Flip one byte at each position of a 17-byte payload (two full
  // 8-lane rounds plus a 1-byte tail): every flip must change the
  // digest, including flips that land only in the tail loop.
  const std::string base(17, 'a');
  const std::uint64_t clean = striped(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::string flipped = base;
    flipped[i] ^= 0x01;
    EXPECT_NE(striped(flipped), clean) << "flip at byte " << i;
  }
}

TEST(MixStriped, LengthIsPartOfTheDigest) {
  // Same bytes, different lengths: trailing zero bytes that an all-zero
  // lane state would otherwise absorb must still change the digest,
  // because the payload length is mixed into the fold.
  EXPECT_NE(striped(std::string(8, '\0')), striped(std::string(9, '\0')));
  EXPECT_NE(striped(""), striped(std::string(1, '\0')));
}

TEST(MixStriped, SwappedBytesAcrossLanesChangeTheDigest) {
  // Bytes i and i+1 feed different lanes; swapping them must not
  // commute even though the multiset of bytes is unchanged.
  std::string a = "abcdefgh";
  std::string b = "bacdefgh";
  EXPECT_NE(striped(a), striped(b));
}

TEST(MixStriped, IsADifferentFunctionThanMix) {
  // The header warns mix_striped(s) != mix(s); hold that so nobody
  // silently mixes the two on one field and keeps passing checksums.
  const std::string payload = "corpus snapshot payload";
  Fingerprinter serial;
  serial.mix(std::string_view{payload});
  EXPECT_NE(striped(payload), serial.digest());
}

TEST(MixStriped, FoldsIntoTheRunningHashInOrder) {
  // mix_striped participates in the length-delimited field stream like
  // any other mix: prior fields change the result.
  Fingerprinter a;
  a.mix(std::uint64_t{1}).mix_striped("payload");
  Fingerprinter b;
  b.mix(std::uint64_t{2}).mix_striped("payload");
  EXPECT_NE(a.digest(), b.digest());
}

}  // namespace
