#include "core/chain.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_pool.h"

namespace dfsm::core {
namespace {

Predicate flag_true(const std::string& key) {
  return Predicate{key, [key](const Object& o) {
                     return o.attr_bool(key).value_or(false);
                   }};
}

Object flagged(const std::string& name, const std::string& key, bool v) {
  return Object{name}.with(key, v);
}

/// A two-operation chain: op1 has an unchecked pFSM (hidden path exists),
/// op2 has a secure pFSM.
ExploitChain two_op_chain(bool op2_secure) {
  Operation op1{"op1", "obj1"};
  op1.add(Pfsm::unchecked("p1", PfsmType::kContentAttributeCheck, "a",
                          flag_true("ok1")));
  Operation op2{"op2", "obj2"};
  if (op2_secure) {
    op2.add(Pfsm::secure("p2", PfsmType::kReferenceConsistencyCheck, "b",
                         flag_true("ok2")));
  } else {
    op2.add(Pfsm::unchecked("p2", PfsmType::kReferenceConsistencyCheck, "b",
                            flag_true("ok2")));
  }
  ExploitChain chain{"chain"};
  chain.add(std::move(op1), PropagationGate{"op1 exploited"});
  chain.add(std::move(op2), PropagationGate{"Execute Mcode"});
  return chain;
}

TEST(ExploitChain, RequiresName) {
  EXPECT_THROW(ExploitChain{""}, std::invalid_argument);
}

TEST(ExploitChain, RejectsDuplicateOperationNames) {
  Operation op1{"op1", "o"};
  op1.add(Pfsm::unchecked("p1", PfsmType::kContentAttributeCheck, "a",
                          flag_true("ok1")));
  Operation dup{"op1", "o"};
  dup.add(Pfsm::unchecked("p2", PfsmType::kContentAttributeCheck, "b",
                          flag_true("ok2")));
  ExploitChain chain{"chain"};
  chain.add(std::move(op1), PropagationGate{"g1"});
  EXPECT_THROW(chain.add(std::move(dup), PropagationGate{"g2"}),
               std::invalid_argument);
}

TEST(ExploitChain, EmptyChainCannotEvaluate) {
  ExploitChain c{"c"};
  EXPECT_THROW((void)c.evaluate({}), std::invalid_argument);
}

TEST(ExploitChain, ArityMismatchThrows) {
  auto c = two_op_chain(false);
  EXPECT_THROW((void)c.evaluate({{Object{"o"}}}), std::invalid_argument);
  EXPECT_THROW((void)c.flow({Object{"o"}}), std::invalid_argument);
}

TEST(ExploitChain, FullExploitTraversesAllGates) {
  auto c = two_op_chain(false);
  const auto r = c.evaluate({{flagged("o1", "ok1", false)},   // hidden path 1
                             {flagged("o2", "ok2", false)}}); // hidden path 2
  EXPECT_TRUE(r.completed());
  EXPECT_TRUE(r.exploited());
  EXPECT_EQ(r.hidden_path_count(), 2u);
  EXPECT_FALSE(r.foiled_at_operation);
}

TEST(ExploitChain, BenignTrafficIsNotAnExploit) {
  auto c = two_op_chain(false);
  const auto r = c.evaluate({{flagged("o1", "ok1", true)},
                             {flagged("o2", "ok2", true)}});
  EXPECT_TRUE(r.completed());
  // All SPEC_ACPT transitions: completed but NOT exploited.
  EXPECT_FALSE(r.exploited());
  EXPECT_EQ(r.hidden_path_count(), 0u);
}

TEST(ExploitChain, SecuringDownstreamOperationFoilsTheChain) {
  // Lemma statement 2: one secure operation suffices.
  auto c = two_op_chain(/*op2_secure=*/true);
  const auto r = c.evaluate({{flagged("o1", "ok1", false)},
                             {flagged("o2", "ok2", false)}});
  EXPECT_FALSE(r.completed());
  EXPECT_FALSE(r.exploited());
  ASSERT_TRUE(r.foiled_at_operation);
  EXPECT_EQ(*r.foiled_at_operation, 1u);
  // The first operation WAS violated — but the gate after op2 never fired.
  EXPECT_EQ(r.hidden_path_count(), 1u);
}

TEST(ExploitChain, FoiledOperationStopsEvaluation) {
  Operation op1{"op1", "o"};
  op1.add(Pfsm::secure("p1", PfsmType::kContentAttributeCheck, "a",
                       flag_true("ok")));
  Operation op2{"op2", "o"};
  op2.add(Pfsm::unchecked("p2", PfsmType::kContentAttributeCheck, "b",
                          flag_true("ok")));
  ExploitChain c{"c"};
  c.add(std::move(op1), PropagationGate{"g1"});
  c.add(std::move(op2), PropagationGate{"g2"});
  const auto r = c.evaluate({{flagged("o", "ok", false)},
                             {flagged("o", "ok", false)}});
  // Only op1's result exists; op2 was never evaluated.
  EXPECT_EQ(r.operations.size(), 1u);
  EXPECT_EQ(*r.foiled_at_operation, 0u);
}

TEST(ExploitChain, GatesAreRecordedInOrder) {
  const auto c = two_op_chain(false);
  ASSERT_EQ(c.gates().size(), 2u);
  EXPECT_EQ(c.gates()[0].condition, "op1 exploited");
  EXPECT_EQ(c.gates()[1].condition, "Execute Mcode");
  EXPECT_EQ(c.size(), 2u);
}

TEST(ExploitChain, FlowVariantMatchesEvaluate) {
  auto c = two_op_chain(false);
  const auto r = c.flow({flagged("o1", "ok1", false), flagged("o2", "ok2", false)});
  EXPECT_TRUE(r.exploited());
}

TEST(ChainResult, EmptyResultIsNeitherCompletedNorExploited) {
  ChainResult r;
  EXPECT_FALSE(r.completed());
  EXPECT_FALSE(r.exploited());
  EXPECT_EQ(r.hidden_path_count(), 0u);
}

TEST(ChainResult, HiddenPathCountIsCachedByTheEvaluator) {
  auto c = two_op_chain(false);
  const auto r = c.evaluate({{flagged("o1", "ok1", false)},
                             {flagged("o2", "ok2", false)}});
  ASSERT_TRUE(r.cached_hidden_paths.has_value());
  EXPECT_EQ(*r.cached_hidden_paths, 2u);
  EXPECT_EQ(r.hidden_path_count(), 2u);
}

TEST(ChainResult, HandBuiltResultRecomputesHiddenPaths) {
  auto c = two_op_chain(false);
  auto r = c.evaluate({{flagged("o1", "ok1", false)},
                       {flagged("o2", "ok2", false)}});
  r.cached_hidden_paths.reset();  // a hand-built result has no cache
  EXPECT_EQ(r.hidden_path_count(), 2u);
}

void expect_same_result(const ChainResult& a, const ChainResult& b,
                        const std::string& context) {
  EXPECT_EQ(a.chain_name, b.chain_name) << context;
  EXPECT_EQ(a.foiled_at_operation, b.foiled_at_operation) << context;
  EXPECT_EQ(a.hidden_path_count(), b.hidden_path_count()) << context;
  EXPECT_EQ(a.completed(), b.completed()) << context;
  EXPECT_EQ(a.exploited(), b.exploited()) << context;
  ASSERT_EQ(a.operations.size(), b.operations.size()) << context;
  for (std::size_t op = 0; op < a.operations.size(); ++op) {
    const auto& ao = a.operations[op];
    const auto& bo = b.operations[op];
    EXPECT_EQ(ao.operation_name, bo.operation_name) << context;
    ASSERT_EQ(ao.outcomes.size(), bo.outcomes.size()) << context;
    for (std::size_t p = 0; p < ao.outcomes.size(); ++p) {
      EXPECT_EQ(ao.outcomes[p].result, bo.outcomes[p].result) << context;
      EXPECT_EQ(ao.outcomes[p].final_state, bo.outcomes[p].final_state)
          << context;
      EXPECT_EQ(ao.outcomes[p].object_description,
                bo.outcomes[p].object_description)
          << context;
    }
  }
}

/// A batch mixing full exploits, benign traffic, and partially foiled
/// inputs, so batch results differ item-to-item.
std::vector<std::vector<std::vector<Object>>> mixed_batch(std::size_t n) {
  std::vector<std::vector<std::vector<Object>>> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back({{flagged("o1", "ok1", i % 2 == 0)},
                     {flagged("o2", "ok2", i % 3 == 0)}});
  }
  return batch;
}

TEST(ExploitChain, EvaluateBatchMatchesPerItemEvaluate) {
  const auto c = two_op_chain(/*op2_secure=*/true);
  const auto batch = mixed_batch(97);  // not a multiple of any pool size
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{4}}) {
    runtime::ThreadPool::set_global_threads(threads);
    const auto results = c.evaluate_batch(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expect_same_result(results[i], c.evaluate(batch[i]),
                         "threads=" + std::to_string(threads) + " item #" +
                             std::to_string(i));
    }
  }
  runtime::ThreadPool::set_global_threads(
      runtime::ThreadPool::default_threads());
}

TEST(ExploitChain, FlowBatchMatchesPerItemFlow) {
  const auto c = two_op_chain(false);
  std::vector<std::vector<Object>> starts;
  for (std::size_t i = 0; i < 33; ++i) {
    starts.push_back(
        {flagged("o1", "ok1", i % 2 == 0), flagged("o2", "ok2", i % 5 == 0)});
  }
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{4}}) {
    runtime::ThreadPool::set_global_threads(threads);
    const auto results = c.flow_batch(starts);
    ASSERT_EQ(results.size(), starts.size());
    for (std::size_t i = 0; i < starts.size(); ++i) {
      expect_same_result(results[i], c.flow(starts[i]),
                         "threads=" + std::to_string(threads) + " item #" +
                             std::to_string(i));
    }
  }
  runtime::ThreadPool::set_global_threads(
      runtime::ThreadPool::default_threads());
}

TEST(ExploitChain, EvaluateBatchPropagatesTheLowestIndexError) {
  const auto c = two_op_chain(false);
  auto batch = mixed_batch(8);
  batch[3] = {{Object{"o"}}};  // arity mismatch: one op instead of two
  EXPECT_THROW((void)c.evaluate_batch(batch), std::invalid_argument);
  EXPECT_TRUE(c.evaluate_batch({}).empty());
}

}  // namespace
}  // namespace dfsm::core
