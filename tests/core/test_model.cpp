#include "core/model.h"

#include <gtest/gtest.h>

#include "apps/models.h"

namespace dfsm::core {
namespace {

FsmModel tiny_model() {
  Operation op1{"op1", "o"};
  op1.add(Pfsm::unchecked("p1", PfsmType::kObjectTypeCheck, "a",
                          Predicate::reject_all("never")));
  op1.add(Pfsm::secure("p2", PfsmType::kContentAttributeCheck, "b",
                       Predicate::accept_all("always")));
  Operation op2{"op2", "o"};
  op2.add(Pfsm::unchecked("p3", PfsmType::kReferenceConsistencyCheck, "c",
                          Predicate::accept_all("always")));
  ExploitChain chain{"chain"};
  chain.add(std::move(op1), PropagationGate{"g1"});
  chain.add(std::move(op2), PropagationGate{"g2"});
  return FsmModel{"Tiny", {123}, "Test Class", "testware", "bad things", std::move(chain)};
}

TEST(FsmModel, RequiresNameAndNonEmptyChain) {
  ExploitChain empty{"c"};
  EXPECT_THROW((FsmModel{"x", {1}, "c", "s", "q", std::move(empty)}),
               std::invalid_argument);
}

TEST(FsmModel, RequiresAtLeastOneReportId) {
  Operation op{"op1", "o"};
  op.add(Pfsm::unchecked("p1", PfsmType::kContentAttributeCheck, "a",
                         Predicate::accept_all("always")));
  ExploitChain chain{"chain"};
  chain.add(std::move(op), PropagationGate{"g"});
  EXPECT_THROW((FsmModel{"x", {}, "c", "s", "q", std::move(chain)}),
               std::invalid_argument);
}

TEST(FsmModel, CountsPfsms) {
  EXPECT_EQ(tiny_model().pfsm_count(), 3u);
}

TEST(FsmModel, SummariesFlattenOperations) {
  const auto s = tiny_model().summaries();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].pfsm_name, "p1");
  EXPECT_EQ(s[0].operation_name, "op1");
  EXPECT_EQ(s[0].model_name, "Tiny");
  EXPECT_FALSE(s[0].declared_secure);
  EXPECT_TRUE(s[1].declared_secure);
  EXPECT_EQ(s[2].type, PfsmType::kReferenceConsistencyCheck);
  EXPECT_EQ(s[0].question, "never");
}

TEST(FsmModel, TypeCensusCountsPerType) {
  const auto c = tiny_model().type_census();
  EXPECT_EQ(c[static_cast<std::size_t>(PfsmType::kObjectTypeCheck)], 1u);
  EXPECT_EQ(c[static_cast<std::size_t>(PfsmType::kContentAttributeCheck)], 1u);
  EXPECT_EQ(c[static_cast<std::size_t>(PfsmType::kReferenceConsistencyCheck)], 1u);
}

TEST(FsmModel, DeclaredVulnerableCount) {
  EXPECT_EQ(tiny_model().declared_vulnerable_count(), 2u);
}

TEST(FsmModel, MetadataAccessors) {
  const auto m = tiny_model();
  EXPECT_EQ(m.name(), "Tiny");
  ASSERT_EQ(m.bugtraq_ids().size(), 1u);
  EXPECT_EQ(m.bugtraq_ids()[0], 123);
  EXPECT_EQ(m.vulnerability_class(), "Test Class");
  EXPECT_EQ(m.software(), "testware");
  EXPECT_EQ(m.consequence(), "bad things");
}

TEST(Census, AggregatesAcrossModels) {
  const auto c = census({tiny_model(), tiny_model()});
  EXPECT_EQ(c.total, 6u);
  EXPECT_EQ(c.of(PfsmType::kObjectTypeCheck), 2u);
}

// --- The paper's model registry (Table 2 ground truth) -----------------

TEST(StandardModels, SevenModelsRegistered) {
  EXPECT_EQ(apps::standard_models().size(), 7u);
}

TEST(StandardModels, PfsmCountsMatchThePaperFigures) {
  const auto models = apps::standard_models();
  // Figure 3: Sendmail has 3 pFSMs in 2 operations.
  EXPECT_EQ(models[0].pfsm_count(), 3u);
  EXPECT_EQ(models[0].chain().size(), 2u);
  // Figure 4: NULL HTTPD has 4 pFSMs in 3 operations.
  EXPECT_EQ(models[1].pfsm_count(), 4u);
  EXPECT_EQ(models[1].chain().size(), 3u);
  // Figure 5: xterm has 2 pFSMs in 1 operation.
  EXPECT_EQ(models[2].pfsm_count(), 2u);
  EXPECT_EQ(models[2].chain().size(), 1u);
  // Figure 6: rwall has 2 pFSMs in 2 operations.
  EXPECT_EQ(models[3].pfsm_count(), 2u);
  EXPECT_EQ(models[3].chain().size(), 2u);
  // Figure 7: IIS has 1 pFSM.
  EXPECT_EQ(models[4].pfsm_count(), 1u);
  // GHTTPD and rpc.statd: 2 pFSMs each.
  EXPECT_EQ(models[5].pfsm_count(), 2u);
  EXPECT_EQ(models[6].pfsm_count(), 2u);
}

TEST(StandardModels, TotalPfsmCensusMatchesTable2) {
  // Table 2 lists 16 pFSMs across the seven vulnerabilities
  // (3+4+2+2+1+2+2).
  const auto c = census(apps::standard_models());
  EXPECT_EQ(c.total, 16u);
  // §6: "The most common cause of the analyzed vulnerabilities is an
  // incomplete content and/or attribute check ... Incompleteness of a
  // reference consistency check is another frequent reason."
  EXPECT_GT(c.of(PfsmType::kContentAttributeCheck),
            c.of(PfsmType::kReferenceConsistencyCheck));
  EXPECT_GT(c.of(PfsmType::kReferenceConsistencyCheck),
            c.of(PfsmType::kObjectTypeCheck));
  EXPECT_GE(c.of(PfsmType::kObjectTypeCheck), 2u);  // Sendmail + rwall
}

TEST(StandardModels, OnlyXtermDeclaresASecurePfsm) {
  const auto models = apps::standard_models();
  // Paper: "although there is no hidden path in pFSM1 [of xterm], i.e.,
  // the implementation corresponding to pFSM1 is secure".
  std::size_t secure_count = 0;
  for (const auto& m : models) {
    for (const auto& s : m.summaries()) {
      if (s.declared_secure) {
        ++secure_count;
        EXPECT_EQ(m.name(), "xterm Log File Race Condition (Figure 5)");
        EXPECT_EQ(s.pfsm_name, "pFSM1");
      }
    }
  }
  EXPECT_EQ(secure_count, 1u);
}

TEST(StandardModels, BugtraqIdsArePaperIds) {
  const auto models = apps::standard_models();
  EXPECT_EQ(models[0].bugtraq_ids(), (std::vector<int>{3163}));
  EXPECT_EQ(models[1].bugtraq_ids(), (std::vector<int>{5774, 6255}));
  EXPECT_EQ(models[4].bugtraq_ids(), (std::vector<int>{2708}));
  EXPECT_EQ(models[5].bugtraq_ids(), (std::vector<int>{5960}));
  EXPECT_EQ(models[6].bugtraq_ids(), (std::vector<int>{1480}));
}

}  // namespace
}  // namespace dfsm::core
