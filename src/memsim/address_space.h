// address_space.h — a sandboxed flat address space.
//
// The paper's exploits are data-structure attacks on process memory: GOT
// entries (Sendmail #3163, NULL HTTPD #5774), free-chunk fd/bk links
// (NULL HTTPD), and saved return addresses (GHTTPD #5960, rpc.statd #1480).
// None of them depend on a real ISA — only on byte-addressable memory with
// segments and permissions. AddressSpace provides exactly that, plus a
// journal of accesses that the analysis layer mines for overflow evidence.
//
// Substitution note (DESIGN.md §2): this replaces the x86/Linux processes
// the paper studied; addresses are little-endian 64-bit, laid out low so
// that 32-bit-era exploit arithmetic still works.
#ifndef DFSM_MEMSIM_ADDRESS_SPACE_H
#define DFSM_MEMSIM_ADDRESS_SPACE_H

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace dfsm::memsim {

using Addr = std::uint64_t;

/// Segment permissions (combinable).
enum class Perm : unsigned {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kExec = 4,
  kRW = kRead | kWrite,
  kRX = kRead | kExec,
  kRWX = kRead | kWrite | kExec,
};

[[nodiscard]] constexpr Perm operator|(Perm a, Perm b) noexcept {
  return static_cast<Perm>(static_cast<unsigned>(a) | static_cast<unsigned>(b));
}
[[nodiscard]] constexpr bool has_perm(Perm set, Perm p) noexcept {
  return (static_cast<unsigned>(set) & static_cast<unsigned>(p)) != 0;
}

/// Thrown on out-of-segment access or permission violation. The sandbox's
/// analogue of SIGSEGV.
class MemoryFault : public std::runtime_error {
 public:
  MemoryFault(std::string what, Addr addr)
      : std::runtime_error(std::move(what)), addr_(addr) {}
  [[nodiscard]] Addr addr() const noexcept { return addr_; }

 private:
  Addr addr_;
};

/// One mapped region.
struct Segment {
  std::string name;
  Addr base = 0;
  std::size_t size = 0;
  Perm perms = Perm::kNone;
  std::vector<std::uint8_t> data;

  [[nodiscard]] bool contains(Addr a) const noexcept {
    return a >= base && a < base + size;
  }
  [[nodiscard]] Addr end() const noexcept { return base + size; }
};

/// A journaled memory access (used by the discovery engine and tests).
struct MemoryEvent {
  enum class Kind { kRead, kWrite } kind = Kind::kWrite;
  Addr addr = 0;
  std::size_t size = 0;
};

/// A sandboxed, segment-mapped, little-endian address space.
///
/// Invariants: segments never overlap; all accesses are bounds- and
/// permission-checked (MemoryFault otherwise); address 0 is never mapped
/// so null dereferences always fault.
class AddressSpace {
 public:
  AddressSpace() = default;

  /// Maps a new zero-filled segment. Throws std::invalid_argument on
  /// overlap, zero size, or base 0.
  Addr map(std::string name, Addr base, std::size_t size, Perm perms);

  [[nodiscard]] const Segment* find(Addr a) const noexcept;
  [[nodiscard]] const Segment* segment_named(const std::string& name) const noexcept;
  [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
    return segments_;
  }

  // -- Typed accessors (little-endian). Read requires kRead, write kWrite;
  //    accesses must not straddle a segment boundary.
  [[nodiscard]] std::uint8_t read8(Addr a) const;
  [[nodiscard]] std::uint16_t read16(Addr a) const;
  [[nodiscard]] std::uint32_t read32(Addr a) const;
  [[nodiscard]] std::uint64_t read64(Addr a) const;
  void write8(Addr a, std::uint8_t v);
  void write16(Addr a, std::uint16_t v);
  void write32(Addr a, std::uint32_t v);
  void write64(Addr a, std::uint64_t v);

  /// Bulk accessors.
  [[nodiscard]] std::vector<std::uint8_t> read_bytes(Addr a, std::size_t n) const;
  void write_bytes(Addr a, std::span<const std::uint8_t> bytes);
  void write_string(Addr a, const std::string& s, bool nul_terminate = true);

  /// Reads a NUL-terminated string (fails with MemoryFault if it runs off
  /// the segment before a NUL; max_len guards runaways).
  [[nodiscard]] std::string read_cstring(Addr a, std::size_t max_len = 1 << 20) const;

  /// True if the address is mapped with execute permission.
  [[nodiscard]] bool executable(Addr a) const noexcept;

  // -- Journal control. Disabled by default (zero overhead when off).
  void enable_journal(bool on) { journal_on_ = on; }
  [[nodiscard]] const std::vector<MemoryEvent>& journal() const noexcept {
    return journal_;
  }
  void clear_journal() { journal_.clear(); }

  /// Writes that landed in [lo, hi) — the discovery engine's overflow query.
  [[nodiscard]] std::size_t writes_in(Addr lo, Addr hi) const;

 private:
  Segment& checked(Addr a, std::size_t n, Perm need, const char* op);
  const Segment& checked(Addr a, std::size_t n, Perm need, const char* op) const;
  void note(MemoryEvent::Kind k, Addr a, std::size_t n) const;

  std::vector<Segment> segments_;
  bool journal_on_ = false;
  mutable std::vector<MemoryEvent> journal_;
};

}  // namespace dfsm::memsim

#endif  // DFSM_MEMSIM_ADDRESS_SPACE_H
