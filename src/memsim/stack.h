// stack.h — a downward-growing call stack with saved return addresses.
//
// GHTTPD #5960 smashes a saved return address past a 200-byte stack
// buffer; rpc.statd #1480 overwrites one with a %n format-directive write.
// Both need stack frames whose saved return address lives in addressable
// memory *above* the local buffers, so a forward overflow reaches it — the
// layout used here. StackGuard-style canaries (paper §3.2: "deploy return
// address protection techniques, such as StackGuard and split-stack") are
// supported as the elementary-activity-3 defence.
#ifndef DFSM_MEMSIM_STACK_H
#define DFSM_MEMSIM_STACK_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "memsim/address_space.h"

namespace dfsm::memsim {

/// A named local variable request.
struct Local {
  std::string name;
  std::size_t size = 0;
};

/// A pushed frame. Addresses point into the owning AddressSpace; the
/// saved return address and canary are ordinary memory and can be smashed.
struct Frame {
  std::string function;
  Addr ret_slot = 0;                 ///< holds the saved return address
  std::optional<Addr> canary_slot;   ///< present when canaries are enabled
  std::map<std::string, Addr> locals;
  Addr low = 0;   ///< lowest address of the frame (== sp while active)
  Addr high = 0;  ///< one past the ret slot
};

/// Result of returning from a frame.
struct ReturnResult {
  Addr return_address = 0;   ///< the value actually read back from memory
  bool canary_intact = true; ///< false => StackGuard would abort
  bool ret_modified = false; ///< saved value differs from the one pushed
};

/// A downward-growing stack in its own segment.
///
/// Frame layout (addresses descending):
///   [ret slot: 8][canary: 8, optional][local 0][local 1]...[local n-1]
/// so local 0's buffer sits immediately below the canary/ret slot and a
/// forward (ascending) overflow of local 0 reaches them — the classic
/// stack-smash geometry.
///
/// Invariants: frames nest LIFO; locals are 8-byte aligned; pushing past
/// the segment throws MemoryFault (stack exhaustion).
class Stack {
 public:
  /// @param canaries enable StackGuard-style canaries on every frame
  Stack(AddressSpace& as, Addr base, std::size_t size, bool canaries = false,
        std::uint64_t canary_value = 0xDF5A'C0DE'CAFE'F00Dull);

  /// Pushes a frame for `function` returning to `return_address`.
  Frame push_frame(const std::string& function, Addr return_address,
                   const std::vector<Local>& locals);

  /// Pops the innermost frame (must match `frame`), reading the saved
  /// return address back from memory and checking the canary.
  ReturnResult pop_frame(const Frame& frame);

  [[nodiscard]] Addr sp() const noexcept { return sp_; }
  [[nodiscard]] std::size_t depth() const noexcept { return saved_.size(); }
  [[nodiscard]] bool canaries_enabled() const noexcept { return canaries_; }
  [[nodiscard]] std::uint64_t canary_value() const noexcept { return canary_value_; }

  /// Peeks at the saved return address of an active frame (may be smashed).
  [[nodiscard]] Addr saved_return(const Frame& frame) const;

 private:
  struct SavedFrame {
    Addr sp_before;
    Addr ret_slot;
    Addr pushed_return;
    std::optional<Addr> canary_slot;
  };

  AddressSpace& as_;
  Addr base_;
  std::size_t size_;
  Addr sp_;
  bool canaries_;
  std::uint64_t canary_value_;
  std::vector<SavedFrame> saved_;
};

}  // namespace dfsm::memsim

#endif  // DFSM_MEMSIM_STACK_H
