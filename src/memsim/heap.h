// heap.h — a boundary-tag, doubly-linked-free-list heap allocator in the
// style of GNU libc's dlmalloc, the substrate of the NULL HTTPD heap
// overflow (paper Figure 4).
//
// "Free chunks are organized as a double-linked-list by GNU-libc. The
// beginning few bytes of each free chunk are used as the forward link (fd)
// and the backward link (bk) of the double-linked list."
//
// The allocator performs its unlink operations with *real* writes into the
// sandboxed AddressSpace:
//     FD = P->fd;  BK = P->bk;  FD->bk = BK;  BK->fd = FD;
// so a buffer overflow that corrupts a free chunk's fd/bk yields the
// write-what-where primitive the paper describes (footnote 7: set
// B->fd = &addr_free - offsetof(bk), B->bk = Mcode).
//
// The Reference Consistency pFSM of Figure 4 ("are free-chunk links
// unchanged?") corresponds to the `safe_unlink` option: verify
// FD->bk == P && BK->fd == P before unlinking (what glibc later shipped as
// the "corrupted double-linked list" check). Enabling it foils the exploit
// at exactly the elementary activity the model says it should.
//
// Chunk layout (addresses ascending, all fields 8 bytes, little-endian):
//   +0  prev_size   (size of previous chunk — meaningful when prev free)
//   +8  size|flags  (bit 0 = PREV_INUSE: the *previous* chunk is in use)
//   +16 user data ... (fd at +16 and bk at +24 while the chunk is free)
// A chunk's own free/in-use status lives in the NEXT chunk's PREV_INUSE
// bit, exactly as in dlmalloc.
#ifndef DFSM_MEMSIM_HEAP_H
#define DFSM_MEMSIM_HEAP_H

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/address_space.h"

namespace dfsm::memsim {

/// Thrown on allocator-detected corruption (safe-unlink failure, double
/// free, exhaustion).
class HeapError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Offsets shared with exploit builders.
struct ChunkLayout {
  static constexpr std::size_t kHeader = 16;    ///< prev_size + size
  static constexpr std::size_t kFdOffset = 16;  ///< fd relative to chunk base
  static constexpr std::size_t kBkOffset = 24;  ///< bk relative to chunk base
  static constexpr std::size_t kMinChunk = 32;
};

class HeapAllocator {
 public:
  /// Carves a heap out of [base, base+size) in `as`. The first 32 bytes
  /// hold the free-list sentinel ("bin"); the last 16 a fencepost.
  ///
  /// @param safe_unlink enable the FD->bk==P && BK->fd==P integrity check
  HeapAllocator(AddressSpace& as, Addr base, std::size_t size,
                bool safe_unlink = false, std::string segment_name = "heap");

  /// Allocates at least n usable bytes; returns the user pointer.
  /// Throws HeapError on exhaustion.
  Addr malloc(std::size_t n);

  /// malloc(count*elem) zero-filled; throws HeapError on multiplication
  /// overflow or exhaustion (mirrors calloc returning NULL).
  Addr calloc(std::size_t count, std::size_t elem);

  /// realloc(3): grows/shrinks an allocation, copying min(old, new) user
  /// bytes. realloc(0, n) allocates; realloc(p, 0) frees and returns 0.
  /// Throws HeapError on exhaustion (the original pointer stays valid).
  Addr realloc(Addr user_ptr, std::size_t n);

  /// Frees a user pointer, coalescing with free neighbours via unlink.
  /// Throws HeapError on obvious double free or a failed safe-unlink
  /// check; MemoryFault if corrupted metadata sends writes out of bounds.
  void free(Addr user_ptr);

  /// Usable bytes of an allocated chunk.
  [[nodiscard]] std::size_t usable_size(Addr user_ptr) const;

  void set_safe_unlink(bool on) noexcept { safe_unlink_ = on; }
  [[nodiscard]] bool safe_unlink() const noexcept { return safe_unlink_; }

  /// Free-chunk-links integrity of the whole heap — pFSM3's predicate as a
  /// whole-heap query. Returns human-readable findings; empty == intact.
  [[nodiscard]] std::vector<std::string> audit() const;

  /// Chunk enumeration for tests and the discovery engine.
  struct ChunkInfo {
    Addr chunk = 0;        ///< header address
    Addr user = 0;         ///< user data address
    std::size_t size = 0;  ///< total chunk size incl. header
    bool is_free = false;
  };
  [[nodiscard]] std::vector<ChunkInfo> chunks() const;

  /// The free chunk physically following an allocated user pointer, if
  /// any — what a sequential overflow of that buffer reaches first (the
  /// "chunk B" of Figure 4). Returns 0 when the next chunk is in use or
  /// is the fencepost.
  [[nodiscard]] Addr following_free_chunk(Addr user_ptr) const;

  [[nodiscard]] Addr bin() const noexcept { return bin_; }
  [[nodiscard]] Addr heap_base() const noexcept { return base_; }
  [[nodiscard]] std::size_t heap_size() const noexcept { return size_; }

  struct Stats {
    std::uint64_t mallocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t unlinks = 0;
    std::uint64_t splits = 0;
    std::uint64_t coalesces = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] std::uint64_t size_field(Addr chunk) const;
  [[nodiscard]] std::size_t chunk_size(Addr chunk) const;
  [[nodiscard]] bool prev_inuse(Addr chunk) const;
  void set_size(Addr chunk, std::size_t size, bool prev_inuse_bit);
  [[nodiscard]] Addr next_chunk(Addr chunk) const;
  [[nodiscard]] bool is_fencepost(Addr chunk) const;
  [[nodiscard]] bool chunk_is_free(Addr chunk) const;

  void insert_front(Addr chunk);
  void unlink(Addr chunk);
  void mark_inuse(Addr chunk);
  void mark_free(Addr chunk);

  AddressSpace& as_;
  Addr base_;
  std::size_t size_;
  Addr bin_;        ///< sentinel chunk address (== base_)
  Addr fencepost_;  ///< terminal pseudo-chunk address
  bool safe_unlink_;
  Stats stats_;
};

}  // namespace dfsm::memsim

#endif  // DFSM_MEMSIM_HEAP_H
