#include "memsim/stack.h"

#include <stdexcept>

namespace dfsm::memsim {

namespace {
constexpr std::size_t align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }
}  // namespace

Stack::Stack(AddressSpace& as, Addr base, std::size_t size, bool canaries,
             std::uint64_t canary_value)
    : as_(as),
      base_(base),
      size_(size),
      sp_(base + size),
      canaries_(canaries),
      canary_value_(canary_value) {
  as_.map("stack", base_, size_, Perm::kRW);
}

Frame Stack::push_frame(const std::string& function, Addr return_address,
                        const std::vector<Local>& locals) {
  std::size_t need = 8;  // ret slot
  if (canaries_) need += 8;
  for (const auto& l : locals) {
    if (l.size == 0) throw std::invalid_argument("local '" + l.name + "' has size 0");
    need += align8(l.size);
  }
  if (sp_ < base_ + need) {
    throw MemoryFault("stack exhausted pushing frame for " + function, sp_);
  }

  Frame f;
  f.function = function;
  f.high = sp_;

  Addr cursor = sp_;
  cursor -= 8;
  f.ret_slot = cursor;
  as_.write64(f.ret_slot, return_address);
  if (canaries_) {
    cursor -= 8;
    f.canary_slot = cursor;
    as_.write64(*f.canary_slot, canary_value_);
  }
  for (const auto& l : locals) {
    cursor -= align8(l.size);
    f.locals[l.name] = cursor;
  }
  f.low = cursor;

  saved_.push_back(SavedFrame{sp_, f.ret_slot, return_address, f.canary_slot});
  sp_ = cursor;
  return f;
}

ReturnResult Stack::pop_frame(const Frame& frame) {
  if (saved_.empty()) throw std::logic_error("pop_frame on empty stack");
  const SavedFrame top = saved_.back();
  if (top.ret_slot != frame.ret_slot) {
    throw std::logic_error("pop_frame: frame is not the innermost frame");
  }
  ReturnResult r;
  r.return_address = as_.read64(top.ret_slot);
  r.ret_modified = (r.return_address != top.pushed_return);
  if (top.canary_slot) {
    r.canary_intact = (as_.read64(*top.canary_slot) == canary_value_);
  }
  saved_.pop_back();
  sp_ = top.sp_before;
  return r;
}

Addr Stack::saved_return(const Frame& frame) const {
  return as_.read64(frame.ret_slot);
}

}  // namespace dfsm::memsim
