#include "memsim/got.h"

#include <stdexcept>

namespace dfsm::memsim {

Got::Got(AddressSpace& as, Addr base, std::size_t max_entries,
         std::string segment_name)
    : as_(as), base_(base), max_entries_(max_entries) {
  if (max_entries_ == 0) throw std::invalid_argument("Got requires capacity > 0");
  as_.map(std::move(segment_name), base_, max_entries_ * 8, Perm::kRW);
}

Addr Got::bind(const std::string& symbol, Addr function_address) {
  if (slots_.count(symbol) != 0) {
    throw std::invalid_argument("GOT symbol already bound: " + symbol);
  }
  if (slots_.size() >= max_entries_) {
    throw std::invalid_argument("GOT is full");
  }
  const Addr slot = base_ + slots_.size() * 8;
  as_.write64(slot, function_address);
  slots_[symbol] = {slot, function_address};
  return slot;
}

Addr Got::slot_address(const std::string& symbol) const {
  auto it = slots_.find(symbol);
  if (it == slots_.end()) throw std::invalid_argument("unknown GOT symbol: " + symbol);
  return it->second.first;
}

Addr Got::current(const std::string& symbol) const {
  return as_.read64(slot_address(symbol));
}

Addr Got::loaded(const std::string& symbol) const {
  auto it = slots_.find(symbol);
  if (it == slots_.end()) throw std::invalid_argument("unknown GOT symbol: " + symbol);
  return it->second.second;
}

bool Got::unchanged(const std::string& symbol) const {
  return current(symbol) == loaded(symbol);
}

bool Got::has(const std::string& symbol) const noexcept {
  return slots_.count(symbol) != 0;
}

}  // namespace dfsm::memsim
