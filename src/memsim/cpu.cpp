#include "memsim/cpu.h"

#include <stdexcept>

namespace dfsm::memsim {

CpuContext::CpuContext(AddressSpace& as, Addr text_base, std::size_t text_size)
    : as_(as),
      text_base_(text_base),
      text_cursor_(text_base),
      text_end_(text_base + text_size) {
  as_.map("text", text_base_, text_size, Perm::kRX);
}

Addr CpuContext::register_function(const std::string& name) {
  if (functions_.count(name) != 0) {
    throw std::invalid_argument("function already registered: " + name);
  }
  if (text_cursor_ + 16 > text_end_) {
    throw std::invalid_argument("text segment full registering " + name);
  }
  const Addr entry = text_cursor_;
  text_cursor_ += 16;
  functions_[name] = entry;
  by_address_[entry] = name;
  return entry;
}

Addr CpuContext::function_address(const std::string& name) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    throw std::invalid_argument("unknown function: " + name);
  }
  return it->second;
}

bool CpuContext::is_function(Addr a) const noexcept {
  return by_address_.count(a) != 0;
}

Addr CpuContext::plant_mcode(Addr base, std::size_t size) {
  as_.map("mcode", base, size, Perm::kRWX);
  mcode_base_ = base;
  mcode_size_ = size;
  return base;
}

bool CpuContext::is_mcode(Addr a) const noexcept {
  return mcode_size_ != 0 && a >= mcode_base_ && a < mcode_base_ + mcode_size_;
}

Landing CpuContext::dispatch(Addr a) const {
  Landing l;
  l.address = a;
  auto it = by_address_.find(a);
  if (it != by_address_.end()) {
    l.kind = LandingKind::kFunction;
    l.function = it->second;
    return l;
  }
  if (is_mcode(a)) {
    l.kind = LandingKind::kMcode;
    return l;
  }
  l.kind = LandingKind::kWild;
  return l;
}

Landing CpuContext::call_through_got(const Got& got, const std::string& symbol) const {
  return dispatch(got.current(symbol));
}

}  // namespace dfsm::memsim
