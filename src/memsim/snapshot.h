// snapshot.h — whole-memory snapshot and diff: the Reference Consistency
// Check (Figure 8) generalized from a single slot to arbitrary regions.
//
// The paper's pFSM3/pFSM4-style predicates ask "is THIS reference
// unchanged since load?". A snapshot taken at load time answers the
// stronger forensic question after the fact: WHICH bytes of which
// segments changed, and do any of them overlap regions that must stay
// constant (the GOT, saved return addresses)? §6 notes that "very few
// techniques are available to protect other reference inconsistencies" —
// segment diffing is the brute-force such technique, and the discovery
// engine's natural companion.
#ifndef DFSM_MEMSIM_SNAPSHOT_H
#define DFSM_MEMSIM_SNAPSHOT_H

#include <string>
#include <vector>

#include "memsim/address_space.h"

namespace dfsm::memsim {

/// An immutable copy of (selected) segments' contents.
class MemorySnapshot {
 public:
  /// Snapshots every segment (pass names to restrict).
  static MemorySnapshot capture(const AddressSpace& as,
                                const std::vector<std::string>& segment_names = {});

  /// One maximal run of changed bytes.
  struct DiffRegion {
    std::string segment;
    Addr start = 0;          ///< first changed address
    std::size_t length = 0;  ///< run length in bytes
  };

  /// Compares the live address space against this snapshot. Segments not
  /// captured (or since remapped in size) are skipped. Regions are
  /// maximal and sorted by address.
  [[nodiscard]] std::vector<DiffRegion> diff(const AddressSpace& as) const;

  /// True when no captured byte changed — the whole-image consistency
  /// predicate.
  [[nodiscard]] bool unchanged(const AddressSpace& as) const;

  /// True when any changed byte falls inside [lo, hi) — e.g. "was the
  /// GOT written since load?".
  [[nodiscard]] bool changed_within(const AddressSpace& as, Addr lo, Addr hi) const;

  [[nodiscard]] std::size_t segment_count() const noexcept {
    return segments_.size();
  }

 private:
  struct Saved {
    std::string name;
    Addr base = 0;
    std::vector<std::uint8_t> data;
  };
  std::vector<Saved> segments_;
};

}  // namespace dfsm::memsim

#endif  // DFSM_MEMSIM_SNAPSHOT_H
