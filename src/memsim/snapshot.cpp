#include "memsim/snapshot.h"

#include <algorithm>

namespace dfsm::memsim {

MemorySnapshot MemorySnapshot::capture(
    const AddressSpace& as, const std::vector<std::string>& segment_names) {
  MemorySnapshot snap;
  for (const auto& seg : as.segments()) {
    if (!segment_names.empty() &&
        std::find(segment_names.begin(), segment_names.end(), seg.name) ==
            segment_names.end()) {
      continue;
    }
    snap.segments_.push_back(Saved{seg.name, seg.base, seg.data});
  }
  return snap;
}

std::vector<MemorySnapshot::DiffRegion> MemorySnapshot::diff(
    const AddressSpace& as) const {
  std::vector<DiffRegion> out;
  for (const auto& saved : segments_) {
    const Segment* live = as.segment_named(saved.name);
    if (live == nullptr || live->base != saved.base ||
        live->data.size() != saved.data.size()) {
      continue;  // remapped/resized: not comparable
    }
    std::size_t i = 0;
    while (i < saved.data.size()) {
      if (live->data[i] == saved.data[i]) {
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < saved.data.size() && live->data[j] != saved.data[j]) ++j;
      out.push_back(DiffRegion{saved.name, saved.base + i, j - i});
      i = j;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DiffRegion& a, const DiffRegion& b) {
              return a.start < b.start;
            });
  return out;
}

bool MemorySnapshot::unchanged(const AddressSpace& as) const {
  return diff(as).empty();
}

bool MemorySnapshot::changed_within(const AddressSpace& as, Addr lo,
                                    Addr hi) const {
  for (const auto& region : diff(as)) {
    const Addr end = region.start + region.length;
    if (region.start < hi && end > lo) return true;
  }
  return false;
}

}  // namespace dfsm::memsim
