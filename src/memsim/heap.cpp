#include "memsim/heap.h"

namespace dfsm::memsim {

namespace {
constexpr std::uint64_t kPrevInuse = 1;
constexpr std::size_t align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

std::string hex(Addr a) {
  char b[32];
  std::snprintf(b, sizeof b, "0x%llx", static_cast<unsigned long long>(a));
  return b;
}
}  // namespace

HeapAllocator::HeapAllocator(AddressSpace& as, Addr base, std::size_t size,
                             bool safe_unlink, std::string segment_name)
    : as_(as), base_(base), size_(size), safe_unlink_(safe_unlink) {
  if (size_ < 4 * ChunkLayout::kMinChunk) {
    throw std::invalid_argument("heap too small");
  }
  as_.map(std::move(segment_name), base_, size_, Perm::kRW);

  bin_ = base_;
  fencepost_ = base_ + size_ - ChunkLayout::kHeader;

  // Sentinel: fd/bk initially self-referential.
  as_.write64(bin_ + 8, ChunkLayout::kMinChunk | kPrevInuse);
  as_.write64(bin_ + ChunkLayout::kFdOffset, bin_);
  as_.write64(bin_ + ChunkLayout::kBkOffset, bin_);

  // One big free chunk between sentinel and fencepost.
  const Addr top = base_ + ChunkLayout::kMinChunk;
  const std::size_t top_size = size_ - ChunkLayout::kMinChunk - ChunkLayout::kHeader;
  set_size(top, top_size, /*prev_inuse_bit=*/true);  // sentinel counts as in use
  insert_front(top);

  // Fencepost: size 0 marks the end; PREV_INUSE=0 because top is free.
  as_.write64(fencepost_, top_size);  // prev_size of fencepost
  as_.write64(fencepost_ + 8, 0);
}

std::uint64_t HeapAllocator::size_field(Addr chunk) const {
  return as_.read64(chunk + 8);
}

std::size_t HeapAllocator::chunk_size(Addr chunk) const {
  return static_cast<std::size_t>(size_field(chunk) & ~std::uint64_t{7});
}

bool HeapAllocator::prev_inuse(Addr chunk) const {
  return (size_field(chunk) & kPrevInuse) != 0;
}

void HeapAllocator::set_size(Addr chunk, std::size_t size, bool prev_inuse_bit) {
  as_.write64(chunk + 8, static_cast<std::uint64_t>(size) |
                             (prev_inuse_bit ? kPrevInuse : 0));
}

Addr HeapAllocator::next_chunk(Addr chunk) const { return chunk + chunk_size(chunk); }

bool HeapAllocator::is_fencepost(Addr chunk) const { return chunk >= fencepost_; }

bool HeapAllocator::chunk_is_free(Addr chunk) const {
  const Addr next = next_chunk(chunk);
  if (next > fencepost_) {
    throw HeapError("chunk metadata runs past fencepost at " + hex(chunk));
  }
  return !prev_inuse(next);
}

void HeapAllocator::insert_front(Addr chunk) {
  const Addr first = as_.read64(bin_ + ChunkLayout::kFdOffset);
  as_.write64(chunk + ChunkLayout::kFdOffset, first);
  as_.write64(chunk + ChunkLayout::kBkOffset, bin_);
  as_.write64(first + ChunkLayout::kBkOffset, chunk);
  as_.write64(bin_ + ChunkLayout::kFdOffset, chunk);
}

void HeapAllocator::unlink(Addr chunk) {
  const Addr fd = as_.read64(chunk + ChunkLayout::kFdOffset);
  const Addr bk = as_.read64(chunk + ChunkLayout::kBkOffset);
  if (safe_unlink_) {
    // pFSM "Reference Consistency Check": are the free-chunk links
    // unchanged? (glibc: "corrupted double-linked list")
    const bool intact = as_.read64(fd + ChunkLayout::kBkOffset) == chunk &&
                        as_.read64(bk + ChunkLayout::kFdOffset) == chunk;
    if (!intact) {
      throw HeapError("safe-unlink: free-chunk links tampered at chunk " + hex(chunk));
    }
  }
  // The write-what-where pair: FD->bk = BK; BK->fd = FD.
  as_.write64(fd + ChunkLayout::kBkOffset, bk);
  as_.write64(bk + ChunkLayout::kFdOffset, fd);
  ++stats_.unlinks;
}

void HeapAllocator::mark_inuse(Addr chunk) {
  const Addr next = next_chunk(chunk);
  if (next <= fencepost_) {
    as_.write64(next + 8, size_field(next) | kPrevInuse);
  }
}

void HeapAllocator::mark_free(Addr chunk) {
  const Addr next = next_chunk(chunk);
  if (next <= fencepost_) {
    as_.write64(next, chunk_size(chunk));  // prev_size for back-coalescing
    as_.write64(next + 8, size_field(next) & ~kPrevInuse);
  }
}

Addr HeapAllocator::malloc(std::size_t n) {
  if (n > size_) {
    // Also guards the C-idiom (size_t)(negative int) request NULL HTTPD
    // makes for contentLen < -1024: calloc fails, it does not wrap.
    throw HeapError("out of memory: request for " + std::to_string(n));
  }
  const std::size_t need =
      std::max(align8(n) + ChunkLayout::kHeader, ChunkLayout::kMinChunk);

  // First fit over the free list.
  Addr p = as_.read64(bin_ + ChunkLayout::kFdOffset);
  std::size_t guard = 0;
  while (p != bin_) {
    if (++guard > 1u << 20) throw HeapError("free list cycle detected");
    const std::size_t cs = chunk_size(p);
    if (cs >= need) break;
    p = as_.read64(p + ChunkLayout::kFdOffset);
  }
  if (p == bin_) throw HeapError("out of memory: request for " + std::to_string(n));

  unlink(p);
  const std::size_t cs = chunk_size(p);
  if (cs >= need + ChunkLayout::kMinChunk) {
    // Split: front part allocated, remainder stays free.
    const bool pbit = prev_inuse(p);
    set_size(p, need, pbit);
    const Addr rem = p + need;
    set_size(rem, cs - need, /*prev_inuse_bit=*/true);
    insert_front(rem);
    mark_free(rem);
    ++stats_.splits;
  } else {
    mark_inuse(p);
  }
  mark_inuse(p);  // idempotent for the split path (rem's bit set above)
  ++stats_.mallocs;
  return p + ChunkLayout::kHeader;
}

Addr HeapAllocator::calloc(std::size_t count, std::size_t elem) {
  if (elem != 0 && count > static_cast<std::size_t>(-1) / elem) {
    throw HeapError("calloc multiplication overflow");
  }
  const std::size_t n = count * elem;
  const Addr user = malloc(n);
  const std::size_t usable = usable_size(user);
  std::vector<std::uint8_t> zeros(usable, 0);
  as_.write_bytes(user, zeros);
  return user;
}

Addr HeapAllocator::realloc(Addr user_ptr, std::size_t n) {
  if (user_ptr == 0) return malloc(n);
  if (n == 0) {
    free(user_ptr);
    return 0;
  }
  const std::size_t old_usable = usable_size(user_ptr);
  const Addr fresh = malloc(n);  // may throw; old allocation untouched then
  const std::size_t copy = std::min(old_usable, n);
  if (copy > 0) {
    const auto bytes = as_.read_bytes(user_ptr, copy);
    as_.write_bytes(fresh, bytes);
  }
  free(user_ptr);
  return fresh;
}

void HeapAllocator::free(Addr user_ptr) {
  Addr c = user_ptr - ChunkLayout::kHeader;
  if (c < base_ + ChunkLayout::kMinChunk || c >= fencepost_) {
    throw HeapError("free of pointer outside heap: " + hex(user_ptr));
  }
  if (chunk_is_free(c)) {
    throw HeapError("double free detected at " + hex(user_ptr));
  }
  std::size_t sz = chunk_size(c);

  // Forward coalesce: if the physically-next chunk is free, unlink it and
  // absorb it. This is where the corrupted-fd/bk write-what-where fires.
  const Addr next = next_chunk(c);
  if (!is_fencepost(next) && chunk_is_free(next)) {
    unlink(next);
    sz += chunk_size(next);
    set_size(c, sz, prev_inuse(c));
    ++stats_.coalesces;
  }

  // Backward coalesce.
  if (!prev_inuse(c)) {
    const std::size_t prev_size = static_cast<std::size_t>(as_.read64(c));
    const Addr prev = c - prev_size;
    unlink(prev);
    sz += prev_size;
    c = prev;
    set_size(c, sz, prev_inuse(c));
    ++stats_.coalesces;
  }

  insert_front(c);
  mark_free(c);
  ++stats_.frees;
}

std::size_t HeapAllocator::usable_size(Addr user_ptr) const {
  const Addr c = user_ptr - ChunkLayout::kHeader;
  return chunk_size(c) - ChunkLayout::kHeader;
}

std::vector<std::string> HeapAllocator::audit() const {
  std::vector<std::string> findings;
  // Physical walk: every chunk size must be aligned, >= MinChunk, and the
  // walk must land exactly on the fencepost.
  Addr c = base_ + ChunkLayout::kMinChunk;
  std::size_t guard = 0;
  while (c < fencepost_) {
    if (++guard > 1u << 20) {
      findings.push_back("physical walk did not terminate");
      return findings;
    }
    const std::size_t cs = chunk_size(c);
    if (cs < ChunkLayout::kMinChunk || (cs & 7) != 0) {
      findings.push_back("chunk " + hex(c) + " has corrupt size " + std::to_string(cs));
      return findings;  // cannot continue the walk past garbage
    }
    if (c + cs > fencepost_) {
      findings.push_back("chunk " + hex(c) + " overruns the fencepost");
      return findings;
    }
    c += cs;
  }
  if (c != fencepost_) {
    findings.push_back("physical walk ended at " + hex(c) + ", not the fencepost");
  }
  // Free-list walk: round-trip consistency of fd/bk.
  Addr p = as_.read64(bin_ + ChunkLayout::kFdOffset);
  guard = 0;
  while (p != bin_) {
    if (++guard > 1u << 20) {
      findings.push_back("free list does not cycle back to the bin");
      break;
    }
    if (p < base_ || p >= fencepost_) {
      findings.push_back("free-list node " + hex(p) + " lies outside the heap");
      break;
    }
    const Addr fd = as_.read64(p + ChunkLayout::kFdOffset);
    const Addr bk = as_.read64(p + ChunkLayout::kBkOffset);
    if ((bk == bin_ ? as_.read64(bin_ + ChunkLayout::kFdOffset)
                    : as_.read64(bk + ChunkLayout::kFdOffset)) != p ||
        (fd == bin_ ? as_.read64(bin_ + ChunkLayout::kBkOffset)
                    : as_.read64(fd + ChunkLayout::kBkOffset)) != p) {
      findings.push_back("free-chunk links tampered at " + hex(p));
    }
    p = fd;
  }
  return findings;
}

std::vector<HeapAllocator::ChunkInfo> HeapAllocator::chunks() const {
  std::vector<ChunkInfo> out;
  Addr c = base_ + ChunkLayout::kMinChunk;
  std::size_t guard = 0;
  while (c < fencepost_ && ++guard < (1u << 20)) {
    const std::size_t cs = chunk_size(c);
    if (cs < ChunkLayout::kMinChunk || (cs & 7) != 0) break;  // corrupt; stop
    ChunkInfo info;
    info.chunk = c;
    info.user = c + ChunkLayout::kHeader;
    info.size = cs;
    info.is_free = chunk_is_free(c);
    out.push_back(info);
    c += cs;
  }
  return out;
}

Addr HeapAllocator::following_free_chunk(Addr user_ptr) const {
  const Addr c = user_ptr - ChunkLayout::kHeader;
  const Addr next = next_chunk(c);
  if (is_fencepost(next) || !chunk_is_free(next)) return 0;
  return next;
}

}  // namespace dfsm::memsim
