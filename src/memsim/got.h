// got.h — the Global Offset Table of the sandboxed process.
//
// Paper footnote 4: "The GOT entry is a function pointer to a specific
// function... A GOT lookup is performed to decide the callee's entry when a
// library function is called." Two of the paper's case studies corrupt GOT
// entries (setuid() in Sendmail #3163, free() in NULL HTTPD #5774); the
// Reference Consistency Check pFSM asks exactly "is the GOT entry
// unchanged since it was loaded to memory during program initialization?".
//
// Got keeps a load-time snapshot so that question is answerable, and stores
// the live slots in the AddressSpace so heap/array-underflow writes corrupt
// them the same way they do in a real process.
#ifndef DFSM_MEMSIM_GOT_H
#define DFSM_MEMSIM_GOT_H

#include <map>
#include <string>

#include "memsim/address_space.h"

namespace dfsm::memsim {

/// A GOT backed by a writable segment of the address space (the GOT is
/// writable in a real (non-RELRO) process — that is what makes these
/// exploits possible).
///
/// Invariant: each symbol is bound at most once; slots are 8 bytes.
class Got {
 public:
  /// @param as   the owning address space (must outlive the Got)
  /// @param base segment base for the table
  /// @param max_entries capacity
  Got(AddressSpace& as, Addr base, std::size_t max_entries,
      std::string segment_name = "got");

  /// Binds a symbol to its resolved function address ("load addr_setuid to
  /// the memory during program initialization") and snapshots the value.
  /// Returns the slot address. Throws std::invalid_argument when full or
  /// on duplicate symbol.
  Addr bind(const std::string& symbol, Addr function_address);

  /// The address of the slot itself (what an attacker overwrites).
  [[nodiscard]] Addr slot_address(const std::string& symbol) const;

  /// The *current* value stored in the slot — read from memory, so
  /// corruption is visible.
  [[nodiscard]] Addr current(const std::string& symbol) const;

  /// The load-time snapshot value.
  [[nodiscard]] Addr loaded(const std::string& symbol) const;

  /// The Reference Consistency predicate: current == loaded.
  [[nodiscard]] bool unchanged(const std::string& symbol) const;

  [[nodiscard]] bool has(const std::string& symbol) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] Addr base() const noexcept { return base_; }

 private:
  AddressSpace& as_;
  Addr base_;
  std::size_t max_entries_;
  std::map<std::string, std::pair<Addr, Addr>> slots_;  // symbol -> {slot, snapshot}
};

}  // namespace dfsm::memsim

#endif  // DFSM_MEMSIM_GOT_H
