// cpu.h — minimal control-flow semantics for the sandbox: registered
// function entry points in a text segment, an attacker-controlled Mcode
// region, and dispatch of indirect calls (through GOT slots) and returns
// (through saved return addresses).
//
// The paper's exploits all end the same way: "the control jumps to the
// malicious code (Mcode)". We model that terminal event precisely — an
// indirect control transfer landing in the attacker's payload region —
// without simulating an instruction set (DESIGN.md §2: the exploited
// mechanisms are data-structure properties, not ISA properties).
#ifndef DFSM_MEMSIM_CPU_H
#define DFSM_MEMSIM_CPU_H

#include <map>
#include <string>

#include "memsim/address_space.h"
#include "memsim/got.h"

namespace dfsm::memsim {

/// Where an indirect control transfer landed.
enum class LandingKind {
  kFunction,  ///< a registered, legitimate function entry point
  kMcode,     ///< the attacker's payload region — exploit succeeded
  kWild,      ///< anything else — the process would crash (SIGSEGV/SIGILL)
};

[[nodiscard]] constexpr const char* to_string(LandingKind k) noexcept {
  switch (k) {
    case LandingKind::kFunction: return "FUNCTION";
    case LandingKind::kMcode: return "MCODE";
    case LandingKind::kWild: return "WILD";
  }
  return "?";
}

/// Result of an indirect call or return.
struct Landing {
  LandingKind kind = LandingKind::kWild;
  Addr address = 0;
  std::string function;  ///< set when kind == kFunction
};

/// Control-flow context of one sandboxed process.
///
/// Invariants: function addresses are unique, 16-byte spaced in the text
/// segment; the Mcode region (if planted) lies in an executable segment.
class CpuContext {
 public:
  /// @param text_base base of the (read+exec) text segment to create
  CpuContext(AddressSpace& as, Addr text_base, std::size_t text_size);

  /// Registers a function and returns its entry address.
  Addr register_function(const std::string& name);

  [[nodiscard]] Addr function_address(const std::string& name) const;
  [[nodiscard]] bool is_function(Addr a) const noexcept;

  /// Maps an attacker payload region (read+write+exec, as 2003-era stacks
  /// and heaps effectively were) and records it as Mcode. Returns its base.
  Addr plant_mcode(Addr base, std::size_t size);

  [[nodiscard]] bool is_mcode(Addr a) const noexcept;
  [[nodiscard]] Addr mcode_base() const noexcept { return mcode_base_; }

  /// Dispatches a raw code address (a saved return address, a function
  /// pointer read from memory, ...).
  [[nodiscard]] Landing dispatch(Addr a) const;

  /// Call through a GOT slot: reads the slot's *current* value and
  /// dispatches it — corruption of the slot redirects control, exactly as
  /// in the Sendmail and NULL HTTPD exploits.
  [[nodiscard]] Landing call_through_got(const Got& got, const std::string& symbol) const;

  /// Count of Mcode landings so far (the exploit-success counter).
  [[nodiscard]] std::uint64_t mcode_landings() const noexcept { return mcode_landings_; }
  void count_landing(const Landing& l) {
    if (l.kind == LandingKind::kMcode) ++mcode_landings_;
  }

 private:
  AddressSpace& as_;
  Addr text_base_;
  Addr text_cursor_;
  Addr text_end_;
  std::map<std::string, Addr> functions_;
  std::map<Addr, std::string> by_address_;
  Addr mcode_base_ = 0;
  std::size_t mcode_size_ = 0;
  std::uint64_t mcode_landings_ = 0;
};

}  // namespace dfsm::memsim

#endif  // DFSM_MEMSIM_CPU_H
