#include "memsim/address_space.h"

#include <algorithm>
#include <cstring>

namespace dfsm::memsim {

Addr AddressSpace::map(std::string name, Addr base, std::size_t size, Perm perms) {
  if (base == 0) throw std::invalid_argument("segment base must be non-zero");
  if (size == 0) throw std::invalid_argument("segment size must be non-zero");
  for (const auto& s : segments_) {
    const bool disjoint = base + size <= s.base || s.base + s.size <= base;
    if (!disjoint) {
      throw std::invalid_argument("segment '" + name + "' overlaps '" + s.name + "'");
    }
  }
  Segment seg;
  seg.name = std::move(name);
  seg.base = base;
  seg.size = size;
  seg.perms = perms;
  seg.data.assign(size, 0);
  segments_.push_back(std::move(seg));
  return base;
}

const Segment* AddressSpace::find(Addr a) const noexcept {
  for (const auto& s : segments_) {
    if (s.contains(a)) return &s;
  }
  return nullptr;
}

const Segment* AddressSpace::segment_named(const std::string& name) const noexcept {
  for (const auto& s : segments_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Segment& AddressSpace::checked(Addr a, std::size_t n, Perm need, const char* op) {
  return const_cast<Segment&>(
      static_cast<const AddressSpace*>(this)->checked(a, n, need, op));
}

const Segment& AddressSpace::checked(Addr a, std::size_t n, Perm need,
                                     const char* op) const {
  const Segment* s = find(a);
  if (s == nullptr) {
    throw MemoryFault(std::string(op) + ": unmapped address 0x" +
                          [](Addr x) { char b[32]; std::snprintf(b, sizeof b, "%llx", (unsigned long long)x); return std::string(b); }(a),
                      a);
  }
  if (a + n > s->end()) {
    throw MemoryFault(std::string(op) + ": access crosses end of segment '" +
                          s->name + "'",
                      a);
  }
  if (!has_perm(s->perms, need)) {
    throw MemoryFault(std::string(op) + ": permission denied in segment '" +
                          s->name + "'",
                      a);
  }
  return *s;
}

void AddressSpace::note(MemoryEvent::Kind k, Addr a, std::size_t n) const {
  if (journal_on_) journal_.push_back(MemoryEvent{k, a, n});
}

std::uint8_t AddressSpace::read8(Addr a) const {
  const Segment& s = checked(a, 1, Perm::kRead, "read8");
  note(MemoryEvent::Kind::kRead, a, 1);
  return s.data[a - s.base];
}

std::uint16_t AddressSpace::read16(Addr a) const {
  const Segment& s = checked(a, 2, Perm::kRead, "read16");
  note(MemoryEvent::Kind::kRead, a, 2);
  std::uint16_t v = 0;
  std::memcpy(&v, s.data.data() + (a - s.base), 2);
  return v;
}

std::uint32_t AddressSpace::read32(Addr a) const {
  const Segment& s = checked(a, 4, Perm::kRead, "read32");
  note(MemoryEvent::Kind::kRead, a, 4);
  std::uint32_t v = 0;
  std::memcpy(&v, s.data.data() + (a - s.base), 4);
  return v;
}

std::uint64_t AddressSpace::read64(Addr a) const {
  const Segment& s = checked(a, 8, Perm::kRead, "read64");
  note(MemoryEvent::Kind::kRead, a, 8);
  std::uint64_t v = 0;
  std::memcpy(&v, s.data.data() + (a - s.base), 8);
  return v;
}

void AddressSpace::write8(Addr a, std::uint8_t v) {
  Segment& s = checked(a, 1, Perm::kWrite, "write8");
  note(MemoryEvent::Kind::kWrite, a, 1);
  s.data[a - s.base] = v;
}

void AddressSpace::write16(Addr a, std::uint16_t v) {
  Segment& s = checked(a, 2, Perm::kWrite, "write16");
  note(MemoryEvent::Kind::kWrite, a, 2);
  std::memcpy(s.data.data() + (a - s.base), &v, 2);
}

void AddressSpace::write32(Addr a, std::uint32_t v) {
  Segment& s = checked(a, 4, Perm::kWrite, "write32");
  note(MemoryEvent::Kind::kWrite, a, 4);
  std::memcpy(s.data.data() + (a - s.base), &v, 4);
}

void AddressSpace::write64(Addr a, std::uint64_t v) {
  Segment& s = checked(a, 8, Perm::kWrite, "write64");
  note(MemoryEvent::Kind::kWrite, a, 8);
  std::memcpy(s.data.data() + (a - s.base), &v, 8);
}

std::vector<std::uint8_t> AddressSpace::read_bytes(Addr a, std::size_t n) const {
  if (n == 0) return {};
  const Segment& s = checked(a, n, Perm::kRead, "read_bytes");
  note(MemoryEvent::Kind::kRead, a, n);
  auto begin = s.data.begin() + static_cast<std::ptrdiff_t>(a - s.base);
  return {begin, begin + static_cast<std::ptrdiff_t>(n)};
}

void AddressSpace::write_bytes(Addr a, std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return;
  Segment& s = checked(a, bytes.size(), Perm::kWrite, "write_bytes");
  note(MemoryEvent::Kind::kWrite, a, bytes.size());
  std::memcpy(s.data.data() + (a - s.base), bytes.data(), bytes.size());
}

void AddressSpace::write_string(Addr a, const std::string& str, bool nul_terminate) {
  std::vector<std::uint8_t> bytes(str.begin(), str.end());
  if (nul_terminate) bytes.push_back(0);
  write_bytes(a, bytes);
}

std::string AddressSpace::read_cstring(Addr a, std::size_t max_len) const {
  std::string out;
  Addr cur = a;
  while (out.size() < max_len) {
    std::uint8_t c = read8(cur++);
    if (c == 0) return out;
    out.push_back(static_cast<char>(c));
  }
  throw MemoryFault("read_cstring: no NUL within max_len", a);
}

bool AddressSpace::executable(Addr a) const noexcept {
  const Segment* s = find(a);
  return s != nullptr && has_perm(s->perms, Perm::kExec);
}

std::size_t AddressSpace::writes_in(Addr lo, Addr hi) const {
  std::size_t n = 0;
  for (const auto& e : journal_) {
    if (e.kind != MemoryEvent::Kind::kWrite) continue;
    const Addr end = e.addr + e.size;
    if (e.addr < hi && end > lo) ++n;
  }
  return n;
}

}  // namespace dfsm::memsim
