#include "loadgen/corpus_traffic.h"

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bugtraq/corpus.h"
#include "bugtraq/database.h"

namespace dfsm::loadgen {

namespace {

std::size_t histogram_total(const bugtraq::CorpusHistograms& h) {
  std::size_t n = 0;
  for (const auto c : h.by_category) n += c;
  return n;
}

/// One reader thread's loop: acquire, validate the epoch's invariants
/// with serial snapshot-local walks (never the shared pool — a violation
/// or TSan report here is the corpus service's fault, not the checker's),
/// repeat until the writer finishes.
void read_loop(const bugtraq::Database& db, const std::atomic<bool>& done,
               std::atomic<std::size_t>& violations,
               std::atomic<std::size_t>& acquires) {
  std::uint64_t last_epoch = 0;
  std::size_t last_size = 0;
  while (!done.load(std::memory_order_relaxed)) {
    const auto snap = db.snapshot();
    acquires.fetch_add(1, std::memory_order_relaxed);

    // Publishes are ordered: epoch and size never run backwards.
    if (snap->epoch() < last_epoch) violations.fetch_add(1);
    if (snap->size() < last_size) violations.fetch_add(1);
    last_epoch = snap->epoch();
    last_size = snap->size();

    // The carried histograms cover exactly the frozen range.
    const auto& h = snap->histograms();
    if (histogram_total(h) != snap->size()) violations.fetch_add(1);
    std::size_t year_total = 0;
    for (const auto& [year, n] : h.by_year) year_total += n;
    if (year_total != snap->size()) violations.fetch_add(1);

    // Row and column projections agree within the epoch (sampled).
    const auto recs = snap->records();
    const auto cats = snap->categories();
    const auto years = snap->years();
    const auto software = snap->software_ids();
    for (std::size_t i = 0; i < recs.size(); i += 101) {
      if (recs[i].category != cats[i]) violations.fetch_add(1);
      if (recs[i].year != years[i]) violations.fetch_add(1);
      if (software[i] >= snap->software_count() ||
          snap->software_name(software[i]) != recs[i].software) {
        violations.fetch_add(1);
      }
    }
  }
}

}  // namespace

CorpusTrafficReport run_corpus_traffic(const CorpusTrafficSpec& spec) {
  if (spec.records == 0 || spec.batch == 0 || spec.readers == 0) {
    throw std::invalid_argument(
        "corpus traffic needs records, batch, and readers all >= 1");
  }

  CorpusTrafficReport report;
  report.spec = spec;

  // Ground truth, built in one shot; the raced service must end up
  // byte-identical to it.
  const bugtraq::Database reference =
      bugtraq::synthetic_corpus_n(spec.records, spec.seed);
  const auto ref_span = reference.records();
  const std::vector<bugtraq::VulnRecord> rows{ref_span.begin(), ref_span.end()};

  bugtraq::Database db;
  db.reserve(spec.records);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> violations{0};
  std::atomic<std::size_t> acquires{0};

  std::vector<std::thread> readers;
  readers.reserve(spec.readers);
  for (std::size_t t = 0; t < spec.readers; ++t) {
    readers.emplace_back(
        [&] { read_loop(db, done, violations, acquires); });
  }

  for (std::size_t pos = 0; pos < rows.size(); pos += spec.batch) {
    const std::size_t end = std::min(pos + spec.batch, rows.size());
    db.add_batch({rows.begin() + static_cast<std::ptrdiff_t>(pos),
                  rows.begin() + static_cast<std::ptrdiff_t>(end)});
    ++report.batches;
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  const auto snap = db.snapshot();
  report.records = snap->size();
  report.epoch = snap->epoch();
  report.violations = violations.load();
  report.acquires = acquires.load();
  report.histograms_exact =
      bugtraq::rebuild_histograms(*snap) == snap->histograms();
  report.bytes_identical = snap->to_csv() == reference.to_csv();
  return report;
}

std::string render_corpus_traffic(const CorpusTrafficReport& report) {
  std::ostringstream os;
  os << "corpus traffic: seed " << report.spec.seed << ", "
     << report.spec.records << " record(s) in batches of " << report.spec.batch
     << ", " << report.spec.readers << " reader(s)\n";
  os << "  published " << report.batches << " batch(es); final epoch "
     << report.epoch << ", " << report.records << " record(s)\n";
  os << "  isolation violations: " << report.violations << "\n";
  os << "  incremental histograms == full rebuild: "
     << (report.histograms_exact ? "yes" : "NO") << "\n";
  os << "  corpus bytes == one-shot reference: "
     << (report.bytes_identical ? "yes" : "NO") << "\n";
  os << "timing: readers acquired " << report.acquires
     << " snapshot(s) (wall-clock-dependent)\n";
  os << (report.ok() ? "PASS" : "FAIL") << ": concurrent corpus service "
     << (report.ok() ? "held every invariant" : "broke an invariant") << "\n";
  return os.str();
}

}  // namespace dfsm::loadgen
