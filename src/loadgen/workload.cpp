#include "loadgen/workload.h"

#include <stdexcept>

#include "faultinject/rng.h"

namespace dfsm::loadgen {

const char* server_name(ServerKind kind) noexcept {
  switch (kind) {
    case ServerKind::kNullHttpd5774: return "nullhttpd-5774";
    case ServerKind::kNullHttpd6255: return "nullhttpd-6255";
    case ServerKind::kGhttpd: return "ghttpd";
    case ServerKind::kIis: return "iis";
  }
  return "unknown";
}

bool server_from_name(const std::string& name, ServerKind* out) {
  for (std::size_t k = 0; k < kServerKindCount; ++k) {
    const auto kind = static_cast<ServerKind>(k);
    if (name == server_name(kind)) {
      if (out != nullptr) *out = kind;
      return true;
    }
  }
  return false;
}

Ratio parse_ratio(const std::string& s) {
  const auto bad = [&s]() -> Ratio {
    throw std::invalid_argument("bad exploit ratio '" + s +
                                "' (want a decimal in [0, 1] with at most "
                                "6 fraction digits, e.g. 0.05)");
  };
  if (s.empty()) return bad();
  std::size_t pos = 0;
  std::uint64_t int_part = 0;
  bool any_digit = false;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    int_part = int_part * 10 + static_cast<std::uint64_t>(s[pos] - '0');
    if (int_part > 1) return bad();
    any_digit = true;
    ++pos;
  }
  Ratio r{int_part, 1};
  if (pos < s.size()) {
    if (s[pos] != '.') return bad();
    ++pos;
    std::uint64_t frac = 0;
    std::uint64_t den = 1;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      if (den >= 1000000) return bad();  // > 6 fraction digits
      frac = frac * 10 + static_cast<std::uint64_t>(s[pos] - '0');
      den *= 10;
      any_digit = true;
      ++pos;
    }
    if (pos != s.size()) return bad();
    r.num = int_part * den + frac;
    r.den = den;
  }
  if (!any_digit || pos != s.size()) return bad();
  if (r.num > r.den) return bad();  // > 1.0
  return r;
}

std::uint64_t agent_request_count(const WorkloadSpec& w, std::uint64_t agent) {
  if (w.agents == 0 || agent >= w.agents) return 0;
  const std::uint64_t base = w.requests / w.agents;
  const std::uint64_t extra = w.requests % w.agents;
  return base + (agent < extra ? 1 : 0);
}

std::uint64_t agent_base_offset(const WorkloadSpec& w, std::uint64_t agent) {
  if (w.agents == 0) return 0;
  const std::uint64_t base = w.requests / w.agents;
  const std::uint64_t extra = w.requests % w.agents;
  return agent * base + (agent < extra ? agent : extra);
}

bool is_exploit_index(std::uint64_t g, Ratio r) noexcept {
  if (r.num == 0) return false;
  // den <= 10^6 (parse_ratio) and realistic g keep the products far from
  // 64-bit overflow; the Bresenham step is 0 or 1 because num <= den.
  return (g + 1) * r.num / r.den > g * r.num / r.den;
}

std::uint64_t exploit_total(std::uint64_t requests, Ratio r) noexcept {
  if (r.den == 0) return 0;
  return requests * r.num / r.den;
}

RequestSpec request_spec(const WorkloadSpec& w, std::uint64_t agent,
                         std::uint64_t i) {
  RequestSpec spec;
  spec.global_index = agent_base_offset(w, agent) + i;
  spec.exploit = is_exploit_index(spec.global_index, w.exploit_ratio);
  // One independent splitmix64 stream per request: the stream id is the
  // globally unique request index, so two agents can never alias and the
  // draw is random-access (no sequential state to replay).
  faultinject::Rng rng{w.seed, spec.global_index};
  const std::size_t pick =
      w.servers.empty() ? 0 : rng.below(w.servers.size());
  spec.server = w.servers.empty() ? ServerKind::kNullHttpd5774
                                  : w.servers[pick];
  spec.benign_size = 64 + static_cast<std::uint32_t>(rng.below(960));
  spec.jitter_us = static_cast<std::uint32_t>(rng.below(16));
  return spec;
}

}  // namespace dfsm::loadgen
