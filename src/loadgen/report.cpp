#include "loadgen/report.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace dfsm::loadgen {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

std::string ratio_string(Ratio r) {
  return std::to_string(r.num) + "/" + std::to_string(r.den);
}

std::string percent_string(std::uint64_t bp) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%02" PRIu64 "%%", bp / 100,
                bp % 100);
  return buf;
}

void append_tally_json(std::string& out, const ServerTally& t,
                       const char* indent) {
  appendf(out,
          "%s\"requests\": %" PRIu64 ",\n"
          "%s\"benign\": %" PRIu64 ",\n"
          "%s\"exploit\": %" PRIu64 ",\n"
          "%s\"served\": %" PRIu64 ",\n"
          "%s\"rejected\": %" PRIu64 ",\n"
          "%s\"crashed\": %" PRIu64 ",\n"
          "%s\"compromised\": %" PRIu64 ",\n"
          "%s\"detected\": %" PRIu64 ",\n"
          "%s\"false_negatives\": %" PRIu64 ",\n"
          "%s\"false_positives\": %" PRIu64 ",\n"
          "%s\"detection_rate_bp\": %" PRIu64 "\n",
          indent, t.requests, indent, t.benign, indent, t.exploit, indent,
          t.served, indent, t.rejected, indent, t.crashed, indent,
          t.compromised, indent, t.detected, indent, t.false_negatives,
          indent, t.false_positives, indent, detection_rate_bp(t));
}

}  // namespace

std::uint64_t detection_rate_bp(const ServerTally& tally) noexcept {
  if (tally.exploit == 0) return 10000;
  return (tally.exploit - tally.false_negatives) * 10000 / tally.exploit;
}

std::string render_text(const LoadReport& r) {
  std::string out;
  out += "== dfsm_loadgen report ==\n";
  appendf(out,
          "workload: %" PRIu64 " requests, %" PRIu64
          " agents, seed %" PRIu64 ", exploit ratio %s, monitor %s\n",
          r.workload.requests, r.workload.agents, r.workload.seed,
          ratio_string(r.workload.exploit_ratio).c_str(),
          r.monitored ? "on" : "off");
  out += "servers:";
  for (const auto kind : r.workload.servers) {
    out += " ";
    out += server_name(kind);
  }
  out += "\n\n";

  appendf(out,
          "traffic : %" PRIu64 " benign / %" PRIu64
          " exploit; %" PRIu64 " served, %" PRIu64 " rejected, %" PRIu64
          " crashed, %" PRIu64 " compromised\n",
          r.total.benign, r.total.exploit, r.total.served, r.total.rejected,
          r.total.crashed, r.total.compromised);
  if (r.monitored) {
    appendf(out,
            "monitor : %" PRIu64 " detected, %" PRIu64
            " false negatives, %" PRIu64
            " false positives, detection rate %s\n",
            r.total.detected, r.total.false_negatives,
            r.total.false_positives,
            percent_string(detection_rate_bp(r.total)).c_str());
    appendf(out,
            "lint    : %zu monitor model(s) linted, %zu finding(s) (%s)\n",
            r.monitor_models_linted, r.monitor_lint_findings,
            r.monitor_lint_clean ? "clean" : "NOT CLEAN");
  } else {
    out += "monitor : off (no detection accounting)\n";
  }
  appendf(out,
          "latency : min %" PRIu64 "us  mean %" PRIu64 "us  p50 %" PRIu64
          "us  p90 %" PRIu64 "us  p99 %" PRIu64 "us  p999 %" PRIu64
          "us  max %" PRIu64 "us (simulated)\n",
          r.latency.min(), r.latency.mean(), r.latency.percentile(50),
          r.latency.percentile(90), r.latency.percentile(99),
          r.latency.percentile(99.9), r.latency.max());
  appendf(out,
          "virtual : makespan %" PRIu64 "us, throughput %" PRIu64
          " req/s (simulated clock)\n\n",
          r.makespan_us, r.throughput_rps);

  out += "per-server:\n";
  for (const auto kind : r.workload.servers) {
    const auto& t = r.per_server[static_cast<std::size_t>(kind)];
    appendf(out,
            "  %-15s %8" PRIu64 " req  %7" PRIu64 " exploit  %7" PRIu64
            " detected  %3" PRIu64 " fn  %3" PRIu64 " fp  (rate %s)\n",
            server_name(kind), t.requests, t.exploit, t.detected,
            t.false_negatives, t.false_positives,
            percent_string(detection_rate_bp(t)).c_str());
  }

  if (!r.samples.entries().empty()) {
    out += "\ncaptured exploit requests:\n";
    for (const auto& s : r.samples.entries()) {
      appendf(out, "  agent %" PRIu64 " #%" PRIu64 " -> %s: %s\n", s.agent,
              s.index, s.server.c_str(),
              netsim::hex_preview(s.raw, 48).c_str());
    }
  }
  return out;
}

std::string render_json(const LoadReport& r) {
  std::string out;
  out += "{\n  \"workload\": {\n";
  appendf(out,
          "    \"requests\": %" PRIu64 ",\n    \"agents\": %" PRIu64
          ",\n    \"seed\": %" PRIu64 ",\n    \"exploit_ratio\": \"%s\",\n",
          r.workload.requests, r.workload.agents, r.workload.seed,
          ratio_string(r.workload.exploit_ratio).c_str());
  out += "    \"servers\": [";
  for (std::size_t i = 0; i < r.workload.servers.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"";
    out += server_name(r.workload.servers[i]);
    out += "\"";
  }
  out += "],\n";
  appendf(out, "    \"monitor\": %s\n  },\n", r.monitored ? "true" : "false");

  appendf(out,
          "  \"monitor_lint\": {\n    \"models_linted\": %zu,\n"
          "    \"findings\": %zu,\n    \"clean\": %s\n  },\n",
          r.monitor_models_linted, r.monitor_lint_findings,
          r.monitor_lint_clean ? "true" : "false");

  out += "  \"totals\": {\n";
  append_tally_json(out, r.total, "    ");
  out += "  },\n";

  appendf(out,
          "  \"latency_us\": {\n"
          "    \"count\": %" PRIu64 ",\n    \"min\": %" PRIu64
          ",\n    \"mean\": %" PRIu64 ",\n    \"p50\": %" PRIu64
          ",\n    \"p90\": %" PRIu64 ",\n    \"p99\": %" PRIu64
          ",\n    \"p999\": %" PRIu64 ",\n    \"max\": %" PRIu64 "\n  },\n",
          r.latency.count(), r.latency.min(), r.latency.mean(),
          r.latency.percentile(50), r.latency.percentile(90),
          r.latency.percentile(99), r.latency.percentile(99.9),
          r.latency.max());

  appendf(out,
          "  \"simulated\": {\n    \"makespan_us\": %" PRIu64
          ",\n    \"throughput_rps\": %" PRIu64 "\n  },\n",
          r.makespan_us, r.throughput_rps);

  out += "  \"servers\": [\n";
  for (std::size_t i = 0; i < r.workload.servers.size(); ++i) {
    const auto kind = r.workload.servers[i];
    const auto& t = r.per_server[static_cast<std::size_t>(kind)];
    appendf(out, "    {\n      \"name\": \"%s\",\n", server_name(kind));
    append_tally_json(out, t, "      ");
    out += i + 1 < r.workload.servers.size() ? "    },\n" : "    }\n";
  }
  out += "  ],\n";

  out += "  \"samples\": [\n";
  const auto& samples = r.samples.entries();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    appendf(out,
            "    {\"agent\": %" PRIu64 ", \"index\": %" PRIu64
            ", \"server\": \"%s\", \"exploit\": %s, \"raw_hex\": \"%s\"}%s\n",
            s.agent, s.index, s.server.c_str(), s.exploit ? "true" : "false",
            netsim::hex_preview(s.raw, 64).c_str(),
            i + 1 < samples.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace dfsm::loadgen
