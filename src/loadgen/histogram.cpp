#include "loadgen/histogram.h"

#include <bit>
#include <cmath>

namespace dfsm::loadgen {

std::size_t LatencyHistogram::bucket_index(std::uint64_t v) noexcept {
  if (v < kUnitBuckets) return static_cast<std::size_t>(v);
  // v in [2^(o+3), 2^(o+4)) for octave o >= 0; the 3 bits after the
  // leading one select the sub-bucket.
  const int width = std::bit_width(v);          // >= 4 here
  const std::size_t octave = static_cast<std::size_t>(width - 4);
  const std::size_t sub =
      static_cast<std::size_t>((v >> octave) & (kSubBuckets - 1));
  return kUnitBuckets + octave * kSubBuckets + sub;
}

std::uint64_t LatencyHistogram::bucket_floor(std::size_t index) noexcept {
  if (index < kUnitBuckets) return index;
  const std::size_t octave = (index - kUnitBuckets) / kSubBuckets;
  const std::size_t sub = (index - kUnitBuckets) % kSubBuckets;
  return (std::uint64_t{kUnitBuckets} << octave) +
         (static_cast<std::uint64_t>(sub) << octave);
}

void LatencyHistogram::record(std::uint64_t v) noexcept {
  ++buckets_[bucket_index(v)];
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ != 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

std::uint64_t LatencyHistogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) return bucket_floor(i);
  }
  return max_;
}

}  // namespace dfsm::loadgen
