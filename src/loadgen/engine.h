// engine.h — the monitored-server traffic engine.
//
// N worker threads (runtime/ thread pool, DFSM_THREADS discipline) ×
// M simulated agents, each agent a small connect → send → decode →
// observe → close state machine over its own contiguous slice of the
// request stream. Requests come from the pure (seed, agent, i) generator
// (workload.h); servers are the byte-level NULL HTTPD / GHTTPD / IIS
// replicas behind their real netsim decode front doors; an
// analysis::RuntimeMonitor is optionally attached per connection and
// reset between requests. Because the generator knows ground truth, the
// engine tallies exact false negatives/positives, not estimates.
//
// Determinism contract (DESIGN.md §12): agents are embarrassingly
// parallel and their stats merge in ascending agent order, so the full
// report — counters, histograms, captured samples — is byte-identical
// at DFSM_THREADS 0/1/4. Latency is SIMULATED virtual time (a fixed
// per-request cost model plus generator jitter), which is what keeps
// the histograms deterministic; wall-clock throughput is measured by
// the caller (CLI/bench), outside the report.
#ifndef DFSM_LOADGEN_ENGINE_H
#define DFSM_LOADGEN_ENGINE_H

#include <array>
#include <cstdint>
#include <string>

#include "loadgen/histogram.h"
#include "loadgen/workload.h"
#include "netsim/replay.h"

namespace dfsm::loadgen {

struct EngineOptions {
  WorkloadSpec workload;
  /// Attach a RuntimeMonitor to every connection (detection accounting
  /// only happens when true).
  bool monitor = true;
  /// Keep the first `capture` exploit requests (by (agent, index)) as raw
  /// wire bytes in the report's sample section. 0 disables capture.
  std::size_t capture = 0;
};

/// Per-target counters. merge() adds element-wise (ascending-agent fold).
struct ServerTally {
  std::uint64_t requests = 0;
  std::uint64_t benign = 0;
  std::uint64_t exploit = 0;      ///< ground truth from the generator
  std::uint64_t served = 0;       ///< completed normally
  std::uint64_t rejected = 0;     ///< refused by a check/parser
  std::uint64_t crashed = 0;      ///< simulated fault
  std::uint64_t compromised = 0;  ///< exploit effect fired (Mcode / escape)
  std::uint64_t detected = 0;     ///< monitor flagged >= 1 violation
  std::uint64_t false_negatives = 0;  ///< exploit the monitor missed
  std::uint64_t false_positives = 0;  ///< benign the monitor flagged

  void merge(const ServerTally& other) noexcept;
  [[nodiscard]] bool operator==(const ServerTally&) const = default;
};

/// Ground-truth verdict bookkeeping — the single place FN/FP accounting
/// lives, shared by the agent loop and directly testable on hand-built
/// batches.
void apply_verdict(ServerTally& tally, bool exploit, bool detected) noexcept;

/// What one request did, as the engine saw it.
struct RequestOutcome {
  bool served = false;
  bool rejected = false;
  bool crashed = false;
  bool compromised = false;
  bool detected = false;        ///< always false when unmonitored
  std::uint64_t violations = 0;  ///< monitor violation records
  std::uint64_t cost_us = 0;     ///< simulated service time (sans jitter)
};

/// The merged result of a run.
struct LoadReport {
  // Workload echo (what the run actually executed).
  WorkloadSpec workload;
  bool monitored = true;

  ServerTally total;
  std::array<ServerTally, kServerKindCount> per_server{};

  LatencyHistogram latency;       ///< simulated per-request latency (µs)
  std::uint64_t makespan_us = 0;  ///< busiest agent's total simulated time
  std::uint64_t throughput_rps = 0;  ///< requests / makespan (virtual)

  netsim::RequestTap samples{0};  ///< captured exploit requests

  // Monitor-model lint verdict (monitored runs only; zero/false when the
  // monitor is off). run_load lints the three monitor models through the
  // universal staticlint entry before serving traffic, so a run cannot
  // silently deploy a structurally broken detection model.
  std::size_t monitor_models_linted = 0;
  std::size_t monitor_lint_findings = 0;
  bool monitor_lint_clean = false;
};

/// Runs the full workload over the global thread pool.
[[nodiscard]] LoadReport run_load(const EngineOptions& options);

/// Serves ONE request payload against a fresh replica instance, with or
/// without a monitor — the replay hook for captured requests and the
/// unit-test entry point. For the NULL HTTPD kinds `payload` is the raw
/// wire request (netsim front door); for GHTTPD the request line; for
/// IIS the encoded CGI filepath.
[[nodiscard]] RequestOutcome serve_request(ServerKind kind,
                                           const std::string& payload,
                                           bool monitored);

/// Replays a captured request through serve_request (label -> kind).
/// Throws std::invalid_argument on an unknown server label.
[[nodiscard]] RequestOutcome replay_request(const netsim::CapturedRequest& req,
                                            bool monitored);

}  // namespace dfsm::loadgen

#endif  // DFSM_LOADGEN_ENGINE_H
