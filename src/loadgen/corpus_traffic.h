// corpus_traffic.h — reader/writer traffic over the concurrent corpus
// service (bugtraq/database.h): one writer ingesting a seeded corpus in
// fixed-size batches while N real reader threads hammer snapshot() and
// check, on every acquire, the service's isolation invariants — epoch
// and size monotone, carried histograms exactly covering the frozen
// range, row and column projections agreeing within the epoch.
//
// This is the concurrency complement to the monitored-server engine:
// engine.h loads the request pipeline, corpus_traffic loads the corpus
// service itself. The CI TSan leg runs it for race detection; the
// default leg runs it as a semantic gate (violations == 0).
//
// Determinism: the FINAL state (records, epoch, batches, corpus bytes,
// histogram exactness) is a pure function of the spec. How many
// snapshots the readers manage to acquire is wall-clock-dependent by
// nature and reported separately as `acquires` — emit_text prints it on
// a clearly-marked timing line so byte-comparing consumers can strip it.
#ifndef DFSM_LOADGEN_CORPUS_TRAFFIC_H
#define DFSM_LOADGEN_CORPUS_TRAFFIC_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace dfsm::loadgen {

struct CorpusTrafficSpec {
  std::uint64_t seed = 1;
  std::size_t records = 20'000;  ///< total records the writer ingests
  std::size_t batch = 500;       ///< records per published epoch
  std::size_t readers = 4;       ///< concurrent snapshot-reader threads
};

struct CorpusTrafficReport {
  CorpusTrafficSpec spec;

  // Deterministic outcome.
  std::size_t records = 0;      ///< final corpus size
  std::uint64_t epoch = 0;      ///< final publication count
  std::size_t batches = 0;      ///< writer publishes
  std::size_t violations = 0;   ///< isolation-invariant breaches observed
  bool histograms_exact = false;  ///< final incremental == full rebuild
  bool bytes_identical = false;   ///< final CSV == one-shot reference build

  // Timing-dependent telemetry (excluded from byte comparisons).
  std::size_t acquires = 0;  ///< snapshots the readers acquired in total

  [[nodiscard]] bool ok() const noexcept {
    return violations == 0 && histograms_exact && bytes_identical &&
           records == spec.records;
  }
};

/// Runs the traffic. Throws std::invalid_argument on a zero-record,
/// zero-batch, or zero-reader spec.
[[nodiscard]] CorpusTrafficReport run_corpus_traffic(
    const CorpusTrafficSpec& spec);

/// Human-readable report. Every line except the "timing:" line is a
/// pure function of the spec and the (deterministic) outcome.
[[nodiscard]] std::string render_corpus_traffic(
    const CorpusTrafficReport& report);

}  // namespace dfsm::loadgen

#endif  // DFSM_LOADGEN_CORPUS_TRAFFIC_H
