// histogram.h — log-bucketed, mergeable latency histograms.
//
// HDR-style layout: values below 8 get exact unit buckets; above that,
// each power-of-two octave is split into 8 sub-buckets (3 mantissa
// bits), bounding relative bucket error at 12.5% while covering the
// full uint64 range in 496 counters. Merging is element-wise addition,
// so it is associative and commutative — per-agent histograms can be
// folded in any grouping and the engine's ascending-agent merge yields
// the same bytes at every thread count.
#ifndef DFSM_LOADGEN_HISTOGRAM_H
#define DFSM_LOADGEN_HISTOGRAM_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace dfsm::loadgen {

class LatencyHistogram {
 public:
  static constexpr std::size_t kUnitBuckets = 8;   ///< exact buckets [0, 8)
  static constexpr std::size_t kSubBuckets = 8;    ///< per octave above that
  static constexpr std::size_t kOctaves = 61;      ///< [2^3, 2^64)
  static constexpr std::size_t kBucketCount = kUnitBuckets + kOctaves * kSubBuckets;

  /// Bucket index for a value (total order, stable across merges).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept;

  /// Inclusive lower bound of a bucket — the value percentile() reports.
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t index) noexcept;

  void record(std::uint64_t v) noexcept;

  /// Element-wise addition; associative and commutative.
  void merge(const LatencyHistogram& other) noexcept;

  /// Value at percentile p in [0, 100]: the floor of the bucket holding
  /// the ceil(p/100 * count)-th smallest sample (min/max are exact at the
  /// ends). 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  /// Integer mean (sum / count); 0 when empty.
  [[nodiscard]] std::uint64_t mean() const noexcept {
    return count_ ? sum_ / count_ : 0;
  }

  [[nodiscard]] bool operator==(const LatencyHistogram&) const = default;

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

}  // namespace dfsm::loadgen

#endif  // DFSM_LOADGEN_HISTOGRAM_H
