// workload.h — the deterministic request stream of the traffic engine.
//
// Every request the engine fires is a pure function of (seed, agent,
// request index): the same triple yields the same RequestSpec no matter
// which worker thread materialises it, in what order, or how often —
// the determinism anchor that makes serial and parallel load reports
// byte-identical (DESIGN.md §12).
//
// The benign/exploit mix is apportioned EXACTLY, not statistically: a
// ratio num/den marks global request g as an exploit iff
// floor((g+1)*num/den) > floor(g*num/den), a Bresenham walk whose
// telescoping sum puts exactly floor(R*num/den) exploits into any run of
// R requests — testable at 10^4 and 10^6 without tolerance bands.
#ifndef DFSM_LOADGEN_WORKLOAD_H
#define DFSM_LOADGEN_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

namespace dfsm::loadgen {

/// The monitored server replicas the engine can drive.
enum class ServerKind : std::uint8_t {
  kNullHttpd5774 = 0,  ///< NULL HTTPD, negative Content-Length (#5774)
  kNullHttpd6255,      ///< NULL HTTPD, '||' recv-loop oversend (#6255)
  kGhttpd,             ///< GHTTPD Log() stack overflow (#5960)
  kIis,                ///< IIS superfluous decoding (#2708)
};
inline constexpr std::size_t kServerKindCount = 4;

/// Stable report/CLI label ("nullhttpd-5774", "ghttpd", ...).
[[nodiscard]] const char* server_name(ServerKind kind) noexcept;

/// Inverse of server_name; returns false on an unknown label.
[[nodiscard]] bool server_from_name(const std::string& name, ServerKind* out);

/// Exploit share as an exact rational (num exploits per den requests).
struct Ratio {
  std::uint64_t num = 0;
  std::uint64_t den = 1;
};

/// Parses a decimal in [0, 1] with at most 6 fraction digits ("0.05" ->
/// 5/100, ".125" -> 125/1000, "1" -> 1/1). The rational is kept exactly
/// as written — no normalisation — so reports echo the CLI input.
/// Throws std::invalid_argument on anything else.
[[nodiscard]] Ratio parse_ratio(const std::string& s);

/// Everything that defines a traffic run. Two equal specs produce two
/// byte-identical request streams.
struct WorkloadSpec {
  std::uint64_t seed = 1;
  std::uint64_t agents = 32;     ///< simulated concurrent connections
  std::uint64_t requests = 10000;  ///< total across all agents
  Ratio exploit_ratio{5, 100};
  /// Enabled targets in selection order (must be non-empty).
  std::vector<ServerKind> servers = {
      ServerKind::kNullHttpd5774, ServerKind::kNullHttpd6255,
      ServerKind::kGhttpd, ServerKind::kIis};
};

/// Requests assigned to `agent`: the first requests % agents agents get
/// one extra — same largest-remainder convention as runtime::static_blocks.
[[nodiscard]] std::uint64_t agent_request_count(const WorkloadSpec& w,
                                                std::uint64_t agent);

/// Global index of `agent`'s first request (agents own contiguous,
/// ascending global ranges).
[[nodiscard]] std::uint64_t agent_base_offset(const WorkloadSpec& w,
                                              std::uint64_t agent);

/// True iff global request g is an exploit under ratio r (Bresenham).
[[nodiscard]] bool is_exploit_index(std::uint64_t g, Ratio r) noexcept;

/// Exact exploit count over a run of `requests` requests:
/// floor(requests * num / den).
[[nodiscard]] std::uint64_t exploit_total(std::uint64_t requests,
                                          Ratio r) noexcept;

/// One fully-determined request. All randomness (target pick, benign
/// payload size, latency jitter) is drawn here, never in the engine, so
/// purity lives in exactly one place.
struct RequestSpec {
  std::uint64_t global_index = 0;
  ServerKind server = ServerKind::kNullHttpd5774;
  bool exploit = false;
  std::uint32_t benign_size = 0;  ///< benign payload size parameter (bytes)
  std::uint32_t jitter_us = 0;    ///< deterministic per-request latency jitter

  [[nodiscard]] bool operator==(const RequestSpec&) const = default;
};

/// The pure generator: request i of `agent` under workload `w`.
/// Call-order independent; safe from any thread.
[[nodiscard]] RequestSpec request_spec(const WorkloadSpec& w,
                                       std::uint64_t agent, std::uint64_t i);

}  // namespace dfsm::loadgen

#endif  // DFSM_LOADGEN_WORKLOAD_H
