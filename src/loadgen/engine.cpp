#include "loadgen/engine.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "analysis/monitor.h"
#include "apps/ghttpd.h"
#include "apps/iis.h"
#include "apps/nullhttpd.h"
#include "fssim/filesystem.h"
#include "netsim/http.h"
#include "runtime/parallel.h"
#include "staticlint/linter.h"
#include "staticlint/registry.h"

namespace dfsm::loadgen {

void ServerTally::merge(const ServerTally& other) noexcept {
  requests += other.requests;
  benign += other.benign;
  exploit += other.exploit;
  served += other.served;
  rejected += other.rejected;
  crashed += other.crashed;
  compromised += other.compromised;
  detected += other.detected;
  false_negatives += other.false_negatives;
  false_positives += other.false_positives;
}

void apply_verdict(ServerTally& tally, bool exploit, bool detected) noexcept {
  if (detected) ++tally.detected;
  if (exploit && !detected) ++tally.false_negatives;
  if (!exploit && detected) ++tally.false_positives;
}

namespace {

// --- Payloads -----------------------------------------------------------

/// The curated exploit payloads, built once per run. All four are pure
/// (the sandbox replicas are deterministic), so two runs — and the two
/// bench arms — fire byte-identical attacks.
struct ExploitPayloads {
  std::string nullhttpd_5774;  ///< raw wire request, contentLen = -800
  std::string nullhttpd_6255;  ///< raw wire request, truthful contentLen
  std::string ghttpd;          ///< oversized request line
  std::string iis;             ///< Nimda-style encoded CGI filepath
};

ExploitPayloads build_exploit_payloads() {
  ExploitPayloads p;
  {
    const auto info = apps::NullHttpd::scout(-800);
    p.nullhttpd_5774 = apps::NullHttpd::build_exploit_request(info, -800);
  }
  {
    const auto info = apps::NullHttpd::scout(0);
    p.nullhttpd_6255 = apps::NullHttpd::build_exploit_request(info, 0);
  }
  p.ghttpd = apps::Ghttpd{}.build_exploit();
  p.iis = apps::IisDecoder::nimda_payload();
  return p;
}

std::string benign_nullhttpd_request(std::uint32_t size) {
  netsim::HttpRequest req;
  req.method = "POST";
  req.path = "/cgi-bin/form";
  req.headers["Content-Length"] = std::to_string(size);
  req.headers["Host"] = "victim";
  return netsim::serialize(req, std::string(size, 'b'));
}

std::string benign_ghttpd_line(std::uint32_t size) {
  // Keep the full line comfortably under the 200-byte log buffer.
  return "GET /" + std::string(size % 150, 'a') + " HTTP/1.0";
}

std::string benign_iis_path(std::uint32_t size) {
  // Both forms resolve to the in-root hello.cgi; the escaped variant
  // exercises the decoder on benign traffic too.
  return size % 2 == 0 ? "hello.cgi" : "hello%2ecgi";
}

std::string payload_for(const RequestSpec& spec, const ExploitPayloads& p) {
  switch (spec.server) {
    case ServerKind::kNullHttpd5774:
      return spec.exploit ? p.nullhttpd_5774
                          : benign_nullhttpd_request(spec.benign_size);
    case ServerKind::kNullHttpd6255:
      return spec.exploit ? p.nullhttpd_6255
                          : benign_nullhttpd_request(spec.benign_size);
    case ServerKind::kGhttpd:
      return spec.exploit ? p.ghttpd : benign_ghttpd_line(spec.benign_size);
    case ServerKind::kIis:
      return spec.exploit ? p.iis : benign_iis_path(spec.benign_size);
  }
  throw std::logic_error("unreachable server kind");
}

// --- Per-connection serving state --------------------------------------

/// Simulated service-time model (virtual microseconds): a per-target base
/// cost, a per-byte wire cost, a per-syscall-event cost and a monitoring
/// surcharge. Entirely deterministic — the latency histograms depend only
/// on the request stream, never on the clock (DESIGN.md §12).
constexpr std::uint64_t kCostBaseNullHttpd = 30;
constexpr std::uint64_t kCostBaseGhttpd = 12;
constexpr std::uint64_t kCostBaseIis = 8;
constexpr std::uint64_t kCostBytesPerUs = 32;
constexpr std::uint64_t kCostPerEvent = 2;
constexpr std::uint64_t kCostMonitorBase = 6;
constexpr std::uint64_t kCostPerViolation = 2;

/// One agent's long-lived serving state: lazily (re)built server
/// replicas and one monitor per model, reset between requests. Benign
/// requests reuse the previous instance while it finished cleanly —
/// a fresh process per request only where fidelity demands it (exploit
/// runs assume the pristine heap/stack layout the attacker scouted).
struct ServeContext {
  std::unique_ptr<apps::NullHttpd> nullhttpd;
  std::unique_ptr<apps::Ghttpd> ghttpd;
  std::unique_ptr<apps::IisDecoder> iis;
  std::unique_ptr<fssim::FileSystem> iis_fs;

  std::unique_ptr<analysis::RuntimeMonitor> mon_nullhttpd;
  std::unique_ptr<analysis::RuntimeMonitor> mon_ghttpd;
  std::unique_ptr<analysis::RuntimeMonitor> mon_iis;
};

/// Lazily builds the per-agent monitor for a server kind. Load monitors
/// run violations-only: the verdict does not need the per-transition
/// trace, and skipping its string-heavy recording keeps the monitored
/// arm inside the <= 2x overhead budget the bench gate enforces.
analysis::RuntimeMonitor& monitor_for(ServeContext& ctx, ServerKind kind) {
  const auto fresh = [](core::FsmModel model) {
    auto mon = std::make_unique<analysis::RuntimeMonitor>(std::move(model));
    mon->set_trace_enabled(false);
    return mon;
  };
  switch (kind) {
    case ServerKind::kNullHttpd5774:
    case ServerKind::kNullHttpd6255:
      if (!ctx.mon_nullhttpd) {
        ctx.mon_nullhttpd = fresh(apps::NullHttpd::figure4_model());
      }
      return *ctx.mon_nullhttpd;
    case ServerKind::kGhttpd:
      if (!ctx.mon_ghttpd) {
        ctx.mon_ghttpd = fresh(apps::Ghttpd::ghttpd_model());
      }
      return *ctx.mon_ghttpd;
    case ServerKind::kIis:
      if (!ctx.mon_iis) {
        ctx.mon_iis = fresh(apps::IisDecoder::figure7_model());
      }
      return *ctx.mon_iis;
  }
  throw std::logic_error("unreachable server kind");
}

void observe(ServeContext& ctx, ServerKind kind,
             const std::vector<std::vector<core::Object>>& facts,
             RequestOutcome& out) {
  auto& mon = monitor_for(ctx, kind);
  mon.reset();  // capacity-retaining clear: no per-request reallocation
  (void)mon.observe(facts);
  out.violations = mon.violations().size();
  out.detected = out.violations > 0;
  out.cost_us += kCostMonitorBase + kCostPerViolation * out.violations;
}

RequestOutcome serve_nullhttpd(ServeContext& ctx, const std::string& raw,
                               bool fresh, bool monitored) {
  if (fresh || !ctx.nullhttpd) {
    ctx.nullhttpd = std::make_unique<apps::NullHttpd>();
  }
  auto& app = *ctx.nullhttpd;
  const auto r = app.handle_raw(raw);

  RequestOutcome out;
  out.served = r.served;
  out.rejected = r.rejected;
  out.crashed = r.crashed;
  out.compromised = r.mcode_executed;
  out.cost_us = kCostBaseNullHttpd + raw.size() / kCostBytesPerUs +
                kCostPerEvent * r.events.size();
  if (monitored) {
    const bool got_ok = app.process().got().unchanged("free");
    observe(ctx, ServerKind::kNullHttpd5774,
            analysis::nullhttpd_observation(
                r.content_len, static_cast<std::int64_t>(r.bytes_read),
                static_cast<std::int64_t>(r.postdata_usable),
                /*links_unchanged=*/!r.heap_overflowed,
                /*addr_free_unchanged=*/got_ok),
            out);
  }
  // A connection that did anything but serve cleanly leaves a dirtied
  // process image behind — never reuse it.
  if (!r.served || r.heap_overflowed || r.mcode_executed || r.crashed) {
    ctx.nullhttpd.reset();
  }
  return out;
}

RequestOutcome serve_ghttpd(ServeContext& ctx, const std::string& line,
                            bool fresh, bool monitored) {
  if (fresh || !ctx.ghttpd) ctx.ghttpd = std::make_unique<apps::Ghttpd>();
  const auto r = ctx.ghttpd->serve(line);

  RequestOutcome out;
  out.served = r.logged && !r.rejected && !r.crashed && !r.mcode_executed;
  out.rejected = r.rejected;
  out.crashed = r.crashed;
  out.compromised = r.mcode_executed;
  out.cost_us = kCostBaseGhttpd + line.size() / kCostBytesPerUs +
                kCostPerEvent * r.events.size();
  if (monitored) {
    observe(ctx, ServerKind::kGhttpd,
            analysis::ghttpd_observation(
                static_cast<std::int64_t>(line.size()),
                /*ret_unchanged=*/!r.ret_modified),
            out);
  }
  if (!out.served) ctx.ghttpd.reset();
  return out;
}

RequestOutcome serve_iis(ServeContext& ctx, const std::string& path,
                         bool monitored) {
  if (!ctx.iis) {
    ctx.iis = std::make_unique<apps::IisDecoder>();
    ctx.iis_fs = std::make_unique<fssim::FileSystem>(ctx.iis->initial_world());
  }
  const auto r = ctx.iis->handle_cgi_request(*ctx.iis_fs, path);

  RequestOutcome out;
  out.served = r.executed && !r.outside_scripts;
  out.rejected = r.rejected;
  out.compromised = r.executed && r.outside_scripts;
  out.cost_us = kCostBaseIis + path.size() / 4;
  if (monitored) {
    observe(ctx, ServerKind::kIis,
            analysis::iis_observation(
                r.decoded_once,
                r.decoded_twice.empty() ? r.decoded_once : r.decoded_twice),
            out);
  }
  // The IIS world is read-only under both traffic classes; always reuse.
  return out;
}

RequestOutcome serve_one(ServeContext& ctx, ServerKind kind,
                         const std::string& payload, bool fresh,
                         bool monitored) {
  switch (kind) {
    case ServerKind::kNullHttpd5774:
    case ServerKind::kNullHttpd6255:
      return serve_nullhttpd(ctx, payload, fresh, monitored);
    case ServerKind::kGhttpd:
      return serve_ghttpd(ctx, payload, fresh, monitored);
    case ServerKind::kIis:
      return serve_iis(ctx, payload, monitored);
  }
  throw std::logic_error("unreachable server kind");
}

// --- The agent loop -----------------------------------------------------

struct AgentResult {
  std::array<ServerTally, kServerKindCount> per_server{};
  LatencyHistogram latency;
  std::uint64_t busy_us = 0;
  netsim::RequestTap tap{0};
};

AgentResult run_agent(const EngineOptions& options,
                      const ExploitPayloads& exploits, std::uint64_t agent) {
  const auto& w = options.workload;
  AgentResult result;
  result.tap = netsim::RequestTap{options.capture};
  ServeContext ctx;

  const std::uint64_t count = agent_request_count(w, agent);
  for (std::uint64_t i = 0; i < count; ++i) {
    const RequestSpec spec = request_spec(w, agent, i);
    const std::string payload = payload_for(spec, exploits);
    const RequestOutcome out =
        serve_one(ctx, spec.server, payload, /*fresh=*/spec.exploit,
                  options.monitor);

    auto& tally = result.per_server[static_cast<std::size_t>(spec.server)];
    ++tally.requests;
    ++(spec.exploit ? tally.exploit : tally.benign);
    if (out.served) ++tally.served;
    if (out.rejected) ++tally.rejected;
    if (out.crashed) ++tally.crashed;
    if (out.compromised) ++tally.compromised;
    if (options.monitor) apply_verdict(tally, spec.exploit, out.detected);

    const std::uint64_t latency_us = out.cost_us + spec.jitter_us;
    result.latency.record(latency_us);
    result.busy_us += latency_us;

    if (spec.exploit && options.capture != 0) {
      result.tap.offer({agent, i, server_name(spec.server), true, payload});
    }
  }
  return result;
}

}  // namespace

LoadReport run_load(const EngineOptions& options) {
  const auto& w = options.workload;
  if (w.agents == 0) {
    throw std::invalid_argument("loadgen: agents must be >= 1");
  }
  if (w.servers.empty()) {
    throw std::invalid_argument("loadgen: at least one server must be enabled");
  }

  LoadReport report;
  if (options.monitor) {
    // Lint the monitor models before deploying them against traffic —
    // the same universal entry every other pipeline uses. Serial and
    // model-order stable, so the report stays byte-identical at every
    // DFSM_THREADS setting.
    const auto snapshot = [](const core::FsmModel& m) {
      return staticlint::LintModel::from_model(
          m, staticlint::source_hint_for(m.name()));
    };
    const std::vector<staticlint::LintModel> monitors = {
        snapshot(apps::NullHttpd::figure4_model()),
        snapshot(apps::Ghttpd::ghttpd_model()),
        snapshot(apps::IisDecoder::figure7_model()),
    };
    const auto lint_run = staticlint::lint(monitors);
    report.monitor_models_linted = lint_run.models_checked;
    report.monitor_lint_findings = lint_run.findings.size();
    report.monitor_lint_clean = lint_run.findings.empty();
  }

  const ExploitPayloads exploits = build_exploit_payloads();

  // Agents are embarrassingly parallel; parallel_map's index order makes
  // the ascending-agent merge below identical at every thread count.
  auto per_agent = runtime::parallel_map<AgentResult>(
      static_cast<std::size_t>(w.agents),
      [&](std::size_t agent) {
        return run_agent(options, exploits, static_cast<std::uint64_t>(agent));
      });

  report.workload = w;
  report.monitored = options.monitor;
  report.samples = netsim::RequestTap{options.capture};
  for (const auto& agent : per_agent) {
    for (std::size_t k = 0; k < kServerKindCount; ++k) {
      report.per_server[k].merge(agent.per_server[k]);
    }
    report.latency.merge(agent.latency);
    report.samples.merge(agent.tap);
    if (agent.busy_us > report.makespan_us) report.makespan_us = agent.busy_us;
  }
  for (const auto& tally : report.per_server) report.total.merge(tally);
  report.throughput_rps =
      report.makespan_us == 0
          ? 0
          : report.total.requests * 1000000 / report.makespan_us;
  return report;
}

RequestOutcome serve_request(ServerKind kind, const std::string& payload,
                             bool monitored) {
  ServeContext ctx;
  return serve_one(ctx, kind, payload, /*fresh=*/true, monitored);
}

RequestOutcome replay_request(const netsim::CapturedRequest& req,
                              bool monitored) {
  ServerKind kind;
  if (!server_from_name(req.server, &kind)) {
    throw std::invalid_argument("loadgen: unknown server label '" +
                                req.server + "'");
  }
  return serve_request(kind, req.raw, monitored);
}

}  // namespace dfsm::loadgen
