// report.h — text and JSON renderings of a LoadReport.
//
// Both renderers are pure functions of the report: integer-only
// arithmetic (detection rate in basis points, mean as integer division),
// fixed key order, no clocks, no locale — so a report renders to the
// same bytes on every machine and at every DFSM_THREADS, which is what
// the CI load-smoke job byte-compares. Wall-clock numbers deliberately
// live OUTSIDE the report (CLI stderr, bench counters).
#ifndef DFSM_LOADGEN_REPORT_H
#define DFSM_LOADGEN_REPORT_H

#include <string>

#include "loadgen/engine.h"

namespace dfsm::loadgen {

/// Detection rate over ground-truth exploits in basis points
/// ((exploit - false_negatives) * 10000 / exploit); 10000 == 100%.
/// Returns 10000 when the tally saw no exploits (nothing was missed).
[[nodiscard]] std::uint64_t detection_rate_bp(const ServerTally& tally) noexcept;

/// Human-readable multi-line report.
[[nodiscard]] std::string render_text(const LoadReport& report);

/// Deterministic JSON document (trailing newline included).
[[nodiscard]] std::string render_json(const LoadReport& report);

}  // namespace dfsm::loadgen

#endif  // DFSM_LOADGEN_REPORT_H
