// schedule.h — the static view of the fssim schedule surface.
//
// The race interleaver (race.h) explores schedules whose yield points are
// the filesystem syscalls a victim step performs: any step that touches a
// path through the shared FileSystem can be preempted there, which is
// exactly where the curated TOCTOU races (xterm Figure 5, rwall Figure 6)
// live. The static linter needs the same notion WITHOUT running anything,
// so this header classifies an elementary-activity STRING: an activity
// crosses the schedule surface when it names a filesystem verb applied to
// an absolute path — the textual shadow of a CtxStep that would call into
// fssim::FileSystem and therefore yield to the scheduler.
//
// The classifier is deliberately conservative and purely lexical: a verb
// token (open/read/write/unlink/...) must co-occur with an absolute path
// token ("/etc/utmp", "/usr/tom/x") in the same activity. Activities that
// talk about buffers, sockets, or return addresses never mention absolute
// paths, so the curated non-race models stay off the surface.
#ifndef DFSM_FSSIM_SCHEDULE_H
#define DFSM_FSSIM_SCHEDULE_H

#include <string>
#include <vector>

namespace dfsm::fssim {

/// One lexical yield point of an activity: a filesystem verb applied to
/// an absolute path. `path` is the quote-stripped path token.
struct YieldPoint {
  std::string verb;
  std::string path;
};

/// Every (verb, path) pair found in the activity text. Deterministic:
/// verbs and paths are reported in token order, verbs crossed with paths
/// in first-seen order.
[[nodiscard]] std::vector<YieldPoint> yield_points(const std::string& activity);

/// True when the activity names at least one filesystem verb AND at
/// least one absolute path — i.e. the modeled step would enter the fssim
/// schedule surface and can be preempted between check and use.
[[nodiscard]] bool crosses_schedule_surface(const std::string& activity);

/// The absolute-path tokens of an activity (quote-stripped), regardless
/// of verbs. Used by the shared-object race rule to match one path
/// across two operations.
[[nodiscard]] std::vector<std::string> path_tokens(const std::string& activity);

}  // namespace dfsm::fssim

#endif  // DFSM_FSSIM_SCHEDULE_H
