// explore.h — systematic interleaving-exploration campaigns (DESIGN.md §14).
//
// The recursive enumerator in race.h is exhaustive but only ever runs the
// two curated fixtures. This engine explores the C(n+m, n) schedule space
// of ANY victim/attacker step pair deterministically:
//
//   - exhaustive when the space fits the configured budget;
//   - strided, deterministically seeded sampling beyond it — splitmix64
//     jitter inside equal rank strides, with the lexicographic first
//     (rank 0, victim runs to completion first) and last (rank S-1,
//     attacker runs to completion first) schedules ALWAYS pinned.
//
// Schedules are addressed by lexicographic rank (victim step = 0 <
// attacker step = 1), which matches race.cpp's victim-branch-first
// recursion order exactly: exhaustive exploration at ascending rank
// reproduces enumerate_interleavings outcome for outcome — the cross-check
// the race fault-injection campaign asserts.
//
// Execution follows the sweep engine's guard discipline: the rank plan is
// computed serially, schedules replay over runtime::parallel_map (each on
// a fresh forked world + context), and results merge serially in rank
// order — reports are byte-identical at any DFSM_THREADS.
#ifndef DFSM_FSSIM_EXPLORE_H
#define DFSM_FSSIM_EXPLORE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fssim/race.h"

namespace dfsm::fssim {

/// Knobs for one exploration run.
struct ExploreOptions {
  /// Seeds the splitmix64 jitter inside sampling strides. Exhaustive runs
  /// ignore it (there is nothing to sample).
  std::uint64_t seed = 1;
  /// Maximum schedules to execute. Spaces no larger than this are
  /// explored exhaustively; beyond it, pinned + strided sampling applies.
  /// Values below 2 are treated as 2 (the two pinned schedules).
  std::uint64_t budget = 4096;
  /// Benign-outcome retention cap (violating outcomes always kept).
  std::size_t benign_outcome_cap = kNoBenignCap;
};

/// One explored schedule: its lexicographic rank, the executed label
/// order, and whether the violation predicate fired.
struct ExploredSchedule {
  std::uint64_t rank = 0;
  std::vector<std::string> order;
  bool violated = false;
};

/// Result of one exploration run.
struct ExploreReport {
  std::size_t victim_steps = 0;
  std::size_t attacker_steps = 0;
  /// C(n+m, n); saturated to uint64 max when the true space overflows.
  std::uint64_t schedule_space = 0;
  bool space_saturated = false;
  /// True when every schedule in the space was executed.
  bool exhaustive = false;
  /// Schedules actually executed (== schedule_space when exhaustive).
  std::uint64_t explored = 0;
  /// Violating schedules among the explored ones (exact for exhaustive).
  std::uint64_t violating = 0;
  /// Ranks of the violating schedules, ascending.
  std::vector<std::uint64_t> violating_ranks;
  /// Retained outcomes in ascending rank order (benign cap applies).
  std::vector<ExploredSchedule> outcomes;
  std::uint64_t benign_outcomes_dropped = 0;

  [[nodiscard]] double violation_fraction() const {
    return explored == 0 ? 0.0
                         : static_cast<double>(violating) /
                               static_cast<double>(explored);
  }
  [[nodiscard]] bool race_exists() const { return violating > 0; }
};

/// A named, self-contained race scenario: the world factory, the two step
/// sequences, the violation predicate, and (for curated entries) the
/// expected exhaustive counts the campaign must rediscover.
struct RaceScenario {
  std::string name;
  std::string description;
  std::function<FileSystem()> world;
  std::vector<CtxStep> victim;
  std::vector<CtxStep> attacker;
  std::function<bool(const FileSystem&, const RaceContext&)> violated;
  /// Expected exhaustive totals (0 = no curated expectation).
  std::uint64_t expected_total = 0;
  std::uint64_t expected_violating = 0;
  /// True when the lexicographic LAST schedule (attacker entirely before
  /// the victim) violates — such races are caught at ANY sampling budget
  /// because rank S-1 is always pinned.
  bool last_schedule_violates = false;
};

/// Unranks a schedule: the `rank`-th (lexicographic, victim=0 < attacker=1)
/// interleaving of n victim and m attacker steps, as a vector where false
/// = victim step, true = attacker step. Rank 0 is all-victim-first; rank
/// C(n+m,n)-1 is all-attacker-first. Deterministic even when binomials
/// saturate (the victim branch is preferred while the subspace count is
/// saturated — biased, but stable).
[[nodiscard]] std::vector<bool> unrank_schedule(std::uint64_t rank,
                                                std::size_t victim_steps,
                                                std::size_t attacker_steps);

/// The deterministic rank plan for a sampled run: {0, space-1} plus
/// strided interior ranks with splitmix64 jitter, deduplicated and sorted
/// ascending. Exposed for tests; explore_interleavings calls it when the
/// space exceeds the budget.
[[nodiscard]] std::vector<std::uint64_t> sample_ranks(std::uint64_t space,
                                                      std::uint64_t budget,
                                                      std::uint64_t seed);

/// Explores the interleaving space of the two step sequences. Exhaustive
/// when C(n+m,n) <= budget; pinned + strided sampling otherwise.
[[nodiscard]] ExploreReport explore_interleavings(
    const FileSystem& initial, const std::vector<CtxStep>& victim,
    const std::vector<CtxStep>& attacker,
    const std::function<bool(const FileSystem&, const RaceContext&)>& violated,
    const ExploreOptions& options = {});

/// Explores a packaged scenario (fresh world from its factory).
[[nodiscard]] ExploreReport explore_scenario(const RaceScenario& scenario,
                                             const ExploreOptions& options = {});

/// Human-readable exploration summary.
[[nodiscard]] std::string emit_text(const std::string& scenario_name,
                                    const ExploreReport& report);

/// Machine-readable JSON (stable key order; byte-identical across thread
/// counts and repeated runs at a fixed seed).
[[nodiscard]] std::string emit_json(const std::string& scenario_name,
                                    const ExploreReport& report);

}  // namespace dfsm::fssim

#endif  // DFSM_FSSIM_EXPLORE_H
