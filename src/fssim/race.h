// race.h — deterministic interleaving enumeration for TOCTOU races.
//
// Paper Figure 5: "Tom can delete the file /usr/tom/x and create a
// symbolic link from /usr/tom/x to /etc/passwd, so long as Tom creates the
// symbolic link before the system opens the file, i.e., a race condition
// exists." Wall-clock racing is flaky and unquantifiable; enumerating all
// interleavings of the victim's and attacker's step sequences over a
// copied world is exhaustive, reproducible, and yields the exact fraction
// of schedules that violate the predicate — the number bench_figure5
// reports.
#ifndef DFSM_FSSIM_RACE_H
#define DFSM_FSSIM_RACE_H

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "fssim/filesystem.h"

namespace dfsm::fssim {

/// Sentinel for "retain every benign outcome" (the historical behaviour).
inline constexpr std::size_t kNoBenignCap =
    std::numeric_limits<std::size_t>::max();

/// Knobs for interleaving enumeration. Counts stay exact regardless of the
/// cap; only the retained `outcomes` list is bounded.
struct RaceOptions {
  /// Keep at most this many benign (non-violating) ScheduleOutcomes.
  /// Violating schedules are always retained in full.
  std::size_t benign_outcome_cap = kNoBenignCap;
};

/// One atomic step of a process (a syscall, in practice).
struct Step {
  std::string label;
  std::function<void(FileSystem&)> run;
};

/// One enumerated schedule and its outcome.
struct ScheduleOutcome {
  std::vector<std::string> order;  ///< step labels in execution order
  bool violated = false;           ///< the security predicate failed
};

/// Result of exhaustive interleaving enumeration.
struct RaceReport {
  std::size_t total_schedules = 0;
  std::size_t violating_schedules = 0;
  /// Retained schedules in enumeration order: every violating schedule,
  /// plus at most RaceOptions::benign_outcome_cap benign ones.
  std::vector<ScheduleOutcome> outcomes;
  /// Benign schedules executed but not retained (cap exceeded).
  std::size_t benign_outcomes_dropped = 0;

  [[nodiscard]] double violation_fraction() const {
    return total_schedules == 0
               ? 0.0
               : static_cast<double>(violating_schedules) /
                     static_cast<double>(total_schedules);
  }
  [[nodiscard]] bool race_exists() const { return violating_schedules > 0; }
};

/// Exhaustively enumerates every interleaving of two step sequences
/// (preserving each sequence's internal order — C(n+m, n) schedules), runs
/// each on a fresh copy of `initial`, and evaluates `violated` on the
/// final state.
///
/// Complexity: C(n+m, n) * (n+m) filesystem ops plus one FileSystem copy
/// per schedule — fine for the syscall-length sequences under study.
[[nodiscard]] RaceReport enumerate_interleavings(
    const FileSystem& initial, const std::vector<Step>& victim,
    const std::vector<Step>& attacker,
    const std::function<bool(const FileSystem&)>& violated);

/// Same, with bounded benign-outcome retention (RaceOptions).
[[nodiscard]] RaceReport enumerate_interleavings(
    const FileSystem& initial, const std::vector<Step>& victim,
    const std::vector<Step>& attacker,
    const std::function<bool(const FileSystem&)>& violated,
    const RaceOptions& options);

/// Number of interleavings of sequences of lengths n and m: C(n+m, n),
/// saturating at std::numeric_limits<uint64_t>::max() once the true value
/// no longer fits in 64 bits (first at C(68, 34); C(67, 33) is the last
/// exact value). Intermediates are 128-bit, so every representable result
/// is exact.
[[nodiscard]] std::uint64_t interleaving_count(std::size_t n, std::size_t m);

/// True iff C(n+m, n) exceeds uint64 — i.e. interleaving_count(n, m)
/// returned the saturation sentinel rather than the exact value.
[[nodiscard]] bool interleaving_count_saturated(std::size_t n, std::size_t m);

// ---------------------------------------------------------------------
// Context-carrying variant: real victims hold state across syscalls (the
// result of the access(2) check, the open file handle). The context is
// created fresh per schedule, alongside the forked world.

/// Per-schedule scratch state shared by a process's steps.
struct RaceContext {
  std::map<std::string, std::int64_t> ints;
  std::map<std::string, std::string> strs;
  OpenFile file;
  bool aborted = false;  ///< the victim refused to proceed (a check fired)
};

/// A step that can read/update the per-schedule context.
struct CtxStep {
  std::string label;
  std::function<void(FileSystem&, RaceContext&)> run;
};

/// Like enumerate_interleavings, but each schedule gets a fresh
/// RaceContext and the violation predicate sees both the final world and
/// the final context.
[[nodiscard]] RaceReport enumerate_interleavings(
    const FileSystem& initial, const std::vector<CtxStep>& victim,
    const std::vector<CtxStep>& attacker,
    const std::function<bool(const FileSystem&, const RaceContext&)>& violated);

/// Same, with bounded benign-outcome retention (RaceOptions).
[[nodiscard]] RaceReport enumerate_interleavings(
    const FileSystem& initial, const std::vector<CtxStep>& victim,
    const std::vector<CtxStep>& attacker,
    const std::function<bool(const FileSystem&, const RaceContext&)>& violated,
    const RaceOptions& options);

}  // namespace dfsm::fssim

#endif  // DFSM_FSSIM_RACE_H
