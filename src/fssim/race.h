// race.h — deterministic interleaving enumeration for TOCTOU races.
//
// Paper Figure 5: "Tom can delete the file /usr/tom/x and create a
// symbolic link from /usr/tom/x to /etc/passwd, so long as Tom creates the
// symbolic link before the system opens the file, i.e., a race condition
// exists." Wall-clock racing is flaky and unquantifiable; enumerating all
// interleavings of the victim's and attacker's step sequences over a
// copied world is exhaustive, reproducible, and yields the exact fraction
// of schedules that violate the predicate — the number bench_figure5
// reports.
#ifndef DFSM_FSSIM_RACE_H
#define DFSM_FSSIM_RACE_H

#include <functional>
#include <string>
#include <vector>

#include "fssim/filesystem.h"

namespace dfsm::fssim {

/// One atomic step of a process (a syscall, in practice).
struct Step {
  std::string label;
  std::function<void(FileSystem&)> run;
};

/// One enumerated schedule and its outcome.
struct ScheduleOutcome {
  std::vector<std::string> order;  ///< step labels in execution order
  bool violated = false;           ///< the security predicate failed
};

/// Result of exhaustive interleaving enumeration.
struct RaceReport {
  std::size_t total_schedules = 0;
  std::size_t violating_schedules = 0;
  std::vector<ScheduleOutcome> outcomes;  ///< all schedules, in enumeration order

  [[nodiscard]] double violation_fraction() const {
    return total_schedules == 0
               ? 0.0
               : static_cast<double>(violating_schedules) /
                     static_cast<double>(total_schedules);
  }
  [[nodiscard]] bool race_exists() const { return violating_schedules > 0; }
};

/// Exhaustively enumerates every interleaving of two step sequences
/// (preserving each sequence's internal order — C(n+m, n) schedules), runs
/// each on a fresh copy of `initial`, and evaluates `violated` on the
/// final state.
///
/// Complexity: C(n+m, n) * (n+m) filesystem ops plus one FileSystem copy
/// per schedule — fine for the syscall-length sequences under study.
[[nodiscard]] RaceReport enumerate_interleavings(
    const FileSystem& initial, const std::vector<Step>& victim,
    const std::vector<Step>& attacker,
    const std::function<bool(const FileSystem&)>& violated);

/// Number of interleavings of sequences of lengths n and m: C(n+m, n).
[[nodiscard]] std::uint64_t interleaving_count(std::size_t n, std::size_t m);

// ---------------------------------------------------------------------
// Context-carrying variant: real victims hold state across syscalls (the
// result of the access(2) check, the open file handle). The context is
// created fresh per schedule, alongside the forked world.

/// Per-schedule scratch state shared by a process's steps.
struct RaceContext {
  std::map<std::string, std::int64_t> ints;
  std::map<std::string, std::string> strs;
  OpenFile file;
  bool aborted = false;  ///< the victim refused to proceed (a check fired)
};

/// A step that can read/update the per-schedule context.
struct CtxStep {
  std::string label;
  std::function<void(FileSystem&, RaceContext&)> run;
};

/// Like enumerate_interleavings, but each schedule gets a fresh
/// RaceContext and the violation predicate sees both the final world and
/// the final context.
[[nodiscard]] RaceReport enumerate_interleavings(
    const FileSystem& initial, const std::vector<CtxStep>& victim,
    const std::vector<CtxStep>& attacker,
    const std::function<bool(const FileSystem&, const RaceContext&)>& violated);

}  // namespace dfsm::fssim

#endif  // DFSM_FSSIM_RACE_H
