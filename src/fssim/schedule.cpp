#include "fssim/schedule.h"

#include <array>
#include <cctype>
#include <string_view>

namespace dfsm::fssim {

namespace {

/// The verb set mirrors fssim::FileSystem's entry points plus the common
/// natural-language forms model activities use for them. Matching is
/// whole-token, case-insensitive, so "opened"/"reopen" do not count.
constexpr std::array<std::string_view, 22> kFsVerbs = {
    "open",    "read",   "write",  "create", "creat",  "unlink",
    "symlink", "link",   "rename", "stat",   "lstat",  "fstat",
    "access",  "append", "delete", "remove", "chmod",  "chown",
    "mkdir",   "get",    "edit",   "truncate",
};

std::string lowercase(std::string_view s) {
  std::string out{s};
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Splits on whitespace and strips surrounding punctuation/quotes from
/// each token ('"', '(', ')', ',', ';', '.', ...), keeping '/' intact so
/// path tokens survive.
std::vector<std::string> tokens(const std::string& text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t j = i;
    while (j < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    if (j > i) {
      std::size_t b = i, e = j;
      const auto is_edge = [&](char c) {
        return c == '"' || c == '\'' || c == '(' || c == ')' || c == ',' ||
               c == ';' || c == ':' || c == '.' || c == '[' || c == ']';
      };
      while (b < e && is_edge(text[b])) ++b;
      while (e > b && is_edge(text[e - 1])) --e;
      if (e > b) out.push_back(text.substr(b, e - b));
    }
    i = j;
  }
  return out;
}

bool is_fs_verb(const std::string& token) {
  const std::string lower = lowercase(token);
  for (const auto v : kFsVerbs) {
    if (lower == v) return true;
  }
  return false;
}

/// An absolute path token: starts with '/' and has at least one more
/// character that is not punctuation — "/etc/utmp" yes, a lone "/" no.
bool is_path_token(const std::string& token) {
  return token.size() > 1 && token.front() == '/';
}

}  // namespace

std::vector<std::string> path_tokens(const std::string& activity) {
  std::vector<std::string> out;
  for (const auto& t : tokens(activity)) {
    if (is_path_token(t)) out.push_back(t);
  }
  return out;
}

std::vector<YieldPoint> yield_points(const std::string& activity) {
  std::vector<std::string> verbs;
  std::vector<std::string> paths;
  for (const auto& t : tokens(activity)) {
    if (is_path_token(t)) {
      paths.push_back(t);
    } else if (is_fs_verb(t)) {
      verbs.push_back(lowercase(t));
    }
  }
  std::vector<YieldPoint> out;
  if (verbs.empty() || paths.empty()) return out;
  out.reserve(verbs.size() * paths.size());
  for (const auto& v : verbs) {
    for (const auto& p : paths) out.push_back(YieldPoint{v, p});
  }
  return out;
}

bool crosses_schedule_surface(const std::string& activity) {
  return !yield_points(activity).empty();
}

}  // namespace dfsm::fssim
