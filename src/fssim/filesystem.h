// filesystem.h — a miniature UNIX filesystem with owners, permission bits,
// symlinks and terminal (character-device) nodes.
//
// Three case studies run on it:
//  * xterm log-file race (Figure 5): time-of-check-to-time-of-use between
//    an access(2)-style permission check and the open(2) that follows it;
//    the attacker swaps the path to a symlink to /etc/passwd inside the
//    window.
//  * Solaris rwall (Figure 6): /etc/utmp writable by regular users, and a
//    daemon that writes "to all terminals" without checking that the
//    target is in fact a terminal.
//  * IIS CGI containment (Figure 7) uses only path normalization, but its
//    CGI "execution" resolves through this tree too.
//
// FileSystem is a VALUE TYPE (copyable) on purpose: the race scheduler
// forks the whole world per interleaving, which turns wall-clock races
// into exhaustively enumerable schedules (DESIGN.md §2).
#ifndef DFSM_FSSIM_FILESYSTEM_H
#define DFSM_FSSIM_FILESYSTEM_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dfsm::fssim {

enum class NodeType {
  kFile,
  kDirectory,
  kSymlink,
  kTerminal,  ///< character device, e.g. /dev/pts/25
};

[[nodiscard]] const char* to_string(NodeType t) noexcept;

/// Caller credentials. Root bypasses permission checks, as in UNIX.
struct Cred {
  std::string user;
  bool is_root = false;

  [[nodiscard]] static Cred root() { return Cred{"root", true}; }
  [[nodiscard]] static Cred user_named(std::string name) {
    return Cred{std::move(name), false};
  }
};

/// Permission bits: owner/other rwx (groups omitted — none of the studied
/// vulnerabilities involve them).
struct Mode {
  bool owner_r = true, owner_w = true, owner_x = false;
  bool other_r = true, other_w = false, other_x = false;

  [[nodiscard]] static Mode file_default() { return {}; }                  // 0644
  [[nodiscard]] static Mode world_writable() { return {true, true, false, true, true, false}; }  // 0666
  [[nodiscard]] static Mode private_file() { return {true, true, false, false, false, false}; }  // 0600
  [[nodiscard]] static Mode dir_default() { return {true, true, true, true, false, true}; }      // 0755
  [[nodiscard]] static Mode dir_open() { return {true, true, true, true, true, true}; }          // 0777
  [[nodiscard]] static Mode executable() { return {true, true, true, true, false, true}; }       // 0755
};

enum class Access { kRead, kWrite, kExec };

/// POSIX-flavoured error codes.
enum class FsError {
  kOk,
  kNoEnt,    ///< no such file or directory
  kAccess,   ///< permission denied
  kExist,    ///< already exists
  kNotDir,   ///< path component is not a directory
  kIsDir,    ///< operation on a directory
  kLoop,     ///< too many symlink hops
  kBadHandle,
};

[[nodiscard]] const char* to_string(FsError e) noexcept;

/// Minimal expected-like result.
template <typename T>
struct FsResult {
  T value{};
  FsError error = FsError::kOk;

  [[nodiscard]] bool ok() const noexcept { return error == FsError::kOk; }
  explicit operator bool() const noexcept { return ok(); }
};

/// Open-file handle: indexes into the owning FileSystem's inode table.
struct OpenFile {
  int inode = -1;
  bool writable = false;
};

/// Public inode snapshot.
struct Stat {
  NodeType type = NodeType::kFile;
  std::string owner;
  Mode mode;
  std::string symlink_target;
  std::size_t size = 0;
  int inode = -1;
};

/// Open(2) options.
struct OpenFlags {
  bool write = false;
  bool append = false;
  bool create = false;
  bool nofollow = false;  ///< refuse to open a symlink final component (the fix)
};

class FileSystem {
 public:
  /// Creates a root directory "/" owned by root, mode 0755.
  FileSystem();

  // -- Namespace operations. All paths are absolute ('/'-separated).
  FsResult<int> mkdir(const Cred& cred, const std::string& path,
                      Mode mode = Mode::dir_default());
  FsResult<int> create(const Cred& cred, const std::string& path,
                       Mode mode = Mode::file_default(),
                       NodeType type = NodeType::kFile);
  /// Creates a symbolic link. Targets must be absolute paths (relative
  /// targets are rejected with kNoEnt — this model resolves link targets
  /// from the root).
  FsResult<int> symlink(const Cred& cred, const std::string& target,
                        const std::string& linkpath);
  FsResult<bool> unlink(const Cred& cred, const std::string& path);

  /// rename(2): atomically re-binds `to` to the node at `from` (replacing
  /// any existing non-directory target in the same step). This is the
  /// primitive that turns the xterm attacker's two-syscall window dance
  /// (unlink + symlink) into a single atomic step — and, on the defence
  /// side, the safe-publish idiom (write temp, then rename).
  FsResult<bool> rename(const Cred& cred, const std::string& from,
                        const std::string& to);
  FsResult<bool> chmod(const Cred& cred, const std::string& path, Mode mode);
  FsResult<bool> chown(const Cred& cred, const std::string& path, std::string owner);

  // -- Inspection.
  /// stat follows symlinks; lstat does not.
  FsResult<Stat> stat(const std::string& path) const;
  FsResult<Stat> lstat(const std::string& path) const;

  /// access(2): permission check with the caller's credentials, following
  /// symlinks — the xterm pFSM1 check ("does Tom have write permission?").
  [[nodiscard]] bool access(const Cred& cred, const std::string& path, Access want) const;

  // -- I/O.
  FsResult<OpenFile> open(const Cred& cred, const std::string& path, OpenFlags flags);
  FsResult<bool> write(const OpenFile& f, const std::string& data);
  FsResult<std::string> read(const std::string& path) const;
  FsResult<Stat> fstat(const OpenFile& f) const;  ///< the post-open fix primitive

  /// Full content by inode (test/assertion helper, no permission check).
  [[nodiscard]] std::string content_of(int inode) const;

 private:
  struct Inode {
    NodeType type = NodeType::kFile;
    std::string owner = "root";
    Mode mode;
    std::string symlink_target;
    std::string content;
    std::map<std::string, int> children;  // for directories
    bool alive = true;
  };

  [[nodiscard]] bool permitted(const Cred& cred, const Inode& n, Access want) const;
  /// Resolves to an inode index. `follow_last` controls symlink handling
  /// of the final component; parents are always followed.
  FsResult<int> resolve(const std::string& path, bool follow_last,
                        int hops = 0) const;
  /// Splits into (parent inode, leaf name); parent must be a directory.
  FsResult<std::pair<int, std::string>> parent_of(const std::string& path) const;

  std::vector<Inode> inodes_;
};

/// Splits an absolute path into components ("/a/b" -> {"a","b"}).
[[nodiscard]] std::vector<std::string> split_path(const std::string& path);

}  // namespace dfsm::fssim

#endif  // DFSM_FSSIM_FILESYSTEM_H
