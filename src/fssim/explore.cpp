#include "fssim/explore.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "runtime/parallel.h"

namespace dfsm::fssim {

namespace {

// splitmix64 (same construction as the fault-campaign Rng; duplicated here
// because fssim sits below faultinject in the layering). The jitter for
// stride i is a pure function of (seed, i).
constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t jitter(std::uint64_t seed, std::uint64_t index) {
  return mix64(seed ^ mix64(index * kGamma + kGamma));
}

}  // namespace

std::vector<bool> unrank_schedule(std::uint64_t rank, std::size_t victim_steps,
                                  std::size_t attacker_steps) {
  std::vector<bool> schedule;
  schedule.reserve(victim_steps + attacker_steps);
  std::size_t n = victim_steps;
  std::size_t m = attacker_steps;
  while (n > 0 && m > 0) {
    // Schedules whose next step is the victim's: C(n-1+m, n-1), i.e. the
    // interleavings of the remaining steps. Victim-first schedules come
    // first lexicographically (victim = 0), matching race.cpp's recursion.
    const std::uint64_t victim_first = interleaving_count(n - 1, m);
    if (rank < victim_first) {
      schedule.push_back(false);
      --n;
    } else {
      rank -= victim_first;
      schedule.push_back(true);
      --m;
    }
  }
  while (n-- > 0) schedule.push_back(false);
  while (m-- > 0) schedule.push_back(true);
  return schedule;
}

std::vector<std::uint64_t> sample_ranks(std::uint64_t space,
                                        std::uint64_t budget,
                                        std::uint64_t seed) {
  std::vector<std::uint64_t> ranks;
  if (space == 0) return ranks;
  budget = std::max<std::uint64_t>(budget, 2);
  if (budget >= space) {
    ranks.reserve(static_cast<std::size_t>(space));
    for (std::uint64_t r = 0; r < space; ++r) ranks.push_back(r);
    return ranks;
  }
  // Pin the lexicographic extremes: rank 0 (victim entirely first — the
  // benign baseline) and rank space-1 (attacker entirely first — the
  // sequential-prefix attack every TOCTOU race degenerates to when the
  // attacker wins outright).
  ranks.push_back(0);
  ranks.push_back(space - 1);
  // Interior: budget-2 equal strides, one splitmix64-jittered rank each.
  // stride >= 1 because budget < space; base + jitter < stride*(i+1)
  // <= stride*(budget-1) <= space, so every rank stays in range.
  const std::uint64_t stride = space / (budget - 1);
  for (std::uint64_t i = 1; i + 1 < budget; ++i) {
    const std::uint64_t base = stride * i;
    ranks.push_back(base + jitter(seed, i) % stride);
  }
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
  return ranks;
}

ExploreReport explore_interleavings(
    const FileSystem& initial, const std::vector<CtxStep>& victim,
    const std::vector<CtxStep>& attacker,
    const std::function<bool(const FileSystem&, const RaceContext&)>& violated,
    const ExploreOptions& options) {
  ExploreReport report;
  report.victim_steps = victim.size();
  report.attacker_steps = attacker.size();
  report.schedule_space = interleaving_count(victim.size(), attacker.size());
  report.space_saturated =
      interleaving_count_saturated(victim.size(), attacker.size());

  const std::uint64_t budget = std::max<std::uint64_t>(options.budget, 2);
  // Plan serially: the exact rank list is fixed before any execution.
  std::vector<std::uint64_t> ranks;
  if (!report.space_saturated && report.schedule_space <= budget) {
    report.exhaustive = true;
    ranks.reserve(static_cast<std::size_t>(report.schedule_space));
    for (std::uint64_t r = 0; r < report.schedule_space; ++r)
      ranks.push_back(r);
  } else {
    ranks = sample_ranks(report.schedule_space, budget, options.seed);
  }
  report.explored = ranks.size();

  // Execute in parallel: each schedule replays on a fresh forked world and
  // context, touching nothing shared. parallel_map preserves index order.
  struct RankOutcome {
    std::vector<std::string> order;
    bool violated = false;
  };
  const auto outcomes = runtime::parallel_map<RankOutcome>(
      ranks.size(), [&](std::size_t i) {
        const std::vector<bool> schedule =
            unrank_schedule(ranks[i], victim.size(), attacker.size());
        FileSystem world = initial;
        RaceContext ctx;
        RankOutcome out;
        out.order.reserve(schedule.size());
        std::size_t iv = 0;
        std::size_t ia = 0;
        for (const bool attacker_turn : schedule) {
          const CtxStep& step =
              attacker_turn ? attacker[ia++] : victim[iv++];
          step.run(world, ctx);
          out.order.push_back(step.label);
        }
        out.violated = violated(world, ctx);
        return out;
      });

  // Merge serially in rank order (the plan is already ascending).
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (outcomes[i].violated) {
      ++report.violating;
      report.violating_ranks.push_back(ranks[i]);
      report.outcomes.push_back(
          ExploredSchedule{ranks[i], outcomes[i].order, true});
      continue;
    }
    const std::size_t benign_kept =
        report.outcomes.size() - report.violating_ranks.size();
    if (benign_kept < options.benign_outcome_cap) {
      report.outcomes.push_back(
          ExploredSchedule{ranks[i], outcomes[i].order, false});
    } else {
      ++report.benign_outcomes_dropped;
    }
  }
  return report;
}

ExploreReport explore_scenario(const RaceScenario& scenario,
                               const ExploreOptions& options) {
  return explore_interleavings(scenario.world(), scenario.victim,
                               scenario.attacker, scenario.violated, options);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fraction_str(double f) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", f);
  return buf;
}

}  // namespace

std::string emit_text(const std::string& scenario_name,
                      const ExploreReport& report) {
  std::ostringstream out;
  out << "scenario: " << scenario_name << "\n"
      << "  steps: " << report.victim_steps << " victim x "
      << report.attacker_steps << " attacker\n"
      << "  schedule space: " << report.schedule_space
      << (report.space_saturated ? " (saturated)" : "") << "\n"
      << "  mode: " << (report.exhaustive ? "exhaustive" : "sampled") << "\n"
      << "  explored: " << report.explored << "\n"
      << "  violating: " << report.violating << " ("
      << fraction_str(report.violation_fraction()) << ")\n";
  out << "  violating ranks:";
  for (const std::uint64_t r : report.violating_ranks) out << " " << r;
  out << "\n";
  if (report.benign_outcomes_dropped > 0) {
    out << "  benign outcomes dropped: " << report.benign_outcomes_dropped
        << "\n";
  }
  for (const auto& o : report.outcomes) {
    if (!o.violated) continue;
    out << "  rank " << o.rank << " VIOLATES:\n";
    for (const auto& label : o.order) out << "    " << label << "\n";
  }
  return out.str();
}

std::string emit_json(const std::string& scenario_name,
                      const ExploreReport& report) {
  std::ostringstream out;
  out << "{\"scenario\":\"" << json_escape(scenario_name) << "\""
      << ",\"victim_steps\":" << report.victim_steps
      << ",\"attacker_steps\":" << report.attacker_steps
      << ",\"schedule_space\":" << report.schedule_space
      << ",\"space_saturated\":" << (report.space_saturated ? "true" : "false")
      << ",\"exhaustive\":" << (report.exhaustive ? "true" : "false")
      << ",\"explored\":" << report.explored
      << ",\"violating\":" << report.violating
      << ",\"violation_fraction\":" << fraction_str(report.violation_fraction())
      << ",\"benign_outcomes_dropped\":" << report.benign_outcomes_dropped;
  out << ",\"violating_ranks\":[";
  for (std::size_t i = 0; i < report.violating_ranks.size(); ++i) {
    if (i > 0) out << ",";
    out << report.violating_ranks[i];
  }
  out << "],\"outcomes\":[";
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const auto& o = report.outcomes[i];
    if (i > 0) out << ",";
    out << "{\"rank\":" << o.rank
        << ",\"violated\":" << (o.violated ? "true" : "false") << ",\"order\":[";
    for (std::size_t j = 0; j < o.order.size(); ++j) {
      if (j > 0) out << ",";
      out << "\"" << json_escape(o.order[j]) << "\"";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace dfsm::fssim
