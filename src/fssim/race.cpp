#include "fssim/race.h"

#include <limits>

namespace dfsm::fssim {

namespace {

// 128-bit intermediates keep every uint64-representable binomial exact;
// __extension__ silences -Wpedantic about the non-standard type.
__extension__ typedef unsigned __int128 uint128;

/// Appends one executed schedule to the report, honouring the benign cap.
/// Counts are exact regardless of retention.
void record_outcome(ScheduleOutcome&& outcome, const RaceOptions& options,
                    RaceReport& report) {
  ++report.total_schedules;
  if (outcome.violated) {
    ++report.violating_schedules;
    report.outcomes.push_back(std::move(outcome));
    return;
  }
  // outcomes holds every retained violating schedule plus the benign ones
  // kept so far; the difference is the current benign retention.
  const std::size_t benign_kept =
      report.outcomes.size() - report.violating_schedules;
  if (benign_kept < options.benign_outcome_cap) {
    report.outcomes.push_back(std::move(outcome));
  } else {
    ++report.benign_outcomes_dropped;
  }
}

void recurse(const FileSystem& initial, const std::vector<Step>& a,
             const std::vector<Step>& b, std::size_t ia, std::size_t ib,
             std::vector<const Step*>& prefix,
             const std::function<bool(const FileSystem&)>& violated,
             const RaceOptions& options, RaceReport& report) {
  if (ia == a.size() && ib == b.size()) {
    FileSystem world = initial;  // fork the world for this schedule
    ScheduleOutcome outcome;
    for (const Step* s : prefix) {
      s->run(world);
      outcome.order.push_back(s->label);
    }
    outcome.violated = violated(world);
    record_outcome(std::move(outcome), options, report);
    return;
  }
  if (ia < a.size()) {
    prefix.push_back(&a[ia]);
    recurse(initial, a, b, ia + 1, ib, prefix, violated, options, report);
    prefix.pop_back();
  }
  if (ib < b.size()) {
    prefix.push_back(&b[ib]);
    recurse(initial, a, b, ia, ib + 1, prefix, violated, options, report);
    prefix.pop_back();
  }
}

}  // namespace

RaceReport enumerate_interleavings(
    const FileSystem& initial, const std::vector<Step>& victim,
    const std::vector<Step>& attacker,
    const std::function<bool(const FileSystem&)>& violated) {
  return enumerate_interleavings(initial, victim, attacker, violated,
                                 RaceOptions{});
}

RaceReport enumerate_interleavings(
    const FileSystem& initial, const std::vector<Step>& victim,
    const std::vector<Step>& attacker,
    const std::function<bool(const FileSystem&)>& violated,
    const RaceOptions& options) {
  RaceReport report;
  std::vector<const Step*> prefix;
  prefix.reserve(victim.size() + attacker.size());
  recurse(initial, victim, attacker, 0, 0, prefix, violated, options, report);
  return report;
}

namespace {

void recurse_ctx(const FileSystem& initial, const std::vector<CtxStep>& a,
                 const std::vector<CtxStep>& b, std::size_t ia, std::size_t ib,
                 std::vector<const CtxStep*>& prefix,
                 const std::function<bool(const FileSystem&, const RaceContext&)>&
                     violated,
                 const RaceOptions& options, RaceReport& report) {
  if (ia == a.size() && ib == b.size()) {
    FileSystem world = initial;
    RaceContext ctx;
    ScheduleOutcome outcome;
    for (const CtxStep* s : prefix) {
      s->run(world, ctx);
      outcome.order.push_back(s->label);
    }
    outcome.violated = violated(world, ctx);
    record_outcome(std::move(outcome), options, report);
    return;
  }
  if (ia < a.size()) {
    prefix.push_back(&a[ia]);
    recurse_ctx(initial, a, b, ia + 1, ib, prefix, violated, options, report);
    prefix.pop_back();
  }
  if (ib < b.size()) {
    prefix.push_back(&b[ib]);
    recurse_ctx(initial, a, b, ia, ib + 1, prefix, violated, options, report);
    prefix.pop_back();
  }
}

}  // namespace

RaceReport enumerate_interleavings(
    const FileSystem& initial, const std::vector<CtxStep>& victim,
    const std::vector<CtxStep>& attacker,
    const std::function<bool(const FileSystem&, const RaceContext&)>& violated) {
  return enumerate_interleavings(initial, victim, attacker, violated,
                                 RaceOptions{});
}

RaceReport enumerate_interleavings(
    const FileSystem& initial, const std::vector<CtxStep>& victim,
    const std::vector<CtxStep>& attacker,
    const std::function<bool(const FileSystem&, const RaceContext&)>& violated,
    const RaceOptions& options) {
  RaceReport report;
  std::vector<const CtxStep*> prefix;
  prefix.reserve(victim.size() + attacker.size());
  recurse_ctx(initial, victim, attacker, 0, 0, prefix, violated, options,
              report);
  return report;
}

std::uint64_t interleaving_count(std::size_t n, std::size_t m) {
  // C(n+m, n) computed multiplicatively with 128-bit intermediates; each
  // prefix product C(m+i, i) is itself a binomial, so the division is
  // exact. The result is monotone in i, so once it exceeds uint64 it can
  // never come back down: saturate and stay saturated.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  uint128 result = 1;
  for (std::size_t i = 1; i <= n; ++i) {
    result = result * (m + i) / i;
    if (result > kMax) return kMax;
  }
  return static_cast<std::uint64_t>(result);
}

bool interleaving_count_saturated(std::size_t n, std::size_t m) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  uint128 result = 1;
  for (std::size_t i = 1; i <= n; ++i) {
    result = result * (m + i) / i;
    if (result > kMax) return true;
  }
  return false;
}

}  // namespace dfsm::fssim
