#include "fssim/race.h"

namespace dfsm::fssim {

namespace {

void recurse(const FileSystem& initial, const std::vector<Step>& a,
             const std::vector<Step>& b, std::size_t ia, std::size_t ib,
             std::vector<const Step*>& prefix,
             const std::function<bool(const FileSystem&)>& violated,
             RaceReport& report) {
  if (ia == a.size() && ib == b.size()) {
    FileSystem world = initial;  // fork the world for this schedule
    ScheduleOutcome outcome;
    for (const Step* s : prefix) {
      s->run(world);
      outcome.order.push_back(s->label);
    }
    outcome.violated = violated(world);
    ++report.total_schedules;
    if (outcome.violated) ++report.violating_schedules;
    report.outcomes.push_back(std::move(outcome));
    return;
  }
  if (ia < a.size()) {
    prefix.push_back(&a[ia]);
    recurse(initial, a, b, ia + 1, ib, prefix, violated, report);
    prefix.pop_back();
  }
  if (ib < b.size()) {
    prefix.push_back(&b[ib]);
    recurse(initial, a, b, ia, ib + 1, prefix, violated, report);
    prefix.pop_back();
  }
}

}  // namespace

RaceReport enumerate_interleavings(
    const FileSystem& initial, const std::vector<Step>& victim,
    const std::vector<Step>& attacker,
    const std::function<bool(const FileSystem&)>& violated) {
  RaceReport report;
  std::vector<const Step*> prefix;
  prefix.reserve(victim.size() + attacker.size());
  recurse(initial, victim, attacker, 0, 0, prefix, violated, report);
  return report;
}

namespace {

void recurse_ctx(const FileSystem& initial, const std::vector<CtxStep>& a,
                 const std::vector<CtxStep>& b, std::size_t ia, std::size_t ib,
                 std::vector<const CtxStep*>& prefix,
                 const std::function<bool(const FileSystem&, const RaceContext&)>&
                     violated,
                 RaceReport& report) {
  if (ia == a.size() && ib == b.size()) {
    FileSystem world = initial;
    RaceContext ctx;
    ScheduleOutcome outcome;
    for (const CtxStep* s : prefix) {
      s->run(world, ctx);
      outcome.order.push_back(s->label);
    }
    outcome.violated = violated(world, ctx);
    ++report.total_schedules;
    if (outcome.violated) ++report.violating_schedules;
    report.outcomes.push_back(std::move(outcome));
    return;
  }
  if (ia < a.size()) {
    prefix.push_back(&a[ia]);
    recurse_ctx(initial, a, b, ia + 1, ib, prefix, violated, report);
    prefix.pop_back();
  }
  if (ib < b.size()) {
    prefix.push_back(&b[ib]);
    recurse_ctx(initial, a, b, ia, ib + 1, prefix, violated, report);
    prefix.pop_back();
  }
}

}  // namespace

RaceReport enumerate_interleavings(
    const FileSystem& initial, const std::vector<CtxStep>& victim,
    const std::vector<CtxStep>& attacker,
    const std::function<bool(const FileSystem&, const RaceContext&)>& violated) {
  RaceReport report;
  std::vector<const CtxStep*> prefix;
  prefix.reserve(victim.size() + attacker.size());
  recurse_ctx(initial, victim, attacker, 0, 0, prefix, violated, report);
  return report;
}

std::uint64_t interleaving_count(std::size_t n, std::size_t m) {
  // C(n+m, n) computed multiplicatively to avoid overflow for small inputs.
  std::uint64_t result = 1;
  for (std::size_t i = 1; i <= n; ++i) {
    result = result * (m + i) / i;
  }
  return result;
}

}  // namespace dfsm::fssim
