#include "fssim/filesystem.h"

namespace dfsm::fssim {

namespace {
constexpr int kMaxSymlinkHops = 8;
}

const char* to_string(NodeType t) noexcept {
  switch (t) {
    case NodeType::kFile: return "file";
    case NodeType::kDirectory: return "directory";
    case NodeType::kSymlink: return "symlink";
    case NodeType::kTerminal: return "terminal";
  }
  return "?";
}

const char* to_string(FsError e) noexcept {
  switch (e) {
    case FsError::kOk: return "OK";
    case FsError::kNoEnt: return "ENOENT";
    case FsError::kAccess: return "EACCES";
    case FsError::kExist: return "EEXIST";
    case FsError::kNotDir: return "ENOTDIR";
    case FsError::kIsDir: return "EISDIR";
    case FsError::kLoop: return "ELOOP";
    case FsError::kBadHandle: return "EBADF";
  }
  return "?";
}

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

FileSystem::FileSystem() {
  Inode root;
  root.type = NodeType::kDirectory;
  root.owner = "root";
  root.mode = Mode::dir_default();
  inodes_.push_back(std::move(root));
}

bool FileSystem::permitted(const Cred& cred, const Inode& n, Access want) const {
  if (cred.is_root) return true;
  const bool is_owner = (cred.user == n.owner);
  switch (want) {
    case Access::kRead: return is_owner ? n.mode.owner_r : n.mode.other_r;
    case Access::kWrite: return is_owner ? n.mode.owner_w : n.mode.other_w;
    case Access::kExec: return is_owner ? n.mode.owner_x : n.mode.other_x;
  }
  return false;
}

FsResult<int> FileSystem::resolve(const std::string& path, bool follow_last,
                                  int hops) const {
  if (hops > kMaxSymlinkHops) return {0, FsError::kLoop};
  const auto parts = split_path(path);
  int cur = 0;  // root
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const Inode& dir = inodes_[static_cast<std::size_t>(cur)];
    if (dir.type != NodeType::kDirectory) return {0, FsError::kNotDir};
    auto it = dir.children.find(parts[i]);
    if (it == dir.children.end() ||
        !inodes_[static_cast<std::size_t>(it->second)].alive) {
      return {0, FsError::kNoEnt};
    }
    int child = it->second;
    const Inode& node = inodes_[static_cast<std::size_t>(child)];
    const bool is_last = (i + 1 == parts.size());
    if (node.type == NodeType::kSymlink && (!is_last || follow_last)) {
      // Resolve the (absolute) target, then continue with the remainder.
      auto res = resolve(node.symlink_target, /*follow_last=*/true, hops + 1);
      if (!res.ok()) return res;
      child = res.value;
      if (!is_last &&
          inodes_[static_cast<std::size_t>(child)].type != NodeType::kDirectory) {
        return {0, FsError::kNotDir};
      }
    }
    cur = child;
  }
  return {cur, FsError::kOk};
}

FsResult<std::pair<int, std::string>> FileSystem::parent_of(
    const std::string& path) const {
  auto parts = split_path(path);
  if (parts.empty()) return {{0, ""}, FsError::kIsDir};
  const std::string leaf = parts.back();
  parts.pop_back();
  std::string parent_path = "/";
  for (const auto& p : parts) parent_path += p + "/";
  auto res = resolve(parent_path, /*follow_last=*/true);
  if (!res.ok()) return {{0, ""}, res.error};
  if (inodes_[static_cast<std::size_t>(res.value)].type != NodeType::kDirectory) {
    return {{0, ""}, FsError::kNotDir};
  }
  return {{res.value, leaf}, FsError::kOk};
}

FsResult<int> FileSystem::mkdir(const Cred& cred, const std::string& path, Mode mode) {
  auto pr = parent_of(path);
  if (!pr.ok()) return {0, pr.error};
  auto& [parent, leaf] = pr.value;
  Inode& dir = inodes_[static_cast<std::size_t>(parent)];
  if (!permitted(cred, dir, Access::kWrite)) return {0, FsError::kAccess};
  auto it = dir.children.find(leaf);
  if (it != dir.children.end() &&
      inodes_[static_cast<std::size_t>(it->second)].alive) {
    return {0, FsError::kExist};
  }
  Inode n;
  n.type = NodeType::kDirectory;
  n.owner = cred.user;
  n.mode = mode;
  inodes_.push_back(std::move(n));
  const int id = static_cast<int>(inodes_.size() - 1);
  inodes_[static_cast<std::size_t>(parent)].children[leaf] = id;
  return {id, FsError::kOk};
}

FsResult<int> FileSystem::create(const Cred& cred, const std::string& path,
                                 Mode mode, NodeType type) {
  auto pr = parent_of(path);
  if (!pr.ok()) return {0, pr.error};
  auto& [parent, leaf] = pr.value;
  Inode& dir = inodes_[static_cast<std::size_t>(parent)];
  if (!permitted(cred, dir, Access::kWrite)) return {0, FsError::kAccess};
  auto it = dir.children.find(leaf);
  if (it != dir.children.end() &&
      inodes_[static_cast<std::size_t>(it->second)].alive) {
    return {0, FsError::kExist};
  }
  Inode n;
  n.type = type;
  n.owner = cred.user;
  n.mode = mode;
  inodes_.push_back(std::move(n));
  const int id = static_cast<int>(inodes_.size() - 1);
  inodes_[static_cast<std::size_t>(parent)].children[leaf] = id;
  return {id, FsError::kOk};
}

FsResult<int> FileSystem::symlink(const Cred& cred, const std::string& target,
                                  const std::string& linkpath) {
  // Targets are resolved as absolute paths; reject relative ones rather
  // than silently resolving them from the root.
  if (target.empty() || target.front() != '/') return {0, FsError::kNoEnt};
  auto res = create(cred, linkpath, Mode::dir_open(), NodeType::kSymlink);
  if (!res.ok()) return res;
  inodes_[static_cast<std::size_t>(res.value)].symlink_target = target;
  return res;
}

FsResult<bool> FileSystem::unlink(const Cred& cred, const std::string& path) {
  auto pr = parent_of(path);
  if (!pr.ok()) return {false, pr.error};
  auto& [parent, leaf] = pr.value;
  Inode& dir = inodes_[static_cast<std::size_t>(parent)];
  if (!permitted(cred, dir, Access::kWrite)) return {false, FsError::kAccess};
  auto it = dir.children.find(leaf);
  if (it == dir.children.end() ||
      !inodes_[static_cast<std::size_t>(it->second)].alive) {
    return {false, FsError::kNoEnt};
  }
  Inode& victim = inodes_[static_cast<std::size_t>(it->second)];
  if (victim.type == NodeType::kDirectory) return {false, FsError::kIsDir};
  victim.alive = false;
  dir.children.erase(it);
  return {true, FsError::kOk};
}

FsResult<bool> FileSystem::rename(const Cred& cred, const std::string& from,
                                  const std::string& to) {
  auto fp = parent_of(from);
  if (!fp.ok()) return {false, fp.error};
  auto tp = parent_of(to);
  if (!tp.ok()) return {false, tp.error};
  auto& [from_parent, from_leaf] = fp.value;
  auto& [to_parent, to_leaf] = tp.value;
  Inode& fdir = inodes_[static_cast<std::size_t>(from_parent)];
  Inode& tdir = inodes_[static_cast<std::size_t>(to_parent)];
  if (!permitted(cred, fdir, Access::kWrite) ||
      !permitted(cred, tdir, Access::kWrite)) {
    return {false, FsError::kAccess};
  }
  auto it = fdir.children.find(from_leaf);
  if (it == fdir.children.end() ||
      !inodes_[static_cast<std::size_t>(it->second)].alive) {
    return {false, FsError::kNoEnt};
  }
  const int moving = it->second;
  auto target = tdir.children.find(to_leaf);
  if (target != tdir.children.end()) {
    Inode& victim = inodes_[static_cast<std::size_t>(target->second)];
    if (victim.alive && victim.type == NodeType::kDirectory) {
      return {false, FsError::kIsDir};
    }
    victim.alive = false;  // atomically replaced
  }
  // Both directory updates happen in this single (atomic) step.
  fdir.children.erase(from_leaf);
  tdir.children[to_leaf] = moving;
  return {true, FsError::kOk};
}

FsResult<bool> FileSystem::chmod(const Cred& cred, const std::string& path, Mode mode) {
  auto res = resolve(path, /*follow_last=*/true);
  if (!res.ok()) return {false, res.error};
  Inode& n = inodes_[static_cast<std::size_t>(res.value)];
  if (!cred.is_root && cred.user != n.owner) return {false, FsError::kAccess};
  n.mode = mode;
  return {true, FsError::kOk};
}

FsResult<bool> FileSystem::chown(const Cred& cred, const std::string& path,
                                 std::string owner) {
  if (!cred.is_root) return {false, FsError::kAccess};  // chown is root-only
  auto res = resolve(path, /*follow_last=*/true);
  if (!res.ok()) return {false, res.error};
  inodes_[static_cast<std::size_t>(res.value)].owner = std::move(owner);
  return {true, FsError::kOk};
}

namespace {
Stat make_stat(int id, const FileSystem& fs, NodeType type, const std::string& owner,
               Mode mode, const std::string& target, std::size_t size) {
  (void)fs;
  Stat s;
  s.inode = id;
  s.type = type;
  s.owner = owner;
  s.mode = mode;
  s.symlink_target = target;
  s.size = size;
  return s;
}
}  // namespace

FsResult<Stat> FileSystem::stat(const std::string& path) const {
  auto res = resolve(path, /*follow_last=*/true);
  if (!res.ok()) return {Stat{}, res.error};
  const Inode& n = inodes_[static_cast<std::size_t>(res.value)];
  return {make_stat(res.value, *this, n.type, n.owner, n.mode, n.symlink_target,
                    n.content.size()),
          FsError::kOk};
}

FsResult<Stat> FileSystem::lstat(const std::string& path) const {
  auto res = resolve(path, /*follow_last=*/false);
  if (!res.ok()) return {Stat{}, res.error};
  const Inode& n = inodes_[static_cast<std::size_t>(res.value)];
  return {make_stat(res.value, *this, n.type, n.owner, n.mode, n.symlink_target,
                    n.content.size()),
          FsError::kOk};
}

bool FileSystem::access(const Cred& cred, const std::string& path, Access want) const {
  auto res = resolve(path, /*follow_last=*/true);
  if (!res.ok()) return false;
  return permitted(cred, inodes_[static_cast<std::size_t>(res.value)], want);
}

FsResult<OpenFile> FileSystem::open(const Cred& cred, const std::string& path,
                                    OpenFlags flags) {
  if (flags.nofollow) {
    auto l = resolve(path, /*follow_last=*/false);
    if (l.ok() &&
        inodes_[static_cast<std::size_t>(l.value)].type == NodeType::kSymlink) {
      return {OpenFile{}, FsError::kLoop};  // O_NOFOLLOW refuses symlinks
    }
  }
  auto res = resolve(path, /*follow_last=*/true);
  if (!res.ok()) {
    if (res.error == FsError::kNoEnt && flags.create) {
      auto made = create(cred, path);
      if (!made.ok()) return {OpenFile{}, made.error};
      res = FsResult<int>{made.value, FsError::kOk};
    } else {
      return {OpenFile{}, res.error};
    }
  }
  const Inode& n = inodes_[static_cast<std::size_t>(res.value)];
  if (n.type == NodeType::kDirectory) return {OpenFile{}, FsError::kIsDir};
  const Access want = flags.write || flags.append ? Access::kWrite : Access::kRead;
  if (!permitted(cred, n, want)) return {OpenFile{}, FsError::kAccess};
  return {OpenFile{res.value, flags.write || flags.append}, FsError::kOk};
}

FsResult<bool> FileSystem::write(const OpenFile& f, const std::string& data) {
  if (f.inode < 0 || f.inode >= static_cast<int>(inodes_.size())) {
    return {false, FsError::kBadHandle};
  }
  Inode& n = inodes_[static_cast<std::size_t>(f.inode)];
  if (!f.writable || !n.alive) return {false, FsError::kBadHandle};
  n.content += data;
  return {true, FsError::kOk};
}

FsResult<std::string> FileSystem::read(const std::string& path) const {
  auto res = resolve(path, /*follow_last=*/true);
  if (!res.ok()) return {"", res.error};
  const Inode& n = inodes_[static_cast<std::size_t>(res.value)];
  if (n.type == NodeType::kDirectory) return {"", FsError::kIsDir};
  return {n.content, FsError::kOk};
}

FsResult<Stat> FileSystem::fstat(const OpenFile& f) const {
  if (f.inode < 0 || f.inode >= static_cast<int>(inodes_.size())) {
    return {Stat{}, FsError::kBadHandle};
  }
  const Inode& n = inodes_[static_cast<std::size_t>(f.inode)];
  return {make_stat(f.inode, *this, n.type, n.owner, n.mode, n.symlink_target,
                    n.content.size()),
          FsError::kOk};
}

std::string FileSystem::content_of(int inode) const {
  if (inode < 0 || inode >= static_cast<int>(inodes_.size())) return "";
  return inodes_[static_cast<std::size_t>(inode)].content;
}

}  // namespace dfsm::fssim
