#include "runtime/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>

namespace dfsm::runtime {

namespace {

/// Set for the lifetime of each pool worker thread; run_indexed consults
/// it to run nested submissions inline instead of deadlocking the queue.
thread_local bool t_on_worker = false;

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global;  // guarded by g_global_mu

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // serial fallback: no workers
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mu_};
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock{mu_};
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& task) {
  const TaskErrors errs = run_indexed_collect(count, task, CancelPolicy::kRunAll);
  if (!errs.errors.empty()) std::rethrow_exception(errs.errors.front().error);
}

TaskErrors ThreadPool::run_indexed_collect(
    std::size_t count, const std::function<void(std::size_t)>& task,
    CancelPolicy policy) {
  TaskErrors out;
  if (count == 0) return out;

  constexpr std::size_t kNoError = static_cast<std::size_t>(-1);
  std::vector<std::exception_ptr> errors(count);
  // The cancellation watermark: the lowest index that has thrown so far.
  // Under kCancelAfterError, a task only runs when its index is at or
  // below the watermark — indices below any thrower therefore always run,
  // which makes the final watermark (and the error it names) the same at
  // every thread count.
  std::atomic<std::size_t> first_error{kNoError};
  std::atomic<std::size_t> cancelled{0};

  const auto run_one = [&](std::size_t i) {
    if (policy == CancelPolicy::kCancelAfterError &&
        i > first_error.load(std::memory_order_acquire)) {
      cancelled.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    try {
      task(i);
    } catch (...) {
      errors[i] = std::current_exception();
      std::size_t cur = first_error.load(std::memory_order_relaxed);
      while (i < cur &&
             !first_error.compare_exchange_weak(cur, i,
                                                std::memory_order_acq_rel)) {
      }
    }
  };

  // Inline path: serial fallback, a single index, or a nested submission
  // from a worker (queueing from a worker can deadlock when every worker
  // is blocked waiting on queued children). Behavior matches the pooled
  // path exactly: every index runs (or is cooperatively skipped), and the
  // collected error set follows the CancelPolicy contract.
  if (workers_.empty() || count == 1 || t_on_worker) {
    for (std::size_t i = 0; i < count; ++i) run_one(i);
  } else {
    struct Barrier {
      std::mutex mu;
      std::condition_variable cv;
      std::size_t remaining;
    };
    Barrier barrier{{}, {}, count};
    {
      std::lock_guard<std::mutex> lock{mu_};
      for (std::size_t i = 0; i < count; ++i) {
        queue_.emplace_back([&run_one, &barrier, i] {
          run_one(i);
          std::lock_guard<std::mutex> done{barrier.mu};
          if (--barrier.remaining == 0) barrier.cv.notify_one();
        });
      }
    }
    cv_.notify_all();
    std::unique_lock<std::mutex> lock{barrier.mu};
    barrier.cv.wait(lock, [&barrier] { return barrier.remaining == 0; });
  }

  const std::size_t lowest = first_error.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    if (!errors[i]) continue;
    // Under cancellation, throws above the watermark are timing-dependent
    // (a racing worker may have started before the watermark dropped);
    // only the deterministic lowest-index failure is reported.
    if (policy == CancelPolicy::kCancelAfterError && i > lowest) continue;
    out.errors.push_back({i, errors[i]});
  }
  out.cancelled = cancelled.load(std::memory_order_relaxed);
  return out;
}

std::size_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("DFSM_THREADS")) {
    try {
      const long v = std::stol(env);
      if (v < 0) throw std::out_of_range{"negative"};
      return static_cast<std::size_t>(v);
    } catch (const std::exception&) {
      throw std::invalid_argument{"DFSM_THREADS must be a non-negative "
                                  "integer, got '" +
                                  std::string{env} + "'"};
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock{g_global_mu};
  if (!g_global) g_global = std::make_unique<ThreadPool>(default_threads());
  return *g_global;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock{g_global_mu};
  g_global = std::make_unique<ThreadPool>(threads);
}

}  // namespace dfsm::runtime
