// thread_pool.h — the parallel analysis runtime's execution engine: a
// fixed-size pool of worker threads with deterministic, index-ordered
// dispatch and exception propagation.
//
// The ROADMAP's north star ("as fast as the hardware allows") meets the
// paper's reproducibility requirement here: every figure and table this
// repo emits must be byte-identical run-to-run, so the pool deliberately
// has NO work stealing and NO dynamic scheduling. Work is cut into static
// contiguous blocks (see parallel.h), every block runs exactly once, and
// merges happen in block-index order — the parallel result is the serial
// result, always, at any thread count.
//
// Configuration: the DFSM_THREADS environment variable overrides the
// worker count for the process-wide pool. 0 or 1 means "serial fallback"
// (no worker threads; everything runs inline on the caller). Unset means
// std::thread::hardware_concurrency().
#ifndef DFSM_RUNTIME_THREAD_POOL_H
#define DFSM_RUNTIME_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dfsm::runtime {

/// One task's failure: which index threw, and what it threw.
struct TaskError {
  std::size_t index = 0;
  std::exception_ptr error;
};

/// Aggregated outcome of a run_indexed_collect call: every collected
/// failure in ascending index order, plus how many indices were skipped
/// by cooperative cancellation.
struct TaskErrors {
  std::vector<TaskError> errors;  ///< ascending index order
  std::size_t cancelled = 0;      ///< indices skipped, never run

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// What run_indexed_collect does with indices after a failure.
enum class CancelPolicy {
  /// Every index runs regardless of earlier failures; errors holds every
  /// exception thrown, in index order. Fully deterministic.
  kRunAll,
  /// Cooperative cancellation: once a task throws, indices ABOVE the
  /// lowest throwing index are skipped as workers reach them. Indices
  /// below any thrower always run, so errors deterministically holds
  /// exactly the lowest-index failure; `cancelled` is timing-dependent
  /// and informational only.
  kCancelAfterError,
};

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 or 1 spawns none: the pool is in serial
  /// fallback and run_indexed executes inline on the caller.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 in serial fallback).
  [[nodiscard]] std::size_t workers() const noexcept { return workers_.size(); }

  /// Useful degree of parallelism: max(1, workers()). parallel.h cuts
  /// work into at most this many blocks.
  [[nodiscard]] std::size_t parallelism() const noexcept {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// Runs task(0), task(1), ..., task(count-1), each exactly once, and
  /// returns only after all have finished. Every index runs even if an
  /// earlier one throws; afterwards the exception of the LOWEST index
  /// that threw is rethrown (deterministic regardless of thread timing —
  /// the serial fallback behaves identically).
  ///
  /// Nested-submit safe: when called from inside a pool worker (or when
  /// the pool is serial), the indices run inline on the caller instead of
  /// being queued, so nested parallel_for can never deadlock the pool.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& task);

  /// Like run_indexed, but never rethrows: every task failure is
  /// collected and returned in ascending index order. Under kRunAll the
  /// full error set is deterministic at any thread count (graceful-
  /// degradation callers quarantine per-index failures from it); under
  /// kCancelAfterError a fatal task stops remaining work cooperatively
  /// and the returned list is exactly the lowest-index failure.
  [[nodiscard]] TaskErrors run_indexed_collect(
      std::size_t count, const std::function<void(std::size_t)>& task,
      CancelPolicy policy = CancelPolicy::kRunAll);

  /// True when the calling thread is one of this process's pool workers.
  [[nodiscard]] static bool on_worker_thread() noexcept;

  // --- process-wide pool ------------------------------------------------

  /// The shared pool every analysis hot path uses. Created on first use
  /// with default_threads() workers.
  [[nodiscard]] static ThreadPool& global();

  /// Worker count the global pool is created with: DFSM_THREADS if set
  /// (0/1 => serial fallback), otherwise std::thread::hardware_concurrency().
  [[nodiscard]] static std::size_t default_threads();

  /// Replaces the global pool with one of `threads` workers. Test/bench
  /// hook for serial-vs-parallel comparisons in one process; must not be
  /// called while parallel work is in flight.
  static void set_global_threads(std::size_t threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace dfsm::runtime

#endif  // DFSM_RUNTIME_THREAD_POOL_H
