// parallel.h — deterministic data-parallel skeletons over the thread pool.
//
// Determinism contract (DESIGN.md §6): [0, n) is cut into at most
// pool.parallelism() contiguous blocks by STATIC partitioning — block
// boundaries depend only on n and the block count, never on thread
// timing — and reductions merge per-block results in ascending block
// order. Any code whose serial result is a deterministic function of the
// element order therefore produces byte-identical output at every thread
// count, including the serial fallback.
#ifndef DFSM_RUNTIME_PARALLEL_H
#define DFSM_RUNTIME_PARALLEL_H

#include <cstddef>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"

namespace dfsm::runtime {

/// One contiguous index block [begin, end).
struct Block {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Cuts [0, n) into at most `max_blocks` near-equal contiguous blocks
/// (the first n % max_blocks blocks are one element longer). Pure
/// function of (n, max_blocks): the partition is the determinism anchor.
[[nodiscard]] inline std::vector<Block> static_blocks(std::size_t n,
                                                      std::size_t max_blocks) {
  std::vector<Block> blocks;
  if (n == 0) return blocks;
  if (max_blocks == 0) max_blocks = 1;
  const std::size_t count = n < max_blocks ? n : max_blocks;
  const std::size_t base = n / count;
  const std::size_t extra = n % count;
  blocks.reserve(count);
  std::size_t begin = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    blocks.push_back({begin, begin + len});
    begin += len;
  }
  return blocks;
}

/// Runs body(begin, end) over a static partition of [0, n). Blocks run
/// concurrently on the pool (inline in serial fallback); returns after
/// all blocks finish; the lowest-block exception propagates.
template <typename Body>
void parallel_for(std::size_t n, Body&& body,
                  ThreadPool& pool = ThreadPool::global()) {
  const auto blocks = static_blocks(n, pool.parallelism());
  if (blocks.empty()) return;
  if (blocks.size() == 1) {
    body(blocks[0].begin, blocks[0].end);
    return;
  }
  pool.run_indexed(blocks.size(), [&](std::size_t i) {
    body(blocks[i].begin, blocks[i].end);
  });
}

/// Fault-tolerant variant of parallel_for: runs body over the static
/// partition and returns every failing block's exception in ascending
/// block order instead of rethrowing. Under kCancelAfterError a fatal
/// block cooperatively stops blocks above the lowest failing one (its
/// error is the only one returned) — the strict-ingest path uses this so
/// one bad shard stops the remaining parse work deterministically.
template <typename Body>
[[nodiscard]] TaskErrors parallel_for_collect(
    std::size_t n, Body&& body, CancelPolicy policy = CancelPolicy::kRunAll,
    ThreadPool& pool = ThreadPool::global()) {
  const auto blocks = static_blocks(n, pool.parallelism());
  if (blocks.empty()) return {};
  return pool.run_indexed_collect(
      blocks.size(),
      [&](std::size_t i) { body(blocks[i].begin, blocks[i].end); }, policy);
}

/// Maps each block [begin, end) to an accumulator via shard(begin, end)
/// and folds the per-block results into `identity` IN BLOCK ORDER with
/// merge(acc, block_result). Equivalent to
/// merge(...merge(merge(identity, shard(b0)), shard(b1))..., shard(bk)),
/// so even non-commutative merges (string concatenation, ordered
/// appends) match the serial result exactly.
template <typename T, typename Shard, typename Merge>
[[nodiscard]] T parallel_reduce(std::size_t n, T identity, Shard&& shard,
                                Merge&& merge,
                                ThreadPool& pool = ThreadPool::global()) {
  const auto blocks = static_blocks(n, pool.parallelism());
  T acc = std::move(identity);
  if (blocks.empty()) return acc;
  if (blocks.size() == 1) {
    merge(acc, shard(blocks[0].begin, blocks[0].end));
    return acc;
  }
  std::vector<T> partial(blocks.size());
  pool.run_indexed(blocks.size(), [&](std::size_t i) {
    partial[i] = shard(blocks[i].begin, blocks[i].end);
  });
  for (auto& p : partial) merge(acc, std::move(p));
  return acc;
}

/// Element-wise map preserving index order: out[i] = fn(i). R must be
/// default-constructible (each slot is assigned exactly once).
template <typename R, typename Fn>
[[nodiscard]] std::vector<R> parallel_map(std::size_t n, Fn&& fn,
                                          ThreadPool& pool =
                                              ThreadPool::global()) {
  std::vector<R> out(n);
  parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
      },
      pool);
  return out;
}

}  // namespace dfsm::runtime

#endif  // DFSM_RUNTIME_PARALLEL_H
