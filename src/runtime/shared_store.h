// shared_store.h — a thread-safe, bounded, deterministically-evicting
// key/value store shared across analysis invocations.
//
// Concurrency: every operation holds one internal mutex, so the store is
// safe to touch from any pool worker. Determinism is a CALLER contract
// layered on top: a store mutated only from serial phases (or whose keys
// are disjoint per concurrent user, with no bound forcing evictions)
// observes one well-defined operation order, and eviction is strict LRU
// over that order — byte-identical hit/miss/eviction accounting at every
// DFSM_THREADS setting. The sweep engine's three-phase fill (serial
// lookup, parallel evaluate, serial insert) is the canonical user
// (DESIGN.md §11).
//
// Values are stored by copy and returned by copy: no reference escapes
// the lock, so an eviction can never invalidate a reader.
#ifndef DFSM_RUNTIME_SHARED_STORE_H
#define DFSM_RUNTIME_SHARED_STORE_H

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dfsm::runtime {

template <typename K, typename V, typename Hash = std::hash<K>>
class SharedLruStore {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
  };

  /// @param max_entries entry budget; 0 = unbounded. Inserting past the
  /// budget evicts least-recently-used entries (a get refreshes recency).
  explicit SharedLruStore(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  SharedLruStore(const SharedLruStore&) = delete;
  SharedLruStore& operator=(const SharedLruStore&) = delete;

  /// Returns a copy of the value and refreshes its recency, or nullopt.
  [[nodiscard]] std::optional<V> get(const K& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);  // move to MRU
    return it->second->second;
  }

  /// Inserts or overwrites; the entry becomes most-recently-used. Evicts
  /// LRU entries while over budget.
  void put(const K& key, V value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    while (max_entries_ != 0 && order_.size() > max_entries_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++stats_.evictions;
    }
  }

  /// Removes one entry; returns whether it existed.
  bool erase(const K& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  /// Removes one entry only when `pred(value)` holds for the CURRENTLY
  /// stored value, checked under the lock; returns whether an entry was
  /// erased. This is the compare-and-erase primitive for check-then-act
  /// callers (e.g. drop-if-still-stale): a plain get-then-erase pair
  /// could erase a fresh value some other thread re-inserted between the
  /// two calls, whereas erase_if re-validates atomically.
  template <typename Pred>
  bool erase_if(const K& key, Pred pred) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end() || !pred(it->second->second)) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    order_.clear();
    index_.clear();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return order_.size();
  }

  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

  [[nodiscard]] Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Keys in recency order, most-recently-used first — the eviction
  /// order read backwards. Exposed so tests can pin the determinism
  /// contract, not for production traversal.
  [[nodiscard]] std::vector<K> keys_by_recency() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<K> keys;
    keys.reserve(order_.size());
    for (const auto& [key, value] : order_) keys.push_back(key);
    return keys;
  }

 private:
  mutable std::mutex mu_;
  std::size_t max_entries_;
  std::list<std::pair<K, V>> order_;  ///< MRU at front, LRU at back
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      index_;
  Stats stats_;
};

}  // namespace dfsm::runtime

#endif  // DFSM_RUNTIME_SHARED_STORE_H
