// snapshot_cell.h — a read-mostly publication point for immutable,
// versioned state (the RCU/epoch half of the concurrent-store toolkit;
// SharedLruStore is the mutable, mutex-guarded half).
//
// One writer (or several, externally serialized) builds the next version
// of some state off to the side, then publishes it with a single atomic
// shared_ptr swap. Any number of readers acquire() concurrently and
// lock-free: each gets a refcounted pointer to ONE consistent version
// that stays alive — and byte-stable, the pointee is const — for as long
// as the reader holds it, no matter how many newer versions are
// published meanwhile. There is no read lock, no writer starvation, and
// no torn state: a reader sees either the version before a publish or
// the version after it, never a mix.
//
// Memory ordering: publish() is a release store and acquire() an acquire
// load, so everything the writer wrote into the new version
// happens-before any reader that observes it. The version counter is
// bumped BEFORE the pointer swap, so version() can only run ahead of the
// published pointer, never behind it — a reader that re-checks version()
// after acquire() may detect a concurrent publish, but can never miss
// one (the seqlock-style validation the corpus service's tests use).
//
// Under ThreadSanitizer the cell swaps its storage for a mutex-boxed
// shared_ptr with identical observable semantics: libstdc++ implements
// std::atomic<shared_ptr> as a bit-lock on the refcount word guarding a
// PLAIN pointer word, a protocol TSan cannot model before the GCC 13
// annotations — every reader/writer pair reports a false race on the
// pointer word. The mutex variant is fully instrumented, so the TSan CI
// leg genuinely checks the publication discipline (epoch ordering, the
// arena append-beyond-published-size rule) instead of drowning it in
// library noise.
#ifndef DFSM_RUNTIME_SNAPSHOT_CELL_H
#define DFSM_RUNTIME_SNAPSHOT_CELL_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#if defined(__SANITIZE_THREAD__)
#define DFSM_SNAPSHOT_CELL_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DFSM_SNAPSHOT_CELL_TSAN 1
#endif
#endif

#ifdef DFSM_SNAPSHOT_CELL_TSAN
#include <mutex>
#endif

namespace dfsm::runtime {

template <typename T>
class SnapshotCell {
 public:
  SnapshotCell() = default;
  explicit SnapshotCell(std::shared_ptr<const T> initial)
      : ptr_(std::move(initial)) {
    version_.store(1, std::memory_order_release);
  }

  SnapshotCell(const SnapshotCell&) = delete;
  SnapshotCell& operator=(const SnapshotCell&) = delete;

  /// Publishes `next` as the current version (release). The previous
  /// version stays alive until its last reader drops it. Null is a valid
  /// publication (an "empty" state). Writers must be externally
  /// serialized — concurrent publishes are atomic but their order is
  /// then unspecified.
  void publish(std::shared_ptr<const T> next) {
    version_.fetch_add(1, std::memory_order_release);
#ifdef DFSM_SNAPSHOT_CELL_TSAN
    std::lock_guard<std::mutex> lock{mu_};
    ptr_ = std::move(next);
#else
    ptr_.store(std::move(next), std::memory_order_release);
#endif
  }

  /// Returns the current version's pointer (acquire); never blocks a
  /// writer. The returned pointer pins that version for the caller's
  /// lifetime of use.
  [[nodiscard]] std::shared_ptr<const T> acquire() const {
#ifdef DFSM_SNAPSHOT_CELL_TSAN
    std::lock_guard<std::mutex> lock{mu_};
    return ptr_;
#else
    return ptr_.load(std::memory_order_acquire);
#endif
  }

  /// Number of publishes so far (monotone). May run ahead of acquire()
  /// by an in-flight publish, never behind.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

 private:
#ifdef DFSM_SNAPSHOT_CELL_TSAN
  mutable std::mutex mu_;
  std::shared_ptr<const T> ptr_;
#else
  std::atomic<std::shared_ptr<const T>> ptr_;
#endif
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace dfsm::runtime

#endif  // DFSM_RUNTIME_SNAPSHOT_CELL_H
