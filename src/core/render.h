// render.h — renders FsmModels the way the paper draws them: Graphviz DOT
// for figures, and a compact ASCII form for terminals and logs.
//
// Both renderings preserve the paper's visual conventions:
//  * transitions carry Condition♦Action labels (we print the lozenge as
//    " <> " in ASCII and "&#9830;" in DOT),
//  * the IMPL_ACPT hidden path is dashed/dotted,
//  * an absent IMPL_REJ check is marked "?",
//  * propagation gates appear as triangles between operations.
#ifndef DFSM_CORE_RENDER_H
#define DFSM_CORE_RENDER_H

#include <string>

#include "core/model.h"

namespace dfsm::core {

/// Graphviz DOT source for the full model (one cluster per operation,
/// triangle nodes for propagation gates, dashed red edges for hidden
/// paths). Paste into `dot -Tsvg` to regenerate a Figure-3-style diagram.
[[nodiscard]] std::string to_dot(const FsmModel& model);

/// Multi-line ASCII rendering (used by examples and bench preambles).
[[nodiscard]] std::string to_ascii(const FsmModel& model);

/// One-pFSM ASCII rendering (Figure 2 shape).
[[nodiscard]] std::string to_ascii(const Pfsm& pfsm);

}  // namespace dfsm::core

#endif  // DFSM_CORE_RENDER_H
