#include "core/value.h"

#include <sstream>
#include <stdexcept>

namespace dfsm::core {

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\x%02x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_string(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "<none>"; }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(std::uint64_t u) const {
      std::ostringstream os;
      os << "0x" << std::hex << u;
      return os.str();
    }
    std::string operator()(double d) const { return std::to_string(d); }
    std::string operator()(const std::string& s) const { return quote(s); }
    std::string operator()(const Bytes& b) const {
      return "bytes[" + std::to_string(b.size()) + "]";
    }
  };
  return std::visit(Visitor{}, v);
}

bool value_equal(const Value& a, const Value& b) { return a == b; }

Object::Object(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw std::invalid_argument("Object requires a non-empty name");
}

Object::Object(std::string name, Value value)
    : name_(std::move(name)), value_(std::move(value)) {
  if (name_.empty()) throw std::invalid_argument("Object requires a non-empty name");
}

Object& Object::with(const std::string& key, Value v) {
  if (key.empty()) throw std::invalid_argument("attribute key must be non-empty");
  attrs_[key] = std::move(v);
  return *this;
}

std::optional<Value> Object::attr(const std::string& key) const {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return std::nullopt;
  return it->second;
}

bool Object::has_attr(const std::string& key) const {
  return attrs_.count(key) != 0;
}

namespace {
template <typename T>
std::optional<T> get_alt(const std::optional<Value>& v) {
  if (!v) return std::nullopt;
  if (const T* p = std::get_if<T>(&*v)) return *p;
  return std::nullopt;
}
template <typename T>
std::optional<T> get_alt(const Value& v) {
  if (const T* p = std::get_if<T>(&v)) return *p;
  return std::nullopt;
}
}  // namespace

std::optional<std::int64_t> Object::attr_int(const std::string& key) const {
  return get_alt<std::int64_t>(attr(key));
}
std::optional<std::uint64_t> Object::attr_uint(const std::string& key) const {
  return get_alt<std::uint64_t>(attr(key));
}
std::optional<bool> Object::attr_bool(const std::string& key) const {
  return get_alt<bool>(attr(key));
}
std::optional<std::string> Object::attr_string(const std::string& key) const {
  return get_alt<std::string>(attr(key));
}

std::optional<std::int64_t> Object::as_int() const { return get_alt<std::int64_t>(value_); }
std::optional<std::uint64_t> Object::as_uint() const { return get_alt<std::uint64_t>(value_); }
std::optional<std::string> Object::as_string() const { return get_alt<std::string>(value_); }
std::optional<bool> Object::as_bool() const { return get_alt<bool>(value_); }

std::string Object::describe() const {
  std::ostringstream os;
  os << name_ << '=' << to_string(value_);
  if (!attrs_.empty()) {
    os << " {";
    bool first = true;
    for (const auto& [k, v] : attrs_) {
      if (!first) os << ", ";
      first = false;
      os << k << '=' << to_string(v);
    }
    os << '}';
  }
  return os.str();
}

}  // namespace dfsm::core
