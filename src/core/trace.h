// trace.h — ordered event records of FSM walks and sandbox activity.
//
// Traces serve two consumers: (1) rendering a concrete exploit walk the way
// the paper narrates them ("pFSM1 takes IMPL_ACPT, str_x arrives at the
// accept state..."), and (2) the runtime monitor, which correlates sandbox
// activity events with pFSM evaluations to flag predicate violations at
// elementary-activity granularity.
#ifndef DFSM_CORE_TRACE_H
#define DFSM_CORE_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/chain.h"

namespace dfsm::core {

/// One step of a trace.
struct TraceEvent {
  std::uint64_t seq = 0;           ///< monotonically increasing index
  std::string operation;           ///< owning operation name ("" if n/a)
  std::string pfsm;                ///< pFSM name ("" for sandbox events)
  std::string kind;                ///< "SPEC_ACPT", "IMPL_ACPT", "mem.write", ...
  std::string detail;              ///< object description or event payload
};

/// An append-only event log.
class Trace {
 public:
  void record(std::string operation, std::string pfsm, std::string kind,
              std::string detail);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Number of events whose kind matches exactly.
  [[nodiscard]] std::size_t count_kind(const std::string& kind) const;

  /// Multi-line human-readable rendering.
  [[nodiscard]] std::string to_text() const;

  /// Appends the full walk of a ChainResult (one event per transition).
  void append(const ChainResult& result);

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace dfsm::core

#endif  // DFSM_CORE_TRACE_H
