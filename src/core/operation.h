// operation.h — an operation is a series of pFSMs applied to one object
// (paper Observation 2 / §4 step 2).
//
// "Multiple activities performed on the same object form an operation,
// which is modeled as a FSM consisting of multiple pFSMs in series."
// E.g. Sendmail #3163 Operation 1 ("write debug level i to tTvect[x]")
// chains pFSM1 (get str_x/str_i) and pFSM2 (write i to tTvect[x]).
//
// Between consecutive pFSMs the object may be transformed by the accepted
// activity's Action (str_x -> signed integer x). Callers either supply one
// concrete Object per pFSM, or a starting Object plus per-stage transforms.
#ifndef DFSM_CORE_OPERATION_H
#define DFSM_CORE_OPERATION_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/pfsm.h"

namespace dfsm::core {

/// Transforms the object accepted by pFSM k into the object presented to
/// pFSM k+1 (models the Action on the accept transition, e.g. "convert
/// str_i and str_x to integer i and x").
using ObjectTransform = std::function<Object(const Object&)>;

/// Result of evaluating an operation on concrete input(s).
struct OperationResult {
  std::string operation_name;
  std::vector<PfsmOutcome> outcomes;  ///< one per pFSM reached

  /// All pFSMs reached their accept state; the operation's final action
  /// executed (for an attack input this means the operation was exploited).
  [[nodiscard]] bool completed() const;

  /// At least one pFSM traversed the hidden IMPL_ACPT path.
  [[nodiscard]] bool violated() const;

  /// Index of the pFSM that foiled the input (ended in Reject), if any.
  [[nodiscard]] std::optional<std::size_t> foiled_at() const;
};

/// A named series of pFSMs on one object.
///
/// Invariants: non-empty name; at least one pFSM (checked when evaluated,
/// so models can be built incrementally).
class Operation {
 public:
  Operation(std::string name, std::string object_description);

  /// Appends a pFSM (and an optional transform feeding the *next* stage).
  Operation& add(Pfsm pfsm);
  Operation& add(Pfsm pfsm, ObjectTransform transform_to_next);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& object_description() const noexcept {
    return object_description_;
  }
  [[nodiscard]] const std::vector<Pfsm>& pfsms() const noexcept { return pfsms_; }
  [[nodiscard]] std::size_t size() const noexcept { return pfsms_.size(); }

  /// Evaluates with one pre-built object per pFSM. Evaluation stops at the
  /// first pFSM that ends in Reject (the serial-chain property of
  /// Observation 1: failure at any one elementary activity foils the
  /// exploit). Throws std::invalid_argument if the number of objects does
  /// not match the number of pFSMs, or the operation is empty.
  /// `with_descriptions` false propagates to Pfsm::evaluate (skips the
  /// per-outcome object_description rendering).
  [[nodiscard]] OperationResult evaluate(const std::vector<Object>& objects,
                                         bool with_descriptions = true) const;

  /// Evaluates by flowing a single starting object through the series,
  /// applying registered transforms between stages (identity if none).
  [[nodiscard]] OperationResult flow(const Object& start) const;

 private:
  std::string name_;
  std::string object_description_;
  std::vector<Pfsm> pfsms_;
  std::vector<std::optional<ObjectTransform>> transforms_;  // parallel to pfsms_
};

}  // namespace dfsm::core

#endif  // DFSM_CORE_OPERATION_H
