#include "core/model.h"

#include <stdexcept>

namespace dfsm::core {

FsmModel::FsmModel(std::string name, std::vector<int> bugtraq_ids,
                   std::string vulnerability_class, std::string software,
                   std::string consequence, ExploitChain chain)
    : name_(std::move(name)),
      bugtraq_ids_(std::move(bugtraq_ids)),
      vulnerability_class_(std::move(vulnerability_class)),
      software_(std::move(software)),
      consequence_(std::move(consequence)),
      chain_(std::move(chain)) {
  if (name_.empty()) throw std::invalid_argument("FsmModel requires a non-empty name");
  if (bugtraq_ids_.empty()) {
    throw std::invalid_argument(
        "FsmModel '" + name_ +
        "' requires at least one report id (use 0 for pre-Bugtraq CERT "
        "advisories, as in bugtraq::curated_database)");
  }
  if (chain_.size() == 0) {
    throw std::invalid_argument("FsmModel '" + name_ + "' requires a non-empty chain");
  }
}

std::size_t FsmModel::pfsm_count() const {
  std::size_t n = 0;
  for (const auto& op : chain_.operations()) n += op.size();
  return n;
}

std::vector<PfsmSummary> FsmModel::summaries() const {
  std::vector<PfsmSummary> out;
  for (const auto& op : chain_.operations()) {
    for (const auto& p : op.pfsms()) {
      PfsmSummary s;
      s.model_name = name_;
      s.operation_name = op.name();
      s.pfsm_name = p.name();
      s.type = p.type();
      s.question = p.spec().description();
      s.declared_secure = p.declared_secure();
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::array<std::size_t, 3> FsmModel::type_census() const {
  std::array<std::size_t, 3> counts{};
  for (const auto& op : chain_.operations()) {
    for (const auto& p : op.pfsms()) {
      counts[static_cast<std::size_t>(p.type())]++;
    }
  }
  return counts;
}

std::size_t FsmModel::declared_vulnerable_count() const {
  std::size_t n = 0;
  for (const auto& op : chain_.operations()) {
    for (const auto& p : op.pfsms()) {
      if (!p.declared_secure()) ++n;
    }
  }
  return n;
}

TypeCensus census(const std::vector<FsmModel>& models) {
  TypeCensus c;
  for (const auto& m : models) {
    auto mc = m.type_census();
    for (std::size_t i = 0; i < mc.size(); ++i) c.counts[i] += mc[i];
  }
  c.total = c.counts[0] + c.counts[1] + c.counts[2];
  return c;
}

}  // namespace dfsm::core
