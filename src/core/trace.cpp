#include "core/trace.h"

#include <sstream>

namespace dfsm::core {

void Trace::record(std::string operation, std::string pfsm, std::string kind,
                   std::string detail) {
  TraceEvent e;
  e.seq = events_.size();
  e.operation = std::move(operation);
  e.pfsm = std::move(pfsm);
  e.kind = std::move(kind);
  e.detail = std::move(detail);
  events_.push_back(std::move(e));
}

std::size_t Trace::count_kind(const std::string& kind) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string Trace::to_text() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << '[' << e.seq << "] ";
    if (!e.operation.empty()) os << e.operation << " / ";
    if (!e.pfsm.empty()) os << e.pfsm << " : ";
    os << e.kind;
    if (!e.detail.empty()) os << "  " << e.detail;
    os << '\n';
  }
  return os.str();
}

void Trace::append(const ChainResult& result) {
  for (std::size_t oi = 0; oi < result.operations.size(); ++oi) {
    const auto& op = result.operations[oi];
    for (const auto& outcome : op.outcomes) {
      for (auto t : outcome.path) {
        record(op.operation_name, "", to_string(t), outcome.object_description);
      }
    }
    if (result.foiled_at_operation && *result.foiled_at_operation == oi) {
      record(op.operation_name, "", "FOILED", "exploit stopped; gate does not fire");
    }
  }
  if (result.exploited()) {
    record(result.chain_name, "", "EXPLOITED", "all gates fired");
  }
}

}  // namespace dfsm::core
