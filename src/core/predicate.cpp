#include "core/predicate.h"

namespace dfsm::core {

Predicate Predicate::accept_all(std::string description) {
  Predicate p{std::move(description), [](const Object&) { return true; }};
  p.kind_ = PredicateKind::kAcceptAll;
  return p;
}

Predicate Predicate::reject_all(std::string description) {
  Predicate p{std::move(description), [](const Object&) { return false; }};
  p.kind_ = PredicateKind::kRejectAll;
  return p;
}

Predicate Predicate::operator&&(const Predicate& rhs) const {
  auto lf = fn_;
  auto rf = rhs.fn_;
  return Predicate{"(" + description_ + " && " + rhs.description_ + ")",
                   [lf, rf](const Object& o) { return lf(o) && rf(o); }};
}

Predicate Predicate::operator||(const Predicate& rhs) const {
  auto lf = fn_;
  auto rf = rhs.fn_;
  return Predicate{"(" + description_ + " || " + rhs.description_ + ")",
                   [lf, rf](const Object& o) { return lf(o) || rf(o); }};
}

Predicate Predicate::operator!() const {
  auto f = fn_;
  return Predicate{"!(" + description_ + ")",
                   [f](const Object& o) { return !f(o); }};
}

}  // namespace dfsm::core
