#include "core/render.h"

#include <sstream>

namespace dfsm::core {

namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const FsmModel& model) {
  std::ostringstream os;
  os << "digraph \"" << dot_escape(model.name()) << "\" {\n";
  os << "  rankdir=TB;\n  node [fontname=\"Helvetica\", fontsize=10];\n";
  os << "  label=\"" << dot_escape(model.name()) << "\";\n";

  const auto& ops = model.chain().operations();
  const auto& gates = model.chain().gates();
  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    const auto& op = ops[oi];
    os << "  subgraph cluster_op" << oi << " {\n";
    os << "    label=\"" << dot_escape(op.name()) << "\";\n    style=rounded;\n";
    for (std::size_t pi = 0; pi < op.pfsms().size(); ++pi) {
      const auto& p = op.pfsms()[pi];
      const std::string id = "o" + std::to_string(oi) + "p" + std::to_string(pi);
      os << "    " << id << "_chk [shape=circle, label=\"SPEC\\ncheck\"];\n";
      os << "    " << id << "_rej [shape=doublecircle, label=\"Reject\"];\n";
      os << "    " << id << "_acc [shape=circle, style=filled, fillcolor=gray90, "
         << "label=\"Accept\"];\n";
      os << "    " << id << "_chk -> " << id << "_acc [label=\""
         << dot_escape(p.spec().description()) << " &#9830; "
         << dot_escape(p.action()) << "\"];\n";
      os << "    " << id << "_chk -> " << id << "_rej [label=\"!("
         << dot_escape(p.spec().description()) << ") &#9830; -\"];\n";
      if (p.declared_secure()) {
        os << "    " << id << "_rej -> " << id << "_rej [label=\"IMPL_REJ\"];\n";
      } else {
        os << "    " << id << "_rej -> " << id << "_rej [label=\"? (no IMPL_REJ)\", "
           << "color=gray, fontcolor=gray];\n";
        os << "    " << id << "_rej -> " << id
           << "_acc [style=dashed, color=red, fontcolor=red, "
           << "label=\"IMPL_ACPT (hidden)\"];\n";
      }
      if (pi + 1 < op.pfsms().size()) {
        const std::string next = "o" + std::to_string(oi) + "p" + std::to_string(pi + 1);
        os << "    " << id << "_acc -> " << next << "_chk [label=\""
           << dot_escape(p.name()) << " -> " << dot_escape(op.pfsms()[pi + 1].name())
           << "\"];\n";
      }
    }
    os << "  }\n";
    // The propagation gate after this operation.
    os << "  gate" << oi << " [shape=triangle, label=\"" << dot_escape(gates[oi].condition)
       << "\"];\n";
    const std::string last = "o" + std::to_string(oi) + "p" +
                             std::to_string(op.pfsms().size() - 1);
    os << "  " << last << "_acc -> gate" << oi << ";\n";
    if (oi + 1 < ops.size()) {
      os << "  gate" << oi << " -> o" << (oi + 1) << "p0_chk;\n";
    }
  }
  os << "  consequence [shape=box, style=bold, label=\""
     << dot_escape(model.consequence()) << "\"];\n";
  if (!ops.empty()) {
    os << "  gate" << (ops.size() - 1) << " -> consequence;\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_ascii(const Pfsm& pfsm) {
  std::ostringstream os;
  os << pfsm.name() << " [" << to_string(pfsm.type()) << "]  activity: "
     << pfsm.activity() << '\n';
  os << "  SPEC_ACPT : " << pfsm.spec().description();
  if (!pfsm.action().empty()) os << " <> " << pfsm.action();
  os << '\n';
  os << "  SPEC_REJ  : !(" << pfsm.spec().description() << ")\n";
  if (pfsm.declared_secure()) {
    os << "  IMPL_REJ  : present (implementation matches specification)\n";
  } else {
    os << "  IMPL_REJ  : ?   (missing)\n";
    os << "  IMPL_ACPT : " << pfsm.impl().description()
       << "   <-- hidden path (vulnerability)\n";
  }
  return os.str();
}

std::string to_ascii(const FsmModel& model) {
  std::ostringstream os;
  os << "Model: " << model.name() << '\n';
  if (!model.bugtraq_ids().empty()) {
    os << "  Bugtraq:";
    for (int id : model.bugtraq_ids()) os << " #" << id;
    os << '\n';
  }
  os << "  Class: " << model.vulnerability_class() << "   Software: "
     << model.software() << '\n';
  const auto& ops = model.chain().operations();
  const auto& gates = model.chain().gates();
  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    os << "  Operation " << (oi + 1) << ": " << ops[oi].name() << "  (object: "
       << ops[oi].object_description() << ")\n";
    for (const auto& p : ops[oi].pfsms()) {
      std::istringstream lines{to_ascii(p)};
      std::string line;
      while (std::getline(lines, line)) os << "    " << line << '\n';
    }
    os << "    --gate--> " << gates[oi].condition << '\n';
  }
  os << "  Consequence: " << model.consequence() << '\n';
  return os.str();
}

}  // namespace dfsm::core
