// table.h — a fixed-width text-table renderer shared by the benchmark
// harness, the examples, and EXPERIMENTS.md generation. Produces the
// rows/series the paper reports in a terminal-friendly layout.
#ifndef DFSM_CORE_TABLE_H
#define DFSM_CORE_TABLE_H

#include <string>
#include <vector>

namespace dfsm::core {

/// A simple left-aligned text table with a header row, column separators
/// and an optional title.
///
/// Invariant: every row added must have exactly as many cells as the
/// header (checked; throws std::invalid_argument).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  TextTable& title(std::string t);
  TextTable& add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Renders with box-drawing separators, e.g.
  ///   Title
  ///   ------
  ///   Col A | Col B
  ///   ------+------
  ///   x     | y
  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a ratio as a percentage with the given precision, e.g.
/// pct(1363, 5925) == "23.0%".
[[nodiscard]] std::string pct(double numerator, double denominator,
                              int decimals = 1);

}  // namespace dfsm::core

#endif  // DFSM_CORE_TABLE_H
