#include "core/pfsm.h"

#include <stdexcept>

namespace dfsm::core {

const char* to_string(PfsmState s) noexcept {
  switch (s) {
    case PfsmState::kSpecCheck: return "SPEC_CHECK";
    case PfsmState::kReject: return "REJECT";
    case PfsmState::kAccept: return "ACCEPT";
  }
  return "?";
}

const char* to_string(PfsmTransition t) noexcept {
  switch (t) {
    case PfsmTransition::kSpecAccept: return "SPEC_ACPT";
    case PfsmTransition::kSpecReject: return "SPEC_REJ";
    case PfsmTransition::kImplReject: return "IMPL_REJ";
    case PfsmTransition::kImplAccept: return "IMPL_ACPT";
  }
  return "?";
}

const char* to_string(PfsmType t) noexcept {
  switch (t) {
    case PfsmType::kObjectTypeCheck: return "Object Type Check";
    case PfsmType::kContentAttributeCheck: return "Content and Attribute Check";
    case PfsmType::kReferenceConsistencyCheck: return "Reference Consistency Check";
  }
  return "?";
}

const char* to_string(PfsmResult r) noexcept {
  switch (r) {
    case PfsmResult::kSecureAccept: return "SECURE_ACCEPT";
    case PfsmResult::kFoiled: return "FOILED";
    case PfsmResult::kHiddenAccept: return "HIDDEN_ACCEPT";
  }
  return "?";
}

Pfsm::Pfsm(std::string name, PfsmType type, std::string activity,
           Predicate spec, Predicate impl, std::string action)
    : name_(std::move(name)),
      type_(type),
      activity_(std::move(activity)),
      spec_(std::move(spec)),
      impl_(std::move(impl)),
      action_(std::move(action)) {
  if (name_.empty()) throw std::invalid_argument("Pfsm requires a non-empty name");
}

Pfsm Pfsm::secure(std::string name, PfsmType type, std::string activity,
                  Predicate spec, std::string action) {
  Predicate impl = spec;  // implementation enforces exactly the spec
  Pfsm p{std::move(name), type,      std::move(activity),
         std::move(spec), std::move(impl), std::move(action)};
  p.declared_secure_ = true;
  return p;
}

Pfsm Pfsm::unchecked(std::string name, PfsmType type, std::string activity,
                     Predicate spec, std::string action) {
  return Pfsm{std::move(name),
              type,
              std::move(activity),
              std::move(spec),
              Predicate::accept_all("-"),  // no IMPL_REJ transition exists
              std::move(action)};
}

PfsmOutcome Pfsm::evaluate(const Object& o, bool with_description) const {
  PfsmOutcome out;
  if (with_description) out.object_description = o.describe();
  if (spec_.accepts(o)) {
    out.path = {PfsmTransition::kSpecAccept};
    out.final_state = PfsmState::kAccept;
    out.result = PfsmResult::kSecureAccept;
    return out;
  }
  out.path.push_back(PfsmTransition::kSpecReject);
  if (impl_.accepts(o)) {
    out.path.push_back(PfsmTransition::kImplAccept);
    out.final_state = PfsmState::kAccept;
    out.result = PfsmResult::kHiddenAccept;
  } else {
    out.path.push_back(PfsmTransition::kImplReject);
    out.final_state = PfsmState::kReject;
    out.result = PfsmResult::kFoiled;
  }
  return out;
}

bool Pfsm::hidden_path_for(const Object& o) const {
  return !spec_.accepts(o) && impl_.accepts(o);
}

}  // namespace dfsm::core
