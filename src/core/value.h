// value.h — variant-typed values and attributed objects that flow through
// pFSMs.
//
// The paper's pFSM (Figure 2) expresses "a predicate for accepting an input
// object". Objects in the studied vulnerabilities are heterogeneous: text
// strings (str_x, str_i in Sendmail #3163), signed integers (the array index
// x), memory addresses (addr_setuid, addr_free), filenames (xterm, rwall,
// IIS) and raw byte buffers (HTTP POST bodies). `Value` is a small closed
// variant over those shapes; `Object` attaches a name plus a free-form
// attribute map so predicates can inspect derived facts (e.g. the *length*
// of an input, or whether a GOT entry is *unchanged* since load).
#ifndef DFSM_CORE_VALUE_H
#define DFSM_CORE_VALUE_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace dfsm::core {

/// Raw byte buffer (e.g. an HTTP POST body or a crafted heap payload).
using Bytes = std::vector<std::uint8_t>;

/// A closed variant over the value shapes observed in the studied
/// vulnerability reports. `std::monostate` denotes "no value" (an object
/// that exists only as a named entity, e.g. "the GOT entry of setuid()").
using Value = std::variant<std::monostate, bool, std::int64_t, std::uint64_t,
                           double, std::string, Bytes>;

/// Human-readable rendering of a Value ("<none>", "true", "42", "0x2a",
/// quoted strings, "bytes[12]").
[[nodiscard]] std::string to_string(const Value& v);

/// True if two values are of the same alternative and compare equal.
[[nodiscard]] bool value_equal(const Value& a, const Value& b);

/// An attributed, named object — the thing a pFSM accepts or rejects.
///
/// Invariant: `name` is non-empty (enforced by the constructors); attribute
/// keys are non-empty.
class Object {
 public:
  /// Creates an object with no payload value (named entity only).
  explicit Object(std::string name);

  /// Creates an object carrying a payload value.
  Object(std::string name, Value value);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Value& value() const noexcept { return value_; }

  void set_value(Value v) { value_ = std::move(v); }

  /// Sets (or replaces) a named attribute. Returns *this for chaining, so
  /// models read naturally:
  ///   Object{"input"}.with("length", std::int64_t{1400})
  Object& with(const std::string& key, Value v);

  /// Attribute lookup; std::nullopt when absent.
  [[nodiscard]] std::optional<Value> attr(const std::string& key) const;

  /// True when the attribute exists.
  [[nodiscard]] bool has_attr(const std::string& key) const;

  /// Typed attribute accessors. They return std::nullopt when the attribute
  /// is absent *or* holds a different alternative — predicates treat a
  /// missing fact as "cannot establish", never as a crash.
  [[nodiscard]] std::optional<std::int64_t> attr_int(const std::string& key) const;
  [[nodiscard]] std::optional<std::uint64_t> attr_uint(const std::string& key) const;
  [[nodiscard]] std::optional<bool> attr_bool(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> attr_string(const std::string& key) const;

  /// Typed payload accessors with the same missing/mismatch semantics.
  [[nodiscard]] std::optional<std::int64_t> as_int() const;
  [[nodiscard]] std::optional<std::uint64_t> as_uint() const;
  [[nodiscard]] std::optional<std::string> as_string() const;
  [[nodiscard]] std::optional<bool> as_bool() const;

  [[nodiscard]] const std::map<std::string, Value>& attrs() const noexcept {
    return attrs_;
  }

  /// "name=value {k1=v1, k2=v2}" — used in traces and witness reports.
  [[nodiscard]] std::string describe() const;

 private:
  std::string name_;
  Value value_;
  std::map<std::string, Value> attrs_;
};

}  // namespace dfsm::core

#endif  // DFSM_CORE_VALUE_H
