#include "core/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dfsm::core {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable requires at least one column");
  }
}

TextTable& TextTable::title(std::string t) {
  title_ = std::move(t);
  return *this;
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable row has " + std::to_string(cells.size()) +
                                " cells; expected " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << " | ";
      os << row[c];
      if (c + 1 < row.size()) os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  std::ostringstream os;
  if (!title_.empty()) {
    os << title_ << '\n' << std::string(title_.size(), '=') << '\n';
  }
  emit_row(os, headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

std::string pct(double numerator, double denominator, int decimals) {
  if (denominator == 0.0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals,
                100.0 * numerator / denominator);
  return buf;
}

}  // namespace dfsm::core
