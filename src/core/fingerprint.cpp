#include "core/fingerprint.h"

namespace dfsm::core {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

Fingerprinter& Fingerprinter::mix(std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xffu;
    hash_ *= kFnvPrime;
  }
  return *this;
}

Fingerprinter& Fingerprinter::mix(std::string_view s) noexcept {
  mix(static_cast<std::uint64_t>(s.size()));
  for (const char c : s) {
    hash_ ^= static_cast<unsigned char>(c);
    hash_ *= kFnvPrime;
  }
  return *this;
}

Fingerprinter& Fingerprinter::mix_striped(std::string_view s) noexcept {
  constexpr std::uint64_t kOffset = 14695981039346656037ull;
  std::uint64_t lane[8] = {kOffset, kOffset, kOffset, kOffset,
                           kOffset, kOffset, kOffset, kOffset};
  const auto* p = reinterpret_cast<const unsigned char*>(s.data());
  std::size_t i = 0;
  for (; i + 8 <= s.size(); i += 8) {
    // Eight independent xor-multiply chains: the serial-latency bound of
    // plain FNV-1a becomes a throughput bound here.
    lane[0] = (lane[0] ^ p[i + 0]) * kFnvPrime;
    lane[1] = (lane[1] ^ p[i + 1]) * kFnvPrime;
    lane[2] = (lane[2] ^ p[i + 2]) * kFnvPrime;
    lane[3] = (lane[3] ^ p[i + 3]) * kFnvPrime;
    lane[4] = (lane[4] ^ p[i + 4]) * kFnvPrime;
    lane[5] = (lane[5] ^ p[i + 5]) * kFnvPrime;
    lane[6] = (lane[6] ^ p[i + 6]) * kFnvPrime;
    lane[7] = (lane[7] ^ p[i + 7]) * kFnvPrime;
  }
  for (; i < s.size(); ++i) {
    lane[i & 7] = (lane[i & 7] ^ p[i]) * kFnvPrime;
  }
  mix(static_cast<std::uint64_t>(s.size()));
  for (const std::uint64_t l : lane) mix(l);
  return *this;
}

std::uint64_t fingerprint(const Pfsm& pfsm) noexcept {
  Fingerprinter fp;
  fp.mix(pfsm.name())
      .mix(static_cast<std::uint64_t>(pfsm.type()))
      .mix(pfsm.activity())
      .mix(pfsm.spec().description())
      .mix(static_cast<std::uint64_t>(pfsm.spec().kind()))
      .mix(pfsm.impl().description())
      .mix(static_cast<std::uint64_t>(pfsm.impl().kind()))
      .mix(pfsm.action())
      .mix(static_cast<std::uint64_t>(pfsm.declared_secure() ? 1 : 0));
  return fp.digest();
}

std::uint64_t fingerprint(const Operation& op) noexcept {
  Fingerprinter fp;
  fp.mix(op.name())
      .mix(op.object_description())
      .mix(static_cast<std::uint64_t>(op.pfsms().size()));
  for (const auto& pfsm : op.pfsms()) fp.mix(fingerprint(pfsm));
  return fp.digest();
}

std::uint64_t fingerprint(const ExploitChain& chain) noexcept {
  Fingerprinter fp;
  fp.mix(chain.name()).mix(static_cast<std::uint64_t>(chain.size()));
  for (std::size_t i = 0; i < chain.size(); ++i) {
    fp.mix(fingerprint(chain.operations()[i]));
    if (i < chain.gates().size()) fp.mix(chain.gates()[i].condition);
  }
  return fp.digest();
}

std::uint64_t fingerprint(const FsmModel& model) noexcept {
  Fingerprinter fp;
  fp.mix(model.name())
      .mix(model.vulnerability_class())
      .mix(model.software())
      .mix(model.consequence())
      .mix(static_cast<std::uint64_t>(model.bugtraq_ids().size()));
  for (const int id : model.bugtraq_ids()) {
    fp.mix(static_cast<std::uint64_t>(id));
  }
  fp.mix(fingerprint(model.chain()));
  return fp.digest();
}

}  // namespace dfsm::core
