#include "core/operation.h"

#include <stdexcept>

namespace dfsm::core {

bool OperationResult::completed() const {
  if (outcomes.empty()) return false;
  for (const auto& o : outcomes) {
    if (!o.accepted()) return false;
  }
  return true;
}

bool OperationResult::violated() const {
  for (const auto& o : outcomes) {
    if (o.hidden_path_taken()) return true;
  }
  return false;
}

std::optional<std::size_t> OperationResult::foiled_at() const {
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].final_state == PfsmState::kReject) return i;
  }
  return std::nullopt;
}

Operation::Operation(std::string name, std::string object_description)
    : name_(std::move(name)),
      object_description_(std::move(object_description)) {
  if (name_.empty()) throw std::invalid_argument("Operation requires a non-empty name");
}

Operation& Operation::add(Pfsm pfsm) {
  pfsms_.push_back(std::move(pfsm));
  transforms_.push_back(std::nullopt);
  return *this;
}

Operation& Operation::add(Pfsm pfsm, ObjectTransform transform_to_next) {
  pfsms_.push_back(std::move(pfsm));
  transforms_.push_back(std::move(transform_to_next));
  return *this;
}

OperationResult Operation::evaluate(const std::vector<Object>& objects,
                                    bool with_descriptions) const {
  if (pfsms_.empty()) throw std::invalid_argument("Operation '" + name_ + "' has no pFSMs");
  if (objects.size() != pfsms_.size()) {
    throw std::invalid_argument("Operation '" + name_ + "' expects " +
                                std::to_string(pfsms_.size()) + " objects, got " +
                                std::to_string(objects.size()));
  }
  OperationResult result;
  result.operation_name = name_;
  result.outcomes.reserve(pfsms_.size());
  for (std::size_t i = 0; i < pfsms_.size(); ++i) {
    result.outcomes.push_back(pfsms_[i].evaluate(objects[i], with_descriptions));
    if (!result.outcomes.back().accepted()) break;  // serial chain: foiled
  }
  return result;
}

OperationResult Operation::flow(const Object& start) const {
  if (pfsms_.empty()) throw std::invalid_argument("Operation '" + name_ + "' has no pFSMs");
  OperationResult result;
  result.operation_name = name_;
  result.outcomes.reserve(pfsms_.size());
  Object current = start;
  for (std::size_t i = 0; i < pfsms_.size(); ++i) {
    result.outcomes.push_back(pfsms_[i].evaluate(current));
    if (!result.outcomes.back().accepted()) break;
    if (i + 1 < pfsms_.size() && transforms_[i]) {
      current = (*transforms_[i])(current);
    }
  }
  return result;
}

}  // namespace dfsm::core
