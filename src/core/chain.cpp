#include "core/chain.h"

#include <stdexcept>

namespace dfsm::core {

bool ChainResult::exploited() const {
  return completed() && hidden_path_count() > 0;
}

bool ChainResult::completed() const {
  if (operations.empty() || foiled_at_operation.has_value()) return false;
  for (const auto& op : operations) {
    if (!op.completed()) return false;
  }
  return true;
}

std::size_t ChainResult::hidden_path_count() const {
  std::size_t n = 0;
  for (const auto& op : operations) {
    for (const auto& o : op.outcomes) {
      if (o.hidden_path_taken()) ++n;
    }
  }
  return n;
}

ExploitChain::ExploitChain(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw std::invalid_argument("ExploitChain requires a non-empty name");
}

ExploitChain& ExploitChain::add(Operation op, PropagationGate gate_after) {
  for (const auto& existing : operations_) {
    if (existing.name() == op.name()) {
      throw std::invalid_argument("ExploitChain '" + name_ +
                                  "' already has an operation named '" +
                                  op.name() + "'");
    }
  }
  operations_.push_back(std::move(op));
  gates_.push_back(std::move(gate_after));
  return *this;
}

ChainResult ExploitChain::evaluate(
    const std::vector<std::vector<Object>>& inputs) const {
  if (operations_.empty()) {
    throw std::invalid_argument("ExploitChain '" + name_ + "' has no operations");
  }
  if (inputs.size() != operations_.size()) {
    throw std::invalid_argument("ExploitChain '" + name_ + "' expects " +
                                std::to_string(operations_.size()) +
                                " input vectors, got " +
                                std::to_string(inputs.size()));
  }
  ChainResult result;
  result.chain_name = name_;
  for (std::size_t i = 0; i < operations_.size(); ++i) {
    result.operations.push_back(operations_[i].evaluate(inputs[i]));
    if (!result.operations.back().completed()) {
      result.foiled_at_operation = i;
      break;  // the gate after operation i never fires
    }
  }
  return result;
}

ChainResult ExploitChain::flow(const std::vector<Object>& starts) const {
  if (operations_.empty()) {
    throw std::invalid_argument("ExploitChain '" + name_ + "' has no operations");
  }
  if (starts.size() != operations_.size()) {
    throw std::invalid_argument("ExploitChain '" + name_ + "' expects " +
                                std::to_string(operations_.size()) +
                                " starting objects, got " +
                                std::to_string(starts.size()));
  }
  ChainResult result;
  result.chain_name = name_;
  for (std::size_t i = 0; i < operations_.size(); ++i) {
    result.operations.push_back(operations_[i].flow(starts[i]));
    if (!result.operations.back().completed()) {
      result.foiled_at_operation = i;
      break;
    }
  }
  return result;
}

}  // namespace dfsm::core
