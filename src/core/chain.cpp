#include "core/chain.h"

#include <stdexcept>

#include "runtime/parallel.h"

namespace dfsm::core {

namespace {

std::size_t count_hidden_paths(const std::vector<OperationResult>& operations) {
  std::size_t n = 0;
  for (const auto& op : operations) {
    for (const auto& o : op.outcomes) {
      if (o.hidden_path_taken()) ++n;
    }
  }
  return n;
}

}  // namespace

bool ChainResult::exploited() const {
  return completed() && hidden_path_count() > 0;
}

bool ChainResult::completed() const {
  if (operations.empty() || foiled_at_operation.has_value()) return false;
  for (const auto& op : operations) {
    if (!op.completed()) return false;
  }
  return true;
}

std::size_t ChainResult::hidden_path_count() const {
  if (cached_hidden_paths) return *cached_hidden_paths;
  return count_hidden_paths(operations);
}

ExploitChain::ExploitChain(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw std::invalid_argument("ExploitChain requires a non-empty name");
}

ExploitChain& ExploitChain::add(Operation op, PropagationGate gate_after) {
  if (!operation_names_.insert(op.name()).second) {
    throw std::invalid_argument("ExploitChain '" + name_ +
                                "' already has an operation named '" +
                                op.name() + "'");
  }
  operations_.push_back(std::move(op));
  gates_.push_back(std::move(gate_after));
  return *this;
}

ChainResult ExploitChain::evaluate(
    const std::vector<std::vector<Object>>& inputs,
    bool with_descriptions) const {
  if (operations_.empty()) {
    throw std::invalid_argument("ExploitChain '" + name_ + "' has no operations");
  }
  if (inputs.size() != operations_.size()) {
    throw std::invalid_argument("ExploitChain '" + name_ + "' expects " +
                                std::to_string(operations_.size()) +
                                " input vectors, got " +
                                std::to_string(inputs.size()));
  }
  ChainResult result;
  result.chain_name = name_;
  result.operations.reserve(operations_.size());
  std::size_t hidden = 0;
  for (std::size_t i = 0; i < operations_.size(); ++i) {
    result.operations.push_back(operations_[i].evaluate(inputs[i], with_descriptions));
    for (const auto& o : result.operations.back().outcomes) {
      if (o.hidden_path_taken()) ++hidden;
    }
    if (!result.operations.back().completed()) {
      result.foiled_at_operation = i;
      break;  // the gate after operation i never fires
    }
  }
  result.cached_hidden_paths = hidden;
  return result;
}

ChainResult ExploitChain::flow(const std::vector<Object>& starts) const {
  if (operations_.empty()) {
    throw std::invalid_argument("ExploitChain '" + name_ + "' has no operations");
  }
  if (starts.size() != operations_.size()) {
    throw std::invalid_argument("ExploitChain '" + name_ + "' expects " +
                                std::to_string(operations_.size()) +
                                " starting objects, got " +
                                std::to_string(starts.size()));
  }
  ChainResult result;
  result.chain_name = name_;
  result.operations.reserve(operations_.size());
  std::size_t hidden = 0;
  for (std::size_t i = 0; i < operations_.size(); ++i) {
    result.operations.push_back(operations_[i].flow(starts[i]));
    for (const auto& o : result.operations.back().outcomes) {
      if (o.hidden_path_taken()) ++hidden;
    }
    if (!result.operations.back().completed()) {
      result.foiled_at_operation = i;
      break;
    }
  }
  result.cached_hidden_paths = hidden;
  return result;
}

std::vector<ChainResult> ExploitChain::evaluate_batch(
    const std::vector<std::vector<std::vector<Object>>>& input_sets) const {
  return runtime::parallel_map<ChainResult>(
      input_sets.size(), [&](std::size_t i) { return evaluate(input_sets[i]); });
}

std::vector<ChainResult> ExploitChain::flow_batch(
    const std::vector<std::vector<Object>>& start_sets) const {
  return runtime::parallel_map<ChainResult>(
      start_sets.size(), [&](std::size_t i) { return flow(start_sets[i]); });
}

}  // namespace dfsm::core
