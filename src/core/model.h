// model.h — a complete FSM model of one vulnerability (paper Figures 3-7)
// plus a registry used by the Table 2 / Figure 8 generators.
//
// An FsmModel bundles the exploit chain with the report metadata the paper
// attaches to each case study: the Bugtraq id(s), the vulnerability class,
// the software, and the final consequence. It also answers the structural
// queries behind Table 2 ("which pFSMs of which generic type appear in
// which vulnerability?") and Figure 8 (type census across all models).
#ifndef DFSM_CORE_MODEL_H
#define DFSM_CORE_MODEL_H

#include <array>
#include <map>
#include <string>
#include <vector>

#include "core/chain.h"

namespace dfsm::core {

/// One row fragment of Table 2: a pFSM, its type, and the question-form
/// predicate description (e.g. "Is the integer in the interval [0,100]?").
struct PfsmSummary {
  std::string model_name;
  std::string operation_name;
  std::string pfsm_name;
  PfsmType type = PfsmType::kContentAttributeCheck;
  std::string question;        ///< spec predicate, question form
  bool declared_secure = false;
};

/// A fully assembled vulnerability model.
class FsmModel {
 public:
  FsmModel(std::string name, std::vector<int> bugtraq_ids,
           std::string vulnerability_class, std::string software,
           std::string consequence, ExploitChain chain);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<int>& bugtraq_ids() const noexcept {
    return bugtraq_ids_;
  }
  [[nodiscard]] const std::string& vulnerability_class() const noexcept {
    return vulnerability_class_;
  }
  [[nodiscard]] const std::string& software() const noexcept { return software_; }
  [[nodiscard]] const std::string& consequence() const noexcept {
    return consequence_;
  }
  [[nodiscard]] const ExploitChain& chain() const noexcept { return chain_; }

  /// Total number of pFSMs across all operations.
  [[nodiscard]] std::size_t pfsm_count() const;

  /// Flattened per-pFSM summaries (Table 2 rows).
  [[nodiscard]] std::vector<PfsmSummary> summaries() const;

  /// Count of pFSMs per generic type, indexed by PfsmType cast to size_t.
  [[nodiscard]] std::array<std::size_t, 3> type_census() const;

  /// Number of pFSMs whose implementation was declared secure vs
  /// vulnerable (structural declaration; see Pfsm::declared_secure()).
  [[nodiscard]] std::size_t declared_vulnerable_count() const;

 private:
  std::string name_;
  std::vector<int> bugtraq_ids_;
  std::string vulnerability_class_;
  std::string software_;
  std::string consequence_;
  ExploitChain chain_;
};

/// Aggregated type census over a set of models (Figure 8 / §6).
struct TypeCensus {
  std::array<std::size_t, 3> counts{};  // indexed by PfsmType
  std::size_t total = 0;

  [[nodiscard]] std::size_t of(PfsmType t) const {
    return counts[static_cast<std::size_t>(t)];
  }
};

[[nodiscard]] TypeCensus census(const std::vector<FsmModel>& models);

}  // namespace dfsm::core

#endif  // DFSM_CORE_MODEL_H
