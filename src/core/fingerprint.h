// fingerprint.h — structural identity fingerprints for the model layer.
//
// Predicates are opaque callables, so two pFSMs can only be compared by
// their declared structure: name, Figure-8 type, activity text, the
// spec/impl predicate descriptions plus their construction provenance
// (PredicateKind), the accept action, and the declared_secure bit — the
// same identity contract the static linter's IR snapshot uses. The
// fingerprint of an operation (and transitively of a chain) is a pure
// function of that structure: it changes exactly when the operation's
// pFSM set changes, which is what the cross-sweep memo store keys its
// invalidation on (analysis::SweepMemoStore, DESIGN.md §11).
//
// The hash is 64-bit FNV-1a over a length-delimited field stream, so
// concatenation ambiguities ("ab"+"c" vs "a"+"bc") cannot alias. A
// fingerprint is an INVALIDATION token, not an identity proof — any
// store keyed by it must also compare full keys (see MemoKey).
#ifndef DFSM_CORE_FINGERPRINT_H
#define DFSM_CORE_FINGERPRINT_H

#include <cstdint>
#include <string_view>

#include "core/chain.h"
#include "core/model.h"
#include "core/operation.h"
#include "core/pfsm.h"

namespace dfsm::core {

/// Incremental 64-bit FNV-1a over length-delimited fields.
class Fingerprinter {
 public:
  /// Mixes an integral field (8 bytes, little-endian).
  Fingerprinter& mix(std::uint64_t v) noexcept;

  /// Mixes a string field as its length followed by its bytes.
  Fingerprinter& mix(std::string_view s) noexcept;

  /// Bulk-payload variant of mix(string_view): eight interleaved FNV-1a
  /// lanes (lane j hashes bytes j, j+8, j+16, ...) folded into the
  /// running hash as the payload length followed by the eight lane
  /// digests. Detection strength per byte matches mix() — every byte
  /// feeds exactly one full FNV-1a chain — but the eight independent
  /// multiply chains pipeline where the single mix() chain serializes,
  /// so bulk throughput is ~5x. This is a DIFFERENT function than
  /// mix(s): pick one per field and stick with it (the corpus snapshot
  /// column checksums, colsnap.h, are striped).
  Fingerprinter& mix_striped(std::string_view s) noexcept;

  [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;  // FNV offset basis
};

/// Structural fingerprint of one pFSM (name, type, activity, spec/impl
/// descriptions + kinds, action, declared_secure).
[[nodiscard]] std::uint64_t fingerprint(const Pfsm& pfsm) noexcept;

/// Structural fingerprint of an operation: its name, object description,
/// and the ordered fingerprints of its pFSMs. Changes iff the operation's
/// declared check set changes.
[[nodiscard]] std::uint64_t fingerprint(const Operation& op) noexcept;

/// Structural fingerprint of a whole chain: name, then each operation's
/// fingerprint interleaved with its propagation-gate condition.
[[nodiscard]] std::uint64_t fingerprint(const ExploitChain& chain) noexcept;

/// Structural fingerprint of a model: metadata plus its chain.
[[nodiscard]] std::uint64_t fingerprint(const FsmModel& model) noexcept;

}  // namespace dfsm::core

#endif  // DFSM_CORE_FINGERPRINT_H
