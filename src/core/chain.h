// chain.h — cascading operations into the full exploit FSM via propagation
// gates (paper §4 step 3, Figures 3/4).
//
// "Exploiting a vulnerability involves multiple vulnerable operations on
// several objects" (Observation 2). A propagation gate (the triangle
// between FSMs in the figures) depicts causality: exploiting operation k
// is the precondition of exploiting operation k+1; the final gate names the
// consequence ("Execute Mcode", "Tom appends his own data to /etc/passwd").
//
// The Lemma's second statement is a property of this structure: to foil an
// exploit consisting of a sequence of vulnerable operations, it is
// sufficient to ensure security of ONE of the operations in the sequence.
// ChainResult exposes exactly the facts needed to check that mechanically
// (see analysis::ChainAnalyzer).
#ifndef DFSM_CORE_CHAIN_H
#define DFSM_CORE_CHAIN_H

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/operation.h"

namespace dfsm::core {

/// The triangle between operations: names the causal precondition that the
/// upstream operation's exploitation establishes for the downstream one
/// (e.g. ".GOT entry of setuid() points to Mcode").
struct PropagationGate {
  std::string condition;
};

/// Result of driving concrete inputs through an exploit chain.
struct ChainResult {
  std::string chain_name;
  std::vector<OperationResult> operations;  ///< one per operation reached
  std::optional<std::size_t> foiled_at_operation;

  /// Hidden-path total, filled in by ExploitChain::evaluate/flow while
  /// the outcomes are walked. Hand-built results may leave it empty;
  /// hidden_path_count() then recomputes from `operations`.
  std::optional<std::size_t> cached_hidden_paths;

  /// The exploit succeeded: every operation completed AND at least one
  /// hidden path was traversed somewhere (a chain of purely SPEC_ACPT
  /// transitions is benign traffic, not an exploit).
  [[nodiscard]] bool exploited() const;

  /// Every operation completed (benign or not).
  [[nodiscard]] bool completed() const;

  /// Total hidden-path traversals across all operations (O(1) when the
  /// evaluator cached it).
  [[nodiscard]] std::size_t hidden_path_count() const;
};

/// An ordered cascade of operations joined by propagation gates, plus the
/// final consequence gate.
///
/// Invariant: gates_.size() == operations_.size() once finalized — gate k
/// sits *after* operation k (the last gate carries the attack consequence).
class ExploitChain {
 public:
  explicit ExploitChain(std::string name);

  /// Appends an operation and the gate that follows it. Throws
  /// std::invalid_argument if an operation with the same name is already
  /// in the chain (names locate findings in the static linter, so they
  /// must be unique per chain).
  ExploitChain& add(Operation op, PropagationGate gate_after);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Operation>& operations() const noexcept {
    return operations_;
  }
  [[nodiscard]] const std::vector<PropagationGate>& gates() const noexcept {
    return gates_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return operations_.size(); }

  /// Evaluates each operation with its own object vector (outer index =
  /// operation, inner = pFSM within it). Evaluation stops at the first
  /// foiled operation: its propagation gate never fires, so downstream
  /// operations are not reached (Lemma statement 2).
  /// Throws std::invalid_argument on arity mismatch or an empty chain.
  /// `with_descriptions` false skips the outcomes' object_description
  /// rendering (Pfsm::evaluate) — the walk itself is unchanged.
  [[nodiscard]] ChainResult evaluate(
      const std::vector<std::vector<Object>>& inputs,
      bool with_descriptions = true) const;

  /// Flow variant: one starting object per operation.
  [[nodiscard]] ChainResult flow(const std::vector<Object>& starts) const;

  /// Evaluates many input sets at once, fanned out over the parallel
  /// runtime in deterministic static partitions: out[i] ==
  /// evaluate(input_sets[i]) at every DFSM_THREADS setting, and the
  /// lowest-index exception propagates. The batch form is the hot path
  /// for Lemma sweeps and discovery campaigns, where one chain is
  /// driven by thousands of candidate input sets.
  [[nodiscard]] std::vector<ChainResult> evaluate_batch(
      const std::vector<std::vector<std::vector<Object>>>& input_sets) const;

  /// Batch flow: out[i] == flow(start_sets[i]), same contract as
  /// evaluate_batch.
  [[nodiscard]] std::vector<ChainResult> flow_batch(
      const std::vector<std::vector<Object>>& start_sets) const;

 private:
  std::string name_;
  std::vector<Operation> operations_;
  std::vector<PropagationGate> gates_;
  /// Side index over operation names: keeps add()'s duplicate check
  /// O(log n) so building wide synthetic chains stays linear overall.
  std::set<std::string> operation_names_;
};

}  // namespace dfsm::core

#endif  // DFSM_CORE_CHAIN_H
