// predicate.h — named security predicates, evaluated first against the
// *specification* and then against the *implementation* (paper §4,
// Observation 3).
//
// The paper derives, for each elementary activity, a predicate which — if
// violated — results in a security vulnerability. A pFSM carries two
// predicates over the same object: what the specification demands
// (`spec`), and what the implementation actually enforces (`impl`). The
// vulnerability is precisely the set of objects on which they disagree
// with impl more permissive: { o : !spec(o) && impl(o) } — the "hidden
// path" of Figure 2.
#ifndef DFSM_CORE_PREDICATE_H
#define DFSM_CORE_PREDICATE_H

#include <functional>
#include <stdexcept>
#include <string>

#include "core/value.h"

namespace dfsm::core {

/// Verdict of evaluating a predicate on one object.
enum class Verdict {
  kAccept,  ///< the predicate holds: the object is considered secure
  kReject,  ///< the predicate fails: the object must be rejected
};

[[nodiscard]] constexpr const char* to_string(Verdict v) noexcept {
  return v == Verdict::kAccept ? "ACCEPT" : "REJECT";
}

/// How a predicate was constructed. The static linter (src/staticlint/)
/// reads this to reason about predicates without evaluating them: an
/// accept-all implementation is the "no check exists" pattern, a
/// reject-all pair forms an operation that foils every object by
/// construction.
enum class PredicateKind {
  kCustom,     ///< arbitrary user-supplied callable
  kAcceptAll,  ///< built by accept_all(): accepts every object
  kRejectAll,  ///< built by reject_all(): rejects every object
};

[[nodiscard]] constexpr const char* to_string(PredicateKind k) noexcept {
  switch (k) {
    case PredicateKind::kCustom: return "custom";
    case PredicateKind::kAcceptAll: return "accept-all";
    case PredicateKind::kRejectAll: return "reject-all";
  }
  return "?";
}

/// A named boolean predicate over objects.
///
/// Invariant: `fn` is callable (checked at construction). The description
/// is what appears on FSM transition labels, so keep it in the paper's
/// Condition♦Action style (e.g. "0 <= x <= 100").
class Predicate {
 public:
  using Fn = std::function<bool(const Object&)>;

  Predicate(std::string description, Fn fn)
      : description_(std::move(description)), fn_(std::move(fn)) {
    if (!fn_) throw std::invalid_argument("Predicate requires a callable");
  }

  [[nodiscard]] const std::string& description() const noexcept {
    return description_;
  }

  /// Construction provenance (accept_all / reject_all / custom). Purely
  /// structural metadata: two kCustom predicates may still be
  /// extensionally equal.
  [[nodiscard]] PredicateKind kind() const noexcept { return kind_; }

  /// Evaluates the predicate; true means "accept the object".
  [[nodiscard]] bool accepts(const Object& o) const { return fn_(o); }

  [[nodiscard]] Verdict verdict(const Object& o) const {
    return accepts(o) ? Verdict::kAccept : Verdict::kReject;
  }

  /// A predicate that accepts every object. This models the common failure
  /// mode in the data: the implementation performs *no* check at all (e.g.
  /// Sendmail never validates str_x; rwalld never checks the file type).
  [[nodiscard]] static Predicate accept_all(std::string description = "-");

  /// A predicate that rejects every object.
  [[nodiscard]] static Predicate reject_all(std::string description = "reject all");

  /// Conjunction/disjunction/negation combinators. Descriptions compose
  /// as "(a && b)" etc. so rendered models stay readable.
  [[nodiscard]] Predicate operator&&(const Predicate& rhs) const;
  [[nodiscard]] Predicate operator||(const Predicate& rhs) const;
  [[nodiscard]] Predicate operator!() const;

 private:
  std::string description_;
  Fn fn_;
  PredicateKind kind_ = PredicateKind::kCustom;
};

}  // namespace dfsm::core

#endif  // DFSM_CORE_PREDICATE_H
