// pfsm.h — the primitive FSM of the paper (Figure 2) and its three generic
// types (Figure 8).
//
// A pFSM has three states and four transitions:
//
//                 SPEC_REJ                IMPL_REJ (expected behaviour)
//   [SPEC check] ----------> [Reject] --------------> (exploit foiled)
//        |                      |
//        | SPEC_ACPT            | IMPL_ACPT  (dotted "hidden path" —
//        v                      v             THE vulnerability)
//     [Accept] <----------------+
//
// The SPEC_ACPT / SPEC_REJ pair depicts the *specification* predicate for
// accepting / rejecting objects. IMPL_REJ is the condition under which the
// implementation rejects what should be rejected — the correct behaviour.
// IMPL_ACPT is the hidden path: an object the specification rejects is
// nevertheless accepted by the implementation.
//
// A pFSM is *vulnerable* when its hidden path is non-empty, i.e. there
// exists an object with !spec(o) && impl(o). Evaluating a concrete object
// walks the machine and reports which transitions fired.
#ifndef DFSM_CORE_PFSM_H
#define DFSM_CORE_PFSM_H

#include <string>
#include <vector>

#include "core/predicate.h"
#include "core/value.h"

namespace dfsm::core {

/// The three states of Figure 2.
enum class PfsmState {
  kSpecCheck,  ///< object is being checked against the specification
  kReject,     ///< the specification rejects the object
  kAccept,     ///< the object is considered secure / the activity proceeds
};

[[nodiscard]] const char* to_string(PfsmState s) noexcept;

/// The four transitions of Figure 2.
enum class PfsmTransition {
  kSpecAccept,  ///< SPEC_ACPT: specification accepts the object
  kSpecReject,  ///< SPEC_REJ: specification rejects the object
  kImplReject,  ///< IMPL_REJ: implementation also rejects — exploit foiled
  kImplAccept,  ///< IMPL_ACPT: hidden path — implementation accepts anyway
};

[[nodiscard]] const char* to_string(PfsmTransition t) noexcept;

/// The three generic pFSM types of Figure 8 / Table 2.
enum class PfsmType {
  /// Verify the input object is of the type the operation is defined on
  /// (e.g. "does the input represent a long integer?", "is the target file
  /// a terminal?").
  kObjectTypeCheck,
  /// Verify the content and attributes of the object meet the security
  /// guarantee (e.g. "is the integer in [0,100]?", "contentLen >= 0?",
  /// "does the filename contain ../?").
  kContentAttributeCheck,
  /// Verify the binding between an object and its reference is preserved
  /// between check time and use time (e.g. "is the GOT entry of setuid()
  /// unchanged?", "are free-chunk links unchanged?", "is the return
  /// address unchanged?").
  kReferenceConsistencyCheck,
};

[[nodiscard]] const char* to_string(PfsmType t) noexcept;

/// How an evaluated object left the machine.
enum class PfsmResult {
  kSecureAccept,  ///< SPEC_ACPT: benign object, accepted
  kFoiled,        ///< SPEC_REJ then IMPL_REJ: attack stopped here
  kHiddenAccept,  ///< SPEC_REJ then IMPL_ACPT: vulnerability exercised
};

[[nodiscard]] const char* to_string(PfsmResult r) noexcept;

/// Result of walking one object through one pFSM.
struct PfsmOutcome {
  PfsmResult result = PfsmResult::kSecureAccept;
  PfsmState final_state = PfsmState::kAccept;
  std::vector<PfsmTransition> path;  ///< transitions taken, in order
  std::string object_description;   ///< Object::describe() snapshot

  /// The object ended in the accept state (via either SPEC_ACPT or the
  /// hidden path) and the modeled activity therefore proceeds.
  [[nodiscard]] bool accepted() const noexcept {
    return final_state == PfsmState::kAccept;
  }
  /// The hidden IMPL_ACPT transition fired — a predicate violation.
  [[nodiscard]] bool hidden_path_taken() const noexcept {
    return result == PfsmResult::kHiddenAccept;
  }
};

/// The primitive finite state machine: one elementary activity, one
/// predicate, checked against specification then implementation.
///
/// Invariants: non-empty name; predicates callable (guaranteed by
/// Predicate).
class Pfsm {
 public:
  /// @param name       short identifier, e.g. "pFSM2"
  /// @param type       Figure 8 classification
  /// @param activity   the elementary activity modeled, e.g.
  ///                   "write i to tTvect[x]"
  /// @param spec       the specification predicate (what *should* be
  ///                   accepted)
  /// @param impl       the implementation predicate (what the code
  ///                   *actually* accepts)
  /// @param action     the Action half of the Condition♦Action accept
  ///                   label, e.g. "tTvect[x] = i"
  Pfsm(std::string name, PfsmType type, std::string activity, Predicate spec,
       Predicate impl, std::string action = "");

  /// Convenience: a correctly-implemented pFSM (impl == spec), i.e. the
  /// IMPL_ACPT hidden path is empty by construction.
  [[nodiscard]] static Pfsm secure(std::string name, PfsmType type,
                                   std::string activity, Predicate spec,
                                   std::string action = "");

  /// Convenience: an implementation that performs *no* check at all
  /// (impl = accept-all). This is the dominant pattern in the data: the
  /// IMPL_REJ transition is simply absent (marked "?" in the paper's
  /// figures).
  [[nodiscard]] static Pfsm unchecked(std::string name, PfsmType type,
                                      std::string activity, Predicate spec,
                                      std::string action = "");

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] PfsmType type() const noexcept { return type_; }
  [[nodiscard]] const std::string& activity() const noexcept { return activity_; }
  [[nodiscard]] const Predicate& spec() const noexcept { return spec_; }
  [[nodiscard]] const Predicate& impl() const noexcept { return impl_; }
  [[nodiscard]] const std::string& action() const noexcept { return action_; }

  /// Walks the object through the machine (Figure 2 semantics):
  ///  - spec accepts           -> SPEC_ACPT -> Accept        (kSecureAccept)
  ///  - spec rejects, impl too -> SPEC_REJ, IMPL_REJ -> Reject (kFoiled)
  ///  - spec rejects, impl not -> SPEC_REJ, IMPL_ACPT -> Accept
  ///                                                   (kHiddenAccept)
  /// `with_description` false skips rendering the outcome's
  /// object_description (the one allocation-heavy field) for callers
  /// that only consume the walk — e.g. violations-only monitoring; the
  /// transition path and result are identical either way.
  [[nodiscard]] PfsmOutcome evaluate(const Object& o,
                                     bool with_description = true) const;

  /// True iff this concrete object would traverse the hidden path.
  [[nodiscard]] bool hidden_path_for(const Object& o) const;

  /// True iff impl == spec was declared via secure(); a structural claim,
  /// not a semantic proof (use analysis::HiddenPathDetector for evidence
  /// over a domain).
  [[nodiscard]] bool declared_secure() const noexcept { return declared_secure_; }

 private:
  std::string name_;
  PfsmType type_;
  std::string activity_;
  Predicate spec_;
  Predicate impl_;
  std::string action_;
  bool declared_secure_ = false;
};

}  // namespace dfsm::core

#endif  // DFSM_CORE_PFSM_H
