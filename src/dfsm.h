// dfsm.h — umbrella header: the whole library in one include.
//
//   #include "dfsm.h"
//
// Layering (each group only depends on the ones above it):
//   core     — the paper's contribution: pFSM, Operation, ExploitChain,
//              FsmModel, traces, rendering
//   memsim / libcsim / netsim / fssim — the sandboxed substrate
//   bugtraq  — the vulnerability database and its statistics
//   apps     — the seven case-study replicas
//   analysis — hidden paths, the Lemma sweep, discovery, monitoring, and
//              the §7/§2 extension layers
#ifndef DFSM_DFSM_H
#define DFSM_DFSM_H

#include "core/chain.h"
#include "core/model.h"
#include "core/operation.h"
#include "core/pfsm.h"
#include "core/predicate.h"
#include "core/render.h"
#include "core/table.h"
#include "core/trace.h"
#include "core/value.h"

#include "memsim/address_space.h"
#include "memsim/cpu.h"
#include "memsim/got.h"
#include "memsim/heap.h"
#include "memsim/snapshot.h"
#include "memsim/stack.h"

#include "libcsim/cstring.h"
#include "libcsim/format.h"
#include "libcsim/io.h"

#include "netsim/bytestream.h"
#include "netsim/decode.h"
#include "netsim/http.h"

#include "fssim/filesystem.h"
#include "fssim/race.h"

#include "bugtraq/category.h"
#include "bugtraq/classifier.h"
#include "bugtraq/corpus.h"
#include "bugtraq/curated.h"
#include "bugtraq/database.h"
#include "bugtraq/record.h"
#include "bugtraq/stats.h"

#include "apps/case_study.h"
#include "apps/ghttpd.h"
#include "apps/iis.h"
#include "apps/models.h"
#include "apps/nullhttpd.h"
#include "apps/rpcstatd.h"
#include "apps/rwall.h"
#include "apps/sandbox.h"
#include "apps/sendmail.h"
#include "apps/xterm.h"

#include "analysis/anomaly.h"
#include "analysis/attack_graph.h"
#include "analysis/autotool.h"
#include "analysis/chain_analyzer.h"
#include "analysis/defense_matrix.h"
#include "analysis/discovery.h"
#include "analysis/hidden_path.h"
#include "analysis/metf.h"
#include "analysis/monitor.h"
#include "analysis/predicates.h"
#include "analysis/report.h"

#endif  // DFSM_DFSM_H
