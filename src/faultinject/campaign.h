// campaign.h — seeded fault-injection campaigns over the corpus and
// model pipelines (DESIGN.md §9).
//
// A campaign runs `trials` independent scenarios. Each trial derives its
// entire randomness from (seed, trial index), generates a fresh faulty
// world (a mutated shard set on disk, or a defective model/chain), runs
// the production pipeline against it, and checks the pipeline's two
// standing promises:
//
//   * zero silent data loss — for corpus faults, every generated source
//     line is either ingested or accounted for in the IngestReport
//     (quarantined rows/shards), and strict ingest throws exactly when
//     the mutation planted a defect, with shard+line context;
//   * no undetected defect — for model faults, at least one staticlint
//     rule (IR faults), dynamic analysis (hidden-path witnesses +
//     chain evaluation, for live-chain faults), or the memoized-vs-
//     direct sweep cross-check (sweep-cache faults: stale sub-mask
//     entry, flipped cached outcome, wrong gate composition) flags the
//     injection.
//
// Reports are deterministic: same seed, same trials, same report bytes
// at every DFSM_THREADS setting (CI diffs the JSON across thread
// counts). Nothing in a report depends on the clock or the absolute
// workdir path.
#ifndef DFSM_FAULTINJECT_CAMPAIGN_H
#define DFSM_FAULTINJECT_CAMPAIGN_H

#include <cstdint>
#include <string>
#include <vector>

#include "staticlint/linter.h"

namespace dfsm::faultinject {

/// Which fault surface a campaign exercises.
enum class CampaignKind {
  kCorpus,    ///< shard-set mutations through the ingest pipeline, plus
              ///< binary-snapshot mutations (faultinject/snapshot_faults.h)
              ///< through the colsnap loader on ~1/4 of its draws
  kModel,     ///< IR/chain/sweep-cache mutations through staticlint +
              ///< dynamic analysis + the memoized-vs-direct cross-check
  kRace,      ///< interleaving-exploration trials over the curated race
              ///< scenarios (fssim/explore.h): exhaustive rediscovery with
              ///< exact counts + enumeration cross-check + pinned sampling
  kComposed,  ///< 2-4 mutators drawn per trial across the corpus, pipeline,
              ///< and analysis layers (faultinject/composed.h)
  kAll,       ///< seeded mix of all four
};

[[nodiscard]] const char* to_string(CampaignKind k) noexcept;

struct CampaignConfig {
  std::uint64_t seed = 1;
  std::size_t trials = 200;
  CampaignKind campaign = CampaignKind::kAll;

  /// Directory for the per-trial shard files (must exist and be
  /// writable). Report entries use paths relative to it.
  std::string workdir = ".";

  /// Per-trial synthetic corpus size is drawn from [min_records,
  /// max_records]; shard count from [2, max_shards].
  std::size_t min_records = 50;
  std::size_t max_records = 400;
  std::size_t max_shards = 5;

  /// Retry budget handed to the shard reader (>= 2).
  std::size_t max_attempts = 3;
};

/// One trial's outcome. Corpus and model trials share the record; unused
/// fields stay zero/empty.
struct TrialResult {
  std::size_t trial = 0;
  std::string kind;    ///< "corpus" | "snapshot" | "model" | "chain" |
                       ///< "sweep" | "chainlint" | "race" | "composed"
  std::string fault;   ///< mutator name
  std::string target;  ///< shard (workdir-relative) or model/operation
  std::size_t line = 0;
  std::string detail;

  // corpus trials
  std::size_t generated = 0;
  std::size_t ingested = 0;
  std::size_t quarantined_rows = 0;
  std::size_t quarantined_row_lines = 0;
  std::size_t quarantined_shards = 0;
  std::size_t retries = 0;
  bool strict_threw = false;
  std::string strict_error;  ///< workdir prefix stripped
  bool conserved = false;    ///< zero-silent-loss accounting held

  // model/chain trials
  std::vector<std::string> expected_rules;
  std::vector<std::string> caught_rules;
  bool detected = false;

  // incremental-lint telemetry (trials that route through lint_chain /
  // the memoized lint grid; zero elsewhere)
  std::size_t lint_rules_executed = 0;
  std::size_t lint_memo_hits = 0;
  std::size_t lint_memo_misses = 0;
  std::size_t lint_memo_invalidated = 0;

  bool ok = false;        ///< the trial's invariant held
  std::string failure;    ///< why it failed ("" when ok)
};

struct CampaignReport {
  CampaignConfig config;
  std::vector<TrialResult> trials;
  std::size_t corpus_trials = 0;
  std::size_t model_trials = 0;
  std::size_t race_trials = 0;
  std::size_t composed_trials = 0;
  std::size_t failures = 0;

  /// Every model the campaign linted, aggregated into one LintRun: the
  /// findings concatenate in trial order and the memo telemetry sums
  /// over one campaign-wide LintMemoStore (the incremental-lint surface
  /// `dfsm_faultinject --lint-out/--lint-sarif` emits). Deterministic:
  /// the trial loop is serial and the memoized grid's lookup/insert
  /// phases are serial at every DFSM_THREADS setting.
  staticlint::LintRun lint;
  std::size_t models_linted = 0;

  [[nodiscard]] bool ok() const noexcept { return failures == 0; }
};

/// Runs the campaign. Throws std::invalid_argument on a bad config
/// (zero trials, max_attempts < 2, min > max records); I/O failures in
/// the workdir surface as std::runtime_error.
[[nodiscard]] CampaignReport run_campaign(const CampaignConfig& config);

/// Human-readable report (one line per trial + summary).
[[nodiscard]] std::string emit_text(const CampaignReport& report);

/// Machine-readable report. Deterministic byte-for-byte for equal
/// (config, trial outcomes) — the CI determinism gate diffs this across
/// DFSM_THREADS settings.
[[nodiscard]] std::string emit_json(const CampaignReport& report);

}  // namespace dfsm::faultinject

#endif  // DFSM_FAULTINJECT_CAMPAIGN_H
