// model_faults.h — seeded defect injection for the model pipeline
// (DESIGN.md §9). Two injection surfaces:
//
//   1. IR faults perturb a LintModel snapshot (flip a declared-secure
//      bit, delete a gate, corrupt a consequence, duplicate a name,
//      ...). The invariant: every injected defect is caught by at least
//      one of the staticlint rules the mutation names in
//      expected_rules. Structural defects the hardened core builders
//      make unconstructible (gate/operation arity skew, duplicate
//      names) are reachable here because the IR is a plain struct —
//      exactly the reason the linter runs on IR, not on core types.
//
//   2. Chain faults build a LIVE ExploitChain whose buffer-copy pFSM
//      has a seeded implementation defect (the impl accepts lengths the
//      spec rejects). Static structure stays clean; the defect is
//      extensional, so the dynamic analyses must catch it:
//      analysis::detect_hidden_path produces witnesses and
//      ExploitChain::evaluate reports the crafted input as exploited.
#ifndef DFSM_FAULTINJECT_MODEL_FAULTS_H
#define DFSM_FAULTINJECT_MODEL_FAULTS_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/chain.h"
#include "faultinject/rng.h"
#include "staticlint/model_ir.h"

namespace dfsm::faultinject {

/// The IR fault taxonomy. Each member names the lint rule(s) that must
/// catch it (see apply_model_fault).
enum class ModelFault {
  kDropAllOperations,      ///< ST001
  kDropGate,               ///< ST002
  kEmptyOperation,         ///< ST003
  kDuplicateOperationName, ///< ST004
  kDuplicatePfsmName,      ///< ST005
  kClearActivity,          ///< ST006
  kClearSpecDescription,   ///< ST007
  kClearConsequence,       ///< ST008
  kDeclareAllSecure,       ///< LM001
  kFlipDeclaredSecure,     ///< LM002
  kInjectRejectAll,        ///< LM003
  kRetypePfsm,             ///< TX001 (and TX002 for Table-2 models)
};

inline constexpr std::array<ModelFault, 12> kAllModelFaults = {
    ModelFault::kDropAllOperations,      ModelFault::kDropGate,
    ModelFault::kEmptyOperation,         ModelFault::kDuplicateOperationName,
    ModelFault::kDuplicatePfsmName,      ModelFault::kClearActivity,
    ModelFault::kClearSpecDescription,   ModelFault::kClearConsequence,
    ModelFault::kDeclareAllSecure,       ModelFault::kFlipDeclaredSecure,
    ModelFault::kInjectRejectAll,        ModelFault::kRetypePfsm,
};

[[nodiscard]] const char* to_string(ModelFault f) noexcept;

/// What an IR mutation did and which rules are on the hook for it.
struct ModelMutation {
  ModelFault fault = ModelFault::kDropGate;
  std::string model;
  std::string target;  ///< "operation" or "operation/pfsm" ("" = model-level)
  std::string detail;
  std::vector<std::string> expected_rules;  ///< >=1 of these must fire
};

/// Mutates `model` in place. Returns nullopt when the model's shape
/// cannot host this fault (e.g. duplicating an operation name in a
/// one-operation chain); the model is untouched in that case.
/// Detection is guaranteed for models that lint clean before mutation
/// (the curated registry is gated on that).
[[nodiscard]] std::optional<ModelMutation> apply_model_fault(
    ModelFault fault, staticlint::LintModel& model, Rng& rng);

/// A live two-operation exploit chain with one seeded defect: the
/// buffer-copy pFSM's spec demands 0 <= len <= `limit` but its
/// implementation accepts up to `impl_limit` (or everything, when
/// `impl_unchecked`). `overflow_len` is a length in the gap.
struct ChainFaultFixture {
  core::ExploitChain chain;
  std::string vulnerable_pfsm;  ///< name of the defective pFSM
  std::int64_t limit = 0;
  std::int64_t impl_limit = 0;  ///< == limit + slack (meaningless if unchecked)
  bool impl_unchecked = false;
  std::int64_t overflow_len = 0;
  std::int64_t benign_len = 0;
  std::string detail;

  /// Evaluation inputs for ExploitChain::evaluate with a payload of the
  /// given length (one object per pFSM per operation).
  [[nodiscard]] std::vector<std::vector<core::Object>> inputs_for(
      std::int64_t len) const;
};

/// Builds the fixture; deterministic in `rng`.
[[nodiscard]] ChainFaultFixture make_chain_fault(Rng& rng);

/// Live-chain lint faults: defects planted in a RUNNABLE ExploitChain
/// (not an IR snapshot) that the universal lint_chain() entry point must
/// flag — the third injection surface, extending the machine-checked-
/// expectation discipline to the incremental lint pipeline.
enum class ChainLintFault {
  kCheckThenUseWindow,  ///< DR001: unchecked ref-consistency step yields
  kSharedObjectReread,  ///< DR002: two operations re-touch one path
  kMissingConsequence,  ///< ST008: final gate left empty
};

inline constexpr std::array<ChainLintFault, 3> kAllChainLintFaults = {
    ChainLintFault::kCheckThenUseWindow,
    ChainLintFault::kSharedObjectReread,
    ChainLintFault::kMissingConsequence,
};

[[nodiscard]] const char* to_string(ChainLintFault f) noexcept;

/// A live chain carrying one planted lint defect, plus the rule ids on
/// the hook for it.
struct ChainLintFixture {
  core::ExploitChain chain;
  std::string target;  ///< "operation/pfsm" ("" = chain-level)
  std::string detail;
  std::vector<std::string> expected_rules;  ///< >=1 of these must fire
};

/// Builds the fixture for one fault kind; deterministic in `rng` (the
/// rng only varies cosmetic parameters such as the object path, so the
/// expected rules always apply).
[[nodiscard]] ChainLintFixture make_chain_lint_fault(ChainLintFault fault,
                                                     Rng& rng);

}  // namespace dfsm::faultinject

#endif  // DFSM_FAULTINJECT_MODEL_FAULTS_H
