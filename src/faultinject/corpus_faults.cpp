#include "faultinject/corpus_faults.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dfsm::faultinject {

namespace {

/// Splits file contents on '\n' (the trailing newline, if any, yields no
/// empty tail element). Mutators work line-wise: synthetic corpus rows
/// are single-line by construction (no embedded newlines).
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\n') continue;
    lines.push_back(text.substr(start, i - start));
    start = i + 1;
  }
  if (start < text.size()) lines.push_back(text.substr(start));
  return lines;
}

/// Joins lines back into file contents. `terminate_last` controls the
/// final newline — a torn write leaves none.
std::string join_lines(const std::vector<std::string>& lines,
                       bool terminate_last = true) {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size() || terminate_last) out += '\n';
  }
  return out;
}

/// Byte offsets of the row's field separators (commas outside quotes).
std::vector<std::size_t> comma_offsets(const std::string& row) {
  std::vector<std::size_t> offsets;
  bool in_quotes = false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] == '"') in_quotes = !in_quotes;
    else if (row[i] == ',' && !in_quotes) offsets.push_back(i);
  }
  return offsets;
}

/// Index of a shard with at least one data row. The campaign always
/// generates more records than shards, so one exists.
std::size_t pick_data_shard(const ShardSet& shards, Rng& rng) {
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < shards.paths.size(); ++i) {
    if (shards.data_rows[i] > 0) candidates.push_back(i);
  }
  if (candidates.empty()) {
    throw std::invalid_argument("corpus fault needs a shard with data rows");
  }
  return candidates[rng.below(candidates.size())];
}

CorpusMutation truncate_tail(ShardSet& shards, Rng& rng) {
  const std::size_t s = pick_data_shard(shards, rng);
  auto lines = split_lines(shards.contents[s]);
  std::string& last = lines.back();
  const auto commas = comma_offsets(last);
  // Cut strictly before the 9th separator so at most 9 fields survive —
  // the truncated row can never still parse as a valid 10-field record
  // (a cut inside the final integer field would).
  const std::size_t limit = commas.size() >= 9 ? commas[8] : last.size() - 1;
  const std::size_t keep = 1 + rng.below(limit);
  last.resize(keep);
  shards.contents[s] = join_lines(lines, /*terminate_last=*/false);
  CorpusMutation m;
  m.fault = CorpusFault::kTruncateTail;
  m.shard = shards.paths[s];
  m.line = lines.size();
  m.detail = "truncated the last row to " + std::to_string(keep) + " bytes";
  m.expect_strict_throw = true;
  return m;
}

CorpusMutation mangle_quoting(ShardSet& shards, Rng& rng) {
  const std::size_t s = pick_data_shard(shards, rng);
  auto lines = split_lines(shards.contents[s]);
  const std::size_t row = 1 + rng.below(shards.data_rows[s]);  // skip header
  std::string& text = lines[row];
  const auto commas = comma_offsets(text);
  // Insert at or before the 9th separator: the unterminated quote then
  // swallows at least one separator, so the merged span cannot reach 10
  // fields and parsing fails deterministically.
  const std::size_t pos =
      rng.below((commas.size() >= 9 ? commas[8] : text.size()) + 1);
  text.insert(pos, 1, '"');
  shards.contents[s] = join_lines(lines);
  CorpusMutation m;
  m.fault = CorpusFault::kMangleQuoting;
  m.shard = shards.paths[s];
  m.line = row + 1;
  m.detail = "inserted a stray '\"' at byte " + std::to_string(pos);
  m.expect_strict_throw = true;
  return m;
}

CorpusMutation corrupt_field(ShardSet& shards, Rng& rng) {
  const std::size_t s = pick_data_shard(shards, rng);
  auto lines = split_lines(shards.contents[s]);
  const std::size_t row = 1 + rng.below(shards.data_rows[s]);
  lines[row].insert(0, 1, 'x');  // id field becomes non-numeric
  shards.contents[s] = join_lines(lines);
  CorpusMutation m;
  m.fault = CorpusFault::kCorruptField;
  m.shard = shards.paths[s];
  m.line = row + 1;
  m.detail = "made the row's id field non-numeric";
  m.expect_strict_throw = true;
  return m;
}

CorpusMutation missing_header(ShardSet& shards, Rng& rng) {
  const std::size_t s = rng.below(shards.paths.size());
  auto lines = split_lines(shards.contents[s]);
  lines.erase(lines.begin());
  shards.contents[s] = join_lines(lines);
  CorpusMutation m;
  m.fault = CorpusFault::kMissingHeader;
  m.shard = shards.paths[s];
  m.line = 1;
  m.detail = "deleted the header line";
  m.expect_strict_throw = true;
  return m;
}

CorpusMutation duplicate_header(ShardSet& shards, Rng& rng) {
  const std::size_t s = rng.below(shards.paths.size());
  auto lines = split_lines(shards.contents[s]);
  lines.insert(lines.begin() + 1, lines.front());
  shards.contents[s] = join_lines(lines);
  CorpusMutation m;
  m.fault = CorpusFault::kDuplicateHeader;
  m.shard = shards.paths[s];
  m.line = 2;
  m.detail = "repeated the header as a data row";
  m.injected_lines = 1;  // the extra header line is a data-line candidate
  m.expect_strict_throw = true;
  return m;
}

CorpusMutation drop_shard(ShardSet& shards, Rng& rng) {
  const std::size_t s = rng.below(shards.paths.size());
  CorpusMutation m;
  m.fault = CorpusFault::kDropShard;
  m.shard = shards.paths[s];
  m.detail = "removed the shard from the read list (" +
             std::to_string(shards.data_rows[s]) + " rows unreachable)";
  m.lost_shards.push_back(shards.paths[s]);
  shards.paths.erase(shards.paths.begin() + static_cast<std::ptrdiff_t>(s));
  shards.contents.erase(shards.contents.begin() +
                        static_cast<std::ptrdiff_t>(s));
  shards.data_rows.erase(shards.data_rows.begin() +
                         static_cast<std::ptrdiff_t>(s));
  return m;
}

CorpusMutation reorder_shards(ShardSet& shards, Rng& rng) {
  const std::size_t n = shards.paths.size();
  if (n < 2) {
    throw std::invalid_argument("reorder fault needs at least two shards");
  }
  const std::size_t k = 1 + rng.below(n - 1);
  std::rotate(shards.paths.begin(),
              shards.paths.begin() + static_cast<std::ptrdiff_t>(k),
              shards.paths.end());
  std::rotate(shards.contents.begin(),
              shards.contents.begin() + static_cast<std::ptrdiff_t>(k),
              shards.contents.end());
  std::rotate(shards.data_rows.begin(),
              shards.data_rows.begin() + static_cast<std::ptrdiff_t>(k),
              shards.data_rows.end());
  CorpusMutation m;
  m.fault = CorpusFault::kReorderShards;
  m.detail = "rotated the shard read order by " + std::to_string(k);
  return m;
}

CorpusMutation transient_io(ShardSet& shards, Rng& rng,
                            std::size_t max_attempts) {
  const std::size_t s = rng.below(shards.paths.size());
  CorpusMutation m;
  m.fault = CorpusFault::kTransientIo;
  m.shard = shards.paths[s];
  m.fail_attempts = 1 + rng.below(max_attempts - 1);  // < max: recovers
  m.detail = "reads fail " + std::to_string(m.fail_attempts) +
             " time(s), then recover";
  return m;
}

CorpusMutation unreadable_shard(ShardSet& shards, Rng& rng,
                                std::size_t max_attempts) {
  const std::size_t s = rng.below(shards.paths.size());
  CorpusMutation m;
  m.fault = CorpusFault::kUnreadableShard;
  m.shard = shards.paths[s];
  m.fail_attempts = max_attempts;  // every attempt fails
  m.detail = "reads fail on all " + std::to_string(max_attempts) +
             " attempts (" + std::to_string(shards.data_rows[s]) +
             " rows unreachable)";
  m.lost_shards.push_back(shards.paths[s]);
  m.expect_strict_throw = true;
  return m;
}

}  // namespace

const char* to_string(CorpusFault f) noexcept {
  switch (f) {
    case CorpusFault::kTruncateTail: return "truncate-tail";
    case CorpusFault::kMangleQuoting: return "mangle-quoting";
    case CorpusFault::kCorruptField: return "corrupt-field";
    case CorpusFault::kMissingHeader: return "missing-header";
    case CorpusFault::kDuplicateHeader: return "duplicate-header";
    case CorpusFault::kDropShard: return "drop-shard";
    case CorpusFault::kReorderShards: return "reorder-shards";
    case CorpusFault::kTransientIo: return "transient-io";
    case CorpusFault::kUnreadableShard: return "unreadable-shard";
  }
  return "unknown";
}

std::size_t ShardSet::total_rows() const {
  std::size_t total = 0;
  for (std::size_t rows : data_rows) total += rows;
  return total;
}

CorpusMutation apply_corpus_fault(CorpusFault fault, ShardSet& shards,
                                  Rng& rng, std::size_t max_attempts) {
  if (shards.paths.empty()) {
    throw std::invalid_argument("corpus fault needs a non-empty shard set");
  }
  if (max_attempts < 2) {
    throw std::invalid_argument("corpus faults need max_attempts >= 2");
  }
  switch (fault) {
    case CorpusFault::kTruncateTail: return truncate_tail(shards, rng);
    case CorpusFault::kMangleQuoting: return mangle_quoting(shards, rng);
    case CorpusFault::kCorruptField: return corrupt_field(shards, rng);
    case CorpusFault::kMissingHeader: return missing_header(shards, rng);
    case CorpusFault::kDuplicateHeader: return duplicate_header(shards, rng);
    case CorpusFault::kDropShard: return drop_shard(shards, rng);
    case CorpusFault::kReorderShards: return reorder_shards(shards, rng);
    case CorpusFault::kTransientIo:
      return transient_io(shards, rng, max_attempts);
    case CorpusFault::kUnreadableShard:
      return unreadable_shard(shards, rng, max_attempts);
  }
  throw std::invalid_argument("unknown corpus fault");
}

}  // namespace dfsm::faultinject
