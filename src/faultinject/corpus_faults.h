// corpus_faults.h — seeded mutators that corrupt a sharded CSV corpus
// the way real storage does (DESIGN.md §9): torn writes, stray bytes,
// missing files, flaky reads. Each mutator edits an in-memory ShardSet
// and returns a CorpusMutation describing exactly what it did plus the
// bookkeeping the campaign needs to prove zero silent data loss:
//
//   generated + injected_lines - rows(lost_shards)
//     == ingested + quarantined row lines + quarantined shard lines
//
// Mutators are deterministic in the Rng and never consult the clock or
// the filesystem — the campaign owns all I/O.
#ifndef DFSM_FAULTINJECT_CORPUS_FAULTS_H
#define DFSM_FAULTINJECT_CORPUS_FAULTS_H

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "faultinject/rng.h"

namespace dfsm::faultinject {

/// The corpus fault taxonomy (one mutator each).
enum class CorpusFault {
  kTruncateTail,     ///< cut the last row mid-field (torn write)
  kMangleQuoting,    ///< insert a stray '"' into a data row
  kCorruptField,     ///< make a row's id field non-numeric
  kMissingHeader,    ///< delete a shard's header line
  kDuplicateHeader,  ///< repeat the header as a bogus data row
  kDropShard,        ///< remove a shard from the read list entirely
  kReorderShards,    ///< rotate the shard read order
  kTransientIo,      ///< reads fail then recover (retry path)
  kUnreadableShard,  ///< reads fail on every attempt
};

inline constexpr std::array<CorpusFault, 9> kAllCorpusFaults = {
    CorpusFault::kTruncateTail,    CorpusFault::kMangleQuoting,
    CorpusFault::kCorruptField,    CorpusFault::kMissingHeader,
    CorpusFault::kDuplicateHeader, CorpusFault::kDropShard,
    CorpusFault::kReorderShards,   CorpusFault::kTransientIo,
    CorpusFault::kUnreadableShard,
};

[[nodiscard]] const char* to_string(CorpusFault f) noexcept;

/// An in-memory shard set: paths in read order, each path's file
/// contents, and how many generated data rows each shard carries.
struct ShardSet {
  std::vector<std::string> paths;
  std::vector<std::string> contents;   ///< parallel to paths
  std::vector<std::size_t> data_rows;  ///< parallel to paths

  [[nodiscard]] std::size_t total_rows() const;
};

/// What a mutator did, and what the ingest layer is expected to make of
/// it. `fail_attempts` drives the campaign's IngestOptions::fault_hook
/// (attempts 1..fail_attempts on `shard` fail as unreadable).
struct CorpusMutation {
  CorpusFault fault = CorpusFault::kTruncateTail;
  std::string shard;    ///< primary affected path ("" when none)
  std::size_t line = 0; ///< 1-based affected line (0 when n/a)
  std::string detail;   ///< human-readable description

  long long injected_lines = 0;          ///< data-line candidates added
  std::vector<std::string> lost_shards;  ///< shards whose rows never reach ingest
  std::size_t fail_attempts = 0;         ///< simulated unreadable attempts
  bool expect_strict_throw = false;      ///< strict ingest must throw
};

/// Applies `fault` to the shard set. `max_attempts` is the retry budget
/// the campaign will hand the reader (IngestOptions::max_attempts, >= 2):
/// kTransientIo fails fewer attempts than that, kUnreadableShard fails
/// all of them. Deterministic in `rng`.
[[nodiscard]] CorpusMutation apply_corpus_fault(CorpusFault fault,
                                                ShardSet& shards, Rng& rng,
                                                std::size_t max_attempts = 3);

}  // namespace dfsm::faultinject

#endif  // DFSM_FAULTINJECT_CORPUS_FAULTS_H
