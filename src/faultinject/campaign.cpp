#include "faultinject/campaign.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/chain_analyzer.h"
#include "analysis/hidden_path.h"
#include "apps/case_study.h"
#include "apps/races.h"
#include "bugtraq/colsnap.h"
#include "bugtraq/corpus.h"
#include "bugtraq/csv_shards.h"
#include "faultinject/composed.h"
#include "faultinject/corpus_faults.h"
#include "faultinject/model_faults.h"
#include "faultinject/snapshot_faults.h"
#include "fssim/explore.h"
#include "runtime/parallel.h"
#include "staticlint/linter.h"
#include "staticlint/registry.h"

namespace dfsm::faultinject {

namespace {

/// Strips every occurrence of "<workdir>/" so reports never contain the
/// absolute workdir (byte-identical reports across machines).
std::string strip_workdir(std::string text, const std::string& workdir) {
  const std::string prefix = workdir + "/";
  std::size_t pos = 0;
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    text.erase(pos, prefix.size());
  }
  return text;
}

void fail(TrialResult& r, const std::string& why) {
  if (!r.failure.empty()) r.failure += "; ";
  r.failure += why;
}

/// Campaign-wide incremental-lint state: one memo store shared by every
/// lint in the run, plus the aggregate LintRun the CLI emits. The trial
/// loop is serial, so the aggregation order (and the memo telemetry) is
/// identical at every DFSM_THREADS setting.
struct LintContext {
  staticlint::LintMemoStore& memo;
  staticlint::LintRun& agg;
  std::size_t& models_linted;
};

/// Lints one IR model through the campaign's shared memo store, records
/// the per-trial telemetry, and folds findings + counters into the
/// aggregate run.
staticlint::LintRun lint_and_record(const staticlint::LintModel& model,
                                    LintContext& ctx, TrialResult& r) {
  staticlint::LintOptions opts;
  opts.memo = &ctx.memo;
  const auto run = staticlint::lint_model_ir(model, opts);
  r.lint_rules_executed += run.rules_executed;
  r.lint_memo_hits += run.memo_hits;
  r.lint_memo_misses += run.memo_misses;
  r.lint_memo_invalidated += run.memo_invalidated;
  ctx.agg.memoized = true;
  ctx.agg.models_checked += run.models_checked;
  ctx.agg.rules_run = run.rules_run;
  ctx.agg.rules_executed += run.rules_executed;
  ctx.agg.memo_hits += run.memo_hits;
  ctx.agg.memo_misses += run.memo_misses;
  ctx.agg.memo_invalidated += run.memo_invalidated;
  for (const auto& d : run.findings) ctx.agg.findings.push_back(d);
  ++ctx.models_linted;
  return run;
}

TrialResult run_corpus_trial(const CampaignConfig& cfg, std::size_t t,
                             Rng& rng) {
  TrialResult r;
  r.trial = t;
  r.kind = "corpus";

  // A fresh world per trial: a seeded corpus sharded exactly the way
  // write_csv_shards would cut it, built in memory so the mutator edits
  // bytes before anything touches disk.
  const std::size_t n =
      cfg.min_records + rng.below(cfg.max_records - cfg.min_records + 1);
  const std::size_t nshards = 2 + rng.below(cfg.max_shards - 1);
  const std::uint64_t corpus_seed = rng.next();
  const bugtraq::Database db = bugtraq::synthetic_corpus_n(n, corpus_seed);
  auto blocks = runtime::static_blocks(n, nshards);
  while (blocks.size() < nshards) blocks.push_back({n, n});
  ShardSet set;
  set.paths = bugtraq::shard_paths(cfg.workdir + "/t", nshards);
  for (std::size_t i = 0; i < nshards; ++i) {
    set.contents.push_back(db.to_csv(blocks[i].begin, blocks[i].end));
    set.data_rows.push_back(blocks[i].end - blocks[i].begin);
  }
  std::map<std::string, std::size_t> rows_of;
  for (std::size_t i = 0; i < nshards; ++i) rows_of[set.paths[i]] = set.data_rows[i];
  r.generated = n;

  const CorpusFault fault = kAllCorpusFaults[rng.below(kAllCorpusFaults.size())];
  const CorpusMutation mut =
      apply_corpus_fault(fault, set, rng, cfg.max_attempts);
  r.fault = to_string(fault);
  r.target = strip_workdir(mut.shard, cfg.workdir);
  r.line = mut.line;
  r.detail = mut.detail;

  for (std::size_t i = 0; i < set.paths.size(); ++i) {
    std::ofstream out{set.paths[i], std::ios::binary | std::ios::trunc};
    if (!out || !(out << set.contents[i]) || !out.flush()) {
      throw std::runtime_error("cannot write fault shard: " + set.paths[i]);
    }
  }

  bugtraq::IngestOptions options;
  options.policy = bugtraq::IngestPolicy::kLenient;
  options.max_attempts = cfg.max_attempts;
  options.backoff_base_ms = 0;  // exercise the retry loop, not the clock
  if (mut.fail_attempts > 0) {
    options.fault_hook = [shard = mut.shard, fails = mut.fail_attempts](
                             const std::string& path, std::size_t attempt) {
      return path == shard && attempt <= fails;
    };
  }

  bugtraq::ShardIngestResult lenient;
  try {
    lenient = bugtraq::read_csv_shards(set.paths, options);
  } catch (const std::exception& ex) {
    fail(r, std::string("lenient ingest threw: ") + ex.what());
    return r;
  }
  r.ingested = lenient.report.ingested;
  r.quarantined_rows = lenient.report.rows.size();
  r.quarantined_row_lines = lenient.report.quarantined_lines();
  r.quarantined_shards = lenient.report.shards.size();
  r.retries = lenient.report.retries;

  // Zero-silent-loss accounting: every generated source line is either
  // ingested or explicitly quarantined (as a row or inside a shard),
  // after correcting for lines the mutation injected or put beyond
  // reach (dropped / unreadable shards).
  long long expected =
      static_cast<long long>(r.generated) + mut.injected_lines;
  for (const auto& lost : mut.lost_shards) {
    expected -= static_cast<long long>(rows_of.at(lost));
  }
  long long actual = static_cast<long long>(r.ingested) +
                     static_cast<long long>(r.quarantined_row_lines);
  for (const auto& shard : lenient.report.shards) {
    actual += static_cast<long long>(shard.lines_seen);
  }
  r.conserved = expected == actual;
  if (!r.conserved) {
    fail(r, "silent data loss: expected " + std::to_string(expected) +
                " accounted lines, found " + std::to_string(actual));
  }

  // Benign mutations (order change, recovered I/O, shorter manifest)
  // must not quarantine anything.
  const bool benign = fault == CorpusFault::kDropShard ||
                      fault == CorpusFault::kReorderShards ||
                      fault == CorpusFault::kTransientIo;
  if (benign && !lenient.report.clean()) {
    fail(r, "benign mutation produced quarantine entries");
  }
  if (fault == CorpusFault::kTransientIo && r.retries != mut.fail_attempts) {
    fail(r, "expected " + std::to_string(mut.fail_attempts) +
                " retries, saw " + std::to_string(r.retries));
  }

  // Strict ingest must throw exactly when the mutation planted a defect,
  // and the error must name the defective shard.
  bugtraq::IngestOptions strict = options;
  strict.policy = bugtraq::IngestPolicy::kStrict;
  try {
    const auto direct = bugtraq::read_csv_shards(set.paths, strict);
    r.strict_threw = false;
    (void)direct;
  } catch (const std::exception& ex) {
    r.strict_threw = true;
    r.strict_error = strip_workdir(ex.what(), cfg.workdir);
  }
  if (r.strict_threw != mut.expect_strict_throw) {
    fail(r, mut.expect_strict_throw
                ? "strict ingest accepted a defective shard set"
                : "strict ingest threw on a benign mutation: " +
                      r.strict_error);
  } else if (r.strict_threw && !r.target.empty() &&
             r.strict_error.find(r.target) == std::string::npos) {
    fail(r, "strict error lacks shard context: " + r.strict_error);
  }

  r.ok = r.failure.empty();
  return r;
}

/// Snapshot-layer trial inside the corpus surface: encode a seeded
/// corpus as in-memory colsnap shards, apply one snapshot mutator, and
/// require (a) the loader refuses the mutated set with a
/// "<file>:<column>: <reason>" that names the planted defect, (b) the
/// refusal is all-or-nothing, and (c) conservation — the pristine shard
/// set still decodes to every generated record, byte-identical.
TrialResult run_snapshot_trial(const CampaignConfig& cfg, std::size_t t,
                               Rng& rng) {
  TrialResult r;
  r.trial = t;
  r.kind = "snapshot";

  const std::size_t n =
      cfg.min_records + rng.below(cfg.max_records - cfg.min_records + 1);
  const std::size_t nshards = 2 + rng.below(cfg.max_shards - 1);
  const std::uint64_t corpus_seed = rng.next();
  const bugtraq::Database db = bugtraq::synthetic_corpus_n(n, corpus_seed);
  r.generated = n;

  SnapshotSet set;
  set.names = bugtraq::colsnap_shard_paths("t", nshards);  // workdir-free
  set.contents = bugtraq::encode_colsnap_shards(*db.snapshot(), nshards);
  const std::vector<std::string> pristine = set.contents;

  const SnapshotFault fault =
      kAllSnapshotFaults[rng.below(kAllSnapshotFaults.size())];
  const SnapshotMutation mut = apply_snapshot_fault(fault, set, rng);
  r.fault = to_string(fault);
  r.target = mut.shard;
  r.detail = mut.detail;

  // Every snapshot mutation plants a defect the loader must refuse.
  try {
    const auto loaded = bugtraq::decode_colsnap_shards(set.contents, set.names);
    fail(r, "loader accepted a mutated snapshot (" +
                std::to_string(loaded.size()) + " records)");
  } catch (const std::invalid_argument& ex) {
    r.strict_threw = true;
    r.strict_error = ex.what();
    if (r.strict_error.find(mut.expect_substr) == std::string::npos) {
      fail(r, "refusal '" + r.strict_error + "' lacks expected '" +
                  mut.expect_substr + "'");
    }
  }

  // Conservation: the unmutated shard set still carries every record.
  try {
    const auto clean = bugtraq::decode_colsnap_shards(pristine, set.names);
    r.ingested = clean.size();
    r.conserved = clean.size() == n && clean.to_csv() == db.to_csv();
    if (!r.conserved) {
      fail(r, "pristine snapshot lost records: decoded " +
                  std::to_string(clean.size()) + " of " + std::to_string(n));
    }
  } catch (const std::exception& ex) {
    fail(r, std::string("pristine snapshot refused: ") + ex.what());
  }

  r.ok = r.failure.empty();
  return r;
}

TrialResult run_chain_trial(std::size_t t, Rng& rng, LintContext& lint_ctx) {
  TrialResult r;
  r.trial = t;
  r.kind = "chain";
  r.fault = "widen-impl";
  const ChainFaultFixture fx = make_chain_fault(rng);
  r.target = fx.chain.name() + "/" + fx.vulnerable_pfsm;
  r.detail = fx.detail;
  r.expected_rules = {"hidden-path", "chain-exploited"};

  // The defect is EXTENSIONAL — the chain's declared structure is clean
  // — so the static pass must stay quiet on it: any lint finding here
  // means lint_chain() flags structure it should not.
  const auto lint_run = lint_and_record(
      staticlint::LintModel::from_chain(fx.chain), lint_ctx, r);
  if (!lint_run.findings.empty()) {
    fail(r, "structurally clean live chain drew " +
                std::to_string(lint_run.findings.size()) + " lint finding(s)");
  }

  // The defect is extensional (structure is clean), so the dynamic
  // analyses are on the hook: hidden-path detection must produce a
  // witness and the crafted input must exploit the chain, while benign
  // traffic still passes.
  const core::Pfsm& pfsm = fx.chain.operations()[1].pfsms()[0];
  const auto domain = analysis::int_boundary_domain(
      "payload", "len", {0, fx.limit, fx.impl_limit});
  const auto hp = analysis::detect_hidden_path(pfsm, domain);
  if (hp.vulnerable()) r.caught_rules.push_back("hidden-path");

  // Both workloads go through one evaluate_batch call — the same batch
  // surface the sweeps and the discovery campaign exercise.
  const auto runs = fx.chain.evaluate_batch(
      {fx.inputs_for(fx.overflow_len), fx.inputs_for(fx.benign_len)});
  const auto& attack = runs[0];
  const auto& benign = runs[1];
  if (attack.exploited()) r.caught_rules.push_back("chain-exploited");

  r.detected = hp.vulnerable() && attack.exploited();
  if (!hp.vulnerable()) fail(r, "no hidden-path witness for the widened impl");
  if (!attack.exploited()) fail(r, "crafted overflow input not exploited");
  if (!benign.completed() || benign.exploited()) {
    fail(r, "benign input mishandled by the faulty chain");
  }
  r.ok = r.failure.empty();
  return r;
}

/// Corrupts the memoized Lemma-sweep engine's per-operation cache (or
/// the cross-sweep store/incremental layers above it) and requires the
/// memoized-vs-direct cross-check to notice. The five mutators — stale
/// sub-mask entry, flipped cached outcome, wrong gate composition, a
/// stale shared-store entry served across sweep generations, and a
/// missed invalidation when a patch pins an operation — are the failure
/// modes a buggy cache/store implementation would actually exhibit;
/// escaping the cross-check would mean the default sweep engine could
/// silently ship wrong Lemma verdicts.
TrialResult run_sweep_trial(
    std::size_t t, Rng& rng,
    const std::vector<std::unique_ptr<apps::CaseStudy>>& studies) {
  TrialResult r;
  r.trial = t;
  r.kind = "sweep";

  constexpr std::array<analysis::SweepFault, 5> kSweepFaults = {
      analysis::SweepFault::kStaleSubmaskEntry,
      analysis::SweepFault::kFlippedCacheOutcome,
      analysis::SweepFault::kWrongGateComposition,
      analysis::SweepFault::kStaleSharedMemoAcrossSweeps,
      analysis::SweepFault::kMissedInvalidationOnPatch,
  };

  // Walk the (study, fault) grid from a seeded start until a fault is
  // hostable — every curated study hosts the two cache-cell faults (each
  // has at least one blocking check), so this always terminates.
  const std::size_t si = rng.below(studies.size());
  const std::size_t fi = rng.below(kSweepFaults.size());
  for (std::size_t k = 0; k < studies.size() * kSweepFaults.size(); ++k) {
    const apps::CaseStudy& study =
        *studies[(si + k / kSweepFaults.size()) % studies.size()];
    const analysis::SweepFault fault = kSweepFaults[(fi + k) % kSweepFaults.size()];
    const auto faulty = analysis::sweep_with_fault(study, fault);
    if (!faulty) continue;

    r.fault = analysis::to_string(fault);
    r.target = study.name() + "/" + faulty->target;
    r.detail = "memoized sweep with corrupted cache vs direct reference sweep";
    r.expected_rules = {"memoized-vs-direct"};
    // The reference is normally the direct sweep of the study itself;
    // kMissedInvalidationOnPatch supplies its own (the direct sweep of
    // the actually-secured study).
    analysis::SweepOptions direct_opts;
    direct_opts.mode = analysis::SweepMode::kDirect;
    const auto reference = faulty->reference
                               ? *faulty->reference
                               : analysis::sweep(study, direct_opts);
    r.detected = !analysis::reports_equivalent(reference, faulty->report);
    if (r.detected) {
      r.caught_rules.push_back("memoized-vs-direct");
    } else {
      fail(r, "corrupted sweep cache escaped the memoized-vs-direct "
              "cross-check");
    }
    r.ok = r.failure.empty();
    return r;
  }
  fail(r, "no case study hosts a sweep-cache fault");
  return r;
}

/// Live-chain lint trial: a runnable chain with one planted lint defect
/// goes through the universal lint_chain() path, and the mutator's
/// expected rule id must fire — the same machine-checked-expectation
/// discipline as the IR grid, on the incremental surface.
TrialResult run_chain_lint_trial(std::size_t t, Rng& rng,
                                 LintContext& lint_ctx) {
  TrialResult r;
  r.trial = t;
  r.kind = "chainlint";
  const ChainLintFault fault =
      kAllChainLintFaults[rng.below(kAllChainLintFaults.size())];
  const ChainLintFixture fx = make_chain_lint_fault(fault, rng);
  r.fault = to_string(fault);
  r.target =
      fx.chain.name() + (fx.target.empty() ? "" : "/" + fx.target);
  r.detail = fx.detail;
  r.expected_rules = fx.expected_rules;

  const auto run = lint_and_record(
      staticlint::LintModel::from_chain(fx.chain), lint_ctx, r);
  for (const auto& finding : run.findings) {
    bool seen = false;
    for (const auto& id : r.caught_rules) seen = seen || id == finding.rule_id;
    if (!seen) r.caught_rules.push_back(finding.rule_id);
  }
  r.detected = true;
  for (const auto& want : r.expected_rules) {
    bool got = false;
    for (const auto& id : r.caught_rules) got = got || id == want;
    if (!got) {
      r.detected = false;
      fail(r, "planted chain defect escaped lint_chain (expected " + want +
                  ")");
    }
  }
  r.ok = r.failure.empty();
  return r;
}

TrialResult run_model_trial(
    const CampaignConfig& cfg, std::size_t t, Rng& rng,
    const std::vector<staticlint::LintModel>& curated,
    const std::vector<std::unique_ptr<apps::CaseStudy>>& studies,
    LintContext& lint_ctx) {
  const std::size_t surface = rng.below(10);
  if (surface < 2) return run_chain_trial(t, rng, lint_ctx);
  if (surface < 4) return run_sweep_trial(t, rng, studies);
  if (surface < 6) return run_chain_lint_trial(t, rng, lint_ctx);

  TrialResult r;
  r.trial = t;
  r.kind = "model";

  // Walk the (model, fault) grid from a seeded start until a fault
  // applies — every curated model hosts at least kDropGate, so this
  // always terminates.
  const std::size_t num_faults = kAllModelFaults.size();
  const std::size_t mi = rng.below(curated.size());
  const std::size_t fi = rng.below(num_faults);
  for (std::size_t k = 0; k < curated.size() * num_faults; ++k) {
    staticlint::LintModel copy = curated[(mi + k / num_faults) % curated.size()];
    const ModelFault fault = kAllModelFaults[(fi + k) % num_faults];
    const auto mut = apply_model_fault(fault, copy, rng);
    if (!mut) continue;

    r.fault = to_string(fault);
    r.target = mut->model + (mut->target.empty() ? "" : "/" + mut->target);
    r.detail = mut->detail;
    r.expected_rules = mut->expected_rules;
    // Mutants reuse curated model names with perturbed structure, so the
    // memoized grid sees a fingerprint mismatch per cell — the campaign
    // deliberately thrashes the store's invalidation path while the
    // lint verdicts stay byte-identical to a direct lint.
    const auto run = lint_and_record(copy, lint_ctx, r);
    for (const auto& finding : run.findings) {
      bool seen = false;
      for (const auto& id : r.caught_rules) seen = seen || id == finding.rule_id;
      if (!seen) r.caught_rules.push_back(finding.rule_id);
    }
    for (const auto& want : r.expected_rules) {
      for (const auto& got : r.caught_rules) {
        if (want == got) r.detected = true;
      }
    }
    if (!r.detected) {
      fail(r, "injected defect escaped the linter (expected one of " +
                  [&] {
                    std::string ids;
                    for (const auto& id : r.expected_rules) {
                      if (!ids.empty()) ids += ", ";
                      ids += id;
                    }
                    return ids;
                  }() +
                  ")");
    }
    (void)cfg;
    r.ok = r.failure.empty();
    return r;
  }
  fail(r, "no applicable model fault found");
  return r;
}

/// Race-exploration trial: picks a curated scenario and holds the
/// exploration engine to three machine-checked expectations —
///   * "rediscovered": the exhaustive run reproduces the curated
///     schedule-space and violating-schedule counts exactly;
///   * "matches-enumeration": the exhaustive run is outcome-for-outcome
///     identical (step order + verdict, at every rank) to the recursive
///     enumerator in race.h;
///   * "sampled-pinned": a seeded sub-space budget still pins the
///     lexicographic first/last ranks, reports only violating ranks the
///     exhaustive run confirmed, and — for scenarios whose violation IS
///     the lex-last schedule (rwall) — still finds the race.
TrialResult run_race_trial(std::size_t t, Rng& rng,
                           const std::vector<fssim::RaceScenario>& scenarios) {
  TrialResult r;
  r.trial = t;
  r.kind = "race";
  const fssim::RaceScenario& s = scenarios[rng.below(scenarios.size())];
  r.fault = "explore";
  r.target = s.name;
  r.expected_rules = {"rediscovered", "matches-enumeration",
                      "sampled-pinned"};

  fssim::ExploreOptions exhaustive_opts;
  exhaustive_opts.seed = rng.next();
  const auto rep = fssim::explore_scenario(s, exhaustive_opts);
  r.detail = "space " + std::to_string(rep.schedule_space) + ", " +
             std::to_string(rep.violating) + " violating";
  if (rep.exhaustive && rep.schedule_space == s.expected_total &&
      rep.explored == s.expected_total &&
      rep.violating == s.expected_violating) {
    r.caught_rules.push_back("rediscovered");
  } else {
    fail(r, "exhaustive exploration missed the curated counts: explored " +
                std::to_string(rep.explored) + "/" +
                std::to_string(rep.schedule_space) + ", violating " +
                std::to_string(rep.violating) + " (expected " +
                std::to_string(s.expected_total) + "/" +
                std::to_string(s.expected_violating) + ")");
  }

  const auto ref = fssim::enumerate_interleavings(s.world(), s.victim,
                                                  s.attacker, s.violated);
  bool matches = ref.total_schedules == rep.explored &&
                 ref.violating_schedules == rep.violating &&
                 ref.outcomes.size() == rep.outcomes.size();
  for (std::size_t i = 0; matches && i < ref.outcomes.size(); ++i) {
    matches = rep.outcomes[i].rank == i &&
              ref.outcomes[i].order == rep.outcomes[i].order &&
              ref.outcomes[i].violated == rep.outcomes[i].violated;
  }
  if (matches) {
    r.caught_rules.push_back("matches-enumeration");
  } else {
    fail(r, "rank-ascending exploration diverged from the recursive "
            "enumerator");
  }

  fssim::ExploreOptions sampled_opts;
  sampled_opts.seed = rng.next();
  sampled_opts.budget = 2 + rng.below(s.expected_total - 2);
  const auto samp = fssim::explore_scenario(s, sampled_opts);
  r.detail += ", sampled " + std::to_string(samp.explored) + "/" +
              std::to_string(sampled_opts.budget) + " found " +
              std::to_string(samp.violating);
  bool pinned_first = false;
  bool pinned_last = false;
  for (const auto& o : samp.outcomes) {
    pinned_first = pinned_first || o.rank == 0;
    pinned_last = pinned_last || o.rank == rep.schedule_space - 1;
  }
  bool subset = true;
  for (const auto rank : samp.violating_ranks) {
    bool in_exhaustive = false;
    for (const auto v : rep.violating_ranks) in_exhaustive |= v == rank;
    subset = subset && in_exhaustive;
  }
  bool sampled_ok = !samp.exhaustive && samp.explored <= sampled_opts.budget;
  if (!pinned_first || !pinned_last) {
    sampled_ok = false;
    fail(r, "sampled run lost a pinned rank (first/last must always run)");
  }
  if (!subset) {
    sampled_ok = false;
    fail(r, "sampled run reported a violating rank the exhaustive run "
            "did not confirm");
  }
  if (s.last_schedule_violates && !samp.race_exists()) {
    sampled_ok = false;
    fail(r, "pinned sampling missed a lex-last violation it can never "
            "legitimately miss");
  }
  if (sampled_ok) {
    r.caught_rules.push_back("sampled-pinned");
  } else if (r.failure.empty()) {
    fail(r, "sampled exploration violated the budget/exhaustive contract");
  }

  r.detected = true;
  for (const auto& want : r.expected_rules) {
    bool got = false;
    for (const auto& id : r.caught_rules) got = got || id == want;
    r.detected = r.detected && got;
  }
  r.ok = r.failure.empty();
  return r;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void emit_string_array(std::ostringstream& os,
                       const std::vector<std::string>& items) {
  os << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(items[i]) << '"';
  }
  os << ']';
}

}  // namespace

const char* to_string(CampaignKind k) noexcept {
  switch (k) {
    case CampaignKind::kCorpus: return "corpus";
    case CampaignKind::kModel: return "model";
    case CampaignKind::kRace: return "race";
    case CampaignKind::kComposed: return "composed";
    case CampaignKind::kAll: return "all";
  }
  return "unknown";
}

CampaignReport run_campaign(const CampaignConfig& config) {
  if (config.trials == 0) {
    throw std::invalid_argument("campaign needs at least one trial");
  }
  if (config.max_attempts < 2) {
    throw std::invalid_argument("campaign needs max_attempts >= 2");
  }
  if (config.min_records > config.max_records) {
    throw std::invalid_argument("campaign min_records exceeds max_records");
  }
  if (config.max_shards < 2 || config.min_records < config.max_shards) {
    throw std::invalid_argument(
        "campaign needs 2 <= max_shards <= min_records so every shard "
        "carries data rows");
  }
  CampaignReport report;
  report.config = config;
  const auto curated = staticlint::curated_lint_models();
  const auto studies = apps::all_case_studies();
  const auto scenarios = apps::race_scenarios();
  // One memo store for the whole campaign: repeated fixtures hit, every
  // mutated curated model invalidates its own cells, and the aggregate
  // telemetry lands in report.lint.
  staticlint::LintMemoStore memo;
  LintContext lint_ctx{memo, report.lint, report.models_linted};
  ComposedDeps composed_deps;
  composed_deps.curated = &curated;
  composed_deps.studies = &studies;
  composed_deps.memo = &memo;
  composed_deps.lint_agg = &report.lint;
  composed_deps.models_linted = &report.models_linted;
  for (std::size_t t = 0; t < config.trials; ++t) {
    // All trial randomness is a pure function of (seed, t); trials are
    // order-independent and individually replayable.
    Rng rng{config.seed, t};
    CampaignKind surface = config.campaign;
    if (surface == CampaignKind::kAll) {
      constexpr std::array<CampaignKind, 4> kSurfaces = {
          CampaignKind::kCorpus, CampaignKind::kModel, CampaignKind::kRace,
          CampaignKind::kComposed};
      surface = kSurfaces[rng.below(kSurfaces.size())];
    }
    TrialResult r;
    switch (surface) {
      case CampaignKind::kCorpus:
        // The corpus surface covers both disk formats: ~1/4 of its draws
        // exercise the binary snapshot loader instead of CSV ingest.
        if (rng.below(4) == 0) {
          r = run_snapshot_trial(config, t, rng);
        } else {
          r = run_corpus_trial(config, t, rng);
        }
        ++report.corpus_trials;
        break;
      case CampaignKind::kRace:
        r = run_race_trial(t, rng, scenarios);
        ++report.race_trials;
        break;
      case CampaignKind::kComposed:
        r = run_composed_trial(config, t, rng, composed_deps);
        ++report.composed_trials;
        break;
      case CampaignKind::kModel:
      case CampaignKind::kAll:
        r = run_model_trial(config, t, rng, curated, studies, lint_ctx);
        ++report.model_trials;
        break;
    }
    if (!r.ok) ++report.failures;
    report.trials.push_back(std::move(r));
  }
  return report;
}

std::string emit_text(const CampaignReport& report) {
  std::ostringstream os;
  os << "fault campaign: seed " << report.config.seed << ", "
     << report.trials.size() << " trial(s), kind "
     << to_string(report.config.campaign) << "\n";
  for (const auto& t : report.trials) {
    os << "  [" << (t.ok ? "ok" : "FAIL") << "] trial " << t.trial << " "
       << t.kind << "/" << t.fault;
    if (!t.target.empty()) {
      os << " @ " << t.target;
      if (t.line != 0) os << ":" << t.line;
    }
    if (t.kind == "corpus") {
      os << " (generated " << t.generated << ", ingested " << t.ingested
         << ", quarantined " << t.quarantined_rows << " row(s) / "
         << t.quarantined_shards << " shard(s)";
      if (t.retries != 0) os << ", " << t.retries << " retries";
      os << ")";
    } else if (t.kind == "snapshot") {
      os << " (generated " << t.generated << ", "
         << (t.strict_threw ? "refused" : "ACCEPTED") << ", pristine decode "
         << t.ingested << ", " << (t.conserved ? "conserved" : "LOSSY") << ")";
    } else if (t.kind == "composed") {
      os << " (generated " << t.generated << ", ingested " << t.ingested
         << ", quarantined " << t.quarantined_rows << " row(s) / "
         << t.quarantined_shards << " shard(s); caught:";
      for (const auto& id : t.caught_rules) os << " " << id;
      os << ")";
    } else {
      os << " (caught:";
      for (const auto& id : t.caught_rules) os << " " << id;
      os << ")";
    }
    if (!t.ok) os << " -- " << t.failure;
    os << "\n";
  }
  os << "lint: " << report.models_linted << " model(s), "
     << report.lint.rules_executed << " rule execution(s), "
     << report.lint.memo_hits << " hit(s), " << report.lint.memo_misses
     << " miss(es), " << report.lint.memo_invalidated << " invalidated, "
     << report.lint.findings.size() << " finding(s)\n";
  os << (report.ok() ? "PASS" : "FAIL") << ": " << report.corpus_trials
     << " corpus trial(s), " << report.model_trials << " model trial(s), "
     << report.race_trials << " race trial(s), " << report.composed_trials
     << " composed trial(s), " << report.failures << " failure(s)\n";
  return os.str();
}

std::string emit_json(const CampaignReport& report) {
  std::ostringstream os;
  os << "{\n  \"campaign\": {\"seed\": " << report.config.seed
     << ", \"trials\": " << report.config.trials << ", \"kind\": \""
     << to_string(report.config.campaign)
     << "\", \"min_records\": " << report.config.min_records
     << ", \"max_records\": " << report.config.max_records
     << ", \"max_shards\": " << report.config.max_shards
     << ", \"max_attempts\": " << report.config.max_attempts << "},\n";
  os << "  \"summary\": {\"corpus_trials\": " << report.corpus_trials
     << ", \"model_trials\": " << report.model_trials
     << ", \"race_trials\": " << report.race_trials
     << ", \"composed_trials\": " << report.composed_trials
     << ", \"failures\": " << report.failures << ", \"ok\": "
     << (report.ok() ? "true" : "false") << "},\n";
  os << "  \"lint\": {\"models_linted\": " << report.models_linted
     << ", \"rules_run\": " << report.lint.rules_run
     << ", \"rules_executed\": " << report.lint.rules_executed
     << ", \"memo_hits\": " << report.lint.memo_hits
     << ", \"memo_misses\": " << report.lint.memo_misses
     << ", \"memo_invalidated\": " << report.lint.memo_invalidated
     << ", \"findings\": " << report.lint.findings.size() << "},\n";
  os << "  \"trials\": [\n";
  for (std::size_t i = 0; i < report.trials.size(); ++i) {
    const auto& t = report.trials[i];
    os << "    {\"trial\": " << t.trial << ", \"kind\": \"" << t.kind
       << "\", \"fault\": \"" << json_escape(t.fault) << "\", \"target\": \""
       << json_escape(t.target) << "\", \"line\": " << t.line
       << ", \"detail\": \"" << json_escape(t.detail) << "\", ";
    if (t.kind == "corpus" || t.kind == "snapshot" || t.kind == "composed") {
      os << "\"generated\": " << t.generated << ", \"ingested\": "
         << t.ingested << ", \"quarantined_rows\": " << t.quarantined_rows
         << ", \"quarantined_row_lines\": " << t.quarantined_row_lines
         << ", \"quarantined_shards\": " << t.quarantined_shards
         << ", \"retries\": " << t.retries << ", \"strict_threw\": "
         << (t.strict_threw ? "true" : "false") << ", \"strict_error\": \""
         << json_escape(t.strict_error) << "\", \"conserved\": "
         << (t.conserved ? "true" : "false") << ", ";
    }
    if (t.kind != "corpus" && t.kind != "snapshot") {
      os << "\"expected_rules\": ";
      emit_string_array(os, t.expected_rules);
      os << ", \"caught_rules\": ";
      emit_string_array(os, t.caught_rules);
      os << ", \"detected\": " << (t.detected ? "true" : "false")
         << ", \"lint_rules_executed\": " << t.lint_rules_executed
         << ", \"lint_memo_hits\": " << t.lint_memo_hits
         << ", \"lint_memo_misses\": " << t.lint_memo_misses
         << ", \"lint_memo_invalidated\": " << t.lint_memo_invalidated
         << ", ";
    }
    os << "\"ok\": " << (t.ok ? "true" : "false") << ", \"failure\": \""
       << json_escape(t.failure) << "\"}"
       << (i + 1 < report.trials.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace dfsm::faultinject
