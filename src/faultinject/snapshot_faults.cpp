#include "faultinject/snapshot_faults.h"

#include <cstdint>
#include <stdexcept>

#include "bugtraq/colsnap.h"

namespace dfsm::faultinject {
namespace {

/// Non-empty column blocks of one shard (only those can host a byte
/// flip or a mid-payload cut).
std::vector<bugtraq::ColsnapBlockRef> mutable_blocks(const std::string& bytes) {
  std::vector<bugtraq::ColsnapBlockRef> out;
  for (auto& ref : bugtraq::colsnap_block_refs(bytes)) {
    if (ref.payload_len > 0) out.push_back(std::move(ref));
  }
  return out;
}

}  // namespace

const char* to_string(SnapshotFault f) noexcept {
  switch (f) {
    case SnapshotFault::kCorruptChecksum: return "corrupt-checksum";
    case SnapshotFault::kTruncateColumn: return "truncate-column";
    case SnapshotFault::kTornPublish: return "torn-publish";
  }
  return "unknown";
}

SnapshotMutation apply_snapshot_fault(SnapshotFault fault, SnapshotSet& set,
                                      Rng& rng) {
  if (set.contents.empty() || set.contents.size() != set.names.size()) {
    throw std::invalid_argument("snapshot fault needs a labeled shard set");
  }
  SnapshotMutation mut;
  mut.fault = fault;

  switch (fault) {
    case SnapshotFault::kCorruptChecksum: {
      const std::size_t s = rng.below(set.contents.size());
      std::string& bytes = set.contents[s];
      const auto blocks = mutable_blocks(bytes);
      if (blocks.empty()) {
        throw std::invalid_argument("shard has no non-empty column blocks");
      }
      const auto& block = blocks[rng.below(blocks.size())];
      const std::size_t off = block.payload_offset + rng.below(block.payload_len);
      const unsigned char bit = static_cast<unsigned char>(1u << rng.below(8));
      bytes[off] = static_cast<char>(
          static_cast<unsigned char>(bytes[off]) ^ bit);
      mut.shard = set.names[s];
      mut.column = block.name;
      mut.detail = "flipped bit mask " + std::to_string(bit) + " at payload byte " +
                   std::to_string(off - block.payload_offset) + " of column '" +
                   block.name + "'";
      mut.expect_substr = set.names[s] + ":" + block.name + ": checksum mismatch";
      break;
    }
    case SnapshotFault::kTruncateColumn: {
      const std::size_t s = rng.below(set.contents.size());
      std::string& bytes = set.contents[s];
      const auto blocks = mutable_blocks(bytes);
      if (blocks.empty()) {
        throw std::invalid_argument("shard has no non-empty column blocks");
      }
      const auto& block = blocks[rng.below(blocks.size())];
      const std::size_t keep = rng.below(block.payload_len);  // < payload_len
      bytes.resize(block.payload_offset + keep);
      mut.shard = set.names[s];
      mut.column = block.name;
      mut.detail = "cut shard after " + std::to_string(keep) + " of " +
                   std::to_string(block.payload_len) + " payload bytes in '" +
                   block.name + "'";
      mut.expect_substr =
          set.names[s] + ":" + block.name + ": truncated column block";
      break;
    }
    case SnapshotFault::kTornPublish: {
      if (set.contents.size() < 2) {
        throw std::invalid_argument("torn publish needs >= 2 shards");
      }
      // Stamp a non-first shard with a different epoch, as if the writer
      // re-published between shard writes.
      const std::size_t s = 1 + rng.below(set.contents.size() - 1);
      std::string& bytes = set.contents[s];
      const std::size_t off = bugtraq::colsnap_epoch_offset();
      std::uint64_t epoch = 0;
      for (std::size_t i = 0; i < 8; ++i) {
        epoch |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes[off + i]))
                 << (8 * i);
      }
      const std::uint64_t skew = 1 + rng.below(4);
      const std::uint64_t stamped = epoch + skew;
      for (std::size_t i = 0; i < 8; ++i) {
        bytes[off + i] = static_cast<char>((stamped >> (8 * i)) & 0xFF);
      }
      mut.shard = set.names[s];
      mut.column = "header";
      mut.detail = "restamped shard " + std::to_string(s) + " from epoch " +
                   std::to_string(epoch) + " to " + std::to_string(stamped);
      mut.expect_substr = set.names[s] + ":header: snapshot epoch";
      break;
    }
  }
  return mut;
}

}  // namespace dfsm::faultinject
