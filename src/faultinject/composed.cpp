#include "faultinject/composed.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "analysis/anomaly.h"
#include "analysis/chain_analyzer.h"
#include "analysis/discovery.h"
#include "analysis/monitor.h"
#include "apps/nullhttpd.h"
#include "apps/rwall.h"
#include "apps/xterm.h"
#include "bugtraq/corpus.h"
#include "bugtraq/csv_shards.h"
#include "core/chain.h"
#include "core/model.h"
#include "core/operation.h"
#include "core/pfsm.h"
#include "core/predicate.h"
#include "faultinject/model_faults.h"
#include "runtime/parallel.h"
#include "staticlint/registry.h"

namespace dfsm::faultinject {

namespace {

std::string strip_workdir(std::string text, const std::string& workdir) {
  const std::string prefix = workdir + "/";
  std::size_t pos = 0;
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    text.erase(pos, prefix.size());
  }
  return text;
}

void fail(TrialResult& r, const std::string& why) {
  if (!r.failure.empty()) r.failure += "; ";
  r.failure += why;
}

void expect_rule(TrialResult& r, const std::string& id) {
  r.expected_rules.push_back(id);
}

void catch_rule(TrialResult& r, const std::string& id) {
  r.caught_rules.push_back(id);
}

/// Lints one IR model, routing through the campaign-wide memo store and
/// aggregate when the deps carry them (the composed-surface equivalent
/// of campaign.cpp's lint_and_record).
staticlint::LintRun lint_through_deps(const staticlint::LintModel& model,
                                      const ComposedDeps& deps,
                                      TrialResult& r) {
  staticlint::LintOptions opts;
  if (deps.memo != nullptr) opts.memo = deps.memo;
  const auto run = staticlint::lint_model_ir(model, opts);
  r.lint_rules_executed += run.rules_executed;
  r.lint_memo_hits += run.memo_hits;
  r.lint_memo_misses += run.memo_misses;
  r.lint_memo_invalidated += run.memo_invalidated;
  if (deps.lint_agg != nullptr) {
    auto& agg = *deps.lint_agg;
    agg.memoized = true;
    agg.models_checked += run.models_checked;
    agg.rules_run = run.rules_run;
    agg.rules_executed += run.rules_executed;
    agg.memo_hits += run.memo_hits;
    agg.memo_misses += run.memo_misses;
    agg.memo_invalidated += run.memo_invalidated;
    for (const auto& d : run.findings) agg.findings.push_back(d);
  }
  if (deps.models_linted != nullptr) ++*deps.models_linted;
  return run;
}

/// Clones `chain` with the spec predicate of (op_index, pfsm_index)
/// replaced; the replacement pFSM is rebuilt as unchecked so its impl
/// accepts whatever the biased spec lets through. Object transforms are
/// not copied — the replay surfaces here (evaluate_batch, the monitor)
/// feed explicit per-operation inputs and never invoke flow().
core::ExploitChain rebind_pfsm_spec(const core::ExploitChain& chain,
                                    std::size_t op_index,
                                    std::size_t pfsm_index,
                                    core::Predicate spec,
                                    const std::string& clone_name) {
  core::ExploitChain out{clone_name};
  const auto& ops = chain.operations();
  const auto& gates = chain.gates();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    core::Operation op{ops[i].name(), ops[i].object_description()};
    const auto& pfsms = ops[i].pfsms();
    for (std::size_t j = 0; j < pfsms.size(); ++j) {
      const core::Pfsm& p = pfsms[j];
      if (i == op_index && j == pfsm_index) {
        op.add(core::Pfsm::unchecked(p.name(), p.type(), p.activity(), spec,
                                     p.action()));
      } else {
        op.add(p);
      }
    }
    out.add(std::move(op), gates[i]);
  }
  return out;
}

core::FsmModel with_chain(const core::FsmModel& model,
                          core::ExploitChain chain) {
  return core::FsmModel{model.name() + " (mutated)", model.bugtraq_ids(),
                        model.vulnerability_class(), model.software(),
                        model.consequence(), std::move(chain)};
}

// ---------------------------------------------------------------------
// Corpus phase: every composed trial runs the ingest pipeline once —
// clean when the composition drew no corpus mutator — and verifies the
// conservation invariant either way.

void run_corpus_phase(const std::vector<ComposedMutator>& corpus_kinds,
                      const CampaignConfig& cfg, Rng& rng, TrialResult& r) {
  // needed = shard-claiming mutators (reorder claims nothing); the +2
  // slack keeps reorder's two-shard minimum intact after a drop.
  std::size_t needed = 0;
  for (const ComposedMutator m : corpus_kinds) {
    if (m != ComposedMutator::kCorpusReorderShards) ++needed;
  }
  std::size_t nshards = 2 + rng.below(cfg.max_shards - 1);
  nshards = std::max(nshards, needed + 2);
  nshards = std::min(nshards, cfg.min_records);

  const std::size_t n =
      cfg.min_records + rng.below(cfg.max_records - cfg.min_records + 1);
  const std::uint64_t corpus_seed = rng.next();
  const bugtraq::Database db = bugtraq::synthetic_corpus_n(n, corpus_seed);
  auto blocks = runtime::static_blocks(n, nshards);
  while (blocks.size() < nshards) blocks.push_back({n, n});
  ShardSet set;
  set.paths = bugtraq::shard_paths(cfg.workdir + "/t", nshards);
  for (std::size_t i = 0; i < nshards; ++i) {
    set.contents.push_back(db.to_csv(blocks[i].begin, blocks[i].end));
    set.data_rows.push_back(blocks[i].end - blocks[i].begin);
  }
  std::map<std::string, std::size_t> rows_of;
  for (std::size_t i = 0; i < nshards; ++i) {
    rows_of[set.paths[i]] = set.data_rows[i];
  }
  r.generated = n;

  // Compose the mutations under the distinct-shard claim discipline: a
  // mutation landing on an already-claimed shard is re-rolled on a fresh
  // copy of the set (the rng advances, so the retry draws differently);
  // after 16 conflicts the component is skipped deterministically.
  std::vector<CorpusMutation> muts;
  std::vector<std::string> skipped;
  std::set<std::string> claimed;
  for (const ComposedMutator cm : corpus_kinds) {
    const CorpusFault fault = corpus_fault_of(cm);
    bool placed = false;
    for (int attempt = 0; attempt < 16 && !placed; ++attempt) {
      ShardSet copy = set;
      CorpusMutation mut =
          apply_corpus_fault(fault, copy, rng, cfg.max_attempts);
      if (!mut.shard.empty() && claimed.count(mut.shard) != 0) continue;
      set = std::move(copy);
      if (!mut.shard.empty()) claimed.insert(mut.shard);
      muts.push_back(std::move(mut));
      placed = true;
    }
    if (!placed) skipped.push_back(to_string(fault));
  }

  for (const auto& mut : muts) {
    if (!r.target.empty()) r.target += "+";
    r.target += strip_workdir(mut.shard, cfg.workdir);
    if (r.line == 0) r.line = mut.line;
    if (!r.detail.empty()) r.detail += "; ";
    r.detail += std::string(to_string(mut.fault)) + ": " + mut.detail;
  }
  for (const auto& name : skipped) {
    if (!r.detail.empty()) r.detail += "; ";
    r.detail += name + ": skipped (no unclaimed shard)";
  }

  for (std::size_t i = 0; i < set.paths.size(); ++i) {
    std::ofstream out{set.paths[i], std::ios::binary | std::ios::trunc};
    if (!out || !(out << set.contents[i]) || !out.flush()) {
      throw std::runtime_error("cannot write fault shard: " + set.paths[i]);
    }
  }

  // One fault hook covers every I/O-faulted shard in the composition
  // (claims guarantee at most one I/O fault per shard).
  std::map<std::string, std::size_t> fails_by_shard;
  for (const auto& mut : muts) {
    if (mut.fail_attempts > 0) fails_by_shard[mut.shard] = mut.fail_attempts;
  }
  bugtraq::IngestOptions options;
  options.policy = bugtraq::IngestPolicy::kLenient;
  options.max_attempts = cfg.max_attempts;
  options.backoff_base_ms = 0;  // exercise the retry loop, not the clock
  if (!fails_by_shard.empty()) {
    options.fault_hook = [fails_by_shard](const std::string& path,
                                          std::size_t attempt) {
      const auto it = fails_by_shard.find(path);
      return it != fails_by_shard.end() && attempt <= it->second;
    };
  }

  bugtraq::ShardIngestResult lenient;
  try {
    lenient = bugtraq::read_csv_shards(set.paths, options);
  } catch (const std::exception& ex) {
    fail(r, std::string("lenient ingest threw: ") + ex.what());
    return;
  }
  r.ingested = lenient.report.ingested;
  r.quarantined_rows = lenient.report.rows.size();
  r.quarantined_row_lines = lenient.report.quarantined_lines();
  r.quarantined_shards = lenient.report.shards.size();
  r.retries = lenient.report.retries;

  // Conservation: the claim discipline keeps per-component accounting
  // additive — an injected line never sits in a lost shard, and no
  // shard's rows are corrected for twice.
  long long expected = static_cast<long long>(r.generated);
  for (const auto& mut : muts) {
    expected += mut.injected_lines;
    for (const auto& lost : mut.lost_shards) {
      expected -= static_cast<long long>(rows_of.at(lost));
    }
  }
  long long actual = static_cast<long long>(r.ingested) +
                     static_cast<long long>(r.quarantined_row_lines);
  for (const auto& shard : lenient.report.shards) {
    actual += static_cast<long long>(shard.lines_seen);
  }
  r.conserved = expected == actual;
  if (r.conserved) {
    catch_rule(r, "conservation");
  } else {
    fail(r, "silent data loss: expected " + std::to_string(expected) +
                " accounted lines, found " + std::to_string(actual));
  }

  // A composition of only benign mutations must leave lenient ingest
  // clean; retries must sum over the composed I/O faults exactly (a
  // recovered transient retries fail_attempts times, an unreadable shard
  // exhausts the budget at max_attempts - 1 retries).
  bool all_benign = true;
  std::size_t expected_retries = 0;
  bool any_strict_throw = false;
  for (const auto& mut : muts) {
    const bool benign = mut.fault == CorpusFault::kDropShard ||
                        mut.fault == CorpusFault::kReorderShards ||
                        mut.fault == CorpusFault::kTransientIo;
    all_benign = all_benign && benign;
    expected_retries +=
        std::min<std::size_t>(mut.fail_attempts, cfg.max_attempts - 1);
    any_strict_throw = any_strict_throw || mut.expect_strict_throw;
  }
  if (all_benign && !lenient.report.clean()) {
    fail(r, "benign composition produced quarantine entries");
  }
  if (r.retries != expected_retries) {
    fail(r, "expected " + std::to_string(expected_retries) +
                " retries, saw " + std::to_string(r.retries));
  }

  // Strict ingest throws iff ANY component planted a defect, and the
  // error must name one of the defective shards (shard read order
  // decides which defect fires first).
  bugtraq::IngestOptions strict = options;
  strict.policy = bugtraq::IngestPolicy::kStrict;
  try {
    const auto direct = bugtraq::read_csv_shards(set.paths, strict);
    r.strict_threw = false;
    (void)direct;
  } catch (const std::exception& ex) {
    r.strict_threw = true;
    r.strict_error = strip_workdir(ex.what(), cfg.workdir);
  }
  if (r.strict_threw != any_strict_throw) {
    fail(r, any_strict_throw
                ? "strict ingest accepted a defective composed shard set"
                : "strict ingest threw on a benign composition: " +
                      r.strict_error);
  } else if (r.strict_threw) {
    bool named = false;
    for (const auto& mut : muts) {
      if (!mut.expect_strict_throw || mut.shard.empty()) continue;
      named = named ||
              r.strict_error.find(strip_workdir(mut.shard, cfg.workdir)) !=
                  std::string::npos;
    }
    if (!named) {
      fail(r, "strict error names no defective shard: " + r.strict_error);
    }
  }
}

// ---------------------------------------------------------------------
// Pipeline components (sweep cache, model IR, chain lint) — the
// single-mutator surfaces rehosted as composition components.

void run_sweep_fault_component(Rng& rng, const ComposedDeps& deps,
                               TrialResult& r) {
  constexpr std::array<analysis::SweepFault, 5> kSweepFaults = {
      analysis::SweepFault::kStaleSubmaskEntry,
      analysis::SweepFault::kFlippedCacheOutcome,
      analysis::SweepFault::kWrongGateComposition,
      analysis::SweepFault::kStaleSharedMemoAcrossSweeps,
      analysis::SweepFault::kMissedInvalidationOnPatch,
  };
  const auto& studies = *deps.studies;
  const std::size_t si = rng.below(studies.size());
  const std::size_t fi = rng.below(kSweepFaults.size());
  for (std::size_t k = 0; k < studies.size() * kSweepFaults.size(); ++k) {
    const apps::CaseStudy& study =
        *studies[(si + k / kSweepFaults.size()) % studies.size()];
    const analysis::SweepFault fault =
        kSweepFaults[(fi + k) % kSweepFaults.size()];
    const auto faulty = analysis::sweep_with_fault(study, fault);
    if (!faulty) continue;

    if (!r.detail.empty()) r.detail += "; ";
    r.detail += std::string("sweep-cache ") + analysis::to_string(fault) +
                " @ " + study.name() + "/" + faulty->target;
    analysis::SweepOptions direct_opts;
    direct_opts.mode = analysis::SweepMode::kDirect;
    const auto reference = faulty->reference
                               ? *faulty->reference
                               : analysis::sweep(study, direct_opts);
    if (!analysis::reports_equivalent(reference, faulty->report)) {
      catch_rule(r, "memoized-vs-direct");
    } else {
      fail(r, "corrupted sweep cache escaped the memoized-vs-direct "
              "cross-check");
    }
    return;
  }
  fail(r, "no case study hosts a sweep-cache fault");
}

void run_clean_sweep_check(Rng& rng, const ComposedDeps& deps,
                           TrialResult& r) {
  const auto& studies = *deps.studies;
  const apps::CaseStudy& study = *studies[rng.below(studies.size())];
  analysis::SweepOptions direct_opts;
  direct_opts.mode = analysis::SweepMode::kDirect;
  const auto memoized = analysis::sweep(study);
  const auto direct = analysis::sweep(study, direct_opts);
  if (analysis::reports_equivalent(memoized, direct)) {
    catch_rule(r, "memoized-vs-direct");
  } else {
    fail(r, "clean memoized sweep diverged from the direct reference on " +
                study.name());
  }
}

void mark_caught_expected(const staticlint::LintRun& run,
                          const std::vector<std::string>& expected,
                          TrialResult& r, bool& hit) {
  for (const auto& finding : run.findings) {
    for (const auto& want : expected) {
      if (finding.rule_id != want) continue;
      bool seen = false;
      for (const auto& id : r.caught_rules) seen = seen || id == want;
      if (!seen) catch_rule(r, want);
      hit = true;
    }
  }
}

void run_model_ir_component(Rng& rng, const ComposedDeps& deps,
                            TrialResult& r) {
  const auto& curated = *deps.curated;
  const std::size_t num_faults = kAllModelFaults.size();
  const std::size_t mi = rng.below(curated.size());
  const std::size_t fi = rng.below(num_faults);
  for (std::size_t k = 0; k < curated.size() * num_faults; ++k) {
    staticlint::LintModel copy =
        curated[(mi + k / num_faults) % curated.size()];
    const ModelFault fault = kAllModelFaults[(fi + k) % num_faults];
    const auto mut = apply_model_fault(fault, copy, rng);
    if (!mut) continue;

    if (!r.detail.empty()) r.detail += "; ";
    r.detail += std::string("model-ir ") + to_string(fault) + " @ " +
                mut->model + (mut->target.empty() ? "" : "/" + mut->target);
    for (const auto& id : mut->expected_rules) expect_rule(r, id);
    const auto run = lint_through_deps(copy, deps, r);
    bool hit = false;
    mark_caught_expected(run, mut->expected_rules, r, hit);
    if (!hit) {
      fail(r, "composed model-ir defect escaped the linter (" +
                  std::string(to_string(fault)) + ")");
    }
    return;
  }
  fail(r, "no applicable model fault found");
}

void run_chain_lint_component(Rng& rng, const ComposedDeps& deps,
                              TrialResult& r) {
  const ChainLintFault fault =
      kAllChainLintFaults[rng.below(kAllChainLintFaults.size())];
  const ChainLintFixture fx = make_chain_lint_fault(fault, rng);
  if (!r.detail.empty()) r.detail += "; ";
  r.detail += std::string("chain-lint ") + to_string(fault) + " @ " +
              fx.chain.name() + (fx.target.empty() ? "" : "/" + fx.target);
  for (const auto& id : fx.expected_rules) expect_rule(r, id);
  const auto run = lint_through_deps(
      staticlint::LintModel::from_chain(fx.chain), deps, r);
  bool hit = false;
  mark_caught_expected(run, fx.expected_rules, r, hit);
  if (!hit) {
    fail(r, "composed chain-lint defect escaped lint_chain (" +
                std::string(to_string(fault)) + ")");
  }
}

// ---------------------------------------------------------------------
// Analysis-layer mutators.

/// The v0.5 discovery campaign, computed once: it is deterministic (a
/// pure parallel_map fan-out), so every trial shares one reference run.
const analysis::DiscoveryReport& reference_discovery() {
  static const analysis::DiscoveryReport report =
      analysis::probe_nullhttpd_v05();
  return report;
}

/// Corrupt-discovery-oracle mutator: replace Figure-4 pFSM2's spec with
/// an accept-all or reject-all predicate and replay the v0.5 probe set
/// through both the clean and the corrupted chain. The corrupted
/// oracle's agreement count must match the closed form computed from
/// the probes' ground truth — and must fall below the clean oracle's,
/// which is exactly how cross-validation exposes a biased model.
void run_oracle_component(Rng& rng, const ComposedDeps&, TrialResult& r) {
  const auto& ref = reference_discovery();
  const auto model = apps::NullHttpd::figure4_model();
  const bool accept_all = rng.below(2) == 0;
  const core::Predicate biased =
      accept_all
          ? core::Predicate::accept_all("corrupted oracle: accept every copy")
          : core::Predicate::reject_all(
                "corrupted oracle: reject every copy");
  const auto corrupted =
      rebind_pfsm_spec(model.chain(), 0, 1, biased,
                       model.chain().name() + " (corrupted oracle)");

  if (!r.detail.empty()) r.detail += "; ";
  r.detail += std::string("oracle ") +
              (accept_all ? "accept-all" : "reject-all") +
              " spec on pFSM2, " + std::to_string(ref.probes.size()) +
              " probe(s)";
  expect_rule(r, "oracle-divergence");

  // The same input-set construction as discovery.cpp's cross-validation.
  std::vector<std::vector<std::vector<core::Object>>> input_sets;
  input_sets.reserve(ref.probes.size());
  for (const auto& probe : ref.probes) {
    const bool overrun = probe.body_len > probe.buffer_size;
    std::vector<std::vector<core::Object>> inputs(3);
    inputs[0].push_back(core::Object{"request"}.with(
        "contentLen", static_cast<std::int64_t>(probe.content_len)));
    inputs[0].push_back(
        core::Object{"input"}
            .with("input_length", static_cast<std::int64_t>(probe.body_len))
            .with("buffer_size",
                  static_cast<std::int64_t>(probe.buffer_size)));
    inputs[1].push_back(
        core::Object{"free chunk B"}.with("links_unchanged", !overrun));
    inputs[2].push_back(
        core::Object{"addr_free"}.with("addr_free_unchanged", !overrun));
    input_sets.push_back(std::move(inputs));
  }
  const auto clean_results = model.chain().evaluate_batch(input_sets);
  const auto bad_results = corrupted.evaluate_batch(input_sets);

  std::size_t checked = 0;
  std::size_t clean_agree = 0;
  std::size_t bad_agree = 0;
  std::size_t expected_bad_agree = 0;
  // reject-all spec => the unchecked impl still accepts => hidden path
  // taken on every probe; accept-all => never.
  const bool bad_predicts = !accept_all;
  for (std::size_t i = 0; i < ref.probes.size(); ++i) {
    const auto& clean_out = clean_results[i].operations[0].outcomes;
    const auto& bad_out = bad_results[i].operations[0].outcomes;
    if (clean_out.size() < 2 || bad_out.size() < 2) continue;
    ++checked;
    const bool truth = ref.probes[i].predicate_violated;
    if (clean_out[1].hidden_path_taken() == truth) ++clean_agree;
    if (bad_out[1].hidden_path_taken() == truth) ++bad_agree;
    if (bad_predicts == truth) ++expected_bad_agree;
  }

  bool ok = true;
  if (checked != ref.model_checked || clean_agree != ref.model_agreements) {
    ok = false;
    fail(r, "clean oracle replay disagrees with the discovery campaign (" +
                std::to_string(clean_agree) + "/" + std::to_string(checked) +
                " vs " + std::to_string(ref.model_agreements) + "/" +
                std::to_string(ref.model_checked) + ")");
  }
  if (bad_agree != expected_bad_agree) {
    ok = false;
    fail(r, "corrupted oracle agreements off the closed form: " +
                std::to_string(bad_agree) + " != " +
                std::to_string(expected_bad_agree));
  }
  if (bad_agree >= clean_agree) {
    ok = false;
    fail(r, "corrupted oracle kept full agreement — cross-validation is "
            "blind to the bias");
  }
  if (ok) catch_rule(r, "oracle-divergence");
}

/// Desync-monitor mutator: rebuild a curated race model with one pFSM's
/// spec widened to accept-all and run the same observation through the
/// reference and the desynced monitor. The desynced monitor must report
/// exactly one violation fewer — the reference-vs-desynced comparison
/// is what catches a monitor whose model drifted from the deployed spec.
void run_monitor_component(Rng& rng, const ComposedDeps&, TrialResult& r) {
  const bool use_xterm = rng.below(2) == 0;
  core::FsmModel model = use_xterm ? apps::XtermLogger::figure5_model()
                                   : apps::RwallDaemon::figure6_model();
  const auto obs = use_xterm ? analysis::xterm_observation(true, false, false)
                             : analysis::rwall_observation(false, "file");
  // xterm: only pFSM2 (op 0, index 1) fires on this observation, so
  // desync it; rwall: both single-pFSM operations fire, desync either.
  const std::size_t op_index = use_xterm ? 0 : rng.below(2);
  const std::size_t pfsm_index = use_xterm ? 1 : 0;
  const std::size_t expected_ref = use_xterm ? 1 : 2;

  if (!r.detail.empty()) r.detail += "; ";
  r.detail += std::string("monitor desync ") +
              (use_xterm ? "figure5" : "figure6") + " op" +
              std::to_string(op_index) + "/pfsm" +
              std::to_string(pfsm_index);
  expect_rule(r, "monitor-desync");

  analysis::RuntimeMonitor reference{model};
  (void)reference.observe(obs);
  core::FsmModel desynced_model = with_chain(
      model,
      rebind_pfsm_spec(
          model.chain(), op_index, pfsm_index,
          core::Predicate::accept_all("desynced spec: accept all"),
          model.chain().name() + " (desynced)"));
  analysis::RuntimeMonitor desynced{std::move(desynced_model)};
  (void)desynced.observe(obs);

  bool ok = true;
  if (reference.violations().size() != expected_ref) {
    ok = false;
    fail(r, "reference monitor saw " +
                std::to_string(reference.violations().size()) +
                " violation(s), expected " + std::to_string(expected_ref));
  }
  if (desynced.violations().size() + 1 != reference.violations().size()) {
    ok = false;
    fail(r, "desynced monitor saw " +
                std::to_string(desynced.violations().size()) +
                " violation(s) — the desync went unnoticed");
  }
  if (ok) catch_rule(r, "monitor-desync");
}

/// Bias-anomaly-threshold mutator: train the detector on benign NULL
/// HTTPD traces, then raise the alarm threshold to the #5774 exploit
/// trace's own score. The spec threshold (0.0) must flag the exploit;
/// the biased threshold must miss it; benign traffic must score 0 under
/// both — the exact signature of a threshold tampered to hide a known
/// exploit.
void run_anomaly_component(Rng& rng, const ComposedDeps&, TrialResult& r) {
  const std::size_t ngram = 2 + rng.below(2);  // bigram or trigram
  constexpr std::array<std::size_t, 5> kBenignSizes = {0, 100, 1024, 2048,
                                                       5000};
  analysis::AnomalyDetector detector{ngram};
  for (const std::size_t len : kBenignSizes) {
    apps::NullHttpd app{};
    detector.train(app.handle_post(static_cast<std::int32_t>(len),
                                   std::string(len, 'a'))
                       .events);
  }
  const std::size_t probe_len = kBenignSizes[rng.below(kBenignSizes.size())];
  apps::NullHttpd benign_app{};
  const auto benign_trace =
      benign_app
          .handle_post(static_cast<std::int32_t>(probe_len),
                       std::string(probe_len, 'a'))
          .events;

  const auto info = apps::NullHttpd::scout(-800);
  const auto body = apps::NullHttpd::build_overflow_body(info);
  apps::NullHttpd victim{};
  const auto exploit_trace =
      victim.handle_post(-800, std::string(body.begin(), body.end())).events;

  const double score = detector.score(exploit_trace);
  // The bias: alarm only strictly ABOVE the exploit's own score.
  const double biased_threshold = score;

  if (!r.detail.empty()) r.detail += "; ";
  r.detail += "anomaly " + std::to_string(ngram) + "-gram, exploit score " +
              std::to_string(score) + ", biased threshold " +
              std::to_string(biased_threshold);
  expect_rule(r, "anomaly-threshold-bias");

  bool ok = true;
  if (!(score > 0.0)) {
    ok = false;
    fail(r, "exploit trace scored 0 — the detector cannot arbitrate the "
            "threshold bias");
  }
  if (!detector.anomalous(exploit_trace, 0.0)) {
    ok = false;
    fail(r, "spec threshold (0.0) missed the exploit trace");
  }
  if (detector.anomalous(exploit_trace, biased_threshold)) {
    ok = false;
    fail(r, "biased threshold still flagged the exploit — the bias had no "
            "effect to detect");
  }
  if (detector.score(benign_trace) != 0.0) {
    ok = false;
    fail(r, "benign trace scored non-zero under the trained detector");
  }
  if (ok) catch_rule(r, "anomaly-threshold-bias");
}

}  // namespace

const char* to_string(ComposedMutator m) noexcept {
  switch (m) {
    case ComposedMutator::kCorpusTruncateTail: return "truncate-tail";
    case ComposedMutator::kCorpusMangleQuoting: return "mangle-quoting";
    case ComposedMutator::kCorpusCorruptField: return "corrupt-field";
    case ComposedMutator::kCorpusMissingHeader: return "missing-header";
    case ComposedMutator::kCorpusDuplicateHeader: return "duplicate-header";
    case ComposedMutator::kCorpusDropShard: return "drop-shard";
    case ComposedMutator::kCorpusReorderShards: return "reorder-shards";
    case ComposedMutator::kCorpusTransientIo: return "transient-io";
    case ComposedMutator::kCorpusUnreadableShard: return "unreadable-shard";
    case ComposedMutator::kSweepCacheFault: return "sweep-cache";
    case ComposedMutator::kModelIrFault: return "model-ir";
    case ComposedMutator::kChainLintFault: return "chain-lint";
    case ComposedMutator::kCorruptDiscoveryOracle: return "corrupt-oracle";
    case ComposedMutator::kDesyncMonitorModel: return "desync-monitor";
    case ComposedMutator::kBiasAnomalyThreshold: return "bias-anomaly";
  }
  return "unknown";
}

bool is_corpus_mutator(ComposedMutator m) noexcept {
  switch (m) {
    case ComposedMutator::kCorpusTruncateTail:
    case ComposedMutator::kCorpusMangleQuoting:
    case ComposedMutator::kCorpusCorruptField:
    case ComposedMutator::kCorpusMissingHeader:
    case ComposedMutator::kCorpusDuplicateHeader:
    case ComposedMutator::kCorpusDropShard:
    case ComposedMutator::kCorpusReorderShards:
    case ComposedMutator::kCorpusTransientIo:
    case ComposedMutator::kCorpusUnreadableShard:
      return true;
    default:
      return false;
  }
}

CorpusFault corpus_fault_of(ComposedMutator m) {
  switch (m) {
    case ComposedMutator::kCorpusTruncateTail:
      return CorpusFault::kTruncateTail;
    case ComposedMutator::kCorpusMangleQuoting:
      return CorpusFault::kMangleQuoting;
    case ComposedMutator::kCorpusCorruptField:
      return CorpusFault::kCorruptField;
    case ComposedMutator::kCorpusMissingHeader:
      return CorpusFault::kMissingHeader;
    case ComposedMutator::kCorpusDuplicateHeader:
      return CorpusFault::kDuplicateHeader;
    case ComposedMutator::kCorpusDropShard:
      return CorpusFault::kDropShard;
    case ComposedMutator::kCorpusReorderShards:
      return CorpusFault::kReorderShards;
    case ComposedMutator::kCorpusTransientIo:
      return CorpusFault::kTransientIo;
    case ComposedMutator::kCorpusUnreadableShard:
      return CorpusFault::kUnreadableShard;
    default:
      throw std::invalid_argument(std::string("not a corpus mutator: ") +
                                  to_string(m));
  }
}

std::vector<ComposedMutator> draw_composition(Rng& rng) {
  const std::size_t k = 2 + rng.below(3);
  std::vector<ComposedMutator> out;
  out.reserve(k);
  while (out.size() < k) {
    const ComposedMutator m =
        kAllComposedMutators[rng.below(kAllComposedMutators.size())];
    bool dup = false;
    for (const ComposedMutator e : out) dup = dup || e == m;
    if (!dup) out.push_back(m);
  }
  return out;
}

TrialResult run_composed_trial(const CampaignConfig& cfg, std::size_t trial,
                               Rng& rng, const ComposedDeps& deps) {
  return run_composed_trial_with(draw_composition(rng), cfg, trial, rng,
                                 deps);
}

TrialResult run_composed_trial_with(
    const std::vector<ComposedMutator>& mutators, const CampaignConfig& cfg,
    std::size_t trial, Rng& rng, const ComposedDeps& deps) {
  if (mutators.empty() || mutators.size() > kAllComposedMutators.size()) {
    throw std::invalid_argument(
        "composed trial needs 1.." +
        std::to_string(kAllComposedMutators.size()) + " mutators");
  }
  for (std::size_t i = 0; i < mutators.size(); ++i) {
    for (std::size_t j = i + 1; j < mutators.size(); ++j) {
      if (mutators[i] == mutators[j]) {
        throw std::invalid_argument(
            std::string("duplicate composed mutator: ") +
            to_string(mutators[i]));
      }
    }
  }
  if (deps.curated == nullptr || deps.studies == nullptr ||
      deps.curated->empty() || deps.studies->empty()) {
    throw std::invalid_argument(
        "composed trial needs curated models and case studies");
  }

  TrialResult r;
  r.trial = trial;
  r.kind = "composed";
  for (const ComposedMutator m : mutators) {
    if (!r.fault.empty()) r.fault += "+";
    r.fault += to_string(m);
  }

  // Phase 1 — the corpus pipeline, always (clean when no corpus mutator
  // was drawn); verifies the conservation invariant on every trial.
  std::vector<ComposedMutator> corpus_kinds;
  for (const ComposedMutator m : mutators) {
    if (is_corpus_mutator(m)) corpus_kinds.push_back(m);
  }
  expect_rule(r, "conservation");
  run_corpus_phase(corpus_kinds, cfg, rng, r);

  // Phase 2 — non-corpus components, in drawn order.
  bool sweep_fault_drawn = false;
  for (const ComposedMutator m : mutators) {
    switch (m) {
      case ComposedMutator::kSweepCacheFault:
        sweep_fault_drawn = true;
        expect_rule(r, "memoized-vs-direct");
        run_sweep_fault_component(rng, deps, r);
        break;
      case ComposedMutator::kModelIrFault:
        run_model_ir_component(rng, deps, r);
        break;
      case ComposedMutator::kChainLintFault:
        run_chain_lint_component(rng, deps, r);
        break;
      case ComposedMutator::kCorruptDiscoveryOracle:
        run_oracle_component(rng, deps, r);
        break;
      case ComposedMutator::kDesyncMonitorModel:
        run_monitor_component(rng, deps, r);
        break;
      case ComposedMutator::kBiasAnomalyThreshold:
        run_anomaly_component(rng, deps, r);
        break;
      default:
        break;  // corpus mutators ran in phase 1
    }
  }

  // Phase 3 — the memoized-vs-direct invariant, always: a clean
  // cross-check when the composition did not corrupt the sweep cache
  // (the corrupted variant already asserted divergence above).
  if (!sweep_fault_drawn) {
    expect_rule(r, "memoized-vs-direct");
    run_clean_sweep_check(rng, deps, r);
  }

  r.detected = true;
  for (const auto& want : r.expected_rules) {
    bool got = false;
    for (const auto& id : r.caught_rules) got = got || id == want;
    r.detected = r.detected && got;
  }
  r.ok = r.failure.empty();
  return r;
}

}  // namespace dfsm::faultinject
