// rng.h — the fault-campaign PRNG: splitmix64 over a (seed, stream)
// pair, so every trial's randomness is a pure function of the campaign
// seed and the trial index. No global state, no time, no
// std::random_device — two runs of the same campaign produce the same
// mutations byte for byte, which is what makes a failing trial
// replayable from its seed alone (DESIGN.md §9).
#ifndef DFSM_FAULTINJECT_RNG_H
#define DFSM_FAULTINJECT_RNG_H

#include <cstddef>
#include <cstdint>

namespace dfsm::faultinject {

/// Deterministic per-trial random stream.
class Rng {
 public:
  /// Streams with equal (seed, stream) pairs are identical; distinct
  /// pairs are statistically independent (splitmix64's guarantee).
  Rng(std::uint64_t seed, std::uint64_t stream) noexcept
      : state_(mix(seed ^ mix(stream + kGamma))) {}

  /// Next 64 pseudo-random bits.
  std::uint64_t next() noexcept {
    state_ += kGamma;
    return mix(state_);
  }

  /// Uniform-ish draw from [0, n); 0 when n == 0.
  std::size_t below(std::size_t n) noexcept {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }

  /// True with probability num/den.
  bool chance(std::size_t num, std::size_t den) noexcept {
    return below(den) < num;
  }

 private:
  static constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;

  static std::uint64_t mix(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_;
};

}  // namespace dfsm::faultinject

#endif  // DFSM_FAULTINJECT_RNG_H
