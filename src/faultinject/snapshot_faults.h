// snapshot_faults.h — seeded mutators that corrupt binary columnar
// snapshots (bugtraq/colsnap.h) the way real storage does: a flipped
// payload byte, a column block cut short by a torn write, and a torn
// publish (shards from two different corpus epochs in one set). The
// loader's contract under test: every defect is refused, all-or-nothing,
// with a "<file>:<column>: <reason>" message naming exactly where.
//
// Mutators edit an in-memory SnapshotSet and return a SnapshotMutation
// carrying the substring the loader's error must contain. They are
// deterministic in the Rng and never touch the filesystem — the campaign
// owns all I/O (and for snapshots there is none: decode_colsnap_shards
// accepts in-memory bodies).
#ifndef DFSM_FAULTINJECT_SNAPSHOT_FAULTS_H
#define DFSM_FAULTINJECT_SNAPSHOT_FAULTS_H

#include <array>
#include <string>
#include <vector>

#include "faultinject/rng.h"

namespace dfsm::faultinject {

/// The snapshot fault taxonomy (one mutator each).
enum class SnapshotFault {
  kCorruptChecksum,  ///< flip one payload byte (bit rot / torn sector)
  kTruncateColumn,   ///< cut a shard mid-payload (torn write)
  kTornPublish,      ///< stamp a later shard with a different epoch
};

inline constexpr std::array<SnapshotFault, 3> kAllSnapshotFaults = {
    SnapshotFault::kCorruptChecksum,
    SnapshotFault::kTruncateColumn,
    SnapshotFault::kTornPublish,
};

[[nodiscard]] const char* to_string(SnapshotFault f) noexcept;

/// An in-memory colsnap shard set: the labels decode errors use, and
/// each shard's encoded bytes, in shard order.
struct SnapshotSet {
  std::vector<std::string> names;
  std::vector<std::string> contents;  ///< parallel to names
};

/// What a mutator did and what the loader must say about it.
struct SnapshotMutation {
  SnapshotFault fault = SnapshotFault::kCorruptChecksum;
  std::string shard;          ///< affected shard label
  std::string column;         ///< affected column ("header" for torn publish)
  std::string detail;         ///< human-readable description
  std::string expect_substr;  ///< must appear in the loader's refusal
};

/// Applies `fault` to the shard set. kTornPublish needs >= 2 shards
/// (throws std::invalid_argument otherwise); the others accept any
/// non-empty set. Deterministic in `rng`.
[[nodiscard]] SnapshotMutation apply_snapshot_fault(SnapshotFault fault,
                                                    SnapshotSet& set,
                                                    Rng& rng);

}  // namespace dfsm::faultinject

#endif  // DFSM_FAULTINJECT_SNAPSHOT_FAULTS_H
