#include "faultinject/model_faults.h"

#include <stdexcept>
#include <utility>

#include "core/operation.h"
#include "core/pfsm.h"
#include "core/predicate.h"

namespace dfsm::faultinject {

namespace {

using staticlint::LintModel;
using staticlint::LintPfsm;

/// Flattened (operation index, pFSM index) positions.
std::vector<std::pair<std::size_t, std::size_t>> pfsm_positions(
    const LintModel& m) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < m.operations.size(); ++i) {
    for (std::size_t j = 0; j < m.operations[i].pfsms.size(); ++j) {
      out.emplace_back(i, j);
    }
  }
  return out;
}

ModelMutation made(ModelFault fault, const LintModel& m, std::string target,
                   std::string detail, std::vector<std::string> rules) {
  ModelMutation mut;
  mut.fault = fault;
  mut.model = m.name;
  mut.target = std::move(target);
  mut.detail = std::move(detail);
  mut.expected_rules = std::move(rules);
  return mut;
}

std::optional<ModelMutation> drop_all_operations(LintModel& m, Rng&) {
  if (m.operations.empty()) return std::nullopt;
  const std::size_t n = m.operations.size();
  m.operations.clear();
  m.gates.clear();
  return made(ModelFault::kDropAllOperations, m, "",
              "deleted all " + std::to_string(n) + " operations", {"ST001"});
}

std::optional<ModelMutation> drop_gate(LintModel& m, Rng& rng) {
  if (m.gates.empty()) return std::nullopt;
  const std::size_t g = rng.below(m.gates.size());
  m.gates.erase(m.gates.begin() + static_cast<std::ptrdiff_t>(g));
  return made(ModelFault::kDropGate, m, "",
              "deleted propagation gate " + std::to_string(g + 1), {"ST002"});
}

std::optional<ModelMutation> empty_operation(LintModel& m, Rng& rng) {
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < m.operations.size(); ++i) {
    if (!m.operations[i].pfsms.empty()) candidates.push_back(i);
  }
  if (candidates.empty()) return std::nullopt;
  const std::size_t i = candidates[rng.below(candidates.size())];
  m.operations[i].pfsms.clear();
  return made(ModelFault::kEmptyOperation, m, m.operations[i].name,
              "deleted every pFSM of the operation", {"ST003"});
}

std::optional<ModelMutation> duplicate_operation_name(LintModel& m, Rng& rng) {
  if (m.operations.size() < 2) return std::nullopt;
  const std::size_t j = 1 + rng.below(m.operations.size() - 1);
  const std::size_t i = rng.below(j);
  const std::string old = m.operations[j].name;
  m.operations[j].name = m.operations[i].name;
  return made(ModelFault::kDuplicateOperationName, m, m.operations[j].name,
              "renamed operation '" + old + "' to collide with operation " +
                  std::to_string(i + 1),
              {"ST004"});
}

std::optional<ModelMutation> duplicate_pfsm_name(LintModel& m, Rng& rng) {
  const auto positions = pfsm_positions(m);
  if (positions.size() < 2) return std::nullopt;
  const std::size_t b = 1 + rng.below(positions.size() - 1);
  const std::size_t a = rng.below(b);
  auto& victim = m.operations[positions[b].first].pfsms[positions[b].second];
  const std::string old = victim.name;
  victim.name = m.operations[positions[a].first].pfsms[positions[a].second].name;
  return made(ModelFault::kDuplicatePfsmName, m,
              m.operations[positions[b].first].name + "/" + victim.name,
              "renamed pFSM '" + old + "' to collide with an earlier pFSM",
              {"ST005"});
}

std::optional<ModelMutation> clear_activity(LintModel& m, Rng& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> candidates;
  for (const auto& [i, j] : pfsm_positions(m)) {
    if (!m.operations[i].pfsms[j].activity.empty()) candidates.emplace_back(i, j);
  }
  if (candidates.empty()) return std::nullopt;
  const auto [i, j] = candidates[rng.below(candidates.size())];
  auto& p = m.operations[i].pfsms[j];
  p.activity.clear();
  return made(ModelFault::kClearActivity, m,
              m.operations[i].name + "/" + p.name,
              "erased the elementary-activity description", {"ST006"});
}

std::optional<ModelMutation> clear_spec_description(LintModel& m, Rng& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> candidates;
  for (const auto& [i, j] : pfsm_positions(m)) {
    const auto& d = m.operations[i].pfsms[j].spec.description;
    if (!d.empty() && d != "-") candidates.emplace_back(i, j);
  }
  if (candidates.empty()) return std::nullopt;
  const auto [i, j] = candidates[rng.below(candidates.size())];
  auto& p = m.operations[i].pfsms[j];
  p.spec.description.clear();
  return made(ModelFault::kClearSpecDescription, m,
              m.operations[i].name + "/" + p.name,
              "erased the specification predicate's description", {"ST007"});
}

std::optional<ModelMutation> clear_consequence(LintModel& m, Rng&) {
  if (m.gates.empty() || m.gates.size() != m.operations.size() ||
      m.gates.back().empty()) {
    return std::nullopt;
  }
  const std::string old = m.gates.back();
  m.gates.back().clear();
  return made(ModelFault::kClearConsequence, m, "",
              "erased the final gate's consequence ('" + old + "')",
              {"ST008"});
}

std::optional<ModelMutation> declare_all_secure(LintModel& m, Rng&) {
  if (!m.has_metadata || pfsm_positions(m).empty()) return std::nullopt;
  std::size_t flipped = 0;
  for (auto& op : m.operations) {
    for (auto& p : op.pfsms) {
      if (!p.declared_secure) ++flipped;
      p.declared_secure = true;
      p.impl = p.spec;  // keep LM002 quiet; LM001 is the target
    }
  }
  return made(ModelFault::kDeclareAllSecure, m, "",
              "declared all pFSMs secure (" + std::to_string(flipped) +
                  " flipped) in a registered vulnerability model",
              {"LM001"});
}

std::optional<ModelMutation> flip_declared_secure(LintModel& m, Rng& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> candidates;
  for (const auto& [i, j] : pfsm_positions(m)) {
    const auto& p = m.operations[i].pfsms[j];
    if (!p.declared_secure && (p.spec.description != p.impl.description ||
                               p.spec.kind != p.impl.kind)) {
      candidates.emplace_back(i, j);
    }
  }
  if (candidates.empty()) return std::nullopt;
  const auto [i, j] = candidates[rng.below(candidates.size())];
  auto& p = m.operations[i].pfsms[j];
  p.declared_secure = true;
  return made(ModelFault::kFlipDeclaredSecure, m,
              m.operations[i].name + "/" + p.name,
              "declared the pFSM secure although impl ('" +
                  p.impl.description + "') differs from spec ('" +
                  p.spec.description + "')",
              {"LM002"});
}

std::optional<ModelMutation> inject_reject_all(LintModel& m, Rng& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> candidates;
  for (const auto& [i, j] : pfsm_positions(m)) {
    if (i + 1 < m.operations.size()) candidates.emplace_back(i, j);
  }
  if (candidates.empty()) return std::nullopt;
  const auto [i, j] = candidates[rng.below(candidates.size())];
  auto& p = m.operations[i].pfsms[j];
  p.spec.kind = core::PredicateKind::kRejectAll;
  p.spec.description = "reject all";
  p.impl.kind = core::PredicateKind::kRejectAll;
  p.impl.description = "reject all";
  return made(ModelFault::kInjectRejectAll, m,
              m.operations[i].name + "/" + p.name,
              "replaced the predicate pair with reject-all, stranding " +
                  std::to_string(m.operations.size() - i - 1) +
                  " downstream operation(s)",
              {"LM003"});
}

std::optional<ModelMutation> retype_pfsm(LintModel& m, Rng& rng) {
  const auto positions = pfsm_positions(m);
  if (positions.empty()) return std::nullopt;
  const auto [i, j] = positions[rng.below(positions.size())];
  auto& p = m.operations[i].pfsms[j];
  const auto old = p.type;
  p.type = static_cast<core::PfsmType>(
      (static_cast<int>(old) + 1 + static_cast<int>(rng.below(2))) % 3);
  return made(ModelFault::kRetypePfsm, m,
              m.operations[i].name + "/" + p.name,
              std::string("retyped the pFSM from ") + to_string(old) +
                  " to " + to_string(p.type),
              {"TX001", "TX002"});
}

}  // namespace

const char* to_string(ModelFault f) noexcept {
  switch (f) {
    case ModelFault::kDropAllOperations: return "drop-all-operations";
    case ModelFault::kDropGate: return "drop-gate";
    case ModelFault::kEmptyOperation: return "empty-operation";
    case ModelFault::kDuplicateOperationName: return "duplicate-operation-name";
    case ModelFault::kDuplicatePfsmName: return "duplicate-pfsm-name";
    case ModelFault::kClearActivity: return "clear-activity";
    case ModelFault::kClearSpecDescription: return "clear-spec-description";
    case ModelFault::kClearConsequence: return "clear-consequence";
    case ModelFault::kDeclareAllSecure: return "declare-all-secure";
    case ModelFault::kFlipDeclaredSecure: return "flip-declared-secure";
    case ModelFault::kInjectRejectAll: return "inject-reject-all";
    case ModelFault::kRetypePfsm: return "retype-pfsm";
  }
  return "unknown";
}

std::optional<ModelMutation> apply_model_fault(ModelFault fault,
                                               staticlint::LintModel& model,
                                               Rng& rng) {
  switch (fault) {
    case ModelFault::kDropAllOperations: return drop_all_operations(model, rng);
    case ModelFault::kDropGate: return drop_gate(model, rng);
    case ModelFault::kEmptyOperation: return empty_operation(model, rng);
    case ModelFault::kDuplicateOperationName:
      return duplicate_operation_name(model, rng);
    case ModelFault::kDuplicatePfsmName: return duplicate_pfsm_name(model, rng);
    case ModelFault::kClearActivity: return clear_activity(model, rng);
    case ModelFault::kClearSpecDescription:
      return clear_spec_description(model, rng);
    case ModelFault::kClearConsequence: return clear_consequence(model, rng);
    case ModelFault::kDeclareAllSecure: return declare_all_secure(model, rng);
    case ModelFault::kFlipDeclaredSecure:
      return flip_declared_secure(model, rng);
    case ModelFault::kInjectRejectAll: return inject_reject_all(model, rng);
    case ModelFault::kRetypePfsm: return retype_pfsm(model, rng);
  }
  throw std::invalid_argument("unknown model fault");
}

std::vector<std::vector<core::Object>> ChainFaultFixture::inputs_for(
    std::int64_t len) const {
  core::Object payload{"payload"};
  payload.with("len", len);
  return {{payload}, {payload}};
}

ChainFaultFixture make_chain_fault(Rng& rng) {
  const std::int64_t limit = 64LL << rng.below(4);  // 64..512
  const bool unchecked = rng.chance(1, 2);
  const std::int64_t slack =
      1 + static_cast<std::int64_t>(rng.below(static_cast<std::size_t>(limit)));
  const std::int64_t impl_limit = limit + slack;

  const auto len_at_most = [](std::int64_t hi) {
    return core::Predicate{
        "0 <= len <= " + std::to_string(hi), [hi](const core::Object& o) {
          const auto len = o.attr_int("len");
          return len.has_value() && *len >= 0 && *len <= hi;
        }};
  };

  core::Operation receive{"receive request", "payload from the socket"};
  receive.add(core::Pfsm::secure(
      "pFSM1", core::PfsmType::kContentAttributeCheck,
      "read the len-byte payload",
      core::Predicate{"len >= 0",
                      [](const core::Object& o) {
                        const auto len = o.attr_int("len");
                        return len.has_value() && *len >= 0;
                      }},
      "store payload"));

  core::Operation copy{"copy payload", "payload into a fixed buffer"};
  const std::string activity =
      "copy len bytes into buf[" + std::to_string(limit) + "]";
  if (unchecked) {
    copy.add(core::Pfsm::unchecked("pFSM2",
                                   core::PfsmType::kContentAttributeCheck,
                                   activity, len_at_most(limit),
                                   "memcpy(buf, payload, len)"));
  } else {
    copy.add(core::Pfsm{"pFSM2", core::PfsmType::kContentAttributeCheck,
                        activity, len_at_most(limit), len_at_most(impl_limit),
                        "memcpy(buf, payload, len)"});
  }

  core::ExploitChain chain{"seeded-overflow-chain"};
  chain.add(std::move(receive), {"crafted payload reaches the copy loop"});
  chain.add(std::move(copy), {"saved return address overwritten"});

  ChainFaultFixture f{std::move(chain),
                      "pFSM2",
                      limit,
                      impl_limit,
                      unchecked,
                      limit + 1,
                      limit / 2,
                      unchecked
                          ? "impl performs no length check at all"
                          : "impl allows len up to " +
                                std::to_string(impl_limit) +
                                " against a spec bound of " +
                                std::to_string(limit)};
  return f;
}

const char* to_string(ChainLintFault f) noexcept {
  switch (f) {
    case ChainLintFault::kCheckThenUseWindow: return "check-then-use-window";
    case ChainLintFault::kSharedObjectReread: return "shared-object-reread";
    case ChainLintFault::kMissingConsequence: return "missing-consequence";
  }
  return "unknown";
}

namespace {

/// Trivial accept-all predicate with a content-attribute question form
/// (keeps TX001 quiet on fixture pFSMs).
core::Predicate attr_check(std::string question) {
  return core::Predicate{std::move(question),
                         [](const core::Object&) { return true; }};
}

/// The fixture object paths the rng picks from — cosmetic variation
/// only; every path is absolute so the DR classifiers see it.
constexpr std::array<const char*, 3> kFixturePaths = {
    "/var/log/app.log",
    "/var/spool/app/queue",
    "/etc/app/state",
};

}  // namespace

ChainLintFixture make_chain_lint_fault(ChainLintFault fault, Rng& rng) {
  const std::string path = kFixturePaths[rng.below(kFixturePaths.size())];
  switch (fault) {
    case ChainLintFault::kCheckThenUseWindow: {
      // The xterm Figure 5 shape: a checking pFSM validates the target,
      // then an UNCHECKED reference-consistency step re-opens it through
      // the schedule surface — the binding can be switched in between.
      core::Operation op{"append to the log file", "the log file " + path};
      op.add(core::Pfsm::secure(
          "pFSM1", core::PfsmType::kContentAttributeCheck,
          "get the filename of the log file",
          attr_check("does the file pass the access() ownership check?"),
          "filename accepted"));
      op.add(core::Pfsm::unchecked(
          "pFSM2", core::PfsmType::kReferenceConsistencyCheck,
          "open " + path + " with write permission",
          attr_check("is the file binding unchanged between check and use?"),
          "append the record"));
      core::ExploitChain chain{"seeded-toctou-chain"};
      chain.add(std::move(op), {"attacker-chosen file appended to"});
      return ChainLintFixture{
          std::move(chain),
          "append to the log file/pFSM2",
          "unchecked reference-consistency step opens " + path +
              " after the ownership check",
          {"DR001"}};
    }
    case ChainLintFault::kSharedObjectReread: {
      // The rwall Figure 6 shape: operation 1 writes a path, operation 2
      // re-reads it with no consistency check in between.
      core::Operation produce{"record the request", "the queue file"};
      produce.add(core::Pfsm::unchecked(
          "pFSM1", core::PfsmType::kContentAttributeCheck,
          "write the request to " + path,
          attr_check("does the request carry only printable content?"),
          "request queued"));
      core::Operation consume{"process the queue", "entries of the queue file"};
      consume.add(core::Pfsm::unchecked(
          "pFSM2", core::PfsmType::kContentAttributeCheck,
          "read the next entry from " + path + " and act on it",
          attr_check("does the entry name a valid destination?"),
          "entry executed"));
      core::ExploitChain chain{"seeded-shared-object-chain"};
      chain.add(std::move(produce), {"queue entry written"});
      chain.add(std::move(consume), {"attacker-controlled entry executed"});
      return ChainLintFixture{
          std::move(chain),
          "process the queue/pFSM2",
          "both operations touch " + path + " unchecked",
          {"DR002"}};
    }
    case ChainLintFault::kMissingConsequence: {
      core::Operation op{"handle the request", "the request buffer"};
      op.add(core::Pfsm::secure(
          "pFSM1", core::PfsmType::kContentAttributeCheck,
          "parse the request header",
          attr_check("does the header length fit the buffer?"),
          "header parsed"));
      core::ExploitChain chain{"seeded-consequence-less-chain"};
      chain.add(std::move(op), {""});  // the planted defect
      return ChainLintFixture{std::move(chain),
                              "",
                              "final propagation gate names no consequence",
                              {"ST008"}};
    }
  }
  throw std::invalid_argument("unknown chain lint fault");
}

}  // namespace dfsm::faultinject
