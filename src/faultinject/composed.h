// composed.h — composed fault trials: 2–4 mutators drawn per trial
// (fuzz-style, pure per-trial Rng streams), spanning the corpus,
// pipeline, and analysis layers (DESIGN.md §14).
//
// "Vulnerability Abundance" (PAPERS.md) argues defect populations are
// effectively inexhaustible, so single-mutator trials under-test the
// system; a composed trial draws several mutators and still carries
// machine-checked expectations for every component. Two invariants are
// verified on EVERY trial, whether or not the composition touches them:
//
//   * conservation — the trial's corpus pipeline (clean when no corpus
//     mutator is drawn) accounts for every generated line:
//     generated + injected == ingested + quarantined rows + shard lines;
//   * memoized-vs-direct — a memoized Lemma sweep must equal the direct
//     reference sweep (and must DIFFER exactly when the composition
//     includes the sweep-cache mutator).
//
// Corpus mutators compose on one shard set under a distinct-shard claim
// discipline (a mutation whose target shard is already claimed by an
// earlier component re-rolls on a fresh copy), so per-component
// accounting stays additive. Analysis-layer mutators — corrupt discovery
// oracle, desync monitor model, bias anomaly thresholds — corrupt a COPY
// of the analysis artifact and require the reference cross-check to
// notice the divergence.
#ifndef DFSM_FAULTINJECT_COMPOSED_H
#define DFSM_FAULTINJECT_COMPOSED_H

#include <array>
#include <memory>
#include <vector>

#include "apps/case_study.h"
#include "faultinject/campaign.h"
#include "faultinject/corpus_faults.h"
#include "faultinject/rng.h"
#include "staticlint/linter.h"

namespace dfsm::faultinject {

/// The composed-trial mutator pool: the nine corpus faults, the three
/// pipeline surfaces, and the three analysis-layer mutators.
enum class ComposedMutator {
  // corpus layer (compose on one shard set; distinct-shard claims)
  kCorpusTruncateTail,
  kCorpusMangleQuoting,
  kCorpusCorruptField,
  kCorpusMissingHeader,
  kCorpusDuplicateHeader,
  kCorpusDropShard,
  kCorpusReorderShards,
  kCorpusTransientIo,
  kCorpusUnreadableShard,
  // pipeline layer (independent mini-pipelines within the trial)
  kSweepCacheFault,   ///< memoized sweep cache corruption (5-fault grid)
  kModelIrFault,      ///< curated-model IR defect through the lint grid
  kChainLintFault,    ///< live-chain lint defect through lint_chain
  // analysis layer
  kCorruptDiscoveryOracle,  ///< bias Figure-4 pFSM2's spec; the probe
                            ///< cross-validation must lose agreements
  kDesyncMonitorModel,      ///< accept-all a monitored pFSM's spec; the
                            ///< reference monitor must see more violations
  kBiasAnomalyThreshold,    ///< raise the detector threshold to the
                            ///< exploit's own score; the spec threshold
                            ///< must still flag what the biased one misses
};

inline constexpr std::array<ComposedMutator, 15> kAllComposedMutators = {
    ComposedMutator::kCorpusTruncateTail,
    ComposedMutator::kCorpusMangleQuoting,
    ComposedMutator::kCorpusCorruptField,
    ComposedMutator::kCorpusMissingHeader,
    ComposedMutator::kCorpusDuplicateHeader,
    ComposedMutator::kCorpusDropShard,
    ComposedMutator::kCorpusReorderShards,
    ComposedMutator::kCorpusTransientIo,
    ComposedMutator::kCorpusUnreadableShard,
    ComposedMutator::kSweepCacheFault,
    ComposedMutator::kModelIrFault,
    ComposedMutator::kChainLintFault,
    ComposedMutator::kCorruptDiscoveryOracle,
    ComposedMutator::kDesyncMonitorModel,
    ComposedMutator::kBiasAnomalyThreshold,
};

[[nodiscard]] const char* to_string(ComposedMutator m) noexcept;
[[nodiscard]] bool is_corpus_mutator(ComposedMutator m) noexcept;

/// The CorpusFault a corpus-layer ComposedMutator maps to. Throws
/// std::invalid_argument for non-corpus mutators.
[[nodiscard]] CorpusFault corpus_fault_of(ComposedMutator m);

/// Shared campaign state a composed trial runs against. `curated` and
/// `studies` are required; the lint members are optional (when set, the
/// trial's lints flow through the campaign-wide memo store and aggregate
/// exactly like the single-mutator surfaces).
struct ComposedDeps {
  const std::vector<staticlint::LintModel>* curated = nullptr;
  const std::vector<std::unique_ptr<apps::CaseStudy>>* studies = nullptr;
  staticlint::LintMemoStore* memo = nullptr;
  staticlint::LintRun* lint_agg = nullptr;
  std::size_t* models_linted = nullptr;
};

/// Draws 2–4 DISTINCT mutators from the pool (fuzz-style; pure in rng).
[[nodiscard]] std::vector<ComposedMutator> draw_composition(Rng& rng);

/// Runs one composed trial with mutators drawn from the pool.
[[nodiscard]] TrialResult run_composed_trial(const CampaignConfig& cfg,
                                             std::size_t trial, Rng& rng,
                                             const ComposedDeps& deps);

/// Runs one composed trial with a PINNED composition (determinism tests
/// exercise exact 2/3/4-mutator mixes through this entry point). The
/// mutators execute in the given order; duplicates are rejected
/// (std::invalid_argument).
[[nodiscard]] TrialResult run_composed_trial_with(
    const std::vector<ComposedMutator>& mutators, const CampaignConfig& cfg,
    std::size_t trial, Rng& rng, const ComposedDeps& deps);

}  // namespace dfsm::faultinject

#endif  // DFSM_FAULTINJECT_COMPOSED_H
