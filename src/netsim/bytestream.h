// bytestream.h — the socket abstraction of the sandbox.
//
// Paper §5.1: "the socket programming style requires the users to specify
// the contentLen and input separately, because the socket has no way of
// determining the length of the input" — the root of both NULL HTTPD
// vulnerabilities. ByteStream reproduces exactly the recv() contract the
// exploit depends on: a stream of attacker bytes, length unknown to the
// receiver, delivered in bounded reads with 0 at orderly EOF and -1 on
// error.
#ifndef DFSM_NETSIM_BYTESTREAM_H
#define DFSM_NETSIM_BYTESTREAM_H

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

namespace dfsm::netsim {

/// A unidirectional byte stream (attacker -> server).
class ByteStream {
 public:
  ByteStream() = default;

  /// Queues bytes for delivery.
  void send(std::span<const std::uint8_t> bytes);
  void send(const std::string& s);

  /// Marks orderly shutdown: after the queue drains, recv returns 0.
  void close_write() noexcept { write_closed_ = true; }

  /// Injects a socket error: the next recv returns -1.
  void inject_error() noexcept { error_pending_ = true; }

  /// recv(2) semantics: up to `max` bytes into `out` (resized to the
  /// amount received); returns the byte count, 0 at EOF, -1 on error.
  /// Blocks never happen — an empty, unclosed stream also reports EOF 0
  /// (the sandbox is single-threaded; there is nothing to wait for).
  [[nodiscard]] int recv(std::vector<std::uint8_t>& out, std::size_t max);

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] bool write_closed() const noexcept { return write_closed_; }

 private:
  std::deque<std::uint8_t> queue_;
  bool write_closed_ = false;
  bool error_pending_ = false;
};

/// A client/server socket pair (request stream + response sink).
struct Connection {
  ByteStream to_server;
  std::string response;  ///< what the server wrote back (for assertions)
};

}  // namespace dfsm::netsim

#endif  // DFSM_NETSIM_BYTESTREAM_H
