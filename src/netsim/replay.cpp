#include "netsim/replay.h"

#include <algorithm>

namespace dfsm::netsim {

bool captured_before(const CapturedRequest& a,
                     const CapturedRequest& b) noexcept {
  if (a.agent != b.agent) return a.agent < b.agent;
  return a.index < b.index;
}

void RequestTap::offer(CapturedRequest req) {
  if (capacity_ == 0) return;
  const auto at = std::lower_bound(entries_.begin(), entries_.end(), req,
                                   captured_before);
  if (entries_.size() == capacity_) {
    if (at == entries_.end()) return;  // larger than everything kept
    entries_.pop_back();
  }
  entries_.insert(std::lower_bound(entries_.begin(), entries_.end(), req,
                                   captured_before),
                  std::move(req));
}

void RequestTap::merge(const RequestTap& other) {
  for (const auto& req : other.entries_) offer(req);
}

std::string hex_preview(const std::string& raw, std::size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  const std::size_t n = std::min(raw.size(), max_bytes);
  std::string out;
  out.reserve(n * 2 + 16);
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<unsigned char>(raw[i]);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  if (raw.size() > n) out += "+" + std::to_string(raw.size() - n);
  return out;
}

}  // namespace dfsm::netsim
