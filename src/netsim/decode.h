// decode.h — percent-decoding, including the superfluous second decode of
// IIS (paper §5.4, Bugtraq #2708).
//
// "%25" decodes to '%' and "%2f" decodes to '/', so "..%252f" becomes
// "..%2f" after the first decoding and "../" after the second — slipping
// past a directory-traversal check applied between the two decodes. The
// Nimda worm actively exploited this.
#ifndef DFSM_NETSIM_DECODE_H
#define DFSM_NETSIM_DECODE_H

#include <string>

namespace dfsm::netsim {

/// One pass of RFC-style percent-decoding. Malformed escapes (%zz, trailing
/// %) are passed through verbatim, matching the lenient behaviour of the
/// studied servers.
[[nodiscard]] std::string percent_decode(const std::string& s);

/// Two passes (the IIS bug).
[[nodiscard]] std::string percent_decode_twice(const std::string& s);

/// True if the path contains a ".." parent traversal component or the
/// literal "../" substring the IIS predicate checks for.
[[nodiscard]] bool contains_dotdot(const std::string& path);

/// Lexically normalizes a path ("a/b/../c" -> "a/c"; leading ".." escapes
/// are preserved). Used to decide whether a CGI target actually resides
/// under the scripts directory.
[[nodiscard]] std::string lexically_normalize(const std::string& path);

/// True if `path`, resolved relative to `root`, stays under `root`.
[[nodiscard]] bool stays_under(const std::string& root, const std::string& path);

}  // namespace dfsm::netsim

#endif  // DFSM_NETSIM_DECODE_H
