// http.h — a small HTTP/1.0 request model, sufficient for the NULL HTTPD
// POST exploit (Content-Length + body) and the IIS CGI path requests of
// Figures 4 and 7.
#ifndef DFSM_NETSIM_HTTP_H
#define DFSM_NETSIM_HTTP_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dfsm::netsim {

/// A parsed request head. The body is NOT parsed here — the vulnerable
/// servers read it themselves from the socket (that is the point).
struct HttpRequest {
  std::string method;
  std::string path;
  std::string version = "HTTP/1.0";
  std::map<std::string, std::string> headers;  // lower-cased keys

  /// Content-Length parsed with C-era atoi semantics: leading whitespace,
  /// optional sign, digits, silent 32-bit wrap — so "-800" parses to -800
  /// exactly as in the vulnerable server.
  [[nodiscard]] std::optional<std::int32_t> content_length() const;
};

/// Serializes a request head + body into raw bytes (attacker side).
[[nodiscard]] std::string serialize(const HttpRequest& req, const std::string& body);

/// Parses a request head from raw text (up to the blank line). Returns
/// std::nullopt on malformed input. `consumed` receives the head length in
/// bytes so callers know where the body starts.
[[nodiscard]] std::optional<HttpRequest> parse_head(const std::string& raw,
                                                    std::size_t* consumed = nullptr);

/// atoi with explicit 32-bit wraparound — the integer-conversion semantics
/// every case study in the paper depends on (#3163's signed overflow,
/// NULL HTTPD's negative Content-Length).
[[nodiscard]] std::int32_t atoi32(const std::string& s);

/// atol into 64 bits (no wrap until 64-bit overflow, which saturates).
[[nodiscard]] std::int64_t atol64(const std::string& s);

}  // namespace dfsm::netsim

#endif  // DFSM_NETSIM_HTTP_H
