#include "netsim/decode.h"

#include <cctype>
#include <vector>

namespace dfsm::netsim {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string percent_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

std::string percent_decode_twice(const std::string& s) {
  return percent_decode(percent_decode(s));
}

bool contains_dotdot(const std::string& path) {
  if (path.find("../") != std::string::npos) return true;
  if (path.find("..\\") != std::string::npos) return true;
  // A trailing ".." component also escapes.
  if (path == "..") return true;
  if (path.size() >= 3) {
    const std::string tail = path.substr(path.size() - 3);
    if (tail == "/.." || tail == "\\..") return true;
  }
  return false;
}

std::string lexically_normalize(const std::string& path) {
  std::vector<std::string> parts;
  std::vector<std::string> out;
  std::string cur;
  const bool absolute = !path.empty() && path.front() == '/';
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  for (const auto& p : parts) {
    if (p == ".") continue;
    if (p == "..") {
      if (!out.empty() && out.back() != "..") {
        out.pop_back();
      } else if (!absolute) {
        out.push_back("..");
      }
      // ".." at the root of an absolute path is dropped (POSIX semantics).
      continue;
    }
    out.push_back(p);
  }
  if (out.empty()) {
    return absolute ? std::string{"/"} : std::string{"."};
  }
  std::string result;
  if (absolute) result += '/';
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i) result += '/';
    result += out[i];
  }
  return result;
}

bool stays_under(const std::string& root, const std::string& path) {
  const std::string norm_root = lexically_normalize(root);
  const std::string joined = lexically_normalize(norm_root + "/" + path);
  if (joined == norm_root) return true;
  return joined.size() > norm_root.size() &&
         joined.compare(0, norm_root.size(), norm_root) == 0 &&
         joined[norm_root.size()] == '/';
}

}  // namespace dfsm::netsim
