#include "netsim/bytestream.h"

namespace dfsm::netsim {

void ByteStream::send(std::span<const std::uint8_t> bytes) {
  queue_.insert(queue_.end(), bytes.begin(), bytes.end());
}

void ByteStream::send(const std::string& s) {
  for (char c : s) queue_.push_back(static_cast<std::uint8_t>(c));
}

int ByteStream::recv(std::vector<std::uint8_t>& out, std::size_t max) {
  out.clear();
  if (error_pending_) {
    error_pending_ = false;
    return -1;
  }
  if (queue_.empty()) return 0;
  const std::size_t n = std::min(max, queue_.size());
  out.assign(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(n));
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(n));
  return static_cast<int>(n);
}

}  // namespace dfsm::netsim
