#include "netsim/http.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <sstream>

namespace dfsm::netsim {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::int64_t atol64(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  bool neg = false;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
    neg = (s[i] == '-');
    ++i;
  }
  // Accumulate in unsigned to get well-defined wraparound, then saturate
  // at the 64-bit boundary like atol on overflow-tolerant platforms.
  unsigned long long acc = 0;
  bool overflow = false;
  for (; i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])); ++i) {
    const unsigned digit = static_cast<unsigned>(s[i] - '0');
    if (acc > (std::numeric_limits<unsigned long long>::max() - digit) / 10) {
      overflow = true;
    }
    acc = acc * 10 + digit;
  }
  if (overflow) {
    return neg ? std::numeric_limits<std::int64_t>::min()
               : std::numeric_limits<std::int64_t>::max();
  }
  const auto sv = static_cast<std::int64_t>(acc);  // may wrap for acc > 2^63-1
  return neg ? -sv : sv;
}

std::int32_t atoi32(const std::string& s) {
  // The historical bug: long parsed, then silently truncated to int.
  return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(atol64(s))));
}

std::optional<std::int32_t> HttpRequest::content_length() const {
  auto it = headers.find("content-length");
  if (it == headers.end()) return std::nullopt;
  return atoi32(it->second);
}

std::string serialize(const HttpRequest& req, const std::string& body) {
  std::ostringstream os;
  os << req.method << ' ' << req.path << ' ' << req.version << "\r\n";
  for (const auto& [k, v] : req.headers) os << k << ": " << v << "\r\n";
  os << "\r\n" << body;
  return os.str();
}

std::optional<HttpRequest> parse_head(const std::string& raw, std::size_t* consumed) {
  const std::size_t end = raw.find("\r\n\r\n");
  if (end == std::string::npos) return std::nullopt;
  if (consumed != nullptr) *consumed = end + 4;

  std::istringstream is{raw.substr(0, end)};
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  if (!line.empty() && line.back() == '\r') line.pop_back();

  HttpRequest req;
  {
    std::istringstream rl{line};
    if (!(rl >> req.method >> req.path)) return std::nullopt;
    if (!(rl >> req.version)) req.version = "HTTP/0.9";
  }
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return std::nullopt;
    req.headers[lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
  }
  return req;
}

}  // namespace dfsm::netsim
