// replay.h — request capture & replay hooks for traffic engines.
//
// A RequestTap is a bounded, deterministic sample of the raw requests a
// load run fired: each capture is keyed by its (agent, index) stream
// position and the tap keeps the LOWEST keys, so the surviving sample
// depends only on what was offered — never on thread interleaving.
// Per-agent taps merge into a run-level tap with the same bound, which
// is what makes the report's sample section byte-identical at any
// DFSM_THREADS. A captured request carries the raw wire bytes, so a
// missed detection can be replayed through the same decode path in
// isolation (loadgen::replay_request).
#ifndef DFSM_NETSIM_REPLAY_H
#define DFSM_NETSIM_REPLAY_H

#include <cstdint>
#include <string>
#include <vector>

namespace dfsm::netsim {

/// One raw request as it went over the simulated wire.
struct CapturedRequest {
  std::uint64_t agent = 0;   ///< owning agent (stream id)
  std::uint64_t index = 0;   ///< request index within the agent's stream
  std::string server;        ///< target label ("nullhttpd-5774", ...)
  bool exploit = false;      ///< ground truth from the generator
  std::string raw;           ///< exact bytes handed to the server

  [[nodiscard]] bool operator==(const CapturedRequest&) const = default;
};

/// Ordering key: (agent, index) lexicographic.
[[nodiscard]] bool captured_before(const CapturedRequest& a,
                                   const CapturedRequest& b) noexcept;

class RequestTap {
 public:
  /// A tap of capacity 0 drops everything (capture disabled).
  explicit RequestTap(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Offers a capture; the tap keeps the `capacity` lowest (agent, index)
  /// entries seen so far.
  void offer(CapturedRequest req);

  /// Folds another tap in under the same keep-lowest bound. Associative:
  /// any merge tree over the same offers yields the same entries.
  void merge(const RequestTap& other);

  /// Surviving captures in ascending (agent, index) order.
  [[nodiscard]] const std::vector<CapturedRequest>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<CapturedRequest> entries_;  // sorted ascending, size <= capacity_
};

/// Hex rendering of the first `max_bytes` raw bytes ("504f5354..."), with
/// "+<n>" appended when truncated — JSON-safe whatever the payload bytes.
[[nodiscard]] std::string hex_preview(const std::string& raw,
                                      std::size_t max_bytes);

}  // namespace dfsm::netsim

#endif  // DFSM_NETSIM_REPLAY_H
