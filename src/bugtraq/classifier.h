// classifier.h — maps an elementary activity to the Bugtraq category an
// analyst anchored on it would assign. This mechanizes the paper's
// Observation 1 / Table 1 argument: the same root cause lands in
// different taxonomy categories depending on which elementary activity is
// used as the reference point, which is why category taxonomies are
// ambiguous and an activity-level model (the pFSM) is needed.
#ifndef DFSM_BUGTRAQ_CLASSIFIER_H
#define DFSM_BUGTRAQ_CLASSIFIER_H

#include <vector>

#include "bugtraq/record.h"

namespace dfsm::bugtraq {

/// The category a report is assigned when the given elementary activity is
/// the analyst's reference point:
///   get input                -> Input Validation Error
///   use as array index       -> Boundary Condition Error
///   copy to buffer           -> Boundary Condition Error
///   handle following data    -> Failure to Handle Exceptional Conditions
///   execute via pointer      -> Access Validation Error
///   check permission         -> Access Validation Error
///   open file / write file   -> Race Condition Error
///   decode filename          -> Input Validation Error
///   free buffer              -> Boundary Condition Error
[[nodiscard]] Category category_for_activity(ElementaryActivity a) noexcept;

/// All the categories a single report could legitimately be filed under —
/// one per elementary activity in its chain (deduplicated, order of first
/// appearance).
[[nodiscard]] std::vector<Category> plausible_categories(const VulnRecord& r);

/// True when the classifier, anchored on the record's own
/// reference_activity, reproduces the category the record carries —
/// i.e. the record is self-consistent with Table 1's reading.
[[nodiscard]] bool classification_consistent(const VulnRecord& r);

/// True when a record's activity chain admits >= 2 distinct categories:
/// the ambiguity that motivates the pFSM model.
[[nodiscard]] bool classification_ambiguous(const VulnRecord& r);

}  // namespace dfsm::bugtraq

#endif  // DFSM_BUGTRAQ_CLASSIFIER_H
