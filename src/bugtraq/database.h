// database.h — an in-memory vulnerability database with query and CSV
// round-trip. Stands in for the Bugtraq list at securityfocus.com, which
// the paper chose "because its vulnerability reports are better organized
// and more amenable to automatic processing and statistical study".
#ifndef DFSM_BUGTRAQ_DATABASE_H
#define DFSM_BUGTRAQ_DATABASE_H

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bugtraq/record.h"

namespace dfsm::bugtraq {

class Database {
 public:
  Database() = default;

  /// Adds a record. Throws std::invalid_argument on a duplicate non-zero
  /// Bugtraq ID (real IDs are unique).
  void add(VulnRecord record);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const std::vector<VulnRecord>& records() const noexcept {
    return records_;
  }

  /// Lookup by Bugtraq ID (non-zero IDs only).
  [[nodiscard]] const VulnRecord* by_id(int id) const;

  /// All records matching a predicate.
  [[nodiscard]] std::vector<const VulnRecord*> query(
      const std::function<bool(const VulnRecord&)>& pred) const;

  [[nodiscard]] std::size_t count(
      const std::function<bool(const VulnRecord&)>& pred) const;

  /// Histogram over categories (every category present, possibly 0).
  [[nodiscard]] std::map<Category, std::size_t> count_by_category() const;

  /// Histogram over vulnerability classes.
  [[nodiscard]] std::map<VulnClass, std::size_t> count_by_class() const;

  /// CSV serialization: header + one line per record (activities joined
  /// with ';'). Fields containing separators are quoted.
  [[nodiscard]] std::string to_csv() const;

  /// Parses a CSV produced by to_csv. Throws std::invalid_argument on a
  /// malformed header or row.
  [[nodiscard]] static Database from_csv(const std::string& csv);

  /// Merges another database into this one (duplicate-ID rules apply).
  void merge(const Database& other);

 private:
  std::vector<VulnRecord> records_;
  std::map<int, std::size_t> index_;  // id -> position, non-zero ids only
};

}  // namespace dfsm::bugtraq

#endif  // DFSM_BUGTRAQ_DATABASE_H
