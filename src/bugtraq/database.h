// database.h — an in-memory vulnerability database with query and CSV
// round-trip. Stands in for the Bugtraq list at securityfocus.com, which
// the paper chose "because its vulnerability reports are better organized
// and more amenable to automatic processing and statistical study".
//
// Storage is row-major (`records_`) plus columnar category/class/remote/
// year/software vectors (software interned to dense ids): statistics
// sweeps touch narrow columns instead of ~200-byte records, and the
// histogram sweeps shard across the parallel runtime (runtime/parallel.h)
// with per-shard accumulators merged in index order — results are
// byte-identical to a serial walk at any thread count. All histograms
// (category, class, year, software) are cached and invalidated on
// mutation; add_batch() ingests a whole batch with one column extension
// and one cache invalidation instead of per-record work.
#ifndef DFSM_BUGTRAQ_DATABASE_H
#define DFSM_BUGTRAQ_DATABASE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "bugtraq/record.h"
#include "runtime/parallel.h"

namespace dfsm::bugtraq {

/// How ingest treats malformed input (DESIGN.md §9). kStrict throws on
/// the first defect, with shard path + 1-based line context; kLenient
/// quarantines defective rows/shards into an IngestReport and keeps the
/// rest — graceful degradation for million-record shard sets where one
/// bad row must not abort the whole ingest.
enum class IngestPolicy {
  kStrict,
  kLenient,
};

[[nodiscard]] const char* to_string(IngestPolicy p) noexcept;

/// One CSV row a lenient ingest refused, with enough context to replay
/// or repair it: the source shard, the 1-based line its span starts on,
/// the parse/dedup reason, and the raw row text.
struct QuarantinedRow {
  std::string shard;
  std::size_t line = 0;
  std::string reason;
  std::string raw;

  /// Source lines the row span consumed (a mangled quote can merge many
  /// physical lines into one span): newline count in `raw` plus one.
  [[nodiscard]] std::size_t lines_consumed() const;
};

/// One whole shard a lenient ingest refused (unreadable after retries,
/// or its header did not parse).
struct QuarantinedShard {
  std::string shard;
  std::string reason;
  std::size_t attempts = 1;    ///< open/read attempts made
  std::size_t lines_seen = 0;  ///< non-empty lines observed (0 if unreadable)
};

/// Structured outcome of a lenient ingest: what landed, what was
/// quarantined, and how many transient-I/O retries were spent. Entry
/// order is deterministic at any thread count: rows ascend by (shard
/// order, line), shards follow path order.
struct IngestReport {
  std::size_t ingested = 0;
  std::size_t retries = 0;  ///< extra open/read attempts beyond the first
  std::vector<QuarantinedRow> rows;
  std::vector<QuarantinedShard> shards;

  [[nodiscard]] bool clean() const noexcept {
    return rows.empty() && shards.empty();
  }
  /// Total source lines consumed by quarantined rows (zero-loss
  /// accounting: generated == ingested + quarantined_lines() + lines of
  /// quarantined shards).
  [[nodiscard]] std::size_t quarantined_lines() const;
};

/// One record a lenient add_batch refused (duplicate Bugtraq ID).
struct BatchReject {
  std::size_t index = 0;  ///< position within the batch
  std::string reason;
};

class Database {
 public:
  Database() = default;

  /// Copies carry the data, not the cache (it refills on first use).
  Database(const Database& other)
      : records_(other.records_),
        index_(other.index_),
        category_col_(other.category_col_),
        class_col_(other.class_col_),
        remote_col_(other.remote_col_),
        year_col_(other.year_col_),
        software_col_(other.software_col_),
        software_names_(other.software_names_),
        software_ids_(other.software_ids_) {}
  Database& operator=(const Database& other) {
    if (this != &other) {
      records_ = other.records_;
      index_ = other.index_;
      category_col_ = other.category_col_;
      class_col_ = other.class_col_;
      remote_col_ = other.remote_col_;
      year_col_ = other.year_col_;
      software_col_ = other.software_col_;
      software_names_ = other.software_names_;
      software_ids_ = other.software_ids_;
      cache_ = std::make_unique<HistCache>();
    }
    return *this;
  }
  Database(Database&&) noexcept = default;
  Database& operator=(Database&&) noexcept = default;

  /// Adds a record. Throws std::invalid_argument on a duplicate non-zero
  /// Bugtraq ID (real IDs are unique).
  void add(VulnRecord record);

  /// Bulk ingest: appends every record of `batch` (insertion order
  /// preserved), extending the columnar store once and invalidating the
  /// histogram cache once, instead of per-record. Duplicate non-zero IDs
  /// (against the database or within the batch) throw std::invalid_argument
  /// before anything is appended.
  void add_batch(std::vector<VulnRecord> batch);

  /// Policy-aware bulk ingest. kStrict behaves exactly like add_batch
  /// (throws on any duplicate, nothing appended) and returns an empty
  /// vector. kLenient appends every acceptable record (first occurrence
  /// of an ID wins) and returns the rejected batch positions with
  /// reasons, in ascending index order.
  std::vector<BatchReject> add_batch(std::vector<VulnRecord> batch,
                                     IngestPolicy policy);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const std::vector<VulnRecord>& records() const noexcept {
    return records_;
  }

  /// Columnar projections, index-parallel to records(). Hot sweeps
  /// (histograms, remote/local splits) read these instead of records_.
  [[nodiscard]] const std::vector<Category>& categories() const noexcept {
    return category_col_;
  }
  [[nodiscard]] const std::vector<VulnClass>& classes() const noexcept {
    return class_col_;
  }
  [[nodiscard]] const std::vector<unsigned char>& remote_flags() const noexcept {
    return remote_col_;
  }
  [[nodiscard]] const std::vector<int>& years() const noexcept {
    return year_col_;
  }
  /// Software column as dense interned ids; software_name(id) decodes.
  [[nodiscard]] const std::vector<std::uint32_t>& software_ids() const noexcept {
    return software_col_;
  }
  [[nodiscard]] const std::string& software_name(std::uint32_t id) const {
    return software_names_[id];
  }

  /// Lookup by Bugtraq ID (non-zero IDs only).
  [[nodiscard]] const VulnRecord* by_id(int id) const;

  /// All records matching a predicate, in insertion order. The sweep is
  /// sharded across the runtime pool; per-shard hit lists concatenate in
  /// shard order, so the result equals the serial scan exactly.
  template <typename Pred>
  [[nodiscard]] std::vector<const VulnRecord*> query(Pred&& pred) const {
    const auto& recs = records_;
    return runtime::parallel_reduce(
        recs.size(), std::vector<const VulnRecord*>{},
        [&](std::size_t begin, std::size_t end) {
          std::vector<const VulnRecord*> hits;
          for (std::size_t i = begin; i < end; ++i) {
            if (pred(recs[i])) hits.push_back(&recs[i]);
          }
          return hits;
        },
        [](std::vector<const VulnRecord*>& acc,
           std::vector<const VulnRecord*>&& part) {
          acc.insert(acc.end(), part.begin(), part.end());
        });
  }

  template <typename Pred>
  [[nodiscard]] std::size_t count(Pred&& pred) const {
    const auto& recs = records_;
    return runtime::parallel_reduce(
        recs.size(), std::size_t{0},
        [&](std::size_t begin, std::size_t end) {
          std::size_t n = 0;
          for (std::size_t i = begin; i < end; ++i) {
            if (pred(recs[i])) ++n;
          }
          return n;
        },
        [](std::size_t& acc, std::size_t part) { acc += part; });
  }

  /// Type-erased forms kept for existing callers; they delegate to the
  /// templated overloads above (one std::function indirection per record
  /// instead of per call site).
  [[nodiscard]] std::vector<const VulnRecord*> query(
      const std::function<bool(const VulnRecord&)>& pred) const;
  [[nodiscard]] std::size_t count(
      const std::function<bool(const VulnRecord&)>& pred) const;

  /// Histogram over categories (every category present, possibly 0).
  /// Served from the cache; a miss shards the columnar sweep across the
  /// runtime pool.
  [[nodiscard]] std::map<Category, std::size_t> count_by_category() const;

  /// Histogram over vulnerability classes (only classes with a non-zero
  /// count appear, matching the historical row-walk behavior).
  [[nodiscard]] std::map<VulnClass, std::size_t> count_by_class() const;

  /// Histogram over discovery years (only years present appear). Served
  /// from the same cache as the category/class histograms.
  [[nodiscard]] std::map<int, std::size_t> count_by_year() const;

  /// Histogram over software packages (only packages present appear).
  /// Served from the cache via the interned software column.
  [[nodiscard]] std::map<std::string, std::size_t> count_by_software() const;

  /// CSV serialization: header + one line per record (activities joined
  /// with ';'). Fields containing separators are quoted. The row bodies
  /// are built in index-sharded blocks on the runtime pool and
  /// concatenated in block order — byte-identical at any thread count.
  [[nodiscard]] std::string to_csv() const;

  /// CSV for the record range [begin, end) only (same header). The unit
  /// of sharded corpus files (csv_shards.h).
  [[nodiscard]] std::string to_csv(std::size_t begin, std::size_t end) const;

  /// Parses a CSV produced by to_csv. Throws std::invalid_argument on a
  /// malformed header or row — the message carries the 1-based line
  /// number ("<csv>:7: bad CSV row: ..."). Row parsing is sharded across
  /// the runtime pool (the result is identical at any thread count; on
  /// malformed input parsing cancels cooperatively and the lowest row's
  /// error is the one thrown), and the parsed records land in one
  /// add_batch. Tolerates CRLF line endings and a UTF-8 BOM.
  [[nodiscard]] static Database from_csv(const std::string& csv);

  /// Parses several CSV documents (each with the standard header) into
  /// one database, rows concatenated in part order — the in-memory half
  /// of the sharded corpus reader (csv_shards.h). Strict; parts are
  /// labeled "part <k>" in error messages.
  [[nodiscard]] static Database from_csv_parts(
      const std::vector<std::string>& parts);

  /// Policy-aware variant: `names[i]` labels part i in error messages
  /// and report entries (csv_shards passes the shard paths). kStrict
  /// throws std::invalid_argument as "<name>:<line>: <reason>"; kLenient
  /// quarantines malformed rows, whole parts with bad headers, and
  /// duplicate IDs into `report` (required non-null for kLenient) and
  /// returns the partial database — byte-identical, report included, at
  /// any thread count. Throws std::invalid_argument if names and parts
  /// differ in length.
  [[nodiscard]] static Database from_csv_parts(
      const std::vector<std::string>& parts,
      const std::vector<std::string>& names, IngestPolicy policy,
      IngestReport* report = nullptr);

  /// Merges another database into this one (duplicate-ID rules apply).
  void merge(const Database& other);

 private:
  struct HistCache {
    std::mutex mu;
    bool valid = false;
    std::array<std::size_t, kCategoryCount> by_category{};
    std::array<std::size_t, kVulnClassCount> by_class{};
    std::map<int, std::size_t> by_year;
    std::vector<std::size_t> by_software;  // indexed by interned software id
  };

  /// Fills the cache if stale; copies the requested histograms out under
  /// the lock (null pointers skip).
  void ensure_histograms(
      std::array<std::size_t, kCategoryCount>* categories,
      std::array<std::size_t, kVulnClassCount>* classes,
      std::map<int, std::size_t>* years = nullptr,
      std::vector<std::size_t>* software = nullptr) const;

  /// Interns a software name, returning its dense id.
  std::uint32_t intern_software(const std::string& name);

  std::vector<VulnRecord> records_;
  std::map<int, std::size_t> index_;  // id -> position, non-zero ids only
  std::vector<Category> category_col_;
  std::vector<VulnClass> class_col_;
  std::vector<unsigned char> remote_col_;
  std::vector<int> year_col_;
  std::vector<std::uint32_t> software_col_;
  std::vector<std::string> software_names_;        // id -> name
  std::map<std::string, std::uint32_t> software_ids_;  // name -> id
  mutable std::unique_ptr<HistCache> cache_ = std::make_unique<HistCache>();
};

}  // namespace dfsm::bugtraq

#endif  // DFSM_BUGTRAQ_DATABASE_H
