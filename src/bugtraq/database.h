// database.h — the concurrent corpus service: an in-memory vulnerability
// database with snapshot-isolated reads, incremental histogram
// maintenance, and CSV round-trip. Stands in for the Bugtraq list at
// securityfocus.com, which the paper chose "because its vulnerability
// reports are better organized and more amenable to automatic processing
// and statistical study".
//
// Concurrency model (DESIGN.md §15). All read state lives in an
// immutable, versioned CorpusSnapshot published through a
// runtime::SnapshotCell (RCU-style atomic shared_ptr swap). Readers call
// snapshot() — or any const query, which acquires one internally — and
// see ONE consistent epoch: a frozen record range, frozen columns, and
// histograms that are always exact for that range, no matter how many
// add_batch() ingests land concurrently. Writers serialize on a private
// mutex, append into a capacity-shared column arena (appends past the
// published size never move the bytes a live snapshot points at; growth
// copies into a fresh arena, and old arenas stay alive until their last
// snapshot drops), fold the batch's histogram deltas into a copy of the
// published histograms — incremental maintenance, no
// invalidate-and-rebuild — and publish the next epoch with one atomic
// swap.
//
// Storage is row-major (records) plus columnar category/class/remote/
// year/software projections (software interned to dense ids): statistics
// sweeps touch narrow columns instead of ~200-byte records, and the
// histogram/query sweeps shard across the parallel runtime
// (runtime/parallel.h) with per-shard accumulators merged in index
// order — results are byte-identical to a serial walk at any thread
// count.
#ifndef DFSM_BUGTRAQ_DATABASE_H
#define DFSM_BUGTRAQ_DATABASE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bugtraq/record.h"
#include "runtime/parallel.h"
#include "runtime/snapshot_cell.h"

namespace dfsm::bugtraq {

/// How ingest treats malformed input (DESIGN.md §9). kStrict throws on
/// the first defect, with shard path + 1-based line context; kLenient
/// quarantines defective rows/shards into an IngestReport and keeps the
/// rest — graceful degradation for million-record shard sets where one
/// bad row must not abort the whole ingest.
enum class IngestPolicy {
  kStrict,
  kLenient,
};

[[nodiscard]] const char* to_string(IngestPolicy p) noexcept;

/// One CSV row a lenient ingest refused, with enough context to replay
/// or repair it: the source shard, the 1-based line its span starts on,
/// the parse/dedup reason, and the raw row text.
struct QuarantinedRow {
  std::string shard;
  std::size_t line = 0;
  std::string reason;
  std::string raw;

  /// Source lines the row span consumed (a mangled quote can merge many
  /// physical lines into one span): newline count in `raw` plus one.
  [[nodiscard]] std::size_t lines_consumed() const;
};

/// One whole shard a lenient ingest refused (unreadable after retries,
/// or its header did not parse).
struct QuarantinedShard {
  std::string shard;
  std::string reason;
  std::size_t attempts = 1;    ///< open/read attempts made
  std::size_t lines_seen = 0;  ///< non-empty lines observed (0 if unreadable)
};

/// Structured outcome of a lenient ingest: what landed, what was
/// quarantined, and how many transient-I/O retries were spent. Entry
/// order is deterministic at any thread count: rows ascend by (shard
/// order, line), shards follow path order.
struct IngestReport {
  std::size_t ingested = 0;
  std::size_t retries = 0;  ///< extra open/read attempts beyond the first
  std::vector<QuarantinedRow> rows;
  std::vector<QuarantinedShard> shards;

  [[nodiscard]] bool clean() const noexcept {
    return rows.empty() && shards.empty();
  }
  /// Total source lines consumed by quarantined rows (zero-loss
  /// accounting: generated == ingested + quarantined_lines() + lines of
  /// quarantined shards).
  [[nodiscard]] std::size_t quarantined_lines() const;
};

/// One record a lenient add_batch refused (duplicate Bugtraq ID).
struct BatchReject {
  std::size_t index = 0;  ///< position within the batch
  std::string reason;
};

/// The always-exact histograms a snapshot carries. Maintained
/// incrementally: each publish folds the batch's deltas into a copy of
/// the previous epoch's histograms, and rebuild_histograms() proves the
/// fold equals a full columnar sweep.
struct CorpusHistograms {
  std::array<std::size_t, kCategoryCount> by_category{};
  std::array<std::size_t, kVulnClassCount> by_class{};
  std::map<int, std::size_t> by_year;
  std::vector<std::size_t> by_software;  ///< indexed by interned software id

  friend bool operator==(const CorpusHistograms&,
                         const CorpusHistograms&) = default;
};

namespace detail {
struct ColumnArena;  // append-only backing storage (database.cpp)
}  // namespace detail

/// One immutable epoch of the corpus: a frozen record range, frozen
/// columnar projections, the interned software table as of that epoch,
/// and exact histograms. Acquired via Database::snapshot(); stays alive
/// and byte-stable for as long as the caller holds the shared_ptr, no
/// matter what the writer publishes meanwhile.
///
/// The spans point into a shared column arena. The writer may append
/// PAST this snapshot's size in place (the arena never reallocates while
/// any snapshot pins it), so the spans' bytes never move and never
/// change — readers index only [0, size()) and touch no vector
/// internals, which is what keeps concurrent reads TSan-clean.
class CorpusSnapshot {
 public:
  CorpusSnapshot() = default;  // the empty corpus, epoch 0

  /// Publication count when this snapshot was built (0 = empty corpus).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] std::span<const VulnRecord> records() const noexcept {
    return {records_, size_};
  }
  [[nodiscard]] std::span<const Category> categories() const noexcept {
    return {categories_, size_};
  }
  [[nodiscard]] std::span<const VulnClass> classes() const noexcept {
    return {classes_, size_};
  }
  [[nodiscard]] std::span<const unsigned char> remote_flags() const noexcept {
    return {remote_, size_};
  }
  [[nodiscard]] std::span<const int> years() const noexcept {
    return {years_, size_};
  }
  /// Software column as dense interned ids; software_name(id) decodes.
  [[nodiscard]] std::span<const std::uint32_t> software_ids() const noexcept {
    return {software_, size_};
  }
  /// Interned software table as of this epoch (ids are stable: later
  /// epochs only ever append names).
  [[nodiscard]] std::span<const std::string> software_names() const noexcept {
    return {names_, software_count_};
  }
  [[nodiscard]] std::size_t software_count() const noexcept {
    return software_count_;
  }
  [[nodiscard]] const std::string& software_name(std::uint32_t id) const {
    return names_[id];
  }

  /// Exact histograms for [0, size()) — no sweep, no lock, always fresh.
  [[nodiscard]] const CorpusHistograms& histograms() const noexcept {
    return hist_;
  }

  /// Histogram over categories (every category present, possibly 0).
  [[nodiscard]] std::map<Category, std::size_t> count_by_category() const;
  /// Histogram over vulnerability classes (only non-zero counts appear,
  /// matching the historical row-walk behavior).
  [[nodiscard]] std::map<VulnClass, std::size_t> count_by_class() const;
  /// Histogram over discovery years (only years present appear).
  [[nodiscard]] std::map<int, std::size_t> count_by_year() const;
  /// Histogram over software packages (only packages present appear).
  [[nodiscard]] std::map<std::string, std::size_t> count_by_software() const;

  /// All records matching a predicate, in insertion order. The sweep is
  /// sharded across the runtime pool; per-shard hit lists concatenate in
  /// shard order, so the result equals the serial scan exactly. The
  /// returned pointers stay valid while this snapshot is held.
  template <typename Pred>
  [[nodiscard]] std::vector<const VulnRecord*> query(Pred&& pred) const {
    const auto recs = records();
    return runtime::parallel_reduce(
        recs.size(), std::vector<const VulnRecord*>{},
        [&](std::size_t begin, std::size_t end) {
          std::vector<const VulnRecord*> hits;
          for (std::size_t i = begin; i < end; ++i) {
            if (pred(recs[i])) hits.push_back(&recs[i]);
          }
          return hits;
        },
        [](std::vector<const VulnRecord*>& acc,
           std::vector<const VulnRecord*>&& part) {
          acc.insert(acc.end(), part.begin(), part.end());
        });
  }

  template <typename Pred>
  [[nodiscard]] std::size_t count(Pred&& pred) const {
    const auto recs = records();
    return runtime::parallel_reduce(
        recs.size(), std::size_t{0},
        [&](std::size_t begin, std::size_t end) {
          std::size_t n = 0;
          for (std::size_t i = begin; i < end; ++i) {
            if (pred(recs[i])) ++n;
          }
          return n;
        },
        [](std::size_t& acc, std::size_t part) { acc += part; });
  }

  /// CSV serialization: header + one line per record (activities joined
  /// with ';'). Fields containing separators are quoted. The row bodies
  /// are built in index-sharded blocks on the runtime pool and
  /// concatenated in block order — byte-identical at any thread count.
  [[nodiscard]] std::string to_csv() const;
  /// CSV for the record range [begin, end) only (same header). The unit
  /// of sharded corpus files (csv_shards.h / colsnap.h).
  [[nodiscard]] std::string to_csv(std::size_t begin, std::size_t end) const;

 private:
  friend class Database;

  std::shared_ptr<const void> arena_;  ///< pins the backing ColumnArena
  std::uint64_t epoch_ = 0;
  std::size_t size_ = 0;
  std::size_t software_count_ = 0;
  const VulnRecord* records_ = nullptr;
  const Category* categories_ = nullptr;
  const VulnClass* classes_ = nullptr;
  const unsigned char* remote_ = nullptr;
  const int* years_ = nullptr;
  const std::uint32_t* software_ = nullptr;
  const std::string* names_ = nullptr;
  CorpusHistograms hist_;
};

using CorpusSnapshotPtr = std::shared_ptr<const CorpusSnapshot>;

/// Recomputes the snapshot's histograms with a full columnar sweep on
/// the runtime pool — the pre-incremental semantics, kept as the
/// equivalence oracle (tests assert rebuild == snapshot->histograms()
/// after any batch sequence) and as the reference arm of the
/// BM_CorpusHistogramRebuild/BM_CorpusHistogramIncremental bench pair.
[[nodiscard]] CorpusHistograms rebuild_histograms(const CorpusSnapshot& snap);

/// The corpus service. Reads are lock-free and snapshot-isolated;
/// writes serialize on an internal mutex and publish new epochs
/// atomically. One Database instance safely serves concurrent readers
/// and writers; copying/moving the Database object itself still
/// requires external synchronization on the source, like any value.
class Database {
 public:
  Database();
  ~Database();

  /// Copies share the source's current snapshot (O(#ids) map copy, no
  /// record copy) and go copy-on-write on the first mutation.
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  /// Adds a record and publishes a new epoch. Throws
  /// std::invalid_argument on a duplicate non-zero Bugtraq ID (real IDs
  /// are unique).
  void add(VulnRecord record);

  /// Bulk ingest: appends every record of `batch` (insertion order
  /// preserved), extending the column arena once and folding the
  /// batch's histogram deltas into one new published epoch. Duplicate
  /// non-zero IDs (against the database or within the batch) throw
  /// std::invalid_argument before anything is appended or published.
  /// An empty batch is a true no-op: no epoch is published.
  void add_batch(std::vector<VulnRecord> batch);

  /// Policy-aware bulk ingest. kStrict behaves exactly like add_batch
  /// (throws on any duplicate, nothing appended) and returns an empty
  /// vector. kLenient appends every acceptable record (first occurrence
  /// of an ID wins) and returns the rejected batch positions with
  /// reasons, in ascending index order. A batch with nothing acceptable
  /// publishes nothing.
  std::vector<BatchReject> add_batch(std::vector<VulnRecord> batch,
                                     IngestPolicy policy);

  /// The current epoch's immutable snapshot — the unit of isolation.
  /// Holding it pins that epoch's records, columns, and histograms.
  [[nodiscard]] CorpusSnapshotPtr snapshot() const { return cell_.acquire(); }

  /// Publication count: 0 for a fresh database, +1 per published batch.
  [[nodiscard]] std::uint64_t epoch() const { return cell_.acquire()->epoch(); }

  /// Pre-grows the column arena so the next `capacity` total records
  /// append without a copy-on-write growth pause (readers are never
  /// paused either way).
  void reserve(std::size_t capacity);

  [[nodiscard]] std::size_t size() const noexcept {
    return cell_.acquire()->size();
  }

  /// Record/column views of the CURRENT epoch. Each call may observe a
  /// newer epoch than the last; a multi-access read that needs one
  /// consistent version should hold a snapshot() instead. The spans stay
  /// valid while this Database (or any held snapshot of it) is alive.
  [[nodiscard]] std::span<const VulnRecord> records() const noexcept {
    return cell_.acquire()->records();
  }
  [[nodiscard]] std::span<const Category> categories() const noexcept {
    return cell_.acquire()->categories();
  }
  [[nodiscard]] std::span<const VulnClass> classes() const noexcept {
    return cell_.acquire()->classes();
  }
  [[nodiscard]] std::span<const unsigned char> remote_flags() const noexcept {
    return cell_.acquire()->remote_flags();
  }
  [[nodiscard]] std::span<const int> years() const noexcept {
    return cell_.acquire()->years();
  }
  [[nodiscard]] std::span<const std::uint32_t> software_ids() const noexcept {
    return cell_.acquire()->software_ids();
  }
  [[nodiscard]] const std::string& software_name(std::uint32_t id) const {
    return cell_.acquire()->software_name(id);
  }

  /// Lookup by Bugtraq ID (non-zero IDs only). Serializes briefly with
  /// writers (the id index is writer-side state, not snapshot state).
  [[nodiscard]] const VulnRecord* by_id(int id) const;

  template <typename Pred>
  [[nodiscard]] std::vector<const VulnRecord*> query(Pred&& pred) const {
    return cell_.acquire()->query(std::forward<Pred>(pred));
  }

  template <typename Pred>
  [[nodiscard]] std::size_t count(Pred&& pred) const {
    return cell_.acquire()->count(std::forward<Pred>(pred));
  }

  /// Type-erased forms kept for existing callers; they delegate to the
  /// templated overloads above (one std::function indirection per record
  /// instead of per call site).
  [[nodiscard]] std::vector<const VulnRecord*> query(
      const std::function<bool(const VulnRecord&)>& pred) const;
  [[nodiscard]] std::size_t count(
      const std::function<bool(const VulnRecord&)>& pred) const;

  /// Histograms of the current epoch — lock-free, always exact, O(output)
  /// (no sweep: snapshots carry incrementally-maintained histograms).
  [[nodiscard]] std::map<Category, std::size_t> count_by_category() const {
    return cell_.acquire()->count_by_category();
  }
  [[nodiscard]] std::map<VulnClass, std::size_t> count_by_class() const {
    return cell_.acquire()->count_by_class();
  }
  [[nodiscard]] std::map<int, std::size_t> count_by_year() const {
    return cell_.acquire()->count_by_year();
  }
  [[nodiscard]] std::map<std::string, std::size_t> count_by_software() const {
    return cell_.acquire()->count_by_software();
  }

  [[nodiscard]] std::string to_csv() const { return cell_.acquire()->to_csv(); }
  [[nodiscard]] std::string to_csv(std::size_t begin, std::size_t end) const {
    return cell_.acquire()->to_csv(begin, end);
  }

  /// Parses a CSV produced by to_csv. Throws std::invalid_argument on a
  /// malformed header or row — the message carries the 1-based line
  /// number ("<csv>:7: bad CSV row: ..."). Row parsing is sharded across
  /// the runtime pool (the result is identical at any thread count; on
  /// malformed input parsing cancels cooperatively and the lowest row's
  /// error is the one thrown), and the parsed records land in one
  /// add_batch. Tolerates CRLF line endings and a UTF-8 BOM.
  [[nodiscard]] static Database from_csv(const std::string& csv);

  /// Parses several CSV documents (each with the standard header) into
  /// one database, rows concatenated in part order — the in-memory half
  /// of the sharded corpus reader (csv_shards.h). Strict; parts are
  /// labeled "part <k>" in error messages.
  [[nodiscard]] static Database from_csv_parts(
      const std::vector<std::string>& parts);

  /// Policy-aware variant: `names[i]` labels part i in error messages
  /// and report entries (csv_shards passes the shard paths). kStrict
  /// throws std::invalid_argument as "<name>:<line>: <reason>"; kLenient
  /// quarantines malformed rows, whole parts with bad headers, and
  /// duplicate IDs into `report` (required non-null for kLenient) and
  /// returns the partial database — byte-identical, report included, at
  /// any thread count. Throws std::invalid_argument if names and parts
  /// differ in length.
  [[nodiscard]] static Database from_csv_parts(
      const std::vector<std::string>& parts,
      const std::vector<std::string>& names, IngestPolicy policy,
      IngestReport* report = nullptr);

  /// Pre-separated columns for trusted bulk adoption (the binary
  /// snapshot loader, colsnap.h). All vectors must be index-parallel;
  /// `software` holds ids into `software_names`.
  struct BulkColumns {
    std::vector<VulnRecord> records;
    std::vector<Category> categories;
    std::vector<VulnClass> classes;
    std::vector<unsigned char> remote;
    std::vector<int> years;
    std::vector<std::uint32_t> software;
    std::vector<std::string> software_names;
  };

  /// Adopts pre-separated columns wholesale (no per-record re-derivation;
  /// histograms come from one parallel sweep, the id index from one
  /// sort). Throws std::invalid_argument on ragged column lengths, an
  /// out-of-range software id, a duplicate software name, or a duplicate
  /// non-zero Bugtraq ID. The result sits at epoch 1.
  [[nodiscard]] static Database from_columns(BulkColumns&& columns);

  /// Merges another database into this one (duplicate-ID rules apply).
  void merge(const Database& other);

 private:
  /// Appends pre-validated rows, folds their histogram deltas, and
  /// publishes the next epoch. Caller holds writer_mu_.
  void append_batch_locked(std::vector<VulnRecord>&& rows);
  /// Makes arena_ writable with capacity for `need_rows` records and
  /// `need_names` interned names (copy-on-write growth off the published
  /// snapshot when shared or exhausted). Caller holds writer_mu_.
  void ensure_arena_locked(const CorpusSnapshot& cur, std::size_t need_rows,
                           std::size_t need_names);
  /// Restores writer state to the published snapshot after a failed
  /// append (strong exception guarantee). Caller holds writer_mu_.
  void rollback_writer_state_locked(const CorpusSnapshot& cur);
  /// Builds the next epoch's snapshot over `arena`'s current contents.
  [[nodiscard]] static std::shared_ptr<CorpusSnapshot> make_snapshot(
      std::shared_ptr<detail::ColumnArena> arena, std::uint64_t epoch,
      std::size_t size, std::size_t software_count, CorpusHistograms hist);
  /// Position of `id` in the two-level index, or nullptr. Caller holds
  /// writer_mu_.
  [[nodiscard]] const std::size_t* find_id_locked(int id) const;

  mutable std::mutex writer_mu_;
  runtime::SnapshotCell<CorpusSnapshot> cell_;
  /// The arena backing (a superset of) the published snapshot; null when
  /// this Database was copied and has not yet written (copy-on-write).
  std::shared_ptr<detail::ColumnArena> arena_;
  /// Two-level Bugtraq-id index. Bulk adoption (from_columns) keeps the
  /// id/position pairs it already sorted for duplicate detection as the
  /// immutable BASE — positions index the arena prefix, which never
  /// moves — and incremental appends land in the map OVERLAY, so a bulk
  /// load pays no per-record node inserts and a small batch pays no
  /// index-wide merge. Lookups probe the overlay, then binary-search
  /// the base.
  std::vector<std::pair<int, std::size_t>> base_index_;  ///< sorted by id
  std::map<int, std::size_t> index_;  ///< overlay: ids appended post-base
  std::size_t base_rows_ = 0;  ///< records covered by base_index_
  std::map<std::string, std::uint32_t> software_ids_;  ///< name -> id
};

}  // namespace dfsm::bugtraq

#endif  // DFSM_BUGTRAQ_DATABASE_H
